// Figure 5: byte hit ratio vs cache size (% of database), GD-LD vs
// GD-Size.  Expected shape: GD-LD above GD-Size everywhere; both grow
// with cache size.
#include "bench_common.hpp"

int main() {
  using namespace precinct;
  namespace pb = precinct::bench;

  const std::vector<double> fractions{0.005, 0.010, 0.015, 0.020, 0.025};
  pb::print_header(
      "Figure 5 — byte hit ratio vs cache size",
      "80 nodes, random waypoint vmax=6 m/s, 9 regions, Zipf 0.8, GD-LD vs "
      "GD-Size");

  std::vector<core::PrecinctConfig> points;
  for (const char* policy : {"gd-ld", "gd-size"}) {
    for (const double f : fractions) {
      auto c = pb::mobile_base();
      c.mean_request_interval_s = 10.0;  // contended caches (see EXPERIMENTS.md)
      c.cache_policy = policy;
      c.cache_fraction = f;
      points.push_back(c);
    }
  }
  const auto results = pb::run_sweep(points);

  support::Table table({"cache (% of DB)", "GD-LD BHR", "GD-Size BHR"});
  const std::size_t n = fractions.size();
  bool gdld_wins_everywhere = true;
  bool monotone = true;
  double prev = -1.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double gdld = results[i].byte_hit_ratio();
    const double gdsize = results[n + i].byte_hit_ratio();
    gdld_wins_everywhere &= gdld > gdsize;
    monotone &= gdld >= prev;
    prev = gdld;
    table.add_row({support::Table::num(fractions[i] * 100.0, 1),
                   support::Table::num(gdld, 4),
                   support::Table::num(gdsize, 4)});
  }
  table.print(std::cout);
  std::cout << "\n";
  pb::check(gdld_wins_everywhere,
            "GD-LD byte hit ratio above GD-Size everywhere (paper Fig 5)");
  pb::check(monotone, "GD-LD byte hit ratio grows with cache size");
  return 0;
}
