// Figure 7: false hit ratio vs Tupdate/Trequest.  Expected shape:
// Push-with-Adaptive-Pull highest (but small, ~1e-2 at the highest update
// rate), Plain-Push nonzero (missed invalidations), Pull-Every-time
// lowest (~0); all falling as updates become rarer.
#include "bench_common.hpp"

#include "consistency/modes.hpp"

int main() {
  using namespace precinct;
  namespace pb = precinct::bench;

  const std::vector<double> ratios{1, 2, 3, 4, 5};
  const std::vector<consistency::Mode> modes{
      consistency::Mode::kPlainPush, consistency::Mode::kPullEveryTime,
      consistency::Mode::kPushAdaptivePull};

  pb::print_header("Figure 7 — false hit ratio vs Tupdate/Trequest",
                   "80 nodes mobile, Trequest=30 s");

  std::vector<core::PrecinctConfig> points;
  for (const auto mode : modes) {
    for (const double r : ratios) {
      auto c = pb::mobile_base();
      c.updates_enabled = true;
      c.consistency = mode;
      c.mean_update_interval_s = 30.0 * r;
      points.push_back(c);
    }
  }
  const auto results = pb::run_sweep(points);

  support::Table table({"Tupd/Treq", "Plain-Push", "Pull-Every-time",
                        "Push-w-Adaptive-Pull"});
  const std::size_t n = ratios.size();
  bool adaptive_highest = true;
  for (std::size_t i = 0; i < n; ++i) {
    const double push = results[i].false_hit_ratio();
    const double pull = results[n + i].false_hit_ratio();
    const double adaptive = results[2 * n + i].false_hit_ratio();
    adaptive_highest &= adaptive >= pull;
    table.add_row(
        {support::Table::num(ratios[i], 0), support::Table::num(push, 5),
         support::Table::num(pull, 5), support::Table::num(adaptive, 5)});
  }
  table.print(std::cout);
  std::cout << "\n";
  pb::check(adaptive_highest,
            "adaptive FHR >= pull-every-time FHR at every ratio (Fig 7)");
  pb::check(results[2 * n].false_hit_ratio() < 0.05,
            "adaptive FHR small even at the highest update rate");
  // Note: the paper's plot falls with rarer updates; with a *converged*
  // EWMA TTR (Eq. 2) the window scales with the update interval and the
  // ratio flattens — see EXPERIMENTS.md.  We check boundedness instead.
  bool bounded = true;
  for (std::size_t i = 0; i < n; ++i) {
    bounded &= results[2 * n + i].false_hit_ratio() < 0.05;
  }
  pb::check(bounded, "adaptive FHR bounded (<5%) at every update rate");
  return 0;
}
