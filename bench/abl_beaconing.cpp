// Ablation: beacon-fed neighbor tables vs oracle neighbor knowledge.
// Real GPSR (Karp & Kung) discovers neighbors with periodic position
// beacons; stale tables misroute and beacons cost energy.  Sweeping the
// beacon interval exposes the freshness/overhead trade-off; the oracle
// row is the upper bound most simulators (implicitly) report.
#include "bench_common.hpp"

int main() {
  using namespace precinct;
  namespace pb = precinct::bench;

  pb::print_header(
      "Ablation — GPSR beaconing vs oracle neighbor knowledge",
      "80 nodes, vmax 12 m/s (stale tables hurt more when fast); beacon "
      "lifetime = 3 intervals");

  struct Row {
    const char* name;
    bool beacons;
    double interval;
    bool piggyback;
  };
  const std::vector<Row> rows{
      {"oracle (no beacons)", false, 0.0, false},
      {"beacons every 0.5 s", true, 0.5, false},
      {"beacons every 1 s", true, 1.0, false},
      {"beacons every 1 s + piggyback", true, 1.0, true},
      {"beacons every 2 s", true, 2.0, false},
      {"beacons every 5 s", true, 5.0, false},
  };
  std::vector<core::PrecinctConfig> points;
  for (const Row& r : rows) {
    auto c = pb::mobile_base();
    c.v_max = 12.0;
    c.use_beacons = r.beacons;
    c.beacon_piggyback = r.piggyback;
    if (r.beacons) {
      c.beacon_interval_s = r.interval;
      c.neighbor_lifetime_s = 3.0 * r.interval;
    }
    points.push_back(c);
  }
  const auto results = pb::run_sweep(points);

  support::Table table({"neighbor knowledge", "success ratio", "latency (s)",
                        "frames lost", "energy/req (mJ)"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    table.add_row({rows[i].name,
                   support::Table::num(results[i].success_ratio(), 4),
                   support::Table::num(results[i].avg_latency_s(), 4),
                   std::to_string(results[i].frames_lost),
                   support::Table::num(results[i].energy_per_request_mj(), 1)});
  }
  table.print(std::cout);
  std::cout << "\n";
  pb::check(results[0].success_ratio() >= results[5].success_ratio(),
            "oracle knowledge upper-bounds slow beaconing");
  pb::check(results[1].success_ratio() > 0.9,
            "fast beaconing keeps the protocol reliable at 12 m/s");
  pb::check(results[5].frames_lost > results[1].frames_lost,
            "slower beacons mean more stale-forwarding losses");
  pb::check(results[3].success_ratio() >= results[2].success_ratio() - 0.01,
            "piggybacking matches plain beaconing on reliability");
  pb::check(results[3].messages_sent < results[2].messages_sent,
            "piggybacking sends fewer frames overall");
  return 0;
}
