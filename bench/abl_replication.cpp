// Ablation: replica regions under node failures (paper §2.4's
// fault-tolerance design).  Sweeps the crash rate with replication on
// and off; replication should hold availability up.
#include "bench_common.hpp"

int main() {
  using namespace precinct;
  namespace pb = precinct::bench;

  const std::vector<double> crash_rates{0.0, 0.02, 0.05, 0.1};
  pb::print_header(
      "Ablation — replication vs node crashes (§2.4)",
      "80 nodes mobile, sudden deaths at the given network-wide rate");

  std::vector<core::PrecinctConfig> points;
  for (const std::size_t replicas : {std::size_t{1}, std::size_t{0}}) {
    for (const double rate : crash_rates) {
      auto c = pb::mobile_base();
      c.replica_count = replicas;
      c.crash_rate_per_s = rate;
      c.graceful_fraction = 0.0;
      points.push_back(c);
    }
  }
  const auto results = pb::run_sweep(points);

  support::Table table({"crashes/s", "success w/ replica", "success w/o",
                        "replica hits"});
  const std::size_t n = crash_rates.size();
  bool replica_helps = true;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& with = results[i];
    const auto& without = results[n + i];
    if (crash_rates[i] > 0.0) {
      replica_helps &= with.success_ratio() >= without.success_ratio();
    }
    table.add_row({support::Table::num(crash_rates[i], 2),
                   support::Table::num(with.success_ratio(), 4),
                   support::Table::num(without.success_ratio(), 4),
                   std::to_string(with.replica_hits)});
  }
  table.print(std::cout);
  std::cout << "\n";
  pb::check(replica_helps,
            "replication sustains availability under crashes (§2.4)");
  // Compare replica usage as a share of completed requests: at very high
  // crash rates absolute counts fall with overall throughput.
  const double share_none =
      static_cast<double>(results[0].replica_hits) /
      static_cast<double>(results[0].requests_completed);
  const double share_mid =
      static_cast<double>(results[n - 2].replica_hits) /
      static_cast<double>(results[n - 2].requests_completed);
  pb::check(share_mid > share_none,
            "replica regions serve a larger share as crashes increase");

  // Second sweep: replica count at a fixed harsh crash rate (the paper
  // notes the scheme extends to multiple replicas for "higher failure
  // frequencies").
  std::vector<core::PrecinctConfig> kpoints;
  for (const std::size_t k : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                              std::size_t{3}}) {
    auto c = pb::mobile_base();
    c.replica_count = k;
    c.crash_rate_per_s = 0.08;
    c.graceful_fraction = 0.0;
    kpoints.push_back(c);
  }
  const auto kres = pb::run_sweep(kpoints);
  std::cout << "\n";
  support::Table ktable({"replicas", "success ratio", "messages/request"});
  for (std::size_t i = 0; i < kpoints.size(); ++i) {
    const double mpr = kres[i].requests_completed
                           ? static_cast<double>(kres[i].messages_sent) /
                                 static_cast<double>(kres[i].requests_completed)
                           : 0.0;
    ktable.add_row({std::to_string(kpoints[i].replica_count),
                    support::Table::num(kres[i].success_ratio(), 4),
                    support::Table::num(mpr, 1)});
  }
  ktable.print(std::cout);
  std::cout << "\n";
  pb::check(kres[2].success_ratio() >= kres[0].success_ratio(),
            "two replicas at least as available as none under heavy crashes");
  return 0;
}
