// Ablation: sensitivity of GD-LD to its utility weights (wr, wd, ws) —
// the design choice behind paper Eq. 1.  Zeroing each term shows what
// popularity, region distance and size each contribute.
#include "bench_common.hpp"

int main() {
  using namespace precinct;
  namespace pb = precinct::bench;

  struct Variant {
    const char* name;
    cache::GdLdWeights weights;
  };
  const std::vector<Variant> variants{
      {"full GD-LD (wr=1, wd=1, ws=4096)", {1.0, 1.0, 4096.0}},
      {"no popularity (wr=0)", {0.0, 1.0, 4096.0}},
      {"no region distance (wd=0)", {1.0, 0.0, 4096.0}},
      {"no size term (ws=0)", {1.0, 1.0, 0.0}},
      {"distance-heavy (wd=10)", {1.0, 10.0, 4096.0}},
      {"popularity-heavy (wr=10)", {10.0, 1.0, 4096.0}},
  };

  pb::print_header("Ablation — GD-LD utility weights (Eq. 1)",
                   "80 nodes mobile, cache 1.5 % of DB");

  std::vector<core::PrecinctConfig> points;
  for (const auto& v : variants) {
    auto c = pb::mobile_base();
    c.cache_fraction = 0.015;
    c.gdld_weights = v.weights;
    points.push_back(c);
  }
  const auto results = pb::run_sweep(points);

  support::Table table({"variant", "latency (s)", "byte hit ratio",
                        "regional hits"});
  for (std::size_t i = 0; i < variants.size(); ++i) {
    table.add_row({variants[i].name,
                   support::Table::num(results[i].avg_latency_s(), 4),
                   support::Table::num(results[i].byte_hit_ratio(), 4),
                   std::to_string(results[i].regional_hits)});
  }
  table.print(std::cout);
  std::cout << "\n";
  pb::check(results[0].byte_hit_ratio() >= results[1].byte_hit_ratio() * 0.95,
            "popularity term contributes to (or does not hurt) byte hits");
  return 0;
}
