// Companion-paper figure: the IPDPS paper's §6.2 notes that "the
// PReCinCt scheme is compared with the flooding and the expanding ring
// search schemes for energy consumption under varying node densities and
// moving speeds in [11]" (the authors' MP2P-workshop paper).  This bench
// regenerates that comparison: energy per request across node speeds and
// across node counts for all three retrieval schemes.
#include "bench_common.hpp"

int main() {
  using namespace precinct;
  namespace pb = precinct::bench;

  const std::vector<std::pair<const char*, core::RetrievalKind>> schemes{
      {"PReCinCt", core::RetrievalKind::kPrecinct},
      {"Expanding Ring", core::RetrievalKind::kExpandingRing},
      {"Flooding", core::RetrievalKind::kFlooding},
  };

  pb::print_header(
      "Workshop figure [11] — retrieval energy vs speed and density",
      "80 nodes mobile (speed sweep) / vmax 6 m/s (density sweep), no "
      "dynamic cache, 64 B items");

  // -- speed sweep ----------------------------------------------------------
  const std::vector<double> speeds{2, 8, 14, 20};
  std::vector<core::PrecinctConfig> points;
  for (const auto& [name, scheme] : schemes) {
    for (const double v : speeds) {
      auto c = pb::mobile_base();
      c.retrieval = scheme;
      c.v_max = v;
      c.cache_fraction = 0.0;
      c.catalog.min_item_bytes = c.catalog.max_item_bytes = 64;
      c.measure_s = pb::fast_mode() ? 150.0 : 300.0;
      points.push_back(c);
    }
  }
  const auto by_speed = pb::run_sweep(points);

  support::Table speed_table({"vmax (m/s)", "PReCinCt (mJ)", "Ring (mJ)",
                              "Flooding (mJ)"});
  const std::size_t n = speeds.size();
  bool precinct_cheapest_speed = true;
  for (std::size_t i = 0; i < n; ++i) {
    const double p = by_speed[i].energy_per_request_mj();
    const double r = by_speed[n + i].energy_per_request_mj();
    const double f = by_speed[2 * n + i].energy_per_request_mj();
    precinct_cheapest_speed &= p < r && r < f;
    speed_table.add_row({support::Table::num(speeds[i], 0),
                         support::Table::num(p, 2), support::Table::num(r, 2),
                         support::Table::num(f, 2)});
  }
  speed_table.print(std::cout);

  // -- density sweep ----------------------------------------------------------
  const std::vector<std::size_t> nodes{40, 80, 120, 160};
  std::vector<core::PrecinctConfig> density_points;
  for (const auto& [name, scheme] : schemes) {
    for (const std::size_t count : nodes) {
      auto c = pb::mobile_base();
      c.retrieval = scheme;
      c.n_nodes = count;
      c.cache_fraction = 0.0;
      c.catalog.min_item_bytes = c.catalog.max_item_bytes = 64;
      c.measure_s = pb::fast_mode() ? 150.0 : 300.0;
      density_points.push_back(c);
    }
  }
  const auto by_density = pb::run_sweep(density_points);

  std::cout << "\n";
  support::Table density_table({"nodes", "PReCinCt (mJ)", "Ring (mJ)",
                                "Flooding (mJ)"});
  const std::size_t m = nodes.size();
  bool precinct_cheapest_density = true;
  bool gap_widens = true;
  double prev_gap = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    const double p = by_density[i].energy_per_request_mj();
    const double r = by_density[m + i].energy_per_request_mj();
    const double f = by_density[2 * m + i].energy_per_request_mj();
    precinct_cheapest_density &= p < r && r < f;
    gap_widens &= (f - p) >= prev_gap;
    prev_gap = f - p;
    density_table.add_row({std::to_string(nodes[i]),
                           support::Table::num(p, 2),
                           support::Table::num(r, 2),
                           support::Table::num(f, 2)});
  }
  density_table.print(std::cout);
  std::cout << "\n";
  pb::check(precinct_cheapest_speed,
            "PReCinCt < Expanding Ring < Flooding at every speed");
  pb::check(precinct_cheapest_density,
            "PReCinCt < Expanding Ring < Flooding at every density");
  pb::check(gap_widens, "PReCinCt's advantage widens with density");
  return 0;
}
