// Ablation: node speed sweep (paper §6.1 simulates vmax of 2..20 m/s).
// Shows PReCinCt's robustness to mobility: success ratio stays high and
// custody handoffs grow with speed.
#include "bench_common.hpp"

int main() {
  using namespace precinct;
  namespace pb = precinct::bench;

  const std::vector<double> speeds{2, 8, 12, 16, 20};
  pb::print_header("Ablation — mobility speed sweep",
                   "80 nodes, vmax in {2..20} m/s (paper §6.1), 9 regions");

  std::vector<core::PrecinctConfig> points;
  for (const double v : speeds) {
    auto c = pb::mobile_base();
    c.v_max = v;
    points.push_back(c);
  }
  const auto results = pb::run_sweep(points);

  support::Table table({"vmax (m/s)", "success ratio", "latency (s)",
                        "byte hit ratio", "custody handoffs"});
  bool robust = true;
  for (std::size_t i = 0; i < speeds.size(); ++i) {
    robust &= results[i].success_ratio() > 0.85;
    table.add_row({support::Table::num(speeds[i], 0),
                   support::Table::num(results[i].success_ratio(), 4),
                   support::Table::num(results[i].avg_latency_s(), 4),
                   support::Table::num(results[i].byte_hit_ratio(), 4),
                   std::to_string(results[i].custody_handoffs)});
  }
  table.print(std::cout);
  std::cout << "\n";
  pb::check(robust, "success ratio stays above 0.85 up to 20 m/s "
                    "(degrades gracefully at extreme mobility)");
  pb::check(results.back().custody_handoffs > results.front().custody_handoffs,
            "custody handoffs grow with speed (inter-region mobility §2.3)");
  return 0;
}
