// Ablation: dynamic region management (§2.1's Add/Delete/Merge/Separate
// exercised at runtime — the paper's stated future work).  In sparse
// networks many small regions are under-populated; merging them online
// should hold availability up against the static layout at the same
// region granularity.
#include "bench_common.hpp"

int main() {
  using namespace precinct;
  namespace pb = precinct::bench;

  pb::print_header(
      "Ablation — dynamic region management (§2.1 / future work)",
      "sparse mobile network (30 nodes), fine 5x5 region grid; dynamic "
      "reconfiguration merges under-populated regions at runtime");

  std::vector<core::PrecinctConfig> points;
  for (const bool dynamic : {false, true}) {
    auto c = pb::mobile_base();
    c.n_nodes = 30;  // ~1.2 peers per region: many empty home regions
    c.regions_x = c.regions_y = 5;
    c.dynamic_regions = dynamic;
    c.region_reconfig_interval_s = 30.0;
    c.min_region_peers = 2;
    points.push_back(c);
  }
  const auto results = pb::run_sweep(points);

  support::Table table({"configuration", "success ratio", "latency (s)",
                        "custody handoffs", "messages"});
  const char* names[] = {"static 25 regions", "dynamic regions"};
  for (std::size_t i = 0; i < points.size(); ++i) {
    table.add_row({names[i],
                   support::Table::num(results[i].success_ratio(), 4),
                   support::Table::num(results[i].avg_latency_s(), 4),
                   std::to_string(results[i].custody_handoffs),
                   std::to_string(results[i].messages_sent)});
  }
  table.print(std::cout);
  std::cout << "\n";
  pb::check(results[1].success_ratio() >= results[0].success_ratio() - 0.02,
            "dynamic merging does not hurt availability in sparse networks");
  return 0;
}
