// Ablation: lossy channels vs retry/backoff hardening (beyond the paper,
// which assumes reliable delivery).  Sweeps the Bernoulli frame-loss rate
// with the retry budget on and off, then compares channel models at a
// fixed effective loss rate.  Retries should hold the success ratio up at
// the price of extra messages and energy; the burstier Gilbert-Elliott
// channel should hurt more than independent losses of the same mean.
#include "bench_common.hpp"

int main() {
  using namespace precinct;
  namespace pb = precinct::bench;

  // Slow mobility keeps GPSR route breakage from swamping channel loss,
  // so the sweep isolates what the channel (and the retries) do.
  const auto lossy_base = [] {
    auto c = pb::mobile_base();
    c.v_max = 2.0;
    return c;
  };

  const std::vector<double> loss_rates{0.0, 0.1, 0.2, 0.3};
  pb::print_header(
      "Ablation — frame loss vs retry/backoff hardening",
      "80 nodes mobile (v_max 2), Bernoulli channel, retry budget 0 vs 5");

  std::vector<core::PrecinctConfig> points;
  for (const int retries : {5, 0}) {
    for (const double p : loss_rates) {
      auto c = lossy_base();
      c.wireless.channel.model = p > 0.0 ? "bernoulli" : "perfect";
      c.wireless.channel.loss_p = p;
      c.request_retries = retries;
      points.push_back(c);
    }
  }
  const auto results = pb::run_sweep(points);

  support::Table table({"loss p", "success w/ retry", "success w/o",
                        "retransmits", "discard mJ/req"});
  const std::size_t n = loss_rates.size();
  bool retries_help = true;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& with = results[i];
    const auto& without = results[n + i];
    if (loss_rates[i] > 0.0) {
      retries_help &= with.success_ratio() >= without.success_ratio();
    }
    const double discard_per_req =
        with.requests_completed
            ? with.energy_channel_discard_mj /
                  static_cast<double>(with.requests_completed)
            : 0.0;
    table.add_row({support::Table::num(loss_rates[i], 2),
                   support::Table::num(with.success_ratio(), 4),
                   support::Table::num(without.success_ratio(), 4),
                   std::to_string(with.retransmissions),
                   support::Table::num(discard_per_req, 2)});
  }
  table.print(std::cout);
  std::cout << "\n";
  pb::check(retries_help,
            "retry budget sustains the success ratio under frame loss");
  pb::check(results[n].success_ratio() > results[2 * n - 1].success_ratio(),
            "without retries, success degrades as loss grows");
  pb::check(results[2].retransmissions > 0,
            "losses actually trigger retransmissions");

  // Second sweep: channel models at a comparable ~20% effective loss.
  // Gilbert-Elliott's parameters give pi_bad = 0.05 / (0.05 + 1/20) = 0.5
  // with loss_bad = 0.4 -> 20% steady-state loss in correlated bursts.
  pb::print_header(
      "Channel models at ~20% effective loss (retry budget 5)",
      "bernoulli p=0.2 vs gilbert-elliott bursts vs distance-edge fading");
  std::vector<core::PrecinctConfig> models;
  {
    auto c = lossy_base();
    c.wireless.channel.model = "bernoulli";
    c.wireless.channel.loss_p = 0.2;
    c.request_retries = 5;
    models.push_back(c);
  }
  {
    auto c = lossy_base();
    c.wireless.channel.model = "gilbert-elliott";
    c.wireless.channel.ge_enter_burst_p = 0.05;
    c.wireless.channel.ge_mean_burst_frames = 20.0;
    c.wireless.channel.ge_loss_good = 0.0;
    c.wireless.channel.ge_loss_bad = 0.4;
    c.request_retries = 5;
    models.push_back(c);
  }
  {
    auto c = lossy_base();
    c.wireless.channel.model = "distance";
    c.wireless.channel.edge_start_fraction = 0.5;
    c.wireless.channel.edge_loss_p = 0.8;
    c.request_retries = 5;
    models.push_back(c);
  }
  const auto mres = pb::run_sweep(models);

  support::Table mtable({"channel", "success", "avg latency s",
                         "channel drops", "energy/req mJ"});
  const char* names[] = {"bernoulli 0.2", "gilbert-elliott", "distance"};
  for (std::size_t i = 0; i < models.size(); ++i) {
    mtable.add_row({names[i], support::Table::num(mres[i].success_ratio(), 4),
                    support::Table::num(mres[i].avg_latency_s(), 4),
                    std::to_string(mres[i].frames_dropped_by_channel),
                    support::Table::num(mres[i].energy_per_request_mj(), 1)});
  }
  mtable.print(std::cout);
  std::cout << "\n";
  pb::check(mres[1].success_ratio() <= mres[0].success_ratio(),
            "correlated bursts hurt at least as much as independent loss");
  pb::check(mres[2].frames_dropped_by_channel > 0,
            "distance model erases frames near the range edge");
  return 0;
}
