// Host/build context capture: the difference between a benchmark number
// and a *trustworthy* benchmark number.
//
// Every bench artifact this repo checks in (BENCH_micro.json,
// BENCH_scale.json, figure tables) embeds the context it was measured
// under: build type (a Debug number is noise), core count (speedup
// claims are meaningless without it) and the CPU frequency governor (a
// scaling governor turns wall time into a thermostat reading).  Tools
// that compare bench artifacts (tools/bench_diff.py) refuse to diff
// numbers captured under incomparable contexts.
//
// Set PRECINCT_BENCH_STRICT=1 to make an untrustworthy context fatal
// (exit 3) instead of loudly annotated — CI's perf-gate jobs run strict.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

namespace precinct::bench {

struct BenchContext {
  std::string build_type;    ///< "Release" (NDEBUG) or "Debug"
  unsigned cores = 0;        ///< hardware_concurrency
  std::string cpu_governor;  ///< cpufreq governor, or "unknown" when the
                             ///< host exposes no cpufreq sysfs (VMs,
                             ///< containers)
  bool trustworthy = true;   ///< no caveat found
  std::string caveat;        ///< why not, when !trustworthy
};

inline BenchContext capture_bench_context() {
  BenchContext ctx;
#ifdef NDEBUG
  ctx.build_type = "Release";
#else
  ctx.build_type = "Debug";
#endif
  ctx.cores = std::thread::hardware_concurrency();

  ctx.cpu_governor = "unknown";
  if (std::FILE* f = std::fopen(
          "/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor", "rb")) {
    char buf[64] = {};
    const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    std::string g(buf, n);
    while (!g.empty() && (g.back() == '\n' || g.back() == ' ')) g.pop_back();
    if (!g.empty()) ctx.cpu_governor = g;
  }

  if (ctx.build_type != "Release") {
    ctx.trustworthy = false;
    ctx.caveat = "non-Release build: numbers measure the compiler, not the code";
  } else if (ctx.cpu_governor != "unknown" &&
             ctx.cpu_governor != "performance") {
    // Any dynamic-scaling governor (ondemand, schedutil, powersave,
    // conservative, ...) couples wall time to thermal history.
    ctx.trustworthy = false;
    ctx.caveat = "cpu governor '" + ctx.cpu_governor +
                 "' scales frequency; pin to 'performance' before measuring";
  }
  return ctx;
}

/// Print the context banner and enforce PRECINCT_BENCH_STRICT.  Call once
/// at bench startup; returns the captured context for embedding in
/// artifacts.
inline BenchContext announce_bench_context() {
  const BenchContext ctx = capture_bench_context();
  std::fprintf(stderr, "bench context: build=%s cores=%u governor=%s%s%s\n",
               ctx.build_type.c_str(), ctx.cores, ctx.cpu_governor.c_str(),
               ctx.trustworthy ? "" : "\n  *** UNTRUSTWORTHY: ",
               ctx.trustworthy ? "" : (ctx.caveat + " ***").c_str());
  if (!ctx.trustworthy) {
    const char* strict = std::getenv("PRECINCT_BENCH_STRICT");
    if (strict != nullptr && strict[0] == '1') {
      std::fprintf(stderr,
                   "PRECINCT_BENCH_STRICT=1: refusing to benchmark under an "
                   "untrustworthy context\n");
      std::exit(3);
    }
  }
  return ctx;
}

}  // namespace precinct::bench
