// Ablation: popularity-gradient prefetching (extension, after the
// authors' companion caching+prefetching work).  Prefetching the hot set
// trades extra traffic/energy for hit ratio and latency.
#include "bench_common.hpp"

int main() {
  using namespace precinct;
  namespace pb = precinct::bench;

  pb::print_header(
      "Ablation — popularity-gradient prefetching (extension)",
      "80 nodes mobile, cache 2 % of DB; prefetch the k hottest missing "
      "items after each remote fetch");

  const std::vector<std::size_t> counts{0, 2, 5, 10};
  std::vector<core::PrecinctConfig> points;
  for (const std::size_t k : counts) {
    auto c = pb::mobile_base();
    c.mean_request_interval_s = 10.0;
    c.prefetch_count = k;
    points.push_back(c);
  }
  const auto results = pb::run_sweep(points);

  support::Table table({"prefetch k", "byte hit ratio", "latency (s)",
                        "energy/req (mJ)", "messages"});
  for (std::size_t i = 0; i < counts.size(); ++i) {
    table.add_row({std::to_string(counts[i]),
                   support::Table::num(results[i].byte_hit_ratio(), 4),
                   support::Table::num(results[i].avg_latency_s(), 4),
                   support::Table::num(results[i].energy_per_request_mj(), 1),
                   std::to_string(results[i].messages_sent)});
  }
  table.print(std::cout);
  std::cout << "\n";
  pb::check(results[2].byte_hit_ratio() > results[0].byte_hit_ratio(),
            "prefetching raises the byte hit ratio");
  pb::check(results[2].avg_latency_s() < results[0].avg_latency_s(),
            "prefetching lowers request latency");
  pb::check(results[2].messages_sent > results[0].messages_sent,
            "...at the cost of extra traffic");
  return 0;
}
