// Ablation: scalability.  The paper's motivation is "large-scale MP2P
// networks": scale nodes and area together (constant density, constant
// region size) and watch per-request cost.  PReCinCt's promise is that
// per-request energy stays near-flat while flooding's grows with N.
//
// Part two is the region-sharded city grid (DESIGN.md §11): 1k/10k/100k
// total nodes as tiles_x*tiles_y independent PReCinCt tiles coupled by
// gateway traffic, swept over shards in {1, 2, 4, 8}.  Every (scale, K)
// point's sharded fingerprint is compared against K = 1 (determinism is
// part of the bench, not a separate test), wall time and speedup are
// recorded, and the whole sweep is written to BENCH_scale.json (path via
// PRECINCT_SCALE_OUT) together with the host context.  The >= 3x-on-4-
// cores speedup target is only *evaluated* when the host actually has
// >= 4 cores — a 1-core container records its numbers honestly instead
// of fabricating a parallelism claim.
//
// PRECINCT_BENCH_FAST=1 trims to the 1k scale and shards {1, 2};
// PRECINCT_SCALE_MAX_NODES caps the largest scale attempted.
#include "bench_common.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>

#include "core/sharded_scenario.hpp"
#include "core/world_scenario.hpp"
#include "support/json.hpp"

int main() {
  using namespace precinct;
  namespace pb = precinct::bench;

  pb::print_header(
      "Ablation — scalability at constant density",
      "density and region size held constant; nodes and area scale "
      "together; PReCinCt vs network-wide flooding");

  struct Scale {
    std::size_t nodes;
    double side;
    std::uint32_t grid;
  };
  const std::vector<Scale> scales{
      {80, 1200.0, 3}, {180, 1800.0, 4}, {320, 2400.0, 6}};

  std::vector<core::PrecinctConfig> points;
  for (const auto scheme :
       {core::RetrievalKind::kPrecinct, core::RetrievalKind::kFlooding}) {
    for (const Scale& s : scales) {
      auto c = pb::mobile_base();
      c.retrieval = scheme;
      c.n_nodes = s.nodes;
      c.area = {{0.0, 0.0}, {s.side, s.side}};
      c.regions_x = c.regions_y = s.grid;
      c.cache_fraction = 0.0;  // compare raw retrieval cost
      c.catalog.min_item_bytes = c.catalog.max_item_bytes = 64;
      c.network_flood_ttl = 64;  // the flood must span the larger plane
      c.measure_s = pb::fast_mode() ? 150.0 : 300.0;
      points.push_back(c);
    }
  }
  const auto results = pb::run_sweep(points);

  support::Table table({"nodes", "area (m)", "PReCinCt mJ/req",
                        "Flooding mJ/req", "PReCinCt success",
                        "Flooding success"});
  const std::size_t n = scales.size();
  for (std::size_t i = 0; i < n; ++i) {
    table.add_row({std::to_string(scales[i].nodes),
                   support::Table::num(scales[i].side, 0),
                   support::Table::num(results[i].energy_per_request_mj(), 2),
                   support::Table::num(results[n + i].energy_per_request_mj(), 2),
                   support::Table::num(results[i].success_ratio(), 3),
                   support::Table::num(results[n + i].success_ratio(), 3)});
  }
  table.print(std::cout);
  std::cout << "\n";
  const double precinct_growth = results[n - 1].energy_per_request_mj() /
                                 results[0].energy_per_request_mj();
  const double flooding_growth =
      results[2 * n - 1].energy_per_request_mj() /
      results[n].energy_per_request_mj();
  pb::check(precinct_growth < flooding_growth,
            "PReCinCt per-request energy grows slower than flooding's");
  pb::check(results[n - 1].success_ratio() > 0.9,
            "PReCinCt stays reliable at 320 nodes");

  // ---- part two: region-sharded city grid ---------------------------------

  std::cout << "\n== Region-sharded city grid — nodes vs shards ==\n\n";

  struct CityScale {
    std::uint32_t tiles;          ///< tiles per axis (tiles^2 total)
    std::size_t nodes_per_tile;
  };
  std::vector<CityScale> city{{4, 63}, {10, 100}, {32, 98}};  // ~1k/10k/100k
  std::vector<std::uint32_t> shard_counts{1, 2, 4, 8};
  if (pb::fast_mode()) {
    city.resize(1);
    shard_counts = {1, 2};
  }
  std::size_t max_nodes = 200000;
  if (const char* cap = std::getenv("PRECINCT_SCALE_MAX_NODES")) {
    max_nodes = static_cast<std::size_t>(std::atoll(cap));
  }

  const pb::BenchContext ctx = pb::capture_bench_context();
  support::Table city_table(
      {"nodes", "tiles", "shards", "wall s", "events", "gw req", "speedup"});
  std::string points_json = "[";
  bool all_identical = true;
  bool any_gateway = false;
  std::size_t skipped = 0;
  for (const CityScale& s : city) {
    const std::size_t total_nodes =
        static_cast<std::size_t>(s.tiles) * s.tiles * s.nodes_per_tile;
    if (total_nodes > max_nodes) {
      ++skipped;
      std::printf("  [skipped %zu-node scale: over PRECINCT_SCALE_MAX_NODES=%zu]\n",
                  total_nodes, max_nodes);
      continue;
    }
    core::PrecinctConfig c = pb::mobile_base();
    c.n_nodes = s.nodes_per_tile;
    c.tiles_x = c.tiles_y = s.tiles;
    c.gateway_interval_s = 10.0;
    c.gateway_latency_s = 0.25;
    c.catalog.n_items = 200;
    c.catalog.min_item_bytes = c.catalog.max_item_bytes = 512;
    c.warmup_s = pb::fast_mode() ? 10.0 : 20.0;
    c.measure_s = pb::fast_mode() ? 30.0 : 60.0;
    double wall_k1 = 0.0;
    std::string fp_k1;
    for (const std::uint32_t k : shard_counts) {
      core::PrecinctConfig ck = c;
      ck.shards = k;
      const auto t0 = std::chrono::steady_clock::now();
      const core::ShardedMetrics m = core::run_sharded_scenario(ck);
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      const std::string fp = core::sharded_fingerprint(m);
      if (k == 1) {
        wall_k1 = wall;
        fp_k1 = fp;
      } else if (fp != fp_k1) {
        all_identical = false;
      }
      any_gateway = any_gateway || m.gateway_requests > 0;
      const double speedup = wall > 0.0 ? wall_k1 / wall : 0.0;
      city_table.add_row({std::to_string(total_nodes),
                          std::to_string(s.tiles) + "x" + std::to_string(s.tiles),
                          std::to_string(k), support::Table::num(wall, 2),
                          std::to_string(m.aggregate.events_executed),
                          std::to_string(m.gateway_requests),
                          support::Table::num(speedup, 2)});
      support::JsonObject pt;
      pt.set("nodes", static_cast<std::uint64_t>(total_nodes))
          .set("tiles", static_cast<std::uint64_t>(s.tiles) * s.tiles)
          .set("nodes_per_tile", static_cast<std::uint64_t>(s.nodes_per_tile))
          .set("shards", static_cast<std::uint64_t>(k))
          .set("wall_s", wall)
          .set("events_executed", m.aggregate.events_executed)
          .set("gateway_requests", m.gateway_requests)
          .set("gateway_acks", m.gateway_acks)
          .set("windows", m.windows)
          .set("messages_merged", m.messages_merged)
          .set("cut_edges", m.partition_cut_edges)
          .set("speedup_vs_shards1", speedup)
          .set("fingerprint_matches_shards1", fp == fp_k1);
      if (points_json.size() > 1) points_json += ", ";
      points_json += pt.str();
    }
  }
  points_json += "]";
  city_table.print(std::cout);
  std::cout << "\n";
  pb::check(all_identical,
            "sharded runs byte-identical to shards=1 at every scale");
  pb::check(any_gateway || skipped == city.size(),
            "gateway traffic actually crossed tile boundaries");

  // ---- part three: world-sharded one-world sweep --------------------------
  //
  // ONE world cut into region-column domains (DESIGN.md §13): real radio
  // frames cross the cut under the lookahead derived from the MAC and
  // propagation timing.  Unlike the tile city there is no embarrassing
  // parallelism to hide behind — every domain replays the whole world's
  // mobility and the cut carries live protocol traffic — so this is the
  // sweep the >= 3x-on-4-cores speedup target is evaluated against.

  std::cout << "\n== World-sharded one-world — shards sweep ==\n\n";

  core::PrecinctConfig wc = pb::mobile_base();
  wc.n_nodes = 240;
  wc.area = {{0.0, 0.0}, {2400.0, 2400.0}};
  wc.regions_x = wc.regions_y = 8;  // 8 region-column domains
  wc.catalog.n_items = 200;
  wc.catalog.min_item_bytes = wc.catalog.max_item_bytes = 512;
  wc.warmup_s = pb::fast_mode() ? 10.0 : 20.0;
  wc.measure_s = pb::fast_mode() ? 30.0 : 60.0;
  std::vector<std::uint32_t> world_shards{1, 2, 4, 8};
  if (pb::fast_mode()) world_shards = {1, 2};

  support::Table world_table(
      {"shards", "wall s", "events", "frames x-cut", "windows", "speedup"});
  std::string world_json = "[";
  bool world_identical = true;
  double world_wall_k1 = 0.0;
  double world_speedup = 0.0;      ///< measured at the highest shard count
  std::uint32_t world_speedup_k = 1;
  std::string world_fp_k1;
  for (const std::uint32_t k : world_shards) {
    core::PrecinctConfig ck = wc;
    ck.shards = k;
    const auto t0 = std::chrono::steady_clock::now();
    const core::WorldShardedMetrics m = core::run_world_scenario(ck);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const std::string fp = core::world_fingerprint(m);
    if (k == 1) {
      world_wall_k1 = wall;
      world_fp_k1 = fp;
    } else if (fp != world_fp_k1) {
      world_identical = false;
    }
    const double speedup = wall > 0.0 ? world_wall_k1 / wall : 0.0;
    if (k >= world_speedup_k) {
      world_speedup = speedup;
      world_speedup_k = k;
    }
    world_table.add_row({std::to_string(k), support::Table::num(wall, 2),
                         std::to_string(m.aggregate.events_executed),
                         std::to_string(m.frames_posted),
                         std::to_string(m.windows),
                         support::Table::num(speedup, 2)});
    support::JsonObject pt;
    pt.set("nodes", static_cast<std::uint64_t>(wc.n_nodes))
        .set("domains", static_cast<std::uint64_t>(m.domains))
        .set("shards", static_cast<std::uint64_t>(k))
        .set("wall_s", wall)
        .set("events_executed", m.aggregate.events_executed)
        .set("lookahead_s", m.lookahead_s)
        .set("frames_posted", m.frames_posted)
        .set("frames_processed", m.frames_processed)
        .set("deltas_posted", m.deltas_posted)
        .set("windows", m.windows)
        .set("messages_merged", m.messages_merged)
        .set("speedup_vs_shards1", speedup)
        .set("fingerprint_matches_shards1", fp == world_fp_k1);
    if (world_json.size() > 1) world_json += ", ";
    world_json += pt.str();
  }
  world_json += "]";
  world_table.print(std::cout);
  std::cout << "\n";
  pb::check(world_identical,
            "world-sharded runs byte-identical to shards=1 at every K");

  // The speedup target is a claim about parallel hardware; on a smaller
  // host the honest answer is "not evaluated", never a fabricated pass.
  const bool can_evaluate = ctx.cores >= 4 && ctx.trustworthy;
  if (can_evaluate) {
    pb::check(world_speedup >= 3.0,
              "world-sharded speedup >= 3x on a >= 4-core host");
  } else {
    std::cout << "  [speedup target >=3x on 4 cores: NOT EVALUATED — host has "
              << ctx.cores << " core(s)"
              << (ctx.trustworthy ? "" : ", context untrustworthy: " + ctx.caveat)
              << "; measured " << support::Table::num(world_speedup, 2)
              << "x at shards=" << world_speedup_k << "]\n";
  }

  support::JsonObject context;
  context.set("build_type", ctx.build_type)
      .set("host_cores", static_cast<std::uint64_t>(ctx.cores))
      .set("cpu_governor", ctx.cpu_governor)
      .set("trustworthy", ctx.trustworthy);
  if (!ctx.trustworthy) context.set("caveat", ctx.caveat);
  support::JsonObject target;
  target.set("threshold_speedup", 3.0)
      .set("cores_required", std::uint64_t{4})
      .set("speedup", world_speedup)
      .set("speedup_shards", static_cast<std::uint64_t>(world_speedup_k))
      .set("evaluated", can_evaluate);
  support::JsonObject report;
  report.set("schema", std::string("precinct-bench-scale-v1"))
      .set("fast_mode", pb::fast_mode())
      .set_raw("context", context.str())
      .set_raw("speedup_target", target.str())
      .set("deterministic_across_shards", all_identical && world_identical)
      .set_raw("points", points_json)
      .set_raw("world_points", world_json);
  if (const char* out_path = std::getenv("PRECINCT_SCALE_OUT")) {
    if (std::FILE* f = std::fopen(out_path, "wb")) {
      const std::string text = report.str(/*pretty=*/true) + "\n";
      std::fwrite(text.data(), 1, text.size(), f);
      std::fclose(f);
      std::cout << "  [wrote " << out_path << "]\n";
    } else {
      std::cout << "  [FAILED to open " << out_path << "]\n";
      return 1;
    }
  }
  return all_identical ? 0 : 1;
}
