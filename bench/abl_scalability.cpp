// Ablation: scalability.  The paper's motivation is "large-scale MP2P
// networks": scale nodes and area together (constant density, constant
// region size) and watch per-request cost.  PReCinCt's promise is that
// per-request energy stays near-flat while flooding's grows with N.
#include "bench_common.hpp"

#include <cmath>

int main() {
  using namespace precinct;
  namespace pb = precinct::bench;

  pb::print_header(
      "Ablation — scalability at constant density",
      "density and region size held constant; nodes and area scale "
      "together; PReCinCt vs network-wide flooding");

  struct Scale {
    std::size_t nodes;
    double side;
    std::uint32_t grid;
  };
  const std::vector<Scale> scales{
      {80, 1200.0, 3}, {180, 1800.0, 4}, {320, 2400.0, 6}};

  std::vector<core::PrecinctConfig> points;
  for (const auto scheme :
       {core::RetrievalKind::kPrecinct, core::RetrievalKind::kFlooding}) {
    for (const Scale& s : scales) {
      auto c = pb::mobile_base();
      c.retrieval = scheme;
      c.n_nodes = s.nodes;
      c.area = {{0.0, 0.0}, {s.side, s.side}};
      c.regions_x = c.regions_y = s.grid;
      c.cache_fraction = 0.0;  // compare raw retrieval cost
      c.catalog.min_item_bytes = c.catalog.max_item_bytes = 64;
      c.network_flood_ttl = 64;  // the flood must span the larger plane
      c.measure_s = pb::fast_mode() ? 150.0 : 300.0;
      points.push_back(c);
    }
  }
  const auto results = pb::run_sweep(points);

  support::Table table({"nodes", "area (m)", "PReCinCt mJ/req",
                        "Flooding mJ/req", "PReCinCt success",
                        "Flooding success"});
  const std::size_t n = scales.size();
  for (std::size_t i = 0; i < n; ++i) {
    table.add_row({std::to_string(scales[i].nodes),
                   support::Table::num(scales[i].side, 0),
                   support::Table::num(results[i].energy_per_request_mj(), 2),
                   support::Table::num(results[n + i].energy_per_request_mj(), 2),
                   support::Table::num(results[i].success_ratio(), 3),
                   support::Table::num(results[n + i].success_ratio(), 3)});
  }
  table.print(std::cout);
  std::cout << "\n";
  const double precinct_growth = results[n - 1].energy_per_request_mj() /
                                 results[0].energy_per_request_mj();
  const double flooding_growth =
      results[2 * n - 1].energy_per_request_mj() /
      results[n].energy_per_request_mj();
  pb::check(precinct_growth < flooding_growth,
            "PReCinCt per-request energy grows slower than flooding's");
  pb::check(results[n - 1].success_ratio() > 0.9,
            "PReCinCt stays reliable at 320 nodes");
  return 0;
}
