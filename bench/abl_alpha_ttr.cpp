// Ablation: TTR EWMA weight alpha (paper Eq. 2).  Low alpha chases the
// latest update gap (reactive); high alpha keeps history (smooth).
// Shows the poll-count / false-hit trade-off under adaptive pull.
#include "bench_common.hpp"

#include "consistency/modes.hpp"

int main() {
  using namespace precinct;
  namespace pb = precinct::bench;

  const std::vector<double> alphas{0.0, 0.25, 0.5, 0.75, 1.0};
  pb::print_header("Ablation — TTR EWMA alpha (Eq. 2)",
                   "80 nodes mobile, Push-with-Adaptive-Pull, "
                   "Tupdate/Trequest = 2");

  std::vector<core::PrecinctConfig> points;
  for (const double a : alphas) {
    auto c = pb::mobile_base();
    c.updates_enabled = true;
    c.consistency = consistency::Mode::kPushAdaptivePull;
    c.mean_update_interval_s = 60.0;
    c.ttr_alpha = a;
    points.push_back(c);
  }
  const auto results = pb::run_sweep(points);

  support::Table table(
      {"alpha", "polls", "false hit ratio", "consistency msgs", "latency (s)"});
  for (std::size_t i = 0; i < alphas.size(); ++i) {
    table.add_row({support::Table::num(alphas[i], 2),
                   std::to_string(results[i].polls_sent),
                   support::Table::num(results[i].false_hit_ratio(), 5),
                   std::to_string(results[i].consistency_messages),
                   support::Table::num(results[i].avg_latency_s(), 4)});
  }
  table.print(std::cout);
  std::cout << "\n";
  pb::check(results.front().false_hit_ratio() < 0.05 &&
                results.back().false_hit_ratio() < 0.05,
            "false hit ratio stays small across the alpha range");
  return 0;
}
