// Ablation: flash-crowd popularity rotation.  Every interval the hot set
// shifts by `hotspot_shift` ranks; greedy-dual aging (the L inflation in
// GD-LD/GD-Size) must evict yesterday's hot items, while LFU famously
// fossilizes on them.
#include <string>

#include "bench_common.hpp"

int main() {
  using namespace precinct;
  namespace pb = precinct::bench;

  pb::print_header(
      "Ablation — flash-crowd popularity rotation",
      "80 nodes mobile, hot set rotates by 100 ranks every 120 s; "
      "policies must age out stale popularity");

  const std::vector<const char*> policies{"gd-ld", "gd-size", "lru", "lfu"};
  std::vector<core::PrecinctConfig> points;
  for (const bool rotate : {false, true}) {
    for (const char* policy : policies) {
      auto c = pb::mobile_base();
      c.mean_request_interval_s = 10.0;
      c.cache_policy = policy;
      c.cache_fraction = 0.015;
      if (rotate) {
        c.hotspot_rotation_interval_s = 120.0;
        c.hotspot_shift = 100;
      }
      points.push_back(c);
    }
  }
  const auto results = pb::run_sweep(points);

  support::Table table({"policy", "BHR stationary", "BHR rotating",
                        "retained"});
  const std::size_t n = policies.size();
  double gdld_retained = 0.0;
  double lfu_retained = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double stationary = results[i].byte_hit_ratio();
    const double rotating = results[n + i].byte_hit_ratio();
    const double retained = stationary > 0.0 ? rotating / stationary : 0.0;
    if (std::string(policies[i]) == "gd-ld") gdld_retained = retained;
    if (std::string(policies[i]) == "lfu") lfu_retained = retained;
    table.add_row({policies[i], support::Table::num(stationary, 4),
                   support::Table::num(rotating, 4),
                   support::Table::num(100.0 * retained, 1) + "%"});
  }
  table.print(std::cout);
  std::cout << "\n";
  pb::check(gdld_retained > 0.5,
            "GD-LD keeps most of its hit ratio under rotation");
  pb::check(gdld_retained >= lfu_retained * 0.98,
            "greedy-dual aging at least matches LFU under popularity shift");
  return 0;
}
