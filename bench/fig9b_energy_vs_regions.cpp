// Figure 9(b): PReCinCt energy per request vs number of regions, 20
// nodes, theory vs simulation.  Expected shape: energy decreases as the
// region count grows (smaller localized floods).
#include <algorithm>

#include "bench_common.hpp"

#include "analysis/energy_analysis.hpp"

int main() {
  using namespace precinct;
  namespace pb = precinct::bench;

  const std::vector<std::uint32_t> grid_sides{1, 2, 3, 4, 5};  // 1..25 regions
  pb::print_header(
      "Figure 9(b) — PReCinCt energy/request vs number of regions",
      "static 600x600 m, 20 nodes, no dynamic cache, 64 B items; theory "
      "Eq. 13");

  std::vector<core::PrecinctConfig> points;
  for (const std::uint32_t side : grid_sides) {
    auto c = pb::static_base();
    c.n_nodes = 20;
    c.regions_x = c.regions_y = side;
    // A single region cannot host a replica region.
    c.replica_count = std::min<std::size_t>(
        c.replica_count, static_cast<std::size_t>(side) * side - 1);
    points.push_back(c);
  }
  const auto results = pb::run_sweep(points);

  support::Table table({"regions", "theory (mJ)", "simulation (mJ)"});
  bool theory_monotone = true;
  bool sim_trend_down = true;
  double prev_t = 1e300;
  for (std::size_t i = 0; i < grid_sides.size(); ++i) {
    analysis::EnergyAnalysisParams p;
    p.n_nodes = 20;
    p.area = {{0, 0}, {600, 600}};
    p.n_regions = static_cast<double>(grid_sides[i]) * grid_sides[i];
    p.request_bytes = 64;
    p.response_bytes = 128;
    const double theory = analysis::precinct_energy_per_request(p);
    theory_monotone &= theory <= prev_t;
    prev_t = theory;
    table.add_row({std::to_string(grid_sides[i] * grid_sides[i]),
                   support::Table::num(theory, 2),
                   support::Table::num(results[i].energy_per_request_mj(), 2)});
  }
  // Trend check on simulation endpoints (noisy mid-points allowed).
  sim_trend_down = results.back().energy_per_request_mj() <
                   results.front().energy_per_request_mj();
  table.print(std::cout);
  std::cout << "\n";
  pb::check(theory_monotone, "theoretical energy decreases with regions");
  pb::check(sim_trend_down,
            "simulated energy lower at 25 regions than at 1 (Fig 9b)");
  return 0;
}
