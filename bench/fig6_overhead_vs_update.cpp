// Figure 6: control-message overhead vs Tupdate/Trequest for the three
// consistency schemes (log-scale y in the paper).  Expected shape:
// Plain-Push >> Pull-Every-time > Push-with-Adaptive-Pull, all falling
// as updates become rarer.
#include "bench_common.hpp"

#include "analysis/consistency_analysis.hpp"
#include "consistency/modes.hpp"

int main() {
  using namespace precinct;
  namespace pb = precinct::bench;

  const std::vector<double> ratios{1, 2, 3, 4, 5};
  const std::vector<consistency::Mode> modes{
      consistency::Mode::kPlainPush, consistency::Mode::kPullEveryTime,
      consistency::Mode::kPushAdaptivePull};

  pb::print_header(
      "Figure 6 — consistency control-message overhead vs Tupdate/Trequest",
      "80 nodes mobile, Trequest=30 s, Tupdate/Trequest in 1..5");

  std::vector<core::PrecinctConfig> points;
  for (const auto mode : modes) {
    for (const double r : ratios) {
      auto c = pb::mobile_base();
      c.updates_enabled = true;
      c.consistency = mode;
      c.mean_update_interval_s = 30.0 * r;
      points.push_back(c);
    }
  }
  const auto results = pb::run_sweep(points);

  support::Table table({"Tupd/Treq", "Plain-Push", "Pull-Every-time",
                        "Push-w-Adaptive-Pull", "adaptive saves vs push",
                        "vs pull"});
  const std::size_t n = ratios.size();
  bool ordering = true;
  for (std::size_t i = 0; i < n; ++i) {
    const auto push = results[i].consistency_messages;
    const auto pull = results[n + i].consistency_messages;
    const auto adaptive = results[2 * n + i].consistency_messages;
    ordering &= push > pull && pull > adaptive;
    const double save_push =
        100.0 * (1.0 - static_cast<double>(adaptive) / push);
    const double save_pull =
        100.0 * (1.0 - static_cast<double>(adaptive) / pull);
    table.add_row({support::Table::num(ratios[i], 0), std::to_string(push),
                   std::to_string(pull), std::to_string(adaptive),
                   support::Table::num(save_push, 1) + "%",
                   support::Table::num(save_pull, 1) + "%"});
  }
  table.print(std::cout);

  // Closed-form overlay (analysis/consistency_analysis.hpp): predicted
  // messages over the measurement window, using the measured cache-serve
  // fraction as the workload input.
  std::cout << "\nclosed-form prediction (messages over the window):\n";
  support::Table theory({"Tupd/Treq", "Plain-Push", "Pull-Every-time",
                         "Push-w-Adaptive-Pull"});
  const double window_s = points.front().measure_s;
  for (std::size_t i = 0; i < n; ++i) {
    analysis::ConsistencyAnalysisParams p;
    p.update_rate_hz = 1.0 / (30.0 * ratios[i]);
    const auto& sim = results[n + i];  // measured workload fractions
    p.cache_serve_fraction =
        sim.requests_issued
            ? static_cast<double>(sim.own_cache_hits + sim.regional_hits +
                                  sim.en_route_hits) /
                  static_cast<double>(sim.requests_issued)
            : 0.4;
    const auto load = analysis::consistency_messages_per_second(p);
    theory.add_row({support::Table::num(ratios[i], 0),
                    support::Table::num(load.plain_push * window_s, 0),
                    support::Table::num(load.pull_every_time * window_s, 0),
                    support::Table::num(load.push_adaptive_pull * window_s, 0)});
  }
  theory.print(std::cout);
  std::cout << "\n";
  pb::check(ordering,
            "Plain-Push > Pull-Every-time > Adaptive at every ratio (Fig 6)");
  pb::check(results[0].consistency_messages >
                results[n - 1].consistency_messages,
            "Plain-Push overhead falls as updates become rarer");
  return 0;
}
