// Shared helpers for the figure-regeneration benches.
//
// Every bench sweeps one paper parameter, runs a few seeded replications
// per point (in parallel across points), and prints the figure's series
// as an aligned table plus the qualitative "shape" checks the paper's
// plot supports.  Set PRECINCT_BENCH_FAST=1 for shorter runs.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_context.hpp"
#include "core/scenario.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace precinct::bench {

inline bool fast_mode() {
  const char* v = std::getenv("PRECINCT_BENCH_FAST");
  return v != nullptr && v[0] == '1';
}

inline std::size_t seeds_per_point() { return fast_mode() ? 2 : 4; }

/// Paper §6.1 defaults for the mobile caching/consistency experiments.
inline core::PrecinctConfig mobile_base() {
  core::PrecinctConfig c;
  c.n_nodes = 80;
  c.v_max = 6.0;
  c.warmup_s = fast_mode() ? 60.0 : 120.0;
  c.measure_s = fast_mode() ? 240.0 : 600.0;
  c.seed = 1000;
  return c;
}

/// Static small-area setup for the Fig 9 analytical-validation runs:
/// no caching, tiny items (the analysis models header-sized messages).
inline core::PrecinctConfig static_base() {
  core::PrecinctConfig c;
  c.area = {{0, 0}, {600, 600}};
  c.mobile = false;
  c.cache_fraction = 0.0;
  c.catalog.min_item_bytes = 64;
  c.catalog.max_item_bytes = 64;
  c.warmup_s = fast_mode() ? 40.0 : 80.0;
  c.measure_s = fast_mode() ? 200.0 : 500.0;
  c.seed = 2000;
  return c;
}

/// Run each config across seeds_per_point() replications; sweep points
/// execute in parallel (each owns its full stack).
///
/// Set PRECINCT_BENCH_CHECK (e.g. to "all") to run every point with the
/// invariant checker enabled; the checker is observe-only, so the
/// printed figures must not change — only the wall time does.
inline std::vector<core::Metrics> run_sweep(
    const std::vector<core::PrecinctConfig>& points) {
  const char* check = std::getenv("PRECINCT_BENCH_CHECK");
  std::vector<core::Metrics> merged(points.size());
  support::parallel_for(points.size(), [&](std::size_t i) {
    core::PrecinctConfig c = points[i];
    if (check != nullptr && check[0] != '\0') c.check = check;
    merged[i] = core::merge_metrics(core::run_seeds(std::move(c),
                                                    seeds_per_point()));
  });
  return merged;
}

inline void print_header(const std::string& title, const std::string& setup) {
  // Announce once per process (strict-mode enforcement happens here too)
  // and stamp every figure with the context it was measured under.
  static const BenchContext ctx = announce_bench_context();
  std::cout << "== " << title << " ==\n" << setup << "\n";
  std::cout << "[measured: build=" << ctx.build_type << " cores=" << ctx.cores
            << " governor=" << ctx.cpu_governor
            << (ctx.trustworthy ? "" : " UNTRUSTWORTHY: " + ctx.caveat)
            << "]\n\n";
}

inline void check(bool ok, const std::string& what) {
  std::cout << (ok ? "  [shape OK]   " : "  [shape FAIL] ") << what << "\n";
}

}  // namespace precinct::bench
