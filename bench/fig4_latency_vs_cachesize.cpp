// Figure 4: average latency per request vs cache size (% of database),
// GD-LD vs GD-Size.  Paper setup: 80 nodes at ~6 m/s, cache 0.5-2.5 %.
// Expected shape: GD-LD below GD-Size at every cache size; both improve
// (or stay flat) as the cache grows.
#include "bench_common.hpp"

int main() {
  using namespace precinct;
  namespace pb = precinct::bench;

  const std::vector<double> fractions{0.005, 0.010, 0.015, 0.020, 0.025};
  pb::print_header(
      "Figure 4 — latency/request vs cache size",
      "80 nodes, random waypoint vmax=6 m/s, 9 regions, Zipf 0.8, GD-LD vs "
      "GD-Size");

  std::vector<core::PrecinctConfig> points;
  for (const char* policy : {"gd-ld", "gd-size"}) {
    for (const double f : fractions) {
      auto c = pb::mobile_base();
      c.mean_request_interval_s = 10.0;  // contended caches (see EXPERIMENTS.md)
      c.cache_policy = policy;
      c.cache_fraction = f;
      points.push_back(c);
    }
  }
  const auto results = pb::run_sweep(points);

  support::Table table(
      {"cache (% of DB)", "GD-LD latency (s)", "GD-Size latency (s)"});
  const std::size_t n = fractions.size();
  bool gdld_never_worse = true;  // within per-point seed noise
  double sum_gdld = 0.0, sum_gdsize = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double gdld = results[i].avg_latency_s();
    const double gdsize = results[n + i].avg_latency_s();
    const double noise = results[i].latency_s.ci95_halfwidth() +
                         results[n + i].latency_s.ci95_halfwidth();
    gdld_never_worse &= gdld < gdsize + noise;
    sum_gdld += gdld;
    sum_gdsize += gdsize;
    table.add_row({support::Table::num(fractions[i] * 100.0, 1),
                   support::Table::num(gdld, 4),
                   support::Table::num(gdsize, 4)});
  }
  table.print(std::cout);
  std::cout << "\n";
  pb::check(sum_gdld < sum_gdsize,
            "GD-LD latency below GD-Size averaged over the sweep (Fig 4)");
  pb::check(gdld_never_worse,
            "GD-LD never worse than GD-Size beyond seed noise");
  pb::check(results[n - 1].avg_latency_s() <= results[0].avg_latency_s(),
            "GD-LD latency non-increasing with cache size");
  return 0;
}
