// minibench — a vendored, API-compatible subset of google-benchmark.
//
// Why this exists: the perf-regression gate (tools/bench_diff.py) keys
// trustworthiness off the *library's* build type, and the only
// google-benchmark available on the image is a Debug build (the old
// BENCH_micro.json context recorded "library_build_type": "debug" — the
// timing loop itself was compiled without optimizations).  With no
// network to fetch upstream sources, the fix is a minimal in-tree
// harness that compiles with the repo's own CMAKE_BUILD_TYPE, so a
// Release build of the repo measures with a Release-built timing loop
// and honestly reports "library_build_type": "release".
//
// Scope: exactly the surface bench/micro_bench.cpp uses — BENCHMARK()
// registration with ->Arg() ranges, the `for (auto _ : state)` timing
// loop with adaptive iteration counts, DoNotOptimize,
// SetItemsProcessed, AddCustomContext, and the JSON reporter schema
// tools/bench_diff.py consumes (context provenance + per-run
// name/run_type/cpu_time entries).  Configure with
// -DPRECINCT_SYSTEM_BENCHMARK=ON to link the real google-benchmark
// instead; this header is only on the include path when the vendored
// harness is selected.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace benchmark {

using IterationCount = std::int64_t;

namespace internal {
class BenchmarkRunner;
}  // namespace internal

/// Per-run state handed to each benchmark function.  Iterating `state`
/// (`for (auto _ : state)`) runs the timed region exactly
/// `max_iterations` times; the timer starts at begin() and stops when
/// the iterator is exhausted.
class State {
 public:
  class iterator {
   public:
    // The `auto _` placeholder; [[maybe_unused]] on the type silences
    // -Wunused-but-set-variable for the deliberately unused loop variable
    // (google-benchmark does the same with BENCHMARK_UNUSED).
    struct [[maybe_unused]] Value {};
    explicit iterator(IterationCount remaining) noexcept
        : remaining_(remaining) {}
    Value operator*() const noexcept { return {}; }
    iterator& operator++() noexcept {
      --remaining_;
      return *this;
    }
    bool operator!=(const iterator& other) const noexcept {
      return remaining_ != other.remaining_;
    }

   private:
    IterationCount remaining_;
  };

  iterator begin() noexcept {
    StartTiming();
    return iterator(max_iterations_);
  }
  iterator end() noexcept { return iterator(0); }

  [[nodiscard]] std::int64_t range(std::size_t index = 0) const;
  [[nodiscard]] IterationCount iterations() const noexcept {
    return max_iterations_;
  }
  void SetItemsProcessed(std::int64_t items) noexcept {
    items_processed_ = items;
  }
  [[nodiscard]] std::int64_t items_processed() const noexcept {
    return items_processed_;
  }

 private:
  friend class internal::BenchmarkRunner;
  State(IterationCount iterations, std::vector<std::int64_t> args) noexcept
      : max_iterations_(iterations), args_(std::move(args)) {}
  void StartTiming() noexcept;

  IterationCount max_iterations_;
  std::vector<std::int64_t> args_;
  std::int64_t items_processed_ = 0;
};

namespace internal {

using Function = void (*)(State&);

/// Registration record for one benchmark function; ->Arg() fans it out
/// into one run per argument (google-benchmark's fluent interface).
class Benchmark {
 public:
  Benchmark(const char* name, Function fn) : name_(name), fn_(fn) {}
  Benchmark* Arg(std::int64_t value) {
    args_.push_back(value);
    return this;
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] Function function() const noexcept { return fn_; }
  [[nodiscard]] const std::vector<std::int64_t>& args() const noexcept {
    return args_;
  }

 private:
  std::string name_;
  Function fn_;
  std::vector<std::int64_t> args_;
};

Benchmark* RegisterBenchmarkInternal(Benchmark* bench);

}  // namespace internal

/// Prevents the optimizer from discarding `value` or hoisting the
/// computation that produced it (same contract as google-benchmark).
template <typename T>
inline void DoNotOptimize(T const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}
template <typename T>
inline void DoNotOptimize(T& value) {
  asm volatile("" : "+r,m"(value) : : "memory");
}

void Initialize(int* argc, char** argv);
bool ReportUnrecognizedArguments(int argc, char** argv);
std::size_t RunSpecifiedBenchmarks();
void Shutdown();
void AddCustomContext(const std::string& key, const std::string& value);

}  // namespace benchmark

#define BENCHMARK_PRIVATE_CONCAT(a, b) BENCHMARK_PRIVATE_CONCAT2(a, b)
#define BENCHMARK_PRIVATE_CONCAT2(a, b) a##b

#define BENCHMARK(fn)                                                       \
  static ::benchmark::internal::Benchmark* BENCHMARK_PRIVATE_CONCAT(        \
      benchmark_registration_, __LINE__) [[maybe_unused]] =                 \
      ::benchmark::internal::RegisterBenchmarkInternal(                     \
          new ::benchmark::internal::Benchmark(#fn, fn))
