// minibench implementation: adaptive timing loop + google-benchmark-
// compatible console/JSON reporters.  See include/benchmark/benchmark.h
// for why this is vendored.
#include "benchmark/benchmark.h"

#include <time.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <unistd.h>
#include <utility>

namespace benchmark {

namespace {

struct Flags {
  std::string format = "console";       // --benchmark_format
  std::string out_path;                 // --benchmark_out
  std::string out_format = "json";      // --benchmark_out_format
  std::string filter;                   // --benchmark_filter (substring)
  double min_time_s = 0.5;              // --benchmark_min_time
};

Flags g_flags;
std::vector<std::pair<std::string, std::string>> g_custom_context;
std::vector<std::unique_ptr<internal::Benchmark>>& registry() {
  static std::vector<std::unique_ptr<internal::Benchmark>> r;
  return r;
}

/// One measured run (one benchmark x one argument).
struct RunResult {
  std::string name;
  IterationCount iterations = 0;
  double real_time_ns = 0.0;
  double cpu_time_ns = 0.0;
  std::int64_t items_processed = 0;
};

double now_monotonic_s() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

double now_cpu_s() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

double g_timer_real_start = 0.0;
double g_timer_cpu_start = 0.0;

}  // namespace

void State::StartTiming() noexcept {
  g_timer_real_start = now_monotonic_s();
  g_timer_cpu_start = now_cpu_s();
}

std::int64_t State::range(std::size_t index) const {
  if (index >= args_.size()) {
    std::fprintf(stderr, "minibench: state.range(%zu) out of bounds\n", index);
    std::abort();
  }
  return args_[index];
}

namespace internal {

Benchmark* RegisterBenchmarkInternal(Benchmark* bench) {
  registry().emplace_back(bench);
  return bench;
}

class BenchmarkRunner {
 public:
  /// Adaptive iteration search (google-benchmark's strategy, simplified):
  /// grow the iteration count until the timed region spans min_time, then
  /// report that final run.
  static RunResult run(const Benchmark& bench, std::int64_t arg,
                       bool has_arg) {
    IterationCount iters = 1;
    for (int attempt = 0; attempt < 64; ++attempt) {
      std::vector<std::int64_t> args;
      if (has_arg) args.push_back(arg);
      State state(iters, std::move(args));
      bench.function()(state);  // state.begin() starts the timer
      const double real_s = now_monotonic_s() - g_timer_real_start;
      const double cpu_s = now_cpu_s() - g_timer_cpu_start;
      const bool enough = cpu_s >= g_flags.min_time_s ||
                          real_s >= 5.0 * g_flags.min_time_s ||
                          iters >= (std::int64_t{1} << 40);
      if (enough) {
        RunResult r;
        r.name = bench.name();
        if (has_arg) {
          r.name += '/';
          r.name += std::to_string(arg);
        }
        r.iterations = iters;
        r.real_time_ns =
            real_s * 1e9 / static_cast<double>(iters);
        r.cpu_time_ns = cpu_s * 1e9 / static_cast<double>(iters);
        r.items_processed = state.items_processed();
        return r;
      }
      // Aim past min_time with headroom, but grow at most 10x per attempt
      // so a mispredicted first run cannot overshoot into minutes.
      const double target = g_flags.min_time_s * 1.4;
      double multiplier = cpu_s > 1e-9 ? target / cpu_s : 10.0;
      multiplier = std::clamp(multiplier, 2.0, 10.0);
      iters = static_cast<IterationCount>(
          static_cast<double>(iters) * multiplier);
    }
    std::fprintf(stderr, "minibench: %s never reached min_time\n",
                 bench.name().c_str());
    std::abort();
  }
};

}  // namespace internal

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

int read_mhz_per_cpu() {
  std::ifstream f("/proc/cpuinfo");
  std::string line;
  while (std::getline(f, line)) {
    if (line.rfind("cpu MHz", 0) == 0) {
      const std::size_t colon = line.find(':');
      if (colon != std::string::npos) {
        return static_cast<int>(std::strtod(line.c_str() + colon + 1,
                                            nullptr) +
                                0.5);
      }
    }
  }
  return 0;
}

bool cpu_scaling_enabled() {
  // Mirrors google-benchmark: any cpufreq governor other than
  // "performance" counts as scaling.  Hosts without cpufreq sysfs
  // (containers, VMs) report false.
  std::ifstream f(
      "/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor");
  std::string governor;
  if (!(f >> governor)) return false;
  return governor != "performance";
}

/// CPU cache topology from sysfs, matching google-benchmark's context
/// schema ("caches": [{type, level, size, num_sharing}]).
std::string caches_json(const std::string& indent) {
  std::ostringstream out;
  out << "[";
  bool first = true;
  for (int index = 0; index < 8; ++index) {
    const std::string base =
        "/sys/devices/system/cpu/cpu0/cache/index" + std::to_string(index);
    std::ifstream level_f(base + "/level");
    std::ifstream type_f(base + "/type");
    std::ifstream size_f(base + "/size");
    std::ifstream shared_f(base + "/shared_cpu_list");
    int level = 0;
    std::string type, size_text, shared;
    if (!(level_f >> level) || !(type_f >> type)) break;
    size_f >> size_text;
    shared_f >> shared;
    std::uint64_t size_bytes = std::strtoull(size_text.c_str(), nullptr, 10);
    if (!size_text.empty() && (size_text.back() == 'K')) size_bytes <<= 10;
    if (!size_text.empty() && (size_text.back() == 'M')) size_bytes <<= 20;
    // shared_cpu_list like "0" or "0-3": count the cpus sharing the cache.
    int num_sharing = 1;
    const std::size_t dash = shared.find('-');
    if (dash != std::string::npos) {
      num_sharing = std::atoi(shared.c_str() + dash + 1) -
                    std::atoi(shared.c_str()) + 1;
    }
    if (!first) out << ",";
    first = false;
    out << "\n" << indent << "  {\n"
        << indent << "    \"type\": \"" << json_escape(type) << "\",\n"
        << indent << "    \"level\": " << level << ",\n"
        << indent << "    \"size\": " << size_bytes << ",\n"
        << indent << "    \"num_sharing\": " << num_sharing << "\n"
        << indent << "  }";
  }
  if (!first) out << "\n" << indent;
  out << "]";
  return out.str();
}

std::string context_json() {
  char host[256] = "unknown";
  gethostname(host, sizeof(host) - 1);
  char date[64] = "unknown";
  {
    const time_t now = time(nullptr);
    tm tm_utc{};
    gmtime_r(&now, &tm_utc);
    std::strftime(date, sizeof(date), "%FT%T+00:00", &tm_utc);
  }
  double load[3] = {0, 0, 0};
  getloadavg(load, 3);
  std::ostringstream out;
  out << "  \"context\": {\n";
  out << "    \"date\": \"" << date << "\",\n";
  out << "    \"host_name\": \"" << json_escape(host) << "\",\n";
  out << "    \"executable\": \"minibench\",\n";
  out << "    \"num_cpus\": " << std::thread::hardware_concurrency() << ",\n";
  out << "    \"mhz_per_cpu\": " << read_mhz_per_cpu() << ",\n";
  out << "    \"cpu_scaling_enabled\": "
      << (cpu_scaling_enabled() ? "true" : "false") << ",\n";
  out << "    \"caches\": " << caches_json("    ") << ",\n";
  out << "    \"load_avg\": [" << load[0] << "," << load[1] << ","
      << load[2] << "],\n";
  // The whole point of the vendored harness: this TU is compiled with the
  // repo's CMAKE_BUILD_TYPE, so Release builds measure with a Release
  // timing loop and say so.
#ifdef NDEBUG
  out << "    \"library_build_type\": \"release\"";
#else
  out << "    \"library_build_type\": \"debug\"";
#endif
  for (const auto& [key, value] : g_custom_context) {
    out << ",\n    \"" << json_escape(key) << "\": \"" << json_escape(value)
        << "\"";
  }
  out << "\n  }";
  return out.str();
}

std::string runs_json(const std::vector<RunResult>& runs) {
  std::ostringstream out;
  out << "  \"benchmarks\": [";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\n";
    out << "      \"name\": \"" << json_escape(r.name) << "\",\n";
    out << "      \"family_index\": " << i << ",\n";
    out << "      \"run_name\": \"" << json_escape(r.name) << "\",\n";
    out << "      \"run_type\": \"iteration\",\n";
    out << "      \"repetitions\": 1,\n";
    out << "      \"repetition_index\": 0,\n";
    out << "      \"threads\": 1,\n";
    out << "      \"iterations\": " << r.iterations << ",\n";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", r.real_time_ns);
    out << "      \"real_time\": " << buf << ",\n";
    std::snprintf(buf, sizeof(buf), "%.6g", r.cpu_time_ns);
    out << "      \"cpu_time\": " << buf << ",\n";
    out << "      \"time_unit\": \"ns\"";
    if (r.items_processed > 0 && r.cpu_time_ns > 0.0) {
      const double per_s = static_cast<double>(r.items_processed) /
                           (r.cpu_time_ns * 1e-9 *
                            static_cast<double>(r.iterations));
      std::snprintf(buf, sizeof(buf), "%.6g", per_s);
      out << ",\n      \"items_per_second\": " << buf;
    }
    out << "\n    }";
  }
  out << "\n  ]";
  return out.str();
}

void report_console(const std::vector<RunResult>& runs, std::FILE* to) {
  std::size_t width = 30;
  for (const RunResult& r : runs) width = std::max(width, r.name.size() + 2);
  std::fprintf(to, "%-*s %14s %14s %12s\n", static_cast<int>(width),
               "Benchmark", "Time", "CPU", "Iterations");
  for (const RunResult& r : runs) {
    std::fprintf(to, "%-*s %11.1f ns %11.1f ns %12lld\n",
                 static_cast<int>(width), r.name.c_str(), r.real_time_ns,
                 r.cpu_time_ns, static_cast<long long>(r.iterations));
  }
}

void report_json(const std::vector<RunResult>& runs, std::ostream& to) {
  to << "{\n" << context_json() << ",\n" << runs_json(runs) << "\n}\n";
}

bool parse_flag(const char* arg, const char* name, std::string* value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

}  // namespace

void Initialize(int* argc, char** argv) {
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    std::string value;
    if (parse_flag(argv[i], "--benchmark_format", &g_flags.format) ||
        parse_flag(argv[i], "--benchmark_out", &g_flags.out_path) ||
        parse_flag(argv[i], "--benchmark_out_format", &g_flags.out_format) ||
        parse_flag(argv[i], "--benchmark_filter", &g_flags.filter)) {
      continue;
    }
    if (parse_flag(argv[i], "--benchmark_min_time", &value)) {
      g_flags.min_time_s = std::strtod(value.c_str(), nullptr);
      if (g_flags.min_time_s <= 0.0) g_flags.min_time_s = 0.5;
      continue;
    }
    argv[kept++] = argv[i];
  }
  *argc = kept;
}

bool ReportUnrecognizedArguments(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::fprintf(stderr, "minibench: unrecognized argument '%s'\n", argv[i]);
  }
  return argc > 1;
}

void AddCustomContext(const std::string& key, const std::string& value) {
  g_custom_context.emplace_back(key, value);
}

std::size_t RunSpecifiedBenchmarks() {
  std::vector<RunResult> runs;
  for (const auto& bench : registry()) {
    if (!g_flags.filter.empty() &&
        bench->name().find(g_flags.filter) == std::string::npos) {
      continue;
    }
    if (bench->args().empty()) {
      runs.push_back(internal::BenchmarkRunner::run(*bench, 0, false));
    } else {
      for (const std::int64_t arg : bench->args()) {
        runs.push_back(internal::BenchmarkRunner::run(*bench, arg, true));
      }
    }
    // Progress as each family lands (a full sweep takes a while).
    const RunResult& last = runs.back();
    std::fprintf(stderr, "%-45s %11.1f ns  (x%lld)\n", last.name.c_str(),
                 last.cpu_time_ns, static_cast<long long>(last.iterations));
  }
  if (g_flags.format == "json") {
    std::ostringstream text;
    report_json(runs, text);
    std::fputs(text.str().c_str(), stdout);
  } else {
    report_console(runs, stdout);
  }
  if (!g_flags.out_path.empty()) {
    std::ofstream out(g_flags.out_path);
    if (!out) {
      std::fprintf(stderr, "minibench: cannot write %s\n",
                   g_flags.out_path.c_str());
      std::exit(1);
    }
    report_json(runs, out);  // out_format is always json in this repo
  }
  return runs.size();
}

void Shutdown() {}

}  // namespace benchmark
