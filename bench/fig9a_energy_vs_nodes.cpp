// Figure 9(a): energy per request vs number of nodes — flooding vs
// PReCinCt, theoretical (Eqs. 11/13) vs simulated.  Static 600x600 m
// topology, no dynamic caching.  Expected shape: flooding >> PReCinCt,
// both grow with N; simulation falls below theory as density grows
// (edge effects), and theory/simulation agree at low density.
#include "bench_common.hpp"

#include "analysis/energy_analysis.hpp"

int main() {
  using namespace precinct;
  namespace pb = precinct::bench;

  const std::vector<std::size_t> node_counts{20, 40, 60, 80};
  pb::print_header(
      "Figure 9(a) — energy/request vs number of nodes",
      "static 600x600 m, 9 regions, no dynamic cache, 64 B items; theory "
      "Eq. 11 (flooding) and Eq. 13 (PReCinCt)");

  std::vector<core::PrecinctConfig> points;
  for (const auto scheme :
       {core::RetrievalKind::kPrecinct, core::RetrievalKind::kFlooding}) {
    for (const std::size_t n : node_counts) {
      auto c = pb::static_base();
      c.retrieval = scheme;
      c.n_nodes = n;
      points.push_back(c);
    }
  }
  const auto results = pb::run_sweep(points);

  support::Table table({"nodes", "PReCinCt theory (mJ)", "PReCinCt sim (mJ)",
                        "Flooding theory (mJ)", "Flooding sim (mJ)"});
  const std::size_t n = node_counts.size();
  bool precinct_wins = true;
  bool both_grow = true;
  double prev_p = 0.0, prev_f = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    analysis::EnergyAnalysisParams p;
    p.n_nodes = static_cast<double>(node_counts[i]);
    p.area = {{0, 0}, {600, 600}};
    p.request_bytes = 64;
    p.response_bytes = 64 + 64;  // header + item
    const double pt = analysis::precinct_energy_per_request(p);
    const double ft = analysis::flooding_energy_per_request(p);
    const double ps = results[i].energy_per_request_mj();
    const double fs = results[n + i].energy_per_request_mj();
    precinct_wins &= ps < fs && pt < ft;
    both_grow &= ps >= prev_p && fs >= prev_f;
    prev_p = ps;
    prev_f = fs;
    table.add_row({std::to_string(node_counts[i]), support::Table::num(pt, 2),
                   support::Table::num(ps, 2), support::Table::num(ft, 2),
                   support::Table::num(fs, 2)});
  }
  table.print(std::cout);
  std::cout << "\n";
  pb::check(precinct_wins,
            "PReCinCt below flooding in both theory and simulation (Fig 9a)");
  pb::check(both_grow, "energy/request grows with node count");
  // Edge effects: at the highest density, simulated flooding falls below
  // its theoretical estimate (the paper's explanation for divergence).
  {
    analysis::EnergyAnalysisParams p;
    p.n_nodes = static_cast<double>(node_counts.back());
    p.area = {{0, 0}, {600, 600}};
    p.request_bytes = 64;
    p.response_bytes = 128;
    pb::check(results[2 * n - 1].energy_per_request_mj() <
                  analysis::flooding_energy_per_request(p),
              "simulated flooding below theory at high density (edge effects)");
  }
  return 0;
}
