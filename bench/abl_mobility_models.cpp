// Ablation: mobility models (paper future work: "verify the robust
// performance of PReCinCt scheme under different mobility models").
// Random waypoint (the paper's model) vs random direction (no center
// bias) vs Gauss-Markov (smooth correlated motion) vs a static network.
#include "bench_common.hpp"

int main() {
  using namespace precinct;
  namespace pb = precinct::bench;

  pb::print_header(
      "Ablation — mobility models (paper §7 future work)",
      "80 nodes, same speed envelope across models, PReCinCt + GD-LD");

  const std::vector<const char*> models{"random-waypoint", "random-direction",
                                        "gauss-markov", "static"};
  std::vector<core::PrecinctConfig> points;
  for (const char* model : models) {
    auto c = pb::mobile_base();
    c.mobility_model = model;
    points.push_back(c);
  }
  const auto results = pb::run_sweep(points);

  support::Table table({"model", "success ratio", "latency (s)",
                        "byte hit ratio", "custody handoffs"});
  bool robust = true;
  for (std::size_t i = 0; i < models.size(); ++i) {
    robust &= results[i].success_ratio() > 0.9;
    table.add_row({models[i],
                   support::Table::num(results[i].success_ratio(), 4),
                   support::Table::num(results[i].avg_latency_s(), 4),
                   support::Table::num(results[i].byte_hit_ratio(), 4),
                   std::to_string(results[i].custody_handoffs)});
  }
  table.print(std::cout);
  std::cout << "\n";
  pb::check(robust, "success ratio above 0.9 under every mobility model");
  pb::check(results[3].custody_handoffs == 0,
            "static network performs no custody handoffs");
  return 0;
}
