// Figure 8: average latency per request vs Tupdate/Trequest.  Expected
// shape: Pull-Every-time highest at every ratio (it pays a validation
// round trip on every cached serve); Plain-Push and Adaptive similar.
#include "bench_common.hpp"

#include "consistency/modes.hpp"

int main() {
  using namespace precinct;
  namespace pb = precinct::bench;

  const std::vector<double> ratios{1, 2, 3, 4, 5};
  const std::vector<consistency::Mode> modes{
      consistency::Mode::kPlainPush, consistency::Mode::kPullEveryTime,
      consistency::Mode::kPushAdaptivePull};

  pb::print_header("Figure 8 — latency/request vs Tupdate/Trequest",
                   "80 nodes mobile, Trequest=30 s");

  std::vector<core::PrecinctConfig> points;
  for (const auto mode : modes) {
    for (const double r : ratios) {
      auto c = pb::mobile_base();
      c.updates_enabled = true;
      c.consistency = mode;
      c.mean_update_interval_s = 30.0 * r;
      points.push_back(c);
    }
  }
  const auto results = pb::run_sweep(points);

  support::Table table({"Tupd/Treq", "Plain-Push (s)", "Pull-Every-time (s)",
                        "Push-w-Adaptive-Pull (s)"});
  const std::size_t n = ratios.size();
  int pull_highest = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double push = results[i].avg_latency_s();
    const double pull = results[n + i].avg_latency_s();
    const double adaptive = results[2 * n + i].avg_latency_s();
    if (pull >= push && pull >= adaptive) ++pull_highest;
    table.add_row(
        {support::Table::num(ratios[i], 0), support::Table::num(push, 4),
         support::Table::num(pull, 4), support::Table::num(adaptive, 4)});
  }
  table.print(std::cout);
  std::cout << "\n";
  pb::check(pull_highest >= static_cast<int>(n) - 1,
            "Pull-Every-time latency highest at (nearly) every ratio (Fig 8)");
  return 0;
}
