// Ablation: flash-crowd load scaling (DESIGN.md §15).  The request rate
// is multiplied far past the paper's operating point while the hot set
// rotates and the Zipf skew drifts; the region-based lookup must keep
// completing requests instead of collapsing under MAC contention, and
// the retry budget must bound failures rather than letting them grow
// with load.
#include <cstddef>
#include <vector>

#include "bench_common.hpp"

int main() {
  using namespace precinct;
  namespace pb = precinct::bench;

  pb::print_header(
      "Ablation — flash-crowd load scaling",
      "40 nodes mobile, hot set rotates while theta drifts; request rate "
      "multiplied 1x -> 150x past the paper's operating point");

  const std::vector<double> multipliers{1.0, 25.0, 150.0};
  std::vector<core::PrecinctConfig> points;
  for (const double m : multipliers) {
    core::PrecinctConfig c;
    c.n_nodes = 40;
    c.area = {{0, 0}, {1000, 1000}};
    c.v_max = 4.0;
    c.zipf_theta = 0.9;
    c.request_rate_multiplier = m;
    c.hotspot_rotation_interval_s = 15.0;
    c.hotspot_shift = 50;
    c.zipf_drift_per_s = 0.02;
    c.zipf_drift_step_s = 5.0;
    c.warmup_s = pb::fast_mode() ? 10.0 : 20.0;
    c.measure_s = pb::fast_mode() ? 40.0 : 90.0;
    c.seed = 4000;
    points.push_back(c);
  }
  const auto results = pb::run_sweep(points);

  support::Table table(
      {"multiplier", "issued", "success", "failed frac", "p95 latency s"});
  for (std::size_t i = 0; i < multipliers.size(); ++i) {
    core::Metrics m = results[i];  // quantile() sorts its sample in place
    const double failed_frac =
        m.requests_issued > 0
            ? static_cast<double>(m.requests_failed) /
                  static_cast<double>(m.requests_issued)
            : 0.0;
    table.add_row({support::Table::num(multipliers[i], 0),
                   std::to_string(m.requests_issued),
                   support::Table::num(m.success_ratio(), 4),
                   support::Table::num(failed_frac, 4),
                   support::Table::num(m.latency_q.quantile(0.95), 4)});
  }
  table.print(std::cout);
  std::cout << "\n";

  const core::Metrics& base = results.front();
  const core::Metrics& flash = results.back();
  const double scale = base.requests_issued > 0
                           ? static_cast<double>(flash.requests_issued) /
                                 static_cast<double>(base.requests_issued)
                           : 0.0;
  const double flash_failed_frac =
      flash.requests_issued > 0
          ? static_cast<double>(flash.requests_failed) /
                static_cast<double>(flash.requests_issued)
          : 1.0;
  pb::check(scale > 50.0,
            "150x multiplier actually multiplies the issued load (>50x)");
  pb::check(flash.success_ratio() >= 0.85,
            "success ratio holds >= 0.85 under the 150x flash crowd");
  pb::check(flash_failed_frac <= 0.10,
            "retry budget bounds failures to <= 10% at 150x");
  return 0;
}
