// Ablation: retrieval scheme comparison — PReCinCt vs network Flooding
// vs Expanding Ring (the comparison the paper inherits from [11]).
// Expected: PReCinCt cheapest in energy; flooding most expensive;
// expanding ring in between with the worst latency (ring retries).
#include "bench_common.hpp"

int main() {
  using namespace precinct;
  namespace pb = precinct::bench;

  pb::print_header("Ablation — retrieval schemes",
                   "static 600x600 m, 40 nodes, no dynamic cache");

  const std::vector<std::pair<const char*, core::RetrievalKind>> schemes{
      {"PReCinCt", core::RetrievalKind::kPrecinct},
      {"Flooding", core::RetrievalKind::kFlooding},
      {"Expanding Ring", core::RetrievalKind::kExpandingRing},
  };
  std::vector<core::PrecinctConfig> points;
  for (const auto& [name, scheme] : schemes) {
    auto c = pb::static_base();
    c.n_nodes = 40;
    c.retrieval = scheme;
    points.push_back(c);
  }
  const auto results = pb::run_sweep(points);

  support::Table table({"scheme", "energy/request (mJ)", "latency (s)",
                        "success ratio", "messages"});
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    table.add_row({schemes[i].first,
                   support::Table::num(results[i].energy_per_request_mj(), 2),
                   support::Table::num(results[i].avg_latency_s(), 4),
                   support::Table::num(results[i].success_ratio(), 4),
                   std::to_string(results[i].messages_sent)});
  }
  table.print(std::cout);
  std::cout << "\n";
  pb::check(results[0].energy_per_request_mj() <
                results[1].energy_per_request_mj(),
            "PReCinCt uses less energy than flooding");
  pb::check(results[2].energy_per_request_mj() <
                results[1].energy_per_request_mj(),
            "expanding ring uses less energy than flooding");
  pb::check(results[0].energy_per_request_mj() <
                results[2].energy_per_request_mj(),
            "PReCinCt uses less energy than expanding ring");
  return 0;
}
