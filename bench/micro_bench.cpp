// google-benchmark microbenchmarks for the hot paths of the simulator
// substrate: event queue, neighbor queries, GPSR next-hop, Gabriel
// planarization, cache operations, Zipf sampling, geographic hashing.
#include <benchmark/benchmark.h>

#include <cmath>
#include <string>

#include "bench_context.hpp"

#include "cache/cache_store.hpp"
#include "core/world_scenario.hpp"
#include "geo/geo_hash.hpp"
#include "mobility/random_waypoint.hpp"
#include "mobility/static_placement.hpp"
#include "net/wireless_net.hpp"
#include "routing/flood.hpp"
#include "routing/gpsr.hpp"
#include "sim/simulator.hpp"
#include "net/spatial_grid.hpp"
#include "support/kv_file.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "workload/zipf.hpp"

namespace {

using namespace precinct;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  support::Rng rng(1);
  for (auto _ : state) {
    sim::Simulator sim;
    for (std::size_t i = 0; i < n; ++i) {
      sim.schedule(rng.uniform(0.0, 100.0), [] {});
    }
    sim.run_all();
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(16384);

// Schedule/cancel churn: half the scheduled events are cancelled before the
// queue runs.  The seed's sorted-vector erase made this quadratic; the
// tombstone cancel keeps it O(1) per cancel.
void BM_EventQueueCancel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  support::Rng rng(17);
  std::vector<sim::EventHandle> handles;
  handles.reserve(n);
  for (auto _ : state) {
    sim::Simulator sim;
    handles.clear();
    for (std::size_t i = 0; i < n; ++i) {
      handles.push_back(sim.schedule(rng.uniform(0.0, 100.0), [] {}));
    }
    for (std::size_t i = 0; i < n; i += 2) {
      benchmark::DoNotOptimize(sim.cancel(handles[i]));
    }
    sim.run_all();
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueCancel)->Arg(1024)->Arg(16384);

struct RadioFixtureState {
  sim::Simulator sim;
  mobility::StaticPlacement placement;
  net::WirelessNet net;
  RadioFixtureState(std::size_t n, std::uint64_t seed)
      : placement(mobility::StaticPlacement::uniform(
            n, {{0, 0}, {1200, 1200}}, seed)),
        net(sim, placement, {}, energy::FeeneyModel{}, seed) {}
};

void BM_NeighborQuery(benchmark::State& state) {
  RadioFixtureState fx(static_cast<std::size_t>(state.range(0)), 7);
  net::NodeId i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.net.neighbors(i));
    i = (i + 1) % fx.net.node_count();
  }
}
BENCHMARK(BM_NeighborQuery)->Arg(80)->Arg(160);

// Same query through the into-scratch overload: no per-call vector.
void BM_NeighborQueryScratch(benchmark::State& state) {
  RadioFixtureState fx(static_cast<std::size_t>(state.range(0)), 7);
  net::NodeId i = 0;
  std::vector<net::NodeId> scratch;
  for (auto _ : state) {
    fx.net.neighbors(i, scratch);
    benchmark::DoNotOptimize(scratch.size());
    i = (i + 1) % fx.net.node_count();
  }
}
BENCHMARK(BM_NeighborQueryScratch)->Arg(80)->Arg(160);

// Network-wide flood from a rotating origin: every receiver re-broadcasts
// once (flood dedup + TTL), so one iteration exercises the full radio
// fan-out path — airtime reservation, per-receiver energy charging, and
// one delivery closure per (forwarder, neighbor) pair.
void BM_BroadcastFanout(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  RadioFixtureState fx(n, 23);
  routing::FloodController flood(n);
  std::uint64_t delivered = 0;
  fx.net.set_receive_handler(
      [&](net::NodeId node, const net::Packet& p) {
        ++delivered;
        if (!flood.mark_seen(node, p.id)) return;
        if (!routing::FloodController::ttl_allows_forward(p)) return;
        net::Packet fwd = p;
        fwd.ttl -= 1;
        fwd.hops += 1;
        fwd.src = node;
        fx.net.broadcast(fwd);
      });
  net::NodeId origin = 0;
  for (auto _ : state) {
    flood.clear();
    net::Packet p;
    p.id = fx.net.next_packet_id();
    p.mode = net::RouteMode::kNetworkFlood;
    p.origin = origin;
    p.src = origin;
    p.size_bytes = 96;
    p.ttl = 8;
    flood.mark_seen(origin, p.id);
    fx.net.broadcast(p);
    fx.sim.run_all();
    origin = static_cast<net::NodeId>((origin + 1) % n);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(delivered));
}
BENCHMARK(BM_BroadcastFanout)->Arg(80)->Arg(160);

// Flood dedup table: each round every node marks a fresh packet id and
// re-checks it as duplicates arrive from neighbors; rounds are separated
// by clear() (per-scenario reset).
void BM_FloodSeen(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  routing::FloodController flood(n);
  std::uint64_t id = 0;
  std::int64_t ops = 0;
  for (auto _ : state) {
    flood.clear();
    for (int round = 0; round < 16; ++round) {
      ++id;
      for (net::NodeId node = 0; node < n; ++node) {
        benchmark::DoNotOptimize(flood.mark_seen(node, id));
        benchmark::DoNotOptimize(flood.mark_seen(node, id));  // dup path
        benchmark::DoNotOptimize(flood.has_seen(node, id));
        ops += 3;
      }
    }
  }
  state.SetItemsProcessed(ops);
}
BENCHMARK(BM_FloodSeen)->Arg(80)->Arg(160);

void BM_GpsrNextHop(benchmark::State& state) {
  RadioFixtureState fx(static_cast<std::size_t>(state.range(0)), 11);
  routing::Gpsr gpsr(fx.net);
  support::Rng rng(3);
  for (auto _ : state) {
    net::Packet p;
    p.dest_location = {rng.uniform(0, 1200), rng.uniform(0, 1200)};
    const auto self =
        static_cast<net::NodeId>(rng.uniform_int(fx.net.node_count()));
    benchmark::DoNotOptimize(gpsr.next_hop(self, p));
  }
}
BENCHMARK(BM_GpsrNextHop)->Arg(80)->Arg(160);

void BM_GabrielPlanarization(benchmark::State& state) {
  RadioFixtureState fx(static_cast<std::size_t>(state.range(0)), 13);
  routing::Gpsr gpsr(fx.net);
  net::NodeId i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gpsr.planar_neighbors(i));
    i = (i + 1) % fx.net.node_count();
  }
}
BENCHMARK(BM_GabrielPlanarization)->Arg(80)->Arg(160);

// Epoch-cached planarization: after the first lap every call is a cache
// hit until the topology epoch bumps.  Compare against the uncached
// BM_GabrielPlanarization above.
void BM_GabrielPlanarizationCached(benchmark::State& state) {
  RadioFixtureState fx(static_cast<std::size_t>(state.range(0)), 13);
  routing::Gpsr gpsr(fx.net);
  net::NodeId i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gpsr.planar_neighbors_cached(i).size());
    i = (i + 1) % fx.net.node_count();
  }
}
BENCHMARK(BM_GabrielPlanarizationCached)->Arg(80)->Arg(160);

void BM_CacheInsertEvict(benchmark::State& state) {
  support::Rng rng(5);
  cache::CacheStore store(64 * 1024, cache::make_policy("gd-ld"));
  geo::Key key = 0;
  for (auto _ : state) {
    cache::CacheEntry e;
    e.key = ++key;
    e.size_bytes = 1024 + rng.uniform_int(4096);
    e.access_count = rng.uniform(0, 10);
    e.region_distance = rng.uniform(0, 2);
    benchmark::DoNotOptimize(store.insert(e));
  }
}
BENCHMARK(BM_CacheInsertEvict);

void BM_CacheTouch(benchmark::State& state) {
  cache::CacheStore store(1024 * 1024, cache::make_policy("gd-ld"));
  for (geo::Key k = 0; k < 200; ++k) {
    cache::CacheEntry e;
    e.key = k;
    e.size_bytes = 1024;
    store.insert(e);
  }
  geo::Key k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.touch(k, 1.0, 0.5));
    k = (k + 1) % 200;
  }
}
BENCHMARK(BM_CacheTouch);

void BM_ZipfSample(benchmark::State& state) {
  const workload::ZipfGenerator zipf(
      static_cast<std::size_t>(state.range(0)), 0.8);
  support::Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
}
BENCHMARK(BM_ZipfSample)->Arg(1000)->Arg(100000);

void BM_GeoHashHomeRegion(benchmark::State& state) {
  const geo::GeoHash hash({{0, 0}, {1200, 1200}});
  const auto table = geo::RegionTable::grid({{0, 0}, {1200, 1200}}, 3, 3);
  geo::Key k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash.home_region(++k, table));
  }
}
BENCHMARK(BM_GeoHashHomeRegion);

void BM_SpatialGridRebuildQuery(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  support::Rng rng(21);
  std::vector<geo::Point> pts;
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0, 2400), rng.uniform(0, 2400)});
  }
  const std::vector<char> alive(n, 1);
  net::SpatialGrid grid({{0, 0}, {2400, 2400}}, 250.0);
  std::vector<std::uint32_t> out;
  for (auto _ : state) {
    grid.rebuild(pts, alive);
    for (int q = 0; q < 16; ++q) {
      out.clear();
      grid.query(pts[static_cast<std::size_t>(q) % n], 250.0, out);
      benchmark::DoNotOptimize(out.size());
    }
  }
}
BENCHMARK(BM_SpatialGridRebuildQuery)->Arg(160)->Arg(640);

// Rebuild-only cost of the spatial index at city-grid scale (constant
// density: the area grows with the node count so cells hold ~7 nodes, as
// in the paper's 160-node/1200 m configuration).  This is the loop the
// radio pays every spatial_index_staleness_s once worlds reach 10^4-10^5
// nodes, so it is pinned in tools/bench_diff.py.
void BM_SpatialGridRebuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const double side =
      1200.0 * std::sqrt(static_cast<double>(n) / 160.0);
  support::Rng rng(29);
  std::vector<geo::Point> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0, side), rng.uniform(0, side)});
  }
  std::vector<char> alive(n, 1);
  for (std::size_t i = 0; i < n; i += 16) alive[i] = 0;  // dead-node skips
  net::SpatialGrid grid({{0, 0}, {side, side}}, 250.0);
  for (auto _ : state) {
    grid.rebuild(pts, alive);
    benchmark::DoNotOptimize(grid.indexed_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SpatialGridRebuild)->Arg(1024)->Arg(8192);

// Steady-state victim selection: a full catalog absorbs one same-sized
// insert per iteration, so every insert is exactly one minimum-priority
// scan over `n` resident entries plus one eviction.  This is the
// replacement-policy inner loop the paper's GD-LD comparison sweeps.
void BM_CacheScan(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kEntryBytes = 2048;
  support::Rng rng(31);
  cache::CacheStore store(n * kEntryBytes, cache::make_policy("gd-ld"));
  geo::Key key = 0;
  for (std::size_t i = 0; i < n; ++i) {
    cache::CacheEntry e;
    e.key = ++key;
    e.size_bytes = kEntryBytes;
    e.access_count = rng.uniform(0, 10);
    e.region_distance = rng.uniform(0, 2);
    store.insert(e);
  }
  for (auto _ : state) {
    cache::CacheEntry e;
    e.key = ++key;
    e.size_bytes = kEntryBytes;
    e.access_count = rng.uniform(0, 10);
    e.region_distance = rng.uniform(0, 2);
    benchmark::DoNotOptimize(store.insert(e));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CacheScan)->Arg(256)->Arg(1024);

// End-to-end cost of a small world-sharded run (DESIGN.md §13): domain
// replicas, the derived-lookahead window loop, cross-cut frame
// marshalling and the conservation audit, on one worker so the number is
// the sharding machinery's overhead rather than a parallelism claim.
// Pinned in tools/bench_diff.py: the window loop runs once per derived
// lookahead (sub-millisecond), so a regression here multiplies across
// every world-sharded simulated second.
void BM_WorldShardedRun(benchmark::State& state) {
  core::PrecinctConfig c;
  c.n_nodes = 24;
  c.area = {{0.0, 0.0}, {600.0, 600.0}};
  c.regions_x = c.regions_y = 3;
  c.catalog.n_items = 100;
  c.mean_request_interval_s = 4.0;
  c.warmup_s = 2.0;
  c.measure_s = 8.0;
  c.seed = 77;
  c.shards = 1;
  for (auto _ : state) {
    const core::WorldShardedMetrics m = core::run_world_scenario(c);
    benchmark::DoNotOptimize(m.frames_processed);
  }
}
BENCHMARK(BM_WorldShardedRun);

void BM_KvFileParse(benchmark::State& state) {
  std::string text;
  for (int i = 0; i < 40; ++i) {
    text += "key_" + std::to_string(i) + " = " + std::to_string(i * 1.5) +
            "  # comment\n";
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(support::KvFile::parse(text));
  }
}
BENCHMARK(BM_KvFileParse);

void BM_Sparkline(benchmark::State& state) {
  support::Rng rng(4);
  std::vector<double> series;
  for (int i = 0; i < 120; ++i) series.push_back(rng.uniform(0, 100));
  for (auto _ : state) {
    benchmark::DoNotOptimize(support::sparkline(series));
  }
}
BENCHMARK(BM_Sparkline);

void BM_RandomWaypointAdvance(benchmark::State& state) {
  mobility::RandomWaypointConfig cfg;
  mobility::RandomWaypoint rwp(80, cfg, 3);
  double t = 0.0;
  std::size_t i = 0;
  for (auto _ : state) {
    t += 0.01;
    benchmark::DoNotOptimize(rwp.position_at(i, t));
    i = (i + 1) % 80;
  }
}
BENCHMARK(BM_RandomWaypointAdvance);

}  // namespace

// Custom main (instead of benchmark_main): captures the host/build
// context, refuses under PRECINCT_BENCH_STRICT=1 when it is
// untrustworthy, and embeds it in the JSON report's context block so
// checked-in BENCH_micro.json snapshots carry their own provenance
// (tools/bench_diff.py keys comparability off these fields).
int main(int argc, char** argv) {
  const precinct::bench::BenchContext ctx =
      precinct::bench::announce_bench_context();
  benchmark::AddCustomContext("precinct_build_type", ctx.build_type);
  benchmark::AddCustomContext("precinct_host_cores",
                              std::to_string(ctx.cores));
  benchmark::AddCustomContext("precinct_cpu_governor", ctx.cpu_governor);
  benchmark::AddCustomContext("precinct_trustworthy",
                              ctx.trustworthy ? "true" : "false");
  if (!ctx.trustworthy) {
    benchmark::AddCustomContext("precinct_caveat", ctx.caveat);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
