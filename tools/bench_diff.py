#!/usr/bin/env python3
"""Perf-regression gate over google-benchmark JSON snapshots.

Usage: bench_diff.py BASELINE.json CANDIDATE.json [--threshold 0.15]

Compares the pinned benchmark families below and fails (exit 1) when any
candidate cpu_time regresses more than the threshold over the baseline.

Trustworthiness first: numbers measured under incomparable contexts are
not evidence of a regression, so the gate REFUSES to judge (exit 0 with a
loud INFO) when

  * either snapshot is not a Release build (precinct_build_type, written
    by micro_bench's custom main; older snapshots without the key are
    treated as unknown => incomparable),
  * either snapshot's *benchmark library* is not a Release build
    (library_build_type, written by the harness itself): a Debug timing
    loop measures the harness, not the code under test,
  * either snapshot was captured with CPU frequency scaling active,
  * host identity (cpu count / nominal MHz) differs between the two.

A refusal is deliberately exit 0: an incomparable pair on CI (e.g. the
checked-in baseline predates the context schema, or CI moved to different
hardware) means "re-baseline", not "the code got slower".
"""

import argparse
import json
import sys

# Families gated for regressions: the simulator substrate's hot paths.
# Additions are welcome; removals should explain themselves in review.
PINNED_FAMILIES = (
    "BM_EventQueueScheduleRun",
    "BM_EventQueueCancel",
    "BM_NeighborQuery",
    "BM_BroadcastFanout",
    "BM_FloodSeen",
    "BM_GpsrNextHop",
    "BM_CacheInsertEvict",
    "BM_CacheTouch",
    "BM_ZipfSample",
    "BM_GeoHashHomeRegion",
    "BM_SpatialGridRebuildQuery",
    "BM_SpatialGridRebuild",
    "BM_CacheScan",
    "BM_WorldShardedRun",
)


def info(msg):
    print(f"INFO: {msg}")


def load(path):
    with open(path) as f:
        return json.load(f)


def context_fingerprint(ctx):
    """The identity a measurement is only comparable within."""
    return {
        "build_type": ctx.get("precinct_build_type", "unknown"),
        "library_build_type": ctx.get("library_build_type", "unknown"),
        "trustworthy": ctx.get("precinct_trustworthy", "unknown"),
        "cpu_scaling": bool(ctx.get("cpu_scaling_enabled", False)),
        "num_cpus": ctx.get("num_cpus"),
        "mhz_per_cpu": ctx.get("mhz_per_cpu"),
    }


def refuse(reason, base_fp, cand_fp):
    info("*** NOT COMPARABLE — refusing to judge performance ***")
    info(f"reason: {reason}")
    info(f"baseline context:  {base_fp}")
    info(f"candidate context: {cand_fp}")
    info("re-baseline on the target host (cmake --build build --target "
         "bench_report) instead of trusting this diff")
    return 0


def best_times(report):
    """name -> min cpu_time over iteration entries (ns assumed uniform)."""
    out = {}
    for b in report.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue  # skip mean/median/stddev aggregates
        name = b["name"]
        t = float(b["cpu_time"])
        if name not in out or t < out[name]:
            out[name] = t
    return out


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="max allowed fractional cpu_time regression")
    args = ap.parse_args()

    try:
        base = load(args.baseline)
        cand = load(args.candidate)
    except (OSError, json.JSONDecodeError) as e:
        print(f"ERROR: cannot load snapshots: {e}")
        return 2

    base_fp = context_fingerprint(base.get("context", {}))
    cand_fp = context_fingerprint(cand.get("context", {}))

    for label, fp in (("baseline", base_fp), ("candidate", cand_fp)):
        if fp["build_type"] != "Release":
            return refuse(f"{label} build_type is '{fp['build_type']}', "
                          "need Release", base_fp, cand_fp)
        if fp["library_build_type"] != "release":
            # A Debug-built benchmark library times its own unoptimized
            # measurement loop; numbers from it are not evidence either
            # way (same philosophy as PRECINCT_BENCH_STRICT).
            return refuse(f"{label} benchmark library_build_type is "
                          f"'{fp['library_build_type']}', need 'release'",
                          base_fp, cand_fp)
        if fp["trustworthy"] != "true":
            return refuse(f"{label} was captured under an untrustworthy "
                          "context (precinct_trustworthy != true)",
                          base_fp, cand_fp)
        if fp["cpu_scaling"]:
            return refuse(f"{label} was captured with CPU frequency scaling "
                          "active", base_fp, cand_fp)
    for key in ("num_cpus", "mhz_per_cpu"):
        if base_fp[key] != cand_fp[key]:
            return refuse(f"host mismatch: {key} {base_fp[key]} vs "
                          f"{cand_fp[key]}", base_fp, cand_fp)

    base_times = best_times(base)
    cand_times = best_times(cand)
    regressions = []
    compared = 0
    for name in sorted(base_times):
        if not name.startswith(PINNED_FAMILIES):
            continue
        if name not in cand_times:
            info(f"pinned benchmark '{name}' missing from candidate (renamed? "
                 "update PINNED_FAMILIES)")
            continue
        compared += 1
        b, c = base_times[name], cand_times[name]
        ratio = c / b if b > 0 else float("inf")
        marker = ""
        if ratio > 1.0 + args.threshold:
            regressions.append((name, b, c, ratio))
            marker = "  <-- REGRESSION"
        print(f"  {name:45s} {b:12.1f} -> {c:12.1f} ns  ({ratio:5.2f}x)"
              f"{marker}")

    if compared == 0:
        print("ERROR: no pinned benchmarks in common — wrong files?")
        return 2
    if regressions:
        print(f"\nFAIL: {len(regressions)} pinned benchmark(s) regressed "
              f"more than {args.threshold:.0%}:")
        for name, b, c, ratio in regressions:
            print(f"  {name}: {b:.1f} -> {c:.1f} ns ({ratio:.2f}x)")
        return 1
    print(f"\nOK: {compared} pinned benchmarks within {args.threshold:.0%} "
          "of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
