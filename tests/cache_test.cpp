// Unit tests for the cache store and replacement policies, including the
// paper's GD-LD utility function (Eq. 1) and greedy-dual aging semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cache/cache_store.hpp"
#include "cache/policies.hpp"
#include "support/rng.hpp"

namespace {

using namespace precinct::cache;
using precinct::geo::Key;

CacheEntry entry(Key key, std::size_t size, double access = 1.0,
                 double reg_dst = 0.0) {
  CacheEntry e;
  e.key = key;
  e.size_bytes = size;
  e.access_count = access;
  e.region_distance = reg_dst;
  return e;
}

TEST(GdLd, UtilityMatchesEquation1) {
  const GdLdWeights w{2.0, 3.0, 4096.0};
  const GdLd policy(w);
  const CacheEntry e = entry(1, 1024, 5.0, 1.5);
  EXPECT_DOUBLE_EQ(policy.score(e), 2.0 * 5.0 + 3.0 * 1.5 + 4096.0 / 1024.0);
}

TEST(GdLd, FavorsPopularItems) {
  const GdLd policy;
  EXPECT_GT(policy.score(entry(1, 1000, 10.0, 0.5)),
            policy.score(entry(2, 1000, 2.0, 0.5)));
}

TEST(GdLd, FavorsDistantItems) {
  const GdLd policy;
  EXPECT_GT(policy.score(entry(1, 1000, 1.0, 2.0)),
            policy.score(entry(2, 1000, 1.0, 0.1)));
}

TEST(GdLd, FavorsSmallItems) {
  const GdLd policy;
  EXPECT_GT(policy.score(entry(1, 500, 1.0, 1.0)),
            policy.score(entry(2, 5000, 1.0, 1.0)));
}

TEST(GdSize, IgnoresPopularityAndDistance) {
  const GdSize policy;
  EXPECT_DOUBLE_EQ(policy.score(entry(1, 1000, 100.0, 9.0)),
                   policy.score(entry(2, 1000, 0.0, 0.0)));
  EXPECT_GT(policy.score(entry(1, 500)), policy.score(entry(2, 5000)));
}

TEST(Policies, FactoryByName) {
  EXPECT_EQ(make_policy("gd-ld")->name(), "GD-LD");
  EXPECT_EQ(make_policy("gd-size")->name(), "GD-Size");
  EXPECT_EQ(make_policy("gdsf")->name(), "GDSF");
  EXPECT_EQ(make_policy("lru")->name(), "LRU");
  EXPECT_EQ(make_policy("lfu")->name(), "LFU");
  EXPECT_THROW(make_policy("arc"), std::invalid_argument);
}

TEST(Gdsf, WeighsFrequencyOverSize) {
  const Gdsf policy;
  // Popular-but-large beats unpopular-but-small when frequency dominates.
  EXPECT_GT(policy.score(entry(1, 4000, 20.0)),
            policy.score(entry(2, 1000, 1.0)));
  // At equal frequency, smaller wins (the GD-Size behavior).
  EXPECT_GT(policy.score(entry(1, 1000, 2.0)),
            policy.score(entry(2, 4000, 2.0)));
}

TEST(Policies, InflationFlags) {
  EXPECT_TRUE(make_policy("gd-ld")->inflates());
  EXPECT_TRUE(make_policy("gd-size")->inflates());
  EXPECT_FALSE(make_policy("lru")->inflates());
  EXPECT_FALSE(make_policy("lfu")->inflates());
}

TEST(CacheStore, RejectsNullPolicy) {
  EXPECT_THROW(CacheStore(1000, nullptr), std::invalid_argument);
}

TEST(CacheStore, InsertAndFind) {
  CacheStore store(10000, make_policy("gd-ld"));
  const auto result = store.insert(entry(1, 3000));
  EXPECT_TRUE(result.admitted);
  EXPECT_TRUE(result.evicted.empty());
  EXPECT_EQ(store.used_bytes(), 3000u);
  ASSERT_NE(store.find(1), nullptr);
  EXPECT_EQ(store.find(2), nullptr);
}

TEST(CacheStore, RejectsOversizedItem) {
  CacheStore store(1000, make_policy("gd-ld"));
  EXPECT_FALSE(store.insert(entry(1, 1001)).admitted);
  EXPECT_EQ(store.used_bytes(), 0u);
}

TEST(CacheStore, EvictsLowestUtilityFirst) {
  CacheStore store(10000, make_policy("gd-ld"));
  store.insert(entry(1, 4000, /*access=*/10.0, /*reg_dst=*/1.0));  // valuable
  store.insert(entry(2, 4000, /*access=*/1.0, /*reg_dst=*/0.0));   // victim
  const auto result = store.insert(entry(3, 4000, 5.0, 0.5));
  EXPECT_TRUE(result.admitted);
  ASSERT_EQ(result.evicted.size(), 1u);
  EXPECT_EQ(result.evicted[0], 2u);
  EXPECT_NE(store.find(1), nullptr);
  EXPECT_EQ(store.find(2), nullptr);
}

TEST(CacheStore, EvictsMultipleForLargeInsert) {
  CacheStore store(10000, make_policy("gd-ld"));
  store.insert(entry(1, 3000));
  store.insert(entry(2, 3000));
  store.insert(entry(3, 3000));
  const auto result = store.insert(entry(4, 8000, 100.0, 2.0));
  EXPECT_TRUE(result.admitted);
  EXPECT_GE(result.evicted.size(), 2u);
  EXPECT_LE(store.used_bytes(), 10000u);
}

TEST(CacheStore, GreedyDualInflationAgesResidents) {
  // After an eviction at priority L, new entries start at L + score, so a
  // newly inserted cold item outranks an old cold item (paper Figure 1:
  // U(d) = L + U(d)).
  CacheStore store(8000, make_policy("gd-ld"));
  store.insert(entry(1, 4000, 0.0, 0.0));
  store.insert(entry(2, 4000, 0.0, 0.0));
  // Force an eviction; L rises to the victim's priority.
  store.insert(entry(3, 4000, 0.0, 0.0));
  EXPECT_GT(store.inflation_floor(), 0.0);
  const CacheEntry* survivor = store.find(3);
  ASSERT_NE(survivor, nullptr);
  EXPECT_DOUBLE_EQ(survivor->inflation, store.inflation_floor());
}

TEST(CacheStore, TouchUpdatesUtilityState) {
  CacheStore store(10000, make_policy("gd-ld"));
  store.insert(entry(1, 2000, 1.0, 0.5));
  EXPECT_TRUE(store.touch(1, 42.0, 1.5));
  const CacheEntry* e = store.find(1);
  ASSERT_NE(e, nullptr);
  EXPECT_DOUBLE_EQ(e->access_count, 2.0);
  EXPECT_DOUBLE_EQ(e->last_access_s, 42.0);
  EXPECT_DOUBLE_EQ(e->region_distance, 1.5);
  EXPECT_FALSE(store.touch(99, 0.0, 0.0));
}

TEST(CacheStore, RefreshUpdatesConsistencyState) {
  CacheStore store(10000, make_policy("gd-ld"));
  store.insert(entry(1, 2000));
  store.invalidate(1);
  EXPECT_TRUE(store.find(1)->invalidated);
  EXPECT_TRUE(store.refresh(1, 7, 100.0));
  const CacheEntry* e = store.find(1);
  EXPECT_EQ(e->version, 7u);
  EXPECT_DOUBLE_EQ(e->ttr_expiry_s, 100.0);
  EXPECT_FALSE(e->invalidated);
  EXPECT_FALSE(store.refresh(99, 1, 0.0));
}

TEST(CacheStore, ReinsertRefreshesInPlace) {
  CacheStore store(10000, make_policy("gd-ld"));
  store.insert(entry(1, 2000, 1.0, 0.0));
  store.touch(1, 1.0, 0.0);  // access_count -> 2
  CacheEntry updated = entry(1, 3000, 1.0, 0.0);
  updated.version = 5;
  const auto result = store.insert(updated);
  EXPECT_TRUE(result.admitted);
  const CacheEntry* e = store.find(1);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->version, 5u);
  EXPECT_EQ(e->size_bytes, 3000u);
  EXPECT_DOUBLE_EQ(e->access_count, 2.0);  // preserved across refresh
  EXPECT_EQ(store.used_bytes(), 3000u);
  EXPECT_EQ(store.entry_count(), 1u);
}

TEST(CacheStore, EraseFreesSpace) {
  CacheStore store(10000, make_policy("gd-ld"));
  store.insert(entry(1, 2000));
  EXPECT_TRUE(store.erase(1));
  EXPECT_FALSE(store.erase(1));
  EXPECT_EQ(store.used_bytes(), 0u);
}

TEST(CacheStore, LruEvictsOldest) {
  CacheStore store(6000, make_policy("lru"));
  CacheEntry a = entry(1, 3000);
  a.last_access_s = 1.0;
  CacheEntry b = entry(2, 3000);
  b.last_access_s = 2.0;
  store.insert(a);
  store.insert(b);
  const auto result = store.insert([&] {
    CacheEntry c = entry(3, 3000);
    c.last_access_s = 3.0;
    return c;
  }());
  ASSERT_EQ(result.evicted.size(), 1u);
  EXPECT_EQ(result.evicted[0], 1u);
}

TEST(CacheStore, LfuEvictsLeastFrequent) {
  CacheStore store(6000, make_policy("lfu"));
  store.insert(entry(1, 3000, 5.0));
  store.insert(entry(2, 3000, 1.0));
  const auto result = store.insert(entry(3, 3000, 2.0));
  ASSERT_EQ(result.evicted.size(), 1u);
  EXPECT_EQ(result.evicted[0], 2u);
}

TEST(CacheStore, StaticSpaceIsSeparate) {
  CacheStore store(4000, make_policy("gd-ld"));
  store.put_static(entry(1, 3000));
  store.put_static(entry(2, 3000));  // exceeds dynamic capacity: fine
  EXPECT_EQ(store.static_count(), 2u);
  EXPECT_EQ(store.static_bytes(), 6000u);
  EXPECT_EQ(store.used_bytes(), 0u);  // dynamic space untouched
  EXPECT_NE(store.find_static(1), nullptr);
  EXPECT_EQ(store.find(1), nullptr);  // not in dynamic space
}

TEST(CacheStore, PutStaticOverwrites) {
  CacheStore store(4000, make_policy("gd-ld"));
  store.put_static(entry(1, 3000));
  CacheEntry updated = entry(1, 2000);
  updated.version = 9;
  store.put_static(updated);
  EXPECT_EQ(store.static_count(), 1u);
  EXPECT_EQ(store.static_bytes(), 2000u);
  EXPECT_EQ(store.find_static(1)->version, 9u);
}

TEST(CacheStore, TakeAllStaticDrainsCustody) {
  CacheStore store(4000, make_policy("gd-ld"));
  store.put_static(entry(1, 1000));
  store.put_static(entry(2, 1000));
  const auto taken = store.take_all_static();
  EXPECT_EQ(taken.size(), 2u);
  EXPECT_EQ(store.static_count(), 0u);
  EXPECT_EQ(store.static_bytes(), 0u);
}

TEST(CacheStore, EraseStatic) {
  CacheStore store(4000, make_policy("gd-ld"));
  store.put_static(entry(1, 1000));
  EXPECT_TRUE(store.erase_static(1));
  EXPECT_FALSE(store.erase_static(1));
}

TEST(CacheStore, FindStaticMutableAllowsVersionBump) {
  CacheStore store(4000, make_policy("gd-ld"));
  store.put_static(entry(1, 1000));
  CacheEntry* e = store.find_static_mutable(1);
  ASSERT_NE(e, nullptr);
  e->version = 3;
  EXPECT_EQ(store.find_static(1)->version, 3u);
}

TEST(CacheStore, KeysListsDynamicEntries) {
  CacheStore store(10000, make_policy("gd-ld"));
  store.insert(entry(1, 1000));
  store.insert(entry(2, 1000));
  auto keys = store.keys();
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(keys, (std::vector<Key>{1, 2}));
}

// Property-style sweep: under every policy, capacity is never exceeded
// and entry_count matches the live set after random traffic.
class CachePolicyProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(CachePolicyProperty, CapacityInvariantUnderRandomTraffic) {
  CacheStore store(20000, make_policy(GetParam()));
  precinct::support::Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    const Key key = rng.uniform_int(64);
    const auto size = 500 + rng.uniform_int(4000);
    CacheEntry e = entry(key, size, rng.uniform(0, 10), rng.uniform(0, 2));
    e.last_access_s = i;
    store.insert(e);
    EXPECT_LE(store.used_bytes(), 20000u);
    if (i % 7 == 0) store.touch(key, i, 1.0);
    if (i % 13 == 0) store.erase(rng.uniform_int(64));
  }
  // used_bytes equals the sum over resident entries.
  std::size_t total = 0;
  for (const Key k : store.keys()) total += store.find(k)->size_bytes;
  EXPECT_EQ(total, store.used_bytes());
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, CachePolicyProperty,
                         ::testing::Values("gd-ld", "gd-size", "gdsf", "lru",
                                           "lfu"));

}  // namespace
