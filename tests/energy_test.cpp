// Unit tests for the Feeney linear energy model and accounting.
#include <gtest/gtest.h>

#include <numbers>

#include "energy/accounting.hpp"
#include "energy/feeney_model.hpp"

namespace {

using namespace precinct::energy;

TEST(LinearCost, EvaluatesLine) {
  const LinearCost c{2.0, 5.0};
  EXPECT_DOUBLE_EQ(c(0), 5.0);
  EXPECT_DOUBLE_EQ(c(10), 25.0);
}

TEST(FeeneyModel, SendCostsExceedReceive) {
  const FeeneyModel m;
  for (std::size_t size : {64u, 1024u, 10240u}) {
    EXPECT_GT(m.broadcast_send(size), m.broadcast_recv(size));
    EXPECT_GT(m.p2p_send(size), m.p2p_recv(size));
    EXPECT_GT(m.p2p_recv(size), m.p2p_discard(size));
  }
}

TEST(FeeneyModel, BroadcastTotalMatchesEq8) {
  const FeeneyModel m;
  const double zeta = 7.0;
  EXPECT_DOUBLE_EQ(m.broadcast_total(100, zeta),
                   m.broadcast_send(100) + zeta * m.broadcast_recv(100));
}

TEST(FeeneyModel, P2pHopIncludesOverhearers) {
  const FeeneyModel m;
  const double base = m.p2p_hop(100, 0.0);
  EXPECT_DOUBLE_EQ(base, m.p2p_send(100) + m.p2p_recv(100));
  EXPECT_DOUBLE_EQ(m.p2p_hop(100, 3.0), base + 3.0 * m.p2p_discard(100));
}

TEST(ExpectedReceivers, MatchesDensityFormula) {
  // delta = N/A, zeta = delta*pi*r^2, minus the sender itself (Eq. 6-7).
  const double n = 80, a = 600.0 * 600.0, r = 250.0;
  const double expected = n / a * std::numbers::pi * r * r - 1.0;
  EXPECT_NEAR(expected_receivers(n, a, r), expected, 1e-9);
}

TEST(ExpectedReceivers, ClampsToPopulation) {
  // Tiny area: everyone is in range, but at most N-1 others receive.
  EXPECT_DOUBLE_EQ(expected_receivers(10, 100.0, 250.0), 9.0);
}

TEST(ExpectedReceivers, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(expected_receivers(0, 100.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(expected_receivers(10, 0.0, 10.0), 0.0);
}

TEST(EnergyAccountant, ChargesCorrectMeters) {
  EnergyAccountant acc(FeeneyModel{}, 3);
  const double c1 = acc.charge(0, RadioOp::kBroadcastSend, 100);
  const double c2 = acc.charge(1, RadioOp::kBroadcastRecv, 100);
  const double c3 = acc.charge(2, RadioOp::kP2pDiscard, 100);
  EXPECT_GT(c1, 0.0);
  EXPECT_DOUBLE_EQ(acc.node(0).broadcast_send_mj, c1);
  EXPECT_DOUBLE_EQ(acc.node(1).broadcast_recv_mj, c2);
  EXPECT_DOUBLE_EQ(acc.node(2).p2p_discard_mj, c3);
  EXPECT_DOUBLE_EQ(acc.node(0).total_mj(), c1);
}

TEST(EnergyAccountant, NetworkTotalSumsNodes) {
  EnergyAccountant acc(FeeneyModel{}, 4);
  double expected = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    expected += acc.charge(i, RadioOp::kP2pSend, 64);
    expected += acc.charge(i, RadioOp::kP2pRecv, 64);
  }
  EXPECT_NEAR(acc.network_total().total_mj(), expected, 1e-12);
}

TEST(EnergyAccountant, ThrowsOnBadNode) {
  EnergyAccountant acc(FeeneyModel{}, 2);
  EXPECT_THROW(acc.charge(5, RadioOp::kP2pSend, 10), std::out_of_range);
}

TEST(EnergyAccountant, EnsureNodesGrows) {
  EnergyAccountant acc(FeeneyModel{}, 2);
  acc.ensure_nodes(5);
  EXPECT_EQ(acc.node_count(), 5u);
  EXPECT_NO_THROW(acc.charge(4, RadioOp::kP2pSend, 10));
}

TEST(EnergyBreakdown, PlusEqualsAccumulates) {
  EnergyBreakdown a, b;
  a.p2p_send_mj = 1.0;
  b.p2p_send_mj = 2.0;
  b.broadcast_recv_mj = 3.0;
  a += b;
  EXPECT_DOUBLE_EQ(a.p2p_send_mj, 3.0);
  EXPECT_DOUBLE_EQ(a.broadcast_recv_mj, 3.0);
  EXPECT_DOUBLE_EQ(a.total_mj(), 6.0);
}

}  // namespace
