// Region-sharded conservative parallel execution (DESIGN.md §11):
// barrier reuse, grid partitioning, executor ordering/determinism, and
// the ShardedScenario's shards-invariance contract.
#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <thread>
#include <vector>

#include "core/sharded_scenario.hpp"
#include "geo/shard_partition.hpp"
#include "sim/shard_exec.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace precinct;

// ---- support::Barrier -----------------------------------------------------

TEST(Barrier, ReusedAcrossManyCycles) {
  constexpr std::size_t kParties = 4;
  constexpr int kCycles = 200;
  support::Barrier barrier(kParties);
  std::atomic<int> entered{0};
  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  for (std::size_t p = 0; p < kParties; ++p) {
    threads.emplace_back([&] {
      for (int c = 0; c < kCycles; ++c) {
        entered.fetch_add(1);
        barrier.arrive_and_wait();
        // After the barrier every party of this cycle has entered: the
        // counter must be at least (c+1)*parties even if some parties
        // raced ahead into the next cycle.
        if (entered.load() < static_cast<int>((c + 1) * kParties)) {
          failed.store(true);
        }
        barrier.arrive_and_wait();  // second barrier separates cycles
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(barrier.cycles(), 2 * kCycles);
  EXPECT_EQ(barrier.parties(), kParties);
}

TEST(Barrier, SinglePartyNeverBlocks) {
  support::Barrier barrier(1);
  for (int i = 0; i < 10; ++i) barrier.arrive_and_wait();
  EXPECT_EQ(barrier.cycles(), 10u);
}

// ---- geo::partition_grid --------------------------------------------------

TEST(ShardPartition, CoversEveryDomainExactlyOnce) {
  const geo::ShardPartition p = geo::partition_grid(5, 4, 3);
  EXPECT_EQ(p.n_shards, 3u);
  EXPECT_EQ(p.domains(), 20u);
  std::vector<int> seen(20, 0);
  for (std::uint32_t s = 0; s < p.n_shards; ++s) {
    for (const std::uint32_t d : p.members[s]) {
      EXPECT_EQ(p.shard_of[d], s);
      ++seen[d];
    }
  }
  for (const int count : seen) EXPECT_EQ(count, 1);
}

TEST(ShardPartition, BalancedWithinOneDomain) {
  for (const std::uint32_t k : {1u, 2u, 3u, 5u, 7u, 16u}) {
    const geo::ShardPartition p = geo::partition_grid(4, 4, k);
    std::size_t lo = p.members[0].size(), hi = lo;
    for (const auto& m : p.members) {
      lo = std::min(lo, m.size());
      hi = std::max(hi, m.size());
    }
    EXPECT_LE(hi - lo, 1u) << "k=" << k;
  }
}

TEST(ShardPartition, ContiguousRunsInRowMajorOrder) {
  const geo::ShardPartition p = geo::partition_grid(6, 6, 4);
  for (std::size_t d = 1; d < p.shard_of.size(); ++d) {
    // Shard ids are non-decreasing along row-major order — each shard is
    // one contiguous run.
    EXPECT_LE(p.shard_of[d - 1], p.shard_of[d]);
  }
}

TEST(ShardPartition, ClampsShardCountToDomains) {
  const geo::ShardPartition p = geo::partition_grid(2, 1, 8);
  EXPECT_EQ(p.n_shards, 2u);
  EXPECT_THROW((void)geo::partition_grid(0, 3, 1), std::invalid_argument);
}

TEST(ShardPartition, ContiguousCutsNoMoreThanRoundRobin) {
  const std::uint32_t nx = 8, ny = 8, k = 4;
  const geo::ShardPartition p = geo::partition_grid(nx, ny, k);
  std::vector<std::uint32_t> round_robin(nx * ny);
  for (std::uint32_t i = 0; i < nx * ny; ++i) round_robin[i] = i % k;
  EXPECT_LE(geo::cut_edges(nx, ny, p.shard_of),
            geo::cut_edges(nx, ny, round_robin));
}

// ---- sim::ShardExecutor ---------------------------------------------------

/// Toy domain fixture: N simulators, an executor over them, and a shared
/// per-domain log of (time, tag) pairs appended by merged messages.
struct ExecWorld {
  explicit ExecWorld(std::size_t n_domains, std::uint32_t n_shards,
                     double lookahead = 0.5) {
    logs.resize(n_domains);
    std::vector<sim::Simulator*> ptrs;
    std::vector<std::uint32_t> shard_of;
    for (std::size_t d = 0; d < n_domains; ++d) {
      ptrs.push_back(&sims.emplace_back());
      shard_of.push_back(static_cast<std::uint32_t>(d % n_shards));
    }
    sim::ShardExecutor::Options opts;
    opts.n_shards = n_shards;
    opts.lookahead_s = lookahead;
    exec = std::make_unique<sim::ShardExecutor>(ptrs, shard_of, opts);
  }
  std::deque<sim::Simulator> sims;  // deque: stable addresses, no moves
  std::vector<std::vector<std::pair<double, int>>> logs;
  std::unique_ptr<sim::ShardExecutor> exec;
};

TEST(ShardExecutor, MergesSameTimestampBurstInSrcSeqOrder) {
  // Domains 1 and 2 both post bursts to domain 0, all due at the same
  // instant.  The merge order must be (due, src, seq) regardless of which
  // thread drained what: src 1's messages first (in post order), then
  // src 2's.
  for (const std::uint32_t k : {1u, 3u}) {
    ExecWorld w(3, k);
    auto& log = w.logs[0];
    const double due = 1.0;  // >= first window end (0.5): conservative
    for (int i = 0; i < 4; ++i) {
      w.sims[1].schedule(0.1, [&w, i, due] {
        w.exec->post(1, 0, due, [&w, i, due] {
          w.logs[0].emplace_back(w.sims[0].now(), 100 + i);
        });
      });
      w.sims[2].schedule(0.1, [&w, i, due] {
        w.exec->post(2, 0, due, [&w, i, due] {
          w.logs[0].emplace_back(w.sims[0].now(), 200 + i);
        });
      });
    }
    w.exec->run_until(2.0);
    ASSERT_EQ(log.size(), 8u) << "k=" << k;
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(log[i].second, 100 + i);      // src 1 first, seq order
      EXPECT_EQ(log[4 + i].second, 200 + i);  // then src 2
      EXPECT_DOUBLE_EQ(log[i].first, due);
    }
    EXPECT_EQ(w.exec->messages_merged(), 8u);
  }
}

TEST(ShardExecutor, WindowCadenceIndependentOfShardCount) {
  std::vector<std::uint64_t> windows;
  for (const std::uint32_t k : {1u, 2u, 4u}) {
    ExecWorld w(4, k, 0.25);
    w.exec->run_until(3.0);
    windows.push_back(w.exec->windows());
    EXPECT_DOUBLE_EQ(w.exec->now(), 3.0);
  }
  EXPECT_EQ(windows[0], windows[1]);
  EXPECT_EQ(windows[0], windows[2]);
  EXPECT_EQ(windows[0], 12u);  // 3.0 / 0.25
}

TEST(ShardExecutor, RelayChainCrossesShardsDeterministically) {
  // A message relay 0 -> 1 -> 2 -> 3 -> 0 ... : each hop re-posts with
  // +lookahead latency.  The number of completed hops by a fixed horizon
  // must not depend on K.
  std::vector<int> hops_by_k;
  for (const std::uint32_t k : {1u, 2u, 4u}) {
    auto w = std::make_shared<ExecWorld>(4, k, 0.5);
    auto hops = std::make_shared<int>(0);
    // std::function-based relay so it can capture itself.
    auto relay = std::make_shared<std::function<void(std::uint32_t)>>();
    *relay = [w, hops, relay](std::uint32_t at) {
      ++*hops;
      const std::uint32_t next = (at + 1) % 4;
      const double due = w->sims[at].now() + 0.5;
      w->exec->post(at, next, due, [relay, next] { (*relay)(next); });
    };
    w->exec->post(0, 1, 0.5, [relay] { (*relay)(1); });
    w->exec->run_until(10.0);
    hops_by_k.push_back(*hops);
    EXPECT_GT(*hops, 5) << "relay never got going";
  }
  EXPECT_EQ(hops_by_k[0], hops_by_k[1]);
  EXPECT_EQ(hops_by_k[0], hops_by_k[2]);
}

TEST(ShardExecutor, RejectsConservativeViolation) {
  ExecWorld w(2, 2, 0.5);
  // Post from inside domain 0's compute phase with a due time before the
  // current window's end: the lookahead contract is violated and the
  // executor must throw rather than silently time-travel.
  w.sims[0].schedule(0.1, [&w] {
    w.exec->post(0, 1, 0.2, [] {});  // window end is 0.5
  });
  EXPECT_THROW(w.exec->run_until(1.0), std::logic_error);
}

TEST(ShardExecutor, RejectsBadConstruction) {
  sim::Simulator s;
  std::vector<sim::Simulator*> one{&s};
  sim::ShardExecutor::Options opts;
  opts.n_shards = 1;
  opts.lookahead_s = 0.0;  // lookahead must be positive
  EXPECT_THROW(sim::ShardExecutor(one, {0}, opts), std::invalid_argument);
  opts.lookahead_s = 0.5;
  EXPECT_THROW(sim::ShardExecutor(one, {0, 0}, opts), std::invalid_argument);
  EXPECT_THROW(sim::ShardExecutor(one, {5}, opts), std::invalid_argument);
}

// ---- core::ShardedScenario ------------------------------------------------

core::PrecinctConfig small_world() {
  core::PrecinctConfig c;
  c.n_nodes = 24;
  c.tiles_x = c.tiles_y = 2;
  c.gateway_interval_s = 3.0;
  c.gateway_latency_s = 0.25;
  c.warmup_s = 5.0;
  c.measure_s = 20.0;
  c.mean_request_interval_s = 6.0;
  c.seed = 99;
  return c;
}

TEST(ShardedScenario, FingerprintInvariantAcrossShardCounts) {
  std::string baseline;
  for (const std::uint32_t k : {1u, 2u, 4u}) {
    core::PrecinctConfig c = small_world();
    c.shards = k;
    const core::ShardedMetrics m = core::run_sharded_scenario(c);
    const std::string fp = core::sharded_fingerprint(m);
    if (k == 1) {
      baseline = fp;
      EXPECT_GT(m.gateway_requests, 0u) << "gateway streams never fired";
      EXPECT_GT(m.gateway_acks, 0u);
      EXPECT_GT(m.messages_merged, 0u);
      EXPECT_GT(m.aggregate.requests_issued, 0u);
    } else {
      EXPECT_EQ(fp, baseline) << "shards=" << k << " diverged";
    }
  }
}

TEST(ShardedScenario, PerShardInvariantCheckerHoldsUnderSharding) {
  core::PrecinctConfig c = small_world();
  c.shards = 2;
  c.check = "all";  // every tile runs its own InvariantChecker
  c.check_stride = 16;
  const core::ShardedMetrics checked = core::run_sharded_scenario(c);
  c.check.clear();
  const core::ShardedMetrics plain = core::run_sharded_scenario(c);
  // The checker is observe-only: enabling it must not change results.
  EXPECT_EQ(core::sharded_fingerprint(checked),
            core::sharded_fingerprint(plain));
}

TEST(ShardedScenario, GatewayTrafficIsAccountedInTileStats) {
  core::PrecinctConfig c = small_world();
  c.gateway_interval_s = 1.0;  // dense gateway traffic
  const core::ShardedMetrics m = core::run_sharded_scenario(c);
  EXPECT_GT(m.gateway_requests, 0u);
  EXPECT_GE(m.gateway_requests, m.gateway_served);
  EXPECT_GE(m.gateway_served, m.gateway_acks);
  // Every ack closes a round trip of >= 2 * gateway latency.
  if (m.gateway_acks > 0) {
    EXPECT_GE(m.gateway_rtt_sum_s,
              2.0 * c.gateway_latency_s * static_cast<double>(m.gateway_acks));
  }
  // The world ran 4 tiles: per-tile metrics exist and sum into aggregate.
  ASSERT_EQ(m.per_tile.size(), 4u);
  std::uint64_t issued = 0;
  for (const auto& t : m.per_tile) issued += t.requests_issued;
  EXPECT_EQ(issued, m.aggregate.requests_issued);
}

TEST(ShardedScenario, SingleTileMatchesPlainScenario) {
  // A 1x1 tile world with no gateway traffic is the plain scenario run
  // through the windowed executor: same seed derivation, so the per-tile
  // fingerprint must equal a direct Scenario run of the tile config.
  core::PrecinctConfig c = small_world();
  c.tiles_x = c.tiles_y = 1;
  c.gateway_interval_s = 0.0;
  const core::ShardedMetrics sharded = core::run_sharded_scenario(c);
  ASSERT_EQ(sharded.per_tile.size(), 1u);

  core::PrecinctConfig tile = c;
  tile.seed =
      support::hash_combine(support::hash_combine(c.seed, 0x715e), 0);
  tile.tiles_x = tile.tiles_y = 1;
  const core::Metrics direct = core::run_scenario(tile);
  EXPECT_EQ(core::fingerprint(sharded.per_tile[0]), core::fingerprint(direct));
}

}  // namespace
