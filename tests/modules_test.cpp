// Module-seam tests for the layered protocol architecture (DESIGN.md §8):
// the SchemeRegistry (name -> factory resolution), the per-PacketKind
// dispatch table (exclusive ownership), scheme/consistency combination
// validation, and custody relocation driven through the extracted
// CustodyManager.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>

#include "core/config_io.hpp"
#include "core/engine.hpp"
#include "test_util.hpp"
#include "core/retrieval_baselines.hpp"
#include "core/scheme_registry.hpp"
#include "mobility/static_placement.hpp"
#include "net/packet_dispatch.hpp"
#include "net/wireless_net.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace precinct;
using core::PrecinctConfig;
using core::PrecinctEngine;
using core::SchemeRegistry;
using net::NodeId;

// ---------------------------------------------------------------------------
// SchemeRegistry
// ---------------------------------------------------------------------------

TEST(SchemeRegistry, BuiltinsAreRegistered) {
  const SchemeRegistry& reg = SchemeRegistry::instance();
  for (const char* name : {"precinct", "flooding", "expanding-ring"}) {
    EXPECT_TRUE(reg.has_retrieval(name)) << name;
  }
  for (const char* name :
       {"none", "plain-push", "pull-every-time", "push-adaptive-pull"}) {
    EXPECT_TRUE(reg.has_consistency(name)) << name;
  }
  EXPECT_FALSE(reg.has_retrieval("gossip"));
  EXPECT_FALSE(reg.has_consistency("quorum"));
  EXPECT_GE(reg.retrieval_names().size(), 3u);
  EXPECT_GE(reg.consistency_names().size(), 4u);
}

TEST(SchemeRegistry, DuplicateRegistrationThrows) {
  SchemeRegistry& reg = SchemeRegistry::instance();
  EXPECT_THROW(reg.register_retrieval("precinct", nullptr),
               std::logic_error);
  EXPECT_THROW(reg.register_consistency("none", nullptr), std::logic_error);
}

TEST(SchemeRegistry, UnknownSchemeFailsEngineConstructionWithCatalog) {
  test_util::GridHarness h(test_util::grid_config(), /*start=*/false);
  h.config.retrieval_scheme = "warp-drive";
  try {
    h.build();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("warp-drive"), std::string::npos) << what;
    EXPECT_NE(what.find("precinct"), std::string::npos)
        << "message should list registered names: " << what;
  }
}

TEST(SchemeRegistry, ExternallyRegisteredSchemeIsSelectableByName) {
  SchemeRegistry& reg = SchemeRegistry::instance();
  // The registry is process-wide; make the registration idempotent so
  // test-order shuffling cannot double-register.
  if (!reg.has_retrieval("modules-test-flood")) {
    reg.register_retrieval("modules-test-flood", [](core::EngineContext& ctx) {
      return std::make_unique<core::FloodingRetrieval>(ctx);
    });
  }
  test_util::GridHarness h(test_util::grid_config(), /*start=*/false);
  h.config.retrieval_scheme = "modules-test-flood";
  EXPECT_NO_THROW(h.config.validate());
  PrecinctEngine& engine = h.build();
  EXPECT_STREQ(engine.retrieval_scheme_name(), "flooding");
  engine.issue_request(0, h.catalog.key_of(0));
  h.settle();
  EXPECT_EQ(engine.metrics().requests_completed, 1u);
}

// ---------------------------------------------------------------------------
// Packet dispatch table
// ---------------------------------------------------------------------------

TEST(PacketDispatch, EveryKindHasExactlyOneOwnerOnAWiredEngine) {
  test_util::GridHarness h(test_util::grid_config(), /*start=*/false);
  PrecinctEngine& engine = h.build();
  for (std::size_t i = 0; i < net::kPacketKindCount; ++i) {
    const auto kind = static_cast<net::PacketKind>(i);
    EXPECT_TRUE(engine.dispatcher().has(kind)) << net::to_string(kind);
  }
  EXPECT_EQ(engine.dispatcher().unhandled_kinds(), 0u);
}

TEST(PacketDispatch, DuplicateOwnerIsAWiringError) {
  net::PacketDispatcher dispatch;
  dispatch.set(net::PacketKind::kBeacon, [](NodeId, const net::Packet&) {});
  EXPECT_THROW(dispatch.set(net::PacketKind::kBeacon,
                            [](NodeId, const net::Packet&) {}),
               std::logic_error);
  EXPECT_THROW(dispatch.set(net::PacketKind::kRequest, nullptr),
               std::invalid_argument);
}

TEST(PacketDispatch, UnownedKindsDropInsteadOfCrashing) {
  net::PacketDispatcher dispatch;
  int calls = 0;
  dispatch.set(net::PacketKind::kRequest,
               [&](NodeId, const net::Packet&) { ++calls; });
  net::Packet packet;
  packet.kind = net::PacketKind::kRequest;
  EXPECT_TRUE(dispatch.dispatch(0, packet));
  packet.kind = net::PacketKind::kResponse;
  EXPECT_FALSE(dispatch.dispatch(0, packet));
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(dispatch.unhandled_kinds(), net::kPacketKindCount - 1);
}

// ---------------------------------------------------------------------------
// Scheme combination validation
// ---------------------------------------------------------------------------

TEST(Config, RejectsBaselineRetrievalWithPollingConsistency) {
  const auto expect_rejected = [](core::RetrievalKind retrieval,
                                  consistency::Mode mode) {
    PrecinctConfig c;
    c.retrieval = retrieval;
    c.consistency = mode;
    c.updates_enabled = true;
    try {
      c.validate();
      FAIL() << "expected rejection of " << to_string(retrieval) << " + "
             << consistency::to_string(mode);
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("polling"), std::string::npos)
          << e.what();
    }
  };
  expect_rejected(core::RetrievalKind::kFlooding,
                  consistency::Mode::kPushAdaptivePull);
  expect_rejected(core::RetrievalKind::kFlooding,
                  consistency::Mode::kPullEveryTime);
  expect_rejected(core::RetrievalKind::kExpandingRing,
                  consistency::Mode::kPushAdaptivePull);
  expect_rejected(core::RetrievalKind::kExpandingRing,
                  consistency::Mode::kPullEveryTime);
}

TEST(Config, AllowsBaselineRetrievalWithPushOrNoConsistency) {
  for (const auto mode :
       {consistency::Mode::kNone, consistency::Mode::kPlainPush}) {
    PrecinctConfig c;
    c.retrieval = core::RetrievalKind::kFlooding;
    c.consistency = mode;
    c.updates_enabled = mode != consistency::Mode::kNone;
    EXPECT_NO_THROW(c.validate()) << consistency::to_string(mode);
  }
  PrecinctConfig c;
  c.consistency = consistency::Mode::kPushAdaptivePull;
  c.updates_enabled = true;
  EXPECT_NO_THROW(c.validate());  // precinct retrieval polls fine
}

TEST(Config, RejectsUnknownSchemeNamesAtValidation) {
  PrecinctConfig r;
  r.retrieval_scheme = "definitely-not-registered";
  EXPECT_THROW(r.validate(), std::invalid_argument);
  PrecinctConfig c;
  c.consistency_scheme = "definitely-not-registered";
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(Config, KvSchemeNamesMapToEnumsOrRegistryStrings) {
  const auto builtin = core::config_from_kv(
      support::KvFile::parse("retrieval = expanding-ring\n"
                             "consistency = plain-push\n"));
  EXPECT_EQ(builtin.retrieval, core::RetrievalKind::kExpandingRing);
  EXPECT_TRUE(builtin.retrieval_scheme.empty());
  EXPECT_EQ(builtin.consistency, consistency::Mode::kPlainPush);
  EXPECT_TRUE(builtin.consistency_scheme.empty());
  EXPECT_TRUE(builtin.updates_enabled);

  const auto custom = core::config_from_kv(
      support::KvFile::parse("retrieval = custom-lookup\n"
                             "consistency = custom-sync\n"));
  EXPECT_EQ(custom.retrieval_scheme, "custom-lookup");
  EXPECT_EQ(custom.consistency_scheme, "custom-sync");
  EXPECT_TRUE(custom.updates_enabled);  // custom scheme implies updates
}

// ---------------------------------------------------------------------------
// CustodyManager through the facade
// ---------------------------------------------------------------------------

TEST(Custody, MergeThenSeparateRoundTripKeepsEveryKeyServed) {
  test_util::GridHarness h(test_util::grid_config(), /*start=*/false);
  PrecinctEngine& engine = h.build();
  const auto merged = engine.merge_regions(0, 1, /*initiator=*/4);
  ASSERT_TRUE(merged.has_value());
  h.settle(8.0);
  ASSERT_EQ(engine.region_table().size(), 8u);
  const auto halves = engine.separate_region(*merged, /*initiator=*/4);
  ASSERT_TRUE(halves.has_value());
  h.settle(8.0);
  EXPECT_EQ(engine.region_table().size(), 9u);
  // After the round trip every key still has a live custodian, and
  // requests from the far corner still complete.
  for (std::size_t i = 0; i < h.catalog.size(); ++i) {
    EXPECT_GT(engine.custody_count(h.catalog.key_of(i)), 0u)
        << "key rank " << i;
  }
  engine.issue_request(8, h.catalog.key_of(0));
  h.settle(8.0);
  EXPECT_GE(engine.metrics().requests_completed, 1u);
  EXPECT_EQ(engine.metrics().requests_failed, 0u);
}

TEST(Custody, RegionPopulationTracksFailuresAcrossTheSeam) {
  test_util::GridHarness h(test_util::grid_config(), /*start=*/false);
  PrecinctEngine& engine = h.build();
  EXPECT_EQ(engine.region_population(2), 1u);
  engine.fail_peer(2, /*graceful=*/true);
  h.settle(2.0);
  EXPECT_EQ(engine.region_population(2), 0u);
  engine.revive_peer(2);
  EXPECT_EQ(engine.region_population(2), 1u);
}

// ---------------------------------------------------------------------------
// Facade introspection
// ---------------------------------------------------------------------------

TEST(Engine, ExposesInstalledSchemeNames) {
  test_util::GridHarness h(test_util::grid_config(), /*start=*/false);
  PrecinctEngine& engine = h.build();
  EXPECT_STREQ(engine.retrieval_scheme_name(), "precinct");
  EXPECT_STREQ(engine.consistency_scheme_name(), "none");
}

TEST(Engine, RoutingDropWindowDeltaLandsInMetrics) {
  test_util::GridHarness h(test_util::grid_config(), /*start=*/false);
  PrecinctEngine& engine = h.build();
  engine.issue_request(0, h.catalog.key_of(3));
  h.settle();
  const core::Metrics m = engine.finalize();
  // Measurement started at zero drops, so the window delta must equal
  // the lifetime counters surfaced by routing_stats().
  EXPECT_EQ(m.routing.drops_void, engine.routing_stats().drops_void);
  EXPECT_EQ(m.routing.drops_ttl, engine.routing_stats().drops_ttl);
}

}  // namespace
