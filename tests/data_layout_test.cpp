// Data-oriented layout checks (DESIGN.md §12):
//
//  * allocation counts — the CSR spatial-grid rebuild and the columnar
//    cache's victim selection must be heap-free in steady state (the
//    whole point of flattening them);
//  * AoS <-> SoA equivalence — neighbor queries against a brute-force
//    O(N^2) reference, and GPSR's devirtualized ground-truth position
//    fast path against the plain virtual-provider path, on randomized
//    topologies.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "cache/cache_store.hpp"
#include "cache/policies.hpp"
#include "mobility/random_waypoint.hpp"
#include "mobility/static_placement.hpp"
#include "net/spatial_grid.hpp"
#include "net/wireless_net.hpp"
#include "routing/gpsr.hpp"
#include "routing/neighbor_provider.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"

// Counting replacements for the global allocator (same pattern as
// sim_test.cpp / net_alloc_test.cpp).
namespace alloc_probe {
std::atomic<std::uint64_t> count{0};
}  // namespace alloc_probe

void* operator new(std::size_t size) {
  alloc_probe::count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace precinct;

TEST(DataLayoutAlloc, SteadyStateGridRebuildAndQueryAreAllocationFree) {
  const geo::Rect area{{0.0, 0.0}, {1200.0, 1200.0}};
  constexpr std::size_t kNodes = 512;
  net::SpatialGrid grid(area, 250.0);

  support::Rng rng(7);
  std::vector<double> xs(kNodes), ys(kNodes);
  std::vector<std::uint8_t> alive(kNodes, 1);
  for (std::size_t i = 0; i < kNodes; ++i) {
    xs[i] = rng.uniform(0.0, 1200.0);
    ys[i] = rng.uniform(0.0, 1200.0);
  }
  const auto drift = [&] {
    for (std::size_t i = 0; i < kNodes; ++i) {
      xs[i] = std::clamp(xs[i] + rng.uniform(-5.0, 5.0), 0.0, 1200.0);
      ys[i] = std::clamp(ys[i] + rng.uniform(-5.0, 5.0), 0.0, 1200.0);
    }
  };

  // Warm-up: first rebuild sizes offsets/indices and the counting-sort
  // scratch; first queries size the output vector.
  grid.rebuild(xs.data(), ys.data(), alive.data(), kNodes);
  std::vector<std::uint32_t> out;
  for (std::size_t i = 0; i < kNodes; i += 16) {
    out.clear();
    grid.query({xs[i], ys[i]}, 250.0, out);
  }

  const std::uint64_t before = alloc_probe::count.load();
  for (int round = 0; round < 8; ++round) {
    drift();
    grid.rebuild(xs.data(), ys.data(), alive.data(), kNodes);
    for (std::size_t i = 0; i < kNodes; i += 16) {
      out.clear();
      grid.query({xs[i], ys[i]}, 250.0, out);
    }
  }
  EXPECT_EQ(alloc_probe::count.load(), before);
  EXPECT_EQ(grid.indexed_count(), kNodes);
}

TEST(DataLayoutAlloc, CacheVictimSelectionIsAllocationFree) {
  cache::CacheStore store(64 * 1024, cache::make_policy("gd-ld"));
  support::Rng rng(11);
  for (geo::Key k = 0; k < 48; ++k) {
    cache::CacheEntry e;
    e.key = k;
    e.size_bytes = 1024;
    e.access_count = rng.uniform(0.0, 10.0);
    e.region_distance = rng.uniform(0.0, 2.0);
    store.insert(e);
  }
  // Warm-up: grows the score scratch to the catalog's high-water size.
  ASSERT_TRUE(store.victim_key().has_value());

  const std::uint64_t before = alloc_probe::count.load();
  geo::Key sum = 0;
  for (int round = 0; round < 64; ++round) {
    store.touch(static_cast<geo::Key>(round % 48), round, 1.0);
    const auto victim = store.victim_key();
    ASSERT_TRUE(victim.has_value());
    sum += *victim;
  }
  EXPECT_EQ(alloc_probe::count.load(), before);
  EXPECT_LT(sum, static_cast<geo::Key>(48 * 64));  // victims are real keys
}

// Brute-force O(N^2) neighbor reference straight from the mobility
// oracle: the ground truth the SoA position cache + grid/linear sweeps
// must reproduce exactly.
std::vector<net::NodeId> brute_force_neighbors(mobility::MobilityModel& mob,
                                               net::NodeId self, double now,
                                               double range_m) {
  std::vector<net::NodeId> out;
  const geo::Point p = mob.position_at(self, now);
  for (net::NodeId i = 0; i < mob.node_count(); ++i) {
    if (i == self) continue;
    if (geo::distance(p, mob.position_at(i, now)) <= range_m) {
      out.push_back(i);
    }
  }
  return out;
}

TEST(DataLayoutEquivalence, NeighborsMatchBruteForceOnRandomTopologies) {
  // Below spatial_index_threshold the linear column sweep answers; above
  // it the CSR grid does.  Both must agree with the O(N^2) reference,
  // under mobility (positions change between queries) and node death.
  for (const std::size_t n : {40u, 300u}) {
    for (const std::uint64_t seed : {1u, 17u, 99u}) {
      sim::Simulator sim;
      mobility::RandomWaypointConfig mc;
      mc.area = {{0.0, 0.0}, {1200.0, 1200.0}};
      mobility::RandomWaypoint mob(n, mc, seed);
      net::WirelessConfig wc;
      wc.area = mc.area;
      net::WirelessNet net(sim, mob, wc, energy::FeeneyModel{}, seed);
      net.kill(static_cast<net::NodeId>(n / 3));

      for (const double t : {0.0, 1.5, 7.25, 30.0}) {
        sim.schedule_at(t, [&, t] {
          for (net::NodeId self = 0; self < n; self += 7) {
            if (!net.is_alive(self)) continue;
            auto expected = brute_force_neighbors(mob, self, t, wc.range_m);
            std::erase_if(expected, [&](net::NodeId i) {
              return !net.is_alive(i);
            });
            EXPECT_EQ(net.neighbors(self), expected)
                << "n=" << n << " seed=" << seed << " t=" << t
                << " self=" << self;
            EXPECT_EQ(net.position(self), mob.position_at(self, t));
          }
        });
      }
      sim.run_all();
    }
  }
}

/// Same perfect knowledge as OracleNeighborProvider, but reporting
/// positions_are_ground_truth() == false — forces GPSR down the virtual
/// position_of path so the devirtualized fast path can be differenced
/// against it.
class VirtualPathOracle final : public routing::NeighborProvider {
 public:
  explicit VirtualPathOracle(net::WirelessNet& network) : inner_(network) {}

  [[nodiscard]] std::vector<net::NodeId> neighbors_of(
      net::NodeId self) override {
    return inner_.neighbors_of(self);
  }
  void neighbors_into(net::NodeId self,
                      std::vector<net::NodeId>& out) override {
    inner_.neighbors_into(self, out);
  }
  [[nodiscard]] geo::Point position_of(net::NodeId self,
                                       net::NodeId node) override {
    return inner_.position_of(self, node);
  }
  [[nodiscard]] std::uint64_t knowledge_version(net::NodeId self) override {
    return inner_.knowledge_version(self);
  }

 private:
  routing::OracleNeighborProvider inner_;
};

TEST(DataLayoutEquivalence, GpsrNextHopMatchesVirtualProviderPath) {
  sim::Simulator sim;
  auto placement = mobility::StaticPlacement::uniform(
      160, {{0.0, 0.0}, {1200.0, 1200.0}}, /*seed=*/5);
  net::WirelessConfig wc;
  net::WirelessNet net(sim, placement, wc, energy::FeeneyModel{}, 5);

  routing::Gpsr fast(net);  // oracle provider: ground-truth fast path
  VirtualPathOracle provider(net);
  routing::Gpsr slow(net, provider);  // identical data, virtual reads

  support::Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const auto self = static_cast<net::NodeId>(rng.uniform_int(160));
    net::Packet a;
    a.dest_location = {rng.uniform(0.0, 1200.0), rng.uniform(0.0, 1200.0)};
    net::Packet b = a;
    const auto hop_fast = fast.next_hop(self, a);
    const auto hop_slow = slow.next_hop(self, b);
    EXPECT_EQ(hop_fast, hop_slow) << "trial=" << trial << " self=" << self;
    EXPECT_EQ(a.perimeter, b.perimeter);
  }
}

}  // namespace
