// Protocol-level tests for PrecinctEngine: search phases, cache admission
// control, replica fallback, consistency schemes, custody management.
//
// The harness builds a deterministic 3x3 topology — one peer at each
// region center — so every protocol path can be exercised precisely.
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "core/engine.hpp"
#include "test_util.hpp"
#include "core/config_io.hpp"
#include "core/scenario.hpp"
#include "mobility/static_placement.hpp"
#include "net/wireless_net.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace precinct;
using core::HitClass;
using core::PrecinctConfig;
using core::PrecinctEngine;
using net::NodeId;

TEST(Engine, InitialCustodyPlacedInHomeAndReplicaRegions) {
  test_util::GridHarness h;
  for (std::size_t i = 0; i < h.catalog.size(); ++i) {
    const geo::Key key = h.catalog.key_of(i);
    EXPECT_EQ(h.engine().custody_count(key), 2u) << "key rank " << i;
    EXPECT_NE(h.custodian_of(key), net::kNoNode);
  }
}

TEST(Engine, EveryPeerKnowsItsRegion) {
  test_util::GridHarness h;
  for (NodeId i = 0; i < 9; ++i) {
    EXPECT_EQ(h.engine().region_of(i), static_cast<geo::RegionId>(i));
  }
}

TEST(Engine, OwnCustodyServedLocally) {
  test_util::GridHarness h;
  const auto key = h.key_with_home(4);
  ASSERT_TRUE(key.has_value());
  const std::uint64_t sends_before = h.net.stats().total_sends();
  h.engine().issue_request(4, *key);
  h.settle();
  const auto& m = h.engine().metrics();
  EXPECT_EQ(m.requests_completed, 1u);
  EXPECT_EQ(m.own_cache_hits, 1u);
  EXPECT_EQ(h.net.stats().total_sends(), sends_before);  // zero radio traffic
  EXPECT_LT(m.latency_s.max(), 0.01);
}

TEST(Engine, RemoteFetchServedByHomeRegion) {
  test_util::GridHarness h;
  const auto key = h.key_with_home(8);  // far corner from node 0
  ASSERT_TRUE(key.has_value());
  ASSERT_NE(h.engine().region_of(0), 8u);
  h.engine().issue_request(0, *key);
  h.settle();
  const auto& m = h.engine().metrics();
  EXPECT_EQ(m.requests_completed, 1u);
  EXPECT_EQ(m.home_region_hits + m.replica_hits + m.en_route_hits, 1u);
  EXPECT_EQ(m.requests_failed, 0u);
}

TEST(Engine, FetchedRemoteItemIsCachedThenServedLocally) {
  test_util::GridHarness h;
  // Pick a key whose home AND replica are both far from node 0's region 0
  // so the response cannot come from node 0's own region.
  std::optional<geo::Key> key;
  for (std::size_t i = 0; i < h.catalog.size(); ++i) {
    const geo::Key k = h.catalog.key_of(i);
    const auto home = h.engine().geo_hash().home_region(k, h.engine().region_table());
    const auto repl =
        h.engine().geo_hash().replica_region(k, h.engine().region_table());
    if (home != 0 && repl != 0) {
      key = k;
      break;
    }
  }
  ASSERT_TRUE(key.has_value());
  h.engine().issue_request(0, *key);
  h.settle();
  EXPECT_NE(h.engine().cache_of(0).find(*key), nullptr)
      << "remote item must be admitted to the dynamic cache";
  // Second request: served from own cache.
  h.engine().issue_request(0, *key);
  h.settle();
  EXPECT_EQ(h.engine().metrics().own_cache_hits, 1u);
}

TEST(Engine, AdmissionControlRejectsSameRegionOrigin) {
  // Two peers per region: the requester shares its region with the home
  // custodian, so the regional flood serves the request and §3.2 forbids
  // caching it ("it can be obtained locally for subsequent requests").
  auto cfg = test_util::grid_config();
  cfg.n_nodes = 18;
  workload::DataCatalog catalog(cfg.catalog, 7);
  std::vector<geo::Point> pts;
  for (int iy = 0; iy < 3; ++iy) {
    for (int ix = 0; ix < 3; ++ix) {
      pts.push_back({100.0 + 200.0 * ix, 100.0 + 200.0 * iy});
      pts.push_back({140.0 + 200.0 * ix, 100.0 + 200.0 * iy});
    }
  }
  sim::Simulator sim;
  mobility::StaticPlacement placement(pts);
  net::WirelessNet net(sim, placement, cfg.wireless, cfg.energy_model, 1);
  PrecinctEngine engine(cfg, sim, net,
                        geo::RegionTable::grid(cfg.area, 3, 3), catalog);
  engine.initialize();
  engine.start_measurement();

  // Find a key and a requester sharing the home region with a *different*
  // custodian peer.
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const geo::Key key = catalog.key_of(i);
    const geo::RegionId home =
        engine.geo_hash().home_region(key, engine.region_table());
    NodeId custodian = net::kNoNode;
    NodeId other = net::kNoNode;
    for (NodeId n = 0; n < 18; ++n) {
      if (engine.region_of(n) != home) continue;
      if (engine.cache_of(n).find_static(key) != nullptr) {
        custodian = n;
      } else {
        other = n;
      }
    }
    if (custodian == net::kNoNode || other == net::kNoNode) continue;
    engine.issue_request(other, key);
    sim.run_until(sim.now() + 6.0);
    EXPECT_GE(engine.metrics().regional_hits, 1u)
        << "request must be served within the region";
    EXPECT_EQ(engine.cache_of(other).find(key), nullptr)
        << "same-region origin must not be cached (admission control)";
    return;
  }
  FAIL() << "no suitable key/requester pair found";
}

TEST(Engine, ReplicaServesAfterHomeCustodianDies) {
  test_util::GridHarness h;
  const auto key = h.key_with_home(8);
  ASSERT_TRUE(key.has_value());
  const NodeId home_custodian = h.custodian_of(*key);
  ASSERT_NE(home_custodian, net::kNoNode);
  h.engine().fail_peer(home_custodian, /*graceful=*/false);
  EXPECT_EQ(h.engine().custody_count(*key), 1u);  // replica remains
  // Request from a far peer; home region lookup times out, replica serves.
  const NodeId requester = home_custodian == 0 ? 1 : 0;
  h.engine().issue_request(requester, *key);
  h.settle(10.0);
  const auto& m = h.engine().metrics();
  EXPECT_EQ(m.requests_completed, 1u);
  EXPECT_GE(m.replica_hits + m.en_route_hits, 1u);
}

TEST(Engine, GracefulDepartureHandsCustodyOff) {
  // Use a denser layout: two peers per region center area so a handoff
  // target exists.
  auto cfg = test_util::grid_config();
  cfg.n_nodes = 18;
  workload::DataCatalog catalog(cfg.catalog, 7);
  std::vector<geo::Point> pts;
  for (int iy = 0; iy < 3; ++iy) {
    for (int ix = 0; ix < 3; ++ix) {
      pts.push_back({100.0 + 200.0 * ix, 100.0 + 200.0 * iy});
      pts.push_back({130.0 + 200.0 * ix, 100.0 + 200.0 * iy});
    }
  }
  sim::Simulator sim;
  mobility::StaticPlacement placement(pts);
  net::WirelessNet net(sim, placement, cfg.wireless, cfg.energy_model, 1);
  PrecinctEngine engine(cfg, sim, net,
                        geo::RegionTable::grid(cfg.area, 3, 3), catalog);
  engine.initialize();
  engine.start_measurement();

  // Find a custodian and retire it gracefully.
  NodeId custodian = net::kNoNode;
  geo::Key key = 0;
  for (std::size_t i = 0; i < catalog.size() && custodian == net::kNoNode;
       ++i) {
    key = catalog.key_of(i);
    for (NodeId n = 0; n < 18; ++n) {
      if (engine.cache_of(n).find_static(key) != nullptr) {
        custodian = n;
        break;
      }
    }
  }
  ASSERT_NE(custodian, net::kNoNode);
  const std::size_t before = engine.custody_count(key);
  engine.fail_peer(custodian, /*graceful=*/true);
  sim.run_until(sim.now() + 5.0);
  EXPECT_EQ(engine.custody_count(key), before)
      << "custody must survive a graceful departure";
}

TEST(Engine, MultipleReplicasPlacedAndUpdated) {
  auto cfg = test_util::grid_config();
  cfg.replica_count = 2;
  cfg.consistency = consistency::Mode::kPushAdaptivePull;
  test_util::GridHarness h(cfg);
  const geo::Key key = h.catalog.key_of(0);
  EXPECT_EQ(h.engine().custody_count(key), 3u);  // home + 2 replicas
  // An update must reach all three custodians.
  h.engine().issue_update(4, key);
  h.settle(8.0);
  std::size_t fresh = 0;
  for (net::NodeId i = 0; i < 9; ++i) {
    if (const auto* e = h.engine().cache_of(i).find_static(key)) {
      if (e->version == 1u) ++fresh;
    }
  }
  EXPECT_EQ(fresh, 3u);
}

TEST(Engine, ZeroReplicasStillServesFromHome) {
  auto cfg = test_util::grid_config();
  cfg.replica_count = 0;
  test_util::GridHarness h(cfg);
  const auto key = h.key_with_home(8);
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(h.engine().custody_count(*key), 1u);
  h.engine().issue_request(0, *key);
  h.settle();
  EXPECT_EQ(h.engine().metrics().requests_completed, 1u);
}

TEST(Engine, PlainPushInvalidatesCaches) {
  auto cfg = test_util::grid_config();
  cfg.consistency = consistency::Mode::kPlainPush;
  test_util::GridHarness h(cfg);
  // Warm node 0's cache with a remote item.
  std::optional<geo::Key> key;
  for (std::size_t i = 0; i < h.catalog.size(); ++i) {
    const geo::Key k = h.catalog.key_of(i);
    const auto home = h.engine().geo_hash().home_region(k, h.engine().region_table());
    const auto repl =
        h.engine().geo_hash().replica_region(k, h.engine().region_table());
    if (home != 0 && repl != 0) {
      key = k;
      break;
    }
  }
  ASSERT_TRUE(key.has_value());
  h.engine().issue_request(0, *key);
  h.settle();
  ASSERT_NE(h.engine().cache_of(0).find(*key), nullptr);

  // Update from some other peer floods an invalidation.
  h.engine().issue_update(4, *key);
  h.settle();
  const cache::CacheEntry* cached = h.engine().cache_of(0).find(*key);
  ASSERT_NE(cached, nullptr);
  EXPECT_TRUE(cached->invalidated);
  // Custodian applied the pushed version.
  const NodeId custodian = h.custodian_of(*key);
  ASSERT_NE(custodian, net::kNoNode);
  EXPECT_EQ(h.engine().cache_of(custodian).find_static(*key)->version, 1u);
}

TEST(Engine, PushReachesHomeAndReplicaCustodians) {
  auto cfg = test_util::grid_config();
  cfg.consistency = consistency::Mode::kPushAdaptivePull;
  test_util::GridHarness h(cfg);
  const auto key = h.key_with_home(2);
  ASSERT_TRUE(key.has_value());
  h.engine().issue_update(6, *key);  // far corner updater
  h.settle(8.0);
  std::size_t fresh = 0;
  for (NodeId i = 0; i < 9; ++i) {
    if (const auto* e = h.engine().cache_of(i).find_static(*key)) {
      if (e->version == 1u) ++fresh;
    }
  }
  EXPECT_EQ(fresh, 2u) << "home and replica custodians must both apply";
}

TEST(Engine, PullEveryTimeRefetchesAfterUpdate) {
  auto cfg = test_util::grid_config();
  cfg.consistency = consistency::Mode::kPullEveryTime;
  cfg.updates_enabled = true;
  cfg.mean_update_interval_s = 1e12;  // manual updates only
  test_util::GridHarness h(cfg);
  std::optional<geo::Key> key;
  for (std::size_t i = 0; i < h.catalog.size(); ++i) {
    const geo::Key k = h.catalog.key_of(i);
    const auto home = h.engine().geo_hash().home_region(k, h.engine().region_table());
    const auto repl =
        h.engine().geo_hash().replica_region(k, h.engine().region_table());
    if (home != 0 && repl != 0) {
      key = k;
      break;
    }
  }
  ASSERT_TRUE(key.has_value());
  h.engine().issue_request(0, *key);
  h.settle();
  ASSERT_NE(h.engine().cache_of(0).find(*key), nullptr);

  h.engine().issue_update(4, *key);
  h.settle(8.0);
  // Request again: the poll discovers the new version; no false hit.
  h.engine().issue_request(0, *key);
  h.settle(8.0);
  const auto& m = h.engine().metrics();
  EXPECT_EQ(m.false_hits, 0u);
  EXPECT_GE(m.polls_sent, 1u);
  const cache::CacheEntry* cached = h.engine().cache_of(0).find(*key);
  ASSERT_NE(cached, nullptr);
  EXPECT_EQ(cached->version, 1u) << "poll reply must refresh the copy";
}

TEST(Engine, AdaptivePullSkipsPollWithinTtr) {
  auto cfg = test_util::grid_config();
  cfg.consistency = consistency::Mode::kPushAdaptivePull;
  cfg.ttr_initial_s = 1e6;  // effectively never expires
  test_util::GridHarness h(cfg);
  std::optional<geo::Key> key;
  for (std::size_t i = 0; i < h.catalog.size(); ++i) {
    const geo::Key k = h.catalog.key_of(i);
    const auto home = h.engine().geo_hash().home_region(k, h.engine().region_table());
    const auto repl =
        h.engine().geo_hash().replica_region(k, h.engine().region_table());
    if (home != 0 && repl != 0) {
      key = k;
      break;
    }
  }
  ASSERT_TRUE(key.has_value());
  h.engine().issue_request(0, *key);
  h.settle();
  const auto polls_before = h.engine().metrics().polls_sent;
  h.engine().issue_request(0, *key);  // own-cache hit within TTR
  h.settle();
  EXPECT_EQ(h.engine().metrics().polls_sent, polls_before);
  EXPECT_EQ(h.engine().metrics().own_cache_hits, 1u);
}

TEST(Engine, MeasurementWindowExcludesWarmupRequests) {
  auto cfg = test_util::grid_config();
  workload::DataCatalog catalog(cfg.catalog, 7);
  sim::Simulator sim;
  mobility::StaticPlacement placement(test_util::grid_positions());
  net::WirelessNet net(sim, placement, cfg.wireless, cfg.energy_model, 1);
  PrecinctEngine engine(cfg, sim, net,
                        geo::RegionTable::grid(cfg.area, 3, 3), catalog);
  engine.initialize();
  // No start_measurement yet: this request must not be counted.
  engine.issue_request(0, catalog.key_of(0));
  sim.run_until(10.0);
  engine.start_measurement();
  engine.issue_request(0, catalog.key_of(1));
  sim.run_until(20.0);
  const auto m = engine.finalize();
  EXPECT_EQ(m.requests_issued, 1u);
  EXPECT_LE(m.requests_completed, 1u);
}

TEST(Engine, FailedRequestsCounted) {
  test_util::GridHarness h;
  // Kill both custodians of a key and everything it could be cached at,
  // then request it: the search must fail, not hang.
  const auto key = h.key_with_home(8);
  ASSERT_TRUE(key.has_value());
  for (NodeId i = 0; i < 9; ++i) {
    if (h.engine().cache_of(i).find_static(*key) != nullptr) {
      h.engine().fail_peer(i, /*graceful=*/false);
    }
  }
  EXPECT_EQ(h.engine().custody_count(*key), 0u);
  h.engine().issue_request(0, *key);
  h.settle(15.0);
  const auto& m = h.engine().metrics();
  EXPECT_EQ(m.requests_failed, 1u);
  EXPECT_EQ(m.requests_completed, 0u);
  EXPECT_EQ(h.engine().pending_requests(), 0u);
}

TEST(Engine, EnergyIsChargedForRemoteTraffic) {
  test_util::GridHarness h;
  const auto key = h.key_with_home(8);
  ASSERT_TRUE(key.has_value());
  h.engine().issue_request(0, *key);
  h.settle();
  EXPECT_GT(h.net.energy().network_total().total_mj(), 0.0);
}

TEST(Engine, MergeRegionsRelocatesCustodyAndFloodsTable) {
  test_util::GridHarness h;
  const auto table_version = h.engine().region_table().version();
  const auto sends_before =
      h.net.stats().sends(net::PacketKind::kRegionUpdate);
  // Merge regions 0 and 1 (adjacent cells).
  const auto merged = h.engine().merge_regions(0, 1, /*initiator=*/4);
  ASSERT_TRUE(merged.has_value());
  h.settle(8.0);
  EXPECT_EQ(h.engine().region_table().size(), 8u);
  EXPECT_GT(h.engine().region_table().version(), table_version);
  // The change was flooded.
  EXPECT_GT(h.net.stats().sends(net::PacketKind::kRegionUpdate),
            sends_before);
  // Peers re-derived their regions: nodes 0 and 1 now share one region.
  EXPECT_EQ(h.engine().region_of(0), h.engine().region_of(1));
  // Every key is still held by at least one custodian in its (new) home
  // or replica regions; none lost more than transiently.
  std::size_t orphaned = 0;
  for (std::size_t i = 0; i < h.catalog.size(); ++i) {
    if (h.engine().custody_count(h.catalog.key_of(i)) == 0) ++orphaned;
  }
  EXPECT_EQ(orphaned, 0u);
  // Requests still succeed after the reconfiguration.
  h.engine().issue_request(8, h.catalog.key_of(0));
  h.settle(8.0);
  EXPECT_GE(h.engine().metrics().requests_completed, 1u);
}

TEST(Engine, SeparateRegionSplitsAndKeepsServing) {
  test_util::GridHarness h;
  const auto halves = h.engine().separate_region(4, /*initiator=*/4);
  ASSERT_TRUE(halves.has_value());
  h.settle(8.0);
  EXPECT_EQ(h.engine().region_table().size(), 10u);
  std::size_t orphaned = 0;
  for (std::size_t i = 0; i < h.catalog.size(); ++i) {
    if (h.engine().custody_count(h.catalog.key_of(i)) == 0) ++orphaned;
  }
  EXPECT_EQ(orphaned, 0u);
  h.engine().issue_request(0, h.catalog.key_of(1));
  h.settle(8.0);
  EXPECT_GE(h.engine().metrics().requests_completed, 1u);
}

TEST(Engine, MergeUnknownRegionsRejected) {
  test_util::GridHarness h;
  EXPECT_FALSE(h.engine().merge_regions(0, 0, 0).has_value());
  EXPECT_FALSE(h.engine().merge_regions(0, 99, 0).has_value());
  EXPECT_EQ(h.engine().region_table().size(), 9u);
}

TEST(Engine, RegionPopulationCountsLivePeers) {
  test_util::GridHarness h;
  EXPECT_EQ(h.engine().region_population(3), 1u);
  h.engine().fail_peer(3, /*graceful=*/false);
  EXPECT_EQ(h.engine().region_population(3), 0u);
}

TEST(Engine, BeaconModeDiscoversNeighborsAndServes) {
  auto cfg = test_util::grid_config();
  cfg.use_beacons = true;
  cfg.beacon_interval_s = 0.5;
  cfg.neighbor_lifetime_s = 1.5;
  test_util::GridHarness h(cfg);
  // Give the fleet a few beacon rounds, then fetch something remote.
  h.settle(3.0);
  EXPECT_GT(h.net.stats().sends(net::PacketKind::kBeacon), 9u * 2u);
  const auto key = h.key_with_home(8);
  ASSERT_TRUE(key.has_value());
  h.engine().issue_request(0, *key);
  h.settle(8.0);
  EXPECT_EQ(h.engine().metrics().requests_completed, 1u)
      << "GPSR over beacon tables must still deliver";
}

TEST(Engine, RevivedPeerStartsCold) {
  test_util::GridHarness h;
  // Warm node 0's cache, then crash + revive it.
  std::optional<geo::Key> key;
  for (std::size_t i = 0; i < h.catalog.size(); ++i) {
    const geo::Key k = h.catalog.key_of(i);
    const auto home = h.engine().geo_hash().home_region(k, h.engine().region_table());
    const auto repl =
        h.engine().geo_hash().replica_region(k, h.engine().region_table());
    if (home != 0 && repl != 0) {
      key = k;
      break;
    }
  }
  ASSERT_TRUE(key.has_value());
  h.engine().issue_request(0, *key);
  h.settle();
  ASSERT_NE(h.engine().cache_of(0).find(*key), nullptr);

  h.engine().fail_peer(0, /*graceful=*/false);
  h.settle(1.0);
  h.engine().revive_peer(0);
  EXPECT_TRUE(h.net.is_alive(0));
  EXPECT_EQ(h.engine().cache_of(0).entry_count(), 0u);
  EXPECT_EQ(h.engine().cache_of(0).static_count(), 0u);
  // The revived peer can still fetch.
  h.engine().issue_request(0, *key);
  h.settle(8.0);
  EXPECT_GE(h.engine().metrics().requests_completed, 2u);
}

TEST(Engine, ReviveIsIdempotentOnLivePeer) {
  test_util::GridHarness h;
  h.engine().revive_peer(3);  // already alive: no-op
  EXPECT_TRUE(h.net.is_alive(3));
}

TEST(Engine, PrefetchWarmsCacheWithoutCountingRequests) {
  auto cfg = test_util::grid_config();
  cfg.prefetch_count = 3;
  test_util::GridHarness h(cfg);
  // A single remote fetch should trigger background prefetches.
  const auto key = h.key_with_home(8);
  ASSERT_TRUE(key.has_value());
  h.engine().issue_request(0, *key);
  h.settle(10.0);
  const auto& m = h.engine().metrics();
  EXPECT_EQ(m.requests_issued, 1u) << "prefetches must not count";
  EXPECT_LE(m.requests_completed, 1u);
  // The peer now holds extra hot items beyond the one it asked for.
  std::size_t held = h.engine().cache_of(0).entry_count();
  EXPECT_GE(held, 2u) << "prefetched items should be cached";
}

TEST(Engine, LatencyBreakdownByHitClass) {
  test_util::GridHarness h;
  const auto own_key = h.key_with_home(4);
  const auto remote_key = h.key_with_home(8);
  ASSERT_TRUE(own_key.has_value() && remote_key.has_value());
  h.engine().issue_request(4, *own_key);   // own custody: ~0 latency
  h.engine().issue_request(0, *remote_key);  // remote: radio latency
  h.settle(10.0);
  const auto& m = h.engine().metrics();
  const auto& own =
      m.latency_by_class[static_cast<std::size_t>(core::HitClass::kOwnCache)];
  ASSERT_EQ(own.count(), 1u);
  EXPECT_LT(own.mean(), 0.01);
  std::size_t remote_count = 0;
  for (const auto cls : {core::HitClass::kEnRoute, core::HitClass::kHomeRegion,
                         core::HitClass::kReplicaRegion}) {
    remote_count += m.latency_by_class[static_cast<std::size_t>(cls)].count();
  }
  EXPECT_EQ(remote_count, 1u);
}

TEST(Engine, EnergyBreakdownSumsToTotal) {
  test_util::GridHarness h;
  const auto key = h.key_with_home(8);
  ASSERT_TRUE(key.has_value());
  h.engine().issue_request(0, *key);
  h.settle(10.0);
  h.sim.run_until(h.sim.now() + 1.0);
  const auto m = h.engine().finalize();
  EXPECT_GT(m.energy_total_mj, 0.0);
  EXPECT_NEAR(m.energy_broadcast_mj + m.energy_p2p_mj, m.energy_total_mj,
              1e-9);
}

TEST(Engine, FloodingBaselineServesRequests) {
  auto cfg = test_util::grid_config();
  cfg.retrieval = core::RetrievalKind::kFlooding;
  test_util::GridHarness h(cfg);
  const auto key = h.key_with_home(8);
  ASSERT_TRUE(key.has_value());
  h.engine().issue_request(0, *key);
  h.settle(8.0);
  EXPECT_EQ(h.engine().metrics().requests_completed, 1u);
  // The flood touched (nearly) the whole network.
  EXPECT_GT(h.net.stats().sends(net::PacketKind::kRequest), 5u);
}

TEST(Engine, ExpandingRingGrowsUntilFound) {
  auto cfg = test_util::grid_config();
  cfg.retrieval = core::RetrievalKind::kExpandingRing;
  cfg.ring.retry_wait_s = 0.3;
  test_util::GridHarness h(cfg);
  // Far corner key: ring TTL 1 cannot reach it from node 0; the search
  // must widen and eventually succeed.
  const auto key = h.key_with_home(8);
  ASSERT_TRUE(key.has_value());
  if (h.custodian_of(*key) == 0) GTEST_SKIP();
  h.engine().issue_request(0, *key);
  h.settle(12.0);
  const auto& m = h.engine().metrics();
  EXPECT_EQ(m.requests_completed, 1u);
  // At least two rings fired (the first TTL-1 probe plus a wider one).
  EXPECT_GE(h.net.stats().sends(net::PacketKind::kRequest), 2u);
  EXPECT_GT(m.latency_s.mean(), cfg.ring.retry_wait_s * 0.9);
}

TEST(Engine, SpatialIndexedScenarioMatchesScanScenario) {
  // Force the grid on in one run and off in the other: identical
  // protocol outcomes (the index is an exact optimization).
  PrecinctConfig a;
  a.n_nodes = 60;
  a.warmup_s = 20;
  a.measure_s = 120;
  a.seed = 77;
  a.wireless.spatial_index_threshold = 1;
  PrecinctConfig b = a;
  b.wireless.spatial_index_threshold = 100000;
  const auto ma = core::run_scenario(a);
  const auto mb = core::run_scenario(b);
  EXPECT_EQ(ma.requests_issued, mb.requests_issued);
  EXPECT_EQ(ma.requests_completed, mb.requests_completed);
  EXPECT_EQ(ma.messages_sent, mb.messages_sent);
  EXPECT_DOUBLE_EQ(ma.energy_total_mj, mb.energy_total_mj);
}

TEST(Engine, TraceCoversConsistencyAndCustody) {
  PrecinctConfig cfg;
  cfg.n_nodes = 40;
  cfg.warmup_s = 20;
  cfg.measure_s = 200;
  cfg.updates_enabled = true;
  cfg.consistency = consistency::Mode::kPushAdaptivePull;
  cfg.seed = 5;
  core::Scenario s(cfg);
  auto& tracer = s.enable_tracing(8192);
  s.run();
  bool saw_consistency = false;
  bool saw_custody = false;
  for (const auto& e : tracer.events()) {
    saw_consistency |= e.category == sim::TraceCategory::kConsistency;
    saw_custody |= e.category == sim::TraceCategory::kCustody;
  }
  EXPECT_TRUE(saw_consistency);
  EXPECT_TRUE(saw_custody);
}

TEST(Engine, HotspotRotationShiftsRequestedKeys) {
  // With rotation on, the set of requested keys late in the run should
  // include items far outside the initial hot set.
  PrecinctConfig cfg;
  cfg.n_nodes = 60;
  cfg.warmup_s = 10;
  cfg.measure_s = 400;
  cfg.mean_request_interval_s = 5.0;
  cfg.hotspot_rotation_interval_s = 50.0;
  cfg.hotspot_shift = 300;
  cfg.zipf_theta = 1.2;  // concentrated: rotation is visible
  cfg.seed = 9;
  // Compare byte-hit with a stationary run: rotation must not break the
  // system, and both runs complete requests normally.
  PrecinctConfig stationary = cfg;
  stationary.hotspot_rotation_interval_s = 0.0;
  const auto rotated = core::run_scenario(cfg);
  const auto fixed = core::run_scenario(stationary);
  EXPECT_GT(rotated.success_ratio(), 0.9);
  EXPECT_GT(fixed.success_ratio(), 0.9);
  // Stationary popularity is easier to cache.
  EXPECT_GE(fixed.byte_hit_ratio(), rotated.byte_hit_ratio() * 0.9);
}

TEST(Engine, PiggybackSuppressesBeaconsWithoutBreakingDelivery) {
  auto cfg = test_util::grid_config();
  cfg.use_beacons = true;
  cfg.beacon_interval_s = 0.5;
  cfg.neighbor_lifetime_s = 1.5;
  cfg.beacon_piggyback = false;
  test_util::GridHarness plain(cfg);
  plain.settle(5.0);
  const auto plain_beacons = plain.net.stats().sends(net::PacketKind::kBeacon);

  cfg.beacon_piggyback = true;
  test_util::GridHarness piggy(cfg);
  piggy.settle(5.0);
  // Generate some traffic so piggybacking has frames to ride on, then
  // watch beacons over the same horizon.
  const auto key = piggy.key_with_home(8);
  ASSERT_TRUE(key.has_value());
  piggy.engine().issue_request(0, *key);
  piggy.settle(8.0);
  EXPECT_EQ(piggy.engine().metrics().requests_completed, 1u);
  // With traffic substituting for announcements, piggyback never sends
  // MORE beacons than plain mode did over a longer horizon.
  EXPECT_LE(piggy.net.stats().sends(net::PacketKind::kBeacon),
            plain_beacons * 3);
}

TEST(Config, ValidationCatchesBadValues) {
  const auto expect_bad = [](auto&& tweak, const char* what) {
    PrecinctConfig c;
    tweak(c);
    EXPECT_THROW(c.validate(), std::invalid_argument) << what;
  };
  PrecinctConfig good;
  EXPECT_NO_THROW(good.validate());
  expect_bad([](PrecinctConfig& c) { c.n_nodes = 0; }, "n_nodes");
  expect_bad([](PrecinctConfig& c) { c.regions_x = 0; }, "regions");
  expect_bad([](PrecinctConfig& c) { c.wireless.range_m = 0; }, "range");
  expect_bad([](PrecinctConfig& c) { c.v_max = 0.1; }, "speeds");
  expect_bad([](PrecinctConfig& c) { c.catalog.n_items = 0; }, "catalog");
  expect_bad([](PrecinctConfig& c) { c.cache_fraction = 1.5; }, "cache");
  expect_bad([](PrecinctConfig& c) { c.ttr_alpha = -0.1; }, "alpha");
  expect_bad([](PrecinctConfig& c) { c.mean_request_interval_s = 0; },
             "request interval");
  expect_bad([](PrecinctConfig& c) { c.replica_count = 100; }, "replicas");
  expect_bad([](PrecinctConfig& c) { c.measure_s = 0; }, "window");
  expect_bad([](PrecinctConfig& c) { c.graceful_fraction = 2.0; },
             "graceful");
  expect_bad(
      [](PrecinctConfig& c) {
        c.dynamic_regions = true;
        c.max_region_peers = c.min_region_peers;
      },
      "region bounds");
}

TEST(Config, LoadsFromKvFile) {
  const auto kv = support::KvFile::parse(
      "nodes = 42\n"
      "policy = lru\n"
      "consistency = push-adaptive-pull\n"
      "replicas = 2\n"
      "mobility = gauss-markov\n"
      "use_beacons = true\n"
      "cache = 0.05\n");
  const PrecinctConfig c = core::config_from_kv(kv);
  EXPECT_EQ(c.n_nodes, 42u);
  EXPECT_EQ(c.cache_policy, "lru");
  EXPECT_EQ(c.consistency, consistency::Mode::kPushAdaptivePull);
  EXPECT_TRUE(c.updates_enabled);  // implied by the consistency mode
  EXPECT_EQ(c.replica_count, 2u);
  EXPECT_EQ(c.mobility_model, "gauss-markov");
  EXPECT_TRUE(c.use_beacons);
  EXPECT_DOUBLE_EQ(c.cache_fraction, 0.05);
  EXPECT_NO_THROW(c.validate());
}

TEST(Config, KvRejectsUnknownKeys) {
  const auto kv = support::KvFile::parse("nodez = 42\n");
  EXPECT_THROW((void)core::config_from_kv(kv), std::invalid_argument);
}

TEST(Config, KvOverlaysOnBase) {
  PrecinctConfig base;
  base.n_nodes = 7;
  base.cache_policy = "lfu";
  const auto kv = support::KvFile::parse("nodes = 99\n");
  const PrecinctConfig c = core::config_from_kv(kv, base);
  EXPECT_EQ(c.n_nodes, 99u);
  EXPECT_EQ(c.cache_policy, "lfu");  // untouched
}

TEST(Config, ScenarioRejectsInvalidConfig) {
  PrecinctConfig c;
  c.n_nodes = 0;
  EXPECT_THROW(core::Scenario{c}, std::invalid_argument);
  PrecinctConfig m;
  m.mobility_model = "teleport";
  EXPECT_THROW(core::Scenario{m}, std::invalid_argument);
}

TEST(Scenario, RunsEndToEndAndIsDeterministic) {
  PrecinctConfig cfg;
  cfg.n_nodes = 30;
  cfg.warmup_s = 50;
  cfg.measure_s = 150;
  cfg.seed = 11;
  const auto a = core::run_scenario(cfg);
  const auto b = core::run_scenario(cfg);
  EXPECT_EQ(a.requests_issued, b.requests_issued);
  EXPECT_EQ(a.requests_completed, b.requests_completed);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_DOUBLE_EQ(a.energy_total_mj, b.energy_total_mj);
  EXPECT_DOUBLE_EQ(a.avg_latency_s(), b.avg_latency_s());
  EXPECT_GT(a.requests_issued, 50u);
}

TEST(Scenario, TracingRecordsProtocolEvents) {
  PrecinctConfig cfg;
  cfg.n_nodes = 20;
  cfg.warmup_s = 10;
  cfg.measure_s = 60;
  core::Scenario s(cfg);
  auto& tracer = s.enable_tracing(512);
  s.run();
  EXPECT_GT(tracer.total_emitted(), 10u);
  EXPECT_LE(tracer.size(), 512u);
  bool saw_request = false;
  for (const auto& e : tracer.events()) {
    if (e.category == sim::TraceCategory::kProtocol &&
        e.message.find("request #") != std::string::npos) {
      saw_request = true;
      break;
    }
  }
  EXPECT_TRUE(saw_request);
}

TEST(Scenario, TimelineSamplesDuringMeasurement) {
  PrecinctConfig cfg;
  cfg.n_nodes = 20;
  cfg.warmup_s = 10;
  cfg.measure_s = 100;
  cfg.sample_interval_s = 10.0;
  const auto m = core::run_scenario(cfg);
  ASSERT_GE(m.timeline.size(), 9u);
  EXPECT_LE(m.timeline.size(), 11u);
  // Samples are cumulative: completions never decrease, energy grows.
  for (std::size_t i = 1; i < m.timeline.size(); ++i) {
    EXPECT_GE(m.timeline[i].requests_completed,
              m.timeline[i - 1].requests_completed);
    EXPECT_GE(m.timeline[i].energy_mj, m.timeline[i - 1].energy_mj);
    EXPECT_GT(m.timeline[i].t_s, m.timeline[i - 1].t_s);
  }
  // The final sample is consistent with the final metrics.
  EXPECT_LE(m.timeline.back().requests_completed, m.requests_completed);
}

TEST(Scenario, RunTwiceThrows) {
  PrecinctConfig cfg;
  cfg.n_nodes = 10;
  cfg.warmup_s = 1;
  cfg.measure_s = 1;
  core::Scenario s(cfg);
  s.run();
  EXPECT_THROW(s.run(), std::logic_error);
}

TEST(Scenario, RunSeedsMergesMetrics) {
  PrecinctConfig cfg;
  cfg.n_nodes = 15;
  cfg.warmup_s = 20;
  cfg.measure_s = 60;
  const auto runs = core::run_seeds(cfg, 3);
  ASSERT_EQ(runs.size(), 3u);
  const auto merged = core::merge_metrics(runs);
  std::uint64_t total = 0;
  for (const auto& r : runs) total += r.requests_issued;
  EXPECT_EQ(merged.requests_issued, total);
  EXPECT_EQ(merged.latency_s.count(),
            runs[0].latency_s.count() + runs[1].latency_s.count() +
                runs[2].latency_s.count());
}

}  // namespace
