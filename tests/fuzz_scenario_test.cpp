// Correctness-harness tests (DESIGN.md §10): the invariant checker is
// observe-only yet catches deliberately broken state with a structured,
// replayable violation, and the property-based scenario fuzzer's
// generator + metamorphic properties hold on a sample of seeds.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "check/invariant_checker.hpp"
#include "check/invariant_violation.hpp"
#include "check/scenario_fuzz.hpp"
#include "core/config_io.hpp"
#include "test_util.hpp"

namespace {

using namespace precinct;
using core::PrecinctConfig;

// ---------------------------------------------------------------------------
// Category parsing
// ---------------------------------------------------------------------------

TEST(CheckCategories, ParsesAllAndSubsets) {
  EXPECT_EQ(check::parse_categories(""), check::kNoCategories);
  EXPECT_EQ(check::parse_categories("all"), check::kAllCategories);
  const check::CategoryMask m = check::parse_categories("net,custody,energy");
  EXPECT_TRUE(check::has(m, check::Category::kNet));
  EXPECT_TRUE(check::has(m, check::Category::kCustody));
  EXPECT_TRUE(check::has(m, check::Category::kEnergy));
  EXPECT_FALSE(check::has(m, check::Category::kCache));
  EXPECT_FALSE(check::has(m, check::Category::kPending));
}

TEST(CheckCategories, RejectsUnknownTokens) {
  try {
    (void)check::parse_categories("net,warp");
    FAIL() << "unknown token accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("unknown category 'warp'"),
              std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------------
// Observe-only contract + violation catching
// ---------------------------------------------------------------------------

/// The checker must not perturb the run: metrics with checks on are
/// byte-identical to checks off (the fingerprint includes
/// events_executed, so even scheduling must be untouched).
TEST(InvariantChecker, ChecksOnIsByteIdenticalToChecksOff) {
  PrecinctConfig off = test_util::small_scenario();
  off.measure_s = 30.0;
  PrecinctConfig on = off;
  on.check = "all";
  on.check_stride = 1;
  EXPECT_EQ(core::fingerprint(core::run_scenario(off)),
            core::fingerprint(core::run_scenario(on)));
}

TEST(InvariantChecker, AuditsRunDuringACheckedScenario) {
  auto cfg = test_util::grid_config();
  cfg.check = "all";
  cfg.check_stride = 1;
  test_util::GridHarness h(cfg);
  const auto key = h.key_with_home(8);
  ASSERT_TRUE(key.has_value());
  h.engine().issue_request(0, *key);
  h.settle();
  ASSERT_NE(h.engine().checker(), nullptr);
  EXPECT_GT(h.engine().checker()->audits_run(), 0u);
}

TEST(InvariantChecker, NoCheckerInstalledWhenCheckEmpty) {
  test_util::GridHarness h;
  EXPECT_EQ(h.engine().checker(), nullptr);
}

/// Deliberately corrupt a peer's cache (a key the catalog has never
/// heard of) and prove the checker catches it with a structured
/// violation, then write the replayable repro file.
TEST(InvariantChecker, CatchesDeliberateCorruptionAndWritesRepro) {
  auto cfg = test_util::grid_config();
  cfg.check = "all";
  cfg.check_stride = 1;
  test_util::GridHarness h(cfg);

  cache::CacheEntry bogus;
  bogus.key = 0xDEADBEEFu;  // hashed keys; never a catalog rank hash
  bogus.size_bytes = 1000;
  h.engine().mutable_cache_of(2).put_static(bogus);

  const auto key = h.key_with_home(8);
  ASSERT_TRUE(key.has_value());
  h.engine().issue_request(0, *key);  // remote lookup -> events -> audits

  bool caught = false;
  try {
    h.settle();
  } catch (const check::InvariantViolation& e) {
    caught = true;
    EXPECT_EQ(e.category(), check::Category::kCache);
    EXPECT_EQ(e.node(), 2u);
    EXPECT_NE(std::string(e.what()).find("absent from the catalog"),
              std::string::npos)
        << e.what();

    check::FuzzCase fc;
    fc.config = cfg;
    fc.case_seed = 99;
    const std::string dir =
        (std::filesystem::temp_directory_path() / "precinct_repro_test")
            .string();
    const std::string path = check::write_repro(fc, dir, e.what());
    // The repro is a loadable config that replays with checks on.
    const PrecinctConfig replay = core::config_from_file(path);
    EXPECT_EQ(replay.check, "all");
    EXPECT_EQ(replay.check_stride, 1u);
    EXPECT_EQ(replay.seed, cfg.seed);
    std::ifstream in(path);
    std::stringstream text;
    text << in.rdbuf();
    EXPECT_NE(text.str().find("# scenario-fuzz repro"), std::string::npos);
    EXPECT_NE(text.str().find("absent from the catalog"), std::string::npos);
    std::filesystem::remove_all(dir);
  }
  EXPECT_TRUE(caught) << "corrupted cache was not flagged";
}

// ---------------------------------------------------------------------------
// Scenario fuzzer
// ---------------------------------------------------------------------------

TEST(ScenarioFuzz, DrawIsDeterministic) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const check::FuzzCase a = check::draw_scenario(seed);
    const check::FuzzCase b = check::draw_scenario(seed);
    EXPECT_EQ(a.property, b.property);
    EXPECT_EQ(core::config_to_string(a.config),
              core::config_to_string(b.config));
  }
}

TEST(ScenarioFuzz, DrawsAreValidatedAndChecked) {
  int rejected = 0;
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    const check::FuzzCase fc = check::draw_scenario(seed);
    EXPECT_NO_THROW(fc.config.validate()) << "seed " << seed;
    EXPECT_EQ(fc.config.check, "all") << "seed " << seed;
    rejected += fc.draws_rejected;
    if (fc.property == check::Property::kNoRetryNoResend) {
      EXPECT_EQ(fc.config.request_retries, 0);
      EXPECT_EQ(fc.config.push_retries, 0);
    }
  }
  // The generator deliberately draws invalid combinations; over 24 seeds
  // the validate() filter must have fired at least once.
  EXPECT_GT(rejected, 0);
}

TEST(ScenarioFuzz, PropertiesRotateAcrossSeeds) {
  bool seen[check::kPropertyCount] = {};
  for (std::uint64_t seed = 1; seed <= check::kPropertyCount; ++seed) {
    seen[static_cast<std::size_t>(check::draw_scenario(seed).property)] = true;
  }
  for (std::size_t i = 0; i < check::kPropertyCount; ++i) {
    EXPECT_TRUE(seen[i]) << check::to_string(static_cast<check::Property>(i));
  }
}

/// One full fuzz case per property, end to end.  The CI invariant-fuzz
/// step runs the 64-scenario batch via the precinct_fuzz tool; this keeps
/// the harness itself under test in every ctest run.
TEST(ScenarioFuzz, SampleCasesHoldTheirProperties) {
  for (const std::uint64_t seed : {3u, 4u, 5u}) {
    const check::FuzzCase fc = check::draw_scenario(seed);
    const check::FuzzVerdict verdict = check::run_fuzz_case(fc);
    EXPECT_TRUE(verdict.ok) << "case " << seed << " ["
                            << check::to_string(fc.property) << "]\n"
                            << verdict.detail;
  }
}

}  // namespace
