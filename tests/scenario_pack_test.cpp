// Scenario packs (DESIGN.md §15): the checked-in workload bundles under
// examples/packs/ stay pinned.  Each pack's [reduced] golden section is
// re-run and diffed here (the [full] section is CI's golden gate), the
// world-sharded executor must reproduce every pack byte-identically for
// K in {1, 2, 4}, and every pack must survive a check=all audit.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/config_io.hpp"
#include "core/pack.hpp"
#include "core/scenario.hpp"
#include "core/world_scenario.hpp"
#include "support/kv_file.hpp"

namespace {

using namespace precinct;

const std::vector<std::string>& shipped_packs() {
  static const std::vector<std::string> names = {
      "commuter-daynight", "flash-crowd", "manhattan-rush", "roadside-mix"};
  return names;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(ScenarioPack, CatalogListsEveryShippedPack) {
  const std::vector<std::string> names = core::list_packs();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const std::string& want : shipped_packs()) {
    EXPECT_NE(std::find(names.begin(), names.end(), want), names.end())
        << "pack '" << want << "' missing from " << core::pack_dir();
  }
}

TEST(ScenarioPack, UnknownNamePrintsTheCatalog) {
  try {
    (void)core::load_pack("no-such-pack");
    FAIL() << "load_pack accepted an unknown name";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    // A typo must list what IS available, not just fail.
    EXPECT_NE(what.find("no-such-pack"), std::string::npos) << what;
    EXPECT_NE(what.find("manhattan-rush"), std::string::npos) << what;
  }
}

TEST(ScenarioPack, ConfigsValidateAndDeclareTheirWorkload) {
  // Spot-check that each pack actually configures the workload its name
  // promises (load_pack already ran validate()).
  EXPECT_EQ(core::load_pack("manhattan-rush").config.mobility_model,
            "manhattan");
  EXPECT_EQ(core::load_pack("commuter-daynight").config.mobility_model,
            "commuter");
  const core::ScenarioPack mix = core::load_pack("roadside-mix");
  ASSERT_EQ(mix.config.node_classes.size(), 2u);
  EXPECT_TRUE(mix.config.has_fixed_nodes());
  const core::ScenarioPack flash = core::load_pack("flash-crowd");
  EXPECT_GE(flash.config.request_rate_multiplier, 100.0);
  EXPECT_EQ(flash.config.check, "all");
}

TEST(ScenarioPack, ReducedForTestOnlyTrimsTheWindows) {
  for (const std::string& name : shipped_packs()) {
    const core::ScenarioPack pack = core::load_pack(name);
    core::PrecinctConfig reduced = core::reduced_for_test(pack.config);
    EXPECT_LE(reduced.warmup_s, 10.0) << name;
    EXPECT_LE(reduced.measure_s, 30.0) << name;
    // Everything but the windows is the configured workload.
    reduced.warmup_s = pack.config.warmup_s;
    reduced.measure_s = pack.config.measure_s;
    EXPECT_EQ(core::config_to_string(reduced),
              core::config_to_string(pack.config))
        << name << ": reduced_for_test changed more than the windows";
  }
}

TEST(ScenarioPack, ReducedGoldenSectionsMatch) {
  for (const std::string& name : shipped_packs()) {
    const core::ScenarioPack pack = core::load_pack(name);
    const core::PackGolden golden =
        core::parse_golden(read_file(pack.golden_path));
    const std::string actual =
        core::fingerprint(core::run_scenario(core::reduced_for_test(pack.config)));
    EXPECT_EQ(actual, golden.reduced)
        << "pack '" << name << "' drifted from its [reduced] golden; "
        << "re-baseline deliberately with precinct_sim --pack " << name
        << " --write-golden";
  }
}

TEST(ScenarioPack, GoldenFilesAreRenderFixedPoints) {
  // parse -> render must reproduce the checked-in bytes exactly, so a
  // hand-edited golden that still parses cannot silently drift from what
  // --write-golden would regenerate.
  for (const std::string& name : shipped_packs()) {
    const core::ScenarioPack pack = core::load_pack(name);
    const std::string text = read_file(pack.golden_path);
    EXPECT_EQ(core::render_golden(name, core::parse_golden(text)), text)
        << name;
  }
}

TEST(ScenarioPack, ParseGoldenRejectsMalformedFiles) {
  EXPECT_THROW((void)core::parse_golden(""), std::invalid_argument);
  EXPECT_THROW((void)core::parse_golden("[full]\na=1\n"),
               std::invalid_argument);  // missing [reduced]
  EXPECT_THROW((void)core::parse_golden("a=1\n[full]\n[reduced]\n"),
               std::invalid_argument);  // content before the first section
}

TEST(ScenarioPack, WorldShardInvariantAtReducedScale) {
  // The K-invariance contract (DESIGN.md §13) extends to every pack:
  // structured mobility, heterogeneous fleets and the flash crowd all
  // reproduce byte-identically however the world is cut.
  for (const std::string& name : shipped_packs()) {
    const core::PrecinctConfig base =
        core::reduced_for_test(core::load_pack(name).config);
    std::string first;
    for (const std::uint32_t k : {1u, 2u, 4u}) {
      core::PrecinctConfig c = base;
      c.shards = k;
      const std::string fp =
          core::world_fingerprint(core::run_world_scenario(c));
      if (k == 1u) {
        first = fp;
      } else {
        EXPECT_EQ(fp, first)
            << "pack '" << name << "' diverged at world shards=" << k;
      }
    }
  }
}

TEST(ScenarioPack, EveryPackSurvivesCheckAll) {
  // flash-crowd bakes check=all into its config; force it for the rest so
  // each pack's reduced run is a full invariant audit.
  for (const std::string& name : shipped_packs()) {
    core::PrecinctConfig c =
        core::reduced_for_test(core::load_pack(name).config);
    c.check = "all";
    EXPECT_NO_THROW((void)core::run_scenario(c)) << name;
  }
}

}  // namespace
