// Unit tests for the pooled ref-counted packet frames (net/packet_pool.hpp):
// refcount drop-to-zero recycling, handle invalidation after release,
// retire-with-outstanding-references, and bounded pool growth under a
// network-wide flood.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "mobility/static_placement.hpp"
#include "net/packet_pool.hpp"
#include "net/wireless_net.hpp"
#include "routing/flood.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace precinct;
using net::NodeId;
using net::Packet;
using net::PacketBufPool;
using net::PacketRef;

Packet make_test_packet(std::uint64_t id) {
  Packet p;
  p.id = id;
  p.src = 0;
  p.origin = 0;
  p.size_bytes = 96;
  return p;
}

TEST(PacketPool, AcquireCopiesPacketAndCountsReferences) {
  auto* pool = new PacketBufPool;
  {
    PacketRef a = pool->acquire(make_test_packet(42));
    EXPECT_TRUE(a);
    EXPECT_TRUE(a.valid());
    EXPECT_EQ(a->id, 42u);
    EXPECT_EQ(a.use_count(), 1u);
    EXPECT_EQ(pool->in_use(), 1u);
    EXPECT_EQ(pool->capacity(), PacketBufPool::kBlockFrames);

    PacketRef b = a;  // copy shares the frame
    EXPECT_EQ(a.use_count(), 2u);
    EXPECT_EQ(&*a, &*b);
    EXPECT_EQ(pool->in_use(), 1u);  // still one frame

    PacketRef c = std::move(b);  // move transfers, no bump
    EXPECT_FALSE(b);             // NOLINT(bugprone-use-after-move)
    EXPECT_EQ(c.use_count(), 2u);
  }
  EXPECT_EQ(pool->in_use(), 0u);  // all refs released -> recycled
  pool->retire();
}

TEST(PacketPool, LastReleaseRecyclesFrameForReuse) {
  auto* pool = new PacketBufPool;
  Packet* slot = nullptr;
  {
    PacketRef a = pool->acquire(make_test_packet(1));
    slot = &*a;
  }
  EXPECT_EQ(pool->in_use(), 0u);
  // LIFO free list: the next acquire reuses the frame just released.
  PacketRef b = pool->acquire(make_test_packet(2));
  EXPECT_EQ(&*b, slot);
  EXPECT_EQ(b->id, 2u);
  EXPECT_EQ(pool->capacity(), PacketBufPool::kBlockFrames);  // no growth
  b.reset();
  pool->retire();
}

TEST(PacketPool, ReleasedHandleIsInvalid) {
  auto* pool = new PacketBufPool;
  PacketRef a = pool->acquire(make_test_packet(7));
  PacketRef b = a;
  a.reset();
  EXPECT_FALSE(a);
  EXPECT_FALSE(a.valid());  // released handle no longer refers to a frame
  EXPECT_TRUE(b.valid());   // surviving reference unaffected
  EXPECT_EQ(b.use_count(), 1u);
  b.reset();
  EXPECT_FALSE(b.valid());
  EXPECT_EQ(pool->in_use(), 0u);
  pool->retire();
}

TEST(PacketPool, GrowsByBlocksWhenExhausted) {
  auto* pool = new PacketBufPool;
  std::vector<PacketRef> held;
  for (std::uint64_t i = 0; i <= PacketBufPool::kBlockFrames; ++i) {
    held.push_back(pool->acquire(make_test_packet(i)));
  }
  EXPECT_EQ(pool->in_use(), PacketBufPool::kBlockFrames + 1);
  EXPECT_EQ(pool->capacity(), 2 * PacketBufPool::kBlockFrames);
  // Block chunking keeps frame addresses stable across growth.
  EXPECT_EQ(held.front()->id, 0u);
  EXPECT_TRUE(held.front().valid());
  held.clear();
  EXPECT_EQ(pool->in_use(), 0u);
  pool->retire();
}

TEST(PacketPool, RetireWithOutstandingReferencesDefersDestruction) {
  auto* pool = new PacketBufPool;
  {
    PacketRef ref = pool->acquire(make_test_packet(11));
    pool->retire();  // owner gone; outstanding ref keeps the arena alive
    EXPECT_TRUE(ref.valid());
    EXPECT_EQ(ref->id, 11u);
  }  // last release self-destructs the pool (leak/UAF caught under ASan)
}

// Pool behaviour under a real network-wide flood: every node rebroadcasts
// once, sharing frames across per-receiver delivery closures.  After the
// flood drains every frame must be back on the free list, and repeating
// the flood must not grow the arena (steady state).
TEST(PacketPool, NetworkFloodRecyclesAndReachesSteadyState) {
  sim::Simulator sim;
  auto placement = mobility::StaticPlacement::uniform(
      40, {{0, 0}, {800, 800}}, /*seed=*/5);
  net::WirelessConfig config;
  config.area = {{0, 0}, {800, 800}};
  net::WirelessNet net(sim, placement, config, energy::FeeneyModel{}, 5);
  routing::FloodController flood(40);
  std::uint64_t delivered = 0;
  net.set_receive_handler([&](NodeId node, const Packet& p) {
    ++delivered;
    if (!flood.mark_seen(node, p.id)) return;
    if (!routing::FloodController::ttl_allows_forward(p)) return;
    net::PacketRef fwd = net.make_ref(p);
    fwd->ttl -= 1;
    fwd->hops += 1;
    fwd->src = node;
    net.broadcast(std::move(fwd));
  });

  const auto run_flood = [&](NodeId origin) {
    flood.clear();
    Packet p = make_test_packet(net.next_packet_id());
    p.src = p.origin = origin;
    p.mode = net::RouteMode::kNetworkFlood;
    p.ttl = 8;
    flood.mark_seen(origin, p.id);
    net.broadcast(p);
    sim.run_all();
  };

  run_flood(0);
  EXPECT_GT(delivered, 0u);
  EXPECT_EQ(net.frame_pool().in_use(), 0u);  // fully drained -> recycled
  const std::size_t settled = net.frame_pool().capacity();
  EXPECT_GE(settled, PacketBufPool::kBlockFrames);

  for (NodeId origin = 1; origin < 5; ++origin) run_flood(origin);
  EXPECT_EQ(net.frame_pool().in_use(), 0u);
  EXPECT_EQ(net.frame_pool().capacity(), settled);  // no steady-state growth
}

}  // namespace
