// Unit tests for the discrete-event engine: ordering, cancellation,
// clock semantics, determinism.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "support/rng.hpp"

namespace {

using precinct::sim::EventHandle;
using precinct::sim::Simulator;

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(3.0, [&] { order.push_back(3); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(2.0, [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(5.0, [&order, i] { order.push_back(i); });
  }
  sim.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator sim;
  double seen = -1.0;
  sim.schedule(2.5, [&] { seen = sim.now(); });
  sim.run_all();
  EXPECT_EQ(seen, 2.5);
  EXPECT_EQ(sim.now(), 2.5);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1.0, [&] { ++fired; });
  sim.schedule(10.0, [&] { ++fired; });
  sim.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 5.0);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run_until(20.0);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventAtExactBoundaryRuns) {
  Simulator sim;
  bool fired = false;
  sim.schedule(5.0, [&] { fired = true; });
  sim.run_until(5.0);
  EXPECT_TRUE(fired);
}

TEST(Simulator, NestedSchedulingFromCallbacks) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule(1.0, [&] {
    times.push_back(sim.now());
    sim.schedule(1.0, [&] { times.push_back(sim.now()); });
  });
  sim.run_all();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], 1.0);
  EXPECT_EQ(times[1], 2.0);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator sim;
  sim.schedule(2.0, [&] {
    sim.schedule(-5.0, [&] { EXPECT_EQ(sim.now(), 2.0); });
  });
  sim.run_all();
}

TEST(Simulator, ScheduleAtPastClampsToNow) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule(3.0, [&] {
    sim.schedule_at(1.0, [&] { fired_at = sim.now(); });
  });
  sim.run_all();
  EXPECT_EQ(fired_at, 3.0);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventHandle h = sim.schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(h));
  sim.run_all();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelTwiceIsIdempotent) {
  Simulator sim;
  const EventHandle h = sim.schedule(1.0, [] {});
  EXPECT_TRUE(sim.cancel(h));
  EXPECT_FALSE(sim.cancel(h));
  sim.run_all();
}

TEST(Simulator, CancelInvalidHandleIsNoop) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(EventHandle{}));
}

TEST(Simulator, CancelOneOfManyAtSameTime) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1.0, [&] { ++fired; });
  const EventHandle h = sim.schedule(1.0, [&] { fired += 100; });
  sim.schedule(1.0, [&] { ++fired; });
  sim.cancel(h);
  sim.run_all();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule(i, [] {});
  const auto h = sim.schedule(6.0, [] {});
  sim.cancel(h);
  sim.run_all();
  EXPECT_EQ(sim.events_executed(), 5u);
}

TEST(Simulator, RunUntilAdvancesClockWithoutEvents) {
  Simulator sim;
  sim.run_until(42.0);
  EXPECT_EQ(sim.now(), 42.0);
}

TEST(Simulator, ManyEventsStressOrdering) {
  Simulator sim;
  double last = -1.0;
  precinct::support::Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    sim.schedule(rng.uniform(0.0, 1000.0), [&] {
      EXPECT_GE(sim.now(), last);
      last = sim.now();
    });
  }
  sim.run_all();
  EXPECT_EQ(sim.events_executed(), 10000u);
}

TEST(Tracer, DisabledByDefault) {
  precinct::sim::Tracer tracer;
  tracer.emit(1.0, precinct::sim::TraceCategory::kProtocol, 0, "x");
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.total_emitted(), 0u);
}

TEST(Tracer, CategoryFiltering) {
  precinct::sim::Tracer tracer;
  tracer.enable(precinct::sim::TraceCategory::kCache);
  tracer.emit(1.0, precinct::sim::TraceCategory::kCache, 3, "hit");
  tracer.emit(2.0, precinct::sim::TraceCategory::kProtocol, 4, "nope");
  ASSERT_EQ(tracer.size(), 1u);
  EXPECT_EQ(tracer.events().front().node, 3u);
  tracer.disable(precinct::sim::TraceCategory::kCache);
  tracer.emit(3.0, precinct::sim::TraceCategory::kCache, 3, "gone");
  EXPECT_EQ(tracer.size(), 1u);
}

TEST(Tracer, RingBufferBounds) {
  precinct::sim::Tracer tracer(4);
  tracer.enable_all();
  for (int i = 0; i < 10; ++i) {
    tracer.emit(i, precinct::sim::TraceCategory::kRadio, 0,
                std::to_string(i));
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.total_emitted(), 10u);
  EXPECT_EQ(tracer.events().front().message, "6");
  const auto last2 = tracer.last(2);
  ASSERT_EQ(last2.size(), 2u);
  EXPECT_EQ(last2[1].message, "9");
}

TEST(Tracer, DumpFormatsLines) {
  precinct::sim::Tracer tracer;
  tracer.enable_all();
  tracer.emit(12.5, precinct::sim::TraceCategory::kCustody, 7, "moved keys");
  std::ostringstream os;
  tracer.dump(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("custody"), std::string::npos);
  EXPECT_NE(out.find("node 7"), std::string::npos);
  EXPECT_NE(out.find("moved keys"), std::string::npos);
}

TEST(Tracer, CategoriesHaveNames) {
  using precinct::sim::TraceCategory;
  for (int c = 0; c <= 5; ++c) {
    EXPECT_STRNE(precinct::sim::to_string(static_cast<TraceCategory>(c)),
                 "unknown");
  }
}

}  // namespace
