// Unit tests for the discrete-event engine: ordering, cancellation,
// clock semantics, determinism.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "support/rng.hpp"

// Counting replacements for the global allocator, used by the
// SteadyStateSchedulingIsAllocationFree test below.  Replacement functions
// must live at global scope; the default operator new[]/delete[] route
// through these, so counting the scalar forms covers array news too.
namespace alloc_probe {
std::atomic<std::uint64_t> count{0};
}  // namespace alloc_probe

void* operator new(std::size_t size) {
  alloc_probe::count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace {

using precinct::sim::EventHandle;
using precinct::sim::Simulator;

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(3.0, [&] { order.push_back(3); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(2.0, [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(5.0, [&order, i] { order.push_back(i); });
  }
  sim.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator sim;
  double seen = -1.0;
  sim.schedule(2.5, [&] { seen = sim.now(); });
  sim.run_all();
  EXPECT_EQ(seen, 2.5);
  EXPECT_EQ(sim.now(), 2.5);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1.0, [&] { ++fired; });
  sim.schedule(10.0, [&] { ++fired; });
  sim.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 5.0);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run_until(20.0);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventAtExactBoundaryRuns) {
  Simulator sim;
  bool fired = false;
  sim.schedule(5.0, [&] { fired = true; });
  sim.run_until(5.0);
  EXPECT_TRUE(fired);
}

TEST(Simulator, NestedSchedulingFromCallbacks) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule(1.0, [&] {
    times.push_back(sim.now());
    sim.schedule(1.0, [&] { times.push_back(sim.now()); });
  });
  sim.run_all();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], 1.0);
  EXPECT_EQ(times[1], 2.0);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator sim;
  sim.schedule(2.0, [&] {
    sim.schedule(-5.0, [&] { EXPECT_EQ(sim.now(), 2.0); });
  });
  sim.run_all();
}

TEST(Simulator, ScheduleAtPastClampsToNow) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule(3.0, [&] {
    sim.schedule_at(1.0, [&] { fired_at = sim.now(); });
  });
  sim.run_all();
  EXPECT_EQ(fired_at, 3.0);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventHandle h = sim.schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(h));
  sim.run_all();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelTwiceIsIdempotent) {
  Simulator sim;
  const EventHandle h = sim.schedule(1.0, [] {});
  EXPECT_TRUE(sim.cancel(h));
  EXPECT_FALSE(sim.cancel(h));
  sim.run_all();
}

TEST(Simulator, CancelInvalidHandleIsNoop) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(EventHandle{}));
}

TEST(Simulator, CancelOneOfManyAtSameTime) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1.0, [&] { ++fired; });
  const EventHandle h = sim.schedule(1.0, [&] { fired += 100; });
  sim.schedule(1.0, [&] { ++fired; });
  sim.cancel(h);
  sim.run_all();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule(i, [] {});
  const auto h = sim.schedule(6.0, [] {});
  sim.cancel(h);
  sim.run_all();
  EXPECT_EQ(sim.events_executed(), 5u);
}

TEST(Simulator, RunUntilAdvancesClockWithoutEvents) {
  Simulator sim;
  sim.run_until(42.0);
  EXPECT_EQ(sim.now(), 42.0);
}

TEST(Simulator, ManyEventsStressOrdering) {
  Simulator sim;
  double last = -1.0;
  precinct::support::Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    sim.schedule(rng.uniform(0.0, 1000.0), [&] {
      EXPECT_GE(sim.now(), last);
      last = sim.now();
    });
  }
  sim.run_all();
  EXPECT_EQ(sim.events_executed(), 10000u);
}

TEST(Simulator, SteadyStateSchedulingIsAllocationFree) {
  // Captures at or below EventCallback::kInlineBytes live inside the pooled
  // slot, so once the arena and heap buffers have grown to working size,
  // schedule/run cycles perform zero heap allocations.
  struct Capture {  // 40 bytes: trivially copyable, inline-eligible
    void* a;
    double b;
    std::uint64_t c;
    std::uint64_t d;
    std::uint64_t e;
  };
  static_assert(sizeof(Capture) <= precinct::sim::EventCallback::kInlineBytes);
  Simulator sim;
  std::uint64_t sink = 0;
  const auto cycle = [&] {
    for (int i = 0; i < 2000; ++i) {
      const Capture cap{&sink, 0.25 * i, static_cast<std::uint64_t>(i), 1, 2};
      sim.schedule(static_cast<double>(i % 97), [cap] {
        *static_cast<std::uint64_t*>(cap.a) += cap.c;
      });
    }
    sim.run_all();
  };
  for (int warmup = 0; warmup < 3; ++warmup) cycle();
  const std::uint64_t before =
      alloc_probe::count.load(std::memory_order_relaxed);
  for (int round = 0; round < 3; ++round) cycle();
  const std::uint64_t after =
      alloc_probe::count.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before);
  EXPECT_EQ(sink, 6u * (2000u * 1999u / 2u));
}

TEST(Simulator, CancelAfterFireReturnsFalse) {
  Simulator sim;
  bool fired = false;
  const EventHandle h = sim.schedule(1.0, [&] { fired = true; });
  sim.run_all();
  EXPECT_TRUE(fired);
  EXPECT_FALSE(sim.cancel(h));
}

TEST(Simulator, StaleHandleCannotCancelRecycledSlot) {
  Simulator sim;
  const EventHandle stale = sim.schedule(1.0, [] {});
  sim.run_all();  // fires; the pool slot is recycled
  bool fired = false;
  sim.schedule(1.0, [&] { fired = true; });  // typically reuses that slot
  EXPECT_FALSE(sim.cancel(stale));  // generation mismatch: must not cancel
  sim.run_all();
  EXPECT_TRUE(fired);
}

TEST(Simulator, SelfCancelInsideCallbackIsNoop) {
  Simulator sim;
  EventHandle h;
  int count = 0;
  h = sim.schedule(1.0, [&] {
    ++count;
    EXPECT_FALSE(sim.cancel(h));  // already firing: too late to cancel
  });
  sim.run_all();
  EXPECT_EQ(count, 1);
}

TEST(Simulator, CancelledEventStillAdvancesClock) {
  Simulator sim;
  const EventHandle h = sim.schedule(7.0, [] {});
  sim.cancel(h);
  sim.run_all();
  EXPECT_EQ(sim.now(), 7.0);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(Simulator, MassSameTimestampKeepsInsertionOrder) {
  // Large enough to engage the batch drain, with every event tied on time:
  // order must still be exactly insertion order.
  Simulator sim;
  constexpr int kN = 5000;
  std::vector<int> order;
  order.reserve(kN);
  for (int i = 0; i < kN; ++i) {
    sim.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run_all();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kN));
  for (int i = 0; i < kN; ++i) {
    ASSERT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(Simulator, CancelDuringDrainSkipsQueuedEvent) {
  // The victim is already sorted into the ready batch when the canceller
  // runs; the tombstone must still suppress it.
  Simulator sim;
  bool victim_fired = false;
  for (int i = 0; i < 100; ++i) sim.schedule(1.0 + i, [] {});
  const EventHandle victim =
      sim.schedule(150.0, [&] { victim_fired = true; });
  sim.schedule(2.5, [&] { EXPECT_TRUE(sim.cancel(victim)); });
  sim.run_all();
  EXPECT_FALSE(victim_fired);
  EXPECT_EQ(sim.now(), 150.0);
}

TEST(Simulator, NestedRunUntilHonorsBoundDuringBatchDrain) {
  Simulator sim;
  int fired = 0;
  double nested_now = 0.0;
  int fired_at_nested_return = -1;
  for (int i = 1; i <= 200; ++i) {
    sim.schedule(static_cast<double>(i), [&] { ++fired; });
  }
  sim.schedule(5.5, [&] {
    sim.run_until(50.0);  // must consume exactly the events at t in (5.5, 50]
    nested_now = sim.now();
    fired_at_nested_return = fired;
  });
  sim.run_all();
  EXPECT_EQ(nested_now, 50.0);
  EXPECT_EQ(fired_at_nested_return, 50);
  EXPECT_EQ(fired, 200);
}

TEST(Simulator, HandlesStayDeadAcrossManyRecycles) {
  Simulator sim;
  std::vector<EventHandle> old;
  for (int round = 0; round < 5; ++round) {
    for (const EventHandle& h : old) EXPECT_FALSE(sim.cancel(h));
    std::vector<EventHandle> fresh;
    for (int i = 0; i < 64; ++i) {
      fresh.push_back(sim.schedule(0.5, [] {}));
    }
    sim.run_all();
    old = fresh;
  }
  EXPECT_EQ(sim.events_executed(), 5u * 64u);
}

TEST(Tracer, DisabledByDefault) {
  precinct::sim::Tracer tracer;
  tracer.emit(1.0, precinct::sim::TraceCategory::kProtocol, 0, "x");
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.total_emitted(), 0u);
}

TEST(Tracer, CategoryFiltering) {
  precinct::sim::Tracer tracer;
  tracer.enable(precinct::sim::TraceCategory::kCache);
  tracer.emit(1.0, precinct::sim::TraceCategory::kCache, 3, "hit");
  tracer.emit(2.0, precinct::sim::TraceCategory::kProtocol, 4, "nope");
  ASSERT_EQ(tracer.size(), 1u);
  EXPECT_EQ(tracer.events().front().node, 3u);
  tracer.disable(precinct::sim::TraceCategory::kCache);
  tracer.emit(3.0, precinct::sim::TraceCategory::kCache, 3, "gone");
  EXPECT_EQ(tracer.size(), 1u);
}

TEST(Tracer, RingBufferBounds) {
  precinct::sim::Tracer tracer(4);
  tracer.enable_all();
  for (int i = 0; i < 10; ++i) {
    tracer.emit(i, precinct::sim::TraceCategory::kRadio, 0,
                std::to_string(i));
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.total_emitted(), 10u);
  EXPECT_EQ(tracer.events().front().message, "6");
  const auto last2 = tracer.last(2);
  ASSERT_EQ(last2.size(), 2u);
  EXPECT_EQ(last2[1].message, "9");
}

TEST(Tracer, DumpFormatsLines) {
  precinct::sim::Tracer tracer;
  tracer.enable_all();
  tracer.emit(12.5, precinct::sim::TraceCategory::kCustody, 7, "moved keys");
  std::ostringstream os;
  tracer.dump(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("custody"), std::string::npos);
  EXPECT_NE(out.find("node 7"), std::string::npos);
  EXPECT_NE(out.find("moved keys"), std::string::npos);
}

TEST(Tracer, CategoriesHaveNames) {
  using precinct::sim::TraceCategory;
  for (int c = 0; c <= 5; ++c) {
    EXPECT_STRNE(precinct::sim::to_string(static_cast<TraceCategory>(c)),
                 "unknown");
  }
}

}  // namespace
