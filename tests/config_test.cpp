// Configuration-surface tests: table-driven validate() rejections (with
// error-message assertions) and the config_io write -> read -> write
// fixed point over every fingerprint scenario plus a fuzzer-drawn one.
#include <gtest/gtest.h>

#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/scenario_fuzz.hpp"
#include "core/config_io.hpp"
#include "support/kv_file.hpp"
#include "test_util.hpp"

namespace {

using namespace precinct;
using core::PrecinctConfig;

// ---------------------------------------------------------------------------
// validate() rejection table
// ---------------------------------------------------------------------------

struct RejectionCase {
  const char* name;
  std::function<void(PrecinctConfig&)> corrupt;
  const char* message_fragment;
};

const std::vector<RejectionCase>& rejection_cases() {
  static const std::vector<RejectionCase> cases = {
      {"zero nodes", [](PrecinctConfig& c) { c.n_nodes = 0; },
       "n_nodes must be > 0"},
      {"unknown retrieval scheme",
       [](PrecinctConfig& c) { c.retrieval_scheme = "warp-drive"; },
       "unknown retrieval scheme 'warp-drive'"},
      {"unknown consistency scheme",
       [](PrecinctConfig& c) { c.consistency_scheme = "quorum"; },
       "unknown consistency scheme 'quorum'"},
      {"unknown channel model",
       [](PrecinctConfig& c) { c.wireless.channel.model = "quantum"; },
       "unknown channel model 'quantum'"},
      {"negative request retries",
       [](PrecinctConfig& c) { c.request_retries = -1; },
       "request retries must be >= 0"},
      {"negative push retries", [](PrecinctConfig& c) { c.push_retries = -2; },
       "push retries must be >= 0"},
      {"loss probability out of range",
       [](PrecinctConfig& c) {
         c.wireless.channel.model = "bernoulli";
         c.wireless.channel.loss_p = 1.5;
       },
       "loss probability must be in [0, 1]"},
      {"unknown check category", [](PrecinctConfig& c) { c.check = "cachez"; },
       "unknown category 'cachez'"},
      {"unknown token in check list",
       [](PrecinctConfig& c) { c.check = "net,turbo"; },
       "unknown category 'turbo'"},
      {"zero check stride", [](PrecinctConfig& c) { c.check_stride = 0; },
       "check stride must be >= 1"},
      {"baseline retrieval with polling consistency",
       [](PrecinctConfig& c) {
         c.retrieval = core::RetrievalKind::kFlooding;
         c.consistency = consistency::Mode::kPushAdaptivePull;
         c.updates_enabled = true;
       },
       "has no region-based lookup"},
      {"replicas exceed region count",
       [](PrecinctConfig& c) {
         c.regions_x = c.regions_y = 1;
         c.replica_count = 1;
       },
       "replica_count needs at least replica_count+1 regions"},
      {"unknown mobility model",
       [](PrecinctConfig& c) { c.mobility_model = "teleport"; },
       "unknown mobility model 'teleport'"},
      {"zero street spacing",
       [](PrecinctConfig& c) { c.street_spacing_m = 0.0; },
       "street spacing must be > 0"},
      {"turn probability out of range",
       [](PrecinctConfig& c) { c.turn_probability = 1.5; },
       "turn probability must be in [0, 1]"},
      {"street grid does not fit the area",
       [](PrecinctConfig& c) {
         c.mobility_model = "manhattan";
         c.street_spacing_m = 5000.0;
       },
       "street spacing too wide"},
      {"zero commuter period",
       [](PrecinctConfig& c) { c.commuter_period_s = 0.0; },
       "commuter period must be > 0"},
      {"zero commuter hubs",
       [](PrecinctConfig& c) { c.commuter_hubs = 0; },
       "commuter fleet needs at least one hub"},
      {"class name with illegal characters",
       [](PrecinctConfig& c) {
         core::NodeClassConfig cls;
         cls.name = "bad-name";
         cls.count = c.n_nodes;
         c.node_classes = {cls};
       },
       "must use only [A-Za-z0-9_]"},
      {"classes out of name order",
       [](PrecinctConfig& c) {
         core::NodeClassConfig b;
         b.name = "b";
         b.count = 1;
         core::NodeClassConfig a;
         a.name = "a";
         a.count = c.n_nodes - 1;
         c.node_classes = {b, a};
       },
       "must be sorted by name"},
      {"zero-count class",
       [](PrecinctConfig& c) {
         core::NodeClassConfig cls;
         cls.name = "ghost";
         cls.count = 0;
         c.node_classes = {cls};
       },
       "must have count > 0"},
      {"class counts do not cover the fleet",
       [](PrecinctConfig& c) {
         core::NodeClassConfig cls;
         cls.name = "some";
         cls.count = c.n_nodes + 3;
         c.node_classes = {cls};
       },
       "must sum to n_nodes"},
      {"negative class speed",
       [](PrecinctConfig& c) {
         core::NodeClassConfig cls;
         cls.name = "rev";
         cls.count = c.n_nodes;
         cls.speed = -1.0;
         c.node_classes = {cls};
       },
       "speed must be >= 0"},
      {"negative request rate multiplier",
       [](PrecinctConfig& c) { c.request_rate_multiplier = -2.0; },
       "request rate multiplier must be > 0"},
      {"zero request rate multiplier",
       [](PrecinctConfig& c) { c.request_rate_multiplier = 0.0; },
       "request rate multiplier must be > 0"},
      {"zipf drift without a step",
       [](PrecinctConfig& c) {
         c.zipf_drift_per_s = 0.01;
         c.zipf_drift_step_s = 0.0;
       },
       "zipf drift step must be > 0"},
  };
  return cases;
}

TEST(ConfigValidate, RejectsBadConfigsWithSpecificMessages) {
  for (const RejectionCase& rc : rejection_cases()) {
    PrecinctConfig c;
    rc.corrupt(c);
    try {
      c.validate();
      FAIL() << rc.name << ": validate() accepted a bad config";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(rc.message_fragment),
                std::string::npos)
          << rc.name << ": message was '" << e.what() << "', expected '"
          << rc.message_fragment << "'";
    }
  }
}

TEST(ConfigValidate, AcceptsEveryCheckCategoryAndCombinations) {
  for (const char* spec :
       {"", "all", "net", "cache", "custody", "pending", "consistency",
        "energy", "net,cache,energy", "all,custody"}) {
    PrecinctConfig c;
    c.check = spec;
    EXPECT_NO_THROW(c.validate()) << "check=" << spec;
  }
}

// ---------------------------------------------------------------------------
// config_io round trip
// ---------------------------------------------------------------------------

/// write -> read -> write must be a fixed point: the first rendering and
/// the rendering of its re-parse agree byte-for-byte.
void expect_roundtrip(const PrecinctConfig& c, const std::string& label) {
  const std::string first = core::config_to_string(c);
  PrecinctConfig reread;
  ASSERT_NO_THROW(reread = core::config_from_kv(
                      support::KvFile::parse(first)))
      << label << ":\n" << first;
  const std::string second = core::config_to_string(reread);
  EXPECT_EQ(first, second) << label;
  EXPECT_NO_THROW(reread.validate()) << label;
}

/// The nine scenarios metrics_fingerprint.cpp runs, rebuilt here; keep in
/// sync with examples/metrics_fingerprint.cpp.
std::vector<std::pair<std::string, PrecinctConfig>> fingerprint_configs() {
  const auto base = [](std::uint64_t seed) {
    PrecinctConfig c;
    c.n_nodes = 60;
    c.warmup_s = 60;
    c.measure_s = 240;
    c.seed = seed;
    return c;
  };
  std::vector<std::pair<std::string, PrecinctConfig>> out;
  out.emplace_back("precinct_mobile_s7", base(7));
  {
    auto c = base(11);
    c.retrieval = core::RetrievalKind::kFlooding;
    c.measure_s = 150;
    out.emplace_back("flooding_s11", c);
  }
  {
    auto c = base(13);
    c.retrieval = core::RetrievalKind::kExpandingRing;
    c.measure_s = 150;
    out.emplace_back("ring_s13", c);
  }
  {
    auto c = base(17);
    c.updates_enabled = true;
    c.consistency = consistency::Mode::kPushAdaptivePull;
    c.mean_update_interval_s = 45.0;
    out.emplace_back("adaptive_pull_s17", c);
  }
  {
    auto c = base(19);
    c.updates_enabled = true;
    c.consistency = consistency::Mode::kPlainPush;
    c.mean_update_interval_s = 45.0;
    c.measure_s = 150;
    out.emplace_back("plain_push_s19", c);
  }
  {
    auto c = base(23);
    c.dynamic_regions = true;
    c.crash_rate_per_s = 0.02;
    c.join_rate_per_s = 0.02;
    c.graceful_fraction = 0.5;
    out.emplace_back("churn_dynamic_s23", c);
  }
  {
    auto c = base(29);
    c.n_nodes = 160;
    c.area = {{0, 0}, {1800, 1800}};
    c.regions_x = c.regions_y = 4;
    c.measure_s = 120;
    out.emplace_back("large_grid_s29", c);
  }
  {
    auto c = base(31);
    c.wireless.channel.model = "bernoulli";
    c.wireless.channel.loss_p = 0.2;
    c.request_retries = 3;
    c.measure_s = 150;
    out.emplace_back("bernoulli_loss_s31", c);
  }
  {
    auto c = base(37);
    c.wireless.channel.model = "gilbert-elliott";
    c.request_retries = 2;
    c.measure_s = 150;
    out.emplace_back("gilbert_elliott_s37", c);
  }
  return out;
}

TEST(ConfigIo, FingerprintConfigsRoundTrip) {
  for (const auto& [name, c] : fingerprint_configs()) {
    expect_roundtrip(c, name);
  }
}

TEST(ConfigIo, FuzzDrawnConfigsRoundTrip) {
  for (const std::uint64_t seed : {42u, 43u, 44u}) {
    const check::FuzzCase fc = check::draw_scenario(seed);
    expect_roundtrip(fc.config, "fuzz case " + std::to_string(seed));
  }
}

TEST(ConfigIo, BlackoutWindowsRoundTrip) {
  PrecinctConfig c = test_util::grid_config();
  c.wireless.channel.model = "scripted";
  c.wireless.channel.blackouts.push_back({3, 25.0, 45.5});
  c.wireless.channel.blackouts.push_back({11, 30.25, 60.0});
  c.check = "net,custody";
  c.check_stride = 7;
  expect_roundtrip(c, "scripted blackouts");
}

TEST(ConfigIo, RoundTrippedConfigRunsByteIdentically) {
  PrecinctConfig c = test_util::small_scenario();
  c.measure_s = 30.0;
  c.wireless.channel.model = "bernoulli";
  c.wireless.channel.loss_p = 0.1;
  c.request_retries = 2;
  const PrecinctConfig reread =
      core::config_from_kv(support::KvFile::parse(core::config_to_string(c)));
  EXPECT_EQ(core::fingerprint(core::run_scenario(c)),
            core::fingerprint(core::run_scenario(reread)));
}

TEST(ConfigIo, ShardingKnobsRoundTrip) {
  PrecinctConfig c;
  c.shards = 4;
  c.tiles_x = c.tiles_y = 3;
  c.gateway_latency_s = 0.375;
  c.gateway_interval_s = 7.5;
  expect_roundtrip(c, "sharded tile world");

  const PrecinctConfig reread = core::config_from_kv(
      support::KvFile::parse(core::config_to_string(c)));
  EXPECT_EQ(reread.shards, 4u);
  EXPECT_EQ(reread.tiles_x, 3u);
  EXPECT_EQ(reread.tiles_y, 3u);
  EXPECT_DOUBLE_EQ(reread.gateway_latency_s, 0.375);
  EXPECT_DOUBLE_EQ(reread.gateway_interval_s, 7.5);
}

TEST(ConfigValidate, RejectsBadShardingKnobs) {
  {
    PrecinctConfig c;
    c.shards = 0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
  }
  {
    PrecinctConfig c;
    c.tiles_x = 0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
  }
  {
    PrecinctConfig c;
    c.tiles_x = c.tiles_y = 2;
    c.gateway_latency_s = 0.0;  // a tiled world's conservative lookahead
                                // must be > 0
    EXPECT_THROW(c.validate(), std::invalid_argument);
  }
  {
    PrecinctConfig c;
    c.gateway_interval_s = -1.0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
  }
}

TEST(ConfigValidate, WorldShardingRejectsTiledKnobs) {
  // shards > 1 with the default 1x1 tile grid selects world sharding,
  // whose lookahead is derived from the radio timing — the gateway knobs
  // and the global region rebalancer must stay quiet.
  {
    PrecinctConfig c;
    c.shards = 2;
    c.gateway_latency_s = 0.25;
    EXPECT_THROW(c.validate(), std::invalid_argument);
  }
  {
    PrecinctConfig c;
    c.shards = 2;
    c.gateway_interval_s = 5.0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
  }
  {
    PrecinctConfig c;
    c.shards = 2;
    c.dynamic_regions = true;
    EXPECT_THROW(c.validate(), std::invalid_argument);
  }
  {
    PrecinctConfig c;  // quiet knobs: a world-sharded run validates
    c.shards = 4;
    EXPECT_NO_THROW(c.validate());
  }
}

TEST(ConfigIo, WorldShardedConfigIsAFixedPoint) {
  // write -> read -> write must reproduce the exact same text (the
  // round-trip fixed point), with world sharding selected purely by
  // shards > 1 on the default 1x1 tile grid.
  PrecinctConfig c;
  c.shards = 4;
  c.gateway_latency_s = 0.0;
  c.crash_rate_per_s = 0.01;
  c.join_rate_per_s = 0.01;
  expect_roundtrip(c, "world-sharded run");

  const std::string once = core::config_to_string(c);
  const PrecinctConfig reread =
      core::config_from_kv(support::KvFile::parse(once));
  EXPECT_EQ(reread.shards, 4u);
  EXPECT_EQ(reread.tiles_x, 1u);
  EXPECT_EQ(reread.tiles_y, 1u);
  EXPECT_DOUBLE_EQ(reread.gateway_latency_s, 0.0);
  EXPECT_EQ(core::config_to_string(reread), once);
}

TEST(ConfigIo, ScenarioPackKnobsRoundTrip) {
  // Every key the scenario packs introduced (DESIGN.md §15): structured
  // mobility, node classes, flash-crowd workload shaping.
  PrecinctConfig c;
  c.n_nodes = 24;
  c.mobility_model = "manhattan";
  c.street_spacing_m = 150.0;
  c.turn_probability = 0.3;
  c.commuter_period_s = 120.0;
  c.commuter_hubs = 4;
  c.request_rate_multiplier = 150.0;
  c.zipf_drift_per_s = 0.02;
  c.zipf_drift_step_s = 5.0;
  core::NodeClassConfig phone;
  phone.name = "phone";
  phone.count = 18;
  phone.speed = 4.0;
  core::NodeClassConfig rsu;
  rsu.name = "rsu";
  rsu.count = 6;
  rsu.cache_kb = 96.0;
  rsu.fixed = true;
  c.node_classes = {phone, rsu};
  expect_roundtrip(c, "scenario pack knobs");

  const PrecinctConfig reread =
      core::config_from_kv(support::KvFile::parse(core::config_to_string(c)));
  EXPECT_EQ(reread.mobility_model, "manhattan");
  EXPECT_DOUBLE_EQ(reread.street_spacing_m, 150.0);
  EXPECT_DOUBLE_EQ(reread.turn_probability, 0.3);
  EXPECT_EQ(reread.commuter_hubs, 4u);
  EXPECT_DOUBLE_EQ(reread.request_rate_multiplier, 150.0);
  EXPECT_DOUBLE_EQ(reread.zipf_drift_per_s, 0.02);
  EXPECT_DOUBLE_EQ(reread.zipf_drift_step_s, 5.0);
  ASSERT_EQ(reread.node_classes.size(), 2u);
  EXPECT_EQ(reread.node_classes[0].name, "phone");
  EXPECT_EQ(reread.node_classes[0].count, 18u);
  EXPECT_DOUBLE_EQ(reread.node_classes[0].speed, 4.0);
  EXPECT_EQ(reread.node_classes[1].name, "rsu");
  EXPECT_TRUE(reread.node_classes[1].fixed);
  EXPECT_DOUBLE_EQ(reread.node_classes[1].cache_kb, 96.0);
  EXPECT_TRUE(reread.has_fixed_nodes());
  EXPECT_EQ(reread.class_of(0), 0u);
  EXPECT_EQ(reread.class_of(17), 0u);
  EXPECT_EQ(reread.class_of(18), 1u);
  EXPECT_EQ(reread.class_of(23), 1u);
}

TEST(ConfigIo, ClassCountsAloneDefineTheFleetSize) {
  // A classes-only config needs no `nodes` key: the fleet size is the
  // class-count sum, and classes land sorted by name.
  const PrecinctConfig c = core::config_from_kv(support::KvFile::parse(
      "class.phone.count = 5\n"
      "class.rsu.count = 3\n"
      "class.rsu.fixed = true\n"));
  EXPECT_EQ(c.n_nodes, 8u);
  ASSERT_EQ(c.node_classes.size(), 2u);
  EXPECT_EQ(c.node_classes[0].name, "phone");
  EXPECT_EQ(c.node_classes[1].name, "rsu");
  EXPECT_NO_THROW(c.validate());
}

TEST(ConfigIo, MalformedClassKeysThrow) {
  for (const char* text : {
           "class.x = 3\n",          // missing attribute
           "class.x.bogus = 1\n",    // unknown attribute
           "class.x.count = -4\n",   // counts are unsigned
           "class.x.count = many\n"  // non-numeric
       }) {
    EXPECT_THROW((void)core::config_from_kv(support::KvFile::parse(text)),
                 std::invalid_argument)
        << text;
  }
}

TEST(ConfigIo, UnwritableConfigsThrow) {
  {
    PrecinctConfig c;
    c.area = {{0.0, 0.0}, {800.0, 600.0}};  // non-square
    EXPECT_THROW((void)core::config_to_string(c), std::invalid_argument);
  }
  {
    PrecinctConfig c;
    c.tiles_x = 2;
    c.tiles_y = 3;  // non-square tile grid has no kv form
    EXPECT_THROW((void)core::config_to_string(c), std::invalid_argument);
  }
  {
    PrecinctConfig c;
    c.regions_x = 2;
    c.regions_y = 3;
    EXPECT_THROW((void)core::config_to_string(c), std::invalid_argument);
  }
  {
    PrecinctConfig c;
    channel::Partition p;
    p.a = {{0.0, 0.0}, {400.0, 800.0}};
    p.b = {{400.0, 0.0}, {800.0, 800.0}};
    c.wireless.channel.partitions.push_back(p);
    EXPECT_THROW((void)core::config_to_string(c), std::invalid_argument);
  }
}

}  // namespace
