// Real-transport backend (DESIGN.md §14): wire-codec bit-exactness and
// rejection gates, hex repro helpers, transport-layer byte accounting,
// scripted workloads, the FlatJson status reader, loopback UDP sockets,
// fleet-fingerprint assembly, and the headline contract — a two-daemon
// in-process UDP fleet whose fleet fingerprint is byte-identical to the
// in-sim world-sharded oracle's.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "check/scenario_fuzz.hpp"
#include "core/config.hpp"
#include "core/metrics.hpp"
#include "core/scenario.hpp"
#include "core/world_scenario.hpp"
#include "net/message_stats.hpp"
#include "net/packet.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"
#include "transport/node_daemon.hpp"
#include "transport/udp_socket.hpp"
#include "transport/wire_format.hpp"
#include "workload/workload_script.hpp"

namespace {

using namespace precinct;
namespace tw = transport;

// ---- wire codec -------------------------------------------------------------

/// Encode -> decode -> encode must be a byte-level fixed point and the
/// decoded packet bit-identical; shared by the per-kind sweep below.
void expect_round_trip(const net::Packet& p) {
  tw::WireWriter w;
  tw::encode_packet(p, w);
  ASSERT_EQ(w.size(), tw::wire_size(p));

  net::Packet back;
  tw::WireReader r(w.data().data(), w.size());
  ASSERT_TRUE(tw::decode_packet(r, back)) << tw::to_hex(w.data());
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_TRUE(tw::packets_identical(p, back)) << tw::to_hex(w.data());

  tw::WireWriter again;
  tw::encode_packet(back, again);
  EXPECT_EQ(again.data(), w.data());
}

TEST(WireCodec, RoundTripsEveryKindBitExact) {
  support::Rng rng(0xC0DEC5u);
  for (std::size_t kind = 0; kind < net::kPacketKindCount; ++kind) {
    for (int rep = 0; rep < 16; ++rep) {
      expect_round_trip(
          tw::random_wire_packet(rng, static_cast<net::PacketKind>(kind)));
    }
  }
}

TEST(WireCodec, HostileDoublesSurvive) {
  net::Packet p;
  p.kind = net::PacketKind::kResponse;
  p.ttr_s = std::numeric_limits<double>::quiet_NaN();
  p.src_location = {-0.0, 0.0};
  p.created_at = std::numeric_limits<double>::infinity();
  p.dest_location = {-std::numeric_limits<double>::infinity(),
                     std::numeric_limits<double>::denorm_min()};
  expect_round_trip(p);
}

TEST(WireCodec, OptionalBlocksGateTheEncodedSize) {
  // A default Packet needs no optional block: the fixed header only.
  net::Packet p;
  const std::size_t base = tw::wire_size(p);
  EXPECT_EQ(base, 107u);

  net::Packet with_dest = p;
  with_dest.dest_node = 7;
  EXPECT_EQ(tw::wire_size(with_dest), base + 4);

  net::Packet with_region = p;
  with_region.dest_region = 3;
  EXPECT_EQ(tw::wire_size(with_region), base + 4);

  net::Packet with_perimeter = p;
  with_perimeter.perimeter_entry_node = 2;
  EXPECT_EQ(tw::wire_size(with_perimeter), base + 24);

  net::Packet with_response = p;
  with_response.version = 1;
  EXPECT_EQ(tw::wire_size(with_response), base + 21);

  // Presence is decided on bit patterns: ttr = -0.0 forces the response
  // block even though -0.0 == 0.0 numerically.
  net::Packet with_neg_zero = p;
  with_neg_zero.ttr_s = -0.0;
  EXPECT_EQ(tw::wire_size(with_neg_zero), base + 21);
  expect_round_trip(with_neg_zero);
}

TEST(WireCodec, EveryTruncationIsRejected) {
  support::Rng rng(0x7123u);
  const net::Packet p = tw::random_wire_packet(rng, net::PacketKind::kResponse);
  tw::WireWriter w;
  tw::encode_packet(p, w);
  for (std::size_t cut = 0; cut < w.size(); ++cut) {
    net::Packet t;
    tw::WireReader r(w.data().data(), cut);
    EXPECT_FALSE(tw::decode_packet(r, t)) << "accepted at " << cut;
  }
}

TEST(WireCodec, EnvelopeRejectsVersionMagicTypeAndTruncation) {
  tw::Envelope e;
  e.type = tw::MsgType::kFrame;
  e.src_domain = 4;
  e.seq = 99;
  tw::WireWriter w;
  tw::encode_envelope(e, w);
  ASSERT_EQ(w.size(), tw::kEnvelopeBytes);

  {
    tw::WireReader r(w.data().data(), w.size());
    tw::Envelope back;
    ASSERT_TRUE(tw::decode_envelope(r, back));
    EXPECT_EQ(back.type, e.type);
    EXPECT_EQ(back.src_domain, e.src_domain);
    EXPECT_EQ(back.seq, e.seq);
  }

  auto rejected = [](std::vector<std::uint8_t> bytes) {
    tw::WireReader r(bytes.data(), bytes.size());
    tw::Envelope back;
    return !tw::decode_envelope(r, back);
  };

  std::vector<std::uint8_t> bent = w.data();
  bent[tw::kMagicBytes] = tw::kWireVersion + 1;  // version byte
  EXPECT_TRUE(rejected(bent));

  bent = w.data();
  bent[0] ^= 0xFF;  // magic
  EXPECT_TRUE(rejected(bent));

  bent = w.data();
  bent[tw::kMagicBytes + 1] = 0;  // MsgType 0 is unassigned
  EXPECT_TRUE(rejected(bent));
  bent[tw::kMagicBytes + 1] = 200;  // far out of range
  EXPECT_TRUE(rejected(bent));

  for (std::size_t cut = 0; cut < w.size(); ++cut) {
    EXPECT_TRUE(rejected({w.data().begin(), w.data().begin() + cut}));
  }
}

TEST(WireCodec, HexHelpersRoundTrip) {
  const std::vector<std::uint8_t> bytes{0x00, 0x0f, 0xa5, 0xff};
  const std::string hex = tw::to_hex(bytes);
  EXPECT_EQ(hex, "000fa5ff");
  EXPECT_EQ(tw::from_hex(hex), bytes);
  EXPECT_TRUE(tw::from_hex("").empty());
  EXPECT_THROW((void)tw::from_hex("abc"), std::invalid_argument);
  EXPECT_THROW((void)tw::from_hex("zz"), std::invalid_argument);
}

TEST(WireCodec, PacketHexReplayJudgesTheFixedPoint) {
  support::Rng rng(0xBEEFu);
  const net::Packet p = tw::random_wire_packet(rng, net::PacketKind::kRequest);
  tw::WireWriter w;
  tw::encode_packet(p, w);

  const check::FuzzVerdict good = check::replay_packet_hex(tw::to_hex(w.data()));
  EXPECT_TRUE(good.ok) << good.detail;

  // Trailing garbage and truncation both fail the replay.
  EXPECT_FALSE(check::replay_packet_hex(tw::to_hex(w.data()) + "00").ok);
  EXPECT_FALSE(check::replay_packet_hex("00").ok);
  EXPECT_FALSE(check::replay_packet_hex("nothex").ok);
}

TEST(WireCodec, WireCodecFuzzPropertyIsWired) {
  // Seeds rotate over six properties now; every sixth case must be the
  // codec property and pass.
  const check::FuzzCase fc = check::draw_scenario(5);
  ASSERT_EQ(fc.property, check::Property::kWireCodec);
  const check::FuzzVerdict verdict = check::run_fuzz_case(fc);
  EXPECT_TRUE(verdict.ok) << verdict.detail;
}

// ---- transport-layer byte accounting ---------------------------------------

TEST(WireStats, MessageStatsTracksWireBytesPerKind) {
  net::MessageStats stats;
  stats.count_wire_sent(net::PacketKind::kRequest, 107);
  stats.count_wire_sent(net::PacketKind::kRequest, 111);
  stats.count_wire_received(net::PacketKind::kResponse, 132);
  EXPECT_EQ(stats.wire_bytes_sent(net::PacketKind::kRequest), 218u);
  EXPECT_EQ(stats.wire_bytes_received(net::PacketKind::kResponse), 132u);
  EXPECT_EQ(stats.total_wire_bytes_sent(), 218u);
  EXPECT_EQ(stats.total_wire_bytes_received(), 132u);
  // Wire accounting is a parallel ledger: the paper's payload metric is
  // untouched by it.
  EXPECT_EQ(stats.total_bytes(), 0u);
}

TEST(WireStats, ScenarioCountsWireBytesButFingerprintExcludesThem) {
  core::PrecinctConfig c;
  c.n_nodes = 16;
  c.area = {{0.0, 0.0}, {600.0, 600.0}};
  c.regions_x = c.regions_y = 2;
  c.catalog.n_items = 200;
  c.mean_request_interval_s = 3.0;
  c.warmup_s = 2.0;
  c.measure_s = 6.0;
  c.seed = 21;
  c.validate();

  const core::Metrics m = core::run_scenario(c);
  EXPECT_GT(m.wire_bytes_sent, 0u);
  // A broadcast charges one receive per in-range receiver, so the
  // received ledger normally dwarfs the sent one.
  EXPECT_GT(m.wire_bytes_received, 0u);

  // The pinned sim fingerprints predate the wire ledger and must stay
  // byte-identical: the fingerprint must not mention it.
  const std::string fp = core::fingerprint(m);
  EXPECT_EQ(fp.find("wire"), std::string::npos);
}

// ---- scripted workload ------------------------------------------------------

TEST(WorkloadScript, ParsesEventsAndIgnoresComments) {
  const std::string text =
      "# header comment\n"
      "\n"
      "0.5 request 3 0\n"
      "  2.25\tupdate 14 7  # trailing comment\n";
  const std::vector<workload::ScriptEvent> events =
      workload::parse_script(text);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_DOUBLE_EQ(events[0].t_s, 0.5);
  EXPECT_EQ(events[0].op, workload::ScriptEvent::Op::kRequest);
  EXPECT_EQ(events[0].node, 3u);
  EXPECT_EQ(events[0].rank, 0u);
  EXPECT_DOUBLE_EQ(events[1].t_s, 2.25);
  EXPECT_EQ(events[1].op, workload::ScriptEvent::Op::kUpdate);
  EXPECT_EQ(events[1].node, 14u);
  EXPECT_EQ(events[1].rank, 7u);
}

TEST(WorkloadScript, RejectsMalformedLines) {
  EXPECT_THROW((void)workload::parse_script("1.0 fetch 3 0\n"),
               std::invalid_argument);
  EXPECT_THROW((void)workload::parse_script("-1.0 request 3 0\n"),
               std::invalid_argument);
  EXPECT_THROW((void)workload::parse_script("1.0 request 3\n"),
               std::invalid_argument);
  EXPECT_THROW((void)workload::parse_script("1.0 request 3 0 junk\n"),
               std::invalid_argument);
}

// ---- FlatJson ---------------------------------------------------------------

TEST(FlatJson, ReadsBackWhatJsonObjectWrites) {
  support::JsonObject obj;
  obj.set("state", std::string("done"));
  obj.set("domain", std::uint64_t{3});
  obj.set("sim_now_s", 12.5);
  obj.set("clean", true);
  obj.set("note", std::string("a \"quoted\"\nline"));

  for (const bool pretty : {false, true}) {
    const support::FlatJson parsed = support::FlatJson::parse(obj.str(pretty));
    EXPECT_EQ(parsed.get_string("state"), "done");
    EXPECT_EQ(parsed.get_u64("domain"), 3u);
    EXPECT_DOUBLE_EQ(parsed.get_double("sim_now_s"), 12.5);
    EXPECT_EQ(parsed.get_string("note"), "a \"quoted\"\nline");
    EXPECT_TRUE(parsed.has("clean"));
    EXPECT_FALSE(parsed.has("missing"));
    EXPECT_THROW((void)parsed.get_u64("state"), std::invalid_argument);
    EXPECT_THROW((void)parsed.get_string("missing"), std::invalid_argument);
  }
}

TEST(FlatJson, RejectsNestingAndGarbage) {
  EXPECT_THROW((void)support::FlatJson::parse(""), std::invalid_argument);
  EXPECT_THROW((void)support::FlatJson::parse("{\"a\": {\"b\": 1}}"),
               std::invalid_argument);
  EXPECT_THROW((void)support::FlatJson::parse("{\"a\": [1, 2]}"),
               std::invalid_argument);
  EXPECT_THROW((void)support::FlatJson::parse("{\"a\": 1,}"),
               std::invalid_argument);
  EXPECT_THROW((void)support::FlatJson::parse("{\"a\" 1}"),
               std::invalid_argument);
}

// ---- UDP socket -------------------------------------------------------------

TEST(UdpSocketTest, ParseAddressRoundTrips) {
  const tw::UdpAddress a = tw::parse_address("127.0.0.1:47401");
  EXPECT_EQ(a.host, tw::kLoopbackHost);
  EXPECT_EQ(a.port, 47401);
  EXPECT_EQ(tw::to_string(a), "127.0.0.1:47401");
  EXPECT_THROW((void)tw::parse_address("127.0.0.1"), std::invalid_argument);
  EXPECT_THROW((void)tw::parse_address("nothost:12"), std::invalid_argument);
  EXPECT_THROW((void)tw::parse_address("127.0.0.1:99999"),
               std::invalid_argument);
}

TEST(UdpSocketTest, LoopbackDatagramDelivery) {
  tw::UdpSocket a(tw::UdpAddress{tw::kLoopbackHost, 0});
  tw::UdpSocket b(tw::UdpAddress{tw::kLoopbackHost, 0});
  ASSERT_NE(a.local_port(), 0);
  ASSERT_NE(b.local_port(), 0);

  const std::uint8_t payload[] = {1, 2, 3, 4};
  ASSERT_TRUE(a.send_to(tw::UdpAddress{tw::kLoopbackHost, b.local_port()},
                        payload, sizeof payload));
  ASSERT_TRUE(b.wait_readable(2000));
  std::vector<std::uint8_t> got;
  tw::UdpAddress from;
  ASSERT_TRUE(b.recv_from(got, &from));
  EXPECT_EQ(got, std::vector<std::uint8_t>(payload, payload + sizeof payload));
  EXPECT_EQ(from.host, tw::kLoopbackHost);
  EXPECT_EQ(from.port, a.local_port());
}

// ---- fleet fingerprint ------------------------------------------------------

TEST(FleetFingerprint, ValidatesDomainOrderAndAgreement) {
  tw::DomainReport d0;
  d0.domain = 0;
  d0.n_domains = 2;
  d0.lookahead_s = 0.25;
  d0.counters.windows = 10;
  tw::DomainReport d1 = d0;
  d1.domain = 1;

  const std::string fp = tw::fleet_fingerprint({d0, d1});
  EXPECT_EQ(fp.rfind("transport-fleet-v1\ndomains=2\n", 0), 0u) << fp;
  EXPECT_NE(fp.find("--- domain 0 ---"), std::string::npos);
  EXPECT_NE(fp.find("--- domain 1 ---"), std::string::npos);

  EXPECT_THROW((void)tw::fleet_fingerprint(std::vector<tw::DomainReport>{}),
               std::invalid_argument);
  EXPECT_THROW((void)tw::fleet_fingerprint({d1, d0}), std::invalid_argument);

  tw::DomainReport lagging = d1;
  lagging.counters.windows = 9;
  EXPECT_THROW((void)tw::fleet_fingerprint({d0, lagging}),
               std::invalid_argument);

  tw::DomainReport other_lookahead = d1;
  other_lookahead.lookahead_s = 0.5;
  EXPECT_THROW((void)tw::fleet_fingerprint({d0, other_lookahead}),
               std::invalid_argument);
}

// ---- two-daemon fleet vs the DES oracle ------------------------------------

/// A small 2-domain world busy enough to push frames and halo deltas
/// across the cut in both directions.
core::PrecinctConfig two_domain_config() {
  core::PrecinctConfig c;
  c.n_nodes = 24;
  c.area = {{0.0, 0.0}, {600.0, 600.0}};
  c.regions_x = c.regions_y = 2;
  c.v_max = 6.0;
  c.pause_s = 1.0;
  c.catalog.n_items = 200;
  c.mean_request_interval_s = 4.0;
  c.updates_enabled = true;
  c.consistency = consistency::Mode::kPushAdaptivePull;
  c.mean_update_interval_s = 10.0;
  c.warmup_s = 2.0;
  c.measure_s = 6.0;
  c.seed = 11;
  c.transport_retry_s = 0.02;
  c.transport_timeout_s = 20.0;
  c.transport_linger_s = 1.0;
  c.validate();
  return c;
}

TEST(TransportFleet, TwoDaemonFleetMatchesTheSimOracle) {
  const core::PrecinctConfig config = two_domain_config();

  // Let the OS pick two distinct free ports, then hand them to the
  // daemons (both sockets are alive while we read the ports, so they
  // cannot collide with each other).
  std::uint16_t port0 = 0;
  std::uint16_t port1 = 0;
  {
    tw::UdpSocket probe0(tw::UdpAddress{tw::kLoopbackHost, 0});
    tw::UdpSocket probe1(tw::UdpAddress{tw::kLoopbackHost, 0});
    port0 = probe0.local_port();
    port1 = probe1.local_port();
  }
  const std::vector<tw::UdpAddress> peers{
      {tw::kLoopbackHost, port0}, {tw::kLoopbackHost, port1}};

  std::vector<tw::DomainReport> reports(2);
  std::vector<std::string> errors(2);
  std::vector<std::thread> threads;
  for (std::uint32_t domain = 0; domain < 2; ++domain) {
    threads.emplace_back([&, domain] {
      try {
        tw::NodeDaemon::Options opts;
        opts.config = config;
        opts.domain = domain;
        opts.peers = peers;
        tw::NodeDaemon daemon(opts);
        const tw::NodeDaemon::Outcome outcome =
            daemon.run([] { return false; });
        if (outcome != tw::NodeDaemon::Outcome::kDone) {
          errors[domain] = "daemon did not run to the horizon";
          return;
        }
        reports[domain] = daemon.report();
      } catch (const std::exception& e) {
        errors[domain] = e.what();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_TRUE(errors[0].empty()) << "domain 0: " << errors[0];
  ASSERT_TRUE(errors[1].empty()) << "domain 1: " << errors[1];

  const std::string fleet = tw::fleet_fingerprint(reports);
  const std::string oracle =
      tw::fleet_fingerprint(core::run_world_scenario(config));
  EXPECT_EQ(fleet, oracle);

  // The run must have exercised the wire for real in both directions.
  for (const tw::DomainReport& r : reports) {
    EXPECT_GT(r.counters.datagrams_sent, 0u);
    EXPECT_GT(r.counters.datagrams_received, 0u);
    EXPECT_GT(r.metrics.wire_bytes_sent + r.metrics.wire_bytes_received, 0u);
  }
}

}  // namespace
