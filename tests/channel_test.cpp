// Channel / fault-injection subsystem tests: registry resolution, config
// validation, each model's loss statistics against closed form, RNG-stream
// isolation (bernoulli loss=0 must be metric-identical to perfect),
// scripted-fault determinism, retransmission backoff timing, and the
// lossy-channel smoke (retries recover >= 90% completion under 20% loss).
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "channel/channel_models.hpp"
#include "channel/channel_registry.hpp"
#include "core/engine.hpp"
#include "test_util.hpp"
#include "core/scenario.hpp"
#include "mobility/static_placement.hpp"
#include "net/wireless_net.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"

namespace {

using namespace precinct;
using channel::ChannelConfig;
using channel::ChannelRegistry;
using channel::DropCause;
using channel::Link;

Link link_at(double distance_m, double range_m = 250.0, double now_s = 0.0) {
  Link link;
  link.sender = 1;
  link.receiver = 2;
  link.sender_pos = {0.0, 0.0};
  link.receiver_pos = {distance_m, 0.0};
  link.range_m = range_m;
  link.now_s = now_s;
  return link;
}

/// Empirical drop rate of `model` over n frames on one link.
double drop_rate(channel::ChannelModel& model, const Link& link, int n,
                 std::uint64_t seed = 7) {
  support::Rng rng(seed);
  int drops = 0;
  for (int i = 0; i < n; ++i) {
    if (model.filter(link, rng).has_value()) ++drops;
  }
  return static_cast<double>(drops) / n;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(ChannelRegistry, BuiltinsAreRegistered) {
  const ChannelRegistry& reg = ChannelRegistry::instance();
  for (const char* name :
       {"perfect", "bernoulli", "distance", "gilbert-elliott", "scripted"}) {
    EXPECT_TRUE(reg.has(name)) << name;
  }
  EXPECT_FALSE(reg.has("quantum"));
  EXPECT_GE(reg.names().size(), 5u);
}

TEST(ChannelRegistry, MakeResolvesByNameAndReportsLosslessness) {
  ChannelConfig config;
  config.model = "perfect";
  EXPECT_TRUE(ChannelRegistry::instance().make(config)->lossless());
  config.model = "bernoulli";
  EXPECT_FALSE(ChannelRegistry::instance().make(config)->lossless());
}

TEST(ChannelRegistry, UnknownModelThrowsListingRegisteredNames) {
  ChannelConfig config;
  config.model = "subspace";
  try {
    (void)ChannelRegistry::instance().make(config);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("subspace"), std::string::npos) << what;
    EXPECT_NE(what.find("bernoulli"), std::string::npos)
        << "message should list registered names: " << what;
  }
}

TEST(ChannelRegistry, DuplicateRegistrationThrows) {
  EXPECT_THROW(
      ChannelRegistry::instance().register_model("perfect", nullptr),
      std::logic_error);
}

// ---------------------------------------------------------------------------
// Config validation
// ---------------------------------------------------------------------------

TEST(ChannelValidation, RejectsUnknownModelName) {
  core::PrecinctConfig c;
  c.wireless.channel.model = "subspace";
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(ChannelValidation, RejectsOutOfRangeKnobs) {
  {
    core::PrecinctConfig c;
    c.wireless.channel.loss_p = 1.5;
    EXPECT_THROW(c.validate(), std::invalid_argument);
  }
  {
    core::PrecinctConfig c;
    c.wireless.channel.edge_start_fraction = -0.1;
    EXPECT_THROW(c.validate(), std::invalid_argument);
  }
  {
    core::PrecinctConfig c;
    c.wireless.channel.ge_enter_burst_p = 2.0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
  }
  {
    core::PrecinctConfig c;
    c.wireless.channel.ge_mean_burst_frames = -1.0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
  }
  {
    core::PrecinctConfig c;
    c.request_retries = -1;
    EXPECT_THROW(c.validate(), std::invalid_argument);
  }
  {
    core::PrecinctConfig c;
    c.wireless.channel.blackouts.push_back({0, 10.0, 5.0});
    EXPECT_THROW(c.validate(), std::invalid_argument);
  }
}

TEST(ChannelValidation, AcceptsLossyConfiguration) {
  core::PrecinctConfig c;
  c.wireless.channel.model = "bernoulli";
  c.wireless.channel.loss_p = 0.2;
  c.request_retries = 4;
  EXPECT_NO_THROW(c.validate());
}

// ---------------------------------------------------------------------------
// Model statistics
// ---------------------------------------------------------------------------

TEST(ChannelModels, PerfectNeverDropsAndNeverDraws) {
  channel::PerfectChannel model;
  support::Rng probe(3);
  support::Rng replay(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(model.filter(link_at(100.0), replay).has_value());
  }
  // The stream was never advanced by filter(): the next draw matches the
  // first draw of an untouched twin.
  EXPECT_EQ(replay.uniform(), probe.uniform());
}

TEST(ChannelModels, BernoulliMatchesConfiguredRate) {
  ChannelConfig config;
  config.loss_p = 0.3;
  channel::BernoulliLoss model(config);
  EXPECT_NEAR(drop_rate(model, link_at(100.0), 20000), 0.3, 0.02);
}

TEST(ChannelModels, BernoulliZeroNeverDrops) {
  ChannelConfig config;
  config.loss_p = 0.0;
  channel::BernoulliLoss model(config);
  EXPECT_EQ(drop_rate(model, link_at(100.0), 5000), 0.0);
}

TEST(ChannelModels, DistanceLossRampsTowardRangeEdge) {
  ChannelConfig config;
  config.edge_start_fraction = 0.7;
  config.edge_loss_p = 0.8;
  channel::DistanceLoss model(config);
  // Inside the ramp-start radius delivery is certain.
  EXPECT_EQ(drop_rate(model, link_at(100.0), 5000), 0.0);
  EXPECT_EQ(drop_rate(model, link_at(174.9), 5000), 0.0);
  // Halfway up the ramp (d = 212.5 of 175..250) the rate is half of
  // edge_loss_p; at the edge it is edge_loss_p.
  EXPECT_NEAR(drop_rate(model, link_at(212.5), 20000), 0.4, 0.02);
  EXPECT_NEAR(drop_rate(model, link_at(250.0), 20000), 0.8, 0.02);
}

TEST(ChannelModels, GilbertElliottMatchesSteadyStateClosedForm) {
  ChannelConfig config;
  config.ge_enter_burst_p = 0.05;
  config.ge_mean_burst_frames = 8.0;
  config.ge_loss_good = 0.0;
  config.ge_loss_bad = 1.0;
  channel::GilbertElliott model(config);
  // pi_bad = p / (p + r) with r = 1/8: 0.05 / 0.175 = 0.2857...
  EXPECT_NEAR(model.steady_state_loss(), 0.05 / (0.05 + 0.125), 1e-12);
  EXPECT_NEAR(drop_rate(model, link_at(100.0), 200000),
              model.steady_state_loss(), 0.02);
}

TEST(ChannelModels, GilbertElliottTracksLinksIndependently) {
  ChannelConfig config;
  config.ge_enter_burst_p = 1.0;  // the first frame flips a link to bad
  config.ge_mean_burst_frames = 1e9;
  config.ge_loss_good = 0.0;
  config.ge_loss_bad = 1.0;
  channel::GilbertElliott model(config);
  support::Rng rng(11);
  Link forward = link_at(100.0);
  // First frame on a fresh link resolves loss in the good state.
  EXPECT_FALSE(model.filter(forward, rng).has_value());
  // The link is now stuck in the bad burst: every further frame drops...
  EXPECT_TRUE(model.filter(forward, rng).has_value());
  EXPECT_TRUE(model.filter(forward, rng).has_value());
  // ...but the reverse direction is a different link, still good.
  Link reverse = forward;
  std::swap(reverse.sender, reverse.receiver);
  EXPECT_FALSE(model.filter(reverse, rng).has_value());
}

TEST(ChannelModels, ScriptedBlackoutCoversItsWindowOnly) {
  ChannelConfig config;
  config.blackouts.push_back({2, 10.0, 20.0});
  channel::ScriptedFaults model(config);
  support::Rng rng(1);
  // Receiver 2 inside the window: dropped, cause scripted.
  const auto in_window = model.filter(link_at(100.0, 250.0, 15.0), rng);
  ASSERT_TRUE(in_window.has_value());
  EXPECT_EQ(*in_window, DropCause::kScripted);
  // Same link before, at the half-open end, and after: delivered.
  EXPECT_FALSE(model.filter(link_at(100.0, 250.0, 9.9), rng).has_value());
  EXPECT_FALSE(model.filter(link_at(100.0, 250.0, 20.0), rng).has_value());
  // The blacked-out node as sender is silenced too.
  Link from_node2 = link_at(100.0, 250.0, 15.0);
  std::swap(from_node2.sender, from_node2.receiver);
  EXPECT_TRUE(model.filter(from_node2, rng).has_value());
  // An uninvolved pair is untouched mid-window.
  Link other = link_at(100.0, 250.0, 15.0);
  other.sender = 7;
  other.receiver = 8;
  EXPECT_FALSE(model.filter(other, rng).has_value());
}

TEST(ChannelModels, ScriptedPartitionDropsCrossingFramesBothWays) {
  ChannelConfig config;
  channel::Partition p;
  p.a = {{0.0, 0.0}, {100.0, 100.0}};
  p.b = {{200.0, 0.0}, {300.0, 100.0}};
  p.start_s = 5.0;
  p.end_s = 15.0;
  config.partitions.push_back(p);
  channel::ScriptedFaults model(config);
  support::Rng rng(1);

  Link crossing;
  crossing.sender = 1;
  crossing.receiver = 2;
  crossing.sender_pos = {50.0, 50.0};    // inside a
  crossing.receiver_pos = {250.0, 50.0}; // inside b
  crossing.range_m = 250.0;
  crossing.now_s = 10.0;
  EXPECT_TRUE(model.filter(crossing, rng).has_value());
  std::swap(crossing.sender_pos, crossing.receiver_pos);
  EXPECT_TRUE(model.filter(crossing, rng).has_value());
  crossing.now_s = 20.0;  // window over
  EXPECT_FALSE(model.filter(crossing, rng).has_value());
  // Both endpoints on the same side: not a crossing frame.
  Link internal = crossing;
  internal.now_s = 10.0;
  internal.sender_pos = {10.0, 10.0};
  internal.receiver_pos = {90.0, 90.0};
  EXPECT_FALSE(model.filter(internal, rng).has_value());
}

// ---------------------------------------------------------------------------
// Scenario-level behavior
// ---------------------------------------------------------------------------

/// RNG-stream isolation: `bernoulli loss=0` consults the channel (and
/// draws from the channel stream) on every delivery yet must reproduce
/// the perfect channel's metrics exactly — the channel stream is
/// dedicated, so its draws perturb nothing else.
TEST(ChannelScenario, BernoulliZeroLossIsMetricIdenticalToPerfect) {
  core::PrecinctConfig perfect = test_util::small_scenario();
  core::PrecinctConfig bernoulli = test_util::small_scenario();
  bernoulli.wireless.channel.model = "bernoulli";
  bernoulli.wireless.channel.loss_p = 0.0;

  const core::Metrics a = core::run_scenario(perfect);
  const core::Metrics b = core::run_scenario(bernoulli);
  EXPECT_EQ(a.requests_issued, b.requests_issued);
  EXPECT_EQ(a.requests_completed, b.requests_completed);
  EXPECT_EQ(a.requests_failed, b.requests_failed);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.bytes_sent, b.bytes_sent);
  EXPECT_EQ(a.frames_lost, b.frames_lost);
  EXPECT_EQ(a.latency_s.mean(), b.latency_s.mean());
  EXPECT_EQ(a.energy_total_mj, b.energy_total_mj);
  EXPECT_EQ(b.frames_dropped_by_channel, 0u);
  EXPECT_EQ(b.energy_channel_discard_mj, 0.0);
}

TEST(ChannelScenario, ScriptedFaultsAreDeterministicAcrossReruns) {
  core::PrecinctConfig c = test_util::small_scenario();
  c.wireless.channel.model = "scripted";
  c.wireless.channel.blackouts.push_back({3, 25.0, 45.0});
  c.wireless.channel.blackouts.push_back({11, 30.0, 60.0});
  channel::Partition p;
  p.a = {{0.0, 0.0}, {400.0, 800.0}};
  p.b = {{400.0, 0.0}, {800.0, 800.0}};
  p.start_s = 50.0;
  p.end_s = 65.0;
  c.wireless.channel.partitions.push_back(p);
  c.request_retries = 2;

  const core::Metrics a = core::run_scenario(c);
  const core::Metrics b = core::run_scenario(c);
  EXPECT_GT(a.frames_dropped_by_channel, 0u);
  EXPECT_EQ(a.frames_dropped_by_channel, b.frames_dropped_by_channel);
  EXPECT_EQ(a.channel_drops_by_cause, b.channel_drops_by_cause);
  EXPECT_EQ(a.channel_drops_by_cause[static_cast<std::size_t>(
                DropCause::kScripted)],
            a.frames_dropped_by_channel);
  EXPECT_EQ(a.requests_completed, b.requests_completed);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  EXPECT_EQ(a.energy_channel_discard_mj, b.energy_channel_discard_mj);
}

// ---------------------------------------------------------------------------
// Retransmission backoff timing
// ---------------------------------------------------------------------------

/// 9 static peers, one per region of a 3x3 grid over 600x600 m — the same
/// deterministic topology as modules_test.cpp — with the requester (node
/// 0) permanently blacked out, so every lookup phase times out on
/// schedule and the full retry/escalate/fail timeline can be read off the
/// trace with exact timestamps.
TEST(ChannelBackoff, RetryTimelineDoublesThenFallsBackToReplica) {
  core::PrecinctConfig config = test_util::grid_config();
  config.request_retries = 2;
  config.replica_count = 1;
  config.wireless.channel.model = "scripted";
  config.wireless.channel.blackouts.push_back({0, 0.0, 1e9});

  const std::vector<geo::Point> positions = test_util::grid_positions();
  workload::DataCatalog catalog(config.catalog,
                                support::hash_combine(config.seed, 0xCA7A));
  mobility::StaticPlacement placement(positions);
  sim::Simulator sim;
  net::WirelessNet net(sim, placement, config.wireless,
                       config.energy_model, 1);
  core::PrecinctEngine engine(
      config, sim, net, geo::RegionTable::grid(config.area, 3, 3), catalog);
  sim::Tracer tracer;
  tracer.enable_all();
  engine.set_tracer(&tracer);
  net.set_tracer(&tracer);
  engine.initialize();
  engine.start_measurement();

  // A key homed (and replicated) away from node 0's region, so neither
  // lookup is satisfied locally and the skip logic leaves both targets.
  const geo::RegionId own = engine.region_of(0);
  geo::Key key = 0;
  bool found = false;
  for (std::size_t i = 0; i < catalog.size() && !found; ++i) {
    const auto targets = engine.geo_hash().key_regions(
        catalog.key_of(i), engine.region_table(), config.replica_count);
    if (targets.size() == 2 && targets[0] != own && targets[1] != own) {
      key = catalog.key_of(i);
      found = true;
    }
  }
  ASSERT_TRUE(found);

  engine.issue_request(0, key);
  sim.run_until(30.0);

  // Timeline (regional probe 0.08 s, remote timeout 1 s, budget 2):
  //   0.08   regional probe times out -> home lookup (waits 1 s)
  //   1.08   home retransmit #1 (waits 2 s)
  //   3.08   home retransmit #2 (waits 4 s)
  //   7.08   budget exhausted -> replica lookup (waits 1 s)
  //   8.08   replica retransmit #1 (waits 2 s)
  //  10.08   replica retransmit #2 (waits 4 s)
  //  14.08   chain exhausted -> request FAILED
  std::vector<double> retransmit_times;
  double failed_at = -1.0;
  for (const auto& event : tracer.events()) {
    if (event.message.find("retransmit") != std::string::npos) {
      retransmit_times.push_back(event.time_s);
    }
    if (event.message.find("FAILED") != std::string::npos) {
      failed_at = event.time_s;
    }
  }
  ASSERT_EQ(retransmit_times.size(), 4u);
  const double expected[] = {1.08, 3.08, 8.08, 10.08};
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(retransmit_times[i], expected[i], 1e-9) << "retry " << i;
  }
  EXPECT_NEAR(failed_at, 14.08, 1e-9);

  const core::Metrics& m = engine.metrics();
  EXPECT_EQ(m.retransmissions, 4u);
  EXPECT_EQ(m.requests_failed, 1u);
  EXPECT_GT(net.frames_dropped_by_channel(), 0u);
  EXPECT_EQ(net.channel_drops_by_cause()[static_cast<std::size_t>(
                DropCause::kScripted)],
            net.frames_dropped_by_channel());
}

// ---------------------------------------------------------------------------
// Lossy smoke: retries + replica fallback recover completion under loss
// ---------------------------------------------------------------------------

TEST(ChannelSmoke, RetriesRecoverNinetyPercentCompletionUnderTwentyPercentLoss) {
  core::PrecinctConfig c;
  c.n_nodes = 80;
  c.area = {{0.0, 0.0}, {800.0, 800.0}};
  c.v_max = 2.0;
  c.warmup_s = 30.0;
  c.measure_s = 120.0;
  c.seed = 42;
  c.wireless.channel.model = "bernoulli";
  c.wireless.channel.loss_p = 0.2;
  c.request_retries = 5;

  const core::Metrics a = core::run_scenario(c);
  EXPECT_GE(a.success_ratio(), 0.9);
  EXPECT_GT(a.frames_dropped_by_channel, 0u);
  EXPECT_GT(a.retransmissions, 0u);
  EXPECT_GT(a.energy_channel_discard_mj, 0.0);
  EXPECT_EQ(a.channel_drops_by_cause[static_cast<std::size_t>(
                DropCause::kRandom)],
            a.frames_dropped_by_channel);

  // Same seed, same losses, same metrics: the channel stream is seeded
  // from the scenario seed, not wall-clock state.
  const core::Metrics b = core::run_scenario(c);
  EXPECT_EQ(a.requests_issued, b.requests_issued);
  EXPECT_EQ(a.requests_completed, b.requests_completed);
  EXPECT_EQ(a.frames_dropped_by_channel, b.frames_dropped_by_channel);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  EXPECT_EQ(a.duplicate_responses_suppressed,
            b.duplicate_responses_suppressed);
  EXPECT_EQ(a.energy_channel_discard_mj, b.energy_channel_discard_mj);
}

}  // namespace
