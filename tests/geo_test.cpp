// Unit tests for geometry, region tables (Add/Delete/Merge/Separate,
// nearest/second-nearest lookups) and the geographic hash.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>

#include "geo/geo_hash.hpp"
#include "support/rng.hpp"
#include "geo/geometry.hpp"
#include "geo/region_table.hpp"

namespace {

using namespace precinct::geo;

TEST(Geometry, Distance) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance_sq({0, 0}, {3, 4}), 25.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}), 0.0);
}

TEST(Geometry, PointArithmetic) {
  const Point p = Point{1, 2} + Point{3, 4};
  EXPECT_EQ(p, (Point{4, 6}));
  EXPECT_EQ((Point{4, 6} - Point{1, 2}), (Point{3, 4}));
  EXPECT_EQ((Point{1, 2} * 2.0), (Point{2, 4}));
}

TEST(Geometry, Bearing) {
  EXPECT_DOUBLE_EQ(bearing({0, 0}, {1, 0}), 0.0);
  EXPECT_NEAR(bearing({0, 0}, {0, 1}), M_PI / 2, 1e-12);
  EXPECT_NEAR(std::abs(bearing({0, 0}, {-1, 0})), M_PI, 1e-12);
}

TEST(Rect, ContainsHalfOpen) {
  const Rect r{{0, 0}, {10, 10}};
  EXPECT_TRUE(r.contains({0, 0}));
  EXPECT_TRUE(r.contains({9.999, 9.999}));
  EXPECT_FALSE(r.contains({10, 5}));
  EXPECT_FALSE(r.contains({5, 10}));
  EXPECT_FALSE(r.contains({-0.1, 5}));
}

TEST(Rect, CenterAndArea) {
  const Rect r{{0, 0}, {10, 20}};
  EXPECT_EQ(r.center(), (Point{5, 10}));
  EXPECT_DOUBLE_EQ(r.area(), 200.0);
}

TEST(Rect, United) {
  const Rect a{{0, 0}, {5, 5}};
  const Rect b{{10, 10}, {20, 20}};
  const Rect u = a.united(b);
  EXPECT_EQ(u.min, (Point{0, 0}));
  EXPECT_EQ(u.max, (Point{20, 20}));
}

TEST(Rect, ClampKeepsPointInside) {
  const Rect r{{0, 0}, {10, 10}};
  EXPECT_TRUE(r.contains(r.clamp({15, -3})));
  EXPECT_TRUE(r.contains(r.clamp({10, 10})));
}

TEST(RegionTable, GridBuildsExpectedRegions) {
  const auto table = RegionTable::grid({{0, 0}, {1200, 1200}}, 3, 3);
  EXPECT_EQ(table.size(), 9u);
  // Every region is a 400x400 cell; centers on the 200+400k lattice.
  for (const Region& r : table.regions()) {
    EXPECT_DOUBLE_EQ(r.extent.width(), 400.0);
    EXPECT_DOUBLE_EQ(r.extent.height(), 400.0);
    EXPECT_EQ(r.center, r.extent.center());
  }
}

TEST(RegionTable, NearestFindsContainingCellOnGrid) {
  const auto table = RegionTable::grid({{0, 0}, {1200, 1200}}, 3, 3);
  const RegionId id = table.nearest({100, 100});
  const Region* r = table.find(id);
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->extent.contains({100, 100}));
}

TEST(RegionTable, NearestAndContainingAgreeOnGrid) {
  const auto table = RegionTable::grid({{0, 0}, {1200, 1200}}, 4, 4);
  precinct::support::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const Point p{rng.uniform(0, 1200), rng.uniform(0, 1200)};
    EXPECT_EQ(table.nearest(p), table.containing(p));
  }
}

TEST(RegionTable, SecondNearestDiffersFromNearest) {
  const auto table = RegionTable::grid({{0, 0}, {1200, 1200}}, 3, 3);
  precinct::support::Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const Point p{rng.uniform(0, 1200), rng.uniform(0, 1200)};
    const RegionId first = table.nearest(p);
    const RegionId second = table.second_nearest(p);
    ASSERT_NE(second, kInvalidRegion);
    EXPECT_NE(first, second);
    // Ordering invariant: dist(first) <= dist(second) <= any other.
    const double d1 = distance(table.find(first)->center, p);
    const double d2 = distance(table.find(second)->center, p);
    EXPECT_LE(d1, d2);
    for (const Region& r : table.regions()) {
      if (r.id != first && r.id != second) {
        EXPECT_LE(d2, distance(r.center, p));
      }
    }
  }
}

TEST(RegionTable, EmptyTableLookups) {
  RegionTable table;
  EXPECT_EQ(table.nearest({0, 0}), kInvalidRegion);
  EXPECT_EQ(table.second_nearest({0, 0}), kInvalidRegion);
  EXPECT_TRUE(table.empty());
}

TEST(RegionTable, SingleRegionHasNoSecond) {
  RegionTable table;
  table.add({5, 5}, {{0, 0}, {10, 10}});
  EXPECT_NE(table.nearest({1, 1}), kInvalidRegion);
  EXPECT_EQ(table.second_nearest({1, 1}), kInvalidRegion);
}

TEST(RegionTable, AddBumpsVersionAndAssignsIds) {
  RegionTable table;
  const auto v0 = table.version();
  const RegionId a = table.add({0, 0}, {{0, 0}, {1, 1}});
  const RegionId b = table.add({2, 2}, {{1, 1}, {3, 3}});
  EXPECT_NE(a, b);
  EXPECT_GT(table.version(), v0);
  EXPECT_EQ(table.size(), 2u);
}

TEST(RegionTable, DeleteRemovesRegion) {
  auto table = RegionTable::grid({{0, 0}, {100, 100}}, 2, 2);
  const RegionId victim = table.regions().front().id;
  const auto v = table.version();
  EXPECT_TRUE(table.remove(victim));
  EXPECT_EQ(table.size(), 3u);
  EXPECT_EQ(table.find(victim), nullptr);
  EXPECT_GT(table.version(), v);
  EXPECT_FALSE(table.remove(victim));  // already gone
}

TEST(RegionTable, MergeUnitesExtents) {
  auto table = RegionTable::grid({{0, 0}, {200, 100}}, 2, 1);
  const RegionId a = table.regions()[0].id;
  const RegionId b = table.regions()[1].id;
  const auto merged = table.merge(a, b);
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(table.size(), 1u);
  const Region* r = table.find(*merged);
  ASSERT_NE(r, nullptr);
  EXPECT_DOUBLE_EQ(r->extent.width(), 200.0);
  EXPECT_EQ(r->center, (Point{100, 50}));
}

TEST(RegionTable, MergeRejectsUnknownOrSelf) {
  auto table = RegionTable::grid({{0, 0}, {100, 100}}, 2, 2);
  const RegionId a = table.regions()[0].id;
  EXPECT_FALSE(table.merge(a, a).has_value());
  EXPECT_FALSE(table.merge(a, 999).has_value());
  EXPECT_EQ(table.size(), 4u);  // untouched on failure
}

TEST(RegionTable, SeparateSplitsAlongLongerAxis) {
  RegionTable table;
  const RegionId wide = table.add({50, 10}, {{0, 0}, {100, 20}});
  const auto halves = table.separate(wide);
  ASSERT_TRUE(halves.has_value());
  EXPECT_EQ(table.size(), 2u);
  const Region* left = table.find(halves->first);
  const Region* right = table.find(halves->second);
  ASSERT_NE(left, nullptr);
  ASSERT_NE(right, nullptr);
  EXPECT_DOUBLE_EQ(left->extent.width(), 50.0);
  EXPECT_DOUBLE_EQ(right->extent.width(), 50.0);
  EXPECT_DOUBLE_EQ(left->extent.height(), 20.0);
}

TEST(RegionTable, SeparateThenMergeRoundTrips) {
  RegionTable table;
  const RegionId orig = table.add({50, 50}, {{0, 0}, {100, 100}});
  const auto halves = table.separate(orig);
  ASSERT_TRUE(halves.has_value());
  const auto merged = table.merge(halves->first, halves->second);
  ASSERT_TRUE(merged.has_value());
  const Region* r = table.find(*merged);
  ASSERT_NE(r, nullptr);
  EXPECT_DOUBLE_EQ(r->extent.area(), 100.0 * 100.0);
  EXPECT_EQ(r->center, (Point{50, 50}));
}

TEST(RegionTable, NeighborsWithinRadius) {
  const auto table = RegionTable::grid({{0, 0}, {300, 300}}, 3, 3);
  const RegionId center = table.containing({150, 150});
  const auto neighbors = table.neighbors_of(center, 110.0);
  EXPECT_EQ(neighbors.size(), 4u);  // N/S/E/W cells at distance 100
}

TEST(RegionTable, NearestKOrderingAndPrefixConsistency) {
  const auto table = RegionTable::grid({{0, 0}, {1200, 1200}}, 3, 3);
  precinct::support::Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    const Point p{rng.uniform(0, 1200), rng.uniform(0, 1200)};
    const auto k4 = table.nearest_k(p, 4);
    ASSERT_EQ(k4.size(), 4u);
    // Sorted by distance.
    for (std::size_t j = 1; j < k4.size(); ++j) {
      EXPECT_LE(distance(table.find(k4[j - 1])->center, p),
                distance(table.find(k4[j])->center, p));
    }
    // Prefix-consistent with nearest / second_nearest.
    EXPECT_EQ(k4[0], table.nearest(p));
    EXPECT_EQ(k4[1], table.second_nearest(p));
    // No duplicates.
    std::set<RegionId> unique(k4.begin(), k4.end());
    EXPECT_EQ(unique.size(), k4.size());
  }
}

TEST(RegionTable, NearestKClampsToTableSize) {
  const auto table = RegionTable::grid({{0, 0}, {100, 100}}, 2, 1);
  EXPECT_EQ(table.nearest_k({50, 50}, 10).size(), 2u);
  EXPECT_TRUE(table.nearest_k({50, 50}, 0).empty());
}

TEST(GeoHash, KeyRegionsIncludesHomeFirst) {
  const GeoHash hash({{0, 0}, {1200, 1200}});
  const auto table = RegionTable::grid({{0, 0}, {1200, 1200}}, 3, 3);
  for (Key k = 1; k < 100; ++k) {
    const auto regions = hash.key_regions(k, table, 2);
    ASSERT_EQ(regions.size(), 3u);
    EXPECT_EQ(regions[0], hash.home_region(k, table));
    EXPECT_EQ(regions[1], hash.replica_region(k, table));
  }
}

TEST(GeoHash, DeterministicLocation) {
  const GeoHash hash({{0, 0}, {1200, 1200}});
  EXPECT_EQ(hash.location(42).x, hash.location(42).x);
  EXPECT_EQ(hash.location(42), hash.location(42));
}

TEST(GeoHash, LocationsInsideArea) {
  const GeoHash hash({{100, 200}, {500, 900}});
  for (Key k = 0; k < 2000; ++k) {
    const Point p = hash.location(k);
    EXPECT_GE(p.x, 100.0);
    EXPECT_LT(p.x, 500.0);
    EXPECT_GE(p.y, 200.0);
    EXPECT_LT(p.y, 900.0);
  }
}

TEST(GeoHash, LocationsSpreadUniformly) {
  // Chi-squared style sanity: each of the 9 grid cells gets roughly 1/9
  // of 9000 hashed keys.
  const GeoHash hash({{0, 0}, {1200, 1200}});
  const auto table = RegionTable::grid({{0, 0}, {1200, 1200}}, 3, 3);
  std::array<int, 9> counts{};
  for (Key k = 0; k < 9000; ++k) {
    counts[table.containing(hash.location(precinct::support::hash64(k)))]++;
  }
  for (int c : counts) EXPECT_NEAR(c, 1000, 150);
}

TEST(GeoHash, HomeAndReplicaDiffer) {
  const GeoHash hash({{0, 0}, {1200, 1200}});
  const auto table = RegionTable::grid({{0, 0}, {1200, 1200}}, 3, 3);
  for (Key k = 1; k < 500; ++k) {
    const RegionId home = hash.home_region(k, table);
    const RegionId replica = hash.replica_region(k, table);
    ASSERT_NE(home, kInvalidRegion);
    ASSERT_NE(replica, kInvalidRegion);
    EXPECT_NE(home, replica);
  }
}

TEST(GeoHash, HomeIsNearestCenter) {
  const GeoHash hash({{0, 0}, {1200, 1200}});
  const auto table = RegionTable::grid({{0, 0}, {1200, 1200}}, 3, 3);
  for (Key k = 1; k < 200; ++k) {
    const Point loc = hash.location(k);
    const RegionId home = hash.home_region(k, table);
    for (const Region& r : table.regions()) {
      EXPECT_LE(distance(table.find(home)->center, loc),
                distance(r.center, loc));
    }
  }
}

}  // namespace
