// World sharding (DESIGN.md §13): column ownership, the derived
// conservative lookahead, the shards-invariance contract with real radio
// traffic crossing the cut, the cross-domain conservation audit, and the
// one-window bound on halo staleness.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/world_scenario.hpp"
#include "geo/shard_partition.hpp"
#include "net/wireless_net.hpp"

namespace {

using namespace precinct;
using core::PrecinctConfig;

/// A small world whose traffic keeps straddling the cut: fast nodes,
/// short pauses, churn with graceful handoffs, and an update workload so
/// catalog-version deltas flow too.
PrecinctConfig world_config(std::uint32_t shards) {
  PrecinctConfig c;
  c.n_nodes = 36;
  c.area = {{0.0, 0.0}, {900.0, 900.0}};
  c.regions_x = c.regions_y = 3;
  c.v_max = 8.0;
  c.pause_s = 1.0;
  c.catalog.n_items = 300;
  c.mean_request_interval_s = 6.0;
  c.updates_enabled = true;
  c.consistency = consistency::Mode::kPushAdaptivePull;
  c.mean_update_interval_s = 15.0;
  c.crash_rate_per_s = 0.02;
  c.join_rate_per_s = 0.02;
  c.graceful_fraction = 1.0;
  c.warmup_s = 5.0;
  c.measure_s = 25.0;
  c.seed = 99;
  c.shards = shards;
  return c;
}

// ---- geo world helpers ------------------------------------------------------

TEST(WorldPartition, ColumnOwnershipClampsAtEdges) {
  // Columns of a 4-column world on [0, 800): 200 m each.
  EXPECT_EQ(geo::world_column_of(0.0, 0.0, 800.0, 4), 0u);
  EXPECT_EQ(geo::world_column_of(199.9, 0.0, 800.0, 4), 0u);
  EXPECT_EQ(geo::world_column_of(200.0, 0.0, 800.0, 4), 1u);
  EXPECT_EQ(geo::world_column_of(799.9, 0.0, 800.0, 4), 3u);
  // On (and numerically past) the plane boundary stays inside.
  EXPECT_EQ(geo::world_column_of(800.0, 0.0, 800.0, 4), 3u);
  EXPECT_EQ(geo::world_column_of(-0.5, 0.0, 800.0, 4), 0u);
}

TEST(WorldPartition, BoundaryColumnsAreTheOnesTouchingACut) {
  const std::vector<std::uint32_t> two_shards{0, 0, 1, 1};
  EXPECT_FALSE(geo::world_boundary_column(0, two_shards));
  EXPECT_TRUE(geo::world_boundary_column(1, two_shards));
  EXPECT_TRUE(geo::world_boundary_column(2, two_shards));
  EXPECT_FALSE(geo::world_boundary_column(3, two_shards));

  const std::vector<std::uint32_t> one_shard{0, 0, 0};
  for (std::uint32_t col = 0; col < 3; ++col) {
    EXPECT_FALSE(geo::world_boundary_column(col, one_shard));
  }
}

// ---- construction ----------------------------------------------------------

TEST(WorldScenario, LookaheadIsDerivedFromRadioTiming) {
  const PrecinctConfig c = world_config(2);
  core::WorldShardedScenario world(c);
  EXPECT_GT(world.lookahead_s(), 0.0);
  EXPECT_DOUBLE_EQ(world.lookahead_s(),
                   net::WirelessNet::world_lookahead(c.wireless));
  EXPECT_DOUBLE_EQ(world.lookahead_s(),
                   c.wireless.mac_overhead_s + c.wireless.propagation_s);
  // One domain per region column, each owning the nodes whose t=0
  // position falls in its strip.
  EXPECT_EQ(world.domain_count(), c.regions_x);
  EXPECT_EQ(world.owner().size(), c.n_nodes);
  for (const std::uint32_t d : world.owner()) EXPECT_LT(d, c.regions_x);
}

TEST(WorldScenario, RejectsTiledKnobsAndGlobalReconfiguration) {
  {
    PrecinctConfig c = world_config(2);
    c.tiles_x = c.tiles_y = 2;
    c.gateway_latency_s = 0.25;  // valid tiled config, wrong scenario type
    EXPECT_THROW(core::WorldShardedScenario{c}, std::invalid_argument);
  }
  {
    PrecinctConfig c = world_config(2);
    c.gateway_latency_s = 0.25;  // the lookahead is derived, not configured
    EXPECT_THROW(core::WorldShardedScenario{c}, std::invalid_argument);
  }
  {
    PrecinctConfig c = world_config(2);
    c.gateway_interval_s = 5.0;  // gateway traffic belongs to tiled worlds
    EXPECT_THROW(core::WorldShardedScenario{c}, std::invalid_argument);
  }
  {
    PrecinctConfig c = world_config(2);
    c.dynamic_regions = true;  // global region-table reconfiguration
    EXPECT_THROW(core::WorldShardedScenario{c}, std::invalid_argument);
  }
}

// ---- the shards-invariance contract ----------------------------------------

TEST(WorldShardedScenarioTest, FingerprintInvariantAcrossShardCounts) {
  const core::WorldShardedMetrics baseline =
      core::run_world_scenario(world_config(1));
  const std::string expected = core::world_fingerprint(baseline);

  // The run must be non-trivial: real protocol frames crossed the cut,
  // halo deltas flowed, custody moved, and requests completed.
  EXPECT_GT(baseline.frames_posted, 0u);
  EXPECT_GT(baseline.deltas_posted, 0u);
  EXPECT_GT(baseline.aggregate.requests_completed, 0u);
  EXPECT_GT(baseline.aggregate.custody_handoffs, 0u);

  for (const std::uint32_t k : {2u, 4u}) {
    const core::WorldShardedMetrics sharded =
        core::run_world_scenario(world_config(k));
    EXPECT_EQ(core::world_fingerprint(sharded), expected) << "shards=" << k;
  }
}

TEST(WorldShardedScenarioTest, CheckAllHoldsAndConservationAudits) {
  PrecinctConfig c = world_config(2);
  c.check = "all";
  c.check_stride = 1;
  // run() itself throws on a conservation violation; re-assert the
  // ledger here so the test reads as the contract.
  const core::WorldShardedMetrics m = core::run_world_scenario(c);
  EXPECT_EQ(m.frames_processed, m.frames_posted - m.frames_beyond_horizon);
  EXPECT_EQ(m.deltas_processed, m.deltas_posted - m.deltas_beyond_horizon);
  EXPECT_GT(m.windows, 0u);
}

TEST(WorldShardedScenarioTest, HaloLivenessStalenessIsBoundedByTheHorizon) {
  // Remote liveness is at most one window stale during the run and
  // exactly reconciled at every window boundary — so at the end of the
  // run the only admissible disagreements are deltas whose due fell
  // beyond the horizon (posted during the final window).
  core::WorldShardedScenario world(world_config(2));
  const core::WorldShardedMetrics m = world.run();

  std::uint64_t disagreements = 0;
  for (std::uint32_t d = 0; d < world.domain_count(); ++d) {
    const net::WirelessNet& view = world.domain(d).network();
    for (net::NodeId i = 0; i < world.owner().size(); ++i) {
      const net::WirelessNet& truth =
          world.domain(world.owner()[i]).network();
      if (view.is_alive(i) != truth.is_alive(i)) ++disagreements;
    }
  }
  EXPECT_LE(disagreements, m.deltas_beyond_horizon);
}

}  // namespace
