// Unit tests for support: RNG determinism and distributions, streaming
// statistics, thread pool, table formatting.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "support/json.hpp"
#include "support/kv_file.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace precinct::support;

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.bits(), b.bits());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.bits() == b.bits()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntRespectsBound) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values reachable
}

TEST(Rng, UniformMeanConverges) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, ExponentialMeanConverges) {
  Rng rng(13);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(30.0);
  EXPECT_NEAR(sum / kN, 30.0, 0.5);
}

TEST(Rng, ExponentialIsNonNegative) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.exponential(1.0), 0.0);
  }
}

TEST(Rng, SplitStreamsAreIndependent) {
  const Rng root(99);
  Rng a = root.split(1);
  Rng b = root.split(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.bits() == b.bits()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitSameIdSameStream) {
  const Rng root(99);
  Rng a = root.split(5);
  Rng b = root.split(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.bits(), b.bits());
}

TEST(Hash64, DifferentInputsDiffer) {
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 1000; ++i) outputs.insert(hash64(i));
  EXPECT_EQ(outputs.size(), 1000u);
}

TEST(Hash64, Deterministic) {
  EXPECT_EQ(hash64(12345), hash64(12345));
  EXPECT_EQ(hash_combine(1, 2), hash_combine(1, 2));
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 4.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 4.0);
  EXPECT_EQ(s.max(), 4.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, left, right;
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-10, 10);
    all.add(x);
    (i % 2 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(QuantileSampler, Quantiles) {
  QuantileSampler q;
  for (int i = 100; i >= 1; --i) q.add(i);
  EXPECT_DOUBLE_EQ(q.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(q.quantile(1.0), 100.0);
  EXPECT_NEAR(q.quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(q.quantile(0.9), 90.0, 1.0);
}

TEST(QuantileSampler, MergeCombinesSamples) {
  QuantileSampler a, b;
  for (int i = 1; i <= 50; ++i) a.add(i);
  (void)a.quantile(0.5);  // force a sort, then merge must re-sort
  for (int i = 51; i <= 100; ++i) b.add(i);
  a.merge(b);
  EXPECT_EQ(a.count(), 100u);
  EXPECT_NEAR(a.quantile(0.5), 50.0, 1.0);
  EXPECT_DOUBLE_EQ(a.quantile(1.0), 100.0);
}

TEST(QuantileSampler, EmptyReturnsZero) {
  QuantileSampler q;
  EXPECT_EQ(q.quantile(0.5), 0.0);
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&count] { ++count; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ParallelFor, CoversAllIndices) {
  std::vector<std::atomic<int>> hits(64);
  parallel_for(64, [&](std::size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroAndOne) {
  parallel_for(0, [](std::size_t) { FAIL(); });
  int calls = 0;
  parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, RethrowsFirstError) {
  EXPECT_THROW(
      parallel_for(16, [](std::size_t i) {
        if (i == 7) throw std::logic_error("x");
      }),
      std::logic_error);
}

TEST(ParallelFor, NestedCallsCompleteWithoutDeadlock) {
  // Outer points fan inner replications into the same global pool, the
  // run_sweep-over-run_seeds shape.  Inner calls run inline on their worker
  // (or caller) while idle workers steal shares, so every (i, j) pair must
  // execute exactly once and no thread may block forever.
  constexpr std::size_t kOuter = 8;
  constexpr std::size_t kInner = 16;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  parallel_for(kOuter, [&](std::size_t i) {
    parallel_for(kInner, [&, i](std::size_t j) { ++hits[i * kInner + j]; });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, NestedErrorPropagatesToOuterCaller) {
  EXPECT_THROW(parallel_for(4,
                            [](std::size_t i) {
                              parallel_for(4, [i](std::size_t j) {
                                if (i == 2 && j == 3) {
                                  throw std::runtime_error("inner");
                                }
                              });
                            }),
               std::runtime_error);
}

TEST(ParallelFor, ReusesGlobalPoolAcrossCalls) {
  // The process-wide pool persists between calls; repeated fan-outs must
  // not spawn threads per call or lose coverage.
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    parallel_for(32, [&](std::size_t) { ++count; });
    ASSERT_EQ(count.load(), 32);
  }
}

TEST(ThreadPool, InWorkerDetectsPoolThreads) {
  EXPECT_FALSE(ThreadPool::in_worker());
  auto fut = ThreadPool::global().submit(
      [] { EXPECT_TRUE(ThreadPool::in_worker()); });
  fut.get();
}

TEST(Table, FormatsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1.5"});
  t.add_row({"beta", "22.25"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22.25"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(KvFile, ParsesKeysCommentsAndWhitespace) {
  const auto kv = KvFile::parse(
      "# header comment\n"
      "  nodes = 80  \n"
      "policy= gd-ld # trailing comment\n"
      "\n"
      "cache =0.02\n");
  EXPECT_EQ(kv.size(), 3u);
  EXPECT_EQ(kv.get_string("policy", ""), "gd-ld");
  EXPECT_DOUBLE_EQ(kv.get_number("nodes", 0), 80.0);
  EXPECT_DOUBLE_EQ(kv.get_number("cache", 0), 0.02);
  EXPECT_FALSE(kv.has("missing"));
  EXPECT_EQ(kv.get_number("missing", 7.0), 7.0);
}

TEST(KvFile, LastDuplicateWins) {
  const auto kv = KvFile::parse("a = 1\na = 2\n");
  EXPECT_DOUBLE_EQ(kv.get_number("a", 0), 2.0);
}

TEST(KvFile, Booleans) {
  const auto kv = KvFile::parse("t1 = true\nt2 = yes\nf1 = 0\nf2 = off\n");
  EXPECT_TRUE(kv.get_bool("t1", false));
  EXPECT_TRUE(kv.get_bool("t2", false));
  EXPECT_FALSE(kv.get_bool("f1", true));
  EXPECT_FALSE(kv.get_bool("f2", true));
  EXPECT_TRUE(kv.get_bool("absent", true));
}

TEST(KvFile, MalformedInputThrows) {
  EXPECT_THROW(KvFile::parse("just-some-words\n"), std::invalid_argument);
  EXPECT_THROW(KvFile::parse("= value\n"), std::invalid_argument);
  const auto kv = KvFile::parse("n = abc\nb = perhaps\n");
  EXPECT_THROW((void)kv.get_number("n", 0), std::invalid_argument);
  EXPECT_THROW((void)kv.get_bool("b", false), std::invalid_argument);
}

TEST(KvFile, LoadMissingFileThrows) {
  EXPECT_THROW(KvFile::load("/nonexistent/path.conf"), std::runtime_error);
}

TEST(Sparkline, EmptyAndConstant) {
  EXPECT_EQ(sparkline({}), "");
  const std::string flat = sparkline({5.0, 5.0, 5.0});
  EXPECT_EQ(flat.size(), 3u);
  EXPECT_EQ(flat[0], flat[1]);
}

TEST(Sparkline, MonotoneRampUsesFullRange) {
  const std::string ramp = " .:-=+*#";
  const std::string s = sparkline({0, 1, 2, 3, 4, 5, 6, 7});
  EXPECT_EQ(s.size(), 8u);
  EXPECT_EQ(s.front(), ' ');
  EXPECT_EQ(s.back(), '#');
  // Levels (ramp indices) must be non-decreasing for a monotone series.
  for (std::size_t i = 1; i < s.size(); ++i) {
    EXPECT_LE(ramp.find(s[i - 1]), ramp.find(s[i]));
  }
}

TEST(Json, SerializesTypesAndEscapes) {
  JsonObject o;
  o.set("count", std::uint64_t{42})
      .set("ratio", 0.5)
      .set("name", std::string("a\"b"))
      .set("flag", true);
  const std::string flat = o.str();
  EXPECT_NE(flat.find("\"count\": 42"), std::string::npos);
  EXPECT_NE(flat.find("\"ratio\": 0.5"), std::string::npos);
  EXPECT_NE(flat.find("\\\""), std::string::npos);  // escaped quote
  EXPECT_NE(flat.find("\"flag\": true"), std::string::npos);
  EXPECT_EQ(flat.front(), '{');
  EXPECT_EQ(flat.back(), '}');
}

TEST(Json, NonFiniteBecomesNull) {
  JsonObject o;
  o.set("nan", std::nan(""));
  EXPECT_NE(o.str().find("\"nan\": null"), std::string::npos);
}

TEST(Json, PrettyUsesNewlines) {
  JsonObject o;
  o.set("a", std::uint64_t{1}).set("b", std::uint64_t{2});
  const std::string pretty = o.str(true);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
}

}  // namespace
