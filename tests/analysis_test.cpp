// Unit tests for the closed-form energy analysis (paper §5, Eqs. 6-13).
#include <gtest/gtest.h>

#include "analysis/consistency_analysis.hpp"
#include "analysis/energy_analysis.hpp"

namespace {

using namespace precinct::analysis;
using precinct::geo::Rect;

TEST(MeanDistance, SquareMatchesKnownConstant) {
  // E[dist] for a unit square is ~0.5214054 (Ghosh).
  const Rect unit{{0, 0}, {1, 1}};
  EXPECT_NEAR(mean_uniform_distance(unit), 0.5214054, 1e-6);
}

TEST(MeanDistance, ScalesLinearly) {
  const Rect small{{0, 0}, {1, 1}};
  const Rect big{{0, 0}, {600, 600}};
  EXPECT_NEAR(mean_uniform_distance(big),
              600.0 * mean_uniform_distance(small), 1e-6);
}

TEST(MeanDistance, RectangleSymmetricInAxes) {
  EXPECT_NEAR(mean_uniform_distance({{0, 0}, {300, 600}}),
              mean_uniform_distance({{0, 0}, {600, 300}}), 1e-9);
}

TEST(MeanDistance, DegenerateAreaIsZero) {
  EXPECT_DOUBLE_EQ(mean_uniform_distance({{0, 0}, {0, 100}}), 0.0);
}

TEST(ExpectedHops, ZeroWhenDestinationWithinRange) {
  // 600 m square, mean distance ~313 m; with 500 m range no intermediate.
  EXPECT_DOUBLE_EQ(
      expected_intermediate_hops({{0, 0}, {600, 600}}, 500.0), 0.0);
}

TEST(ExpectedHops, GrowsWithArea) {
  const double small = expected_intermediate_hops({{0, 0}, {600, 600}}, 250.0);
  const double big = expected_intermediate_hops({{0, 0}, {1200, 1200}}, 250.0);
  EXPECT_GT(big, small);
}

TEST(Energy, FloodingGrowsLinearlyWithNodes) {
  EnergyAnalysisParams p;
  p.n_nodes = 20;
  const double e20 = flooding_energy_per_request(p);
  p.n_nodes = 80;
  const double e80 = flooding_energy_per_request(p);
  // Broadcast term is N * (send + zeta(N) * recv): superlinear in N, so
  // 4x nodes cost more than 4x energy (zeta also grows).
  EXPECT_GT(e80, 4.0 * e20 * 0.99);
}

TEST(Energy, PrecinctBeatsFlooding) {
  EnergyAnalysisParams p;
  for (double n : {20.0, 40.0, 60.0, 80.0}) {
    p.n_nodes = n;
    EXPECT_LT(precinct_energy_per_request(p), flooding_energy_per_request(p))
        << "n = " << n;
  }
}

TEST(Energy, GapWidensWithNodeCount) {
  EnergyAnalysisParams p;
  p.n_nodes = 20;
  const double gap20 =
      flooding_energy_per_request(p) - precinct_energy_per_request(p);
  p.n_nodes = 80;
  const double gap80 =
      flooding_energy_per_request(p) - precinct_energy_per_request(p);
  EXPECT_GT(gap80, gap20);
}

TEST(Energy, PrecinctDecreasesWithMoreRegions) {
  // Paper Fig 9(b): more regions -> smaller floods -> less energy.
  EnergyAnalysisParams p;
  p.n_nodes = 20;
  double prev = 1e300;
  for (double regions : {1.0, 4.0, 9.0, 16.0, 25.0}) {
    p.n_regions = regions;
    const double e = precinct_energy_per_request(p);
    EXPECT_LE(e, prev) << regions << " regions";
    prev = e;
  }
}

TEST(Energy, BroadcastTotalUsesDensity) {
  EnergyAnalysisParams p;
  p.n_nodes = 80;
  p.area = {{0, 0}, {600, 600}};
  p.range_m = 250.0;
  const double zeta =
      precinct::energy::expected_receivers(80, 600.0 * 600.0, 250.0);
  EXPECT_NEAR(broadcast_total_energy(p, 64),
              p.model.broadcast_send(64) + zeta * p.model.broadcast_recv(64),
              1e-12);
}

TEST(Energy, FloodingMatchesEq11ByHand) {
  EnergyAnalysisParams p;
  p.n_nodes = 20;
  p.area = {{0, 0}, {600, 600}};
  const double bd = broadcast_total_energy(p, p.request_bytes);
  const double hops =
      expected_intermediate_hops(p.area, p.range_m) + 1.0;
  const double expected = p.n_nodes * bd +
                          hops * (p.model.p2p_send(p.response_bytes) +
                                  p.model.p2p_recv(p.response_bytes));
  EXPECT_NEAR(flooding_energy_per_request(p), expected, 1e-12);
}

TEST(ConsistencyAnalysis, SchemeOrdering) {
  ConsistencyAnalysisParams p;
  const auto load = consistency_messages_per_second(p);
  EXPECT_GT(load.plain_push, load.pull_every_time);
  EXPECT_GT(load.pull_every_time, load.push_adaptive_pull);
}

TEST(ConsistencyAnalysis, AllLoadsFallWithRarerUpdates) {
  ConsistencyAnalysisParams fast;
  ConsistencyAnalysisParams slow = fast;
  slow.update_rate_hz = fast.update_rate_hz / 5.0;
  const auto lf = consistency_messages_per_second(fast);
  const auto ls = consistency_messages_per_second(slow);
  EXPECT_LT(ls.plain_push, lf.plain_push);
  EXPECT_LT(ls.pull_every_time, lf.pull_every_time);
  EXPECT_LT(ls.push_adaptive_pull, lf.push_adaptive_pull);
}

TEST(ConsistencyAnalysis, AdaptiveGapGrowsWithFreshTtrs) {
  // When more copies are within TTR (fewer expired), adaptive saves more
  // relative to pull-every-time.
  ConsistencyAnalysisParams mostly_expired;
  mostly_expired.ttr_expired_fraction = 0.9;
  ConsistencyAnalysisParams mostly_fresh = mostly_expired;
  mostly_fresh.ttr_expired_fraction = 0.2;
  const auto le = consistency_messages_per_second(mostly_expired);
  const auto lfr = consistency_messages_per_second(mostly_fresh);
  EXPECT_GT(le.push_adaptive_pull, lfr.push_adaptive_pull);
  EXPECT_DOUBLE_EQ(le.pull_every_time, lfr.pull_every_time);
}

TEST(ConsistencyAnalysis, PushCostScalesWithRegionPopulation) {
  ConsistencyAnalysisParams sparse;
  sparse.n_regions = 16;
  ConsistencyAnalysisParams dense = sparse;
  dense.n_regions = 4;
  EXPECT_GT(push_cost_msgs(dense), push_cost_msgs(sparse));
}

TEST(ConsistencyAnalysis, PlainPushScalesQuadraticallyWithNodes) {
  // updates/s ~ N and flood cost ~ N => N^2.
  ConsistencyAnalysisParams small;
  small.n_nodes = 40;
  ConsistencyAnalysisParams big = small;
  big.n_nodes = 80;
  const auto ls = consistency_messages_per_second(small);
  const auto lb = consistency_messages_per_second(big);
  EXPECT_NEAR(lb.plain_push / ls.plain_push, 4.0, 1e-9);
}

}  // namespace
