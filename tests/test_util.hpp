// Shared test scaffolding: the deterministic 3x3 grid harness and the
// small scenario builders that were previously duplicated across
// engine_test.cpp, modules_test.cpp, channel_test.cpp and
// integration_test.cpp.
#pragma once

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "core/scenario.hpp"
#include "mobility/static_placement.hpp"
#include "net/wireless_net.hpp"
#include "sim/simulator.hpp"

namespace precinct::test_util {

/// Base config for the deterministic 3x3 topology: 9 static peers, one
/// per region of a 600x600 m grid, no background workload, fixed-size
/// items so cache capacities are exact.
inline core::PrecinctConfig grid_config() {
  core::PrecinctConfig c;
  c.area = {{0, 0}, {600, 600}};
  c.n_nodes = 9;
  c.mobile = false;
  c.mobility_model = "static";
  c.mean_request_interval_s = 1e12;  // no background workload
  c.updates_enabled = false;
  c.catalog.n_items = 40;
  c.catalog.min_item_bytes = 1000;
  c.catalog.max_item_bytes = 1000;
  c.cache_fraction = 0.1;  // 4 items per peer
  c.seed = 5;
  return c;
}

/// One peer at each region center: node i in region i, links only
/// between 4-adjacent centers (200 m apart, range 250 m).
inline std::vector<geo::Point> grid_positions() {
  std::vector<geo::Point> pts;
  for (int iy = 0; iy < 3; ++iy) {
    for (int ix = 0; ix < 3; ++ix) {
      pts.push_back({100.0 + 200.0 * ix, 100.0 + 200.0 * iy});
    }
  }
  return pts;
}

/// Small mobile scenario for integration-level assertions (the paper's
/// qualitative shapes at a scale that runs in seconds).
inline core::PrecinctConfig small_mobile(std::uint64_t seed = 3) {
  core::PrecinctConfig c;
  c.n_nodes = 60;
  c.warmup_s = 100;
  c.measure_s = 400;
  c.seed = seed;
  return c;
}

/// Mid-size scenario for channel-level behaviour tests.
inline core::PrecinctConfig small_scenario() {
  core::PrecinctConfig c;
  c.n_nodes = 40;
  c.area = {{0.0, 0.0}, {800.0, 800.0}};
  c.mean_request_interval_s = 10.0;
  c.catalog.n_items = 200;
  c.warmup_s = 20.0;
  c.measure_s = 60.0;
  c.seed = 91;
  return c;
}

/// Merge `seeds` independent replications of `c`.
inline core::Metrics run_avg(core::PrecinctConfig c, std::size_t seeds = 3) {
  return core::merge_metrics(core::run_seeds(std::move(c), seeds));
}

/// The deterministic 3x3 harness: grid_config() peers at grid_positions().
/// Constructed started by default; pass start = false to assert on engine
/// construction itself (e.g. unknown scheme names) via build().
class GridHarness {
 public:
  explicit GridHarness(core::PrecinctConfig cfg = grid_config(),
                       bool start = true)
      : config(std::move(cfg)),
        catalog(config.catalog, support::hash_combine(config.seed, 0xCA7A)),
        placement(grid_positions()),
        net(sim, placement, config.wireless, config.energy_model, 1) {
    if (start) build();
  }

  /// Construct + initialize + start_measurement (throws on bad configs).
  core::PrecinctEngine& build() {
    engine_ = std::make_unique<core::PrecinctEngine>(
        config, sim, net, geo::RegionTable::grid(config.area, 3, 3), catalog);
    engine_->initialize();
    engine_->start_measurement();
    return *engine_;
  }

  [[nodiscard]] core::PrecinctEngine& engine() { return *engine_; }
  [[nodiscard]] const core::PrecinctEngine& engine() const { return *engine_; }

  /// First catalog key whose home region is `region` (and, optionally,
  /// whose replica region is `replica`).
  [[nodiscard]] std::optional<geo::Key> key_with_home(
      geo::RegionId region,
      std::optional<geo::RegionId> replica = std::nullopt) const {
    for (std::size_t i = 0; i < catalog.size(); ++i) {
      const geo::Key k = catalog.key_of(i);
      if (engine().geo_hash().home_region(k, engine().region_table()) !=
          region) {
        continue;
      }
      if (replica.has_value() &&
          engine().geo_hash().replica_region(k, engine().region_table()) !=
              *replica) {
        continue;
      }
      return k;
    }
    return std::nullopt;
  }

  [[nodiscard]] net::NodeId custodian_of(geo::Key key) const {
    const geo::RegionId home =
        engine().geo_hash().home_region(key, engine().region_table());
    for (net::NodeId i = 0; i < 9; ++i) {
      if (engine().cache_of(i).find_static(key) != nullptr &&
          engine().region_of(i) == home) {
        return i;
      }
    }
    return net::kNoNode;
  }

  void settle(double seconds = 6.0) { sim.run_until(sim.now() + seconds); }

  core::PrecinctConfig config;
  workload::DataCatalog catalog;
  mobility::StaticPlacement placement;
  sim::Simulator sim;
  net::WirelessNet net;

 private:
  std::unique_ptr<core::PrecinctEngine> engine_;
};

}  // namespace precinct::test_util
