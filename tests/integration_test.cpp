// Integration tests: full scenarios asserting the paper's qualitative
// results hold — the same shapes the benches regenerate, at smaller
// scale so they run in seconds.
#include <gtest/gtest.h>

#include "analysis/energy_analysis.hpp"
#include <map>

#include "core/scenario.hpp"
#include "test_util.hpp"

namespace {

using namespace precinct;
using core::Metrics;
using core::PrecinctConfig;

TEST(Integration, HighSuccessRatioUnderMobility) {
  const auto m = test_util::run_avg(test_util::small_mobile());
  EXPECT_GT(m.success_ratio(), 0.93);
  EXPECT_GT(m.requests_issued, 500u);
}

TEST(Integration, CacheImprovesLatencyAndTraffic) {
  auto with = test_util::small_mobile();
  with.mean_request_interval_s = 10.0;  // enough traffic for hits to pay off
  with.cache_fraction = 0.03;
  auto without = with;
  without.cache_fraction = 0.0;
  const auto mw = test_util::run_avg(with);
  const auto mo = test_util::run_avg(without);
  EXPECT_LT(mw.avg_latency_s(), mo.avg_latency_s());
  EXPECT_GT(mw.byte_hit_ratio(), mo.byte_hit_ratio());
}

TEST(Integration, ByteHitRatioGrowsWithCacheSize) {
  double prev = -1.0;
  for (const double frac : {0.005, 0.015, 0.025}) {
    auto c = test_util::small_mobile();
    c.mean_request_interval_s = 10.0;  // enough distinct items to contend
    c.cache_fraction = frac;
    const auto m = test_util::run_avg(c);
    EXPECT_GT(m.byte_hit_ratio(), prev) << "fraction " << frac;
    prev = m.byte_hit_ratio();
  }
}

TEST(Integration, GdLdBeatsGdSizeOnByteHitRatio) {
  // The paper's Fig 5 headline at one operating point.
  auto gdld = test_util::small_mobile();
  gdld.mean_request_interval_s = 10.0;  // cache must be contended
  gdld.cache_policy = "gd-ld";
  gdld.cache_fraction = 0.015;
  auto gdsize = gdld;
  gdsize.cache_policy = "gd-size";
  const auto m1 = test_util::run_avg(gdld, 4);
  const auto m2 = test_util::run_avg(gdsize, 4);
  EXPECT_GT(m1.byte_hit_ratio(), m2.byte_hit_ratio());
}

TEST(Integration, PrecinctUsesLessEnergyThanFlooding) {
  // Paper Fig 9(a)'s qualitative claim, static topology, no caching.
  PrecinctConfig c;
  c.area = {{0, 0}, {600, 600}};
  c.mobile = false;
  c.n_nodes = 40;
  c.cache_fraction = 0.0;
  c.warmup_s = 50;
  c.measure_s = 300;
  c.catalog.min_item_bytes = 64;
  c.catalog.max_item_bytes = 64;
  auto flood = c;
  flood.retrieval = core::RetrievalKind::kFlooding;
  const auto mp = test_util::run_avg(c);
  const auto mf = test_util::run_avg(flood);
  ASSERT_GT(mp.requests_completed, 100u);
  ASSERT_GT(mf.requests_completed, 100u);
  EXPECT_LT(mp.energy_per_request_mj(), mf.energy_per_request_mj());
}

TEST(Integration, ExpandingRingCheaperThanFloodingSlowerThanPrecinct) {
  PrecinctConfig c;
  c.area = {{0, 0}, {600, 600}};
  c.mobile = false;
  c.n_nodes = 40;
  c.cache_fraction = 0.0;
  c.warmup_s = 50;
  c.measure_s = 300;
  c.catalog.min_item_bytes = 64;
  c.catalog.max_item_bytes = 64;
  auto ring = c;
  ring.retrieval = core::RetrievalKind::kExpandingRing;
  auto flood = c;
  flood.retrieval = core::RetrievalKind::kFlooding;
  const auto mr = test_util::run_avg(ring);
  const auto mf = test_util::run_avg(flood);
  EXPECT_LT(mr.energy_per_request_mj(), mf.energy_per_request_mj());
  EXPECT_GT(mr.avg_latency_s(), mf.avg_latency_s());  // ring retries cost time
}

TEST(Integration, ConsistencyOverheadOrdering) {
  // Paper Fig 6: Plain-Push >> Pull-Every-time > Push-with-Adaptive-Pull.
  auto base = test_util::small_mobile();
  base.updates_enabled = true;
  base.mean_update_interval_s = 60.0;  // Tupdate/Trequest = 2
  std::map<consistency::Mode, std::uint64_t> overhead;
  for (const auto mode :
       {consistency::Mode::kPlainPush, consistency::Mode::kPullEveryTime,
        consistency::Mode::kPushAdaptivePull}) {
    auto c = base;
    c.consistency = mode;
    overhead[mode] = test_util::run_avg(c).consistency_messages;
  }
  EXPECT_GT(overhead[consistency::Mode::kPlainPush],
            overhead[consistency::Mode::kPullEveryTime]);
  EXPECT_GT(overhead[consistency::Mode::kPullEveryTime],
            overhead[consistency::Mode::kPushAdaptivePull]);
}

TEST(Integration, AdaptivePullHasHighestButSmallFalseHitRatio) {
  // Paper Fig 7: FHR(adaptive) >= FHR(others), and small (<~2 %).
  auto base = test_util::small_mobile();
  base.updates_enabled = true;
  base.mean_update_interval_s = 30.0;  // highest update rate
  std::map<consistency::Mode, double> fhr;
  for (const auto mode :
       {consistency::Mode::kPlainPush, consistency::Mode::kPullEveryTime,
        consistency::Mode::kPushAdaptivePull}) {
    auto c = base;
    c.consistency = mode;
    fhr[mode] = test_util::run_avg(c, 4).false_hit_ratio();
  }
  EXPECT_GE(fhr[consistency::Mode::kPushAdaptivePull],
            fhr[consistency::Mode::kPullEveryTime]);
  EXPECT_LT(fhr[consistency::Mode::kPushAdaptivePull], 0.05);
  EXPECT_LT(fhr[consistency::Mode::kPullEveryTime], 0.03);
}

TEST(Integration, PullEveryTimeHasHighestLatency) {
  // Paper Fig 8.  A faster request rate raises the cached-serve share,
  // which is where Pull-Every-time pays its validation round trip.
  auto base = test_util::small_mobile();
  base.mean_request_interval_s = 10.0;
  base.cache_fraction = 0.03;
  base.updates_enabled = true;
  base.mean_update_interval_s = 30.0;
  std::map<consistency::Mode, double> latency;
  for (const auto mode :
       {consistency::Mode::kPlainPush, consistency::Mode::kPullEveryTime,
        consistency::Mode::kPushAdaptivePull}) {
    auto c = base;
    c.consistency = mode;
    latency[mode] = test_util::run_avg(c, 4).avg_latency_s();
  }
  EXPECT_GT(latency[consistency::Mode::kPullEveryTime],
            latency[consistency::Mode::kPushAdaptivePull]);
  EXPECT_GT(latency[consistency::Mode::kPullEveryTime],
            latency[consistency::Mode::kPlainPush]);
}

TEST(Integration, SimulationTracksTheoryForPrecinctEnergy) {
  // Paper Fig 9 validation: simulated energy/request within a factor of
  // ~2.5 of the closed-form model (the paper itself reports divergence
  // from edge effects).
  PrecinctConfig c;
  c.area = {{0, 0}, {600, 600}};
  c.mobile = false;
  c.n_nodes = 40;
  c.cache_fraction = 0.0;
  c.warmup_s = 50;
  c.measure_s = 400;
  c.catalog.min_item_bytes = 64;
  c.catalog.max_item_bytes = 64;
  const auto m = test_util::run_avg(c);
  analysis::EnergyAnalysisParams p;
  p.n_nodes = 40;
  p.area = c.area;
  p.request_bytes = 64;
  p.response_bytes = 64 + 64;
  const double theory = analysis::precinct_energy_per_request(p);
  const double sim = m.energy_per_request_mj();
  EXPECT_GT(sim, theory / 2.5);
  EXPECT_LT(sim, theory * 2.5);
}

TEST(Integration, ChurnSteadyStateStaysAvailable) {
  auto c = test_util::small_mobile();
  c.crash_rate_per_s = 0.05;
  c.join_rate_per_s = 0.05;  // crashes balanced by rejoins
  c.graceful_fraction = 0.3;
  const auto m = test_util::run_avg(c);
  EXPECT_GT(m.success_ratio(), 0.85);
  EXPECT_GT(m.requests_completed, 300u);
}

TEST(Integration, SurvivesContinuousCrashes) {
  auto c = test_util::small_mobile();
  c.crash_rate_per_s = 0.02;  // one crash every ~50 s
  c.graceful_fraction = 0.5;
  const auto m = test_util::run_avg(c);
  EXPECT_GT(m.success_ratio(), 0.8);
  EXPECT_GT(m.requests_completed, 200u);
}

TEST(Integration, ReplicationImprovesAvailabilityUnderCrashes) {
  auto with = test_util::small_mobile();
  with.crash_rate_per_s = 0.05;
  with.graceful_fraction = 0.0;  // sudden deaths only
  auto without = with;
  without.replica_count = 0;
  const auto mw = test_util::run_avg(with, 4);
  const auto mo = test_util::run_avg(without, 4);
  EXPECT_GT(mw.success_ratio(), mo.success_ratio());
}

TEST(Integration, MoreRegionsReduceEnergyPerRequest) {
  // Paper Fig 9(b) shape at two region counts.
  PrecinctConfig c;
  c.area = {{0, 0}, {600, 600}};
  c.mobile = false;
  c.n_nodes = 30;
  c.cache_fraction = 0.0;
  c.warmup_s = 50;
  c.measure_s = 300;
  c.catalog.min_item_bytes = 64;
  c.catalog.max_item_bytes = 64;
  auto few = c;
  few.regions_x = few.regions_y = 1;
  few.replica_count = 0;  // a single region cannot host a replica
  auto many = c;
  many.regions_x = many.regions_y = 4;
  const auto mf = test_util::run_avg(few);
  const auto mm = test_util::run_avg(many);
  EXPECT_LT(mm.energy_per_request_mj(), mf.energy_per_request_mj());
}

// Parameterized invariant sweep: across seeds and configurations, the
// accounting identities that must always hold.
struct InvariantCase {
  const char* name;
  PrecinctConfig config;
};

class ScenarioInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScenarioInvariants, AccountingIdentitiesHold) {
  std::vector<PrecinctConfig> cases;
  {
    PrecinctConfig c = test_util::small_mobile(GetParam());
    cases.push_back(c);
    c.updates_enabled = true;
    c.consistency = consistency::Mode::kPushAdaptivePull;
    cases.push_back(c);
    PrecinctConfig f = test_util::small_mobile(GetParam());
    f.retrieval = core::RetrievalKind::kFlooding;
    f.measure_s = 200;
    cases.push_back(f);
    PrecinctConfig d = test_util::small_mobile(GetParam());
    d.dynamic_regions = true;
    d.crash_rate_per_s = 0.01;
    d.graceful_fraction = 0.5;
    d.measure_s = 200;
    cases.push_back(d);
  }
  for (const auto& c : cases) {
    const Metrics m = core::run_scenario(c);
    // Completion accounting: every issued request resolves exactly once.
    EXPECT_EQ(m.requests_completed + m.requests_failed, m.requests_issued);
    // Hit classes partition the completions.
    EXPECT_EQ(m.own_cache_hits + m.regional_hits + m.en_route_hits +
                  m.home_region_hits + m.replica_hits,
              m.requests_completed);
    // Latency samples exist for every completion.
    EXPECT_EQ(m.latency_s.count(), m.requests_completed);
    EXPECT_GE(m.latency_s.min(), 0.0);
    // Byte accounting is bounded by what was requested.
    EXPECT_LE(m.bytes_hit, m.bytes_requested);
    // Stale serves never exceed serves.
    EXPECT_LE(m.false_hits, m.cache_served_valid);
    // Physics: traffic costs energy; no traffic costs none.
    if (m.messages_sent > 0) {
      EXPECT_GT(m.energy_total_mj, 0.0);
    }
    EXPECT_GE(m.energy_total_mj, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, ScenarioInvariants,
                         ::testing::Values(101, 202, 303, 404, 505));

// The per-node neighbor cache (DESIGN.md, "Cached neighborhoods") is a pure
// memoization: flipping it on or off must not change a single metric of a
// fixed-seed run.  Guards against the cache ever observing stale topology.
TEST(Integration, NeighborCacheDoesNotChangeResults) {
  auto cfg = test_util::small_mobile(424242);
  cfg.n_nodes = 40;
  cfg.warmup_s = 50;
  cfg.measure_s = 200;

  auto cached = cfg;
  cached.wireless.neighbor_cache = true;
  auto uncached = cfg;
  uncached.wireless.neighbor_cache = false;

  const Metrics a = core::merge_metrics(core::run_seeds(cached, 2));
  const Metrics b = core::merge_metrics(core::run_seeds(uncached, 2));

  EXPECT_EQ(a.requests_issued, b.requests_issued);
  EXPECT_EQ(a.requests_completed, b.requests_completed);
  EXPECT_EQ(a.requests_failed, b.requests_failed);
  EXPECT_EQ(a.own_cache_hits, b.own_cache_hits);
  EXPECT_EQ(a.regional_hits, b.regional_hits);
  EXPECT_EQ(a.en_route_hits, b.en_route_hits);
  EXPECT_EQ(a.home_region_hits, b.home_region_hits);
  EXPECT_EQ(a.replica_hits, b.replica_hits);
  EXPECT_EQ(a.latency_s.count(), b.latency_s.count());
  EXPECT_EQ(a.latency_s.sum(), b.latency_s.sum());
  EXPECT_EQ(a.latency_s.min(), b.latency_s.min());
  EXPECT_EQ(a.latency_s.max(), b.latency_s.max());
  EXPECT_EQ(a.bytes_requested, b.bytes_requested);
  EXPECT_EQ(a.bytes_hit, b.bytes_hit);
  EXPECT_EQ(a.energy_total_mj, b.energy_total_mj);
  EXPECT_EQ(a.energy_broadcast_mj, b.energy_broadcast_mj);
  EXPECT_EQ(a.energy_p2p_mj, b.energy_p2p_mj);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.bytes_sent, b.bytes_sent);
  EXPECT_EQ(a.consistency_messages, b.consistency_messages);
  EXPECT_EQ(a.frames_lost, b.frames_lost);
  EXPECT_EQ(a.events_executed, b.events_executed);
}

}  // namespace
