// Unit tests for the TTR estimator (paper Eq. 2) and mode parsing.
#include <gtest/gtest.h>

#include "consistency/modes.hpp"
#include "consistency/ttr.hpp"

namespace {

using namespace precinct::consistency;

TEST(Ttr, RejectsBadArguments) {
  EXPECT_THROW(TtrEstimator(-0.1, 30.0), std::invalid_argument);
  EXPECT_THROW(TtrEstimator(1.1, 30.0), std::invalid_argument);
  EXPECT_THROW(TtrEstimator(0.5, -1.0), std::invalid_argument);
}

TEST(Ttr, InitialValueBeforeUpdates) {
  const TtrEstimator ttr(0.5, 30.0);
  EXPECT_DOUBLE_EQ(ttr.ttr_s(), 30.0);
  EXPECT_DOUBLE_EQ(ttr.expiry_for(10.0), 40.0);
  EXPECT_EQ(ttr.updates_seen(), 0u);
}

TEST(Ttr, FirstUpdateOnlyAnchorsClock) {
  TtrEstimator ttr(0.5, 30.0);
  ttr.on_update(100.0);
  EXPECT_DOUBLE_EQ(ttr.ttr_s(), 30.0);  // no gap observed yet
  EXPECT_EQ(ttr.updates_seen(), 1u);
}

TEST(Ttr, EwmaMatchesEquation2) {
  TtrEstimator ttr(0.5, 30.0);
  ttr.on_update(0.0);
  ttr.on_update(10.0);  // gap 10: TTR = 0.5*30 + 0.5*10 = 20
  EXPECT_DOUBLE_EQ(ttr.ttr_s(), 20.0);
  ttr.on_update(14.0);  // gap 4: TTR = 0.5*20 + 0.5*4 = 12
  EXPECT_DOUBLE_EQ(ttr.ttr_s(), 12.0);
}

TEST(Ttr, AlphaOneFreezesEstimate) {
  TtrEstimator ttr(1.0, 25.0);
  ttr.on_update(0.0);
  ttr.on_update(100.0);
  EXPECT_DOUBLE_EQ(ttr.ttr_s(), 25.0);
}

TEST(Ttr, AlphaZeroTracksLastGap) {
  TtrEstimator ttr(0.0, 25.0);
  ttr.on_update(0.0);
  ttr.on_update(7.0);
  EXPECT_DOUBLE_EQ(ttr.ttr_s(), 7.0);
  ttr.on_update(20.0);
  EXPECT_DOUBLE_EQ(ttr.ttr_s(), 13.0);
}

TEST(Ttr, FrequentUpdatesShrinkTtr) {
  TtrEstimator fast(0.5, 30.0);
  TtrEstimator slow(0.5, 30.0);
  double t = 0.0;
  for (int i = 0; i < 20; ++i) fast.on_update(t += 2.0);
  t = 0.0;
  for (int i = 0; i < 20; ++i) slow.on_update(t += 80.0);
  EXPECT_LT(fast.ttr_s(), slow.ttr_s());
  EXPECT_NEAR(fast.ttr_s(), 2.0, 0.1);   // converges to the update gap
  EXPECT_NEAR(slow.ttr_s(), 80.0, 0.1);
}

TEST(Ttr, NegativeGapIgnored) {
  TtrEstimator ttr(0.5, 30.0);
  ttr.on_update(10.0);
  ttr.on_update(5.0);  // out-of-order clock: ignored
  EXPECT_DOUBLE_EQ(ttr.ttr_s(), 30.0);
}

TEST(Modes, RoundTripStrings) {
  for (const Mode m : {Mode::kNone, Mode::kPlainPush, Mode::kPullEveryTime,
                       Mode::kPushAdaptivePull}) {
    EXPECT_EQ(mode_from_string(to_string(m)), m);
  }
}

TEST(Modes, UnknownNameThrows) {
  EXPECT_THROW((void)mode_from_string("gossip"), std::invalid_argument);
}

}  // namespace
