// Unit tests for routing: GPSR greedy/perimeter behavior, Gabriel
// planarization, flood dedup, expanding-ring TTL schedule.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "mobility/static_placement.hpp"
#include "net/wireless_net.hpp"
#include "routing/expanding_ring.hpp"
#include "routing/flood.hpp"
#include "routing/gpsr.hpp"
#include "routing/neighbor_provider.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace precinct;
using geo::Point;
using net::NodeId;

struct RoutingHarness {
  explicit RoutingHarness(std::vector<Point> positions)
      : placement(std::move(positions)),
        net(sim, placement, config(), energy::FeeneyModel{}, 1),
        gpsr(net) {}

  static net::WirelessConfig config() {
    net::WirelessConfig c;
    c.range_m = 250.0;
    c.jitter_s = 0.0;
    return c;
  }

  /// Walk a packet from `from` toward `dest`; returns the node ids
  /// visited (including start), stopping on arrival within `arrive_m` of
  /// dest, a drop, or `max_hops`.
  std::vector<NodeId> walk(NodeId from, Point dest, int max_hops = 64,
                           double arrive_m = 10.0) {
    net::Packet p;
    p.dest_location = dest;
    p.ttl = max_hops;
    p.src = net::kNoNode;
    std::vector<NodeId> visited{from};
    NodeId self = from;
    for (int i = 0; i < max_hops; ++i) {
      if (geo::distance(net.position(self), dest) <= arrive_m) break;
      const auto next = gpsr.next_hop(self, p);
      if (!next.has_value()) break;
      p.src = self;
      p.hops += 1;
      self = *next;
      visited.push_back(self);
    }
    return visited;
  }

  sim::Simulator sim;
  mobility::StaticPlacement placement;
  net::WirelessNet net;
  routing::Gpsr gpsr;
};

TEST(Gpsr, GreedyPicksClosestProgressingNeighbor) {
  // Chain 0-(200)-1-(200)-2; destination beyond node 2.
  RoutingHarness h({{0, 0}, {200, 0}, {400, 0}});
  const auto hop = h.gpsr.greedy_next_hop(0, {600, 0});
  ASSERT_TRUE(hop.has_value());
  EXPECT_EQ(*hop, 1u);
}

TEST(Gpsr, GreedyFailsAtLocalMinimum) {
  // Node 0's only neighbor is farther from the destination than itself.
  RoutingHarness h({{0, 0}, {-200, 0}});
  EXPECT_FALSE(h.gpsr.greedy_next_hop(0, {300, 0}).has_value());
}

TEST(Gpsr, GreedyChainReachesDestination) {
  RoutingHarness h({{0, 0}, {200, 0}, {400, 0}, {600, 0}, {800, 0}});
  const auto path = h.walk(0, {800, 0});
  EXPECT_EQ(path.back(), 4u);
  EXPECT_EQ(path, (std::vector<NodeId>{0, 1, 2, 3, 4}));
}

TEST(Gpsr, PerimeterRoutesAroundVoid) {
  // A "U" void: direct line 0 -> dest is empty; the detour goes south.
  // 0 at origin, destination to the east, a wall of missing nodes in
  // between, and a chain of nodes curving below.
  RoutingHarness h({
      {0, 0},       // 0 source
      {150, -150},  // 1 detour
      {350, -200},  // 2 detour
      {550, -150},  // 3 detour
      {700, 0},     // 4 destination-adjacent
  });
  const auto path = h.walk(0, {700, 0});
  EXPECT_EQ(path.back(), 4u) << "perimeter mode should find the detour";
}

TEST(Gpsr, DropsWhenDestinationUnreachable) {
  // Two disconnected components.
  RoutingHarness h({{0, 0}, {150, 0}, {1000, 1000}});
  const auto path = h.walk(0, {1000, 1000});
  EXPECT_NE(path.back(), 2u);
  EXPECT_LE(path.size(), 10u);  // gives up quickly, no infinite loop
}

TEST(Gpsr, PlanarNeighborsSubsetOfNeighbors) {
  RoutingHarness h({{0, 0},
                    {100, 0},
                    {50, 80},
                    {200, 40},
                    {120, 160},
                    {30, 210}});
  for (NodeId n = 0; n < 6; ++n) {
    const auto all = h.net.neighbors(n);
    for (const NodeId v : h.gpsr.planar_neighbors(n)) {
      EXPECT_NE(std::find(all.begin(), all.end(), v), all.end());
    }
  }
}

TEST(Gpsr, GabrielEdgeEliminatedByWitness) {
  // w sits inside the circle with diameter (u, v): edge u-v must go.
  RoutingHarness h({{0, 0}, {200, 0}, {100, 10}});
  const auto planar0 = h.gpsr.planar_neighbors(0);
  EXPECT_EQ(std::find(planar0.begin(), planar0.end(), 1u), planar0.end());
  // But both keep the witness as a planar neighbor.
  EXPECT_NE(std::find(planar0.begin(), planar0.end(), 2u), planar0.end());
}

TEST(Gpsr, GabrielKeepsEdgeWithoutWitness) {
  RoutingHarness h({{0, 0}, {200, 0}, {100, 180}});  // witness outside circle
  const auto planar0 = h.gpsr.planar_neighbors(0);
  EXPECT_NE(std::find(planar0.begin(), planar0.end(), 1u), planar0.end());
}

TEST(Gpsr, PlanarGraphStaysConnectedOnRandomTopologies) {
  // Gabriel planarization of a connected unit-disk graph is connected:
  // verify on seeded random layouts by BFS over planar edges.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto placement = mobility::StaticPlacement::uniform(
        40, {{0, 0}, {800, 800}}, seed);
    sim::Simulator sim;
    net::WirelessNet net(sim, placement, RoutingHarness::config(),
                         energy::FeeneyModel{}, 1);
    routing::Gpsr gpsr(net);
    // BFS over the full graph to find the component of node 0.
    auto bfs = [&](auto neighbor_fn) {
      std::set<NodeId> seen{0};
      std::vector<NodeId> queue{0};
      while (!queue.empty()) {
        const NodeId u = queue.back();
        queue.pop_back();
        for (const NodeId v : neighbor_fn(u)) {
          if (seen.insert(v).second) queue.push_back(v);
        }
      }
      return seen;
    };
    const auto full = bfs([&](NodeId u) { return net.neighbors(u); });
    const auto planar = bfs([&](NodeId u) { return gpsr.planar_neighbors(u); });
    EXPECT_EQ(full, planar) << "seed " << seed;
  }
}

TEST(Gpsr, DeliversOnRandomConnectedTopologies) {
  // Property test: on dense random layouts, GPSR (greedy + perimeter)
  // delivers to the node nearest a random destination in one component.
  int attempts = 0;
  int delivered = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RoutingHarness h([&] {
      auto sp = mobility::StaticPlacement::uniform(60, {{0, 0}, {900, 900}},
                                                   seed * 17);
      std::vector<Point> pts;
      for (std::size_t i = 0; i < sp.node_count(); ++i) {
        pts.push_back(sp.position_at(i, 0));
      }
      return pts;
    }());
    support::Rng rng(seed);
    for (int trial = 0; trial < 5; ++trial) {
      const NodeId src = static_cast<NodeId>(rng.uniform_int(60));
      const NodeId dst = static_cast<NodeId>(rng.uniform_int(60));
      if (src == dst) continue;
      // Only count pairs in the same component (flood reachability).
      std::set<NodeId> seen{src};
      std::vector<NodeId> queue{src};
      while (!queue.empty()) {
        const NodeId u = queue.back();
        queue.pop_back();
        for (const NodeId v : h.net.neighbors(u)) {
          if (seen.insert(v).second) queue.push_back(v);
        }
      }
      if (!seen.count(dst)) continue;
      ++attempts;
      const auto path = h.walk(src, h.net.position(dst), 128, 1.0);
      if (path.back() == dst) ++delivered;
    }
  }
  ASSERT_GT(attempts, 10);
  // Perimeter recovery is simplified; expect >= 90 % delivery.
  EXPECT_GE(static_cast<double>(delivered) / attempts, 0.9);
}

TEST(BeaconProvider, TablesFillAndExpire) {
  mobility::StaticPlacement placement({{0, 0}, {100, 0}, {1000, 1000}});
  sim::Simulator sim;
  net::WirelessNet net(sim, placement, RoutingHarness::config(),
                       energy::FeeneyModel{}, 1);
  routing::BeaconNeighborProvider provider(net, 3, /*lifetime_s=*/3.0);
  provider.on_beacon(0, 1, {100, 0}, 0.0);
  EXPECT_EQ(provider.neighbors_of(0), (std::vector<NodeId>{1}));
  EXPECT_EQ(provider.position_of(0, 1), (Point{100, 0}));
  EXPECT_EQ(provider.table_size(0), 1u);
  // Entries expire when not refreshed within the lifetime.
  sim.run_until(4.0);
  EXPECT_TRUE(provider.neighbors_of(0).empty());
  // Refreshes keep entries alive and update the position.
  provider.on_beacon(0, 1, {120, 0}, 4.0);
  sim.run_until(5.0);
  EXPECT_EQ(provider.position_of(0, 1), (Point{120, 0}));
  EXPECT_EQ(provider.neighbors_of(0), (std::vector<NodeId>{1}));
  provider.clear_node(0);
  EXPECT_TRUE(provider.neighbors_of(0).empty());
}

TEST(BeaconProvider, GpsrRoutesOverBeaconTables) {
  // A static chain; beacons injected manually (as the engine would).
  RoutingHarness h({{0, 0}, {200, 0}, {400, 0}, {600, 0}});
  routing::BeaconNeighborProvider provider(h.net, 4, 5.0);
  for (NodeId n = 0; n < 4; ++n) {
    for (const NodeId nb : h.net.neighbors(n)) {
      provider.on_beacon(n, nb, h.net.position(nb), 0.0);
    }
  }
  routing::Gpsr gpsr(h.net, provider);
  net::Packet p;
  p.dest_location = {600, 0};
  p.ttl = 16;
  NodeId self = 0;
  std::vector<NodeId> path{0};
  for (int i = 0; i < 8 && self != 3; ++i) {
    const auto next = gpsr.next_hop(self, p);
    ASSERT_TRUE(next.has_value());
    p.src = self;
    self = *next;
    path.push_back(self);
  }
  EXPECT_EQ(path, (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(BeaconProvider, StaleEntryAimsAtDepartedNeighbor) {
  // Node 1 "moved away" but node 0's table still lists its old position:
  // greedy happily picks it — exactly the failure mode real GPSR has and
  // the oracle provider can never exhibit.
  RoutingHarness h({{0, 0}, {1000, 1000}});  // 1 is actually unreachable
  routing::BeaconNeighborProvider provider(h.net, 2, 10.0);
  provider.on_beacon(0, 1, {200, 0}, 0.0);  // stale belief
  routing::Gpsr gpsr(h.net, provider);
  const auto hop = gpsr.greedy_next_hop(0, {600, 0});
  ASSERT_TRUE(hop.has_value());
  EXPECT_EQ(*hop, 1u);  // chosen from the stale table...
  EXPECT_FALSE(h.net.in_range(0, 1));  // ...but the frame would be lost
}

TEST(FloodController, MarksAndDetectsDuplicates) {
  routing::FloodController fc(3);
  EXPECT_TRUE(fc.mark_seen(0, 7));
  EXPECT_FALSE(fc.mark_seen(0, 7));
  EXPECT_TRUE(fc.has_seen(0, 7));
  EXPECT_FALSE(fc.has_seen(1, 7));  // per-node state
  EXPECT_TRUE(fc.mark_seen(1, 7));
  EXPECT_EQ(fc.duplicates(), 1u);
}

TEST(FloodController, ClearResets) {
  routing::FloodController fc(2);
  fc.mark_seen(0, 1);
  fc.mark_seen(0, 1);
  fc.clear();
  EXPECT_FALSE(fc.has_seen(0, 1));
  EXPECT_EQ(fc.duplicates(), 0u);
}

TEST(FloodController, GrowthPreservesEntries) {
  routing::FloodController fc(1);
  for (std::uint64_t id = 1; id <= 1000; ++id) {
    EXPECT_TRUE(fc.mark_seen(0, id));
  }
  EXPECT_EQ(fc.size(), 1000u);
  EXPECT_GE(fc.capacity(), 1334u);  // stayed under 3/4 load while doubling
  for (std::uint64_t id = 1; id <= 1000; ++id) {
    EXPECT_TRUE(fc.has_seen(0, id));
    EXPECT_FALSE(fc.has_seen(1, id));  // per-node state intact after rehash
  }
  EXPECT_EQ(fc.duplicates(), 0u);
}

TEST(FloodController, ClearKeepsCapacityAndDropsEntries) {
  routing::FloodController fc(4);
  for (std::uint64_t id = 1; id <= 100; ++id) fc.mark_seen(2, id);
  const std::size_t cap = fc.capacity();
  fc.clear();  // generation bump, not a table wipe
  EXPECT_EQ(fc.size(), 0u);
  EXPECT_EQ(fc.capacity(), cap);
  for (std::uint64_t id = 1; id <= 100; ++id) {
    EXPECT_FALSE(fc.has_seen(2, id));
  }
  // Stale slots from the old generation are reusable insert targets.
  for (std::uint64_t id = 1; id <= 100; ++id) {
    EXPECT_TRUE(fc.mark_seen(2, id));
  }
  EXPECT_EQ(fc.size(), 100u);
}

TEST(FloodController, TtlGate) {
  net::Packet p;
  p.ttl = 2;
  EXPECT_TRUE(routing::FloodController::ttl_allows_forward(p));
  p.ttl = 1;
  EXPECT_FALSE(routing::FloodController::ttl_allows_forward(p));
}

TEST(ExpandingRing, DefaultSchedule) {
  EXPECT_EQ(routing::expanding_ring_ttls({}),
            (std::vector<int>{1, 2, 4, 8, 16}));
}

TEST(ExpandingRing, MaxAlwaysIncluded) {
  routing::ExpandingRingConfig c;
  c.initial_ttl = 3;
  c.growth_factor = 2;
  c.max_ttl = 10;
  EXPECT_EQ(routing::expanding_ring_ttls(c), (std::vector<int>{3, 6, 10}));
}

TEST(ExpandingRing, SingleRingWhenInitialEqualsMax) {
  routing::ExpandingRingConfig c;
  c.initial_ttl = 8;
  c.max_ttl = 8;
  EXPECT_EQ(routing::expanding_ring_ttls(c), (std::vector<int>{8}));
}

TEST(ExpandingRing, RejectsBadConfig) {
  routing::ExpandingRingConfig c;
  c.initial_ttl = 0;
  EXPECT_THROW(routing::expanding_ring_ttls(c), std::invalid_argument);
  c = {};
  c.growth_factor = 1;
  EXPECT_THROW(routing::expanding_ring_ttls(c), std::invalid_argument);
  c = {};
  c.max_ttl = 0;
  EXPECT_THROW(routing::expanding_ring_ttls(c), std::invalid_argument);
}

}  // namespace
