// Unit tests for mobility: random waypoint kinematics, static
// placements, the structured models (Manhattan grid, commuter flow) and
// the heterogeneous-fleet composite.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "mobility/class_mix.hpp"
#include "mobility/commuter_flow.hpp"
#include "mobility/gauss_markov.hpp"
#include "mobility/manhattan_grid.hpp"
#include "mobility/random_direction.hpp"
#include "mobility/random_waypoint.hpp"
#include "mobility/static_placement.hpp"
#include "support/stats.hpp"

namespace {

using namespace precinct::mobility;
using precinct::geo::Point;
using precinct::geo::Rect;

RandomWaypointConfig small_config() {
  RandomWaypointConfig c;
  c.area = Rect{{0, 0}, {1000, 1000}};
  c.v_min = 1.0;
  c.v_max = 10.0;
  c.pause_s = 2.0;
  return c;
}

TEST(RandomWaypoint, PositionsStayInArea) {
  RandomWaypoint rwp(20, small_config(), 1);
  for (double t = 0.0; t < 500.0; t += 3.7) {
    for (std::size_t i = 0; i < 20; ++i) {
      const Point p = rwp.position_at(i, t);
      EXPECT_GE(p.x, 0.0);
      EXPECT_LE(p.x, 1000.0);
      EXPECT_GE(p.y, 0.0);
      EXPECT_LE(p.y, 1000.0);
    }
  }
}

TEST(RandomWaypoint, SpeedRespectsBounds) {
  RandomWaypoint rwp(10, small_config(), 2);
  for (double t = 0.0; t < 300.0; t += 1.1) {
    for (std::size_t i = 0; i < 10; ++i) {
      const double v = rwp.speed_at(i, t);
      EXPECT_TRUE(v == 0.0 || (v >= 1.0 && v <= 10.0));
    }
  }
}

TEST(RandomWaypoint, StartsPaused) {
  RandomWaypoint rwp(5, small_config(), 3);
  for (std::size_t i = 0; i < 5; ++i) {
    const Point p0 = rwp.position_at(i, 0.0);
    const Point p1 = rwp.position_at(i, 1.0);  // within the 2 s pause
    EXPECT_EQ(p0, p1);
    EXPECT_EQ(rwp.speed_at(i, 1.0), 0.0);
  }
}

TEST(RandomWaypoint, MovesAfterPause) {
  RandomWaypoint rwp(5, small_config(), 4);
  int moved = 0;
  for (std::size_t i = 0; i < 5; ++i) {
    const Point p0 = rwp.position_at(i, 0.0);
    const Point later = rwp.position_at(i, 30.0);
    if (precinct::geo::distance(p0, later) > 1.0) ++moved;
  }
  EXPECT_GE(moved, 4);  // overwhelmingly likely all moved
}

TEST(RandomWaypoint, DisplacementBoundedBySpeed) {
  RandomWaypoint rwp(10, small_config(), 5);
  for (std::size_t i = 0; i < 10; ++i) {
    Point prev = rwp.position_at(i, 0.0);
    for (double t = 0.5; t < 100.0; t += 0.5) {
      const Point cur = rwp.position_at(i, t);
      // Max speed 10 m/s over 0.5 s => at most 5 m (+ epsilon).
      EXPECT_LE(precinct::geo::distance(prev, cur), 5.0 + 1e-9);
      prev = cur;
    }
  }
}

TEST(RandomWaypoint, DeterministicForSameSeed) {
  RandomWaypoint a(8, small_config(), 42);
  RandomWaypoint b(8, small_config(), 42);
  for (double t = 0.0; t < 200.0; t += 7.3) {
    for (std::size_t i = 0; i < 8; ++i) {
      EXPECT_EQ(a.position_at(i, t), b.position_at(i, t));
    }
  }
}

TEST(RandomWaypoint, QueryPatternDoesNotPerturbTrajectory) {
  // Querying one node often must not change another node's path.
  RandomWaypoint a(4, small_config(), 9);
  RandomWaypoint b(4, small_config(), 9);
  for (double t = 0.0; t < 100.0; t += 0.1) (void)a.position_at(0, t);
  EXPECT_EQ(a.position_at(3, 100.0), b.position_at(3, 100.0));
}

TEST(RandomWaypoint, RejectsBadConfig) {
  auto c = small_config();
  c.v_min = 0.0;
  EXPECT_THROW(RandomWaypoint(2, c, 1), std::invalid_argument);
  c = small_config();
  c.v_max = 0.5;  // < v_min
  EXPECT_THROW(RandomWaypoint(2, c, 1), std::invalid_argument);
  c = small_config();
  c.pause_s = -1.0;
  EXPECT_THROW(RandomWaypoint(2, c, 1), std::invalid_argument);
}


RandomDirectionConfig rd_config() {
  RandomDirectionConfig c;
  c.area = Rect{{0, 0}, {1000, 1000}};
  c.v_min = 1.0;
  c.v_max = 10.0;
  c.pause_s = 2.0;
  return c;
}

TEST(RandomDirection, PositionsStayInArea) {
  RandomDirection rd(15, rd_config(), 3);
  for (double t = 0.0; t < 400.0; t += 2.3) {
    for (std::size_t i = 0; i < 15; ++i) {
      const Point p = rd.position_at(i, t);
      EXPECT_GE(p.x, 0.0);
      EXPECT_LE(p.x, 1000.0);
      EXPECT_GE(p.y, 0.0);
      EXPECT_LE(p.y, 1000.0);
    }
  }
}

TEST(RandomDirection, LegsEndOnBoundary) {
  // After enough time each node has completed legs; when paused, the
  // node sits on (or extremely near) the area boundary.
  RandomDirection rd(10, rd_config(), 4);
  int boundary_pauses = 0;
  for (double t = 50.0; t < 600.0; t += 1.0) {
    for (std::size_t i = 0; i < 10; ++i) {
      if (rd.speed_at(i, t) == 0.0) {
        const Point p = rd.position_at(i, t);
        const double d_edge =
            std::min(std::min(p.x, 1000.0 - p.x), std::min(p.y, 1000.0 - p.y));
        if (d_edge < 1.0) ++boundary_pauses;
      }
    }
  }
  EXPECT_GT(boundary_pauses, 50);
}

TEST(RandomDirection, DeterministicForSameSeed) {
  RandomDirection a(6, rd_config(), 42);
  RandomDirection b(6, rd_config(), 42);
  for (double t = 0.0; t < 150.0; t += 3.1) {
    for (std::size_t i = 0; i < 6; ++i) {
      EXPECT_EQ(a.position_at(i, t), b.position_at(i, t));
    }
  }
}

TEST(RandomDirection, RejectsBadConfig) {
  auto c = rd_config();
  c.v_min = 0.0;
  EXPECT_THROW(RandomDirection(2, c, 1), std::invalid_argument);
  c = rd_config();
  c.pause_s = -1.0;
  EXPECT_THROW(RandomDirection(2, c, 1), std::invalid_argument);
}

GaussMarkovConfig gm_config() {
  GaussMarkovConfig c;
  c.area = Rect{{0, 0}, {1000, 1000}};
  c.mean_speed = 5.0;
  return c;
}

TEST(GaussMarkov, PositionsStayInArea) {
  GaussMarkov gm(15, gm_config(), 5);
  for (double t = 0.0; t < 400.0; t += 1.7) {
    for (std::size_t i = 0; i < 15; ++i) {
      const Point p = gm.position_at(i, t);
      EXPECT_GE(p.x, 0.0);
      EXPECT_LE(p.x, 1000.0);
      EXPECT_GE(p.y, 0.0);
      EXPECT_LE(p.y, 1000.0);
    }
  }
}

TEST(GaussMarkov, SpeedRevertsToMean) {
  GaussMarkov gm(20, gm_config(), 6);
  precinct::support::RunningStats speeds;
  for (double t = 100.0; t < 500.0; t += 1.0) {
    for (std::size_t i = 0; i < 20; ++i) speeds.add(gm.speed_at(i, t));
  }
  EXPECT_NEAR(speeds.mean(), 5.0, 1.0);
}

TEST(GaussMarkov, MotionIsTemporallyCorrelated) {
  // Consecutive 1 s displacements should point in similar directions far
  // more often than random (the model's whole point vs waypoint teleport
  // turns).  Compare cos-similarity of successive steps.
  GaussMarkov gm(10, gm_config(), 7);
  precinct::support::RunningStats cosims;
  for (std::size_t i = 0; i < 10; ++i) {
    Point prev = gm.position_at(i, 0.0);
    Point cur = gm.position_at(i, 1.0);
    for (double t = 2.0; t < 200.0; t += 1.0) {
      const Point next = gm.position_at(i, t);
      const Point v1 = cur - prev;
      const Point v2 = next - cur;
      const double n1 = precinct::geo::norm(v1);
      const double n2 = precinct::geo::norm(v2);
      if (n1 > 1e-6 && n2 > 1e-6) {
        cosims.add((v1.x * v2.x + v1.y * v2.y) / (n1 * n2));
      }
      prev = cur;
      cur = next;
    }
  }
  EXPECT_GT(cosims.mean(), 0.5);
}

TEST(GaussMarkov, DeterministicForSameSeed) {
  GaussMarkov a(5, gm_config(), 11);
  GaussMarkov b(5, gm_config(), 11);
  for (double t = 0.0; t < 100.0; t += 2.7) {
    for (std::size_t i = 0; i < 5; ++i) {
      EXPECT_EQ(a.position_at(i, t), b.position_at(i, t));
    }
  }
}

TEST(GaussMarkov, RejectsBadConfig) {
  auto c = gm_config();
  c.alpha = 1.5;
  EXPECT_THROW(GaussMarkov(2, c, 1), std::invalid_argument);
  c = gm_config();
  c.mean_speed = 0.0;
  EXPECT_THROW(GaussMarkov(2, c, 1), std::invalid_argument);
}

ManhattanGridConfig mg_config() {
  ManhattanGridConfig c;
  c.area = Rect{{0, 0}, {1000, 1000}};
  c.street_spacing_m = 100.0;
  c.turn_probability = 0.25;
  c.v_min = 2.0;
  c.v_max = 14.0;
  c.pause_s = 2.0;
  return c;
}

TEST(ManhattanGrid, PositionsStayInArea) {
  ManhattanGrid mg(20, mg_config(), 1);
  for (double t = 0.0; t < 500.0; t += 3.7) {
    for (std::size_t i = 0; i < 20; ++i) {
      const Point p = mg.position_at(i, t);
      EXPECT_GE(p.x, 0.0);
      EXPECT_LE(p.x, 1000.0);
      EXPECT_GE(p.y, 0.0);
      EXPECT_LE(p.y, 1000.0);
    }
  }
}

TEST(ManhattanGrid, PositionsAreLaneSnapped) {
  // A vehicle is always on a street line: at least one coordinate sits on
  // a multiple of the street spacing.  This is the model's structural
  // promise — no mid-block shortcuts.
  ManhattanGrid mg(15, mg_config(), 2);
  const auto on_street = [](double v) {
    const double r = std::fmod(v, 100.0);
    return std::min(r, 100.0 - r) < 1e-6;
  };
  for (double t = 0.0; t < 400.0; t += 1.3) {
    for (std::size_t i = 0; i < 15; ++i) {
      const Point p = mg.position_at(i, t);
      EXPECT_TRUE(on_street(p.x) || on_street(p.y))
          << "node " << i << " at t=" << t << " is mid-block: (" << p.x
          << ", " << p.y << ")";
    }
  }
}

TEST(ManhattanGrid, GridCoversTheArea) {
  // 1000 m area at 100 m spacing, streets on the half-open max edge
  // dropped: 10 intersections per axis.
  ManhattanGrid mg(4, mg_config(), 3);
  EXPECT_EQ(mg.columns(), 10u);
  EXPECT_EQ(mg.rows(), 10u);
}

TEST(ManhattanGrid, SpeedRespectsBoundsAndPauses) {
  ManhattanGrid mg(10, mg_config(), 4);
  int paused = 0;
  for (double t = 0.0; t < 300.0; t += 1.1) {
    for (std::size_t i = 0; i < 10; ++i) {
      const double v = mg.speed_at(i, t);
      EXPECT_TRUE(v == 0.0 || (v >= 2.0 && v <= 14.0));
      if (v == 0.0) ++paused;
    }
  }
  EXPECT_GT(paused, 0);  // intersection pauses exist
}

TEST(ManhattanGrid, DeterministicForSameSeed) {
  ManhattanGrid a(8, mg_config(), 42);
  ManhattanGrid b(8, mg_config(), 42);
  for (double t = 0.0; t < 200.0; t += 7.3) {
    for (std::size_t i = 0; i < 8; ++i) {
      EXPECT_EQ(a.position_at(i, t), b.position_at(i, t));
    }
  }
}

TEST(ManhattanGrid, QueryPatternDoesNotPerturbTrajectory) {
  ManhattanGrid a(4, mg_config(), 9);
  ManhattanGrid b(4, mg_config(), 9);
  for (double t = 0.0; t < 100.0; t += 0.1) (void)a.position_at(0, t);
  EXPECT_EQ(a.position_at(3, 100.0), b.position_at(3, 100.0));
}

TEST(ManhattanGrid, RejectsBadConfig) {
  auto c = mg_config();
  c.v_min = 0.0;
  EXPECT_THROW(ManhattanGrid(2, c, 1), std::invalid_argument);
  c = mg_config();
  c.turn_probability = 1.5;
  EXPECT_THROW(ManhattanGrid(2, c, 1), std::invalid_argument);
  c = mg_config();
  c.street_spacing_m = 0.0;
  EXPECT_THROW(ManhattanGrid(2, c, 1), std::invalid_argument);
  c = mg_config();
  c.street_spacing_m = 2000.0;  // fewer than 2x2 intersections fit
  EXPECT_THROW(ManhattanGrid(2, c, 1), std::invalid_argument);
}

CommuterFlowConfig cf_config() {
  CommuterFlowConfig c;
  c.area = Rect{{0, 0}, {400, 400}};
  c.period_s = 1000.0;  // long enough that every commute completes
  c.n_hubs = 2;
  c.v_min = 2.0;
  c.v_max = 3.0;
  return c;
}

TEST(CommuterFlow, PositionsStayInArea) {
  CommuterFlow cf(20, cf_config(), 1);
  for (double t = 0.0; t < 2500.0; t += 13.7) {
    for (std::size_t i = 0; i < 20; ++i) {
      const Point p = cf.position_at(i, t);
      EXPECT_GE(p.x, 0.0);
      EXPECT_LE(p.x, 400.0);
      EXPECT_GE(p.y, 0.0);
      EXPECT_LE(p.y, 400.0);
    }
  }
}

TEST(CommuterFlow, IsNeverTimeInvariant) {
  // The attractor field churns with the clock, so the radio's static
  // snapshot fast path must stay off even for a momentarily still fleet.
  CommuterFlow cf(5, cf_config(), 2);
  EXPECT_FALSE(cf.time_invariant());
}

TEST(CommuterFlow, HubsLieInsideTheArea) {
  CommuterFlow cf(5, cf_config(), 3);
  ASSERT_EQ(cf.hubs().size(), 2u);
  for (const Point& h : cf.hubs()) {
    EXPECT_TRUE((Rect{{0, 0}, {400, 400}}).contains(h));
  }
}

TEST(CommuterFlow, DayPhaseGathersTheFleetAtHubs) {
  // Worst-case commute: 566 m diagonal at v_min 2 m/s = 283 s, plus the
  // staggered departure (<= 20% of the 500 s half-period).  By t = 450
  // every node has reached its day target, which sits within the hub
  // jitter radius (8% of the area side) of a hub center.
  CommuterFlow cf(30, cf_config(), 4);
  for (std::size_t i = 0; i < 30; ++i) {
    const Point p = cf.position_at(i, 450.0);
    double nearest = 1e9;
    for (const Point& h : cf.hubs()) {
      nearest = std::min(nearest, precinct::geo::distance(p, h));
    }
    EXPECT_LT(nearest, 50.0) << "node " << i << " not at a hub by day's end";
  }
}

TEST(CommuterFlow, NightPhaseReturnsEveryNodeHome) {
  // At t = 0 a node has not yet departed (staggered start), so it sits at
  // home; by late night (t = 950) the return commute has completed and it
  // sits at home again — exactly.  The oracle is monotone per node, so
  // capture the homes before advancing anyone.
  CommuterFlow cf(30, cf_config(), 5);
  std::vector<Point> homes;
  for (std::size_t i = 0; i < 30; ++i) homes.push_back(cf.position_at(i, 0.0));
  for (std::size_t i = 0; i < 30; ++i) {
    EXPECT_EQ(cf.position_at(i, 950.0), homes[i]) << "node " << i;
  }
}

TEST(CommuterFlow, DeterministicForSameSeed) {
  CommuterFlow a(8, cf_config(), 42);
  CommuterFlow b(8, cf_config(), 42);
  for (double t = 0.0; t < 1500.0; t += 17.3) {
    for (std::size_t i = 0; i < 8; ++i) {
      EXPECT_EQ(a.position_at(i, t), b.position_at(i, t));
    }
  }
}

TEST(CommuterFlow, RejectsBadConfig) {
  auto c = cf_config();
  c.period_s = 0.0;
  EXPECT_THROW(CommuterFlow(2, c, 1), std::invalid_argument);
  c = cf_config();
  c.n_hubs = 0;
  EXPECT_THROW(CommuterFlow(2, c, 1), std::invalid_argument);
  c = cf_config();
  c.v_min = 0.0;
  EXPECT_THROW(CommuterFlow(2, c, 1), std::invalid_argument);
}

TEST(ClassMix, RoutesQueriesToTheOwningPart) {
  // A fleet of 3 fixed units then 4 waypoint phones: the composite must
  // agree with standalone models queried at class-local ids.
  std::vector<std::unique_ptr<MobilityModel>> parts;
  parts.push_back(std::make_unique<StaticPlacement>(
      StaticPlacement::uniform(3, {{0, 0}, {500, 500}}, 7)));
  parts.push_back(std::make_unique<RandomWaypoint>(4, small_config(), 11));
  ClassMix mix(std::move(parts));
  EXPECT_EQ(mix.node_count(), 7u);
  EXPECT_EQ(mix.part_count(), 2u);

  auto solo_static = StaticPlacement::uniform(3, {{0, 0}, {500, 500}}, 7);
  RandomWaypoint solo_rwp(4, small_config(), 11);
  for (double t = 0.0; t < 120.0; t += 4.7) {
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_EQ(mix.position_at(i, t), solo_static.position_at(i, t));
    }
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_EQ(mix.position_at(3 + j, t), solo_rwp.position_at(j, t));
      EXPECT_EQ(mix.speed_at(3 + j, t), solo_rwp.speed_at(j, t));
    }
  }
}

TEST(ClassMix, TimeInvariantOnlyWhenEveryPartIs) {
  std::vector<std::unique_ptr<MobilityModel>> all_static;
  all_static.push_back(std::make_unique<StaticPlacement>(
      StaticPlacement::uniform(2, {{0, 0}, {100, 100}}, 1)));
  all_static.push_back(std::make_unique<StaticPlacement>(
      StaticPlacement::uniform(2, {{0, 0}, {100, 100}}, 2)));
  EXPECT_TRUE(ClassMix(std::move(all_static)).time_invariant());

  std::vector<std::unique_ptr<MobilityModel>> mixed;
  mixed.push_back(std::make_unique<StaticPlacement>(
      StaticPlacement::uniform(2, {{0, 0}, {100, 100}}, 1)));
  mixed.push_back(std::make_unique<RandomWaypoint>(2, small_config(), 3));
  EXPECT_FALSE(ClassMix(std::move(mixed)).time_invariant());
}

TEST(ClassMix, RejectsEmptyOrNullParts) {
  EXPECT_THROW(ClassMix(std::vector<std::unique_ptr<MobilityModel>>{}),
               std::invalid_argument);
  std::vector<std::unique_ptr<MobilityModel>> with_null;
  with_null.push_back(nullptr);
  EXPECT_THROW(ClassMix(std::move(with_null)), std::invalid_argument);
}

TEST(StaticPlacement, UniformStaysInArea) {
  const Rect area{{100, 100}, {200, 300}};
  auto sp = StaticPlacement::uniform(50, area, 7);
  EXPECT_EQ(sp.node_count(), 50u);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_TRUE(area.contains(sp.position_at(i, 0.0)));
    EXPECT_EQ(sp.speed_at(i, 123.0), 0.0);
  }
}

TEST(StaticPlacement, PositionsNeverChange) {
  auto sp = StaticPlacement::uniform(10, {{0, 0}, {100, 100}}, 8);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(sp.position_at(i, 0.0), sp.position_at(i, 1e6));
  }
}

TEST(StaticPlacement, GridCoversArea) {
  auto sp = StaticPlacement::grid(9, {{0, 0}, {300, 300}});
  EXPECT_EQ(sp.node_count(), 9u);
  // 3x3 grid: all cell centers distinct and inside.
  for (std::size_t i = 0; i < 9; ++i) {
    for (std::size_t j = i + 1; j < 9; ++j) {
      EXPECT_GT(precinct::geo::distance(sp.position_at(i, 0), sp.position_at(j, 0)),
                1.0);
    }
  }
}

TEST(StaticPlacement, ExplicitPositions) {
  StaticPlacement sp({{1, 2}, {3, 4}});
  EXPECT_EQ(sp.node_count(), 2u);
  EXPECT_EQ(sp.position_at(1, 0.0), (Point{3, 4}));
}

}  // namespace
