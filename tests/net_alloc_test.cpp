// Steady-state radio traffic must not touch the heap: pooled frames,
// inline delivery closures, the flat flood seen-table and capacity-reusing
// neighbor caches together make flood fan-out allocation-free.  This
// extends sim_test's counting-allocator check from bare event scheduling
// to the full broadcast delivery path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "mobility/static_placement.hpp"
#include "net/wireless_net.hpp"
#include "routing/flood.hpp"
#include "sim/simulator.hpp"

// Counting replacements for the global allocator (same pattern as
// sim_test.cpp).  Replacement functions must live at global scope; the
// default operator new[]/delete[] route through these.
namespace alloc_probe {
std::atomic<std::uint64_t> count{0};
}  // namespace alloc_probe

void* operator new(std::size_t size) {
  alloc_probe::count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace precinct;
using net::NodeId;
using net::Packet;

TEST(NetAlloc, SteadyStateFloodDeliveryIsAllocationFree) {
  sim::Simulator sim;
  auto placement = mobility::StaticPlacement::uniform(
      60, {{0, 0}, {1000, 1000}}, /*seed=*/23);
  net::WirelessConfig config;
  config.area = {{0, 0}, {1000, 1000}};
  net::WirelessNet net(sim, placement, config, energy::FeeneyModel{}, 23);
  routing::FloodController flood(60);
  std::uint64_t delivered = 0;
  net.set_receive_handler([&](NodeId node, const Packet& p) {
    ++delivered;
    if (!flood.mark_seen(node, p.id)) return;
    if (!routing::FloodController::ttl_allows_forward(p)) return;
    net::PacketRef fwd = net.make_ref(p);
    fwd->ttl -= 1;
    fwd->hops += 1;
    fwd->src = node;
    net.broadcast(std::move(fwd));
  });

  const auto run_flood = [&](NodeId origin) {
    flood.clear();  // per-scenario reset: O(1), capacity retained
    Packet p;
    p.id = net.next_packet_id();
    p.mode = net::RouteMode::kNetworkFlood;
    p.origin = origin;
    p.src = origin;
    p.size_bytes = 96;
    p.ttl = 8;
    flood.mark_seen(origin, p.id);
    net.broadcast(p);
    sim.run_all();
  };

  // Warm-up: grows the frame pool and event arena to this workload's
  // peak, sizes the seen-table and per-node neighbor-cache capacities.
  for (NodeId origin = 0; origin < 8; ++origin) run_flood(origin);

  const std::uint64_t delivered_before = delivered;
  const std::uint64_t allocs_before = alloc_probe::count.load();
  for (NodeId origin = 8; origin < 16; ++origin) run_flood(origin);
  const std::uint64_t allocs_after = alloc_probe::count.load();
  const std::uint64_t delivered_after = delivered;

  EXPECT_GT(delivered_after, delivered_before);  // floods actually ran
  EXPECT_EQ(allocs_after, allocs_before);
  EXPECT_EQ(net.frame_pool().in_use(), 0u);
}

}  // namespace
