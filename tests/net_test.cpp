// Unit tests for the wireless substrate: delivery semantics, MAC
// serialization, energy charging, failure injection, message accounting.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "mobility/static_placement.hpp"
#include "mobility/random_waypoint.hpp"
#include "net/spatial_grid.hpp"
#include "net/wireless_net.hpp"
#include "support/rng.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace precinct;
using net::NodeId;
using net::Packet;
using net::PacketKind;

struct NetFixture : ::testing::Test {
  // Three nodes on a line, 200 m apart, range 250 m: 0-1 and 1-2 are
  // links; 0-2 is out of range.
  NetFixture()
      : placement({{0, 0}, {200, 0}, {400, 0}}),
        net(sim, placement, config(), energy::FeeneyModel{}, 1) {}

  static net::WirelessConfig config() {
    net::WirelessConfig c;
    c.range_m = 250.0;
    c.jitter_s = 0.0;  // deterministic timing in tests
    return c;
  }

  Packet packet_from(NodeId src, PacketKind kind = PacketKind::kRequest) {
    Packet p;
    p.id = net.next_packet_id();
    p.kind = kind;
    p.origin = src;
    p.src = src;
    p.size_bytes = 100;
    return p;
  }

  sim::Simulator sim;
  mobility::StaticPlacement placement;
  net::WirelessNet net;
};

TEST_F(NetFixture, NeighborsRespectRange) {
  EXPECT_EQ(net.neighbors(0), (std::vector<NodeId>{1}));
  EXPECT_EQ(net.neighbors(1), (std::vector<NodeId>{0, 2}));
  EXPECT_TRUE(net.in_range(0, 1));
  EXPECT_FALSE(net.in_range(0, 2));
  EXPECT_FALSE(net.in_range(1, 1));
}

TEST_F(NetFixture, BroadcastReachesInRangeNodesOnly) {
  std::vector<NodeId> received;
  net.set_receive_handler(
      [&](NodeId self, const Packet&) { received.push_back(self); });
  net.broadcast(packet_from(1));
  sim.run_all();
  EXPECT_EQ(received, (std::vector<NodeId>{0, 2}));
}

TEST_F(NetFixture, BroadcastExcludesSender) {
  std::vector<NodeId> received;
  net.set_receive_handler(
      [&](NodeId self, const Packet&) { received.push_back(self); });
  net.broadcast(packet_from(0));
  sim.run_all();
  EXPECT_EQ(received, (std::vector<NodeId>{1}));
}

TEST_F(NetFixture, UnicastDeliversToTargetOnly) {
  std::vector<NodeId> received;
  net.set_receive_handler(
      [&](NodeId self, const Packet&) { received.push_back(self); });
  net.unicast(packet_from(1), 2);
  sim.run_all();
  EXPECT_EQ(received, (std::vector<NodeId>{2}));
  EXPECT_EQ(net.frames_lost(), 0u);
}

TEST_F(NetFixture, UnicastOutOfRangeIsLost) {
  int received = 0;
  net.set_receive_handler([&](NodeId, const Packet&) { ++received; });
  net.unicast(packet_from(0), 2);  // 400 m apart
  sim.run_all();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.frames_lost(), 1u);
}

TEST_F(NetFixture, DeliveryTakesPositiveTime) {
  double delivered_at = -1.0;
  net.set_receive_handler(
      [&](NodeId, const Packet&) { delivered_at = sim.now(); });
  net.broadcast(packet_from(0));
  sim.run_all();
  EXPECT_GT(delivered_at, 0.0);
  // 100 bytes at 11 Mbps + MAC overhead + propagation + processing.
  EXPECT_LT(delivered_at, 0.01);
}

TEST_F(NetFixture, MacSerializesBackToBackFrames) {
  std::vector<double> deliveries;
  net.set_receive_handler(
      [&](NodeId self, const Packet&) {
        if (self == 1) deliveries.push_back(sim.now());
      });
  net.broadcast(packet_from(0));
  net.broadcast(packet_from(0));  // queued behind the first
  sim.run_all();
  ASSERT_EQ(deliveries.size(), 2u);
  const double gap = deliveries[1] - deliveries[0];
  // Second frame waits for the first's airtime (>= mac overhead).
  EXPECT_GE(gap, config().mac_overhead_s * 0.99);
}

TEST_F(NetFixture, BroadcastChargesSenderAndReceivers) {
  net.set_receive_handler([](NodeId, const Packet&) {});
  net.broadcast(packet_from(1));
  sim.run_all();
  const auto& acc = net.energy();
  EXPECT_GT(acc.node(1).broadcast_send_mj, 0.0);
  EXPECT_GT(acc.node(0).broadcast_recv_mj, 0.0);
  EXPECT_GT(acc.node(2).broadcast_recv_mj, 0.0);
  EXPECT_EQ(acc.node(1).broadcast_recv_mj, 0.0);
}

TEST_F(NetFixture, UnicastChargesOverhearers) {
  net.set_receive_handler([](NodeId, const Packet&) {});
  net.unicast(packet_from(1), 0);
  sim.run_all();
  const auto& acc = net.energy();
  EXPECT_GT(acc.node(1).p2p_send_mj, 0.0);
  EXPECT_GT(acc.node(0).p2p_recv_mj, 0.0);
  EXPECT_GT(acc.node(2).p2p_discard_mj, 0.0);  // overheard, discarded
}

TEST_F(NetFixture, KilledNodeNeitherSendsNorReceives) {
  int received = 0;
  net.set_receive_handler([&](NodeId, const Packet&) { ++received; });
  net.kill(1);
  EXPECT_FALSE(net.is_alive(1));
  EXPECT_EQ(net.alive_count(), 2u);
  net.broadcast(packet_from(0));  // only neighbor was 1
  sim.run_all();
  EXPECT_EQ(received, 0);
  net.broadcast(packet_from(1));  // dead sender: dropped
  sim.run_all();
  EXPECT_EQ(received, 0);
}

TEST_F(NetFixture, ReviveRestoresNode) {
  net.kill(1);
  net.revive(1);
  EXPECT_TRUE(net.is_alive(1));
  int received = 0;
  net.set_receive_handler([&](NodeId, const Packet&) { ++received; });
  net.broadcast(packet_from(0));
  sim.run_all();
  EXPECT_EQ(received, 1);
}

TEST_F(NetFixture, DeadNodesAreNotNeighbors) {
  net.kill(1);
  EXPECT_TRUE(net.neighbors(0).empty());
  EXPECT_FALSE(net.in_range(0, 1));
}

TEST_F(NetFixture, StatsCountSendsAndDeliveries) {
  net.set_receive_handler([](NodeId, const Packet&) {});
  net.broadcast(packet_from(1, PacketKind::kRequest));
  net.unicast(packet_from(1, PacketKind::kResponse), 0);
  sim.run_all();
  EXPECT_EQ(net.stats().sends(PacketKind::kRequest), 1u);
  EXPECT_EQ(net.stats().deliveries(PacketKind::kRequest), 2u);
  EXPECT_EQ(net.stats().sends(PacketKind::kResponse), 1u);
  EXPECT_EQ(net.stats().deliveries(PacketKind::kResponse), 1u);
  EXPECT_EQ(net.stats().bytes_sent(PacketKind::kRequest), 100u);
  EXPECT_EQ(net.stats().total_sends(), 2u);
}

TEST_F(NetFixture, ConsistencySendsCoverConsistencyKinds) {
  net.set_receive_handler([](NodeId, const Packet&) {});
  net.broadcast(packet_from(1, PacketKind::kInvalidation));
  net.unicast(packet_from(1, PacketKind::kPoll), 0);
  net.unicast(packet_from(1, PacketKind::kPollReply), 0);
  net.unicast(packet_from(1, PacketKind::kUpdatePush), 0);
  net.unicast(packet_from(1, PacketKind::kPushAck), 0);
  net.broadcast(packet_from(1, PacketKind::kRequest));  // not consistency
  sim.run_all();
  EXPECT_EQ(net.stats().consistency_sends(), 5u);
}

TEST(MessageStats, ToStringCoversAllKinds) {
  for (int k = 0; k < 9; ++k) {
    EXPECT_STRNE(net::to_string(static_cast<PacketKind>(k)), "unknown");
  }
}

// ---------------------------------------------------------------------------
// Spatial grid index
// ---------------------------------------------------------------------------

TEST_F(NetFixture, FramesCarrySenderPosition) {
  geo::Point seen{-1, -1};
  net.set_receive_handler([&](NodeId, const Packet& p) {
    seen = p.src_location;
  });
  net.broadcast(packet_from(1));
  sim.run_all();
  EXPECT_EQ(seen, (geo::Point{200, 0}));
}

TEST_F(NetFixture, SnoopHandlerSeesOverheardUnicast) {
  std::vector<NodeId> snoopers;
  net.set_receive_handler([](NodeId, const Packet&) {});
  net.set_snoop_handler([&](NodeId self, const Packet& p) {
    snoopers.push_back(self);
    EXPECT_EQ(p.src_location, (geo::Point{200, 0}));
  });
  net.unicast(packet_from(1), 0);  // node 2 overhears
  sim.run_all();
  EXPECT_EQ(snoopers, (std::vector<NodeId>{2}));
}

TEST(SpatialGrid, RejectsBadConstruction) {
  EXPECT_THROW(net::SpatialGrid({{0, 0}, {0, 100}}, 250.0),
               std::invalid_argument);
  EXPECT_THROW(net::SpatialGrid({{0, 0}, {100, 100}}, 0.0),
               std::invalid_argument);
}

TEST(SpatialGrid, QueryReturnsSupersetOfInRadius) {
  precinct::support::Rng rng(7);
  std::vector<precinct::geo::Point> pts;
  for (int i = 0; i < 300; ++i) {
    pts.push_back({rng.uniform(0, 1200), rng.uniform(0, 1200)});
  }
  std::vector<char> alive(pts.size(), 1);
  net::SpatialGrid grid({{0, 0}, {1200, 1200}}, 250.0);
  grid.rebuild(pts, alive);
  EXPECT_EQ(grid.indexed_count(), pts.size());
  for (int trial = 0; trial < 50; ++trial) {
    const precinct::geo::Point q{rng.uniform(0, 1200), rng.uniform(0, 1200)};
    std::vector<std::uint32_t> candidates;
    grid.query(q, 250.0, candidates);
    const std::set<std::uint32_t> cand_set(candidates.begin(),
                                           candidates.end());
    for (std::uint32_t i = 0; i < pts.size(); ++i) {
      if (precinct::geo::distance(pts[i], q) <= 250.0) {
        EXPECT_TRUE(cand_set.count(i)) << "missed in-radius node " << i;
      }
    }
  }
}

TEST(SpatialGrid, SkipsDeadNodes) {
  std::vector<precinct::geo::Point> pts{{10, 10}, {20, 20}};
  std::vector<char> alive{1, 0};
  net::SpatialGrid grid({{0, 0}, {100, 100}}, 50.0);
  grid.rebuild(pts, alive);
  EXPECT_EQ(grid.indexed_count(), 1u);
  std::vector<std::uint32_t> out;
  grid.query({15, 15}, 50.0, out);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0}));
}

TEST(SpatialGrid, NeighborsMatchLinearScanOnMobileNetwork) {
  // Property: the indexed WirelessNet returns exactly the same neighbor
  // sets as the scan path, across time, on a large mobile network.
  mobility::RandomWaypointConfig rwp;
  rwp.area = {{0, 0}, {2000, 2000}};
  rwp.v_max = 20.0;
  mobility::RandomWaypoint mob_a(200, rwp, 99);
  mobility::RandomWaypoint mob_b(200, rwp, 99);

  net::WirelessConfig with_grid;
  with_grid.area = rwp.area;
  with_grid.spatial_index_threshold = 1;  // force the grid on
  net::WirelessConfig no_grid = with_grid;
  no_grid.spatial_index_threshold = 10000;  // force the scan

  sim::Simulator sim_a;
  sim::Simulator sim_b;
  net::WirelessNet a(sim_a, mob_a, with_grid, energy::FeeneyModel{}, 1);
  net::WirelessNet b(sim_b, mob_b, no_grid, energy::FeeneyModel{}, 1);
  for (double t = 0.0; t < 30.0; t += 0.37) {
    sim_a.run_until(t);
    sim_b.run_until(t);
    for (NodeId n = 0; n < 200; n += 17) {
      EXPECT_EQ(a.neighbors(n), b.neighbors(n)) << "node " << n << " t " << t;
    }
  }
}

}  // namespace
