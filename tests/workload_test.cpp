// Unit tests for workload: Zipf sampling and the data catalog.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "support/rng.hpp"
#include "workload/data_catalog.hpp"
#include "workload/zipf.hpp"

namespace {

using namespace precinct::workload;
using precinct::support::Rng;

TEST(Zipf, RejectsBadArguments) {
  EXPECT_THROW(ZipfGenerator(0, 0.8), std::invalid_argument);
  EXPECT_THROW(ZipfGenerator(10, -0.1), std::invalid_argument);
}

TEST(Zipf, PmfSumsToOne) {
  const ZipfGenerator z(100, 0.8);
  double total = 0.0;
  for (std::size_t i = 0; i < 100; ++i) total += z.pmf(i);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Zipf, PmfMonotoneDecreasing) {
  const ZipfGenerator z(50, 1.2);
  for (std::size_t i = 1; i < 50; ++i) {
    EXPECT_GE(z.pmf(i - 1), z.pmf(i));
  }
}

TEST(Zipf, ThetaZeroIsUniform) {
  const ZipfGenerator z(10, 0.0);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_NEAR(z.pmf(i), 0.1, 1e-12);
}

TEST(Zipf, PmfMatchesPowerLaw) {
  const ZipfGenerator z(1000, 0.8);
  // pmf(i) / pmf(j) should equal (j+1)^theta / (i+1)^theta.
  const double ratio = z.pmf(0) / z.pmf(9);
  EXPECT_NEAR(ratio, std::pow(10.0, 0.8), 1e-9);
}

TEST(Zipf, SampleFrequenciesTrackPmf) {
  const ZipfGenerator z(20, 0.8);
  Rng rng(5);
  std::vector<int> counts(20, 0);
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) ++counts[z.sample(rng)];
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / kN, z.pmf(i), 0.005)
        << "rank " << i;
  }
}

TEST(Zipf, SampleInRange) {
  const ZipfGenerator z(7, 2.0);
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(z.sample(rng), 7u);
}

TEST(Zipf, PmfThrowsOutOfRange) {
  const ZipfGenerator z(5, 1.0);
  EXPECT_THROW((void)z.pmf(5), std::out_of_range);
}

TEST(DataCatalog, RejectsBadConfig) {
  DataCatalogConfig c;
  c.n_items = 0;
  EXPECT_THROW(DataCatalog(c, 1), std::invalid_argument);
  c = {};
  c.min_item_bytes = 0;
  EXPECT_THROW(DataCatalog(c, 1), std::invalid_argument);
  c = {};
  c.max_item_bytes = c.min_item_bytes - 1;
  EXPECT_THROW(DataCatalog(c, 1), std::invalid_argument);
}

TEST(DataCatalog, SizesWithinBounds) {
  DataCatalogConfig c;
  c.n_items = 500;
  c.min_item_bytes = 1000;
  c.max_item_bytes = 2000;
  const DataCatalog cat(c, 3);
  std::size_t total = 0;
  for (std::size_t i = 0; i < cat.size(); ++i) {
    const auto& item = cat.item_at(i);
    EXPECT_GE(item.size_bytes, 1000u);
    EXPECT_LE(item.size_bytes, 2000u);
    total += item.size_bytes;
  }
  EXPECT_EQ(total, cat.total_bytes());
}

TEST(DataCatalog, KeysAreUniqueAndStable) {
  const DataCatalog a(DataCatalogConfig{}, 1);
  const DataCatalog b(DataCatalogConfig{}, 2);  // different seed, same keys
  std::set<precinct::geo::Key> keys;
  for (std::size_t i = 0; i < a.size(); ++i) {
    keys.insert(a.key_of(i));
    EXPECT_EQ(a.key_of(i), b.key_of(i));
  }
  EXPECT_EQ(keys.size(), a.size());
}

TEST(DataCatalog, RankOfInvertsKeyOf) {
  const DataCatalog cat(DataCatalogConfig{}, 7);
  for (std::size_t i = 0; i < cat.size(); i += 37) {
    EXPECT_EQ(cat.rank_of(cat.key_of(i)), i);
  }
  EXPECT_THROW((void)cat.rank_of(0xDEADBEEF), std::out_of_range);
}

TEST(DataCatalog, UpdatesBumpVersions) {
  DataCatalog cat(DataCatalogConfig{}, 7);
  const auto key = cat.key_of(3);
  EXPECT_EQ(cat.item(key).version, 0u);
  EXPECT_TRUE(cat.is_current(key, 0));
  EXPECT_EQ(cat.apply_update(key, 10.0), 1u);
  EXPECT_EQ(cat.apply_update(key, 20.0), 2u);
  EXPECT_FALSE(cat.is_current(key, 1));
  EXPECT_TRUE(cat.is_current(key, 2));
  EXPECT_DOUBLE_EQ(cat.item(key).last_update_s, 20.0);
}

TEST(DataCatalog, UpdatesIsolatedPerKey) {
  DataCatalog cat(DataCatalogConfig{}, 7);
  cat.apply_update(cat.key_of(0), 1.0);
  EXPECT_EQ(cat.item(cat.key_of(1)).version, 0u);
}

}  // namespace
