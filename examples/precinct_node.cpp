// precinct_node — one domain of a world-sharded PReCinCt run as a real
// OS process, coupled to its peers over UDP (DESIGN.md §14).
//
//   ./precinct_node --config fleet.conf --domain 2
//       --peers 127.0.0.1:47400,127.0.0.1:47401,... --status status-2.json
//
// The peer list maps domain -> address (one entry per region column; this
// process binds entry --domain).  SIGTERM/SIGINT stop gracefully: the
// daemon finishes its current window barrier, tells its peers, writes a
// final status snapshot and exits 0.  Protocol aborts (peer death,
// barrier timeout, config-hash split brain) exit 1.
//
// Fleets are normally launched by precinct_ctl, which builds the address
// plan and collects the per-domain status files.
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/config_io.hpp"
#include "transport/node_daemon.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int /*signum*/) { g_stop = 1; }

std::vector<precinct::transport::UdpAddress> parse_peers(
    const std::string& csv) {
  std::vector<precinct::transport::UdpAddress> out;
  std::size_t begin = 0;
  while (begin <= csv.size()) {
    std::size_t end = csv.find(',', begin);
    if (end == std::string::npos) end = csv.size();
    const std::string item = csv.substr(begin, end - begin);
    if (!item.empty()) {
      out.push_back(precinct::transport::parse_address(item));
    }
    begin = end + 1;
  }
  return out;
}

void print_help() {
  std::cout <<
      R"(precinct_node — one domain of a world-sharded PReCinCt run over UDP

  --config FILE   key=value scenario file (the WHOLE fleet's config; every
                  member must load an identical file — a config-hash
                  handshake enforces it)
  --domain N      which region-column domain this process hosts
  --peers LIST    comma-separated host:port per domain, in domain order
                  (this process binds its own entry)
  --status FILE   periodic JSON status snapshots (atomic tmp+rename);
                  the final snapshot carries the metrics fingerprint
  --help          this text

Pacing, retry/timeout and status cadence come from the config's
transport_* keys (see examples/scenario.conf.example).  SIGTERM drains
gracefully.  Exit 0 on a completed or cleanly stopped run, 1 on error.
)";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace precinct;
  std::string config_path;
  std::string peers_csv;
  std::string status_path;
  long domain = -1;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto need = [&]() -> std::string {
        if (i + 1 >= argc) {
          throw std::invalid_argument(arg + " needs a value");
        }
        return argv[++i];
      };
      if (arg == "--help") {
        print_help();
        return 0;
      } else if (arg == "--config") {
        config_path = need();
      } else if (arg == "--domain") {
        domain = std::stol(need());
      } else if (arg == "--peers") {
        peers_csv = need();
      } else if (arg == "--status") {
        status_path = need();
      } else {
        throw std::invalid_argument("unknown argument: " + arg);
      }
    }
    if (config_path.empty() || domain < 0 || peers_csv.empty()) {
      throw std::invalid_argument(
          "--config, --domain and --peers are required");
    }
  } catch (const std::exception& e) {
    std::cerr << "precinct_node: " << e.what() << " (try --help)\n";
    return 2;
  }

  try {
    transport::NodeDaemon::Options opts;
    opts.config = core::config_from_file(config_path);
    opts.domain = static_cast<std::uint32_t>(domain);
    opts.peers = parse_peers(peers_csv);
    opts.status_path = status_path;

    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);

    transport::NodeDaemon daemon(opts);
    try {
      // Both outcomes (ran to the horizon / drained after a stop signal)
      // are clean exits; only protocol errors reach the catch below.
      (void)daemon.run([] { return g_stop != 0; });
      return 0;
    } catch (const std::exception& e) {
      daemon.abort(e.what());
      std::cerr << "precinct_node[" << domain << "]: " << e.what() << '\n';
      return 1;
    }
  } catch (const std::exception& e) {
    std::cerr << "precinct_node: " << e.what() << '\n';
    return 1;
  }
}
