// Quickstart: run one PReCinCt scenario with the paper's default
// parameters and print what the network did.
//
//   ./quickstart [n_nodes] [seed]
//
// This is the smallest complete use of the public API: fill a
// PrecinctConfig, run a Scenario, read the Metrics.
#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/scenario.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using precinct::support::Table;

  precinct::core::PrecinctConfig config;
  config.n_nodes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 80;
  config.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;
  config.v_max = 6.0;             // paper Fig 4/5 mobility
  config.cache_fraction = 0.02;   // 2 % of the database per peer
  config.cache_policy = "gd-ld";
  config.warmup_s = 150.0;
  config.measure_s = 600.0;
  config.sample_interval_s = 20.0;  // for the convergence sparklines

  std::cout << "PReCinCt quickstart: " << config.n_nodes << " nodes, "
            << config.regions_x * config.regions_y << " regions, "
            << config.catalog.n_items << " items, policy "
            << config.cache_policy << "\n\n";

  const precinct::core::Metrics m = precinct::core::run_scenario(config);

  Table table({"metric", "value"});
  table.add_row({"requests issued", std::to_string(m.requests_issued)});
  table.add_row({"requests completed", std::to_string(m.requests_completed)});
  table.add_row({"requests failed", std::to_string(m.requests_failed)});
  table.add_row({"own-cache hits", std::to_string(m.own_cache_hits)});
  table.add_row({"regional hits", std::to_string(m.regional_hits)});
  table.add_row({"en-route hits", std::to_string(m.en_route_hits)});
  table.add_row({"home-region hits", std::to_string(m.home_region_hits)});
  table.add_row({"replica hits", std::to_string(m.replica_hits)});
  table.add_row({"success ratio", Table::num(m.success_ratio(), 3)});
  table.add_row({"avg latency (s)", Table::num(m.avg_latency_s(), 4)});
  table.add_row({"byte hit ratio", Table::num(m.byte_hit_ratio(), 3)});
  table.add_row({"energy/request (mJ)",
                 Table::num(m.energy_per_request_mj(), 2)});
  table.add_row({"messages sent", std::to_string(m.messages_sent)});
  table.add_row({"custody handoffs", std::to_string(m.custody_handoffs)});
  table.add_row({"sim events", std::to_string(m.events_executed)});
  table.print(std::cout);

  if (!m.timeline.empty()) {
    std::vector<double> hit_series;
    std::vector<double> latency_series;
    for (const auto& sample : m.timeline) {
      hit_series.push_back(sample.hit_ratio);
      latency_series.push_back(sample.avg_latency_s);
    }
    std::cout << "\nconvergence over the measurement window ("
              << m.timeline.size() << " samples):\n"
              << "  hit ratio  [" << precinct::support::sparkline(hit_series)
              << "]  " << Table::num(hit_series.front(), 3) << " -> "
              << Table::num(hit_series.back(), 3) << "\n"
              << "  latency    ["
              << precinct::support::sparkline(latency_series) << "]  "
              << Table::num(latency_series.front(), 3) << "s -> "
              << Table::num(latency_series.back(), 3) << "s\n";
  }
  return 0;
}
