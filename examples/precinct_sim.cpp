// precinct_sim — command-line front end over the full configuration
// surface.  Runs one scenario (or several seeded replications) and prints
// a metrics table, or a single CSV row for scripting sweeps.
//
//   ./precinct_sim --nodes 80 --policy gd-ld --cache 0.02
//   ./precinct_sim --consistency push-adaptive-pull --updates
//                  --update-interval 60 --seeds 4 --csv   (one shell line)
//
// Run with --help for the full flag list.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/config_io.hpp"
#include "core/pack.hpp"
#include "core/scenario.hpp"
#include "core/world_scenario.hpp"
#include "support/json.hpp"
#include "support/table.hpp"

namespace {

using precinct::core::PrecinctConfig;

void print_help() {
  std::cout <<
      R"(precinct_sim — PReCinCt MP2P cooperative caching simulator

topology
  --nodes N            peers in the network               (default 80)
  --area METERS        square side length                 (default 1200)
  --regions K          KxK region grid                    (default 3)
  --range METERS       radio range                        (default 250)

mobility
  --mobility MODEL     random-waypoint | random-direction |
                       gauss-markov | manhattan | commuter |
                       static                             (default random-waypoint)
  --speed-max M_S      maximum node speed                 (default 6)
  --pause S            pause between movement legs        (default 5)
                       (manhattan street_spacing/turn_prob and commuter
                       commuter_period/commuter_hubs are config-file keys)

heterogeneous fleets (config-file only)
  class.<name>.count   nodes in the class (counts sum to the fleet size)
  class.<name>.cache_kb  per-peer cache KiB (0 = cache_fraction sizing)
  class.<name>.speed   class speed cap (0 = scenario v_min/v_max)
  class.<name>.fixed   true = static roadside unit (custody anchor)

workload
  --items N            data items in the catalog          (default 1000)
  --request-interval S mean seconds between requests      (default 30)
  --zipf THETA         popularity skew                    (default 0.8)
                       (flash-crowd keys rate_multiplier, zipf_drift,
                       zipf_drift_step, hotspot_interval, hotspot_shift
                       are config-file keys)

caching
  --policy NAME        gd-ld | gd-size | lru | lfu        (default gd-ld)
  --cache FRACTION     dynamic cache as fraction of DB    (default 0.02)

consistency
  --consistency MODE   none | plain-push | pull-every-time |
                       push-adaptive-pull                 (default none)
  --updates            enable the update workload
  --update-interval S  mean seconds between updates       (default 30)
  --ttr-alpha A        TTR EWMA weight (Eq. 2)            (default 0.5)

retrieval & fault tolerance
  --retrieval NAME     precinct | flooding | expanding-ring (default precinct)
  --replicas K         replica regions per key            (default 1)
  --retries N          remote-lookup retransmissions (exponential
                       backoff) before replica fallback   (default 0)
  --crash-rate R       node crashes per second            (default 0)
  --dynamic-regions    enable runtime region rebalancing

channel (fault injection)
  --channel NAME       perfect | bernoulli | distance |
                       gilbert-elliott | scripted         (default perfect)
  --loss P             bernoulli per-frame loss probability (default 0)
                       (the remaining channel knobs — edge_start, edge_loss,
                       ge_enter_burst, ge_burst_frames, ge_loss_good,
                       ge_loss_bad, blackout — are config-file keys; see
                       examples/scenario.conf.example)

correctness harness
  --check CATS         runtime invariant auditing: all, or a comma list of
                       net,cache,custody,pending,consistency,energy
                       (observe-only; aborts on the first violation)
  --check-stride N     audit every N executed events    (default 64)

scenario packs
  --pack NAME          load examples/packs/NAME.conf as the scenario
                       (flags still override); an unknown NAME lists the
                       installed packs
  --packs              list installed packs and exit
  --fingerprint        print the run's metrics fingerprint (world
                       fingerprint in world-sharded mode) instead of the
                       table
  --golden-check       run the pack at full and reduced scale and diff
                       both fingerprints against NAME.golden (exit 1 on
                       drift)
  --write-golden       regenerate NAME.golden from this build (do this
                       deliberately, with a PR explaining why)
  --world K            force world-sharded execution with K workers, even
                       K = 1 (the pack K-invariance gate diffs
                       --world 1/2/4 fingerprints)

run control
  --config FILE        key=value scenario file (flags override it; see
                       examples/scenario.conf.example)
  --shards K           parallel workers; with the default 1x1 tile grid,
                       K > 1 world-shards the run (one world cut into
                       region-column domains with real radio traffic
                       across the cut; results are byte-identical for
                       any K)                             (default 1)
                       a `tiles = K` config key selects the other sharded
                       mode instead: a KxK grid of independent tile worlds
                       coupled only by gateway traffic (gateway_latency,
                       gateway_interval config keys)
  --warmup S           warm-up before measuring           (default 150)
  --measure S          measurement window                 (default 900)
  --seed N             base RNG seed                      (default 1)
  --seeds N            replications (merged)              (default 1)
  --csv                one CSV row (with header) instead of the table
  --json               one JSON object instead of the table
  --trace N|CATS       after the run, print the last N trace events, or —
                       given a comma-separated category list (radio,
                       protocol, cache, consistency, custody, region,
                       channel) — every retained event in those categories
  --help               this text

config-file-only keys (no flag; see examples/scenario.conf.example)
  workload_script      deterministic `<t> request|update <node> <rank>`
                       events layered on the Poisson generators — the same
                       file drives in-sim runs and UDP fleets identically
  transport_*          real-transport fleet knobs (base_port, pace,
                       speedup, status_interval, retry, timeout, linger)
                       read by precinct_node / precinct_ctl; the sim
                       ignores them, so one file can describe both runs
)";
}

class ArgParser {
 public:
  ArgParser(int argc, char** argv) : args_(argv + 1, argv + argc) {}

  [[nodiscard]] bool flag(const std::string& name) {
    for (auto it = args_.begin(); it != args_.end(); ++it) {
      if (*it == name) {
        args_.erase(it);
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] std::string value(const std::string& name,
                                  const std::string& fallback) {
    for (auto it = args_.begin(); it != args_.end(); ++it) {
      if (*it == name) {
        if (std::next(it) == args_.end()) {
          throw std::invalid_argument(name + " needs a value");
        }
        const std::string v = *std::next(it);
        args_.erase(it, std::next(it, 2));
        return v;
      }
    }
    return fallback;
  }

  [[nodiscard]] double number(const std::string& name, double fallback) {
    const std::string v = value(name, "");
    return v.empty() ? fallback : std::stod(v);
  }

  [[nodiscard]] const std::vector<std::string>& leftover() const {
    return args_;
  }

 private:
  std::vector<std::string> args_;
};

precinct::core::RetrievalKind retrieval_from(const std::string& name) {
  if (name == "precinct") return precinct::core::RetrievalKind::kPrecinct;
  if (name == "flooding") return precinct::core::RetrievalKind::kFlooding;
  if (name == "expanding-ring") {
    return precinct::core::RetrievalKind::kExpandingRing;
  }
  throw std::invalid_argument("unknown retrieval scheme: " + name);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Both golden sections for a pack scenario: the configured scale and
/// the reduced_for_test() scale the unit suite runs.
precinct::core::PackGolden compute_golden(const PrecinctConfig& c) {
  precinct::core::PackGolden golden;
  golden.full = precinct::core::fingerprint(precinct::core::run_scenario(c));
  golden.reduced = precinct::core::fingerprint(
      precinct::core::run_scenario(precinct::core::reduced_for_test(c)));
  return golden;
}

/// Line-by-line mismatch report for a drifted golden section.
void report_drift(const std::string& section, const std::string& expected,
                  const std::string& actual) {
  std::cerr << "pack golden drift in [" << section << "]:\n";
  std::istringstream want(expected);
  std::istringstream got(actual);
  std::string w;
  std::string g;
  while (true) {
    const bool have_w = static_cast<bool>(std::getline(want, w));
    const bool have_g = static_cast<bool>(std::getline(got, g));
    if (!have_w && !have_g) break;
    if (!have_w) w.clear();
    if (!have_g) g.clear();
    if (w != g) {
      std::cerr << "  expected: " << w << "\n  actual:   " << g << "\n";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace precinct;
  try {
    ArgParser args(argc, argv);
    if (args.flag("--help")) {
      print_help();
      return 0;
    }
    if (args.flag("--packs")) {
      for (const std::string& name : core::list_packs()) {
        std::cout << name << '\n';
      }
      return 0;
    }

    PrecinctConfig c;
    std::string pack_name = args.value("--pack", "");
    core::ScenarioPack pack;
    if (!pack_name.empty()) {
      pack = core::load_pack(pack_name);
      c = pack.config;
    } else if (const std::string path = args.value("--config", "");
               !path.empty()) {
      c = core::config_from_file(path);
    }
    c.n_nodes = static_cast<std::size_t>(
        args.number("--nodes", static_cast<double>(c.n_nodes)));
    const double side = args.number("--area", c.area.width());
    c.area = {{0.0, 0.0}, {side, side}};
    const auto k = static_cast<std::uint32_t>(args.number("--regions", c.regions_x));
    c.regions_x = c.regions_y = k;
    c.wireless.range_m = args.number("--range", c.wireless.range_m);
    c.mobility_model = args.value("--mobility", c.mobility_model);
    c.mobile = c.mobility_model != "static";
    c.v_max = args.number("--speed-max", c.v_max);
    c.pause_s = args.number("--pause", c.pause_s);
    c.catalog.n_items =
        static_cast<std::size_t>(args.number("--items", static_cast<double>(c.catalog.n_items)));
    c.mean_request_interval_s = args.number("--request-interval", c.mean_request_interval_s);
    c.zipf_theta = args.number("--zipf", c.zipf_theta);
    c.cache_policy = args.value("--policy", c.cache_policy);
    c.cache_fraction = args.number("--cache", c.cache_fraction);
    c.consistency =
        consistency::mode_from_string(args.value("--consistency", to_string(c.consistency)));
    c.updates_enabled = args.flag("--updates") || c.updates_enabled ||
                        c.consistency != consistency::Mode::kNone;
    c.mean_update_interval_s = args.number("--update-interval", c.mean_update_interval_s);
    c.ttr_alpha = args.number("--ttr-alpha", c.ttr_alpha);
    c.retrieval = retrieval_from(args.value("--retrieval", to_string(c.retrieval)));
    c.replica_count = static_cast<std::size_t>(args.number("--replicas", static_cast<double>(c.replica_count)));
    c.request_retries = static_cast<int>(
        args.number("--retries", static_cast<double>(c.request_retries)));
    c.wireless.channel.model =
        args.value("--channel", c.wireless.channel.model);
    c.wireless.channel.loss_p = args.number("--loss", c.wireless.channel.loss_p);
    c.crash_rate_per_s = args.number("--crash-rate", c.crash_rate_per_s);
    c.check = args.value("--check", c.check);
    c.check_stride = static_cast<std::uint64_t>(args.number(
        "--check-stride", static_cast<double>(c.check_stride)));
    c.dynamic_regions = args.flag("--dynamic-regions") || c.dynamic_regions;
    c.shards = static_cast<std::uint32_t>(
        args.number("--shards", static_cast<double>(c.shards)));
    c.warmup_s = args.number("--warmup", c.warmup_s);
    c.measure_s = args.number("--measure", c.measure_s);
    c.seed = static_cast<std::uint64_t>(args.number("--seed", static_cast<double>(c.seed)));
    const auto seeds = static_cast<std::size_t>(args.number("--seeds", 1));
    const bool csv = args.flag("--csv");
    const bool json = args.flag("--json");
    const bool print_fingerprint = args.flag("--fingerprint");
    const bool golden_check = args.flag("--golden-check");
    const bool write_golden = args.flag("--write-golden");
    const auto world_k =
        static_cast<std::uint32_t>(args.number("--world", 0));
    if (world_k > 0) c.shards = world_k;
    // --trace takes either a count ("--trace 50": last 50 events, all
    // categories) or a category list ("--trace channel,protocol": every
    // retained event in just those categories).
    const std::string trace_arg = args.value("--trace", "");
    std::size_t trace_n = 0;
    std::vector<sim::TraceCategory> trace_cats;
    if (!trace_arg.empty()) {
      if (trace_arg.find_first_not_of("0123456789") == std::string::npos) {
        trace_n = static_cast<std::size_t>(std::stoull(trace_arg));
      } else {
        std::size_t begin = 0;
        while (begin <= trace_arg.size()) {
          std::size_t end = trace_arg.find(',', begin);
          if (end == std::string::npos) end = trace_arg.size();
          const std::string name = trace_arg.substr(begin, end - begin);
          const auto category = sim::category_from_string(name);
          if (!category.has_value()) {
            throw std::invalid_argument("unknown trace category '" + name +
                                        "'");
          }
          trace_cats.push_back(*category);
          begin = end + 1;
        }
      }
    }

    if (!args.leftover().empty()) {
      std::cerr << "unknown argument: " << args.leftover().front()
                << " (try --help)\n";
      return 2;
    }

    // Golden maintenance runs both scales at shards = 1: the golden file
    // pins the plain fingerprint; K-invariance is gated separately by
    // diffing --world 1/2/4 fingerprints.
    if (golden_check || write_golden) {
      if (pack_name.empty()) {
        throw std::invalid_argument(
            "--golden-check/--write-golden need --pack NAME");
      }
      const core::PackGolden actual = compute_golden(c);
      if (write_golden) {
        const std::string text = core::render_golden(pack_name, actual);
        std::ofstream out(pack.golden_path, std::ios::binary);
        if (!out.write(text.data(),
                       static_cast<std::streamsize>(text.size()))) {
          throw std::runtime_error("cannot write '" + pack.golden_path + "'");
        }
        std::cout << "wrote " << pack.golden_path << '\n';
        return 0;
      }
      const core::PackGolden expected =
          core::parse_golden(read_file(pack.golden_path));
      bool ok = true;
      if (expected.full != actual.full) {
        report_drift("full", expected.full, actual.full);
        ok = false;
      }
      if (expected.reduced != actual.reduced) {
        report_drift("reduced", expected.reduced, actual.reduced);
        ok = false;
      }
      if (!ok) return 1;
      std::cout << "pack '" << pack_name << "' golden ok\n";
      return 0;
    }

    const bool world_sharded =
        world_k > 0 || (c.shards > 1 && c.tiles_x == 1 && c.tiles_y == 1);
    if (print_fingerprint) {
      // Fingerprints are single-run by definition (the determinism gates
      // diff them byte-for-byte).
      if (seeds > 1) {
        throw std::invalid_argument("--fingerprint needs --seeds 1");
      }
      if (world_sharded) {
        std::cout << core::world_fingerprint(core::run_world_scenario(c));
      } else {
        std::cout << core::fingerprint(core::run_scenario(c));
      }
      return 0;
    }
    core::Metrics m;
    if (world_sharded) {
      // World sharding cuts ONE world into region-column domains; tracing
      // is a plain-scenario feature (a single event loop to observe).
      if (trace_n > 0 || !trace_cats.empty()) {
        throw std::invalid_argument(
            "--trace needs a single-threaded run; drop --shards");
      }
      std::vector<core::Metrics> runs;
      const std::uint64_t base_seed = c.seed;
      for (std::size_t i = 0; i < std::max<std::size_t>(1, seeds); ++i) {
        PrecinctConfig replication = c;
        replication.seed = base_seed + i;
        runs.push_back(core::run_world_scenario(replication).aggregate);
      }
      m = core::merge_metrics(runs);
    } else if (trace_n > 0 || !trace_cats.empty()) {
      // Tracing implies a single (seeded) run.
      core::Scenario scenario(c);
      auto& tracer =
          scenario.enable_tracing(trace_n > 0 ? trace_n : std::size_t{4096});
      if (!trace_cats.empty()) {
        tracer.disable_all();
        for (const sim::TraceCategory category : trace_cats) {
          tracer.enable(category);
        }
      }
      m = scenario.run();
      if (trace_n > 0) {
        std::cerr << "--- last " << trace_n << " trace events ---\n";
        for (const auto& e : tracer.last(trace_n)) {
          std::cerr << '[' << e.time_s << "s] " << sim::to_string(e.category)
                    << " node " << e.node << ": " << e.message << "\n";
        }
      } else {
        std::cerr << "--- trace (" << trace_arg << ") ---\n";
        tracer.dump(std::cerr);
      }
    } else {
      m = core::merge_metrics(
          core::run_seeds(c, std::max<std::size_t>(1, seeds)));
    }

    if (json) {
      support::JsonObject out;
      out.set("nodes", static_cast<std::uint64_t>(c.n_nodes))
          .set("policy", c.cache_policy)
          .set("consistency", std::string(to_string(c.consistency)))
          .set("retrieval", std::string(to_string(c.retrieval)))
          .set("channel", c.wireless.channel.model)
          .set("cache_fraction", c.cache_fraction)
          .set("requests_issued", m.requests_issued)
          .set("requests_completed", m.requests_completed)
          .set("requests_failed", m.requests_failed)
          .set("success_ratio", m.success_ratio())
          .set("avg_latency_s", m.avg_latency_s())
          .set("p95_latency_s",
               m.latency_q.quantile(0.95))
          .set("byte_hit_ratio", m.byte_hit_ratio())
          .set("false_hit_ratio", m.false_hit_ratio())
          .set("energy_per_request_mj", m.energy_per_request_mj())
          .set("energy_broadcast_mj", m.energy_broadcast_mj)
          .set("energy_p2p_mj", m.energy_p2p_mj)
          .set("energy_channel_discard_mj", m.energy_channel_discard_mj)
          .set("consistency_messages", m.consistency_messages)
          .set("messages_sent", m.messages_sent)
          .set("frames_lost", m.frames_lost)
          .set("frames_dropped_by_channel", m.frames_dropped_by_channel)
          .set("retransmissions", m.retransmissions)
          .set("duplicate_responses_suppressed",
               m.duplicate_responses_suppressed)
          .set("custody_handoffs", m.custody_handoffs);
      std::cout << out.str(/*pretty=*/true) << '\n';
      return 0;
    }
    if (csv) {
      std::cout << "nodes,policy,consistency,retrieval,cache_fraction,"
                   "requests,completed,failed,success_ratio,avg_latency_s,"
                   "byte_hit_ratio,false_hit_ratio,energy_per_request_mj,"
                   "consistency_msgs,messages\n";
      std::cout << c.n_nodes << ',' << c.cache_policy << ','
                << to_string(c.consistency) << ',' << to_string(c.retrieval)
                << ',' << c.cache_fraction << ',' << m.requests_issued << ','
                << m.requests_completed << ',' << m.requests_failed << ','
                << m.success_ratio() << ',' << m.avg_latency_s() << ','
                << m.byte_hit_ratio() << ',' << m.false_hit_ratio() << ','
                << m.energy_per_request_mj() << ',' << m.consistency_messages
                << ',' << m.messages_sent << '\n';
      return 0;
    }

    support::Table table({"metric", "value"});
    table.add_row({"requests issued", std::to_string(m.requests_issued)});
    table.add_row({"requests completed", std::to_string(m.requests_completed)});
    table.add_row({"success ratio", support::Table::num(m.success_ratio(), 4)});
    table.add_row({"avg latency (s)", support::Table::num(m.avg_latency_s(), 4)});
    table.add_row({"byte hit ratio", support::Table::num(m.byte_hit_ratio(), 4)});
    table.add_row({"own / regional / en-route hits",
                   std::to_string(m.own_cache_hits) + " / " +
                       std::to_string(m.regional_hits) + " / " +
                       std::to_string(m.en_route_hits)});
    table.add_row({"home / replica hits",
                   std::to_string(m.home_region_hits) + " / " +
                       std::to_string(m.replica_hits)});
    table.add_row({"false hit ratio",
                   support::Table::num(m.false_hit_ratio(), 5)});
    table.add_row({"polls sent", std::to_string(m.polls_sent)});
    table.add_row({"consistency messages",
                   std::to_string(m.consistency_messages)});
    table.add_row({"energy/request (mJ)",
                   support::Table::num(m.energy_per_request_mj(), 2)});
    table.add_row({"messages sent", std::to_string(m.messages_sent)});
    if (m.frames_dropped_by_channel > 0 || m.retransmissions > 0) {
      table.add_row({"channel drops (" + c.wireless.channel.model + ")",
                     std::to_string(m.frames_dropped_by_channel)});
      table.add_row({"retransmissions", std::to_string(m.retransmissions)});
      table.add_row({"duplicate responses suppressed",
                     std::to_string(m.duplicate_responses_suppressed)});
    }
    table.add_row({"custody handoffs", std::to_string(m.custody_handoffs)});
    table.print(std::cout);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << " (try --help)\n";
    return 2;
  }
}
