// Disaster recovery: first responders share situation reports over an
// ad-hoc network while devices fail (battery, damage) and teams move
// fast.  Exercises PReCinCt's fault-tolerance story (§2.4): replica
// regions, custody handoff on graceful exit, and home-region failure
// rerouting — with and without replication.
//
//   ./disaster_recovery [seed]
#include <cstdlib>
#include <iostream>

#include "core/scenario.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace precinct;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 23;

  core::PrecinctConfig base;
  base.area = {{0, 0}, {800, 800}};   // incident zone
  base.n_nodes = 70;                  // responders' radios
  base.v_min = 1.0;
  base.v_max = 10.0;                  // running / vehicles
  base.pause_s = 20.0;
  base.catalog.n_items = 300;         // maps, triage lists, status reports
  base.catalog.min_item_bytes = 1024;
  base.catalog.max_item_bytes = 4096;
  base.mean_request_interval_s = 10.0;  // constant coordination traffic
  base.cache_fraction = 0.08;
  base.graceful_fraction = 0.3;  // most failures are sudden out here
  base.warmup_s = 60.0;
  base.measure_s = 400.0;
  base.seed = seed;

  std::cout << "Disaster recovery: " << base.n_nodes
            << " responders, devices failing mid-operation\n\n";

  support::Table table({"crash rate (/s)", "replication", "success ratio",
                        "replica hits", "handoffs", "latency (s)"});
  for (const double crash_rate : {0.0, 0.03, 0.08}) {
    for (const std::size_t replicas : {std::size_t{1}, std::size_t{0}}) {
      auto c = base;
      c.crash_rate_per_s = crash_rate;
      c.replica_count = replicas;
      const auto m = core::run_scenario(c);
      table.add_row({support::Table::num(crash_rate, 2),
                     replicas > 0 ? "on" : "off",
                     support::Table::num(m.success_ratio(), 4),
                     std::to_string(m.replica_hits),
                     std::to_string(m.custody_handoffs),
                     support::Table::num(m.avg_latency_s(), 4)});
    }
  }
  table.print(std::cout);
  std::cout << "\nWith replica regions (§2.4), requests reroute to the "
               "second-nearest region when\nthe home region fails; the "
               "success-ratio gap quantifies what that buys.\n";
  return 0;
}
