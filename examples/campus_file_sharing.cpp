// Campus file sharing: the classic MP2P motivation — students' devices
// share a corpus of lecture files while walking around campus.  Mostly
// read-only workload with a skewed (Zipf) popularity profile; compares
// the paper's GD-LD replacement against GD-Size, LRU and LFU on the
// same trace.
//
//   ./campus_file_sharing [seed]
#include <cstdlib>
#include <iostream>

#include "core/scenario.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace precinct;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  core::PrecinctConfig base;
  base.area = {{0, 0}, {1000, 1000}};     // a campus quad
  base.n_nodes = 100;                     // students with phones
  base.v_max = 2.0;                       // walking speed
  base.pause_s = 30.0;                    // lingering between classes
  base.catalog.n_items = 2000;            // lecture notes, slides, clips
  base.catalog.min_item_bytes = 2048;
  base.catalog.max_item_bytes = 8192;
  base.zipf_theta = 0.9;                  // this week's material is hot
  base.mean_request_interval_s = 8.0;   // heavy browsing between classes
  base.cache_fraction = 0.005;
  base.warmup_s = 120.0;
  base.measure_s = 600.0;
  base.seed = seed;

  std::cout << "Campus file sharing: " << base.n_nodes
            << " students, " << base.catalog.n_items
            << " files, comparing replacement policies\n\n";

  support::Table table({"policy", "byte hit ratio", "latency (s)",
                        "success", "energy/req (mJ)"});
  for (const char* policy : {"gd-ld", "gd-size", "lru", "lfu"}) {
    auto c = base;
    c.cache_policy = policy;
    const auto m = core::run_scenario(c);
    table.add_row({policy, support::Table::num(m.byte_hit_ratio(), 4),
                   support::Table::num(m.avg_latency_s(), 4),
                   support::Table::num(m.success_ratio(), 3),
                   support::Table::num(m.energy_per_request_mj(), 1)});
  }
  table.print(std::cout);
  std::cout << "\nGD-LD weighs popularity, origin distance and size "
               "(paper Eq. 1); on skewed\nworkloads it should lead the "
               "byte-hit-ratio column.\n";
  return 0;
}
