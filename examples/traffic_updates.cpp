// Vehicular traffic updates: dynamic data in an MP2P network.  Vehicles
// cache road-segment congestion reports that are continuously updated,
// so cache consistency is the whole game.  Compares the three schemes
// of paper §4 on the same workload and reports the freshness/overhead
// trade-off.
//
//   ./traffic_updates [seed]
#include <cstdlib>
#include <iostream>

#include "core/scenario.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace precinct;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 11;

  core::PrecinctConfig base;
  base.area = {{0, 0}, {1500, 1500}};  // a downtown grid
  base.n_nodes = 90;                   // vehicles
  base.v_min = 3.0;
  base.v_max = 15.0;                   // city driving
  base.pause_s = 10.0;                 // red lights
  base.catalog.n_items = 600;          // road segments
  base.catalog.min_item_bytes = 256;   // small congestion reports
  base.catalog.max_item_bytes = 512;
  base.mean_request_interval_s = 15.0;  // navigation queries
  base.mean_update_interval_s = 45.0;   // sensors report
  base.updates_enabled = true;
  base.cache_fraction = 0.05;
  base.warmup_s = 100.0;
  base.measure_s = 500.0;
  base.seed = seed;

  std::cout << "Vehicular traffic updates: " << base.n_nodes
            << " vehicles, " << base.catalog.n_items
            << " road segments, live updates\n\n";

  support::Table table({"consistency scheme", "stale serves (FHR)",
                        "consistency msgs", "polls", "latency (s)"});
  for (const auto mode :
       {consistency::Mode::kPlainPush, consistency::Mode::kPullEveryTime,
        consistency::Mode::kPushAdaptivePull}) {
    auto c = base;
    c.consistency = mode;
    const auto m = core::run_scenario(c);
    table.add_row({to_string(mode),
                   support::Table::num(m.false_hit_ratio(), 5),
                   std::to_string(m.consistency_messages),
                   std::to_string(m.polls_sent),
                   support::Table::num(m.avg_latency_s(), 4)});
  }
  table.print(std::cout);
  std::cout
      << "\nPush-with-Adaptive-Pull (paper §4) trades a small stale-serve "
         "window (bounded by\nthe per-item TTR, Eq. 2) for far fewer "
         "messages than flooded invalidations and\nfewer polls than "
         "validate-on-every-read.\n";
  return 0;
}
