// Determinism fingerprint: runs a spread of fixed-seed scenarios and
// prints every Metrics field with full precision (via
// core::fingerprint, the same rendering the scenario fuzzer compares
// through).  Diff the output of two builds to prove a change is
// metrics-identical (the bar every performance PR must clear — see
// DESIGN.md §7).
//
// All fields except the last are workload-observable and must match
// byte-for-byte across any behaviour-preserving change.
// `events_executed` is a scheduling-efficiency diagnostic: a change that
// batches or elides simulator events (e.g. fan-out batching) legitimately
// lowers it without touching protocol behaviour.
//
// Usage: metrics_fingerprint [> fingerprint.txt]
#include <cstdio>

#include "core/scenario.hpp"

namespace {

using namespace precinct;
using core::Metrics;
using core::PrecinctConfig;

void dump(const char* name, const Metrics& m) {
  std::printf("[%s]\n%s\n", name, core::fingerprint(m).c_str());
}

PrecinctConfig base(std::uint64_t seed) {
  PrecinctConfig c;
  c.n_nodes = 60;
  c.warmup_s = 60;
  c.measure_s = 240;
  c.seed = seed;
  return c;
}

}  // namespace

int main() {
  {
    // Default PReCinCt stack under mobility.
    dump("precinct_mobile_s7", core::run_scenario(base(7)));
  }
  {
    // Flooding baseline: the heaviest broadcast fan-out workload.
    auto c = base(11);
    c.retrieval = core::RetrievalKind::kFlooding;
    c.measure_s = 150;
    dump("flooding_s11", core::run_scenario(c));
  }
  {
    // Expanding-ring baseline (repeated scoped floods).
    auto c = base(13);
    c.retrieval = core::RetrievalKind::kExpandingRing;
    c.measure_s = 150;
    dump("ring_s13", core::run_scenario(c));
  }
  {
    // Consistency: pushes, polls, acks over geographic routing.
    auto c = base(17);
    c.updates_enabled = true;
    c.consistency = consistency::Mode::kPushAdaptivePull;
    c.mean_update_interval_s = 45.0;
    dump("adaptive_pull_s17", core::run_scenario(c));
  }
  {
    // Plain-Push: network-wide invalidation floods.
    auto c = base(19);
    c.updates_enabled = true;
    c.consistency = consistency::Mode::kPlainPush;
    c.mean_update_interval_s = 45.0;
    c.measure_s = 150;
    dump("plain_push_s19", core::run_scenario(c));
  }
  {
    // Churn + dynamic regions: custody handoffs, kills, revives,
    // region-table dissemination floods.
    auto c = base(23);
    c.dynamic_regions = true;
    c.crash_rate_per_s = 0.02;
    c.join_rate_per_s = 0.02;
    c.graceful_fraction = 0.5;
    dump("churn_dynamic_s23", core::run_scenario(c));
  }
  {
    // Large static network: spatial grid index on (>=128 nodes).
    auto c = base(29);
    c.n_nodes = 160;
    c.area = {{0, 0}, {1800, 1800}};
    c.regions_x = c.regions_y = 4;
    c.measure_s = 120;
    dump("large_grid_s29", core::run_scenario(c));
  }
  {
    // Lossy channel (memoryless): heavy uniform frame erasure with the
    // full retry/backoff recovery path exercised.
    auto c = base(31);
    c.wireless.channel.model = "bernoulli";
    c.wireless.channel.loss_p = 0.2;
    c.request_retries = 3;
    c.measure_s = 150;
    dump("bernoulli_loss_s31", core::run_scenario(c));
  }
  {
    // Lossy channel (bursty): Gilbert–Elliott good/bad state flips, so
    // losses cluster and retries collide with the burst.
    auto c = base(37);
    c.wireless.channel.model = "gilbert-elliott";
    c.request_retries = 2;
    c.measure_s = 150;
    dump("gilbert_elliott_s37", core::run_scenario(c));
  }
  return 0;
}
