// Determinism fingerprint: runs a spread of fixed-seed scenarios and
// prints every Metrics field with full precision.  Diff the output of two
// builds to prove a change is metrics-identical (the bar every
// performance PR must clear — see DESIGN.md §7).
//
// All fields except the last are workload-observable and must match
// byte-for-byte across any behaviour-preserving change.
// `events_executed` is a scheduling-efficiency diagnostic: a change that
// batches or elides simulator events (e.g. fan-out batching) legitimately
// lowers it without touching protocol behaviour.
//
// Usage: metrics_fingerprint [> fingerprint.txt]
#include <cinttypes>
#include <cstdio>

#include "core/scenario.hpp"

namespace {

using namespace precinct;
using core::Metrics;
using core::PrecinctConfig;

void dump(const char* name, const Metrics& m) {
  std::printf("[%s]\n", name);
  std::printf("requests_issued=%" PRIu64 "\n", m.requests_issued);
  std::printf("requests_completed=%" PRIu64 "\n", m.requests_completed);
  std::printf("requests_failed=%" PRIu64 "\n", m.requests_failed);
  std::printf("own_cache_hits=%" PRIu64 "\n", m.own_cache_hits);
  std::printf("regional_hits=%" PRIu64 "\n", m.regional_hits);
  std::printf("en_route_hits=%" PRIu64 "\n", m.en_route_hits);
  std::printf("home_region_hits=%" PRIu64 "\n", m.home_region_hits);
  std::printf("replica_hits=%" PRIu64 "\n", m.replica_hits);
  std::printf("latency_count=%zu\n", m.latency_s.count());
  std::printf("latency_sum=%a\n", m.latency_s.sum());
  std::printf("latency_min=%a\n", m.latency_s.min());
  std::printf("latency_max=%a\n", m.latency_s.max());
  std::printf("bytes_requested=%" PRIu64 "\n", m.bytes_requested);
  std::printf("bytes_hit=%" PRIu64 "\n", m.bytes_hit);
  std::printf("updates_initiated=%" PRIu64 "\n", m.updates_initiated);
  std::printf("cache_served_valid=%" PRIu64 "\n", m.cache_served_valid);
  std::printf("false_hits=%" PRIu64 "\n", m.false_hits);
  std::printf("polls_sent=%" PRIu64 "\n", m.polls_sent);
  std::printf("consistency_messages=%" PRIu64 "\n", m.consistency_messages);
  std::printf("energy_total_mj=%a\n", m.energy_total_mj);
  std::printf("energy_broadcast_mj=%a\n", m.energy_broadcast_mj);
  std::printf("energy_p2p_mj=%a\n", m.energy_p2p_mj);
  std::printf("messages_sent=%" PRIu64 "\n", m.messages_sent);
  std::printf("bytes_sent=%" PRIu64 "\n", m.bytes_sent);
  std::printf("frames_lost=%" PRIu64 "\n", m.frames_lost);
  std::printf("custody_handoffs=%" PRIu64 "\n", m.custody_handoffs);
  std::printf("events_executed=%" PRIu64 "\n", m.events_executed);
  std::printf("\n");
}

PrecinctConfig base(std::uint64_t seed) {
  PrecinctConfig c;
  c.n_nodes = 60;
  c.warmup_s = 60;
  c.measure_s = 240;
  c.seed = seed;
  return c;
}

}  // namespace

int main() {
  {
    // Default PReCinCt stack under mobility.
    dump("precinct_mobile_s7", core::run_scenario(base(7)));
  }
  {
    // Flooding baseline: the heaviest broadcast fan-out workload.
    auto c = base(11);
    c.retrieval = core::RetrievalKind::kFlooding;
    c.measure_s = 150;
    dump("flooding_s11", core::run_scenario(c));
  }
  {
    // Expanding-ring baseline (repeated scoped floods).
    auto c = base(13);
    c.retrieval = core::RetrievalKind::kExpandingRing;
    c.measure_s = 150;
    dump("ring_s13", core::run_scenario(c));
  }
  {
    // Consistency: pushes, polls, acks over geographic routing.
    auto c = base(17);
    c.updates_enabled = true;
    c.consistency = consistency::Mode::kPushAdaptivePull;
    c.mean_update_interval_s = 45.0;
    dump("adaptive_pull_s17", core::run_scenario(c));
  }
  {
    // Plain-Push: network-wide invalidation floods.
    auto c = base(19);
    c.updates_enabled = true;
    c.consistency = consistency::Mode::kPlainPush;
    c.mean_update_interval_s = 45.0;
    c.measure_s = 150;
    dump("plain_push_s19", core::run_scenario(c));
  }
  {
    // Churn + dynamic regions: custody handoffs, kills, revives,
    // region-table dissemination floods.
    auto c = base(23);
    c.dynamic_regions = true;
    c.crash_rate_per_s = 0.02;
    c.join_rate_per_s = 0.02;
    c.graceful_fraction = 0.5;
    dump("churn_dynamic_s23", core::run_scenario(c));
  }
  {
    // Large static network: spatial grid index on (>=128 nodes).
    auto c = base(29);
    c.n_nodes = 160;
    c.area = {{0, 0}, {1800, 1800}};
    c.regions_x = c.regions_y = 4;
    c.measure_s = 120;
    dump("large_grid_s29", core::run_scenario(c));
  }
  return 0;
}
