// Determinism fingerprint: runs a spread of fixed-seed scenarios and
// prints every Metrics field with full precision (via
// core::fingerprint, the same rendering the scenario fuzzer compares
// through).  Diff the output of two builds to prove a change is
// metrics-identical (the bar every performance PR must clear — see
// DESIGN.md §7).
//
// All fields except the last are workload-observable and must match
// byte-for-byte across any behaviour-preserving change.
// `events_executed` is a scheduling-efficiency diagnostic: a change that
// batches or elides simulator events (e.g. fan-out batching) legitimately
// lowers it without touching protocol behaviour.
//
// Usage: metrics_fingerprint [--shards K | --world K] [> fingerprint.txt]
//
// With --shards K every config is wrapped in a 2x2 tile world with
// gateway traffic and run through ShardedScenario on K worker shards
// (core::sharded_fingerprint rendering).  The output must be
// byte-identical for every K — diff K=1 against K in {2,4,8} to gate the
// parallel executor's determinism contract (DESIGN.md §11).
//
// With --world K every config runs as ONE world cut into region-column
// domains on K worker shards (WorldShardedScenario,
// core::world_fingerprint rendering — DESIGN.md §13): real radio frames
// cross the cut under a lookahead derived from the MAC/propagation
// timing.  Likewise byte-identical for every K, including K=1.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/scenario.hpp"
#include "core/sharded_scenario.hpp"
#include "core/world_scenario.hpp"

namespace {

using namespace precinct;
using core::Metrics;
using core::PrecinctConfig;

// 0 = classic single-area mode; > 0 = sharded tile-world mode.
std::uint32_t g_shards = 0;
// 0 = off; > 0 = world-sharded mode (one world, region-column domains).
std::uint32_t g_world = 0;

void dump(const char* name, const Metrics& m) {
  std::printf("[%s]\n%s\n", name, core::fingerprint(m).c_str());
}

/// Sharded mode: wrap the config in a 2x2 tile world (each tile a full
/// copy of the scenario, trimmed so 4x the work stays affordable) and
/// print the shard-count-invariant fingerprint.  World mode: run the
/// config as ONE world cut into region-column domains (gateway knobs
/// quiet — the lookahead is derived from the radio timing;
/// dynamic_regions is a global reconfiguration and cannot be sharded,
/// so churn configs keep their kills/revives but drop the rebalancer).
void run_config(const char* name, const PrecinctConfig& config) {
  if (g_world > 0) {
    PrecinctConfig c = config;
    c.shards = g_world;
    c.tiles_x = c.tiles_y = 1;
    c.gateway_interval_s = 0.0;
    c.gateway_latency_s = 0.0;
    c.dynamic_regions = false;
    if (c.warmup_s > 30.0) c.warmup_s = 30.0;
    if (c.measure_s > 90.0) c.measure_s = 90.0;
    std::printf("[%s]\n%s\n", name,
                core::world_fingerprint(core::run_world_scenario(c)).c_str());
    return;
  }
  if (g_shards == 0) {
    dump(name, core::run_scenario(config));
    return;
  }
  PrecinctConfig c = config;
  c.tiles_x = c.tiles_y = 2;
  c.shards = g_shards;
  c.gateway_interval_s = 5.0;
  c.gateway_latency_s = 0.25;
  if (c.warmup_s > 30.0) c.warmup_s = 30.0;
  if (c.measure_s > 90.0) c.measure_s = 90.0;
  std::printf("[%s]\n%s\n", name,
              core::sharded_fingerprint(core::run_sharded_scenario(c)).c_str());
}

PrecinctConfig base(std::uint64_t seed) {
  PrecinctConfig c;
  c.n_nodes = 60;
  c.warmup_s = 60;
  c.measure_s = 240;
  c.seed = seed;
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      g_shards = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--world") == 0 && i + 1 < argc) {
      g_world = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr, "usage: %s [--shards K | --world K]\n", argv[0]);
      return 2;
    }
  }
  if (g_shards > 0 && g_world > 0) {
    std::fprintf(stderr, "--shards (tiled) and --world are exclusive\n");
    return 2;
  }
  {
    // Default PReCinCt stack under mobility.
    run_config("precinct_mobile_s7", base(7));
  }
  {
    // Flooding baseline: the heaviest broadcast fan-out workload.
    auto c = base(11);
    c.retrieval = core::RetrievalKind::kFlooding;
    c.measure_s = 150;
    run_config("flooding_s11", c);
  }
  {
    // Expanding-ring baseline (repeated scoped floods).
    auto c = base(13);
    c.retrieval = core::RetrievalKind::kExpandingRing;
    c.measure_s = 150;
    run_config("ring_s13", c);
  }
  {
    // Consistency: pushes, polls, acks over geographic routing.
    auto c = base(17);
    c.updates_enabled = true;
    c.consistency = consistency::Mode::kPushAdaptivePull;
    c.mean_update_interval_s = 45.0;
    run_config("adaptive_pull_s17", c);
  }
  {
    // Plain-Push: network-wide invalidation floods.
    auto c = base(19);
    c.updates_enabled = true;
    c.consistency = consistency::Mode::kPlainPush;
    c.mean_update_interval_s = 45.0;
    c.measure_s = 150;
    run_config("plain_push_s19", c);
  }
  {
    // Churn + dynamic regions: custody handoffs, kills, revives,
    // region-table dissemination floods.
    auto c = base(23);
    c.dynamic_regions = true;
    c.crash_rate_per_s = 0.02;
    c.join_rate_per_s = 0.02;
    c.graceful_fraction = 0.5;
    run_config("churn_dynamic_s23", c);
  }
  {
    // Large static network: spatial grid index on (>=128 nodes).
    auto c = base(29);
    c.n_nodes = 160;
    c.area = {{0, 0}, {1800, 1800}};
    c.regions_x = c.regions_y = 4;
    c.measure_s = 120;
    run_config("large_grid_s29", c);
  }
  {
    // Lossy channel (memoryless): heavy uniform frame erasure with the
    // full retry/backoff recovery path exercised.
    auto c = base(31);
    c.wireless.channel.model = "bernoulli";
    c.wireless.channel.loss_p = 0.2;
    c.request_retries = 3;
    c.measure_s = 150;
    run_config("bernoulli_loss_s31", c);
  }
  {
    // Lossy channel (bursty): Gilbert–Elliott good/bad state flips, so
    // losses cluster and retries collide with the burst.
    auto c = base(37);
    c.wireless.channel.model = "gilbert-elliott";
    c.request_retries = 2;
    c.measure_s = 150;
    run_config("gilbert_elliott_s37", c);
  }
  return 0;
}
