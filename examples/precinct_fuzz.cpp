// precinct_fuzz — property-based scenario fuzzing driver (DESIGN.md §10).
//
// Draws random valid scenarios, runs each with every invariant category
// enabled, and asserts the rotating metamorphic properties (determinism
// replay, null-fault channel equivalence, no-retry means no resend, shard
// and world-shard invariance, wire-codec fixed point).  A failing case
// writes a repro config that `precinct_sim --config <file>` replays in one
// command; wire-codec failures also print the datagram as hex.
//
//   ./precinct_fuzz --scenarios 64 --seed 1 --repro-dir fuzz_repros
//   ./precinct_fuzz --replay 17            # re-run one case by its seed
//   ./precinct_fuzz --packet-hex 0a1b...   # re-judge one dumped datagram
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "check/scenario_fuzz.hpp"

namespace {

int usage() {
  std::printf(
      "precinct_fuzz — property-based scenario fuzzing\n\n"
      "  --scenarios N   cases to run                    (default 64)\n"
      "  --seed N        first case seed                 (default 1)\n"
      "  --repro-dir D   where failing cases are written (default fuzz_repros)\n"
      "  --replay N      run exactly one case seed and exit\n"
      "  --packet-hex H  decode/re-encode one hex-dumped datagram (from a\n"
      "                  wire-codec failure) and judge the fixed point\n"
      "  --help          this text\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace precinct;
  std::uint64_t scenarios = 64;
  std::uint64_t first_seed = 1;
  std::string repro_dir = "fuzz_repros";
  std::string packet_hex;
  bool replay_one = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help") return usage();
    if (arg == "--scenarios") {
      scenarios = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--seed") {
      first_seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--repro-dir") {
      repro_dir = value();
    } else if (arg == "--replay") {
      first_seed = std::strtoull(value(), nullptr, 10);
      scenarios = 1;
      replay_one = true;
    } else if (arg == "--packet-hex") {
      packet_hex = value();
    } else {
      std::fprintf(stderr, "error: unknown argument %s (try --help)\n",
                   arg.c_str());
      return 2;
    }
  }

  if (!packet_hex.empty()) {
    const check::FuzzVerdict verdict = check::replay_packet_hex(packet_hex);
    if (verdict.ok) {
      std::printf("packet-hex ok: %s\n", verdict.detail.c_str());
      return 0;
    }
    std::fprintf(stderr, "packet-hex FAILED\n%s\n", verdict.detail.c_str());
    return 1;
  }

  std::uint64_t failures = 0;
  for (std::uint64_t i = 0; i < scenarios; ++i) {
    const std::uint64_t case_seed = first_seed + i;
    check::FuzzCase fc;
    try {
      fc = check::draw_scenario(case_seed);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "case %llu: draw failed: %s\n",
                   static_cast<unsigned long long>(case_seed), e.what());
      ++failures;
      continue;
    }
    const check::FuzzVerdict verdict = check::run_fuzz_case(fc);
    if (verdict.ok) {
      std::printf("case %llu [%s] ok (%d draws rejected)\n",
                  static_cast<unsigned long long>(case_seed),
                  check::to_string(fc.property), fc.draws_rejected);
      continue;
    }
    ++failures;
    std::string repro = "(repro write failed)";
    try {
      repro = check::write_repro(fc, repro_dir, verdict.detail);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "case %llu: %s\n",
                   static_cast<unsigned long long>(case_seed), e.what());
    }
    std::fprintf(stderr,
                 "case %llu [%s] FAILED\n%s\nrepro: %s\n"
                 "replay: precinct_fuzz --replay %llu\n",
                 static_cast<unsigned long long>(case_seed),
                 check::to_string(fc.property), verdict.detail.c_str(),
                 repro.c_str(), static_cast<unsigned long long>(case_seed));
    if (replay_one) break;
  }

  if (failures == 0) {
    std::printf("all %llu cases passed\n",
                static_cast<unsigned long long>(scenarios));
    return 0;
  }
  std::fprintf(stderr, "%llu of %llu cases failed\n",
               static_cast<unsigned long long>(failures),
               static_cast<unsigned long long>(scenarios));
  return 1;
}
