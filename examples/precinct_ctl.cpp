// precinct_ctl — operator console for a local precinct_node fleet
// (DESIGN.md §14).
//
//   precinct_ctl up --config fleet.conf --dir fleet/      spawn + wait + merge
//   precinct_ctl up ... --detach                          spawn and return
//   precinct_ctl status --dir fleet/                      one line per daemon
//   precinct_ctl inject --dir fleet/ --request --node 3 --rank 0
//   precinct_ctl stop --dir fleet/                        SIGTERM the fleet
//   precinct_ctl collect --dir fleet/                     merge status files
//   precinct_ctl oracle --config fleet.conf --fingerprint in-sim twin
//
// `up` launches one precinct_node per region column on loopback ports
// base_port + domain, writes a fleet.json manifest into --dir, and (unless
// --detach) waits for the run, audits cross-domain frame conservation and
// writes merged.json.  `--fingerprint` prints the fleet fingerprint to
// stdout — `oracle --fingerprint` prints the byte-identical string from
// the in-sim WorldShardedScenario, which is the CI equivalence gate.
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/config_io.hpp"
#include "core/world_scenario.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"
#include "transport/node_daemon.hpp"

namespace {

using namespace precinct;

[[noreturn]] void die(const std::string& what) {
  std::cerr << "precinct_ctl: " << what << '\n';
  std::exit(1);
}

void print_help() {
  std::cout <<
      R"(precinct_ctl — manage a local fleet of precinct_node daemons

  up      --config FILE [--dir DIR] [--base-port P] [--node-bin PATH]
          [--detach] [--fingerprint]
          Spawn one daemon per region column (loopback ports P+domain,
          manifest in DIR/fleet.json).  Without --detach: wait for the
          run, audit frame conservation, write DIR/merged.json; with
          --fingerprint, print the fleet fingerprint to stdout.
  status  --dir DIR     one line per daemon from its status snapshot
  inject  --dir DIR (--request | --update) --node N --rank R
          Inject one request/update for catalog rank R at node N (the
          node's owning daemon applies it at the next window).
  stop    --dir DIR     SIGTERM every daemon (graceful barrier drain)
  collect --dir DIR [--fingerprint]
          Merge finished daemons' status files into DIR/merged.json.
  oracle  --config FILE [--fingerprint]
          Run the in-sim world-sharded twin of the fleet; with
          --fingerprint, print the byte-identical fleet fingerprint the
          UDP fleet must reproduce (the equivalence gate).

Defaults: --dir fleet, --base-port from the config's transport_base_port,
--node-bin precinct_node next to this binary.
)";
}

// -- tiny arg helpers --------------------------------------------------------

struct Args {
  std::vector<std::string> items;

  [[nodiscard]] bool flag(const std::string& name) {
    for (auto it = items.begin(); it != items.end(); ++it) {
      if (*it == name) {
        items.erase(it);
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] std::string value(const std::string& name,
                                  const std::string& fallback) {
    for (auto it = items.begin(); it != items.end(); ++it) {
      if (*it == name) {
        if (std::next(it) == items.end()) die(name + " needs a value");
        const std::string v = *std::next(it);
        items.erase(it, std::next(it, 2));
        return v;
      }
    }
    return fallback;
  }

  void expect_empty() const {
    if (!items.empty()) die("unknown argument: " + items.front());
  }
};

// -- file helpers ------------------------------------------------------------

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) die("cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) die("cannot write " + path);
  out << content;
}

/// Default daemon binary: precinct_node next to this executable.
std::string sibling_node_bin() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "precinct_node";
  buf[n] = '\0';
  std::string path(buf);
  const std::size_t slash = path.rfind('/');
  if (slash == std::string::npos) return "precinct_node";
  return path.substr(0, slash + 1) + "precinct_node";
}

// -- manifest ----------------------------------------------------------------

struct Fleet {
  std::string dir;
  std::string config_path;
  std::uint32_t n_domains = 0;
  std::uint32_t base_port = 0;
  std::vector<long> pids;
  std::vector<std::string> status_paths;
};

void write_manifest(const Fleet& f) {
  support::JsonObject j;
  j.set("config", f.config_path);
  j.set("n_domains", static_cast<std::uint64_t>(f.n_domains));
  j.set("base_port", static_cast<std::uint64_t>(f.base_port));
  for (std::uint32_t d = 0; d < f.n_domains; ++d) {
    j.set("pid_" + std::to_string(d),
          static_cast<std::uint64_t>(f.pids[d]));
    j.set("status_" + std::to_string(d), f.status_paths[d]);
  }
  write_file(f.dir + "/fleet.json", j.str(/*pretty=*/true) + "\n");
}

Fleet read_manifest(const std::string& dir) {
  const support::FlatJson j = support::FlatJson::parse(
      read_file(dir + "/fleet.json"));
  Fleet f;
  f.dir = dir;
  f.config_path = j.get_string("config");
  f.n_domains = static_cast<std::uint32_t>(j.get_u64("n_domains"));
  f.base_port = static_cast<std::uint32_t>(j.get_u64("base_port"));
  for (std::uint32_t d = 0; d < f.n_domains; ++d) {
    f.pids.push_back(static_cast<long>(j.get_u64("pid_" + std::to_string(d))));
    f.status_paths.push_back(j.get_string("status_" + std::to_string(d)));
  }
  return f;
}

std::vector<support::FlatJson> read_statuses(const Fleet& f) {
  std::vector<support::FlatJson> out;
  out.reserve(f.n_domains);
  for (std::uint32_t d = 0; d < f.n_domains; ++d) {
    out.push_back(support::FlatJson::parse(read_file(f.status_paths[d])));
  }
  return out;
}

// -- merge + fingerprint -----------------------------------------------------

/// Merge finished status files: conservation audit, merged.json, and the
/// fleet fingerprint spliced from the daemons' own fragments (exact
/// values travel as text, never re-parsed doubles).
std::string merge_fleet(const Fleet& f, bool print_fingerprint) {
  const std::vector<support::FlatJson> statuses = read_statuses(f);
  for (std::uint32_t d = 0; d < f.n_domains; ++d) {
    const std::string state = statuses[d].get_string("state");
    if (state != "done") {
      die("domain " + std::to_string(d) + " is '" + state +
          "', not 'done' — cannot merge (try `precinct_ctl status`)");
    }
  }

  transport::FleetTotals t;
  t.windows = statuses[0].get_u64("windows");
  const std::string lookahead_hex = statuses[0].get_string("lookahead_hex");
  std::uint64_t requests_issued = 0;
  std::uint64_t requests_completed = 0;
  std::uint64_t remote_hits = 0;
  std::uint64_t wire_sent = 0;
  std::uint64_t wire_received = 0;
  std::uint64_t datagrams_sent = 0;
  std::uint64_t datagram_bytes_sent = 0;
  std::uint64_t retransmits = 0;
  double wall_s = 0.0;
  std::string fingerprint = "";
  for (std::uint32_t d = 0; d < f.n_domains; ++d) {
    const support::FlatJson& s = statuses[d];
    if (s.get_u64("windows") != t.windows ||
        s.get_string("lookahead_hex") != lookahead_hex) {
      die("domain " + std::to_string(d) +
          " disagrees on windows/lookahead — not one fleet?");
    }
    t.messages_merged += s.get_u64("messages_merged");
    t.frames_posted += s.get_u64("frames_posted");
    t.frames_processed += s.get_u64("frames_processed");
    t.frames_beyond_horizon += s.get_u64("frames_beyond_horizon");
    t.deltas_posted += s.get_u64("deltas_posted");
    t.deltas_processed += s.get_u64("deltas_processed");
    t.deltas_beyond_horizon += s.get_u64("deltas_beyond_horizon");
    requests_issued += s.get_u64("requests_issued");
    requests_completed += s.get_u64("requests_completed");
    remote_hits += s.get_u64("remote_hits");
    wire_sent += s.get_u64("wire_bytes_sent");
    wire_received += s.get_u64("wire_bytes_received");
    datagrams_sent += s.get_u64("datagrams_sent");
    datagram_bytes_sent += s.get_u64("datagram_bytes_sent");
    retransmits += s.get_u64("retransmits");
    wall_s = std::max(wall_s, s.get_double("wall_s"));
    fingerprint += s.get_string("fleet_fragment");
  }
  fingerprint =
      transport::fleet_header(f.n_domains, lookahead_hex, t) + fingerprint;

  // The same cross-domain conservation audit WorldShardedScenario runs:
  // every marshalled frame/delta executed at its destination except those
  // due beyond the horizon.  A leak means lost-or-duplicated datagrams
  // slipped past the barrier protocol — fail loudly.
  if (t.frames_processed != t.frames_posted - t.frames_beyond_horizon ||
      t.deltas_processed != t.deltas_posted - t.deltas_beyond_horizon) {
    die("cross-domain conservation violated: frames " +
        std::to_string(t.frames_processed) + "/" +
        std::to_string(t.frames_posted - t.frames_beyond_horizon) +
        ", deltas " + std::to_string(t.deltas_processed) + "/" +
        std::to_string(t.deltas_posted - t.deltas_beyond_horizon));
  }

  support::JsonObject j;
  j.set("n_domains", static_cast<std::uint64_t>(f.n_domains));
  j.set("clean", true);
  j.set("windows", t.windows);
  j.set("messages_merged", t.messages_merged);
  j.set("frames_posted", t.frames_posted);
  j.set("frames_processed", t.frames_processed);
  j.set("frames_beyond_horizon", t.frames_beyond_horizon);
  j.set("deltas_posted", t.deltas_posted);
  j.set("deltas_processed", t.deltas_processed);
  j.set("deltas_beyond_horizon", t.deltas_beyond_horizon);
  j.set("requests_issued", requests_issued);
  j.set("requests_completed", requests_completed);
  j.set("remote_hits", remote_hits);
  j.set("wire_bytes_sent", wire_sent);
  j.set("wire_bytes_received", wire_received);
  j.set("datagrams_sent", datagrams_sent);
  j.set("datagram_bytes_sent", datagram_bytes_sent);
  j.set("retransmits", retransmits);
  j.set("wall_s", wall_s);
  j.set("fleet_fingerprint", fingerprint);
  write_file(f.dir + "/merged.json", j.str(/*pretty=*/true) + "\n");

  std::cerr << "fleet: " << f.n_domains << " domains, " << t.windows
            << " windows, " << requests_completed << "/" << requests_issued
            << " requests completed, " << remote_hits << " remote hits, "
            << wire_sent << " wire bytes, " << wall_s << " s wall ("
            << retransmits << " retransmits)\n"
            << "merged: " << f.dir << "/merged.json\n";
  if (print_fingerprint) std::cout << fingerprint;
  return fingerprint;
}

// -- subcommands -------------------------------------------------------------

int cmd_up(Args& args) {
  const std::string config_path = args.value("--config", "");
  if (config_path.empty()) die("up: --config is required");
  const std::string dir = args.value("--dir", "fleet");
  const std::string node_bin = args.value("--node-bin", sibling_node_bin());
  const bool detach = args.flag("--detach");
  const bool want_fingerprint = args.flag("--fingerprint");
  const core::PrecinctConfig config = core::config_from_file(config_path);
  // Fail before spawning anything if the config cannot be world-sharded.
  (void)core::world_validate(config);
  const std::uint32_t base_port = static_cast<std::uint32_t>(std::stoul(
      args.value("--base-port", std::to_string(config.transport_base_port))));
  args.expect_empty();

  Fleet f;
  f.dir = dir;
  f.config_path = config_path;
  f.n_domains = config.regions_x;
  f.base_port = base_port;
  if (::mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST) {
    die("cannot create directory " + dir);
  }

  std::string peers;
  for (std::uint32_t d = 0; d < f.n_domains; ++d) {
    if (d > 0) peers += ',';
    peers += "127.0.0.1:" + std::to_string(base_port + d);
  }

  for (std::uint32_t d = 0; d < f.n_domains; ++d) {
    const std::string status = dir + "/status-" + std::to_string(d) + ".json";
    f.status_paths.push_back(status);
    const pid_t pid = ::fork();
    if (pid < 0) die("fork failed");
    if (pid == 0) {
      const std::vector<std::string> argv_s = {
          node_bin,  "--config", config_path, "--domain", std::to_string(d),
          "--peers", peers,      "--status",  status};
      std::vector<char*> argv_c;
      argv_c.reserve(argv_s.size() + 1);
      for (const std::string& s : argv_s) {
        argv_c.push_back(const_cast<char*>(s.c_str()));
      }
      argv_c.push_back(nullptr);
      ::execv(node_bin.c_str(), argv_c.data());
      std::cerr << "precinct_ctl: cannot exec " << node_bin << '\n';
      ::_exit(127);
    }
    f.pids.push_back(pid);
  }
  write_manifest(f);
  std::cerr << "spawned " << f.n_domains << " daemons on ports " << base_port
            << ".." << (base_port + f.n_domains - 1) << " (manifest "
            << dir << "/fleet.json)\n";
  if (detach) return 0;

  bool ok = true;
  for (std::uint32_t d = 0; d < f.n_domains; ++d) {
    int wstatus = 0;
    if (::waitpid(static_cast<pid_t>(f.pids[d]), &wstatus, 0) < 0) {
      std::cerr << "waitpid(" << f.pids[d] << ") failed\n";
      ok = false;
      continue;
    }
    const bool clean = WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0;
    if (!clean) {
      std::cerr << "domain " << d << " exited with "
                << (WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1) << '\n';
      ok = false;
    }
  }
  if (!ok) die("fleet did not finish cleanly");
  (void)merge_fleet(f, want_fingerprint);
  return 0;
}

int cmd_status(Args& args) {
  const Fleet f = read_manifest(args.value("--dir", "fleet"));
  args.expect_empty();
  for (std::uint32_t d = 0; d < f.n_domains; ++d) {
    std::ifstream probe(f.status_paths[d]);
    if (!probe) {
      std::cout << "domain " << d << ": (no status file yet)\n";
      continue;
    }
    std::ostringstream ss;
    ss << probe.rdbuf();
    const support::FlatJson s = support::FlatJson::parse(ss.str());
    std::cout << "domain " << d << ": " << s.get_string("state")
              << "  window=" << s.get_u64("window")
              << "  sim_now=" << s.get_double("sim_now_s") << "s"
              << "  frames=" << s.get_u64("frames_posted") << "/"
              << s.get_u64("frames_processed")
              << "  retransmits=" << s.get_u64("retransmits") << '\n';
  }
  return 0;
}

int cmd_stop(Args& args) {
  const Fleet f = read_manifest(args.value("--dir", "fleet"));
  args.expect_empty();
  for (std::uint32_t d = 0; d < f.n_domains; ++d) {
    if (::kill(static_cast<pid_t>(f.pids[d]), SIGTERM) == 0) {
      std::cerr << "sent SIGTERM to domain " << d << " (pid " << f.pids[d]
                << ")\n";
    }
  }
  return 0;
}

int cmd_inject(Args& args) {
  const Fleet f = read_manifest(args.value("--dir", "fleet"));
  const bool is_update = args.flag("--update");
  const bool is_request = args.flag("--request");
  if (is_update == is_request) die("inject: pass exactly one of --request / --update");
  const std::string node_s = args.value("--node", "");
  const std::string rank_s = args.value("--rank", "0");
  if (node_s.empty()) die("inject: --node is required");
  args.expect_empty();

  transport::InjectMsg msg;
  msg.op = is_update ? 1 : 0;
  msg.node = static_cast<net::NodeId>(std::stoul(node_s));
  msg.key_rank = std::stoull(rank_s);
  // Unique per invocation; daemons dedupe the retries below on it.
  msg.inject_id = support::hash_combine(
      static_cast<std::uint64_t>(std::time(nullptr)),
      static_cast<std::uint64_t>(::getpid()));

  transport::WireWriter w;
  transport::Envelope env;
  env.type = transport::MsgType::kInject;
  env.src_domain = transport::kCtlDomain;
  env.seq = 0;
  transport::encode_envelope(env, w);
  transport::encode_inject(msg, w);

  transport::UdpSocket sock({transport::kLoopbackHost, 0});
  // Fire-and-forget over loopback; 3 sends per daemon make loss
  // vanishingly unlikely and inject_id dedup makes them idempotent.
  for (int burst = 0; burst < 3; ++burst) {
    for (std::uint32_t d = 0; d < f.n_domains; ++d) {
      const transport::UdpAddress dst{transport::kLoopbackHost,
                                      static_cast<std::uint16_t>(
                                          f.base_port + d)};
      (void)sock.send_to(dst, w.data().data(), w.size());
    }
  }
  std::cerr << "injected " << (is_update ? "update" : "request") << " node="
            << node_s << " rank=" << rank_s << " (id " << msg.inject_id
            << ") to " << f.n_domains << " daemons\n";
  return 0;
}

int cmd_collect(Args& args) {
  const Fleet f = read_manifest(args.value("--dir", "fleet"));
  const bool want_fingerprint = args.flag("--fingerprint");
  args.expect_empty();
  (void)merge_fleet(f, want_fingerprint);
  return 0;
}

int cmd_oracle(Args& args) {
  const std::string config_path = args.value("--config", "");
  if (config_path.empty()) die("oracle: --config is required");
  const bool want_fingerprint = args.flag("--fingerprint");
  args.expect_empty();
  const core::PrecinctConfig config = core::config_from_file(config_path);
  const core::WorldShardedMetrics m = core::run_world_scenario(config);
  if (want_fingerprint) {
    std::cout << transport::fleet_fingerprint(m);
  } else {
    std::cerr << "oracle: " << m.domains << " domains, " << m.windows
              << " windows, " << m.aggregate.requests_completed << "/"
              << m.aggregate.requests_issued << " requests completed\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_help();
    return 2;
  }
  const std::string cmd = argv[1];
  Args args;
  args.items.assign(argv + 2, argv + argc);
  try {
    if (cmd == "--help" || cmd == "help") {
      print_help();
      return 0;
    }
    if (cmd == "up") return cmd_up(args);
    if (cmd == "status") return cmd_status(args);
    if (cmd == "stop") return cmd_stop(args);
    if (cmd == "inject") return cmd_inject(args);
    if (cmd == "collect") return cmd_collect(args);
    if (cmd == "oracle") return cmd_oracle(args);
    std::cerr << "precinct_ctl: unknown command '" << cmd
              << "' (try --help)\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "precinct_ctl: " << e.what() << '\n';
    return 1;
  }
}
