// Topology viewer: an ASCII situational display of a running PReCinCt
// network — region grid, node positions, custody distribution and cache
// occupancy — snapshotted at a few points in simulated time.  Handy for
// building intuition about what the protocol is doing.
//
//   ./topology_viewer [nodes] [seed]
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "core/scenario.hpp"

namespace {

using namespace precinct;

/// Render the plane as rows x cols character cells: digits = node count
/// in the cell (9+ = '#'), '.' = empty; region boundaries drawn from the
/// region grid config.
void draw_map(core::Scenario& scenario, int rows, int cols) {
  const auto& config = scenario.config();
  auto& network = scenario.network();
  std::vector<std::vector<int>> cells(rows, std::vector<int>(cols, 0));
  for (net::NodeId i = 0; i < network.node_count(); ++i) {
    if (!network.is_alive(i)) continue;
    const geo::Point p = network.position(i);
    const int cx = std::min(
        cols - 1, static_cast<int>(p.x / config.area.width() * cols));
    const int cy = std::min(
        rows - 1, static_cast<int>(p.y / config.area.height() * rows));
    ++cells[cy][cx];
  }
  const int region_rows = rows / static_cast<int>(config.regions_y);
  const int region_cols = cols / static_cast<int>(config.regions_x);
  for (int y = rows - 1; y >= 0; --y) {  // y grows north
    std::string line;
    for (int x = 0; x < cols; ++x) {
      if (region_cols > 0 && x > 0 && x % region_cols == 0) line += '|';
      const int c = cells[y][x];
      line += c == 0 ? '.' : (c > 9 ? '#' : static_cast<char>('0' + c));
    }
    std::cout << "  " << line << '\n';
    if (region_rows > 0 && y > 0 && y % region_rows == 0) {
      std::string rule;
      for (int x = 0; x < cols; ++x) {
        if (region_cols > 0 && x > 0 && x % region_cols == 0) rule += '+';
        rule += '-';
      }
      std::cout << "  " << rule << '\n';
    }
  }
}

void print_region_summary(core::Scenario& scenario) {
  auto& engine = scenario.engine();
  auto& network = scenario.network();
  std::cout << "  region: peers / custody keys / cached bytes\n";
  for (const geo::Region& r : engine.region_table().regions()) {
    std::size_t peers = 0;
    std::size_t custody = 0;
    std::size_t cached = 0;
    for (net::NodeId i = 0; i < network.node_count(); ++i) {
      if (!network.is_alive(i) || engine.region_of(i) != r.id) continue;
      ++peers;
      custody += engine.cache_of(i).static_count();
      cached += engine.cache_of(i).used_bytes();
    }
    std::cout << "  R" << std::setw(2) << r.id << " @(" << std::setw(4)
              << static_cast<int>(r.center.x) << ',' << std::setw(4)
              << static_cast<int>(r.center.y) << "): " << std::setw(3)
              << peers << " / " << std::setw(4) << custody << " / "
              << std::setw(8) << cached << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  core::PrecinctConfig config;
  config.n_nodes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 60;
  config.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;
  config.warmup_s = 0.0;
  config.measure_s = 600.0;

  core::Scenario scenario(config);
  scenario.engine().initialize();
  scenario.engine().start_measurement();

  std::cout << "PReCinCt topology viewer — " << config.n_nodes
            << " nodes, " << config.regions_x << "x" << config.regions_y
            << " regions, random waypoint\n";
  for (const double t : {0.0, 200.0, 400.0}) {
    scenario.run_until(t);
    std::cout << "\n=== t = " << t << " s ===\n";
    draw_map(scenario, 18, 54);
    print_region_summary(scenario);
  }
  const auto& m = scenario.engine().metrics();
  std::cout << "\nso far: " << m.requests_issued << " requests, "
            << m.requests_completed << " served, "
            << m.custody_handoffs << " custody handoffs\n";
  return 0;
}
