# Empty dependencies file for fig6_overhead_vs_update.
# This may be replaced when dependencies are built.
