file(REMOVE_RECURSE
  "CMakeFiles/fig6_overhead_vs_update.dir/fig6_overhead_vs_update.cpp.o"
  "CMakeFiles/fig6_overhead_vs_update.dir/fig6_overhead_vs_update.cpp.o.d"
  "fig6_overhead_vs_update"
  "fig6_overhead_vs_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_overhead_vs_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
