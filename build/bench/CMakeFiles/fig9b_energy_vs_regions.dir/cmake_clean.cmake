file(REMOVE_RECURSE
  "CMakeFiles/fig9b_energy_vs_regions.dir/fig9b_energy_vs_regions.cpp.o"
  "CMakeFiles/fig9b_energy_vs_regions.dir/fig9b_energy_vs_regions.cpp.o.d"
  "fig9b_energy_vs_regions"
  "fig9b_energy_vs_regions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9b_energy_vs_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
