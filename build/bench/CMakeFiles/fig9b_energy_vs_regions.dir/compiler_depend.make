# Empty compiler generated dependencies file for fig9b_energy_vs_regions.
# This may be replaced when dependencies are built.
