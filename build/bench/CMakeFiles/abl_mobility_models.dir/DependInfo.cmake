
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/abl_mobility_models.cpp" "bench/CMakeFiles/abl_mobility_models.dir/abl_mobility_models.cpp.o" "gcc" "bench/CMakeFiles/abl_mobility_models.dir/abl_mobility_models.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/precinct_core.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/precinct_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/precinct_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/precinct_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/precinct_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/precinct_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/precinct_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/consistency/CMakeFiles/precinct_consistency.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/precinct_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/precinct_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/precinct_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/precinct_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
