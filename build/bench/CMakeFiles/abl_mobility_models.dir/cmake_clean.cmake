file(REMOVE_RECURSE
  "CMakeFiles/abl_mobility_models.dir/abl_mobility_models.cpp.o"
  "CMakeFiles/abl_mobility_models.dir/abl_mobility_models.cpp.o.d"
  "abl_mobility_models"
  "abl_mobility_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_mobility_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
