# Empty compiler generated dependencies file for abl_mobility_models.
# This may be replaced when dependencies are built.
