# Empty dependencies file for abl_dynamic_regions.
# This may be replaced when dependencies are built.
