file(REMOVE_RECURSE
  "CMakeFiles/abl_dynamic_regions.dir/abl_dynamic_regions.cpp.o"
  "CMakeFiles/abl_dynamic_regions.dir/abl_dynamic_regions.cpp.o.d"
  "abl_dynamic_regions"
  "abl_dynamic_regions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_dynamic_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
