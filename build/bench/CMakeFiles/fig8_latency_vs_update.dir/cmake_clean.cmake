file(REMOVE_RECURSE
  "CMakeFiles/fig8_latency_vs_update.dir/fig8_latency_vs_update.cpp.o"
  "CMakeFiles/fig8_latency_vs_update.dir/fig8_latency_vs_update.cpp.o.d"
  "fig8_latency_vs_update"
  "fig8_latency_vs_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_latency_vs_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
