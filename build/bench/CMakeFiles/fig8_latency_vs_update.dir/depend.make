# Empty dependencies file for fig8_latency_vs_update.
# This may be replaced when dependencies are built.
