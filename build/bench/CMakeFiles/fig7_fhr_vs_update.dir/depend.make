# Empty dependencies file for fig7_fhr_vs_update.
# This may be replaced when dependencies are built.
