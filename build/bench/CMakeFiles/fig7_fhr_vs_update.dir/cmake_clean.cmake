file(REMOVE_RECURSE
  "CMakeFiles/fig7_fhr_vs_update.dir/fig7_fhr_vs_update.cpp.o"
  "CMakeFiles/fig7_fhr_vs_update.dir/fig7_fhr_vs_update.cpp.o.d"
  "fig7_fhr_vs_update"
  "fig7_fhr_vs_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_fhr_vs_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
