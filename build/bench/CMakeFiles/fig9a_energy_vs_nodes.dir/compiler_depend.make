# Empty compiler generated dependencies file for fig9a_energy_vs_nodes.
# This may be replaced when dependencies are built.
