file(REMOVE_RECURSE
  "CMakeFiles/fig9a_energy_vs_nodes.dir/fig9a_energy_vs_nodes.cpp.o"
  "CMakeFiles/fig9a_energy_vs_nodes.dir/fig9a_energy_vs_nodes.cpp.o.d"
  "fig9a_energy_vs_nodes"
  "fig9a_energy_vs_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9a_energy_vs_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
