file(REMOVE_RECURSE
  "CMakeFiles/abl_retrieval_schemes.dir/abl_retrieval_schemes.cpp.o"
  "CMakeFiles/abl_retrieval_schemes.dir/abl_retrieval_schemes.cpp.o.d"
  "abl_retrieval_schemes"
  "abl_retrieval_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_retrieval_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
