# Empty compiler generated dependencies file for abl_retrieval_schemes.
# This may be replaced when dependencies are built.
