file(REMOVE_RECURSE
  "CMakeFiles/fig4_latency_vs_cachesize.dir/fig4_latency_vs_cachesize.cpp.o"
  "CMakeFiles/fig4_latency_vs_cachesize.dir/fig4_latency_vs_cachesize.cpp.o.d"
  "fig4_latency_vs_cachesize"
  "fig4_latency_vs_cachesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_latency_vs_cachesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
