# Empty dependencies file for fig4_latency_vs_cachesize.
# This may be replaced when dependencies are built.
