# Empty compiler generated dependencies file for abl_hotspot_shift.
# This may be replaced when dependencies are built.
