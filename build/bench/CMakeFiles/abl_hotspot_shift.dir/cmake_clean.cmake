file(REMOVE_RECURSE
  "CMakeFiles/abl_hotspot_shift.dir/abl_hotspot_shift.cpp.o"
  "CMakeFiles/abl_hotspot_shift.dir/abl_hotspot_shift.cpp.o.d"
  "abl_hotspot_shift"
  "abl_hotspot_shift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_hotspot_shift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
