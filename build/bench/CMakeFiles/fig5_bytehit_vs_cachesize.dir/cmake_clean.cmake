file(REMOVE_RECURSE
  "CMakeFiles/fig5_bytehit_vs_cachesize.dir/fig5_bytehit_vs_cachesize.cpp.o"
  "CMakeFiles/fig5_bytehit_vs_cachesize.dir/fig5_bytehit_vs_cachesize.cpp.o.d"
  "fig5_bytehit_vs_cachesize"
  "fig5_bytehit_vs_cachesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_bytehit_vs_cachesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
