# Empty dependencies file for fig5_bytehit_vs_cachesize.
# This may be replaced when dependencies are built.
