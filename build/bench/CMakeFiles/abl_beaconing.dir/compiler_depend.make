# Empty compiler generated dependencies file for abl_beaconing.
# This may be replaced when dependencies are built.
