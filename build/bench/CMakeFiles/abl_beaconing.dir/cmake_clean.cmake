file(REMOVE_RECURSE
  "CMakeFiles/abl_beaconing.dir/abl_beaconing.cpp.o"
  "CMakeFiles/abl_beaconing.dir/abl_beaconing.cpp.o.d"
  "abl_beaconing"
  "abl_beaconing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_beaconing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
