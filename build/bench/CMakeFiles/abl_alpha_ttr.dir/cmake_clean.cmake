file(REMOVE_RECURSE
  "CMakeFiles/abl_alpha_ttr.dir/abl_alpha_ttr.cpp.o"
  "CMakeFiles/abl_alpha_ttr.dir/abl_alpha_ttr.cpp.o.d"
  "abl_alpha_ttr"
  "abl_alpha_ttr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_alpha_ttr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
