# Empty compiler generated dependencies file for abl_alpha_ttr.
# This may be replaced when dependencies are built.
