file(REMOVE_RECURSE
  "CMakeFiles/abl_utility_weights.dir/abl_utility_weights.cpp.o"
  "CMakeFiles/abl_utility_weights.dir/abl_utility_weights.cpp.o.d"
  "abl_utility_weights"
  "abl_utility_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_utility_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
