# Empty compiler generated dependencies file for abl_utility_weights.
# This may be replaced when dependencies are built.
