file(REMOVE_RECURSE
  "CMakeFiles/abl_speed_sweep.dir/abl_speed_sweep.cpp.o"
  "CMakeFiles/abl_speed_sweep.dir/abl_speed_sweep.cpp.o.d"
  "abl_speed_sweep"
  "abl_speed_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_speed_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
