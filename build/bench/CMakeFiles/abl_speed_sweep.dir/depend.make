# Empty dependencies file for abl_speed_sweep.
# This may be replaced when dependencies are built.
