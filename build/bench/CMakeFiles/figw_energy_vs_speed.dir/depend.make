# Empty dependencies file for figw_energy_vs_speed.
# This may be replaced when dependencies are built.
