# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for figw_energy_vs_speed.
