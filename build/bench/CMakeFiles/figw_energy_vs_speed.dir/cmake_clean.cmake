file(REMOVE_RECURSE
  "CMakeFiles/figw_energy_vs_speed.dir/figw_energy_vs_speed.cpp.o"
  "CMakeFiles/figw_energy_vs_speed.dir/figw_energy_vs_speed.cpp.o.d"
  "figw_energy_vs_speed"
  "figw_energy_vs_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figw_energy_vs_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
