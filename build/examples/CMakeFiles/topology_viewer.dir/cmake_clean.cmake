file(REMOVE_RECURSE
  "CMakeFiles/topology_viewer.dir/topology_viewer.cpp.o"
  "CMakeFiles/topology_viewer.dir/topology_viewer.cpp.o.d"
  "topology_viewer"
  "topology_viewer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_viewer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
