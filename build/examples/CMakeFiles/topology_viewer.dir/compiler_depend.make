# Empty compiler generated dependencies file for topology_viewer.
# This may be replaced when dependencies are built.
