file(REMOVE_RECURSE
  "CMakeFiles/traffic_updates.dir/traffic_updates.cpp.o"
  "CMakeFiles/traffic_updates.dir/traffic_updates.cpp.o.d"
  "traffic_updates"
  "traffic_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
