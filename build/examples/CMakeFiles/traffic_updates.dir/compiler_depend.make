# Empty compiler generated dependencies file for traffic_updates.
# This may be replaced when dependencies are built.
