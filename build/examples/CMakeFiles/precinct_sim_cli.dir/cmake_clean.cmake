file(REMOVE_RECURSE
  "CMakeFiles/precinct_sim_cli.dir/precinct_sim.cpp.o"
  "CMakeFiles/precinct_sim_cli.dir/precinct_sim.cpp.o.d"
  "precinct_sim"
  "precinct_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/precinct_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
