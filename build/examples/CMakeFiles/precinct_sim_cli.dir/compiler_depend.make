# Empty compiler generated dependencies file for precinct_sim_cli.
# This may be replaced when dependencies are built.
