file(REMOVE_RECURSE
  "CMakeFiles/campus_file_sharing.dir/campus_file_sharing.cpp.o"
  "CMakeFiles/campus_file_sharing.dir/campus_file_sharing.cpp.o.d"
  "campus_file_sharing"
  "campus_file_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campus_file_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
