# Empty dependencies file for campus_file_sharing.
# This may be replaced when dependencies are built.
