# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/geo_test[1]_include.cmake")
include("/root/repo/build/tests/energy_test[1]_include.cmake")
include("/root/repo/build/tests/mobility_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/routing_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/consistency_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
