file(REMOVE_RECURSE
  "libprecinct_support.a"
)
