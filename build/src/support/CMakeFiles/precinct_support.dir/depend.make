# Empty dependencies file for precinct_support.
# This may be replaced when dependencies are built.
