file(REMOVE_RECURSE
  "CMakeFiles/precinct_support.dir/json.cpp.o"
  "CMakeFiles/precinct_support.dir/json.cpp.o.d"
  "CMakeFiles/precinct_support.dir/kv_file.cpp.o"
  "CMakeFiles/precinct_support.dir/kv_file.cpp.o.d"
  "CMakeFiles/precinct_support.dir/rng.cpp.o"
  "CMakeFiles/precinct_support.dir/rng.cpp.o.d"
  "CMakeFiles/precinct_support.dir/stats.cpp.o"
  "CMakeFiles/precinct_support.dir/stats.cpp.o.d"
  "CMakeFiles/precinct_support.dir/table.cpp.o"
  "CMakeFiles/precinct_support.dir/table.cpp.o.d"
  "CMakeFiles/precinct_support.dir/thread_pool.cpp.o"
  "CMakeFiles/precinct_support.dir/thread_pool.cpp.o.d"
  "libprecinct_support.a"
  "libprecinct_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/precinct_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
