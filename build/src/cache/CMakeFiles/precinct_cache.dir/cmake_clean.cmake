file(REMOVE_RECURSE
  "CMakeFiles/precinct_cache.dir/cache_store.cpp.o"
  "CMakeFiles/precinct_cache.dir/cache_store.cpp.o.d"
  "CMakeFiles/precinct_cache.dir/policies.cpp.o"
  "CMakeFiles/precinct_cache.dir/policies.cpp.o.d"
  "libprecinct_cache.a"
  "libprecinct_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/precinct_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
