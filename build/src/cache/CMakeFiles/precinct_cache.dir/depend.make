# Empty dependencies file for precinct_cache.
# This may be replaced when dependencies are built.
