file(REMOVE_RECURSE
  "libprecinct_cache.a"
)
