
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/cache_store.cpp" "src/cache/CMakeFiles/precinct_cache.dir/cache_store.cpp.o" "gcc" "src/cache/CMakeFiles/precinct_cache.dir/cache_store.cpp.o.d"
  "/root/repo/src/cache/policies.cpp" "src/cache/CMakeFiles/precinct_cache.dir/policies.cpp.o" "gcc" "src/cache/CMakeFiles/precinct_cache.dir/policies.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/precinct_support.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/precinct_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
