file(REMOVE_RECURSE
  "libprecinct_workload.a"
)
