# Empty compiler generated dependencies file for precinct_workload.
# This may be replaced when dependencies are built.
