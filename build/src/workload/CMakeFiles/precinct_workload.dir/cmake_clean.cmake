file(REMOVE_RECURSE
  "CMakeFiles/precinct_workload.dir/data_catalog.cpp.o"
  "CMakeFiles/precinct_workload.dir/data_catalog.cpp.o.d"
  "CMakeFiles/precinct_workload.dir/zipf.cpp.o"
  "CMakeFiles/precinct_workload.dir/zipf.cpp.o.d"
  "libprecinct_workload.a"
  "libprecinct_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/precinct_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
