# Empty dependencies file for precinct_consistency.
# This may be replaced when dependencies are built.
