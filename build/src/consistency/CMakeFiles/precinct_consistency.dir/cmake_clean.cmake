file(REMOVE_RECURSE
  "CMakeFiles/precinct_consistency.dir/ttr.cpp.o"
  "CMakeFiles/precinct_consistency.dir/ttr.cpp.o.d"
  "libprecinct_consistency.a"
  "libprecinct_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/precinct_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
