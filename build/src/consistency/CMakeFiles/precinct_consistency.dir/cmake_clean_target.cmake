file(REMOVE_RECURSE
  "libprecinct_consistency.a"
)
