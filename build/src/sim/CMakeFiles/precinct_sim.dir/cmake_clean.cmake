file(REMOVE_RECURSE
  "CMakeFiles/precinct_sim.dir/simulator.cpp.o"
  "CMakeFiles/precinct_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/precinct_sim.dir/trace.cpp.o"
  "CMakeFiles/precinct_sim.dir/trace.cpp.o.d"
  "libprecinct_sim.a"
  "libprecinct_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/precinct_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
