file(REMOVE_RECURSE
  "libprecinct_sim.a"
)
