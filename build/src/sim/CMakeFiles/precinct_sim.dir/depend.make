# Empty dependencies file for precinct_sim.
# This may be replaced when dependencies are built.
