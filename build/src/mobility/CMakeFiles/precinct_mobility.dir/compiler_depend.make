# Empty compiler generated dependencies file for precinct_mobility.
# This may be replaced when dependencies are built.
