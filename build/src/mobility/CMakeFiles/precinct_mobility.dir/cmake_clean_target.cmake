file(REMOVE_RECURSE
  "libprecinct_mobility.a"
)
