
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mobility/gauss_markov.cpp" "src/mobility/CMakeFiles/precinct_mobility.dir/gauss_markov.cpp.o" "gcc" "src/mobility/CMakeFiles/precinct_mobility.dir/gauss_markov.cpp.o.d"
  "/root/repo/src/mobility/random_direction.cpp" "src/mobility/CMakeFiles/precinct_mobility.dir/random_direction.cpp.o" "gcc" "src/mobility/CMakeFiles/precinct_mobility.dir/random_direction.cpp.o.d"
  "/root/repo/src/mobility/random_waypoint.cpp" "src/mobility/CMakeFiles/precinct_mobility.dir/random_waypoint.cpp.o" "gcc" "src/mobility/CMakeFiles/precinct_mobility.dir/random_waypoint.cpp.o.d"
  "/root/repo/src/mobility/static_placement.cpp" "src/mobility/CMakeFiles/precinct_mobility.dir/static_placement.cpp.o" "gcc" "src/mobility/CMakeFiles/precinct_mobility.dir/static_placement.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/precinct_support.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/precinct_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
