file(REMOVE_RECURSE
  "CMakeFiles/precinct_mobility.dir/gauss_markov.cpp.o"
  "CMakeFiles/precinct_mobility.dir/gauss_markov.cpp.o.d"
  "CMakeFiles/precinct_mobility.dir/random_direction.cpp.o"
  "CMakeFiles/precinct_mobility.dir/random_direction.cpp.o.d"
  "CMakeFiles/precinct_mobility.dir/random_waypoint.cpp.o"
  "CMakeFiles/precinct_mobility.dir/random_waypoint.cpp.o.d"
  "CMakeFiles/precinct_mobility.dir/static_placement.cpp.o"
  "CMakeFiles/precinct_mobility.dir/static_placement.cpp.o.d"
  "libprecinct_mobility.a"
  "libprecinct_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/precinct_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
