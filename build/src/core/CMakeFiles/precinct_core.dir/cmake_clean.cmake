file(REMOVE_RECURSE
  "CMakeFiles/precinct_core.dir/config_io.cpp.o"
  "CMakeFiles/precinct_core.dir/config_io.cpp.o.d"
  "CMakeFiles/precinct_core.dir/engine.cpp.o"
  "CMakeFiles/precinct_core.dir/engine.cpp.o.d"
  "CMakeFiles/precinct_core.dir/engine_consistency.cpp.o"
  "CMakeFiles/precinct_core.dir/engine_consistency.cpp.o.d"
  "CMakeFiles/precinct_core.dir/engine_custody.cpp.o"
  "CMakeFiles/precinct_core.dir/engine_custody.cpp.o.d"
  "CMakeFiles/precinct_core.dir/engine_search.cpp.o"
  "CMakeFiles/precinct_core.dir/engine_search.cpp.o.d"
  "CMakeFiles/precinct_core.dir/metrics.cpp.o"
  "CMakeFiles/precinct_core.dir/metrics.cpp.o.d"
  "CMakeFiles/precinct_core.dir/scenario.cpp.o"
  "CMakeFiles/precinct_core.dir/scenario.cpp.o.d"
  "CMakeFiles/precinct_core.dir/validate.cpp.o"
  "CMakeFiles/precinct_core.dir/validate.cpp.o.d"
  "libprecinct_core.a"
  "libprecinct_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/precinct_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
