file(REMOVE_RECURSE
  "libprecinct_core.a"
)
