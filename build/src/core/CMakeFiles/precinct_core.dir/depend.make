# Empty dependencies file for precinct_core.
# This may be replaced when dependencies are built.
