# Empty compiler generated dependencies file for precinct_energy.
# This may be replaced when dependencies are built.
