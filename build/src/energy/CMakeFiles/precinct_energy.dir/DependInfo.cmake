
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/energy/accounting.cpp" "src/energy/CMakeFiles/precinct_energy.dir/accounting.cpp.o" "gcc" "src/energy/CMakeFiles/precinct_energy.dir/accounting.cpp.o.d"
  "/root/repo/src/energy/feeney_model.cpp" "src/energy/CMakeFiles/precinct_energy.dir/feeney_model.cpp.o" "gcc" "src/energy/CMakeFiles/precinct_energy.dir/feeney_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/precinct_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
