file(REMOVE_RECURSE
  "CMakeFiles/precinct_energy.dir/accounting.cpp.o"
  "CMakeFiles/precinct_energy.dir/accounting.cpp.o.d"
  "CMakeFiles/precinct_energy.dir/feeney_model.cpp.o"
  "CMakeFiles/precinct_energy.dir/feeney_model.cpp.o.d"
  "libprecinct_energy.a"
  "libprecinct_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/precinct_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
