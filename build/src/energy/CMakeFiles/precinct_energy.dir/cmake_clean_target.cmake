file(REMOVE_RECURSE
  "libprecinct_energy.a"
)
