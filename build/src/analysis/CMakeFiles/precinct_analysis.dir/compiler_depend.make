# Empty compiler generated dependencies file for precinct_analysis.
# This may be replaced when dependencies are built.
