file(REMOVE_RECURSE
  "libprecinct_analysis.a"
)
