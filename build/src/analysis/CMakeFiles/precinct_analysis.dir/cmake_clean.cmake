file(REMOVE_RECURSE
  "CMakeFiles/precinct_analysis.dir/consistency_analysis.cpp.o"
  "CMakeFiles/precinct_analysis.dir/consistency_analysis.cpp.o.d"
  "CMakeFiles/precinct_analysis.dir/energy_analysis.cpp.o"
  "CMakeFiles/precinct_analysis.dir/energy_analysis.cpp.o.d"
  "libprecinct_analysis.a"
  "libprecinct_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/precinct_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
