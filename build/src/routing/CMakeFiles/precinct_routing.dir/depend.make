# Empty dependencies file for precinct_routing.
# This may be replaced when dependencies are built.
