file(REMOVE_RECURSE
  "CMakeFiles/precinct_routing.dir/expanding_ring.cpp.o"
  "CMakeFiles/precinct_routing.dir/expanding_ring.cpp.o.d"
  "CMakeFiles/precinct_routing.dir/flood.cpp.o"
  "CMakeFiles/precinct_routing.dir/flood.cpp.o.d"
  "CMakeFiles/precinct_routing.dir/gpsr.cpp.o"
  "CMakeFiles/precinct_routing.dir/gpsr.cpp.o.d"
  "CMakeFiles/precinct_routing.dir/neighbor_provider.cpp.o"
  "CMakeFiles/precinct_routing.dir/neighbor_provider.cpp.o.d"
  "libprecinct_routing.a"
  "libprecinct_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/precinct_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
