
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/expanding_ring.cpp" "src/routing/CMakeFiles/precinct_routing.dir/expanding_ring.cpp.o" "gcc" "src/routing/CMakeFiles/precinct_routing.dir/expanding_ring.cpp.o.d"
  "/root/repo/src/routing/flood.cpp" "src/routing/CMakeFiles/precinct_routing.dir/flood.cpp.o" "gcc" "src/routing/CMakeFiles/precinct_routing.dir/flood.cpp.o.d"
  "/root/repo/src/routing/gpsr.cpp" "src/routing/CMakeFiles/precinct_routing.dir/gpsr.cpp.o" "gcc" "src/routing/CMakeFiles/precinct_routing.dir/gpsr.cpp.o.d"
  "/root/repo/src/routing/neighbor_provider.cpp" "src/routing/CMakeFiles/precinct_routing.dir/neighbor_provider.cpp.o" "gcc" "src/routing/CMakeFiles/precinct_routing.dir/neighbor_provider.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/precinct_net.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/precinct_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/precinct_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/precinct_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/precinct_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/precinct_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
