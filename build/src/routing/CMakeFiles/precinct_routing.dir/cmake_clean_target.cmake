file(REMOVE_RECURSE
  "libprecinct_routing.a"
)
