
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/message_stats.cpp" "src/net/CMakeFiles/precinct_net.dir/message_stats.cpp.o" "gcc" "src/net/CMakeFiles/precinct_net.dir/message_stats.cpp.o.d"
  "/root/repo/src/net/spatial_grid.cpp" "src/net/CMakeFiles/precinct_net.dir/spatial_grid.cpp.o" "gcc" "src/net/CMakeFiles/precinct_net.dir/spatial_grid.cpp.o.d"
  "/root/repo/src/net/wireless_net.cpp" "src/net/CMakeFiles/precinct_net.dir/wireless_net.cpp.o" "gcc" "src/net/CMakeFiles/precinct_net.dir/wireless_net.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/precinct_support.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/precinct_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/precinct_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/precinct_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/precinct_mobility.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
