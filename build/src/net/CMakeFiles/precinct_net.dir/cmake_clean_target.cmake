file(REMOVE_RECURSE
  "libprecinct_net.a"
)
