file(REMOVE_RECURSE
  "CMakeFiles/precinct_net.dir/message_stats.cpp.o"
  "CMakeFiles/precinct_net.dir/message_stats.cpp.o.d"
  "CMakeFiles/precinct_net.dir/spatial_grid.cpp.o"
  "CMakeFiles/precinct_net.dir/spatial_grid.cpp.o.d"
  "CMakeFiles/precinct_net.dir/wireless_net.cpp.o"
  "CMakeFiles/precinct_net.dir/wireless_net.cpp.o.d"
  "libprecinct_net.a"
  "libprecinct_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/precinct_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
