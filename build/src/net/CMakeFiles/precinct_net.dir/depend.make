# Empty dependencies file for precinct_net.
# This may be replaced when dependencies are built.
