file(REMOVE_RECURSE
  "CMakeFiles/precinct_geo.dir/geo_hash.cpp.o"
  "CMakeFiles/precinct_geo.dir/geo_hash.cpp.o.d"
  "CMakeFiles/precinct_geo.dir/geometry.cpp.o"
  "CMakeFiles/precinct_geo.dir/geometry.cpp.o.d"
  "CMakeFiles/precinct_geo.dir/region_table.cpp.o"
  "CMakeFiles/precinct_geo.dir/region_table.cpp.o.d"
  "libprecinct_geo.a"
  "libprecinct_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/precinct_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
