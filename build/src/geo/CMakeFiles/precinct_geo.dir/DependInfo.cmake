
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/geo_hash.cpp" "src/geo/CMakeFiles/precinct_geo.dir/geo_hash.cpp.o" "gcc" "src/geo/CMakeFiles/precinct_geo.dir/geo_hash.cpp.o.d"
  "/root/repo/src/geo/geometry.cpp" "src/geo/CMakeFiles/precinct_geo.dir/geometry.cpp.o" "gcc" "src/geo/CMakeFiles/precinct_geo.dir/geometry.cpp.o.d"
  "/root/repo/src/geo/region_table.cpp" "src/geo/CMakeFiles/precinct_geo.dir/region_table.cpp.o" "gcc" "src/geo/CMakeFiles/precinct_geo.dir/region_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/precinct_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
