# Empty compiler generated dependencies file for precinct_geo.
# This may be replaced when dependencies are built.
