file(REMOVE_RECURSE
  "libprecinct_geo.a"
)
