// UDP-backed WorldCoupler: the cross-domain transport for a fleet of
// precinct_node processes (DESIGN.md §14).
//
// One process hosts ONE domain of a world-sharded run.  Inside the
// process the full PReCinCt stack runs on its own sim::Simulator exactly
// as in-sim; only the ShardExecutor's SPSC mailboxes are replaced by UDP
// datagrams.  The contract is therefore bit-exact equivalence with
// core::WorldShardedScenario: the same windows, the same merge order
// (due, src domain, per-stream seq), the same conservation counters —
// which is what lets the DES act as the fleet's test oracle.
//
// Reliability: UDP drops, duplicates and reorders; the window barrier
// restores exactly-once in-order *merge* semantics.  Data messages
// (frames + halo deltas) carry a per-(src,dst) stream sequence number and
// are buffered by the sender until acknowledged.  Closing window W means:
// for every peer, the receiver knows the peer's cumulative stream count
// at W (from its WindowEnd marker — or from the *next* marker's
// prev_cum_sent, since peers are never more than one barrier apart) and
// holds every datagram below that count.  Gaps are NACKed and resent on a
// wall-clock retry cadence; a peer silent past `timeout_s` aborts the run
// loudly — a conservative-parallel fleet cannot outrun a dead member.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "net/wireless_net.hpp"
#include "transport/udp_socket.hpp"
#include "transport/wire_format.hpp"

namespace precinct::transport {

/// Envelope src_domain used by precinct_ctl for kInject datagrams (it is
/// an operator, not a domain peer).
inline constexpr std::uint32_t kCtlDomain = 0xFFFFFFFFu;

/// Transport-level counters.  The frame/delta cells mirror the in-sim
/// Coupler's conservation ledger (they appear in the fleet fingerprint);
/// the datagram cells are wall-clock diagnostics (retries are timing
/// dependent, so they are reported but never fingerprinted).
struct TransportCounters {
  std::uint64_t frames_posted = 0;
  std::uint64_t frames_beyond_horizon = 0;
  std::uint64_t deltas_posted = 0;
  std::uint64_t deltas_beyond_horizon = 0;
  std::uint64_t frames_processed = 0;
  std::uint64_t deltas_processed = 0;
  std::uint64_t messages_merged = 0;
  std::uint64_t windows = 0;

  std::uint64_t datagrams_sent = 0;
  std::uint64_t datagrams_received = 0;
  std::uint64_t datagram_bytes_sent = 0;
  std::uint64_t datagram_bytes_received = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t nacks_sent = 0;
  std::uint64_t duplicates_dropped = 0;
  std::uint64_t malformed_dropped = 0;
};

/// One merged cross-domain message, decoded and ready to schedule into
/// the local simulator at `due`.
struct MergedMsg {
  MsgType type = MsgType::kFrame;
  std::uint32_t src_domain = 0;
  std::uint64_t seq = 0;
  double due = 0.0;
  FrameMsg frame;        // valid when type == kFrame
  LivenessMsg liveness;  // valid when type == kLiveness
  RegionMsg region;      // valid when type == kRegion
  CatalogMsg catalog;    // valid when type == kCatalog
};

/// Why close_barrier() returned without closing.
enum class BarrierResult {
  kClosed,         ///< all peers reported; merged batch is valid
  kStopRequested,  ///< the local stop predicate fired (SIGTERM)
  kPeerStopped,    ///< a peer sent Bye(kStopped); drain gracefully
};

class UdpNet final : public net::WorldCoupler {
 public:
  struct Options {
    std::uint32_t domain = 0;
    std::uint32_t n_domains = 1;
    double horizon_s = 0.0;       ///< config end time (beyond-horizon test)
    std::uint64_t config_hash = 0;
    UdpAddress bind;              ///< this domain's socket address
    std::vector<UdpAddress> peer; ///< domain -> address (peer[domain] unused)
    double retry_s = 0.05;        ///< wall-clock resend/NACK cadence
    double timeout_s = 30.0;      ///< wall-clock silence budget per barrier
  };

  explicit UdpNet(const Options& opts);

  // -- WorldCoupler (called from inside the local sim's compute phase) --
  void post_frame(std::uint32_t src_domain, std::uint32_t dst_domain,
                  double due, const net::Packet& packet, bool is_unicast,
                  net::NodeId next_hop) override;
  void post_liveness(std::uint32_t src_domain, net::NodeId node, bool alive,
                     double now) override;
  void post_region(std::uint32_t src_domain, net::NodeId node,
                   geo::RegionId region, double now) override;
  void post_catalog_update(std::uint32_t src_domain, geo::Key key,
                           std::uint64_t version, double now) override;

  /// Mirror of ShardExecutor's conservative bound: post() of anything due
  /// earlier than this throws.  The daemon sets it before each compute
  /// phase (and halo deltas posted mid-window land exactly on it).
  void set_window_end(double window_end) noexcept { window_end_ = window_end; }
  [[nodiscard]] double window_end() const noexcept { return window_end_; }

  /// Hello exchange: solicit every peer until all have answered (and
  /// answered *us* — replies carry the config hash, so a split-brain
  /// fleet dies here).  `stop` is polled; returning true abandons the
  /// rendezvous and returns false.  Throws on timeout or hash mismatch.
  [[nodiscard]] bool rendezvous(const std::function<bool()>& stop);

  /// Close barrier `window` (0 = the post-initialize idle merge): send
  /// WindowEnd markers, collect every peer's stream up to its marked
  /// cumulative count, NACK gaps, and return the merged batch sorted by
  /// (due, src domain, seq) — the exact ShardExecutor merge order.
  /// Throws std::runtime_error on peer abort or timeout.
  [[nodiscard]] BarrierResult close_barrier(
      std::uint64_t window, double window_end_s,
      const std::function<bool()>& stop, std::vector<MergedMsg>& out);

  /// Announce shutdown to every peer (idempotent; resent during drain()).
  void send_bye(ByeReason reason);

  /// After a clean finish: keep answering NACKs/WindowEnd resends and
  /// re-sending our Bye until every peer said Bye too or `linger_s`
  /// elapses.  Lets slower peers finish their last barrier off our resend
  /// buffers instead of timing out.
  void drain(double linger_s, const std::function<bool()>& stop);

  /// Operator injections received so far (deduplicated, arrival order).
  /// Draining hands ownership to the caller.
  [[nodiscard]] std::vector<InjectMsg> take_injections();

  [[nodiscard]] TransportCounters& counters() noexcept { return counters_; }
  [[nodiscard]] const TransportCounters& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] std::uint16_t local_port() const { return sock_.local_port(); }

 private:
  struct PeerState {
    // Sender side (messages we address to this peer).
    std::uint64_t next_seq = 0;           ///< next stream seq to assign
    std::uint64_t cum_at_prev_barrier = 0;
    std::map<std::uint64_t, std::vector<std::uint8_t>> resend;
    // Receiver side (messages this peer addresses to us).
    std::uint64_t merged_cum = 0;         ///< stream consumed up to here
    std::map<std::uint64_t, MergedMsg> pending;
    std::map<std::uint64_t, std::uint64_t> window_cum;  ///< window -> cum
    bool hello_seen = false;
    bool bye_done = false;
  };

  [[nodiscard]] bool beyond_horizon(double due) const noexcept;
  void post_data(std::uint32_t dst, MsgType type, const WireWriter& body);
  template <typename Encode>
  void post_delta(std::uint32_t src, double now, MsgType type, Encode encode);

  void send_control(std::uint32_t dst, MsgType type, const WireWriter& body);
  void send_raw(std::uint32_t dst, const std::uint8_t* data, std::size_t n);
  void send_hello(std::uint32_t dst, bool is_reply);
  void send_window_end(std::uint32_t dst, std::uint64_t window,
                       double window_end_s);
  void send_nacks_for_gaps(std::uint32_t src, std::uint64_t target_cum);

  /// Drain the socket, dispatching every pending datagram.  Throws on a
  /// peer abort or a Hello hash mismatch.
  void pump();
  void handle_datagram(const std::uint8_t* data, std::size_t n);

  /// True when every peer's cum for `window` is known and fully buffered.
  [[nodiscard]] bool barrier_complete(std::uint64_t window) const;
  /// Pop [merged_cum, cum(window)) from every peer, sorted.
  void extract_batch(std::uint64_t window, std::vector<MergedMsg>& out);

  Options opts_;
  UdpSocket sock_;
  double window_end_ = 0.0;
  std::uint64_t last_window_ = 0;
  double last_window_end_s_ = 0.0;
  ByeReason bye_reason_ = ByeReason::kDone;
  std::vector<PeerState> peers_;  // indexed by domain; [domain_] unused
  TransportCounters counters_;
  std::set<std::uint64_t> seen_inject_ids_;
  std::vector<InjectMsg> injections_;
  bool peer_stopped_ = false;
  std::vector<std::uint8_t> rx_buf_;
};

}  // namespace precinct::transport
