#include "transport/udp_socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace precinct::transport {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " +
                           std::strerror(errno));
}

[[nodiscard]] sockaddr_in to_sockaddr(const UdpAddress& addr) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(addr.host);
  sa.sin_port = htons(addr.port);
  return sa;
}

// Largest datagram the transport ever sends: envelope + frame body with
// every optional packet block.  4 KiB leaves generous headroom.
constexpr std::size_t kMaxDatagram = 4096;

}  // namespace

UdpAddress parse_address(const std::string& text) {
  const auto colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= text.size()) {
    throw std::invalid_argument("udp address must be a.b.c.d:port, got '" +
                                text + "'");
  }
  const std::string host = text.substr(0, colon);
  const std::string port = text.substr(colon + 1);
  in_addr parsed{};
  if (inet_pton(AF_INET, host.c_str(), &parsed) != 1) {
    throw std::invalid_argument("bad IPv4 host in udp address '" + text +
                                "'");
  }
  std::size_t used = 0;
  unsigned long value = 0;
  try {
    value = std::stoul(port, &used);
  } catch (const std::exception&) {
    throw std::invalid_argument("bad port in udp address '" + text + "'");
  }
  if (used != port.size() || value == 0 || value > 65535) {
    throw std::invalid_argument("bad port in udp address '" + text + "'");
  }
  UdpAddress out;
  out.host = ntohl(parsed.s_addr);
  out.port = static_cast<std::uint16_t>(value);
  return out;
}

std::string to_string(const UdpAddress& addr) {
  in_addr ia{};
  ia.s_addr = htonl(addr.host);
  char text[INET_ADDRSTRLEN] = {};
  inet_ntop(AF_INET, &ia, text, sizeof text);
  return std::string(text) + ":" + std::to_string(addr.port);
}

UdpSocket::UdpSocket(const UdpAddress& bind_addr) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) throw_errno("socket");
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) < 0) {
    const int err = errno;
    ::close(fd_);
    errno = err;
    throw_errno("fcntl(O_NONBLOCK)");
  }
  sockaddr_in sa = to_sockaddr(bind_addr);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&sa), sizeof sa) < 0) {
    const int err = errno;
    ::close(fd_);
    errno = err;
    throw std::runtime_error("bind " + to_string(bind_addr) + ": " +
                             std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    const int err = errno;
    ::close(fd_);
    errno = err;
    throw_errno("getsockname");
  }
  local_port_ = ntohs(bound.sin_port);
}

UdpSocket::~UdpSocket() {
  if (fd_ >= 0) ::close(fd_);
}

UdpSocket::UdpSocket(UdpSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      local_port_(std::exchange(other.local_port_, 0)) {}

UdpSocket& UdpSocket::operator=(UdpSocket&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    local_port_ = std::exchange(other.local_port_, 0);
  }
  return *this;
}

bool UdpSocket::send_to(const UdpAddress& dst, const std::uint8_t* data,
                        std::size_t size) {
  if (size > kMaxDatagram) {
    throw std::runtime_error("datagram exceeds kMaxDatagram: " +
                             std::to_string(size));
  }
  const sockaddr_in sa = to_sockaddr(dst);
  const ssize_t n =
      ::sendto(fd_, data, size, 0, reinterpret_cast<const sockaddr*>(&sa),
               sizeof sa);
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS ||
        errno == ECONNREFUSED) {
      // Full buffer or a peer that has not bound yet: both look like
      // datagram loss; the window protocol retransmits.
      return false;
    }
    throw_errno("sendto");
  }
  return static_cast<std::size_t>(n) == size;
}

bool UdpSocket::recv_from(std::vector<std::uint8_t>& buf, UdpAddress* from) {
  buf.resize(kMaxDatagram);
  sockaddr_in sa{};
  socklen_t len = sizeof sa;
  const ssize_t n = ::recvfrom(fd_, buf.data(), buf.size(), 0,
                               reinterpret_cast<sockaddr*>(&sa), &len);
  if (n < 0) {
    buf.clear();
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
        errno == ECONNREFUSED) {
      return false;
    }
    throw_errno("recvfrom");
  }
  buf.resize(static_cast<std::size_t>(n));
  if (from != nullptr) {
    from->host = ntohl(sa.sin_addr.s_addr);
    from->port = ntohs(sa.sin_port);
  }
  return true;
}

bool UdpSocket::wait_readable(int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  const int rc = ::poll(&pfd, 1, timeout_ms);
  if (rc < 0) {
    if (errno == EINTR) return false;
    throw_errno("poll");
  }
  return rc > 0 && (pfd.revents & POLLIN) != 0;
}

}  // namespace precinct::transport
