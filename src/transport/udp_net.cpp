#include "transport/udp_net.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <tuple>

namespace precinct::transport {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] Clock::duration secs(double s) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(s));
}

[[nodiscard]] int ms_until(Clock::time_point deadline) {
  const auto d = deadline - Clock::now();
  if (d <= Clock::duration::zero()) return 0;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(d).count();
  return static_cast<int>(std::min<long long>(ms + 1, 1000));
}

constexpr int kMaxNackRangesPerTick = 8;

}  // namespace

UdpNet::UdpNet(const Options& opts)
    : opts_(opts), sock_(opts.bind), peers_(opts.n_domains) {
  if (opts_.domain >= opts_.n_domains) {
    throw std::invalid_argument("UdpNet: domain out of range");
  }
  if (opts_.peer.size() != opts_.n_domains) {
    throw std::invalid_argument("UdpNet: peer table size != n_domains");
  }
  if (!(opts_.retry_s > 0.0) || !(opts_.timeout_s > opts_.retry_s)) {
    throw std::invalid_argument("UdpNet: need 0 < retry_s < timeout_s");
  }
}

// -- WorldCoupler posts -----------------------------------------------------

bool UdpNet::beyond_horizon(double due) const noexcept {
  // Same predicate as the in-sim Coupler: due past the horizon, or due
  // exactly at the horizon posted during the final window (merged after
  // the last compute phase, so it never executes).
  return due > opts_.horizon_s ||
         (due == opts_.horizon_s && window_end_ >= opts_.horizon_s);
}

void UdpNet::post_frame(std::uint32_t src_domain, std::uint32_t dst_domain,
                        double due, const net::Packet& packet,
                        bool is_unicast, net::NodeId next_hop) {
  if (src_domain != opts_.domain || dst_domain >= opts_.n_domains ||
      dst_domain == src_domain) {
    throw std::logic_error("UdpNet::post_frame: bad src/dst domain");
  }
  if (due < window_end_) {
    // ShardExecutor::post's conservative-safety rule, verbatim.
    throw std::logic_error("UdpNet::post_frame: due precedes window end");
  }
  ++counters_.frames_posted;
  if (beyond_horizon(due)) ++counters_.frames_beyond_horizon;
  FrameMsg m;
  m.due = due;
  m.is_unicast = is_unicast;
  m.next_hop = next_hop;
  m.packet = packet;
  WireWriter body;
  encode_frame(m, body);
  post_data(dst_domain, MsgType::kFrame, body);
}

template <typename Encode>
void UdpNet::post_delta(std::uint32_t src, double now, MsgType type,
                        Encode encode) {
  if (src != opts_.domain) {
    throw std::logic_error("UdpNet::post_delta: not our domain");
  }
  // Earliest due the conservative bound admits; while idle (initialize,
  // window_end_ == 0) that is `now` itself, so init-time deltas merge at
  // barrier 0 — identical to the in-sim Coupler.
  const double due = std::max(now, window_end_);
  const bool beyond = beyond_horizon(due);
  WireWriter body;
  encode(due, body);
  for (std::uint32_t dst = 0; dst < opts_.n_domains; ++dst) {
    if (dst == src) continue;
    ++counters_.deltas_posted;
    if (beyond) ++counters_.deltas_beyond_horizon;
    post_data(dst, type, body);
  }
}

void UdpNet::post_liveness(std::uint32_t src_domain, net::NodeId node,
                           bool alive, double now) {
  post_delta(src_domain, now, MsgType::kLiveness,
             [&](double due, WireWriter& w) {
               LivenessMsg m;
               m.due = due;
               m.node = node;
               m.alive = alive;
               encode_liveness(m, w);
             });
}

void UdpNet::post_region(std::uint32_t src_domain, net::NodeId node,
                         geo::RegionId region, double now) {
  post_delta(src_domain, now, MsgType::kRegion,
             [&](double due, WireWriter& w) {
               RegionMsg m;
               m.due = due;
               m.node = node;
               m.region = region;
               encode_region(m, w);
             });
}

void UdpNet::post_catalog_update(std::uint32_t src_domain, geo::Key key,
                                 std::uint64_t version, double now) {
  post_delta(src_domain, now, MsgType::kCatalog,
             [&](double due, WireWriter& w) {
               CatalogMsg m;
               m.due = due;
               m.key = key;
               m.version = version;
               m.written_at = now;
               encode_catalog(m, w);
             });
}

// -- sending ----------------------------------------------------------------

void UdpNet::send_raw(std::uint32_t dst, const std::uint8_t* data,
                      std::size_t n) {
  // A false return is kernel-buffer pressure or an unbound peer: both are
  // datagram loss, which the NACK/retry path repairs.
  (void)sock_.send_to(opts_.peer[dst], data, n);
  ++counters_.datagrams_sent;
  counters_.datagram_bytes_sent += n;
}

void UdpNet::post_data(std::uint32_t dst, MsgType type,
                       const WireWriter& body) {
  PeerState& peer = peers_[dst];
  Envelope e;
  e.type = type;
  e.src_domain = opts_.domain;
  e.seq = peer.next_seq++;
  WireWriter dgram;
  encode_envelope(e, dgram);
  dgram.bytes(body.data().data(), body.size());
  auto [it, inserted] = peer.resend.emplace(e.seq, dgram.data());
  (void)inserted;
  send_raw(dst, it->second.data(), it->second.size());
}

void UdpNet::send_control(std::uint32_t dst, MsgType type,
                          const WireWriter& body) {
  Envelope e;
  e.type = type;
  e.src_domain = opts_.domain;
  e.seq = 0;
  WireWriter dgram;
  encode_envelope(e, dgram);
  dgram.bytes(body.data().data(), body.size());
  send_raw(dst, dgram.data().data(), dgram.size());
}

void UdpNet::send_hello(std::uint32_t dst, bool is_reply) {
  HelloMsg m;
  m.n_domains = opts_.n_domains;
  m.config_hash = opts_.config_hash;
  WireWriter body;
  encode_hello(m, body);
  Envelope e;
  e.type = MsgType::kHello;
  e.src_domain = opts_.domain;
  e.seq = is_reply ? 1 : 0;  // replies are not themselves answered
  WireWriter dgram;
  encode_envelope(e, dgram);
  dgram.bytes(body.data().data(), body.size());
  send_raw(dst, dgram.data().data(), dgram.size());
}

void UdpNet::send_window_end(std::uint32_t dst, std::uint64_t window,
                             double window_end_s) {
  const PeerState& peer = peers_[dst];
  WindowEndMsg m;
  m.window = window;
  m.cum_sent = peer.next_seq;  // stable: nothing posts while waiting
  m.prev_cum_sent = peer.cum_at_prev_barrier;
  m.acked_cum = peer.merged_cum;
  m.window_end_s = window_end_s;
  WireWriter body;
  encode_window_end(m, body);
  send_control(dst, MsgType::kWindowEnd, body);
}

void UdpNet::send_bye(ByeReason reason) {
  bye_reason_ = reason;
  ByeMsg m;
  m.reason = reason;
  WireWriter body;
  encode_bye(m, body);
  for (std::uint32_t dst = 0; dst < opts_.n_domains; ++dst) {
    if (dst == opts_.domain) continue;
    send_control(dst, MsgType::kBye, body);
  }
}

void UdpNet::send_nacks_for_gaps(std::uint32_t src, std::uint64_t target_cum) {
  const PeerState& peer = peers_[src];
  int ranges = 0;
  std::uint64_t expected = peer.merged_cum;
  auto it = peer.pending.lower_bound(expected);
  while (expected < target_cum && ranges < kMaxNackRangesPerTick) {
    const std::uint64_t have =
        (it != peer.pending.end() && it->first < target_cum) ? it->first
                                                             : target_cum;
    if (expected < have) {
      NackMsg m;
      m.from_seq = expected;
      m.to_seq = have;
      WireWriter body;
      encode_nack(m, body);
      send_control(src, MsgType::kNack, body);
      ++counters_.nacks_sent;
      ++ranges;
    }
    if (it == peer.pending.end() || it->first >= target_cum) break;
    expected = it->first + 1;
    ++it;
  }
}

// -- receiving --------------------------------------------------------------

void UdpNet::pump() {
  while (sock_.recv_from(rx_buf_)) {
    ++counters_.datagrams_received;
    counters_.datagram_bytes_received += rx_buf_.size();
    handle_datagram(rx_buf_.data(), rx_buf_.size());
  }
}

void UdpNet::handle_datagram(const std::uint8_t* data, std::size_t n) {
  WireReader r(data, n);
  Envelope e;
  if (!decode_envelope(r, e)) {
    ++counters_.malformed_dropped;
    return;
  }
  if (e.type == MsgType::kInject) {
    // Comes from precinct_ctl, not a domain peer; src_domain is kCtlDomain.
    InjectMsg m;
    if (!decode_inject(r, m) || r.remaining() != 0) {
      ++counters_.malformed_dropped;
      return;
    }
    if (seen_inject_ids_.insert(m.inject_id).second) {
      injections_.push_back(m);
    }
    return;
  }
  if (e.src_domain >= opts_.n_domains || e.src_domain == opts_.domain) {
    ++counters_.malformed_dropped;
    return;
  }
  PeerState& peer = peers_[e.src_domain];
  switch (e.type) {
    case MsgType::kHello: {
      HelloMsg m;
      if (!decode_hello(r, m)) {
        ++counters_.malformed_dropped;
        return;
      }
      if (m.n_domains != opts_.n_domains ||
          m.config_hash != opts_.config_hash) {
        throw std::runtime_error(
            "UdpNet: peer domain " + std::to_string(e.src_domain) +
            " is running a different scenario (config-hash mismatch) — "
            "refusing a split-brain fleet");
      }
      peer.hello_seen = true;
      if (e.seq == 0) send_hello(e.src_domain, /*is_reply=*/true);
      return;
    }
    case MsgType::kWindowEnd: {
      WindowEndMsg m;
      if (!decode_window_end(r, m)) {
        ++counters_.malformed_dropped;
        return;
      }
      peer.window_cum[m.window] = m.cum_sent;
      if (m.window > 0) {
        // Peers are at most one barrier ahead: the marker for window W
        // doubles as a (possibly lost) marker for W-1.
        peer.window_cum.emplace(m.window - 1, m.prev_cum_sent);
      }
      peer.resend.erase(peer.resend.begin(),
                        peer.resend.lower_bound(m.acked_cum));
      return;
    }
    case MsgType::kFrame:
    case MsgType::kLiveness:
    case MsgType::kRegion:
    case MsgType::kCatalog: {
      if (e.seq < peer.merged_cum || peer.pending.count(e.seq) != 0) {
        ++counters_.duplicates_dropped;
        return;
      }
      MergedMsg m;
      m.type = e.type;
      m.src_domain = e.src_domain;
      m.seq = e.seq;
      bool ok = false;
      switch (e.type) {
        case MsgType::kFrame:
          ok = decode_frame(r, m.frame);
          m.due = m.frame.due;
          break;
        case MsgType::kLiveness:
          ok = decode_liveness(r, m.liveness);
          m.due = m.liveness.due;
          break;
        case MsgType::kRegion:
          ok = decode_region(r, m.region);
          m.due = m.region.due;
          break;
        default:
          ok = decode_catalog(r, m.catalog);
          m.due = m.catalog.due;
          break;
      }
      if (!ok || r.remaining() != 0) {
        ++counters_.malformed_dropped;
        return;
      }
      peer.pending.emplace(e.seq, std::move(m));
      return;
    }
    case MsgType::kNack: {
      NackMsg m;
      if (!decode_nack(r, m)) {
        ++counters_.malformed_dropped;
        return;
      }
      for (auto it = peer.resend.lower_bound(m.from_seq);
           it != peer.resend.end() && it->first < m.to_seq; ++it) {
        send_raw(e.src_domain, it->second.data(), it->second.size());
        ++counters_.retransmits;
      }
      return;
    }
    case MsgType::kBye: {
      ByeMsg m;
      if (!decode_bye(r, m)) {
        ++counters_.malformed_dropped;
        return;
      }
      peer.bye_done = true;
      if (m.reason == ByeReason::kStopped) peer_stopped_ = true;
      if (m.reason == ByeReason::kAborted) {
        throw std::runtime_error("UdpNet: peer domain " +
                                 std::to_string(e.src_domain) +
                                 " aborted; run results are void");
      }
      return;
    }
    default:
      ++counters_.malformed_dropped;
      return;
  }
}

// -- rendezvous / barrier / drain -------------------------------------------

bool UdpNet::rendezvous(const std::function<bool()>& stop) {
  const auto deadline = Clock::now() + secs(opts_.timeout_s);
  auto next_retry = Clock::now();
  for (;;) {
    pump();
    bool all = true;
    for (std::uint32_t d = 0; d < opts_.n_domains; ++d) {
      if (d != opts_.domain && !peers_[d].hello_seen) all = false;
    }
    if (all) return true;
    if (stop && stop()) return false;
    if (peer_stopped_) return false;
    const auto now = Clock::now();
    if (now >= deadline) {
      send_bye(ByeReason::kAborted);
      throw std::runtime_error("UdpNet: rendezvous timeout — not all peers "
                               "answered Hello");
    }
    if (now >= next_retry) {
      for (std::uint32_t d = 0; d < opts_.n_domains; ++d) {
        if (d != opts_.domain && !peers_[d].hello_seen) {
          send_hello(d, /*is_reply=*/false);
        }
      }
      next_retry = now + secs(opts_.retry_s);
    }
    sock_.wait_readable(ms_until(std::min(next_retry, deadline)));
  }
}

bool UdpNet::barrier_complete(std::uint64_t window) const {
  for (std::uint32_t d = 0; d < opts_.n_domains; ++d) {
    if (d == opts_.domain) continue;
    const PeerState& peer = peers_[d];
    const auto it = peer.window_cum.find(window);
    if (it == peer.window_cum.end()) return false;
    for (std::uint64_t seq = peer.merged_cum; seq < it->second; ++seq) {
      if (peer.pending.count(seq) == 0) return false;
    }
  }
  return true;
}

void UdpNet::extract_batch(std::uint64_t window, std::vector<MergedMsg>& out) {
  for (std::uint32_t d = 0; d < opts_.n_domains; ++d) {
    if (d == opts_.domain) continue;
    PeerState& peer = peers_[d];
    const std::uint64_t cum = peer.window_cum.at(window);
    for (std::uint64_t seq = peer.merged_cum; seq < cum; ++seq) {
      auto it = peer.pending.find(seq);
      out.push_back(std::move(it->second));
      peer.pending.erase(it);
    }
    peer.merged_cum = cum;
    peer.window_cum.erase(peer.window_cum.begin(),
                          peer.window_cum.upper_bound(window));
    // Sender side: this barrier's cum becomes the next marker's
    // prev_cum_sent.
    peer.cum_at_prev_barrier = peer.next_seq;
  }
  counters_.messages_merged += out.size();
  // The ShardExecutor merge order, verbatim: (due, src domain, seq).
  std::sort(out.begin(), out.end(),
            [](const MergedMsg& a, const MergedMsg& b) {
              return std::tie(a.due, a.src_domain, a.seq) <
                     std::tie(b.due, b.src_domain, b.seq);
            });
}

BarrierResult UdpNet::close_barrier(std::uint64_t window,
                                    double window_end_s,
                                    const std::function<bool()>& stop,
                                    std::vector<MergedMsg>& out) {
  out.clear();
  last_window_ = window;
  last_window_end_s_ = window_end_s;
  const auto deadline = Clock::now() + secs(opts_.timeout_s);
  auto next_retry = Clock::now();
  for (;;) {
    pump();
    if (barrier_complete(window)) {
      extract_batch(window, out);
      return BarrierResult::kClosed;
    }
    if (peer_stopped_) return BarrierResult::kPeerStopped;
    if (stop && stop()) return BarrierResult::kStopRequested;
    const auto now = Clock::now();
    if (now >= deadline) {
      send_bye(ByeReason::kAborted);
      throw std::runtime_error(
          "UdpNet: barrier " + std::to_string(window) +
          " timed out after " + std::to_string(opts_.timeout_s) +
          "s — a peer is dead or unreachable");
    }
    if (now >= next_retry) {
      for (std::uint32_t d = 0; d < opts_.n_domains; ++d) {
        if (d == opts_.domain) continue;
        send_window_end(d, window, window_end_s);
        const auto it = peers_[d].window_cum.find(window);
        if (it != peers_[d].window_cum.end()) {
          send_nacks_for_gaps(d, it->second);
        }
      }
      next_retry = now + secs(opts_.retry_s);
    }
    sock_.wait_readable(ms_until(std::min(next_retry, deadline)));
  }
}

void UdpNet::drain(double linger_s, const std::function<bool()>& stop) {
  const auto deadline = Clock::now() + secs(linger_s);
  auto next_retry = Clock::now();
  for (;;) {
    pump();
    bool all = true;
    for (std::uint32_t d = 0; d < opts_.n_domains; ++d) {
      if (d != opts_.domain && !peers_[d].bye_done) all = false;
    }
    if (all) return;
    if (stop && stop()) return;
    const auto now = Clock::now();
    if (now >= deadline) return;  // best-effort: linger is a courtesy
    if (now >= next_retry) {
      ByeMsg m;
      m.reason = bye_reason_;
      WireWriter body;
      encode_bye(m, body);
      for (std::uint32_t d = 0; d < opts_.n_domains; ++d) {
        if (d == opts_.domain || peers_[d].bye_done) continue;
        send_control(d, MsgType::kBye, body);
        // A slower peer may still be closing its last barrier off our
        // resend buffers; keep our final marker alive for it.
        send_window_end(d, last_window_, last_window_end_s_);
      }
      next_retry = now + secs(opts_.retry_s);
    }
    sock_.wait_readable(ms_until(std::min(next_retry, deadline)));
  }
}

std::vector<InjectMsg> UdpNet::take_injections() {
  std::vector<InjectMsg> out;
  out.swap(injections_);
  return out;
}

}  // namespace precinct::transport
