// PReCinCt wire format v1 (DESIGN.md §14, docs/PROTOCOL.md appendix A).
//
// The real-transport backend marshals the exact same `net::Packet` values
// the simulator moves between replicas — so the codec's contract is
// *bit-exact round-tripping* of every field, doubles included (they travel
// as raw IEEE-754 bit patterns, so NaNs and signed zeros survive).  All
// integers are little-endian on the wire regardless of host order.
//
// Every datagram opens with a fixed envelope:
//
//   0:4   magic "PRCT"
//   4     wire version (kWireVersion; receivers reject anything else)
//   5     message type (MsgType)
//   6:10  source domain (u32)
//   10:18 stream sequence number (u64; per (src, dst) stream for the
//         reliable data types, 0 for control messages)
//
// Packet bodies use a fixed header plus optional blocks gated by a flags
// byte, so common control frames stay small while response/perimeter
// state round-trips exactly when present (presence is decided on *bit
// patterns*, not numeric equality, so ttr = -0.0 still gets its block).
//
// Decoding is defensive end to end: a truncated buffer, a wrong version,
// an unknown message type or an out-of-range enum value makes decode
// return false (never throw, never read past the buffer) — a daemon fed
// garbage drops the datagram and keeps serving.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "support/rng.hpp"

namespace precinct::transport {

inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kMagicBytes = 4;
inline constexpr char kMagic[kMagicBytes + 1] = "PRCT";
inline constexpr std::size_t kEnvelopeBytes = 18;

/// Datagram types.  kFrame/kLiveness/kRegion/kCatalog are sequenced,
/// reliable data messages (they carry the cross-domain traffic the
/// in-process ShardExecutor would put in its mailboxes); the rest are
/// idempotent control messages resent freely.
enum class MsgType : std::uint8_t {
  kHello = 1,      ///< rendezvous + config-hash check; always answered
  kWindowEnd = 2,  ///< window barrier marker (cumulative stream counts)
  kFrame = 3,      ///< marshalled radio frame (WorldCoupler::post_frame)
  kLiveness = 4,   ///< halo delta: kill/revive
  kRegion = 5,     ///< halo delta: region assignment
  kCatalog = 6,    ///< halo delta: catalog version observation
  kNack = 7,       ///< resend request for a sequence range
  kBye = 8,        ///< drain notice (done / stopped / aborted)
  kInject = 9,     ///< precinct_ctl request/update injection
};

[[nodiscard]] const char* to_string(MsgType type) noexcept;

/// Little-endian byte sink.  Appends; the buffer is the datagram.
class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// Raw IEEE-754 bits — exact for every double including NaN payloads.
  void f64(double v);
  void bytes(const void* data, std::size_t n);

  [[nodiscard]] const std::vector<std::uint8_t>& data() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  void clear() noexcept { buf_.clear(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian reader: every getter returns false once
/// the buffer underruns, and stays false (sticky), so decoders can read a
/// whole struct and check ok() once.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size) noexcept
      : p_(data), n_(size) {}

  bool u8(std::uint8_t& v) noexcept;
  bool u16(std::uint16_t& v) noexcept;
  bool u32(std::uint32_t& v) noexcept;
  bool u64(std::uint64_t& v) noexcept;
  bool f64(double& v) noexcept;

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return n_ - pos_; }

 private:
  [[nodiscard]] bool take(std::size_t n) noexcept;

  const std::uint8_t* p_;
  std::size_t n_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// -- Packet codec -----------------------------------------------------------

/// Encoded size of `p` under wire version 1 (fixed header + whichever
/// optional blocks its field values require).  This is also what the
/// simulator charges as "wire bytes" (MessageStats), so sim and UDP runs
/// report traffic on the same basis.
[[nodiscard]] std::size_t wire_size(const net::Packet& p) noexcept;

/// Append the version-1 encoding of `p` to `w`.
void encode_packet(const net::Packet& p, WireWriter& w);

/// Decode one packet from `r`.  Returns false (leaving `p` unspecified)
/// on truncation or out-of-range kind/mode; never throws.
[[nodiscard]] bool decode_packet(WireReader& r, net::Packet& p) noexcept;

/// Bit-exact field comparison (doubles compared as bit patterns, so NaN
/// == NaN and +0.0 != -0.0): the fuzz property's equality relation.
[[nodiscard]] bool packets_identical(const net::Packet& a,
                                     const net::Packet& b) noexcept;

/// Draw a packet with every field randomized (including hostile doubles:
/// raw bit patterns, infinities, signed zeros) for codec fuzzing.
[[nodiscard]] net::Packet random_wire_packet(support::Rng& rng,
                                             net::PacketKind kind);

// -- envelope ---------------------------------------------------------------

struct Envelope {
  MsgType type = MsgType::kHello;
  std::uint32_t src_domain = 0;
  std::uint64_t seq = 0;
};

void encode_envelope(const Envelope& e, WireWriter& w);

/// Returns false on bad magic, wrong version, unknown type or truncation.
[[nodiscard]] bool decode_envelope(WireReader& r, Envelope& e) noexcept;

// -- message bodies ---------------------------------------------------------

/// kFrame body: a cross-domain radio frame and its delivery instant.
struct FrameMsg {
  double due = 0.0;
  bool is_unicast = false;
  net::NodeId next_hop = net::kNoNode;
  net::Packet packet;
};

/// kLiveness body: halo kill/revive delta.
struct LivenessMsg {
  double due = 0.0;
  net::NodeId node = net::kNoNode;
  bool alive = false;
};

/// kRegion body: halo region-assignment delta.
struct RegionMsg {
  double due = 0.0;
  net::NodeId node = net::kNoNode;
  geo::RegionId region = geo::kInvalidRegion;
};

/// kCatalog body: halo catalog-version delta.  `written_at` is the write
/// instant in the updater's domain (becomes the replica's last_update_s);
/// `due` is the window boundary the delta applies at.
struct CatalogMsg {
  double due = 0.0;
  geo::Key key = 0;
  std::uint64_t version = 0;
  double written_at = 0.0;
};

/// kWindowEnd body: the barrier marker closing `window` (0 is the
/// initialization barrier before the first lookahead window).  `cum_sent`
/// counts every data message this sender has addressed to the receiver up
/// to and including that window; `prev_cum_sent` is the same count one
/// window earlier (carried so a receiver that missed the previous marker
/// can still close its barrier — peers are never more than one window
/// apart).  `acked_cum` tells the receiver how much of *its* stream the
/// sender has merged, pruning the sender-side resend buffer.
struct WindowEndMsg {
  std::uint64_t window = 0;
  std::uint64_t cum_sent = 0;
  std::uint64_t prev_cum_sent = 0;
  std::uint64_t acked_cum = 0;
  double window_end_s = 0.0;  ///< diagnostic: the closing window's end time
};

/// kHello body: rendezvous.  `config_hash` fingerprints the scenario
/// (config text + domain count + wire version); daemons refuse to run a
/// split-brain fleet.
struct HelloMsg {
  std::uint32_t n_domains = 0;
  std::uint64_t config_hash = 0;
};

/// kNack body: "resend data seqs [from_seq, to_seq) of your stream".
struct NackMsg {
  std::uint64_t from_seq = 0;
  std::uint64_t to_seq = 0;
};

/// kBye body: why the sender stopped participating.
enum class ByeReason : std::uint8_t {
  kDone = 0,     ///< ran to the horizon and finalized
  kStopped = 1,  ///< graceful operator stop (SIGTERM / precinct_ctl stop)
  kAborted = 2,  ///< error; the run's results are void
};

struct ByeMsg {
  ByeReason reason = ByeReason::kDone;
};

/// kInject body: one operator-injected request/update.  `inject_id`
/// deduplicates retries; every daemon receives the injection and only the
/// target node's owner applies it.
struct InjectMsg {
  std::uint64_t inject_id = 0;
  std::uint8_t op = 0;  ///< 0 = request, 1 = update
  net::NodeId node = net::kNoNode;
  std::uint64_t key_rank = 0;  ///< catalog popularity rank (mod catalog size)
};

void encode_frame(const FrameMsg& m, WireWriter& w);
void encode_liveness(const LivenessMsg& m, WireWriter& w);
void encode_region(const RegionMsg& m, WireWriter& w);
void encode_catalog(const CatalogMsg& m, WireWriter& w);
void encode_window_end(const WindowEndMsg& m, WireWriter& w);
void encode_hello(const HelloMsg& m, WireWriter& w);
void encode_nack(const NackMsg& m, WireWriter& w);
void encode_bye(const ByeMsg& m, WireWriter& w);
void encode_inject(const InjectMsg& m, WireWriter& w);

[[nodiscard]] bool decode_frame(WireReader& r, FrameMsg& m) noexcept;
[[nodiscard]] bool decode_liveness(WireReader& r, LivenessMsg& m) noexcept;
[[nodiscard]] bool decode_region(WireReader& r, RegionMsg& m) noexcept;
[[nodiscard]] bool decode_catalog(WireReader& r, CatalogMsg& m) noexcept;
[[nodiscard]] bool decode_window_end(WireReader& r, WindowEndMsg& m) noexcept;
[[nodiscard]] bool decode_hello(WireReader& r, HelloMsg& m) noexcept;
[[nodiscard]] bool decode_nack(WireReader& r, NackMsg& m) noexcept;
[[nodiscard]] bool decode_bye(WireReader& r, ByeMsg& m) noexcept;
[[nodiscard]] bool decode_inject(WireReader& r, InjectMsg& m) noexcept;

// -- hex repro helpers ------------------------------------------------------

/// Lowercase hex dump of a buffer (fuzz repro format: replay with
/// `precinct_fuzz --packet-hex <hex>`).
[[nodiscard]] std::string to_hex(const std::uint8_t* data, std::size_t n);
[[nodiscard]] std::string to_hex(const std::vector<std::uint8_t>& buf);

/// Parse a hex string back into bytes; throws std::invalid_argument on a
/// non-hex character or odd length.
[[nodiscard]] std::vector<std::uint8_t> from_hex(const std::string& hex);

}  // namespace precinct::transport
