#include "transport/wire_format.hpp"

#include <bit>
#include <cstring>
#include <limits>
#include <stdexcept>

namespace precinct::transport {

namespace {

[[nodiscard]] std::uint64_t dbits(double v) noexcept {
  return std::bit_cast<std::uint64_t>(v);
}

[[nodiscard]] double dfrom(std::uint64_t bits) noexcept {
  return std::bit_cast<double>(bits);
}

[[nodiscard]] bool point_nonzero(const geo::Point& p) noexcept {
  return dbits(p.x) != 0 || dbits(p.y) != 0;
}

// Packet flags byte.
constexpr std::uint8_t kFlagPerimeter = 0x01;
constexpr std::uint8_t kFlagRecovery = 0x02;
constexpr std::uint8_t kFlagDestNode = 0x04;
constexpr std::uint8_t kFlagDestRegion = 0x08;
constexpr std::uint8_t kFlagPerimeterBlock = 0x10;
constexpr std::uint8_t kFlagResponseBlock = 0x20;
constexpr std::uint8_t kFlagKnownMask = 0x3F;

/// Presence is decided on bit patterns (never numeric comparison) so the
/// encode→decode→encode fixed point holds for -0.0 and NaN payloads too.
[[nodiscard]] bool needs_perimeter_block(const net::Packet& p) noexcept {
  return p.perimeter || point_nonzero(p.perimeter_entry) ||
         p.perimeter_entry_node != net::kNoNode ||
         p.perimeter_first_hop != net::kNoNode;
}

[[nodiscard]] bool needs_response_block(const net::Packet& p) noexcept {
  return p.version != 0 || dbits(p.ttr_s) != 0 || p.hit_class != 0 ||
         p.responder_region != geo::kInvalidRegion;
}

[[nodiscard]] std::uint8_t packet_flags(const net::Packet& p) noexcept {
  std::uint8_t flags = 0;
  if (p.perimeter) flags |= kFlagPerimeter;
  if (p.recovery) flags |= kFlagRecovery;
  if (p.dest_node != net::kNoNode) flags |= kFlagDestNode;
  if (p.dest_region != geo::kInvalidRegion) flags |= kFlagDestRegion;
  if (needs_perimeter_block(p)) flags |= kFlagPerimeterBlock;
  if (needs_response_block(p)) flags |= kFlagResponseBlock;
  return flags;
}

constexpr std::size_t kPacketFixedBytes = 107;
constexpr std::size_t kDestNodeBytes = 4;
constexpr std::size_t kDestRegionBytes = 4;
constexpr std::size_t kPerimeterBlockBytes = 24;
constexpr std::size_t kResponseBlockBytes = 21;

constexpr std::uint8_t kRouteModeCount = 3;

}  // namespace

const char* to_string(MsgType type) noexcept {
  switch (type) {
    case MsgType::kHello: return "hello";
    case MsgType::kWindowEnd: return "window-end";
    case MsgType::kFrame: return "frame";
    case MsgType::kLiveness: return "liveness";
    case MsgType::kRegion: return "region";
    case MsgType::kCatalog: return "catalog";
    case MsgType::kNack: return "nack";
    case MsgType::kBye: return "bye";
    case MsgType::kInject: return "inject";
  }
  return "unknown";
}

// -- writer / reader --------------------------------------------------------

void WireWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void WireWriter::u32(std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void WireWriter::u64(std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void WireWriter::f64(double v) { u64(dbits(v)); }

void WireWriter::bytes(const void* data, std::size_t n) {
  const auto* b = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), b, b + n);
}

bool WireReader::take(std::size_t n) noexcept {
  if (!ok_ || n_ - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

bool WireReader::u8(std::uint8_t& v) noexcept {
  if (!take(1)) return false;
  v = p_[pos_++];
  return true;
}

bool WireReader::u16(std::uint16_t& v) noexcept {
  if (!take(2)) return false;
  v = static_cast<std::uint16_t>(p_[pos_] |
                                 (static_cast<std::uint16_t>(p_[pos_ + 1])
                                  << 8));
  pos_ += 2;
  return true;
}

bool WireReader::u32(std::uint32_t& v) noexcept {
  if (!take(4)) return false;
  v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(p_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return true;
}

bool WireReader::u64(std::uint64_t& v) noexcept {
  if (!take(8)) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return true;
}

bool WireReader::f64(double& v) noexcept {
  std::uint64_t bits = 0;
  if (!u64(bits)) return false;
  v = dfrom(bits);
  return true;
}

// -- Packet codec -----------------------------------------------------------

std::size_t wire_size(const net::Packet& p) noexcept {
  std::size_t n = kPacketFixedBytes;
  if (p.dest_node != net::kNoNode) n += kDestNodeBytes;
  if (p.dest_region != geo::kInvalidRegion) n += kDestRegionBytes;
  if (needs_perimeter_block(p)) n += kPerimeterBlockBytes;
  if (needs_response_block(p)) n += kResponseBlockBytes;
  return n;
}

void encode_packet(const net::Packet& p, WireWriter& w) {
  const std::uint8_t flags = packet_flags(p);
  w.u8(static_cast<std::uint8_t>(p.kind));
  w.u8(static_cast<std::uint8_t>(p.mode));
  w.u8(flags);
  w.u64(p.id);
  w.u32(p.origin);
  w.u32(p.src);
  w.f64(p.src_location.x);
  w.f64(p.src_location.y);
  w.f64(p.origin_location.x);
  w.f64(p.origin_location.y);
  w.f64(p.dest_location.x);
  w.f64(p.dest_location.y);
  w.u64(p.key);
  w.u64(static_cast<std::uint64_t>(p.size_bytes));
  w.u32(static_cast<std::uint32_t>(p.ttl));
  w.u32(static_cast<std::uint32_t>(p.hops));
  w.u64(p.request_id);
  w.f64(p.created_at);
  if (flags & kFlagDestNode) w.u32(p.dest_node);
  if (flags & kFlagDestRegion) w.u32(p.dest_region);
  if (flags & kFlagPerimeterBlock) {
    w.f64(p.perimeter_entry.x);
    w.f64(p.perimeter_entry.y);
    w.u32(p.perimeter_entry_node);
    w.u32(p.perimeter_first_hop);
  }
  if (flags & kFlagResponseBlock) {
    w.u64(p.version);
    w.f64(p.ttr_s);
    w.u8(p.hit_class);
    w.u32(p.responder_region);
  }
}

bool decode_packet(WireReader& r, net::Packet& p) noexcept {
  p = net::Packet{};
  std::uint8_t kind = 0;
  std::uint8_t mode = 0;
  std::uint8_t flags = 0;
  if (!r.u8(kind) || !r.u8(mode) || !r.u8(flags)) return false;
  if (kind >= net::kPacketKindCount || mode >= kRouteModeCount ||
      (flags & ~kFlagKnownMask) != 0) {
    return false;
  }
  p.kind = static_cast<net::PacketKind>(kind);
  p.mode = static_cast<net::RouteMode>(mode);
  p.perimeter = (flags & kFlagPerimeter) != 0;
  p.recovery = (flags & kFlagRecovery) != 0;
  std::uint64_t size_bytes = 0;
  std::uint32_t ttl = 0;
  std::uint32_t hops = 0;
  r.u64(p.id);
  r.u32(p.origin);
  r.u32(p.src);
  r.f64(p.src_location.x);
  r.f64(p.src_location.y);
  r.f64(p.origin_location.x);
  r.f64(p.origin_location.y);
  r.f64(p.dest_location.x);
  r.f64(p.dest_location.y);
  r.u64(p.key);
  r.u64(size_bytes);
  r.u32(ttl);
  r.u32(hops);
  r.u64(p.request_id);
  r.f64(p.created_at);
  if (flags & kFlagDestNode) r.u32(p.dest_node);
  if (flags & kFlagDestRegion) r.u32(p.dest_region);
  if (flags & kFlagPerimeterBlock) {
    r.f64(p.perimeter_entry.x);
    r.f64(p.perimeter_entry.y);
    r.u32(p.perimeter_entry_node);
    r.u32(p.perimeter_first_hop);
  }
  if (flags & kFlagResponseBlock) {
    r.u64(p.version);
    r.f64(p.ttr_s);
    r.u8(p.hit_class);
    r.u32(p.responder_region);
  }
  if (!r.ok()) return false;
  p.size_bytes = static_cast<std::size_t>(size_bytes);
  p.ttl = static_cast<int>(ttl);
  p.hops = static_cast<int>(hops);
  return true;
}

bool packets_identical(const net::Packet& a, const net::Packet& b) noexcept {
  return a.id == b.id && a.kind == b.kind && a.mode == b.mode &&
         a.origin == b.origin && a.src == b.src &&
         dbits(a.src_location.x) == dbits(b.src_location.x) &&
         dbits(a.src_location.y) == dbits(b.src_location.y) &&
         a.dest_node == b.dest_node &&
         dbits(a.origin_location.x) == dbits(b.origin_location.x) &&
         dbits(a.origin_location.y) == dbits(b.origin_location.y) &&
         dbits(a.dest_location.x) == dbits(b.dest_location.x) &&
         dbits(a.dest_location.y) == dbits(b.dest_location.y) &&
         a.dest_region == b.dest_region && a.key == b.key &&
         a.version == b.version && dbits(a.ttr_s) == dbits(b.ttr_s) &&
         a.size_bytes == b.size_bytes && a.ttl == b.ttl && a.hops == b.hops &&
         a.request_id == b.request_id &&
         dbits(a.created_at) == dbits(b.created_at) &&
         a.perimeter == b.perimeter &&
         dbits(a.perimeter_entry.x) == dbits(b.perimeter_entry.x) &&
         dbits(a.perimeter_entry.y) == dbits(b.perimeter_entry.y) &&
         a.perimeter_entry_node == b.perimeter_entry_node &&
         a.perimeter_first_hop == b.perimeter_first_hop &&
         a.recovery == b.recovery && a.hit_class == b.hit_class &&
         a.responder_region == b.responder_region;
}

namespace {

/// Hostile double generator: ordinary magnitudes, signed zeros,
/// infinities and raw bit patterns (denormals, NaNs with payloads).
[[nodiscard]] double wild_double(support::Rng& rng) {
  switch (rng.uniform_int(8)) {
    case 0: return 0.0;
    case 1: return -0.0;
    case 2: return std::numeric_limits<double>::infinity();
    case 3: return -std::numeric_limits<double>::infinity();
    case 4: return dfrom(rng.bits());
    default: return rng.uniform(-2e4, 2e4);
  }
}

[[nodiscard]] net::NodeId wild_node(support::Rng& rng) {
  if (rng.uniform_int(4) == 0) return net::kNoNode;
  return static_cast<net::NodeId>(rng.bits());
}

}  // namespace

net::Packet random_wire_packet(support::Rng& rng, net::PacketKind kind) {
  net::Packet p;
  p.id = rng.bits();
  p.kind = kind;
  p.mode = static_cast<net::RouteMode>(rng.uniform_int(kRouteModeCount));
  p.origin = wild_node(rng);
  p.src = wild_node(rng);
  p.src_location = {wild_double(rng), wild_double(rng)};
  p.dest_node = wild_node(rng);
  p.origin_location = {wild_double(rng), wild_double(rng)};
  p.dest_location = {wild_double(rng), wild_double(rng)};
  p.dest_region = rng.uniform_int(3) == 0
                      ? geo::kInvalidRegion
                      : static_cast<geo::RegionId>(rng.bits());
  p.key = rng.bits();
  p.version = rng.uniform_int(3) == 0 ? 0 : rng.bits();
  p.ttr_s = rng.uniform_int(3) == 0 ? 0.0 : wild_double(rng);
  p.size_bytes = static_cast<std::size_t>(rng.bits());
  p.ttl = static_cast<int>(static_cast<std::uint32_t>(rng.bits()));
  p.hops = static_cast<int>(static_cast<std::uint32_t>(rng.bits()));
  p.request_id = rng.bits();
  p.created_at = wild_double(rng);
  p.perimeter = rng.uniform_int(2) == 0;
  p.perimeter_entry = rng.uniform_int(2) == 0
                          ? geo::Point{}
                          : geo::Point{wild_double(rng), wild_double(rng)};
  p.perimeter_entry_node = rng.uniform_int(2) == 0 ? net::kNoNode
                                                   : wild_node(rng);
  p.perimeter_first_hop = rng.uniform_int(2) == 0 ? net::kNoNode
                                                  : wild_node(rng);
  p.recovery = rng.uniform_int(2) == 0;
  p.hit_class = static_cast<std::uint8_t>(rng.bits());
  p.responder_region = rng.uniform_int(3) == 0
                           ? geo::kInvalidRegion
                           : static_cast<geo::RegionId>(rng.bits());
  return p;
}

// -- envelope ---------------------------------------------------------------

void encode_envelope(const Envelope& e, WireWriter& w) {
  w.bytes(kMagic, kMagicBytes);
  w.u8(kWireVersion);
  w.u8(static_cast<std::uint8_t>(e.type));
  w.u32(e.src_domain);
  w.u64(e.seq);
}

bool decode_envelope(WireReader& r, Envelope& e) noexcept {
  std::uint8_t magic[kMagicBytes] = {};
  for (std::uint8_t& m : magic) {
    if (!r.u8(m)) return false;
  }
  if (std::memcmp(magic, kMagic, kMagicBytes) != 0) return false;
  std::uint8_t version = 0;
  std::uint8_t type = 0;
  if (!r.u8(version) || version != kWireVersion) return false;
  if (!r.u8(type) || type < static_cast<std::uint8_t>(MsgType::kHello) ||
      type > static_cast<std::uint8_t>(MsgType::kInject)) {
    return false;
  }
  e.type = static_cast<MsgType>(type);
  return r.u32(e.src_domain) && r.u64(e.seq);
}

// -- message bodies ---------------------------------------------------------

void encode_frame(const FrameMsg& m, WireWriter& w) {
  w.f64(m.due);
  w.u8(m.is_unicast ? 1 : 0);
  w.u32(m.next_hop);
  encode_packet(m.packet, w);
}

bool decode_frame(WireReader& r, FrameMsg& m) noexcept {
  std::uint8_t unicast = 0;
  if (!r.f64(m.due) || !r.u8(unicast) || unicast > 1 || !r.u32(m.next_hop)) {
    return false;
  }
  m.is_unicast = unicast != 0;
  return decode_packet(r, m.packet);
}

void encode_liveness(const LivenessMsg& m, WireWriter& w) {
  w.f64(m.due);
  w.u32(m.node);
  w.u8(m.alive ? 1 : 0);
}

bool decode_liveness(WireReader& r, LivenessMsg& m) noexcept {
  std::uint8_t alive = 0;
  if (!r.f64(m.due) || !r.u32(m.node) || !r.u8(alive) || alive > 1) {
    return false;
  }
  m.alive = alive != 0;
  return true;
}

void encode_region(const RegionMsg& m, WireWriter& w) {
  w.f64(m.due);
  w.u32(m.node);
  w.u32(m.region);
}

bool decode_region(WireReader& r, RegionMsg& m) noexcept {
  return r.f64(m.due) && r.u32(m.node) && r.u32(m.region);
}

void encode_catalog(const CatalogMsg& m, WireWriter& w) {
  w.f64(m.due);
  w.u64(m.key);
  w.u64(m.version);
  w.f64(m.written_at);
}

bool decode_catalog(WireReader& r, CatalogMsg& m) noexcept {
  return r.f64(m.due) && r.u64(m.key) && r.u64(m.version) &&
         r.f64(m.written_at);
}

void encode_window_end(const WindowEndMsg& m, WireWriter& w) {
  w.u64(m.window);
  w.u64(m.cum_sent);
  w.u64(m.prev_cum_sent);
  w.u64(m.acked_cum);
  w.f64(m.window_end_s);
}

bool decode_window_end(WireReader& r, WindowEndMsg& m) noexcept {
  return r.u64(m.window) && r.u64(m.cum_sent) && r.u64(m.prev_cum_sent) &&
         r.u64(m.acked_cum) && r.f64(m.window_end_s);
}

void encode_hello(const HelloMsg& m, WireWriter& w) {
  w.u32(m.n_domains);
  w.u64(m.config_hash);
}

bool decode_hello(WireReader& r, HelloMsg& m) noexcept {
  return r.u32(m.n_domains) && r.u64(m.config_hash);
}

void encode_nack(const NackMsg& m, WireWriter& w) {
  w.u64(m.from_seq);
  w.u64(m.to_seq);
}

bool decode_nack(WireReader& r, NackMsg& m) noexcept {
  return r.u64(m.from_seq) && r.u64(m.to_seq);
}

void encode_bye(const ByeMsg& m, WireWriter& w) {
  w.u8(static_cast<std::uint8_t>(m.reason));
}

bool decode_bye(WireReader& r, ByeMsg& m) noexcept {
  std::uint8_t reason = 0;
  if (!r.u8(reason) ||
      reason > static_cast<std::uint8_t>(ByeReason::kAborted)) {
    return false;
  }
  m.reason = static_cast<ByeReason>(reason);
  return true;
}

void encode_inject(const InjectMsg& m, WireWriter& w) {
  w.u64(m.inject_id);
  w.u8(m.op);
  w.u32(m.node);
  w.u64(m.key_rank);
}

bool decode_inject(WireReader& r, InjectMsg& m) noexcept {
  return r.u64(m.inject_id) && r.u8(m.op) && m.op <= 1 && r.u32(m.node) &&
         r.u64(m.key_rank);
}

// -- hex repro helpers ------------------------------------------------------

std::string to_hex(const std::uint8_t* data, std::size_t n) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(n * 2);
  for (std::size_t i = 0; i < n; ++i) {
    out += kDigits[data[i] >> 4];
    out += kDigits[data[i] & 0xF];
  }
  return out;
}

std::string to_hex(const std::vector<std::uint8_t>& buf) {
  return to_hex(buf.data(), buf.size());
}

std::vector<std::uint8_t> from_hex(const std::string& hex) {
  const auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  if (hex.size() % 2 != 0) {
    throw std::invalid_argument("from_hex: odd-length hex string");
  }
  std::vector<std::uint8_t> out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      throw std::invalid_argument("from_hex: non-hex character");
    }
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

}  // namespace precinct::transport
