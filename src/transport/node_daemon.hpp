// NodeDaemon: one OS process hosting one domain of a world-sharded
// PReCinCt run, coupled to its peers over UDP (DESIGN.md §14).
//
// The daemon builds the same full same-seed Scenario replica the in-sim
// WorldShardedScenario would build for its domain (world_domain_config /
// world_node_owners are shared), drives it through the identical
// lookahead-window cadence, and lets UdpNet stand in for the
// ShardExecutor's mailboxes.  Because everything else — replica
// construction, ownership, window boundaries, merge order — is shared
// code, a fleet's merged results are bit-identical to the DES oracle's,
// and fleet_fingerprint() is the string both sides must agree on.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "core/world_scenario.hpp"
#include "transport/udp_net.hpp"

namespace precinct::transport {

/// Scenario identity for the Hello handshake: canonical config text +
/// domain count + wire version.  Two daemons with different hashes refuse
/// to form a fleet.
[[nodiscard]] std::uint64_t fleet_config_hash(
    const core::PrecinctConfig& config, std::uint32_t n_domains);

/// One domain's contribution to the fleet fingerprint.
struct DomainReport {
  std::uint32_t domain = 0;
  std::uint32_t n_domains = 1;
  double lookahead_s = 0.0;
  core::Metrics metrics;
  TransportCounters counters;
};

/// `%a` hex-float rendering (exact equality, like core::fingerprint).
[[nodiscard]] std::string hex_double(double v);

/// The per-domain section of the fleet fingerprint: wire-byte counters
/// (excluded from core::fingerprint to keep the pinned sim fingerprints
/// byte-identical) followed by the domain's full metrics fingerprint.
[[nodiscard]] std::string domain_fragment(std::uint32_t domain,
                                          const core::Metrics& metrics);

/// Fleet-wide conservation totals (summed over domains).
struct FleetTotals {
  std::uint64_t windows = 0;  ///< per-domain value; must agree, not sum
  std::uint64_t messages_merged = 0;
  std::uint64_t frames_posted = 0;
  std::uint64_t frames_processed = 0;
  std::uint64_t frames_beyond_horizon = 0;
  std::uint64_t deltas_posted = 0;
  std::uint64_t deltas_processed = 0;
  std::uint64_t deltas_beyond_horizon = 0;
};

/// Header of the fleet fingerprint ("transport-fleet-v1\n...").
/// `lookahead_hex` is the hex_double rendering (passed as text so
/// precinct_ctl can splice it from daemon status files untouched).
[[nodiscard]] std::string fleet_header(std::uint32_t domains,
                                       const std::string& lookahead_hex,
                                       const FleetTotals& totals);

/// Assemble the full fleet fingerprint from per-domain reports (the
/// in-process harness path).  Reports must be in domain order and agree
/// on windows/lookahead; throws std::invalid_argument otherwise.
[[nodiscard]] std::string fleet_fingerprint(
    const std::vector<DomainReport>& reports);

/// The oracle side: the identical string from an in-sim world-sharded
/// run's metrics.  `fleet == oracle` is the CI equivalence gate.
[[nodiscard]] std::string fleet_fingerprint(
    const core::WorldShardedMetrics& m);

class NodeDaemon {
 public:
  struct Options {
    core::PrecinctConfig config;      ///< the WORLD config (shared by fleet)
    std::uint32_t domain = 0;
    std::vector<UdpAddress> peers;    ///< domain -> address; size == regions_x
    std::string status_path;          ///< JSON snapshots; "" disables
  };

  enum class Outcome {
    kDone = 0,     ///< ran to the horizon, report() is valid
    kStopped = 1,  ///< graceful stop (SIGTERM or a peer stopping)
  };

  explicit NodeDaemon(const Options& opts);
  ~NodeDaemon();

  NodeDaemon(const NodeDaemon&) = delete;
  NodeDaemon& operator=(const NodeDaemon&) = delete;

  /// Rendezvous, run every window to the horizon, finalize, drain.
  /// `stop` (may be empty) is polled between windows and inside barrier
  /// waits — the SIGTERM hook.  Throws std::runtime_error on protocol
  /// aborts (peer death, barrier timeout, split-brain hello).
  Outcome run(const std::function<bool()>& stop);

  /// Best-effort abort notice to peers + a final error status snapshot;
  /// call from the catch block around run().
  void abort(const std::string& reason) noexcept;

  /// Valid after run() returned kDone.
  [[nodiscard]] const DomainReport& report() const noexcept {
    return report_;
  }
  [[nodiscard]] std::uint16_t port() const { return net_->local_port(); }
  [[nodiscard]] double lookahead_s() const noexcept { return lookahead_s_; }

 private:
  [[nodiscard]] bool run_phase(double phase_end,
                               const std::function<bool()>& stop);
  void schedule_batch(const std::vector<MergedMsg>& batch);
  void apply_msg(const MergedMsg& m);
  void apply_injections();
  void pace_and_status();
  void write_status(const std::string& state);
  Outcome finish_stopped();

  Options opts_;
  double lookahead_s_ = 0.0;
  std::vector<std::uint32_t> owner_;
  std::unique_ptr<core::Scenario> scenario_;
  std::unique_ptr<UdpNet> net_;
  DomainReport report_;
  std::vector<MergedMsg> batch_;
  std::uint64_t window_ = 0;   ///< barrier counter; 0 = init idle merge
  double sim_now_ = 0.0;
  bool done_ = false;
  // Wall-clock anchors (opaque steady_clock nanos to keep <chrono> out of
  // the header).
  std::uint64_t wall_t0_ns_ = 0;
  std::uint64_t last_status_ns_ = 0;
};

}  // namespace precinct::transport
