#include "transport/node_daemon.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <thread>

#include "core/config_io.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"

namespace precinct::transport {

namespace {

[[nodiscard]] std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::uint64_t fleet_config_hash(const core::PrecinctConfig& config,
                                std::uint32_t n_domains) {
  // FNV-1a over the canonical config text: any knob that changes the kv
  // rendering changes the hash, so a fleet whose members disagree on the
  // scenario dies at rendezvous instead of diverging silently.
  const std::string text = core::config_to_string(config);
  std::uint64_t h = 14695981039346656037ull;
  for (const char ch : text) {
    h ^= static_cast<unsigned char>(ch);
    h *= 1099511628211ull;
  }
  h = support::hash_combine(h, n_domains);
  return support::hash_combine(h, kWireVersion);
}

std::string hex_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

std::string domain_fragment(std::uint32_t domain,
                            const core::Metrics& metrics) {
  char buf[96];
  std::string out;
  std::snprintf(buf, sizeof(buf), "--- domain %" PRIu32 " ---\n", domain);
  out += buf;
  std::snprintf(buf, sizeof(buf), "wire_bytes_sent=%" PRIu64 "\n",
                metrics.wire_bytes_sent);
  out += buf;
  std::snprintf(buf, sizeof(buf), "wire_bytes_received=%" PRIu64 "\n",
                metrics.wire_bytes_received);
  out += buf;
  out += core::fingerprint(metrics);
  return out;
}

std::string fleet_header(std::uint32_t domains,
                         const std::string& lookahead_hex,
                         const FleetTotals& totals) {
  char buf[96];
  std::string out = "transport-fleet-v1\n";
  const auto put = [&](const char* key, std::uint64_t value) {
    std::snprintf(buf, sizeof(buf), "%s%" PRIu64 "\n", key, value);
    out += buf;
  };
  std::snprintf(buf, sizeof(buf), "domains=%" PRIu32 "\n", domains);
  out += buf;
  out += "lookahead=";
  out += lookahead_hex;
  out += '\n';
  put("windows=", totals.windows);
  put("messages_merged=", totals.messages_merged);
  put("frames_posted=", totals.frames_posted);
  put("frames_processed=", totals.frames_processed);
  put("frames_beyond_horizon=", totals.frames_beyond_horizon);
  put("deltas_posted=", totals.deltas_posted);
  put("deltas_processed=", totals.deltas_processed);
  put("deltas_beyond_horizon=", totals.deltas_beyond_horizon);
  return out;
}

std::string fleet_fingerprint(const std::vector<DomainReport>& reports) {
  if (reports.empty()) {
    throw std::invalid_argument("fleet_fingerprint: no reports");
  }
  const std::uint32_t n = reports.front().n_domains;
  if (reports.size() != n) {
    throw std::invalid_argument(
        "fleet_fingerprint: need one report per domain");
  }
  FleetTotals t;
  t.windows = reports.front().counters.windows;
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const DomainReport& r = reports[i];
    if (r.domain != i || r.n_domains != n) {
      throw std::invalid_argument(
          "fleet_fingerprint: reports must be in domain order and agree on "
          "the domain count");
    }
    // Lockstep invariants: every daemon ran the same windows over the
    // same derived lookahead, or the fleet was not the same computation.
    if (r.counters.windows != t.windows ||
        hex_double(r.lookahead_s) != hex_double(reports.front().lookahead_s)) {
      throw std::invalid_argument(
          "fleet_fingerprint: window/lookahead mismatch across domains");
    }
    t.messages_merged += r.counters.messages_merged;
    t.frames_posted += r.counters.frames_posted;
    t.frames_processed += r.counters.frames_processed;
    t.frames_beyond_horizon += r.counters.frames_beyond_horizon;
    t.deltas_posted += r.counters.deltas_posted;
    t.deltas_processed += r.counters.deltas_processed;
    t.deltas_beyond_horizon += r.counters.deltas_beyond_horizon;
  }
  std::string out =
      fleet_header(n, hex_double(reports.front().lookahead_s), t);
  for (const DomainReport& r : reports) {
    out += domain_fragment(r.domain, r.metrics);
  }
  return out;
}

std::string fleet_fingerprint(const core::WorldShardedMetrics& m) {
  FleetTotals t;
  t.windows = m.windows;
  t.messages_merged = m.messages_merged;
  t.frames_posted = m.frames_posted;
  t.frames_processed = m.frames_processed;
  t.frames_beyond_horizon = m.frames_beyond_horizon;
  t.deltas_posted = m.deltas_posted;
  t.deltas_processed = m.deltas_processed;
  t.deltas_beyond_horizon = m.deltas_beyond_horizon;
  std::string out = fleet_header(m.domains, hex_double(m.lookahead_s), t);
  for (std::size_t d = 0; d < m.per_domain.size(); ++d) {
    out += domain_fragment(static_cast<std::uint32_t>(d), m.per_domain[d]);
  }
  return out;
}

// ---------------------------------------------------------------------------
// NodeDaemon
// ---------------------------------------------------------------------------

NodeDaemon::NodeDaemon(const Options& opts) : opts_(opts) {
  const core::PrecinctConfig& config = opts_.config;
  lookahead_s_ = core::world_validate(config);
  const auto n_domains = config.regions_x;
  if (opts_.domain >= n_domains) {
    throw std::invalid_argument("NodeDaemon: domain out of range");
  }
  if (opts_.peers.size() != n_domains) {
    throw std::invalid_argument(
        "NodeDaemon: the peer table needs one address per domain "
        "(regions_x entries)");
  }

  // The same replica the in-sim oracle builds for this domain: full world,
  // same seed (deliberately not re-salted), shards/tiles collapsed.
  scenario_ =
      std::make_unique<core::Scenario>(core::world_domain_config(config));
  owner_ = core::world_node_owners(config, scenario_->network());

  UdpNet::Options net_opts;
  net_opts.domain = opts_.domain;
  net_opts.n_domains = n_domains;
  net_opts.horizon_s = config.end_time_s();
  net_opts.config_hash = fleet_config_hash(config, n_domains);
  net_opts.bind = opts_.peers[opts_.domain];
  net_opts.peer = opts_.peers;
  net_opts.retry_s = config.transport_retry_s;
  net_opts.timeout_s = config.transport_timeout_s;
  net_ = std::make_unique<UdpNet>(net_opts);

  net::WorldShardBinding binding;
  binding.domain = opts_.domain;
  binding.n_domains = n_domains;
  binding.owner = owner_.data();
  binding.coupler = net_.get();
  scenario_->network().bind_world_shard(binding);

  core::ShardView view;
  view.domain = opts_.domain;
  view.n_domains = n_domains;
  view.owner = owner_.data();
  scenario_->engine().set_shard_view(view);

  report_.domain = opts_.domain;
  report_.n_domains = n_domains;
  report_.lookahead_s = lookahead_s_;
}

NodeDaemon::~NodeDaemon() = default;

NodeDaemon::Outcome NodeDaemon::run(const std::function<bool()>& stop) {
  write_status("starting");
  if (!net_->rendezvous(stop)) return finish_stopped();

  scenario_->engine().initialize();
  // Barrier 0: the executor's pre-window idle merge.  Init-time halo
  // deltas (initial liveness, placement) are posted at due <= now = 0 and
  // must merge before the first compute window, exactly as in-sim.
  batch_.clear();
  if (net_->close_barrier(0, 0.0, stop, batch_) != BarrierResult::kClosed) {
    return finish_stopped();
  }
  schedule_batch(batch_);

  write_status("running");
  wall_t0_ns_ = steady_ns();
  last_status_ns_ = wall_t0_ns_;

  // Warm-up and measurement as separate phase loops: the boundary is an
  // exact window boundary (mirrors WorldShardedScenario's two run_until
  // calls; the second call's idle merge is provably empty and skipped).
  if (!run_phase(opts_.config.warmup_s, stop)) return finish_stopped();
  scenario_->engine().start_measurement();
  if (!run_phase(opts_.config.end_time_s(), stop)) return finish_stopped();

  report_.metrics = scenario_->engine().finalize();
  report_.counters = net_->counters();
  done_ = true;
  net_->send_bye(ByeReason::kDone);
  write_status("done");
  net_->drain(opts_.config.transport_linger_s, stop);
  return Outcome::kDone;
}

bool NodeDaemon::run_phase(double phase_end,
                           const std::function<bool()>& stop) {
  while (sim_now_ < phase_end) {
    const double we = std::min(sim_now_ + lookahead_s_, phase_end);
    net_->set_window_end(we);
    scenario_->run_until(we);
    ++window_;
    batch_.clear();
    if (net_->close_barrier(window_, we, stop, batch_) !=
        BarrierResult::kClosed) {
      return false;
    }
    ++net_->counters().windows;
    schedule_batch(batch_);
    sim_now_ = we;
    apply_injections();
    pace_and_status();
  }
  return true;
}

void NodeDaemon::schedule_batch(const std::vector<MergedMsg>& batch) {
  // Already sorted by (due, src domain, seq) — schedule_at in batch order
  // reproduces the ShardExecutor merge order tie-break.
  for (const MergedMsg& m : batch) {
    scenario_->simulator().schedule_at(m.due, [this, m] { apply_msg(m); });
  }
}

void NodeDaemon::apply_msg(const MergedMsg& m) {
  // Processed counters tick at execution time, like the in-sim Coupler's
  // callbacks: merged-but-beyond-horizon messages never reach here, which
  // is what makes the conservation ledger match the oracle's.
  TransportCounters& c = net_->counters();
  net::WirelessNet& radio = scenario_->network();
  switch (m.type) {
    case MsgType::kFrame:
      ++c.frames_processed;
      if (m.frame.is_unicast) {
        radio.deliver_remote_unicast(m.frame.packet, m.frame.next_hop);
      } else {
        radio.deliver_remote_broadcast(m.frame.packet);
      }
      break;
    case MsgType::kLiveness:
      ++c.deltas_processed;
      radio.apply_remote_liveness(m.liveness.node, m.liveness.alive);
      break;
    case MsgType::kRegion:
      ++c.deltas_processed;
      radio.apply_remote_region(m.region.node, m.region.region);
      break;
    case MsgType::kCatalog:
      ++c.deltas_processed;
      scenario_->catalog().observe_update(m.catalog.key, m.catalog.version,
                                          m.catalog.written_at);
      break;
    default:
      break;
  }
}

void NodeDaemon::apply_injections() {
  for (const InjectMsg& m : net_->take_injections()) {
    if (m.node >= owner_.size()) continue;
    // Owner-gated like every workload source: the ctl broadcasts the
    // injection to the whole fleet; exactly one daemon acts on it.
    if (owner_[m.node] != opts_.domain) continue;
    if (!scenario_->network().is_alive(m.node)) continue;
    const geo::Key key = scenario_->catalog().key_of(
        static_cast<std::size_t>(m.key_rank % scenario_->catalog().size()));
    if (m.op == 1) {
      scenario_->engine().issue_update(m.node, key);
    } else {
      scenario_->engine().issue_request(m.node, key);
    }
  }
}

void NodeDaemon::pace_and_status() {
  const core::PrecinctConfig& config = opts_.config;
  if (config.transport_pace == "realtime") {
    const double target_s = sim_now_ / config.transport_speedup;
    const std::uint64_t target_ns =
        wall_t0_ns_ + static_cast<std::uint64_t>(target_s * 1e9);
    const std::uint64_t now_ns = steady_ns();
    if (now_ns < target_ns) {
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(target_ns - now_ns));
    }
  }
  if (config.transport_status_interval_s > 0.0 &&
      !opts_.status_path.empty()) {
    const std::uint64_t now_ns = steady_ns();
    if (static_cast<double>(now_ns - last_status_ns_) >=
        config.transport_status_interval_s * 1e9) {
      last_status_ns_ = now_ns;
      write_status("running");
    }
  }
}

void NodeDaemon::write_status(const std::string& state) {
  if (opts_.status_path.empty()) return;
  support::JsonObject j;
  j.set("state", state);
  j.set("domain", static_cast<std::uint64_t>(opts_.domain));
  j.set("n_domains", static_cast<std::uint64_t>(report_.n_domains));
  j.set("port", static_cast<std::uint64_t>(net_->local_port()));
  j.set("window", window_);
  j.set("sim_now_s", sim_now_);
  j.set("wall_s",
        wall_t0_ns_ != 0
            ? static_cast<double>(steady_ns() - wall_t0_ns_) / 1e9
            : 0.0);
  const TransportCounters& c = net_->counters();
  j.set("windows", c.windows);
  j.set("messages_merged", c.messages_merged);
  j.set("frames_posted", c.frames_posted);
  j.set("frames_processed", c.frames_processed);
  j.set("frames_beyond_horizon", c.frames_beyond_horizon);
  j.set("deltas_posted", c.deltas_posted);
  j.set("deltas_processed", c.deltas_processed);
  j.set("deltas_beyond_horizon", c.deltas_beyond_horizon);
  j.set("datagrams_sent", c.datagrams_sent);
  j.set("datagrams_received", c.datagrams_received);
  j.set("datagram_bytes_sent", c.datagram_bytes_sent);
  j.set("datagram_bytes_received", c.datagram_bytes_received);
  j.set("retransmits", c.retransmits);
  j.set("nacks_sent", c.nacks_sent);
  j.set("duplicates_dropped", c.duplicates_dropped);
  j.set("malformed_dropped", c.malformed_dropped);
  if (done_) {
    const core::Metrics& m = report_.metrics;
    j.set("requests_issued", m.requests_issued);
    j.set("requests_completed", m.requests_completed);
    // Hits that needed another region's help — in a per-region fleet these
    // crossed a process boundary (own-region hits excluded).
    j.set("remote_hits",
          m.en_route_hits + m.home_region_hits + m.replica_hits);
    j.set("wire_bytes_sent", m.wire_bytes_sent);
    j.set("wire_bytes_received", m.wire_bytes_received);
    // Exact values travel as text: %a for the lookahead, and the whole
    // per-domain fingerprint fragment precinct_ctl splices verbatim into
    // the fleet fingerprint (JSON doubles would round-trip lossily).
    j.set("lookahead_hex", hex_double(lookahead_s_));
    j.set("fleet_fragment", domain_fragment(opts_.domain, m));
  }
  // Atomic snapshot: readers never see a torn file.
  const std::string tmp = opts_.status_path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    out << j.str(/*pretty=*/true) << '\n';
  }
  std::rename(tmp.c_str(), opts_.status_path.c_str());
}

NodeDaemon::Outcome NodeDaemon::finish_stopped() {
  net_->send_bye(ByeReason::kStopped);
  write_status("stopped");
  // Short drain with no stop predicate (ours already fired): peers only
  // need to see the Bye at their next barrier pump to stop too.
  net_->drain(std::min(opts_.config.transport_linger_s, 1.0), {});
  return Outcome::kStopped;
}

void NodeDaemon::abort(const std::string& reason) noexcept {
  try {
    net_->send_bye(ByeReason::kAborted);
  } catch (...) {  // NOLINT(bugprone-empty-catch) best-effort notice
  }
  try {
    if (!opts_.status_path.empty()) {
      support::JsonObject j;
      j.set("state", std::string("error"));
      j.set("domain", static_cast<std::uint64_t>(opts_.domain));
      j.set("error", reason);
      const std::string tmp = opts_.status_path + ".tmp";
      {
        std::ofstream out(tmp, std::ios::trunc);
        out << j.str(/*pretty=*/true) << '\n';
      }
      std::rename(tmp.c_str(), opts_.status_path.c_str());
    }
  } catch (...) {  // NOLINT(bugprone-empty-catch)
  }
}

}  // namespace precinct::transport
