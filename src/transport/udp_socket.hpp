// Thin RAII wrapper over a non-blocking AF_INET UDP socket.  The transport
// runs fleets on one host (loopback) by default, but nothing here assumes
// it: addresses are plain IPv4 host:port pairs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace precinct::transport {

/// IPv4 endpoint in host byte order.
struct UdpAddress {
  std::uint32_t host = 0;  ///< e.g. 127.0.0.1 == 0x7F000001
  std::uint16_t port = 0;

  [[nodiscard]] bool operator==(const UdpAddress&) const = default;
};

/// Parse "a.b.c.d:port".  Throws std::invalid_argument on malformed input.
[[nodiscard]] UdpAddress parse_address(const std::string& text);

/// Render an address back to "a.b.c.d:port".
[[nodiscard]] std::string to_string(const UdpAddress& addr);

inline constexpr std::uint32_t kLoopbackHost = 0x7F000001;

/// Non-blocking datagram socket.  Move-only; the descriptor closes with
/// the object.  All methods throw std::runtime_error on unexpected OS
/// errors; would-block conditions are normal returns.
class UdpSocket {
 public:
  /// Create + bind.  `port` 0 lets the OS pick (see local_port()).
  explicit UdpSocket(const UdpAddress& bind_addr);
  ~UdpSocket();

  UdpSocket(UdpSocket&& other) noexcept;
  UdpSocket& operator=(UdpSocket&& other) noexcept;
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  /// Send one datagram.  Returns false if the kernel buffer is full
  /// (EAGAIN) — callers treat that like datagram loss and rely on the
  /// retransmit path.
  bool send_to(const UdpAddress& dst, const std::uint8_t* data,
               std::size_t size);

  /// Receive one datagram into `buf` (resized to the payload).  Returns
  /// false when no datagram is pending.  `from`, if non-null, receives
  /// the sender address.
  bool recv_from(std::vector<std::uint8_t>& buf, UdpAddress* from = nullptr);

  /// Block until readable or `timeout_ms` elapses (<0 waits forever).
  /// Returns true when readable.
  bool wait_readable(int timeout_ms);

  [[nodiscard]] std::uint16_t local_port() const { return local_port_; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

 private:
  int fd_ = -1;
  std::uint16_t local_port_ = 0;
};

}  // namespace precinct::transport
