// Cache replacement policies.
//
// The store keeps, per entry, priority = inflation + policy->score(entry)
// and evicts the minimum.  Greedy-dual policies (GD-LD, GD-Size) set each
// admitted entry's inflation to the priority of the last victim ("L"),
// which ages resident entries relative to fresh arrivals exactly as the
// paper's CacheReplacementPolicy pseudo-code does: U(d) = L + U(d).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "cache/cache_entry.hpp"

namespace precinct::cache {

/// Column-oriented, read-only view of a cache's dynamic catalog: one
/// parallel array per CacheEntry field, `n` rows.  Handed to
/// ReplacementPolicy::score_rows so victim selection scores every
/// resident entry in one tight loop over contiguous memory instead of a
/// virtual call per entry.
struct CatalogView {
  const geo::Key* key = nullptr;
  const std::size_t* size_bytes = nullptr;
  const std::uint64_t* version = nullptr;
  const double* access_count = nullptr;
  const double* region_distance = nullptr;
  const double* inflation = nullptr;
  const double* ttr_expiry_s = nullptr;
  const std::uint8_t* invalidated = nullptr;
  const double* fetched_at_s = nullptr;
  const double* last_access_s = nullptr;
  std::size_t n = 0;
};

class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  /// Higher score = more worth keeping.  Must be >= 0 for greedy-dual
  /// aging to behave.
  [[nodiscard]] virtual double score(const CacheEntry& entry) const = 0;

  /// Batch scoring: write score(row i) into out[i] for every row of the
  /// catalog view.  The default materializes each row and calls score(),
  /// so custom policies stay correct unmodified; the built-ins override
  /// with column sweeps that perform the exact same floating-point
  /// operations in the same order (bit-identical scores — eviction
  /// decisions cannot shift).
  virtual void score_rows(const CatalogView& view, double* out) const;

  /// Whether admitted entries inherit the last victim's priority (L).
  [[nodiscard]] virtual bool inflates() const noexcept { return false; }

  [[nodiscard]] virtual std::string name() const = 0;
};

/// GD-LD — Greedy-Dual Least-Distance, the paper's contribution (Eq. 1):
///   U = wr * access_count + wd * region_distance + ws * (1 / size)
struct GdLdWeights {
  double wr = 1.0;    ///< popularity weight
  double wd = 1.0;    ///< region-distance weight (distances normalized by
                      ///< the caller to region units)
  double ws = 4096.0; ///< size weight; ws/size is O(1) for KiB-scale items
};

class GdLd final : public ReplacementPolicy {
 public:
  explicit GdLd(GdLdWeights weights = {}) noexcept : weights_(weights) {}
  [[nodiscard]] double score(const CacheEntry& entry) const override;
  void score_rows(const CatalogView& view, double* out) const override;
  [[nodiscard]] bool inflates() const noexcept override { return true; }
  [[nodiscard]] std::string name() const override { return "GD-LD"; }
  [[nodiscard]] const GdLdWeights& weights() const noexcept { return weights_; }

 private:
  GdLdWeights weights_;
};

/// GD-Size (Cao & Irani): priority = cost / size with unit cost, i.e. it
/// favors small items regardless of popularity or fetch distance — the
/// baseline the paper critiques.
class GdSize final : public ReplacementPolicy {
 public:
  [[nodiscard]] double score(const CacheEntry& entry) const override;
  void score_rows(const CatalogView& view, double* out) const override;
  [[nodiscard]] bool inflates() const noexcept override { return true; }
  [[nodiscard]] std::string name() const override { return "GD-Size"; }
};

/// GDSF — Greedy-Dual-Size-Frequency (Cherkasova): priority =
/// frequency / size with greedy-dual aging.  A stronger baseline than
/// GD-Size that post-dates the paper; included for the ablations.
class Gdsf final : public ReplacementPolicy {
 public:
  [[nodiscard]] double score(const CacheEntry& entry) const override;
  void score_rows(const CatalogView& view, double* out) const override;
  [[nodiscard]] bool inflates() const noexcept override { return true; }
  [[nodiscard]] std::string name() const override { return "GDSF"; }
};

/// Least-recently-used (reference policy, not in the paper's plots).
class Lru final : public ReplacementPolicy {
 public:
  [[nodiscard]] double score(const CacheEntry& entry) const override;
  void score_rows(const CatalogView& view, double* out) const override;
  [[nodiscard]] std::string name() const override { return "LRU"; }
};

/// Least-frequently-used (reference policy).
class Lfu final : public ReplacementPolicy {
 public:
  [[nodiscard]] double score(const CacheEntry& entry) const override;
  void score_rows(const CatalogView& view, double* out) const override;
  [[nodiscard]] std::string name() const override { return "LFU"; }
};

/// Factory by name ("gd-ld", "gd-size", "gdsf", "lru", "lfu"); throws on
/// unknown names.
[[nodiscard]] std::unique_ptr<ReplacementPolicy> make_policy(
    const std::string& name, GdLdWeights gdld_weights = {});

}  // namespace precinct::cache
