// A cached copy of a data item, with the attributes the paper's utility
// function weighs (access count, size, region distance) plus consistency
// state (version, TTR expiry).
#pragma once

#include <cstddef>
#include <cstdint>

#include "geo/geo_hash.hpp"

namespace precinct::cache {

struct CacheEntry {
  geo::Key key = 0;
  std::size_t size_bytes = 0;
  std::uint64_t version = 0;

  // Utility inputs (paper Eq. 1).
  double access_count = 0.0;      ///< ac_i: accesses in this region
  double region_distance = 0.0;   ///< reg_dst: requesting->home region dist
  double inflation = 0.0;         ///< greedy-dual L added at admission

  // Consistency state (paper §4).
  double ttr_expiry_s = 0.0;      ///< absolute time the TTR lapses
  bool invalidated = false;       ///< hit by a pushed invalidation

  double fetched_at_s = 0.0;
  double last_access_s = 0.0;
};

}  // namespace precinct::cache
