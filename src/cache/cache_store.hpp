// Per-peer cache with the paper's static/dynamic split (§3):
//
//  * static space — values of keys whose home region is the region the
//    peer currently resides in (custody copies); never evicted by the
//    replacement policy, released only when custody is handed off.
//  * dynamic space — opportunistically cached items, managed by a
//    greedy replacement policy under a byte capacity.
//
// The dynamic space is a contiguous slotted table: one parallel column
// per CacheEntry field plus a key->slot index, with swap-remove keeping
// the columns dense.  Victim selection is a single column sweep
// (ReplacementPolicy::score_rows + argmin) over contiguous memory —
// no per-entry virtual call, no map-node pointer chasing — and is
// allocation-free once the score scratch reaches its high-water size.
// The interface is unchanged: find() materializes the row into a
// per-store scratch entry, so callers still receive a CacheEntry* (valid
// until the next find() on the same store); for_each hands out
// materialized rows by reference valid only for the duration of the
// callback.  Static space stays a map — it is small, never scanned for
// eviction, and find_static_mutable hands out long-lived pointers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cache/cache_entry.hpp"
#include "cache/policies.hpp"

namespace precinct::cache {

/// Result of an insert: whether the item was admitted and which keys were
/// evicted to make room.
struct InsertResult {
  bool admitted = false;
  std::vector<geo::Key> evicted;
};

class CacheStore {
 public:
  /// `capacity_bytes` bounds the dynamic space.  The policy decides
  /// eviction order; it must outlive nothing (owned here).
  CacheStore(std::size_t capacity_bytes,
             std::unique_ptr<ReplacementPolicy> policy);

  // -- dynamic space --------------------------------------------------------

  /// Admit `entry` into dynamic space, evicting minimum-priority entries
  /// until it fits.  An item larger than the whole capacity is rejected.
  /// Re-inserting an existing key refreshes its contents in place.
  InsertResult insert(CacheEntry entry);

  /// Lookup in dynamic space.  Does not touch utility state.  The
  /// returned pointer refers to a per-store scratch row: it is valid
  /// until the next find() on this store and does not observe later
  /// mutations (touch/refresh/invalidate).
  [[nodiscard]] const CacheEntry* find(geo::Key key) const;

  /// Record a hit: bumps access count, refreshes recency, updates the
  /// region-distance attribute (latest request's distance), re-scores.
  /// Returns false if the key is not cached.
  bool touch(geo::Key key, double now_s, double region_distance);

  /// Update consistency state on a cached copy (new version / TTR).
  bool refresh(geo::Key key, std::uint64_t version, double ttr_expiry_s);

  /// Mark a cached copy invalid (pushed invalidation); keeps it resident
  /// so the next request triggers revalidation instead of a silent miss.
  bool invalidate(geo::Key key);

  bool erase(geo::Key key);

  [[nodiscard]] std::size_t used_bytes() const noexcept { return used_; }
  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    return capacity_;
  }
  [[nodiscard]] std::size_t entry_count() const noexcept {
    return key_.size();
  }
  [[nodiscard]] const ReplacementPolicy& policy() const noexcept {
    return *policy_;
  }
  /// Priority the next eviction round would use for `entry`.
  [[nodiscard]] double priority(const CacheEntry& entry) const {
    return entry.inflation + policy_->score(entry);
  }
  /// Current greedy-dual aging value L (priority of the last victim).
  [[nodiscard]] double inflation_floor() const noexcept { return floor_; }
  /// Keys currently resident in dynamic space (unspecified order).
  [[nodiscard]] std::vector<geo::Key> keys() const;

  /// The key the next eviction round would choose (min priority,
  /// tie-break min key), without evicting it; nullopt when empty.
  /// Allocation-free once the score scratch is at high-water size —
  /// the seam the allocation-count tests probe.
  [[nodiscard]] std::optional<geo::Key> victim_key() const;

  /// Observe-only iteration over the dynamic space (unspecified order,
  /// no allocation) — the invariant checker's audit seam.  The entry
  /// reference is a materialized row, valid only inside the callback.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    CacheEntry e;
    for (std::size_t i = 0; i < key_.size(); ++i) {
      materialize(i, e);
      fn(e);
    }
  }

  // -- static space (home-region custody) -----------------------------------

  /// Store a custody copy.  Static space is not capacity-managed (the
  /// paper's home-region guarantees depend on custody never being
  /// evicted); size is tracked for diagnostics.
  void put_static(CacheEntry entry);
  [[nodiscard]] const CacheEntry* find_static(geo::Key key) const;
  [[nodiscard]] CacheEntry* find_static_mutable(geo::Key key);
  bool erase_static(geo::Key key);
  /// Remove and return all custody entries (inter-region handoff).
  [[nodiscard]] std::vector<CacheEntry> take_all_static();
  [[nodiscard]] std::size_t static_count() const noexcept {
    return static_entries_.size();
  }
  [[nodiscard]] std::size_t static_bytes() const noexcept {
    return static_bytes_;
  }

  /// Observe-only iteration over the static (custody) space.
  template <typename Fn>
  void for_each_static(Fn&& fn) const {
    for (const auto& [key, entry] : static_entries_) fn(entry);
  }

 private:
  /// Copy row `slot` into `out`.
  void materialize(std::size_t slot, CacheEntry& out) const {
    out.key = key_[slot];
    out.size_bytes = size_bytes_[slot];
    out.version = version_[slot];
    out.access_count = access_count_[slot];
    out.region_distance = region_distance_[slot];
    out.inflation = inflation_[slot];
    out.ttr_expiry_s = ttr_expiry_s_[slot];
    out.invalidated = invalidated_[slot] != 0;
    out.fetched_at_s = fetched_at_s_[slot];
    out.last_access_s = last_access_s_[slot];
  }

  [[nodiscard]] CatalogView view() const noexcept;
  /// Overwrite row `slot` from `entry` (index_ already points there).
  void write_slot(std::size_t slot, const CacheEntry& entry);
  /// Append `entry` as a new row and index it.
  void push_slot(const CacheEntry& entry);
  /// Swap-remove row `slot`, fixing the moved row's index.
  void remove_slot(std::size_t slot);
  /// Argmin of (inflation + score, key) over all rows.  Pre: non-empty.
  /// Scores land in score_scratch_ (grown to high-water, never shrunk).
  [[nodiscard]] std::size_t select_victim(double& priority_out) const;
  /// Evict the minimum-priority entry; returns its key.  Pre: non-empty.
  geo::Key evict_one();

  std::size_t capacity_;
  std::unique_ptr<ReplacementPolicy> policy_;

  // Dynamic space: parallel columns + key->slot index (slots dense).
  std::unordered_map<geo::Key, std::uint32_t> index_;
  std::vector<geo::Key> key_;
  std::vector<std::size_t> size_bytes_;
  std::vector<std::uint64_t> version_;
  std::vector<double> access_count_;
  std::vector<double> region_distance_;
  std::vector<double> inflation_;
  std::vector<double> ttr_expiry_s_;
  std::vector<std::uint8_t> invalidated_;
  std::vector<double> fetched_at_s_;
  std::vector<double> last_access_s_;
  mutable CacheEntry scratch_;               ///< find() materialization
  mutable std::vector<double> score_scratch_;  ///< select_victim high-water

  std::unordered_map<geo::Key, CacheEntry> static_entries_;
  std::size_t used_ = 0;
  std::size_t static_bytes_ = 0;
  double floor_ = 0.0;  // greedy-dual L
};

}  // namespace precinct::cache
