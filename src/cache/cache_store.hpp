// Per-peer cache with the paper's static/dynamic split (§3):
//
//  * static space — values of keys whose home region is the region the
//    peer currently resides in (custody copies); never evicted by the
//    replacement policy, released only when custody is handed off.
//  * dynamic space — opportunistically cached items, managed by a
//    greedy replacement policy under a byte capacity.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cache/cache_entry.hpp"
#include "cache/policies.hpp"

namespace precinct::cache {

/// Result of an insert: whether the item was admitted and which keys were
/// evicted to make room.
struct InsertResult {
  bool admitted = false;
  std::vector<geo::Key> evicted;
};

class CacheStore {
 public:
  /// `capacity_bytes` bounds the dynamic space.  The policy decides
  /// eviction order; it must outlive nothing (owned here).
  CacheStore(std::size_t capacity_bytes,
             std::unique_ptr<ReplacementPolicy> policy);

  // -- dynamic space --------------------------------------------------------

  /// Admit `entry` into dynamic space, evicting minimum-priority entries
  /// until it fits.  An item larger than the whole capacity is rejected.
  /// Re-inserting an existing key refreshes its contents in place.
  InsertResult insert(CacheEntry entry);

  /// Lookup in dynamic space.  Does not touch utility state.
  [[nodiscard]] const CacheEntry* find(geo::Key key) const;

  /// Record a hit: bumps access count, refreshes recency, updates the
  /// region-distance attribute (latest request's distance), re-scores.
  /// Returns false if the key is not cached.
  bool touch(geo::Key key, double now_s, double region_distance);

  /// Update consistency state on a cached copy (new version / TTR).
  bool refresh(geo::Key key, std::uint64_t version, double ttr_expiry_s);

  /// Mark a cached copy invalid (pushed invalidation); keeps it resident
  /// so the next request triggers revalidation instead of a silent miss.
  bool invalidate(geo::Key key);

  bool erase(geo::Key key);

  [[nodiscard]] std::size_t used_bytes() const noexcept { return used_; }
  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    return capacity_;
  }
  [[nodiscard]] std::size_t entry_count() const noexcept {
    return entries_.size();
  }
  [[nodiscard]] const ReplacementPolicy& policy() const noexcept {
    return *policy_;
  }
  /// Priority the next eviction round would use for `entry`.
  [[nodiscard]] double priority(const CacheEntry& entry) const {
    return entry.inflation + policy_->score(entry);
  }
  /// Current greedy-dual aging value L (priority of the last victim).
  [[nodiscard]] double inflation_floor() const noexcept { return floor_; }
  /// Keys currently resident in dynamic space (unspecified order).
  [[nodiscard]] std::vector<geo::Key> keys() const;

  /// Observe-only iteration over the dynamic space (unspecified order,
  /// no allocation) — the invariant checker's audit seam.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [key, entry] : entries_) fn(entry);
  }

  // -- static space (home-region custody) -----------------------------------

  /// Store a custody copy.  Static space is not capacity-managed (the
  /// paper's home-region guarantees depend on custody never being
  /// evicted); size is tracked for diagnostics.
  void put_static(CacheEntry entry);
  [[nodiscard]] const CacheEntry* find_static(geo::Key key) const;
  [[nodiscard]] CacheEntry* find_static_mutable(geo::Key key);
  bool erase_static(geo::Key key);
  /// Remove and return all custody entries (inter-region handoff).
  [[nodiscard]] std::vector<CacheEntry> take_all_static();
  [[nodiscard]] std::size_t static_count() const noexcept {
    return static_entries_.size();
  }
  [[nodiscard]] std::size_t static_bytes() const noexcept {
    return static_bytes_;
  }

  /// Observe-only iteration over the static (custody) space.
  template <typename Fn>
  void for_each_static(Fn&& fn) const {
    for (const auto& [key, entry] : static_entries_) fn(entry);
  }

 private:
  /// Evict the minimum-priority entry; returns its key.  Pre: non-empty.
  geo::Key evict_one();

  std::size_t capacity_;
  std::unique_ptr<ReplacementPolicy> policy_;
  std::unordered_map<geo::Key, CacheEntry> entries_;
  std::unordered_map<geo::Key, CacheEntry> static_entries_;
  std::size_t used_ = 0;
  std::size_t static_bytes_ = 0;
  double floor_ = 0.0;  // greedy-dual L
};

}  // namespace precinct::cache
