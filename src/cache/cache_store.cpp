#include "cache/cache_store.hpp"

#include <cassert>
#include <stdexcept>

namespace precinct::cache {

CacheStore::CacheStore(std::size_t capacity_bytes,
                       std::unique_ptr<ReplacementPolicy> policy)
    : capacity_(capacity_bytes), policy_(std::move(policy)) {
  if (!policy_) throw std::invalid_argument("CacheStore: null policy");
}

CatalogView CacheStore::view() const noexcept {
  CatalogView v;
  v.key = key_.data();
  v.size_bytes = size_bytes_.data();
  v.version = version_.data();
  v.access_count = access_count_.data();
  v.region_distance = region_distance_.data();
  v.inflation = inflation_.data();
  v.ttr_expiry_s = ttr_expiry_s_.data();
  v.invalidated = invalidated_.data();
  v.fetched_at_s = fetched_at_s_.data();
  v.last_access_s = last_access_s_.data();
  v.n = key_.size();
  return v;
}

void CacheStore::write_slot(std::size_t slot, const CacheEntry& entry) {
  key_[slot] = entry.key;
  size_bytes_[slot] = entry.size_bytes;
  version_[slot] = entry.version;
  access_count_[slot] = entry.access_count;
  region_distance_[slot] = entry.region_distance;
  inflation_[slot] = entry.inflation;
  ttr_expiry_s_[slot] = entry.ttr_expiry_s;
  invalidated_[slot] = entry.invalidated ? 1 : 0;
  fetched_at_s_[slot] = entry.fetched_at_s;
  last_access_s_[slot] = entry.last_access_s;
}

void CacheStore::push_slot(const CacheEntry& entry) {
  const auto slot = static_cast<std::uint32_t>(key_.size());
  key_.push_back(entry.key);
  size_bytes_.push_back(entry.size_bytes);
  version_.push_back(entry.version);
  access_count_.push_back(entry.access_count);
  region_distance_.push_back(entry.region_distance);
  inflation_.push_back(entry.inflation);
  ttr_expiry_s_.push_back(entry.ttr_expiry_s);
  invalidated_.push_back(entry.invalidated ? 1 : 0);
  fetched_at_s_.push_back(entry.fetched_at_s);
  last_access_s_.push_back(entry.last_access_s);
  index_.emplace(entry.key, slot);
}

void CacheStore::remove_slot(std::size_t slot) {
  index_.erase(key_[slot]);
  const std::size_t last = key_.size() - 1;
  if (slot != last) {
    key_[slot] = key_[last];
    size_bytes_[slot] = size_bytes_[last];
    version_[slot] = version_[last];
    access_count_[slot] = access_count_[last];
    region_distance_[slot] = region_distance_[last];
    inflation_[slot] = inflation_[last];
    ttr_expiry_s_[slot] = ttr_expiry_s_[last];
    invalidated_[slot] = invalidated_[last];
    fetched_at_s_[slot] = fetched_at_s_[last];
    last_access_s_[slot] = last_access_s_[last];
    index_[key_[slot]] = static_cast<std::uint32_t>(slot);
  }
  key_.pop_back();
  size_bytes_.pop_back();
  version_.pop_back();
  access_count_.pop_back();
  region_distance_.pop_back();
  inflation_.pop_back();
  ttr_expiry_s_.pop_back();
  invalidated_.pop_back();
  fetched_at_s_.pop_back();
  last_access_s_.pop_back();
}

InsertResult CacheStore::insert(CacheEntry entry) {
  InsertResult result;
  if (entry.size_bytes > capacity_) return result;  // can never fit

  if (const auto it = index_.find(entry.key); it != index_.end()) {
    // Refresh in place; preserve accumulated access count and inflation.
    const std::size_t slot = it->second;
    entry.access_count = access_count_[slot];
    entry.inflation = inflation_[slot];
    used_ -= size_bytes_[slot];
    used_ += entry.size_bytes;
    write_slot(slot, entry);
    result.admitted = true;
    // A refresh may have grown the entry past capacity; evict others.
    while (used_ > capacity_) {
      if (key_.size() == 1) {  // only the refreshed entry remains
        used_ -= size_bytes_[0];
        result.evicted.push_back(entry.key);
        remove_slot(0);
        result.admitted = false;
        return result;
      }
      result.evicted.push_back(evict_one());
    }
    return result;
  }

  while (used_ + entry.size_bytes > capacity_ && !key_.empty()) {
    result.evicted.push_back(evict_one());
  }
  if (used_ + entry.size_bytes > capacity_) return result;

  // Greedy-dual aging: the newcomer's priority starts at L + score
  // (paper: "U(d) = L + U(d)").
  if (policy_->inflates()) entry.inflation = floor_;
  used_ += entry.size_bytes;
  push_slot(entry);
  result.admitted = true;
  return result;
}

std::size_t CacheStore::select_victim(double& priority_out) const {
  assert(!key_.empty());
  const std::size_t n = key_.size();
  if (score_scratch_.size() < n) score_scratch_.resize(n);
  policy_->score_rows(view(), score_scratch_.data());
  // priority = inflation + score, exactly as priority() computes it, so
  // the argmin under the strict (priority, key) order picks the same
  // victim the old per-entry map scan did regardless of scan order.
  std::size_t best = 0;
  double best_priority = inflation_[0] + score_scratch_[0];
  for (std::size_t i = 1; i < n; ++i) {
    const double p = inflation_[i] + score_scratch_[i];
    if (p < best_priority || (p == best_priority && key_[i] < key_[best])) {
      best_priority = p;
      best = i;
    }
  }
  priority_out = best_priority;
  return best;
}

geo::Key CacheStore::evict_one() {
  double victim_priority = 0.0;
  const std::size_t victim = select_victim(victim_priority);
  floor_ = victim_priority;  // L := priority of the evicted entry
  const geo::Key key = key_[victim];
  used_ -= size_bytes_[victim];
  remove_slot(victim);
  return key;
}

std::optional<geo::Key> CacheStore::victim_key() const {
  if (key_.empty()) return std::nullopt;
  double unused = 0.0;
  return key_[select_victim(unused)];
}

const CacheEntry* CacheStore::find(geo::Key key) const {
  const auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  materialize(it->second, scratch_);
  return &scratch_;
}

bool CacheStore::touch(geo::Key key, double now_s, double region_distance) {
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  access_count_[it->second] += 1.0;
  last_access_s_[it->second] = now_s;
  region_distance_[it->second] = region_distance;
  return true;
}

bool CacheStore::refresh(geo::Key key, std::uint64_t version,
                         double ttr_expiry_s) {
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  version_[it->second] = version;
  ttr_expiry_s_[it->second] = ttr_expiry_s;
  invalidated_[it->second] = 0;
  return true;
}

bool CacheStore::invalidate(geo::Key key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  invalidated_[it->second] = 1;
  return true;
}

bool CacheStore::erase(geo::Key key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  used_ -= size_bytes_[it->second];
  remove_slot(it->second);
  return true;
}

std::vector<geo::Key> CacheStore::keys() const {
  return key_;
}

void CacheStore::put_static(CacheEntry entry) {
  const auto [it, inserted] = static_entries_.emplace(entry.key, entry);
  if (!inserted) {
    static_bytes_ -= it->second.size_bytes;
    it->second = entry;
  }
  static_bytes_ += entry.size_bytes;
}

const CacheEntry* CacheStore::find_static(geo::Key key) const {
  const auto it = static_entries_.find(key);
  return it == static_entries_.end() ? nullptr : &it->second;
}

CacheEntry* CacheStore::find_static_mutable(geo::Key key) {
  const auto it = static_entries_.find(key);
  return it == static_entries_.end() ? nullptr : &it->second;
}

bool CacheStore::erase_static(geo::Key key) {
  const auto it = static_entries_.find(key);
  if (it == static_entries_.end()) return false;
  static_bytes_ -= it->second.size_bytes;
  static_entries_.erase(it);
  return true;
}

std::vector<CacheEntry> CacheStore::take_all_static() {
  std::vector<CacheEntry> out;
  out.reserve(static_entries_.size());
  for (auto& [key, entry] : static_entries_) out.push_back(entry);
  static_entries_.clear();
  static_bytes_ = 0;
  return out;
}

}  // namespace precinct::cache
