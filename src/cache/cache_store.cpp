#include "cache/cache_store.hpp"

#include <cassert>
#include <limits>
#include <stdexcept>

namespace precinct::cache {

CacheStore::CacheStore(std::size_t capacity_bytes,
                       std::unique_ptr<ReplacementPolicy> policy)
    : capacity_(capacity_bytes), policy_(std::move(policy)) {
  if (!policy_) throw std::invalid_argument("CacheStore: null policy");
}

InsertResult CacheStore::insert(CacheEntry entry) {
  InsertResult result;
  if (entry.size_bytes > capacity_) return result;  // can never fit

  if (const auto it = entries_.find(entry.key); it != entries_.end()) {
    // Refresh in place; preserve accumulated access count and inflation.
    entry.access_count = it->second.access_count;
    entry.inflation = it->second.inflation;
    used_ -= it->second.size_bytes;
    used_ += entry.size_bytes;
    it->second = entry;
    result.admitted = true;
    // A refresh may have grown the entry past capacity; evict others.
    while (used_ > capacity_) {
      if (entries_.size() == 1) {  // only the refreshed entry remains
        used_ -= it->second.size_bytes;
        result.evicted.push_back(entry.key);
        entries_.erase(it);
        result.admitted = false;
        return result;
      }
      result.evicted.push_back(evict_one());
    }
    return result;
  }

  while (used_ + entry.size_bytes > capacity_ && !entries_.empty()) {
    result.evicted.push_back(evict_one());
  }
  if (used_ + entry.size_bytes > capacity_) return result;

  // Greedy-dual aging: the newcomer's priority starts at L + score
  // (paper: "U(d) = L + U(d)").
  if (policy_->inflates()) entry.inflation = floor_;
  used_ += entry.size_bytes;
  entries_.emplace(entry.key, entry);
  result.admitted = true;
  return result;
}

geo::Key CacheStore::evict_one() {
  assert(!entries_.empty());
  auto victim = entries_.begin();
  double victim_priority = priority(victim->second);
  for (auto it = std::next(entries_.begin()); it != entries_.end(); ++it) {
    const double p = priority(it->second);
    if (p < victim_priority || (p == victim_priority && it->first < victim->first)) {
      victim_priority = p;
      victim = it;
    }
  }
  floor_ = victim_priority;  // L := priority of the evicted entry
  const geo::Key key = victim->first;
  used_ -= victim->second.size_bytes;
  entries_.erase(victim);
  return key;
}

const CacheEntry* CacheStore::find(geo::Key key) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

bool CacheStore::touch(geo::Key key, double now_s, double region_distance) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  it->second.access_count += 1.0;
  it->second.last_access_s = now_s;
  it->second.region_distance = region_distance;
  return true;
}

bool CacheStore::refresh(geo::Key key, std::uint64_t version,
                         double ttr_expiry_s) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  it->second.version = version;
  it->second.ttr_expiry_s = ttr_expiry_s;
  it->second.invalidated = false;
  return true;
}

bool CacheStore::invalidate(geo::Key key) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  it->second.invalidated = true;
  return true;
}

bool CacheStore::erase(geo::Key key) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  used_ -= it->second.size_bytes;
  entries_.erase(it);
  return true;
}

std::vector<geo::Key> CacheStore::keys() const {
  std::vector<geo::Key> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) out.push_back(key);
  return out;
}

void CacheStore::put_static(CacheEntry entry) {
  const auto [it, inserted] = static_entries_.emplace(entry.key, entry);
  if (!inserted) {
    static_bytes_ -= it->second.size_bytes;
    it->second = entry;
  }
  static_bytes_ += entry.size_bytes;
}

const CacheEntry* CacheStore::find_static(geo::Key key) const {
  const auto it = static_entries_.find(key);
  return it == static_entries_.end() ? nullptr : &it->second;
}

CacheEntry* CacheStore::find_static_mutable(geo::Key key) {
  const auto it = static_entries_.find(key);
  return it == static_entries_.end() ? nullptr : &it->second;
}

bool CacheStore::erase_static(geo::Key key) {
  const auto it = static_entries_.find(key);
  if (it == static_entries_.end()) return false;
  static_bytes_ -= it->second.size_bytes;
  static_entries_.erase(it);
  return true;
}

std::vector<CacheEntry> CacheStore::take_all_static() {
  std::vector<CacheEntry> out;
  out.reserve(static_entries_.size());
  for (auto& [key, entry] : static_entries_) out.push_back(entry);
  static_entries_.clear();
  static_bytes_ = 0;
  return out;
}

}  // namespace precinct::cache
