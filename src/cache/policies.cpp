#include "cache/policies.hpp"

#include <stdexcept>

namespace precinct::cache {

void ReplacementPolicy::score_rows(const CatalogView& v, double* out) const {
  // Correctness fallback for custom policies: materialize each row and
  // defer to the scalar score().  Built-ins override with column sweeps.
  CacheEntry e;
  for (std::size_t i = 0; i < v.n; ++i) {
    e.key = v.key[i];
    e.size_bytes = v.size_bytes[i];
    e.version = v.version[i];
    e.access_count = v.access_count[i];
    e.region_distance = v.region_distance[i];
    e.inflation = v.inflation[i];
    e.ttr_expiry_s = v.ttr_expiry_s[i];
    e.invalidated = v.invalidated[i] != 0;
    e.fetched_at_s = v.fetched_at_s[i];
    e.last_access_s = v.last_access_s[i];
    out[i] = score(e);
  }
}

double GdLd::score(const CacheEntry& entry) const {
  const double inv_size =
      entry.size_bytes > 0 ? 1.0 / static_cast<double>(entry.size_bytes) : 0.0;
  return weights_.wr * entry.access_count +
         weights_.wd * entry.region_distance + weights_.ws * inv_size;
}

void GdLd::score_rows(const CatalogView& v, double* out) const {
  for (std::size_t i = 0; i < v.n; ++i) {
    const double inv_size =
        v.size_bytes[i] > 0 ? 1.0 / static_cast<double>(v.size_bytes[i]) : 0.0;
    out[i] = weights_.wr * v.access_count[i] +
             weights_.wd * v.region_distance[i] + weights_.ws * inv_size;
  }
}

double GdSize::score(const CacheEntry& entry) const {
  // cost/size with cost = 1; scaled so magnitudes are comparable to GD-LD
  // inflation values (scale cancels in eviction ordering).
  return entry.size_bytes > 0
             ? 4096.0 / static_cast<double>(entry.size_bytes)
             : 0.0;
}

void GdSize::score_rows(const CatalogView& v, double* out) const {
  for (std::size_t i = 0; i < v.n; ++i) {
    out[i] = v.size_bytes[i] > 0
                 ? 4096.0 / static_cast<double>(v.size_bytes[i])
                 : 0.0;
  }
}

double Gdsf::score(const CacheEntry& entry) const {
  return entry.size_bytes > 0
             ? 4096.0 * entry.access_count /
                   static_cast<double>(entry.size_bytes)
             : 0.0;
}

void Gdsf::score_rows(const CatalogView& v, double* out) const {
  for (std::size_t i = 0; i < v.n; ++i) {
    out[i] = v.size_bytes[i] > 0
                 ? 4096.0 * v.access_count[i] /
                       static_cast<double>(v.size_bytes[i])
                 : 0.0;
  }
}

double Lru::score(const CacheEntry& entry) const {
  return entry.last_access_s;
}

void Lru::score_rows(const CatalogView& v, double* out) const {
  for (std::size_t i = 0; i < v.n; ++i) out[i] = v.last_access_s[i];
}

double Lfu::score(const CacheEntry& entry) const {
  return entry.access_count;
}

void Lfu::score_rows(const CatalogView& v, double* out) const {
  for (std::size_t i = 0; i < v.n; ++i) out[i] = v.access_count[i];
}

std::unique_ptr<ReplacementPolicy> make_policy(const std::string& name,
                                               GdLdWeights gdld_weights) {
  if (name == "gd-ld") return std::make_unique<GdLd>(gdld_weights);
  if (name == "gd-size") return std::make_unique<GdSize>();
  if (name == "gdsf") return std::make_unique<Gdsf>();
  if (name == "lru") return std::make_unique<Lru>();
  if (name == "lfu") return std::make_unique<Lfu>();
  throw std::invalid_argument("make_policy: unknown policy '" + name + "'");
}

}  // namespace precinct::cache
