#include "cache/policies.hpp"

#include <stdexcept>

namespace precinct::cache {

double GdLd::score(const CacheEntry& entry) const {
  const double inv_size =
      entry.size_bytes > 0 ? 1.0 / static_cast<double>(entry.size_bytes) : 0.0;
  return weights_.wr * entry.access_count +
         weights_.wd * entry.region_distance + weights_.ws * inv_size;
}

double GdSize::score(const CacheEntry& entry) const {
  // cost/size with cost = 1; scaled so magnitudes are comparable to GD-LD
  // inflation values (scale cancels in eviction ordering).
  return entry.size_bytes > 0
             ? 4096.0 / static_cast<double>(entry.size_bytes)
             : 0.0;
}

double Gdsf::score(const CacheEntry& entry) const {
  return entry.size_bytes > 0
             ? 4096.0 * entry.access_count /
                   static_cast<double>(entry.size_bytes)
             : 0.0;
}

double Lru::score(const CacheEntry& entry) const {
  return entry.last_access_s;
}

double Lfu::score(const CacheEntry& entry) const {
  return entry.access_count;
}

std::unique_ptr<ReplacementPolicy> make_policy(const std::string& name,
                                               GdLdWeights gdld_weights) {
  if (name == "gd-ld") return std::make_unique<GdLd>(gdld_weights);
  if (name == "gd-size") return std::make_unique<GdSize>();
  if (name == "gdsf") return std::make_unique<Gdsf>();
  if (name == "lru") return std::make_unique<Lru>();
  if (name == "lfu") return std::make_unique<Lfu>();
  throw std::invalid_argument("make_policy: unknown policy '" + name + "'");
}

}  // namespace precinct::cache
