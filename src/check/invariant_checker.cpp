#include "check/invariant_checker.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "core/consistency_scheme.hpp"
#include "core/retrieval_scheme.hpp"

namespace precinct::check {
namespace {

constexpr const char* kCategoryNames[kCategoryCount] = {
    "net", "cache", "custody", "pending", "consistency", "energy"};

/// Relative slack for floating-point monotonicity/bound checks: the
/// audited quantities are sums of non-negative terms, so any violation
/// beyond rounding noise is a real bug.
constexpr double kRelEps = 1e-9;

[[nodiscard]] bool bounded_above(double value, double bound) noexcept {
  return value <= bound + std::abs(bound) * kRelEps + 1e-12;
}

}  // namespace

const char* category_name(Category c) noexcept {
  return kCategoryNames[static_cast<std::size_t>(c)];
}

CategoryMask parse_categories(const std::string& spec) {
  if (spec.empty()) return kNoCategories;
  CategoryMask mask = kNoCategories;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', pos), spec.size());
    const std::string token = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (token == "all") {
      mask |= kAllCategories;
      continue;
    }
    bool known = false;
    for (std::size_t i = 0; i < kCategoryCount; ++i) {
      if (token == kCategoryNames[i]) {
        mask |= mask_of(static_cast<Category>(i));
        known = true;
        break;
      }
    }
    if (!known) {
      throw std::invalid_argument(
          "check: unknown category '" + token +
          "' (valid: all, net, cache, custody, pending, consistency, "
          "energy)");
    }
  }
  return mask;
}

InvariantChecker::InvariantChecker(const core::EngineContext& ctx,
                                   CategoryMask mask, std::uint64_t stride)
    : ctx_(ctx), mask_(mask), stride_(stride > 0 ? stride : 1) {}

void InvariantChecker::on_event() {
  if (++events_ % stride_ != 0) return;
  audit_slice();
}

void InvariantChecker::audit() {
  if (has(mask_, Category::kNet)) audit_net();
  if (has(mask_, Category::kCache)) {
    for (net::NodeId node = 0; node < ctx_.peers.size(); ++node) {
      audit_cache_node(node);
    }
  }
  if (has(mask_, Category::kCustody)) audit_custody();
  if (has(mask_, Category::kPending)) audit_pending();
  if (has(mask_, Category::kConsistency)) audit_consistency();
  if (has(mask_, Category::kEnergy)) audit_energy();
  ++audits_;
}

// The per-entry scans are the only audits whose cost grows with cached
// state, so they rotate: a quarter of the peers' caches and one region's
// custody set per boundary.  Everything else is cheap enough to run each
// time.  Detection latency for a rotated invariant is therefore at most
// max(4, region count) boundaries; finalize()'s full audit closes the
// remaining gap at end of run.
void InvariantChecker::audit_slice() {
  if (has(mask_, Category::kNet)) audit_net();
  if (has(mask_, Category::kCache)) {
    const std::size_t n = ctx_.peers.size();
    const std::size_t chunk = (n + 3) / 4;
    for (std::size_t i = 0; i < chunk; ++i) {
      audit_cache_node(static_cast<net::NodeId>((cache_cursor_ + i) % n));
    }
    if (n > 0) cache_cursor_ = (cache_cursor_ + chunk) % n;
  }
  if (has(mask_, Category::kCustody) && ctx_.regions.size() > 0) {
    audit_custody_region(
        static_cast<geo::RegionId>(custody_cursor_ % ctx_.regions.size()));
    custody_cursor_ = (custody_cursor_ + 1) % ctx_.regions.size();
  }
  if (has(mask_, Category::kPending)) audit_pending();
  if (has(mask_, Category::kConsistency)) audit_consistency();
  if (has(mask_, Category::kEnergy)) audit_energy();
  ++audits_;
}

void InvariantChecker::fail(Category category, net::NodeId node,
                            std::string detail) const {
  throw InvariantViolation(category, ctx_.sim.events_executed(), node,
                           std::move(detail));
}

// Packet-pool refcount conservation: frames are referenced only by queued
// delivery events, so a drained simulator must have recycled every frame
// (the PR-2 pooled-buffer reuse bug class).  Radio counters only grow.
void InvariantChecker::audit_net() {
  const net::PacketBufPool& pool = ctx_.net.frame_pool();
  if (pool.in_use() > pool.capacity()) {
    fail(Category::kNet, net::kNoNode,
         "frame pool in_use " + std::to_string(pool.in_use()) +
             " exceeds capacity " + std::to_string(pool.capacity()));
  }
  if (ctx_.sim.pending() == 0 && pool.in_use() != 0) {
    fail(Category::kNet, net::kNoNode,
         "event queue drained but " + std::to_string(pool.in_use()) +
             " pooled frames still referenced (leak)");
  }
  if (ctx_.net.alive_count() > ctx_.net.node_count()) {
    fail(Category::kNet, net::kNoNode,
         "alive_count " + std::to_string(ctx_.net.alive_count()) +
             " exceeds node_count " + std::to_string(ctx_.net.node_count()));
  }
  const net::MessageStats& stats = ctx_.net.stats();
  if (stats.total_sends() < last_total_sends_ ||
      stats.total_bytes() < last_total_bytes_) {
    fail(Category::kNet, net::kNoNode, "message counters moved backwards");
  }
  last_total_sends_ = stats.total_sends();
  last_total_bytes_ = stats.total_bytes();
}

// Cache byte accounting (§3): dynamic occupancy never exceeds capacity,
// tracked byte totals equal the sum over resident entries, and every
// entry matches its catalog item (known key, catalog size, version no
// newer than the authoritative one).
void InvariantChecker::audit_cache_node(net::NodeId node) {
  const cache::CacheStore& cache = ctx_.peers[node].cache;
  if (cache.used_bytes() > cache.capacity_bytes()) {
    fail(Category::kCache, node,
         "dynamic space " + std::to_string(cache.used_bytes()) +
             " bytes exceeds capacity " +
             std::to_string(cache.capacity_bytes()));
  }
  std::size_t dynamic_sum = 0;
  // for_each hands out rows materialized per iteration, so remember the
  // offending key by value rather than holding an entry pointer.
  bool has_bad = false;
  geo::Key bad_key = 0;
  const char* why = nullptr;
  const auto check_entry = [&](const cache::CacheEntry& e) {
    if (has_bad) return;
    const workload::DataItem* item = ctx_.catalog.find(e.key);
    if (item == nullptr) {
      has_bad = true;
      bad_key = e.key;
      why = "caches a key absent from the catalog";
    } else if (e.size_bytes != item->size_bytes) {
      has_bad = true;
      bad_key = e.key;
      why = "cached size disagrees with the catalog";
    } else if (e.version > item->version) {
      has_bad = true;
      bad_key = e.key;
      why = "cached version is newer than the authoritative one";
    }
  };
  cache.for_each([&](const cache::CacheEntry& e) {
    dynamic_sum += e.size_bytes;
    if (e.size_bytes > cache.capacity_bytes() && !has_bad) {
      has_bad = true;
      bad_key = e.key;
      why = "admitted an entry larger than the whole capacity";
    }
    check_entry(e);
  });
  if (dynamic_sum != cache.used_bytes()) {
    fail(Category::kCache, node,
         "dynamic entries sum to " + std::to_string(dynamic_sum) +
             " bytes but used_bytes reports " +
             std::to_string(cache.used_bytes()));
  }
  std::size_t static_sum = 0;
  cache.for_each_static([&](const cache::CacheEntry& e) {
    static_sum += e.size_bytes;
    check_entry(e);
  });
  if (static_sum != cache.static_bytes()) {
    fail(Category::kCache, node,
         "static entries sum to " + std::to_string(static_sum) +
             " bytes but static_bytes reports " +
             std::to_string(cache.static_bytes()));
  }
  if (has_bad) {
    fail(Category::kCache, node,
         std::string(why) + " (key " + std::to_string(bad_key) + ")");
  }
}

// Custody uniqueness (§2.3, §2.4): at most one live peer per residing
// region holds a given key in static space.  Handoffs, merges, crashes
// and void-recovery rebroadcasts must never leave two custodians of the
// same key in one region — a duplicate would fork the "home copy" and
// make update pushes nondeterministic about which copy they refresh.
void InvariantChecker::audit_custody() {
  holders_.clear();
  for (net::NodeId node = 0; node < ctx_.peers.size(); ++node) {
    if (!ctx_.net.is_alive(node)) continue;
    const core::PeerState& p = ctx_.peers[node];
    p.cache.for_each_static([&](const cache::CacheEntry& e) {
      holders_.push_back(CustodyHolder{e.key, p.region, node});
    });
  }
  check_holder_duplicates();
}

// Duplicates can only pair nodes residing in the same region, so the
// rotating slice audits one region's holders at a time without losing
// any violation class.
void InvariantChecker::audit_custody_region(geo::RegionId region) {
  holders_.clear();
  for (net::NodeId node = 0; node < ctx_.peers.size(); ++node) {
    if (!ctx_.net.is_alive(node)) continue;
    const core::PeerState& p = ctx_.peers[node];
    if (p.region != region) continue;
    p.cache.for_each_static([&](const cache::CacheEntry& e) {
      holders_.push_back(CustodyHolder{e.key, p.region, node});
    });
  }
  check_holder_duplicates();
}

void InvariantChecker::check_holder_duplicates() {
  std::sort(holders_.begin(), holders_.end(),
            [](const CustodyHolder& a, const CustodyHolder& b) {
              if (a.key != b.key) return a.key < b.key;
              if (a.region != b.region) return a.region < b.region;
              return a.node < b.node;
            });
  for (std::size_t i = 1; i < holders_.size(); ++i) {
    const CustodyHolder& a = holders_[i - 1];
    const CustodyHolder& b = holders_[i];
    if (a.key == b.key && a.region == b.region) {
      fail(Category::kCustody, b.node,
           "key " + std::to_string(b.key) + " has duplicate custodians " +
               std::to_string(a.node) + " and " + std::to_string(b.node) +
               " in region " + std::to_string(b.region));
    }
  }
}

// Request lifecycle: every measured lookup is issued exactly once and
// terminates in exactly one of completed/failed (pending ones are still
// in flight), the hit classes partition the completions, and no request
// exceeds its retry budget.
void InvariantChecker::audit_pending() {
  const double now = ctx_.sim.now();
  const int budget = ctx_.config.request_retries;
  ctx_.retrieval->visit_pending([&](const core::RetrievalScheme::PendingView&
                                        p) {
    if (p.attempts < 0 || p.attempts > budget) {
      fail(Category::kPending, p.requester,
           "request for key " + std::to_string(p.key) + " used " +
               std::to_string(p.attempts) + " retries (budget " +
               std::to_string(budget) + ")");
    }
    if (p.created_at > now + 1e-9) {
      fail(Category::kPending, p.requester,
           "pending request created in the future (created_at " +
               std::to_string(p.created_at) + " > now " +
               std::to_string(now) + ")");
    }
    if (p.requester >= ctx_.peers.size()) {
      fail(Category::kPending, p.requester, "pending request at unknown peer");
    }
  });
  const core::Metrics& m = ctx_.metrics;
  const std::uint64_t accounted =
      m.requests_completed + m.requests_failed + ctx_.retrieval->measured_pending();
  if (m.requests_issued != accounted) {
    fail(Category::kPending, net::kNoNode,
         "lifecycle leak: issued " + std::to_string(m.requests_issued) +
             " != completed " + std::to_string(m.requests_completed) +
             " + failed " + std::to_string(m.requests_failed) +
             " + in-flight " +
             std::to_string(ctx_.retrieval->measured_pending()));
  }
  const std::uint64_t hits = m.own_cache_hits + m.regional_hits +
                             m.en_route_hits + m.home_region_hits +
                             m.replica_hits;
  if (hits != m.requests_completed) {
    fail(Category::kPending, net::kNoNode,
         "hit classes sum to " + std::to_string(hits) + " but " +
             std::to_string(m.requests_completed) + " requests completed");
  }
  if (m.latency_s.count() != m.requests_completed) {
    fail(Category::kPending, net::kNoNode,
         "latency samples " + std::to_string(m.latency_s.count()) +
             " != completed requests " +
             std::to_string(m.requests_completed));
  }
  if (m.bytes_hit > m.bytes_requested) {
    fail(Category::kPending, net::kNoNode,
         "bytes_hit " + std::to_string(m.bytes_hit) +
             " exceeds bytes_requested " + std::to_string(m.bytes_requested));
  }
}

// Consistency (§4): TTR estimates stay positive and respect the Eq. 2
// EWMA bound (a convex combination of the initial TTR and inter-update
// gaps, none of which can exceed the current time), and un-acked pushes
// never overdraw their retry budget.
void InvariantChecker::audit_consistency() {
  const double now = ctx_.sim.now();
  const double ttr_ceiling = std::max(ctx_.config.ttr_initial_s, now);
  ctx_.consistency->visit_ttr([&](const core::ConsistencyScheme::TtrView& t) {
    if (!std::isfinite(t.ttr_s) || t.ttr_s < 0.0) {
      fail(Category::kConsistency, net::kNoNode,
           "TTR for key " + std::to_string(t.key) + " is " +
               std::to_string(t.ttr_s));
    }
    if (ctx_.config.ttr_initial_s > 0.0 && ctx_.config.ttr_alpha > 0.0 &&
        t.ttr_s <= 0.0) {
      fail(Category::kConsistency, net::kNoNode,
           "TTR for key " + std::to_string(t.key) +
               " collapsed to zero despite positive seed and alpha");
    }
    if (!bounded_above(t.ttr_s, ttr_ceiling)) {
      fail(Category::kConsistency, net::kNoNode,
           "TTR for key " + std::to_string(t.key) + " (" +
               std::to_string(t.ttr_s) + " s) exceeds the Eq. 2 bound " +
               std::to_string(ttr_ceiling) + " s");
    }
  });
  const int push_budget = ctx_.config.push_retries;
  ctx_.consistency->visit_pending_pushes(
      [&](const core::ConsistencyScheme::PushView& p) {
        if (p.retries_left < 0 || p.retries_left > push_budget) {
          fail(Category::kConsistency, p.updater,
               "push for key " + std::to_string(p.key) + " has " +
                   std::to_string(p.retries_left) +
                   " retries left (budget " + std::to_string(push_budget) +
                   ")");
        }
      });
  const core::Metrics& m = ctx_.metrics;
  if (m.false_hits > m.cache_served_valid) {
    fail(Category::kConsistency, net::kNoNode,
         "false_hits " + std::to_string(m.false_hits) +
             " exceeds cache_served_valid " +
             std::to_string(m.cache_served_valid));
  }
}

// Energy accounting: every per-node meter is finite and non-negative,
// the network total only grows, and the channel-discard meter stays zero
// under a lossless channel (nothing to discard).
void InvariantChecker::audit_energy() {
  const energy::EnergyAccountant& energy = ctx_.net.energy();
  const bool lossless = ctx_.net.channel_model().lossless();
  double total = 0.0;
  for (std::size_t i = 0; i < energy.node_count(); ++i) {
    const energy::EnergyBreakdown& b = energy.node(i);
    const double fields[] = {b.broadcast_send_mj, b.broadcast_recv_mj,
                             b.p2p_send_mj,       b.p2p_recv_mj,
                             b.p2p_discard_mj,    b.channel_discard_mj};
    for (const double f : fields) {
      if (!std::isfinite(f) || f < 0.0) {
        fail(Category::kEnergy, static_cast<net::NodeId>(i),
             "energy meter is negative or non-finite (" + std::to_string(f) +
                 " mJ)");
      }
    }
    if (lossless && b.channel_discard_mj != 0.0) {
      fail(Category::kEnergy, static_cast<net::NodeId>(i),
           "channel-discard energy charged under a lossless channel (" +
               std::to_string(b.channel_discard_mj) + " mJ)");
    }
    total += b.total_mj();
  }
  if (!bounded_above(last_energy_total_mj_, total)) {
    fail(Category::kEnergy, net::kNoNode,
         "network energy moved backwards (" +
             std::to_string(last_energy_total_mj_) + " mJ -> " +
             std::to_string(total) + " mJ)");
  }
  last_energy_total_mj_ = total;
}

}  // namespace precinct::check
