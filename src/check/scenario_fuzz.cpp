#include "check/scenario_fuzz.hpp"

#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <utility>
#include <vector>

#include "check/invariant_violation.hpp"
#include "core/config_io.hpp"
#include "core/scenario.hpp"
#include "core/sharded_scenario.hpp"
#include "core/world_scenario.hpp"
#include "net/packet.hpp"
#include "support/rng.hpp"
#include "transport/wire_format.hpp"

namespace precinct::check {

namespace {

/// Draw one candidate config; the caller filters through validate().
/// Deliberately free-ranging: invalid combinations (e.g. a flooding
/// baseline with a polling consistency scheme) are drawn, rejected and
/// redrawn, so the validate() filter is exercised for real.
core::PrecinctConfig draw_candidate(support::Rng& rng,
                                    std::uint64_t case_seed) {
  core::PrecinctConfig c;
  c.n_nodes = 12 + rng.uniform_int(37);  // 12..48
  const double side = 400.0 + 100.0 * static_cast<double>(rng.uniform_int(7));
  c.area = {{0.0, 0.0}, {side, side}};
  c.regions_x = c.regions_y = static_cast<std::uint32_t>(2 + rng.uniform_int(2));

  c.mobile = rng.uniform() < 0.7;
  if (c.mobile) {
    static const char* const kMobility[] = {"random-waypoint",
                                            "random-direction", "gauss-markov",
                                            "manhattan", "commuter"};
    c.mobility_model = kMobility[rng.uniform_int(5)];
    c.v_max = rng.uniform(2.0, 8.0);
    if (c.mobility_model == "manhattan") {
      c.street_spacing_m = 80.0 + 20.0 * static_cast<double>(rng.uniform_int(4));
      c.turn_probability = rng.uniform(0.0, 1.0);
    } else if (c.mobility_model == "commuter") {
      c.commuter_period_s = rng.uniform(40.0, 120.0);
      c.commuter_hubs = 1 + rng.uniform_int(4);
    }
  } else {
    c.mobility_model = "static";
  }

  // Heterogeneous fleets (DESIGN.md §15): a quarter of the draws split
  // the fleet into two classes, sometimes pinning one as fixed roadside
  // units with their own cache budget.
  if (rng.uniform() < 0.25 && c.n_nodes >= 4) {
    const std::size_t first = 1 + rng.uniform_int(c.n_nodes - 2);
    core::NodeClassConfig a;
    a.name = "m0";
    a.count = first;
    if (rng.uniform() < 0.5) a.speed = rng.uniform(1.0, 6.0);
    core::NodeClassConfig b;
    b.name = "m1";
    b.count = c.n_nodes - first;
    if (rng.uniform() < 0.5) {
      b.fixed = true;
      b.cache_kb = rng.uniform(4.0, 64.0);
    }
    c.node_classes = {a, b};
  }

  c.catalog.n_items = 200 + 100 * rng.uniform_int(4);
  c.zipf_theta = rng.uniform(0.4, 1.0);
  c.mean_request_interval_s = rng.uniform(4.0, 12.0);
  c.cache_fraction = rng.uniform(0.005, 0.03);
  c.prefetch_count = rng.uniform_int(3);
  c.replica_count = rng.uniform_int(3);  // may exceed the grid: validate()
                                         // rejects and the case is redrawn

  static const core::RetrievalKind kRetrieval[] = {
      core::RetrievalKind::kPrecinct, core::RetrievalKind::kFlooding,
      core::RetrievalKind::kExpandingRing};
  c.retrieval = kRetrieval[rng.uniform_int(3)];
  static const consistency::Mode kConsistency[] = {
      consistency::Mode::kNone, consistency::Mode::kPlainPush,
      consistency::Mode::kPullEveryTime, consistency::Mode::kPushAdaptivePull};
  c.consistency = kConsistency[rng.uniform_int(4)];
  if (c.consistency != consistency::Mode::kNone) {
    c.updates_enabled = true;
    c.mean_update_interval_s = rng.uniform(8.0, 30.0);
  }

  c.use_beacons = rng.uniform() < 0.3;
  c.request_retries = static_cast<int>(rng.uniform_int(4));
  c.push_retries = static_cast<int>(rng.uniform_int(4));

  static const char* const kChannel[] = {"perfect", "perfect", "bernoulli",
                                         "gilbert-elliott", "distance"};
  c.wireless.channel.model = kChannel[rng.uniform_int(5)];
  c.wireless.channel.loss_p = rng.uniform(0.0, 0.3);
  c.wireless.channel.ge_enter_burst_p = rng.uniform(0.0, 0.05);

  if (rng.uniform() < 0.25) {
    c.crash_rate_per_s = 0.01;
    c.join_rate_per_s = 0.01;
    c.graceful_fraction = rng.uniform();
  }
  c.dynamic_regions = rng.uniform() < 0.2;

  c.warmup_s = 5.0 + static_cast<double>(rng.uniform_int(11));
  c.measure_s = 15.0 + static_cast<double>(rng.uniform_int(26));
  c.seed = support::hash_combine(case_seed, 0x5EEDu);
  c.check = "all";
  static const std::uint64_t kStrides[] = {1, 7, 64};
  c.check_stride = kStrides[rng.uniform_int(3)];
  return c;
}

/// Overwrite the channel with a configured-to-drop-nothing lossy model;
/// the property compares it against the perfect channel byte-for-byte.
void make_null_fault_channel(core::PrecinctConfig& c, std::uint64_t pick) {
  channel::ChannelConfig& ch = c.wireless.channel;
  switch (pick % 3) {
    case 0:
      ch.model = "bernoulli";
      ch.loss_p = 0.0;
      break;
    case 1:
      ch.model = "scripted";
      ch.blackouts.clear();
      ch.partitions.clear();
      break;
    default:
      ch.model = "gilbert-elliott";
      ch.ge_loss_good = 0.0;
      ch.ge_loss_bad = 0.0;
      break;
  }
}

std::string run_fingerprint(const core::PrecinctConfig& c) {
  return core::fingerprint(core::run_scenario(c));
}

std::string diff_detail(const char* label, const std::string& a,
                        const std::string& b) {
  return std::string(label) + "\n--- first\n" + a + "--- second\n" + b;
}

/// One wire-codec trial: draw a hostile packet of `kind`, then require
/// (a) encode matches wire_size(), (b) decode accepts its own encoding
/// exactly (no trailing bytes) and reproduces every field bit-for-bit,
/// (c) re-encoding the decoded packet is byte-identical (fixed point),
/// (d) every strict prefix of the encoding is rejected.  Returns empty on
/// success, else a detail string ending in a replayable hex repro.
std::string wire_codec_trial(support::Rng& rng, net::PacketKind kind) {
  namespace tw = transport;
  const net::Packet p = tw::random_wire_packet(rng, kind);
  tw::WireWriter w;
  tw::encode_packet(p, w);
  const std::string hex = tw::to_hex(w.data());
  const auto fail = [&](const std::string& what) {
    return "wire-codec [" + std::string(net::to_string(kind)) + "] " + what +
           "\npacket-hex: " + hex + "\nreplay: precinct_fuzz --packet-hex " +
           hex;
  };
  if (w.size() != tw::wire_size(p)) {
    return fail("wire_size() says " + std::to_string(tw::wire_size(p)) +
                " bytes but encode_packet wrote " + std::to_string(w.size()));
  }
  net::Packet back;
  {
    tw::WireReader r(w.data().data(), w.size());
    if (!tw::decode_packet(r, back)) {
      return fail("decode_packet rejected its own encoding");
    }
    if (r.remaining() != 0) {
      return fail("decode_packet left " + std::to_string(r.remaining()) +
                  " trailing bytes unread");
    }
  }
  if (!tw::packets_identical(p, back)) {
    return fail("decoded packet differs bit-for-bit from the original");
  }
  tw::WireWriter again;
  tw::encode_packet(back, again);
  if (again.data() != w.data()) {
    return fail("encode(decode(encode(p))) is not a fixed point");
  }
  for (std::size_t cut = 0; cut < w.size(); ++cut) {
    net::Packet truncated;
    tw::WireReader r(w.data().data(), cut);
    if (tw::decode_packet(r, truncated)) {
      return fail("truncation to " + std::to_string(cut) +
                  " bytes was accepted");
    }
  }
  return {};
}

/// Envelope half of the codec property: round-trip exactness plus
/// rejection of a bumped version byte, corrupt magic, and truncation.
std::string wire_envelope_trial(support::Rng& rng) {
  namespace tw = transport;
  tw::Envelope e;
  e.type = static_cast<tw::MsgType>(1 + rng.uniform_int(9));  // kHello..kInject
  e.src_domain = static_cast<std::uint32_t>(rng.bits());
  e.seq = rng.bits();
  tw::WireWriter w;
  tw::encode_envelope(e, w);
  const auto fail = [&](const std::string& what) {
    return "wire-codec [envelope] " + what +
           "\npacket-hex: " + tw::to_hex(w.data());
  };
  if (w.size() != tw::kEnvelopeBytes) {
    return fail("encoded envelope is " + std::to_string(w.size()) +
                " bytes, expected " + std::to_string(tw::kEnvelopeBytes));
  }
  {
    tw::WireReader r(w.data().data(), w.size());
    tw::Envelope back;
    if (!tw::decode_envelope(r, back)) {
      return fail("decode_envelope rejected its own encoding");
    }
    if (back.type != e.type || back.src_domain != e.src_domain ||
        back.seq != e.seq) {
      return fail("envelope round-trip changed a field");
    }
  }
  std::vector<std::uint8_t> bent = w.data();
  bent[tw::kMagicBytes] = static_cast<std::uint8_t>(tw::kWireVersion + 1);
  {
    tw::WireReader r(bent.data(), bent.size());
    tw::Envelope back;
    if (tw::decode_envelope(r, back)) {
      return fail("wrong-version envelope was accepted");
    }
  }
  bent = w.data();
  bent[0] ^= 0xFF;
  {
    tw::WireReader r(bent.data(), bent.size());
    tw::Envelope back;
    if (tw::decode_envelope(r, back)) {
      return fail("corrupt-magic envelope was accepted");
    }
  }
  for (std::size_t cut = 0; cut < w.size(); ++cut) {
    tw::WireReader r(w.data().data(), cut);
    tw::Envelope back;
    if (tw::decode_envelope(r, back)) {
      return fail("envelope truncated to " + std::to_string(cut) +
                  " bytes was accepted");
    }
  }
  return {};
}

}  // namespace

const char* to_string(Property p) noexcept {
  switch (p) {
    case Property::kReplayIdentical: return "replay-identical";
    case Property::kNullFaultIdentical: return "null-fault-identical";
    case Property::kNoRetryNoResend: return "no-retry-no-resend";
    case Property::kShardInvariant: return "shard-invariant";
    case Property::kWorldShardInvariant: return "world-shard-invariant";
    case Property::kWireCodec: return "wire-codec";
    case Property::kHeterogeneousEquivalent: return "hetero-equivalent";
  }
  return "unknown";
}

FuzzCase draw_scenario(std::uint64_t case_seed) {
  FuzzCase fc;
  fc.case_seed = case_seed;
  fc.property = static_cast<Property>(case_seed % kPropertyCount);
  support::Rng rng(support::hash_combine(case_seed, 0xF0220FuLL));
  for (int attempt = 0; attempt < 64; ++attempt) {
    core::PrecinctConfig c = draw_candidate(rng, case_seed);
    if (fc.property == Property::kNullFaultIdentical) {
      make_null_fault_channel(c, case_seed / kPropertyCount);
    } else if (fc.property == Property::kNoRetryNoResend) {
      c.request_retries = 0;
      c.push_retries = 0;
    } else if (fc.property == Property::kShardInvariant) {
      // A small tile world with real gateway traffic; the case is run
      // twice (shards = 1 vs K) so trim the windows to keep it cheap.
      c.tiles_x = c.tiles_y = 2;
      c.gateway_interval_s = rng.uniform(2.0, 6.0);
      c.gateway_latency_s = 0.2 + 0.1 * static_cast<double>(rng.uniform_int(3));
      c.warmup_s = 3.0;
      c.measure_s = 8.0 + static_cast<double>(rng.uniform_int(6));
    } else if (fc.property == Property::kWorldShardInvariant) {
      // One world cut into region-column domains: the gateway knobs
      // belong to the tiled backhaul and must stay quiet, and
      // dynamic_regions is a global reconfiguration the cut cannot
      // carry.  Boundary-heavy mobility (fast nodes, short pauses)
      // keeps traffic straddling the cut; the case is run twice
      // (shards = 1 vs K) so trim the windows to keep it cheap.
      c.tiles_x = c.tiles_y = 1;
      c.gateway_interval_s = 0.0;
      c.gateway_latency_s = 0.0;
      c.dynamic_regions = false;
      if (c.mobile) {
        c.v_max = rng.uniform(5.0, 10.0);
        c.pause_s = rng.uniform(0.0, 2.0);
      }
      c.warmup_s = 3.0;
      c.measure_s = 8.0 + static_cast<double>(rng.uniform_int(6));
    } else if (fc.property == Property::kHeterogeneousEquivalent) {
      // The property wraps the fleet in a synthetic single class itself;
      // the baseline must be genuinely homogeneous.  Run twice (or three
      // times when mobile), so trim the windows to keep it cheap.
      c.node_classes.clear();
      c.warmup_s = 3.0;
      c.measure_s = 8.0 + static_cast<double>(rng.uniform_int(6));
    } else if (fc.property == Property::kWireCodec) {
      // The codec property never runs the scenario — the config only
      // anchors the repro contract (same case seed, same case).  Keep the
      // drawn windows tiny so a curious `precinct_sim --config` replay of
      // the repro file stays cheap.
      c.warmup_s = 1.0;
      c.measure_s = 2.0;
    }
    try {
      c.validate();
    } catch (const std::invalid_argument&) {
      ++fc.draws_rejected;
      continue;
    }
    fc.config = std::move(c);
    return fc;
  }
  throw std::runtime_error(
      "scenario fuzz: 64 consecutive draws failed validate() for seed " +
      std::to_string(case_seed));
}

FuzzVerdict run_fuzz_case(const FuzzCase& fc) {
  try {
    switch (fc.property) {
      case Property::kReplayIdentical: {
        const std::string first = run_fingerprint(fc.config);
        const std::string second = run_fingerprint(fc.config);
        if (first != second) {
          return {false,
                  diff_detail("same-seed reruns diverged", first, second)};
        }
        return {};
      }
      case Property::kNullFaultIdentical: {
        core::PrecinctConfig perfect = fc.config;
        perfect.wireless.channel.model = "perfect";
        const std::string baseline = run_fingerprint(perfect);
        const std::string nulled = run_fingerprint(fc.config);
        if (baseline != nulled) {
          return {false,
                  diff_detail(("null-fault '" + fc.config.wireless.channel.model +
                               "' channel diverged from 'perfect'")
                                  .c_str(),
                              baseline, nulled)};
        }
        return {};
      }
      case Property::kNoRetryNoResend: {
        const core::Metrics first = core::run_scenario(fc.config);
        if (first.retransmissions != 0) {
          return {false, "retries disabled but retransmissions=" +
                             std::to_string(first.retransmissions)};
        }
        const core::Metrics second = core::run_scenario(fc.config);
        if (core::fingerprint(first) != core::fingerprint(second)) {
          return {false, diff_detail("no-retry reruns diverged",
                                     core::fingerprint(first),
                                     core::fingerprint(second))};
        }
        return {};
      }
      case Property::kShardInvariant: {
        core::PrecinctConfig single = fc.config;
        single.shards = 1;
        core::PrecinctConfig sharded = fc.config;
        sharded.shards = static_cast<std::uint32_t>(
            2 + (fc.case_seed / kPropertyCount) % 3);  // 2..4 of 4 tiles
        const std::string one =
            core::sharded_fingerprint(core::run_sharded_scenario(single));
        const std::string many =
            core::sharded_fingerprint(core::run_sharded_scenario(sharded));
        if (one != many) {
          return {false, diff_detail(("shards=" + std::to_string(sharded.shards) +
                                      " diverged from shards=1")
                                         .c_str(),
                                     one, many)};
        }
        return {};
      }
      case Property::kWorldShardInvariant: {
        core::PrecinctConfig single = fc.config;
        single.shards = 1;
        core::PrecinctConfig sharded = fc.config;
        sharded.shards = static_cast<std::uint32_t>(
            2 + (fc.case_seed / kPropertyCount) % 3);  // 2..4 worker shards
        const std::string one =
            core::world_fingerprint(core::run_world_scenario(single));
        const std::string many =
            core::world_fingerprint(core::run_world_scenario(sharded));
        if (one != many) {
          return {false,
                  diff_detail(("world shards=" + std::to_string(sharded.shards) +
                               " diverged from shards=1")
                                  .c_str(),
                              one, many)};
        }
        return {};
      }
      case Property::kWireCodec: {
        // Pure codec metamorphism: several hostile packets per PacketKind,
        // plus the envelope's version/magic/truncation gates.  The rng is
        // derived from the case seed, so `--replay <seed>` reproduces the
        // exact packet sequence.
        support::Rng rng(support::hash_combine(fc.case_seed, 0xC0DECuLL));
        for (std::size_t kind = 0; kind < net::kPacketKindCount; ++kind) {
          for (int rep = 0; rep < 4; ++rep) {
            std::string detail =
                wire_codec_trial(rng, static_cast<net::PacketKind>(kind));
            if (!detail.empty()) return {false, std::move(detail)};
          }
        }
        std::string detail = wire_envelope_trial(rng);
        if (!detail.empty()) return {false, std::move(detail)};
        return {};
      }
      case Property::kHeterogeneousEquivalent: {
        // The class machinery must be an exact no-op when it has nothing
        // to express: one class covering the whole fleet, no overrides.
        const std::string homogeneous = run_fingerprint(fc.config);
        core::PrecinctConfig wrapped = fc.config;
        core::NodeClassConfig all;
        all.name = "all";
        all.count = fc.config.n_nodes;
        wrapped.node_classes = {all};
        const std::string single_class = run_fingerprint(wrapped);
        if (homogeneous != single_class) {
          return {false, diff_detail("single-class fleet diverged from the "
                                     "homogeneous config",
                                     homogeneous, single_class)};
        }
        if (fc.config.mobile && fc.config.mobility_model != "static") {
          // Pinning the class speed to the scenario's v_max must also be
          // a no-op: the override resolves to the same speed band.
          all.speed = fc.config.v_max;
          wrapped.node_classes = {all};
          const std::string pinned = run_fingerprint(wrapped);
          if (homogeneous != pinned) {
            return {false,
                    diff_detail("class speed pinned to v_max diverged from "
                                "the homogeneous config",
                                homogeneous, pinned)};
          }
        }
        return {};
      }
    }
    return {false, "unknown property"};
  } catch (const InvariantViolation& e) {
    return {false, std::string("invariant violation: ") + e.what()};
  } catch (const std::exception& e) {
    return {false, std::string("exception: ") + e.what()};
  }
}

std::string write_repro(const FuzzCase& fc, const std::string& dir,
                        const std::string& reason) {
  std::filesystem::create_directories(dir);
  const std::string path =
      dir + "/fuzz_" + std::to_string(fc.case_seed) + ".conf";
  std::string text = "# scenario-fuzz repro (property '" +
                     std::string(to_string(fc.property)) + "', case seed " +
                     std::to_string(fc.case_seed) + ")\n";
  // Prefix every reason line so multi-line diffs stay comments.
  std::size_t pos = 0;
  while (pos <= reason.size() && !reason.empty()) {
    const std::size_t end = std::min(reason.find('\n', pos), reason.size());
    text += "# " + reason.substr(pos, end - pos) + "\n";
    if (end >= reason.size()) break;
    pos = end + 1;
  }
  text += "# replay: precinct_sim --config " + path + "\n";
  text += core::config_to_string(fc.config);

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("scenario fuzz: cannot open '" + path +
                             "' for writing");
  }
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != text.size() || !closed) {
    throw std::runtime_error("scenario fuzz: short write to '" + path + "'");
  }
  return path;
}

FuzzVerdict replay_packet_hex(const std::string& hex) {
  namespace tw = transport;
  try {
    const std::vector<std::uint8_t> bytes = tw::from_hex(hex);
    net::Packet p;
    tw::WireReader r(bytes.data(), bytes.size());
    if (!tw::decode_packet(r, p)) {
      return {false, "decode_packet rejected the buffer"};
    }
    if (r.remaining() != 0) {
      return {false, "decode_packet left " + std::to_string(r.remaining()) +
                         " trailing bytes unread"};
    }
    tw::WireWriter w;
    tw::encode_packet(p, w);
    if (w.data() != bytes) {
      return {false, std::string("re-encode is not byte-identical\n") +
                         "--- input\n" + hex + "\n--- re-encoded\n" +
                         tw::to_hex(w.data())};
    }
    return {true, std::string("decoded a ") + net::to_string(p.kind) +
                      " packet; re-encode is byte-identical"};
  } catch (const std::exception& e) {
    return {false, std::string("exception: ") + e.what()};
  }
}

}  // namespace precinct::check
