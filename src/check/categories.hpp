// Invariant categories (DESIGN.md §10): which layers the runtime checker
// audits.  Selected via the `check=` config key ("all" or a comma list);
// parse_categories is also what validate() uses to reject bad knobs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace precinct::check {

/// One audited layer.  Values index the name table and the mask bits.
enum class Category : std::uint8_t {
  kNet = 0,      ///< packet-pool conservation, radio counters
  kCache,        ///< occupancy <= capacity, byte accounting, admission (§3)
  kCustody,      ///< home-copy uniqueness across merges/crashes (§2.3, §2.4)
  kPending,      ///< request lifecycle + retry budgets
  kConsistency,  ///< TTR positivity and Eq. 2 bounds, push retries (§4)
  kEnergy,       ///< monotone non-negative energy incl. channel discard
};

inline constexpr std::size_t kCategoryCount = 6;

/// Bitmask over Category (bit i = category i enabled).
using CategoryMask = std::uint8_t;

inline constexpr CategoryMask kNoCategories = 0;
inline constexpr CategoryMask kAllCategories =
    static_cast<CategoryMask>((1u << kCategoryCount) - 1u);

[[nodiscard]] constexpr CategoryMask mask_of(Category c) noexcept {
  return static_cast<CategoryMask>(1u << static_cast<unsigned>(c));
}

[[nodiscard]] constexpr bool has(CategoryMask mask, Category c) noexcept {
  return (mask & mask_of(c)) != 0;
}

/// Stable lower-case name ("net", "cache", ...) used in config keys and
/// violation messages.
[[nodiscard]] const char* category_name(Category c) noexcept;

/// Parse a `check=` value: "" -> no categories, "all" -> every category,
/// otherwise a comma-separated subset of the category names.  Throws
/// std::invalid_argument naming the offending token and the valid names.
[[nodiscard]] CategoryMask parse_categories(const std::string& spec);

}  // namespace precinct::check
