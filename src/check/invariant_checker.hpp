// InvariantChecker — the runtime correctness harness (DESIGN.md §10).
//
// Installed by the engine when config.check selects categories, it hangs
// off the simulator's post-event hook and, every `check_stride` events,
// audits conservation and protocol invariants across the stack: packet
// pool (net), cache byte accounting (§3), custody uniqueness (§2.3,
// §2.4), request lifecycle/retry budgets, TTR bounds (Eq. 2) and energy
// monotonicity.  The checker is strictly observe-only: it reads state
// through const seams, schedules nothing and mutates nothing, so a run
// with checks on produces byte-identical metrics to the same run with
// checks off.  The first violated rule throws InvariantViolation.
//
// Cost model: global checks (net, pending, consistency, energy) run on
// every stride boundary; the O(total cached entries) scans rotate — each
// boundary audits a quarter of the peers' caches and one region's
// custody set, so a full sweep completes every max(4, region count)
// boundaries and steady-state overhead stays within ~2x of an unchecked
// run.  finalize() runs one unconditionally full audit as a backstop.
#pragma once

#include <cstdint>
#include <vector>

#include "check/categories.hpp"
#include "check/invariant_violation.hpp"
#include "core/engine_context.hpp"

namespace precinct::check {

class InvariantChecker {
 public:
  /// Audits `ctx` for the categories in `mask` every `stride` events
  /// (stride >= 1; 1 = every event).
  InvariantChecker(const core::EngineContext& ctx, CategoryMask mask,
                   std::uint64_t stride);

  InvariantChecker(const InvariantChecker&) = delete;
  InvariantChecker& operator=(const InvariantChecker&) = delete;

  /// Post-event hook body: counts the event and, on stride boundaries,
  /// runs the global checks plus the next rotating cache/custody slice.
  /// Throws InvariantViolation on the first broken rule.
  void on_event();

  /// Run every enabled audit over ALL peers and regions now (the engine
  /// calls this once more from finalize() so short runs are audited at
  /// least once and rotation gaps are closed before results are read).
  void audit();

  [[nodiscard]] CategoryMask categories() const noexcept { return mask_; }
  [[nodiscard]] std::uint64_t stride() const noexcept { return stride_; }
  /// Full audit passes completed (diagnostics for tests and the fuzzer).
  [[nodiscard]] std::uint64_t audits_run() const noexcept { return audits_; }

 private:
  /// Stride-boundary body: global checks + one rotating slice of the
  /// per-peer cache scans and one region's custody set.
  void audit_slice();

  void audit_net();
  void audit_cache_node(net::NodeId node);
  void audit_custody();
  void audit_custody_region(geo::RegionId region);
  void check_holder_duplicates();
  void audit_pending();
  void audit_consistency();
  void audit_energy();

  [[noreturn]] void fail(Category category, net::NodeId node,
                         std::string detail) const;

  const core::EngineContext& ctx_;
  CategoryMask mask_;
  std::uint64_t stride_;
  std::uint64_t events_ = 0;
  std::uint64_t audits_ = 0;

  // Scratch + monotonicity snapshots (capacity reused across audits).
  struct CustodyHolder {
    geo::Key key;
    geo::RegionId region;
    net::NodeId node;
  };
  std::vector<CustodyHolder> holders_;
  std::size_t cache_cursor_ = 0;    ///< next peer for the rotating cache scan
  std::size_t custody_cursor_ = 0;  ///< next region for the custody scan
  double last_energy_total_mj_ = 0.0;
  std::uint64_t last_total_sends_ = 0;
  std::uint64_t last_total_bytes_ = 0;
};

}  // namespace precinct::check
