// InvariantViolation — the structured failure the runtime checker throws.
//
// Carries everything a repro needs: the violated category, the event
// index at which the audit fired (deterministic runs replay to the same
// index), the offending node (kNoNode for network-wide rules) and a
// human-readable detail line.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "check/categories.hpp"
#include "net/packet.hpp"

namespace precinct::check {

class InvariantViolation : public std::runtime_error {
 public:
  InvariantViolation(Category category, std::uint64_t event_index,
                     net::NodeId node, std::string detail)
      : std::runtime_error(format(category, event_index, node, detail)),
        category_(category),
        event_index_(event_index),
        node_(node),
        detail_(std::move(detail)) {}

  [[nodiscard]] Category category() const noexcept { return category_; }
  /// Simulator events executed when the audit fired (replayable under a
  /// fixed seed).
  [[nodiscard]] std::uint64_t event_index() const noexcept {
    return event_index_;
  }
  /// Offending node, or net::kNoNode for network-wide invariants.
  [[nodiscard]] net::NodeId node() const noexcept { return node_; }
  [[nodiscard]] const std::string& detail() const noexcept { return detail_; }

 private:
  static std::string format(Category category, std::uint64_t event_index,
                            net::NodeId node, const std::string& detail) {
    std::string msg = "invariant violation [";
    msg += category_name(category);
    msg += "] at event ";
    msg += std::to_string(event_index);
    if (node != net::kNoNode) {
      msg += " node ";
      msg += std::to_string(node);
    }
    msg += ": ";
    msg += detail;
    return msg;
  }

  Category category_;
  std::uint64_t event_index_;
  net::NodeId node_;
  std::string detail_;
};

}  // namespace precinct::check
