// Property-based scenario fuzzing (DESIGN.md §10).
//
// A seeded generator draws random-but-valid PrecinctConfigs (every draw
// is filtered through PrecinctConfig::validate(); rejected combinations
// are redrawn), runs short simulations with the invariant checker on,
// and asserts one metamorphic property per case:
//
//   * replay-identical     — the same seed reruns to a byte-identical
//                            metrics fingerprint (determinism, DESIGN.md §7);
//   * null-fault-identical — a lossy channel model configured to drop
//                            nothing (bernoulli loss 0, scripted with no
//                            windows, gilbert-elliott with zero loss) is
//                            byte-identical to the perfect channel;
//   * no-retry-no-resend   — with request_retries = 0 and push_retries = 0
//                            no frame is ever retransmitted (the paper's
//                            fire-and-escalate timing path), and the run
//                            still replays byte-identically;
//   * shard-invariant      — a sharded tile world (ShardedScenario with
//                            gateway traffic) produces a byte-identical
//                            sharded fingerprint for shards = K and
//                            shards = 1 (the conservative parallel
//                            executor's determinism contract, DESIGN.md
//                            §11);
//   * world-shard-invariant — ONE world cut into region-column domains
//                            (WorldShardedScenario, boundary-heavy
//                            mobility so nodes keep straddling the cut)
//                            produces a byte-identical world fingerprint
//                            for shards = K and shards = 1 (DESIGN.md
//                            §13), conservation audit included;
//   * wire-codec           — encode -> decode -> encode is a byte-level
//                            fixed point for random packets of every
//                            PacketKind (hostile doubles included), every
//                            strict truncation and any wrong-version or
//                            corrupt-magic envelope is rejected without
//                            crashing (the transport codec contract,
//                            DESIGN.md §14);
//   * hetero-equivalent    — wrapping the whole fleet in a single node
//                            class with no attribute overrides (and, when
//                            mobile, with speed pinned to the scenario's
//                            v_max) is byte-identical to the homogeneous
//                            config: the heterogeneous-fleet machinery
//                            (ClassMix routing, per-class cache sizing,
//                            custody tiering) must be an exact no-op when
//                            it has nothing to express (DESIGN.md §15).
//
// A failed case serializes a minimal repro config (config_to_file schema,
// seed included) so `precinct_sim --config <file>` replays it one-command;
// wire-codec failures additionally dump the offending datagram as hex,
// replayable with `precinct_fuzz --packet-hex <hex>`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/config.hpp"

namespace precinct::check {

/// The metamorphic property a fuzz case asserts.
enum class Property : std::uint8_t {
  kReplayIdentical = 0,
  kNullFaultIdentical,
  kNoRetryNoResend,
  kShardInvariant,
  kWorldShardInvariant,
  kWireCodec,
  kHeterogeneousEquivalent,
};

inline constexpr std::size_t kPropertyCount = 7;

[[nodiscard]] const char* to_string(Property p) noexcept;

/// One generated scenario: a validated config (check = "all" baked in,
/// plus any property-specific constraints, e.g. zeroed retry budgets for
/// kNoRetryNoResend) and the property it must satisfy.
struct FuzzCase {
  core::PrecinctConfig config;
  Property property = Property::kReplayIdentical;
  std::uint64_t case_seed = 0;
  int draws_rejected = 0;  ///< validate() rejections before this config
};

/// Outcome of one case; `detail` names what diverged when !ok.
struct FuzzVerdict {
  bool ok = true;
  std::string detail;
};

/// Deterministically draw the scenario for `case_seed` (same seed, same
/// case — the repro contract).  The property rotates with the seed so a
/// batch covers all three.
[[nodiscard]] FuzzCase draw_scenario(std::uint64_t case_seed);

/// Run `fc` (invariant checks on) and judge its property.  Invariant
/// violations and any other exception surface as a failed verdict, never
/// as a throw.
[[nodiscard]] FuzzVerdict run_fuzz_case(const FuzzCase& fc);

/// Serialize the case to `<dir>/fuzz_<case_seed>.conf` (directory created
/// if missing): a commented failure header plus the full config in the
/// reader's schema.  Returns the path written.
std::string write_repro(const FuzzCase& fc, const std::string& dir,
                        const std::string& reason);

/// Replay one hex-dumped datagram body from a wire-codec fuzz failure:
/// decode it, re-encode, and judge the byte-level fixed point.  Used by
/// `precinct_fuzz --packet-hex <hex>`.
[[nodiscard]] FuzzVerdict replay_packet_hex(const std::string& hex);

}  // namespace precinct::check
