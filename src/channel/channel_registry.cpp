#include "channel/channel_registry.hpp"

#include <stdexcept>

#include "channel/channel_models.hpp"

namespace precinct::channel {

namespace {

std::string known_names(const std::map<std::string, ChannelRegistry::Factory>&
                            models) {
  std::string names;
  for (const auto& [name, factory] : models) {
    if (!names.empty()) names += ", ";
    names += name;
  }
  return names;
}

}  // namespace

ChannelRegistry& ChannelRegistry::instance() {
  static ChannelRegistry registry;
  return registry;
}

ChannelRegistry::ChannelRegistry() {
  models_.emplace("perfect", [](const ChannelConfig&) {
    return std::make_unique<PerfectChannel>();
  });
  models_.emplace("bernoulli", [](const ChannelConfig& config) {
    return std::make_unique<BernoulliLoss>(config);
  });
  models_.emplace("distance", [](const ChannelConfig& config) {
    return std::make_unique<DistanceLoss>(config);
  });
  models_.emplace("gilbert-elliott", [](const ChannelConfig& config) {
    return std::make_unique<GilbertElliott>(config);
  });
  models_.emplace("scripted", [](const ChannelConfig& config) {
    return std::make_unique<ScriptedFaults>(config);
  });
}

void ChannelRegistry::register_model(const std::string& name,
                                     Factory factory) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!models_.emplace(name, std::move(factory)).second) {
    throw std::logic_error("ChannelRegistry: channel model \"" + name +
                           "\" is already registered");
  }
}

std::unique_ptr<ChannelModel> ChannelRegistry::make(
    const ChannelConfig& config) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = models_.find(config.model);
  if (it == models_.end()) {
    throw std::invalid_argument("unknown channel model \"" + config.model +
                                "\" (registered: " + known_names(models_) +
                                ")");
  }
  return it->second(config);
}

bool ChannelRegistry::has(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return models_.count(name) != 0;
}

std::vector<std::string> ChannelRegistry::names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(models_.size());
  for (const auto& [name, factory] : models_) names.push_back(name);
  return names;
}

}  // namespace precinct::channel
