// The built-in channel models.  Each is constructible directly (tests
// drive filter() against synthetic links) or by name through the
// ChannelRegistry.
#pragma once

#include <unordered_map>

#include "channel/channel_model.hpp"

namespace precinct::channel {

/// Every frame is delivered; no RNG draw.  The default — the radio's
/// fast path depends on lossless() being true here.
class PerfectChannel final : public ChannelModel {
 public:
  [[nodiscard]] const char* name() const noexcept override {
    return "perfect";
  }
  [[nodiscard]] std::optional<DropCause> filter(const Link&,
                                                support::Rng&) override {
    return std::nullopt;
  }
  [[nodiscard]] bool lossless() const noexcept override { return true; }
};

/// I.i.d. per-frame loss with probability loss_p.  Draws exactly one
/// uniform per delivery even at loss_p == 0, which makes `bernoulli
/// loss=0` a direct test of RNG-stream isolation: its metrics must equal
/// the perfect channel's.
class BernoulliLoss final : public ChannelModel {
 public:
  explicit BernoulliLoss(const ChannelConfig& config) noexcept
      : loss_p_(config.loss_p) {}
  [[nodiscard]] const char* name() const noexcept override {
    return "bernoulli";
  }
  [[nodiscard]] std::optional<DropCause> filter(const Link& link,
                                                support::Rng& rng) override;

 private:
  double loss_p_;
};

/// Distance-dependent fading: certain delivery inside
/// edge_start_fraction * range, then a linear drop-probability ramp up to
/// edge_loss_p at the range edge.  Draws from the RNG only inside the
/// ramp zone.
class DistanceLoss final : public ChannelModel {
 public:
  explicit DistanceLoss(const ChannelConfig& config) noexcept
      : edge_start_fraction_(config.edge_start_fraction),
        edge_loss_p_(config.edge_loss_p) {}
  [[nodiscard]] const char* name() const noexcept override {
    return "distance";
  }
  [[nodiscard]] std::optional<DropCause> filter(const Link& link,
                                                support::Rng& rng) override;

 private:
  double edge_start_fraction_;
  double edge_loss_p_;
};

/// Gilbert–Elliott bursty loss, tracked per directed link.  Each frame
/// first resolves loss in the link's current state, then draws the state
/// transition (two uniforms per frame, always, so the draw count does not
/// depend on outcomes).  Steady-state loss rate is
///   pi_bad * ge_loss_bad + (1 - pi_bad) * ge_loss_good,
/// with pi_bad = p / (p + r), p = ge_enter_burst_p and
/// r = 1 / ge_mean_burst_frames (the burst-exit probability).
class GilbertElliott final : public ChannelModel {
 public:
  explicit GilbertElliott(const ChannelConfig& config) noexcept;
  [[nodiscard]] const char* name() const noexcept override {
    return "gilbert-elliott";
  }
  [[nodiscard]] std::optional<DropCause> filter(const Link& link,
                                                support::Rng& rng) override;

  /// Closed-form steady-state loss rate for this parameterization.
  [[nodiscard]] double steady_state_loss() const noexcept;

 private:
  double enter_burst_p_;
  double exit_burst_p_;
  double loss_good_;
  double loss_bad_;
  /// Directed-link burst state, keyed (sender << 32) | receiver; links
  /// start in the good state.
  std::unordered_map<std::uint64_t, bool> bad_;
};

/// Deterministic fault windows: per-node blackouts and region partitions.
/// Uses no randomness, so reruns with any seed reproduce identically.
class ScriptedFaults final : public ChannelModel {
 public:
  explicit ScriptedFaults(const ChannelConfig& config)
      : blackouts_(config.blackouts), partitions_(config.partitions) {}
  [[nodiscard]] const char* name() const noexcept override {
    return "scripted";
  }
  [[nodiscard]] std::optional<DropCause> filter(const Link& link,
                                                support::Rng& rng) override;

 private:
  std::vector<Blackout> blackouts_;
  std::vector<Partition> partitions_;
};

}  // namespace precinct::channel
