// ChannelModel — the radio's loss/fault-injection seam.
//
// The wireless substrate delivers every frame perfectly; real 802.11
// traffic (the paper's ns-2 evaluation) collides, fades near the range
// edge and suffers bursty per-link fading.  A ChannelModel is consulted
// once per would-be delivery — every unicast target and every broadcast
// receiver — and either lets the frame through or names a DropCause.
//
// Determinism rules (DESIGN.md §9):
//   * Models draw only from the dedicated channel RNG stream the radio
//     passes in, so a lossless configuration never perturbs the seeds of
//     any other consumer.
//   * PerfectChannel (the default) reports lossless() == true and the
//     radio skips the per-receiver consultation entirely: the default
//     delivery path stays byte-identical and allocation-free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "geo/geometry.hpp"
#include "support/rng.hpp"

namespace precinct::channel {

/// Why a frame was dropped (indexes the per-cause drop counters).
enum class DropCause : std::uint8_t {
  kRandom = 0,    ///< Bernoulli coin flip (collision/noise proxy)
  kDistance = 1,  ///< signal fade near the radio-range edge
  kBurst = 2,     ///< Gilbert–Elliott bad-state burst
  kScripted = 3,  ///< scripted blackout or partition window
};
inline constexpr std::size_t kDropCauseCount = 4;

[[nodiscard]] const char* to_string(DropCause cause) noexcept;

/// One prospective frame delivery, as the radio sees it.
struct Link {
  std::uint32_t sender = 0;
  std::uint32_t receiver = 0;
  geo::Point sender_pos;
  geo::Point receiver_pos;
  double range_m = 0.0;  ///< the radio's unit-disk range
  double now_s = 0.0;    ///< simulation time of the delivery
};

/// Per-node outage window: frames to or from `node` are dropped while
/// start_s <= now < end_s.
struct Blackout {
  std::uint32_t node = 0;
  double start_s = 0.0;
  double end_s = 0.0;
};

/// Region partition window: frames crossing between rectangles `a` and
/// `b` (either direction) are dropped while the window is active.
struct Partition {
  geo::Rect a;
  geo::Rect b;
  double start_s = 0.0;
  double end_s = 0.0;
};

/// Knobs for every built-in model; the registry reads `model` to pick
/// the implementation and each implementation reads only its own fields.
struct ChannelConfig {
  std::string model = "perfect";

  // bernoulli: i.i.d. per-frame loss.
  double loss_p = 0.0;

  // distance: delivery is certain below edge_start_fraction * range and
  // the drop probability ramps linearly to edge_loss_p at the range edge.
  double edge_start_fraction = 0.7;
  double edge_loss_p = 0.8;

  // gilbert-elliott: two-state per-link burst model.  A link in the good
  // state enters a burst with probability ge_enter_burst_p per frame;
  // bursts last ge_mean_burst_frames frames on average.  Loss
  // probabilities per state are ge_loss_good / ge_loss_bad.
  double ge_enter_burst_p = 0.02;
  double ge_mean_burst_frames = 5.0;
  double ge_loss_good = 0.0;
  double ge_loss_bad = 1.0;

  // scripted: deterministic fault windows (no RNG at all).
  std::vector<Blackout> blackouts;
  std::vector<Partition> partitions;
};

class ChannelModel {
 public:
  virtual ~ChannelModel() = default;

  /// Registry name ("perfect", "bernoulli", ...).
  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// Decide one delivery: nullopt lets the frame through, a DropCause
  /// drops it.  `rng` is the radio's dedicated channel stream.
  [[nodiscard]] virtual std::optional<DropCause> filter(
      const Link& link, support::Rng& rng) = 0;

  /// True when filter() never drops (and never draws from `rng`).  The
  /// radio skips the per-receiver consultation for lossless models,
  /// keeping the default delivery path byte-identical.
  [[nodiscard]] virtual bool lossless() const noexcept { return false; }
};

}  // namespace precinct::channel
