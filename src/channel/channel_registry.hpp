// ChannelRegistry — config-driven construction of channel models,
// mirroring core::SchemeRegistry: models register by name, configs select
// them with `channel=` keys, and validation checks names here.
//
// The singleton is mutex-guarded: Scenario::run_seeds constructs radios
// (and therefore channel models) concurrently from worker threads.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "channel/channel_model.hpp"

namespace precinct::channel {

class ChannelRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<ChannelModel>(const ChannelConfig&)>;

  /// The process-wide registry, with the built-in models registered.
  [[nodiscard]] static ChannelRegistry& instance();

  /// Register a model under `name`.  Throws std::logic_error if the name
  /// is already taken (names identify models in configs; silent
  /// replacement would repoint existing configs).
  void register_model(const std::string& name, Factory factory);

  /// Construct the model `config.model` names.  Throws
  /// std::invalid_argument naming the unknown model and listing what is
  /// registered.
  [[nodiscard]] std::unique_ptr<ChannelModel> make(
      const ChannelConfig& config) const;

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  ChannelRegistry();  // registers the built-ins

  mutable std::mutex mutex_;
  std::map<std::string, Factory> models_;
};

}  // namespace precinct::channel
