#include "channel/channel_models.hpp"

#include <algorithm>

namespace precinct::channel {

const char* to_string(DropCause cause) noexcept {
  switch (cause) {
    case DropCause::kRandom: return "random";
    case DropCause::kDistance: return "distance";
    case DropCause::kBurst: return "burst";
    case DropCause::kScripted: return "scripted";
  }
  return "unknown";
}

std::optional<DropCause> BernoulliLoss::filter(const Link&,
                                               support::Rng& rng) {
  // Draw unconditionally: the stream advances the same way at loss_p == 0
  // as at any other setting, so the draw count is configuration-invariant.
  if (rng.uniform() < loss_p_) return DropCause::kRandom;
  return std::nullopt;
}

std::optional<DropCause> DistanceLoss::filter(const Link& link,
                                              support::Rng& rng) {
  const double d = geo::distance(link.sender_pos, link.receiver_pos);
  const double ramp_start = edge_start_fraction_ * link.range_m;
  if (d <= ramp_start) return std::nullopt;
  const double span = link.range_m - ramp_start;
  const double ramp =
      span > 0.0 ? std::min(1.0, (d - ramp_start) / span) : 1.0;
  if (rng.uniform() < ramp * edge_loss_p_) return DropCause::kDistance;
  return std::nullopt;
}

GilbertElliott::GilbertElliott(const ChannelConfig& config) noexcept
    : enter_burst_p_(config.ge_enter_burst_p),
      exit_burst_p_(1.0 / std::max(1.0, config.ge_mean_burst_frames)),
      loss_good_(config.ge_loss_good),
      loss_bad_(config.ge_loss_bad) {}

std::optional<DropCause> GilbertElliott::filter(const Link& link,
                                                support::Rng& rng) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(link.sender) << 32) | link.receiver;
  bool& bad = bad_[key];
  // Loss in the current state first, then the dwell transition — always
  // two uniforms per frame so outcomes never skew the stream.
  const bool drop = rng.uniform() < (bad ? loss_bad_ : loss_good_);
  const double transition = rng.uniform();
  if (bad) {
    if (transition < exit_burst_p_) bad = false;
  } else {
    if (transition < enter_burst_p_) bad = true;
  }
  if (drop) return DropCause::kBurst;
  return std::nullopt;
}

double GilbertElliott::steady_state_loss() const noexcept {
  const double denom = enter_burst_p_ + exit_burst_p_;
  const double pi_bad = denom > 0.0 ? enter_burst_p_ / denom : 0.0;
  return pi_bad * loss_bad_ + (1.0 - pi_bad) * loss_good_;
}

std::optional<DropCause> ScriptedFaults::filter(const Link& link,
                                                support::Rng&) {
  const auto active = [&](double start_s, double end_s) {
    return link.now_s >= start_s && link.now_s < end_s;
  };
  for (const Blackout& b : blackouts_) {
    if ((b.node == link.sender || b.node == link.receiver) &&
        active(b.start_s, b.end_s)) {
      return DropCause::kScripted;
    }
  }
  for (const Partition& p : partitions_) {
    if (!active(p.start_s, p.end_s)) continue;
    const bool a_to_b =
        p.a.contains(link.sender_pos) && p.b.contains(link.receiver_pos);
    const bool b_to_a =
        p.b.contains(link.sender_pos) && p.a.contains(link.receiver_pos);
    if (a_to_b || b_to_a) return DropCause::kScripted;
  }
  return std::nullopt;
}

}  // namespace precinct::channel
