#include "workload/zipf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace precinct::workload {

ZipfGenerator::ZipfGenerator(std::size_t n, double theta) : theta_(theta) {
  if (n == 0) throw std::invalid_argument("ZipfGenerator: n must be > 0");
  if (theta < 0.0) throw std::invalid_argument("ZipfGenerator: theta < 0");
  cdf_.resize(n);
  reset_theta(theta);
}

void ZipfGenerator::reset_theta(double theta) {
  if (theta < 0.0) throw std::invalid_argument("ZipfGenerator: theta < 0");
  theta_ = theta;
  double acc = 0.0;
  for (std::size_t i = 0; i < cdf_.size(); ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = acc;
  }
  for (auto& c : cdf_) c /= acc;
  cdf_.back() = 1.0;  // guard against rounding at the tail
}

std::size_t ZipfGenerator::sample(support::Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfGenerator::pmf(std::size_t i) const {
  if (i >= cdf_.size()) throw std::out_of_range("ZipfGenerator::pmf");
  return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

}  // namespace precinct::workload
