#include "workload/workload_script.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace precinct::workload {

std::vector<ScriptEvent> parse_script(const std::string& text) {
  std::vector<ScriptEvent> events;
  std::istringstream lines(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    double t = 0.0;
    std::string op;
    if (!(fields >> t)) {
      std::string rest;
      if (fields.clear(), !(fields >> rest)) continue;  // blank/comment
      throw std::invalid_argument("workload script line " +
                                  std::to_string(line_no) +
                                  ": expected a time, got '" + rest + "'");
    }
    ScriptEvent ev;
    ev.t_s = t;
    std::uint32_t node = 0;
    std::uint64_t rank = 0;
    if (!(fields >> op >> node >> rank)) {
      throw std::invalid_argument(
          "workload script line " + std::to_string(line_no) +
          ": expected `<t> request|update <node> <rank>`");
    }
    std::string junk;
    if (fields >> junk) {
      throw std::invalid_argument("workload script line " +
                                  std::to_string(line_no) +
                                  ": trailing junk '" + junk + "'");
    }
    if (!(t >= 0.0)) {
      throw std::invalid_argument("workload script line " +
                                  std::to_string(line_no) +
                                  ": time must be >= 0");
    }
    if (op == "request") {
      ev.op = ScriptEvent::Op::kRequest;
    } else if (op == "update") {
      ev.op = ScriptEvent::Op::kUpdate;
    } else {
      throw std::invalid_argument("workload script line " +
                                  std::to_string(line_no) + ": unknown op '" +
                                  op + "' (want request|update)");
    }
    ev.node = node;
    ev.rank = rank;
    events.push_back(ev);
  }
  return events;
}

std::vector<ScriptEvent> load_script(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("workload script: cannot read '" + path + "'");
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse_script(text.str());
}

}  // namespace precinct::workload
