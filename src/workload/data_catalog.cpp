#include "workload/data_catalog.hpp"

#include <stdexcept>

namespace precinct::workload {

namespace {
// Keys are a bijective hash of the rank: decorrelates popularity rank from
// geographic placement (the geo hash of sequential ints would already be
// uniform, but benches also treat keys as opaque ids).
geo::Key key_for_rank(std::size_t rank) {
  return support::hash64(0x5eedf00dULL + rank);
}
}  // namespace

DataCatalog::DataCatalog(const DataCatalogConfig& config, std::uint64_t seed) {
  if (config.n_items == 0) {
    throw std::invalid_argument("DataCatalog: n_items must be > 0");
  }
  if (config.min_item_bytes == 0 ||
      config.max_item_bytes < config.min_item_bytes) {
    throw std::invalid_argument("DataCatalog: bad item size range");
  }
  support::Rng rng(seed);
  items_.reserve(config.n_items);
  for (std::size_t i = 0; i < config.n_items; ++i) {
    DataItem item;
    item.key = key_for_rank(i);
    item.size_bytes =
        config.min_item_bytes +
        rng.uniform_int(config.max_item_bytes - config.min_item_bytes + 1);
    items_.push_back(item);
    rank_index_.emplace(item.key, i);
    total_bytes_ += item.size_bytes;
  }
}

std::size_t DataCatalog::rank_of(geo::Key key) const {
  const auto it = rank_index_.find(key);
  if (it == rank_index_.end()) {
    throw std::out_of_range("DataCatalog::rank_of: unknown key");
  }
  return it->second;
}

std::uint64_t DataCatalog::apply_update(geo::Key key, double now_s) {
  DataItem& item = items_.at(rank_of(key));
  ++item.version;
  item.last_update_s = now_s;
  return item.version;
}

void DataCatalog::observe_update(geo::Key key, std::uint64_t version,
                                 double written_s) {
  DataItem& item = items_.at(rank_of(key));
  if (version > item.version) {
    item.version = version;
    item.last_update_s = written_s;
  }
}

}  // namespace precinct::workload
