// The database of data items shared by the MP2P network.
//
// The catalog is the simulation's ground truth: every item's size, its
// authoritative (latest) version and when that version was written.
// Peers hold (key, version) pairs; serving a version older than the
// authoritative one as "valid" is a false hit (paper Fig 7's metric).
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geo/geo_hash.hpp"
#include "support/rng.hpp"

namespace precinct::workload {

struct DataItem {
  geo::Key key = 0;
  std::size_t size_bytes = 0;
  std::uint64_t version = 0;      ///< authoritative latest version
  double last_update_s = 0.0;     ///< when the latest version was written
};

struct DataCatalogConfig {
  std::size_t n_items = 1000;
  std::size_t min_item_bytes = 1024;    ///< 1 KiB
  std::size_t max_item_bytes = 10240;   ///< 10 KiB
};

class DataCatalog {
 public:
  DataCatalog(const DataCatalogConfig& config, std::uint64_t seed);

  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }

  /// Key of the item at popularity rank `rank` (rank 0 = most popular).
  /// Keys are hashed from ranks so hashed locations spread uniformly.
  [[nodiscard]] geo::Key key_of(std::size_t rank) const {
    return items_.at(rank).key;
  }
  /// Inverse of key_of; items are addressable both ways.
  [[nodiscard]] std::size_t rank_of(geo::Key key) const;

  [[nodiscard]] const DataItem& item(geo::Key key) const {
    return items_.at(rank_of(key));
  }
  /// Non-throwing lookup: nullptr when the key is not in the catalog
  /// (the invariant checker treats an unknown cached key as a bug, not
  /// an exception path).
  [[nodiscard]] const DataItem* find(geo::Key key) const {
    const auto it = rank_index_.find(key);
    return it == rank_index_.end() ? nullptr : &items_[it->second];
  }
  [[nodiscard]] const DataItem& item_at(std::size_t rank) const {
    return items_.at(rank);
  }

  /// Total bytes across the catalog ("database size"; cache capacities in
  /// the paper's Fig 4/5 are percentages of this).
  [[nodiscard]] std::size_t total_bytes() const noexcept {
    return total_bytes_;
  }

  /// Record an update: bumps the authoritative version.  Returns the new
  /// version.
  std::uint64_t apply_update(geo::Key key, double now_s);

  /// Merge an update observed elsewhere (world sharding, DESIGN.md §13:
  /// each domain holds a catalog replica and halo deltas carry remote
  /// bumps).  Monotone: only moves the version forward, so concurrent
  /// same-window writes from different domains converge to the same
  /// authoritative version in every replica.
  void observe_update(geo::Key key, std::uint64_t version, double written_s);

  /// True when `version` is the latest for `key`.
  [[nodiscard]] bool is_current(geo::Key key, std::uint64_t version) const {
    return item(key).version == version;
  }

 private:
  std::vector<DataItem> items_;  // indexed by popularity rank
  std::unordered_map<geo::Key, std::size_t> rank_index_;
  std::size_t total_bytes_ = 0;
};

}  // namespace precinct::workload
