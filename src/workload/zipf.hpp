// Zipf-distributed item popularity (paper §6.1: "Each peer generates
// accesses to data items following a Zipf distribution with a skewness
// parameter Θ").  P(rank i) ∝ 1 / i^Θ over ranks 1..n.
#pragma once

#include <cstddef>
#include <vector>

#include "support/rng.hpp"

namespace precinct::workload {

class ZipfGenerator {
 public:
  /// `n` ranks, skew `theta` >= 0 (0 = uniform).  Precomputes the CDF.
  ZipfGenerator(std::size_t n, double theta);

  /// Rebuild the CDF in place for a new skew (flash-crowd theta drift).
  /// Same-size, so holders of the generator keep their rank space.
  void reset_theta(double theta);

  /// Sample a rank in [0, n) — rank 0 is the most popular item.
  [[nodiscard]] std::size_t sample(support::Rng& rng) const;

  /// Probability mass of rank i.
  [[nodiscard]] double pmf(std::size_t i) const;

  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }
  [[nodiscard]] double theta() const noexcept { return theta_; }

 private:
  double theta_;
  std::vector<double> cdf_;  // inclusive cumulative probabilities
};

}  // namespace precinct::workload
