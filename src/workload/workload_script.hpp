// Deterministic scripted workload: an explicit event list layered on top
// of the Poisson generators.  The same script drives an in-sim run and a
// UDP fleet identically (each daemon's replica loads the same file and
// applies only its owned nodes' lines), which is what lets precinct_ctl
// exercise a fleet with a workload whose protocol decisions the DES can
// replay as an oracle.
//
// Format: one event per line, `#` comments and blank lines ignored:
//
//   <t_seconds> request <node> <rank>
//   <t_seconds> update  <node> <rank>
//
// `rank` is a catalog popularity rank, mapped to a key via
// DataCatalog::key_of(rank % size) at execution time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace precinct::workload {

struct ScriptEvent {
  enum class Op : std::uint8_t { kRequest = 0, kUpdate = 1 };

  double t_s = 0.0;
  Op op = Op::kRequest;
  std::uint32_t node = 0;
  std::uint64_t rank = 0;
};

/// Parse script text; throws std::invalid_argument naming the offending
/// line on malformed input (bad op, negative time, trailing junk).
[[nodiscard]] std::vector<ScriptEvent> parse_script(const std::string& text);

/// Read + parse a script file; throws std::runtime_error if unreadable.
[[nodiscard]] std::vector<ScriptEvent> load_script(const std::string& path);

}  // namespace precinct::workload
