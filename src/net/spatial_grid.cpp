#include "net/spatial_grid.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace precinct::net {

SpatialGrid::SpatialGrid(const geo::Rect& area, double cell_m)
    : area_(area), cell_m_(cell_m) {
  if (cell_m <= 0.0 || area.width() <= 0.0 || area.height() <= 0.0) {
    throw std::invalid_argument("SpatialGrid: bad area/cell size");
  }
  nx_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(area.width() / cell_m)));
  ny_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(area.height() / cell_m)));
  inv_cell_m_ = 1.0 / cell_m_;
  offsets_.assign(nx_ * ny_ + 1, 0);
  cursor_.assign(nx_ * ny_, 0);
}

// Binning multiplies by the precomputed reciprocal instead of dividing.
// The result can differ from true division by an ulp, which on an exact
// cell boundary may bin a point one cell over — harmless, because
// query() pads its cell range by one full cell, so candidates remain a
// superset of the true neighbors either way.
std::size_t SpatialGrid::cell_of(geo::Point p) const noexcept {
  const double fx = (p.x - area_.min.x) * inv_cell_m_;
  const double fy = (p.y - area_.min.y) * inv_cell_m_;
  const auto cx = static_cast<std::size_t>(
      std::clamp(fx, 0.0, static_cast<double>(nx_ - 1)));
  const auto cy = static_cast<std::size_t>(
      std::clamp(fy, 0.0, static_cast<double>(ny_ - 1)));
  return cy * nx_ + cx;
}

template <typename PointAt, typename IsAlive>
void SpatialGrid::rebuild_impl(std::size_t n, PointAt&& point_at,
                               IsAlive&& is_alive) {
  ++epoch_;
  const std::size_t n_cells = nx_ * ny_;
  std::fill(offsets_.begin(), offsets_.end(), 0u);

  // Scratch stays at its high-water size so the hot loop writes through
  // raw pointers with no capacity checks; only growth ever allocates.
  if (scratch_ids_.size() < n) {
    scratch_ids_.resize(n);
    scratch_cells_.resize(n);
  }
  std::uint32_t* const ids = scratch_ids_.data();
  std::uint32_t* const cells = scratch_cells_.data();

  // Pass 1: bin each live node once, counting per cell.  Ids and cell
  // ids are kept so placement never recomputes cell_of.
  std::size_t k = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!is_alive(i)) continue;
    const auto c = static_cast<std::uint32_t>(cell_of(point_at(i)));
    ids[k] = static_cast<std::uint32_t>(i);
    cells[k] = c;
    ++k;
    ++offsets_[c + 1];
  }
  count_ = k;

  // Pass 2: prefix-sum counts into cell start offsets.
  for (std::size_t c = 0; c < n_cells; ++c) offsets_[c + 1] += offsets_[c];

  // Pass 3: stable placement in ascending node id, so per-cell ordering
  // is identical to the old per-cell push_back layout.
  if (indices_.size() < count_) indices_.resize(n);
  std::copy(offsets_.begin(), offsets_.end() - 1, cursor_.begin());
  std::uint32_t* const out = indices_.data();
  std::uint32_t* const cur = cursor_.data();
  for (std::size_t j = 0; j < count_; ++j) {
    out[cur[cells[j]]++] = ids[j];
  }
}

void SpatialGrid::rebuild(const std::vector<geo::Point>& positions,
                          const std::vector<char>& alive) {
  rebuild_impl(
      positions.size(), [&](std::size_t i) { return positions[i]; },
      [&](std::size_t i) { return i >= alive.size() || alive[i]; });
}

void SpatialGrid::rebuild(const double* x, const double* y,
                          const std::uint8_t* alive, std::size_t n) {
  rebuild_impl(
      n, [&](std::size_t i) { return geo::Point{x[i], y[i]}; },
      [&](std::size_t i) { return alive == nullptr || alive[i]; });
}

void SpatialGrid::query(geo::Point center, double radius,
                        std::vector<std::uint32_t>& out) const {
  // Cells intersecting the disk, padded by one cell so entries binned at
  // a cell edge are never missed.
  const double reach = radius + cell_m_;
  const auto clamp_x = [this](double v) {
    return std::clamp(v, 0.0, static_cast<double>(nx_ - 1));
  };
  const auto clamp_y = [this](double v) {
    return std::clamp(v, 0.0, static_cast<double>(ny_ - 1));
  };
  const auto x0 = static_cast<std::size_t>(
      clamp_x((center.x - reach - area_.min.x) * inv_cell_m_));
  const auto x1 = static_cast<std::size_t>(
      clamp_x((center.x + reach - area_.min.x) * inv_cell_m_));
  const auto y0 = static_cast<std::size_t>(
      clamp_y((center.y - reach - area_.min.y) * inv_cell_m_));
  const auto y1 = static_cast<std::size_t>(
      clamp_y((center.y + reach - area_.min.y) * inv_cell_m_));
  for (std::size_t cy = y0; cy <= y1; ++cy) {
    const std::size_t row = cy * nx_;
    for (std::size_t cx = x0; cx <= x1; ++cx) {
      const std::size_t c = row + cx;
      out.insert(out.end(), indices_.begin() + offsets_[c],
                 indices_.begin() + offsets_[c + 1]);
    }
  }
}

}  // namespace precinct::net
