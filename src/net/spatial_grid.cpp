#include "net/spatial_grid.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace precinct::net {

SpatialGrid::SpatialGrid(const geo::Rect& area, double cell_m)
    : area_(area), cell_m_(cell_m) {
  if (cell_m <= 0.0 || area.width() <= 0.0 || area.height() <= 0.0) {
    throw std::invalid_argument("SpatialGrid: bad area/cell size");
  }
  nx_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(area.width() / cell_m)));
  ny_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(area.height() / cell_m)));
  cells_.resize(nx_ * ny_);
}

std::size_t SpatialGrid::cell_of(geo::Point p) const noexcept {
  const double fx = (p.x - area_.min.x) / cell_m_;
  const double fy = (p.y - area_.min.y) / cell_m_;
  const auto cx = static_cast<std::size_t>(
      std::clamp(fx, 0.0, static_cast<double>(nx_ - 1)));
  const auto cy = static_cast<std::size_t>(
      std::clamp(fy, 0.0, static_cast<double>(ny_ - 1)));
  return cy * nx_ + cx;
}

void SpatialGrid::rebuild(const std::vector<geo::Point>& positions,
                          const std::vector<char>& alive) {
  for (auto& cell : cells_) cell.clear();
  count_ = 0;
  ++epoch_;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (i < alive.size() && !alive[i]) continue;
    cells_[cell_of(positions[i])].push_back(static_cast<std::uint32_t>(i));
    ++count_;
  }
}

void SpatialGrid::query(geo::Point center, double radius,
                        std::vector<std::uint32_t>& out) const {
  // Cells intersecting the disk, padded by one cell so entries binned at
  // a cell edge are never missed.
  const double reach = radius + cell_m_;
  const auto clamp_x = [this](double v) {
    return std::clamp(v, 0.0, static_cast<double>(nx_ - 1));
  };
  const auto clamp_y = [this](double v) {
    return std::clamp(v, 0.0, static_cast<double>(ny_ - 1));
  };
  const auto x0 = static_cast<std::size_t>(
      clamp_x((center.x - reach - area_.min.x) / cell_m_));
  const auto x1 = static_cast<std::size_t>(
      clamp_x((center.x + reach - area_.min.x) / cell_m_));
  const auto y0 = static_cast<std::size_t>(
      clamp_y((center.y - reach - area_.min.y) / cell_m_));
  const auto y1 = static_cast<std::size_t>(
      clamp_y((center.y + reach - area_.min.y) / cell_m_));
  for (std::size_t cy = y0; cy <= y1; ++cy) {
    for (std::size_t cx = x0; cx <= x1; ++cx) {
      const auto& cell = cells_[cy * nx_ + cx];
      out.insert(out.end(), cell.begin(), cell.end());
    }
  }
}

}  // namespace precinct::net
