// Per-kind message counters: the paper's "control message overhead" metric
// (Fig 6) is the total number of messages generated to maintain
// consistency, so the substrate counts every transmission by kind.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "net/packet.hpp"

namespace precinct::net {

class MessageStats {
 public:
  void count_send(PacketKind kind, std::size_t bytes) noexcept;
  void count_delivery(PacketKind kind) noexcept;
  /// Transport-layer accounting: the *encoded* size of a frame under the
  /// wire codec (transport/wire_format), charged once per transmission
  /// and once per delivery.  `bytes_sent` above counts payload
  /// (size_bytes, the paper's traffic metric); these count what a UDP
  /// fleet would actually put on the wire, so sim and real-transport runs
  /// report traffic volume on the same basis.
  void count_wire_sent(PacketKind kind, std::size_t wire_bytes) noexcept;
  void count_wire_received(PacketKind kind, std::size_t wire_bytes) noexcept;
  /// A frame erased by the channel model in flight. Kept separate from
  /// routing losses (TTL expiry, GPSR voids) so lossy-channel sweeps can
  /// attribute missing deliveries to the channel and not the protocol.
  void count_channel_drop(PacketKind kind) noexcept;

  [[nodiscard]] std::uint64_t sends(PacketKind kind) const noexcept;
  [[nodiscard]] std::uint64_t deliveries(PacketKind kind) const noexcept;
  [[nodiscard]] std::uint64_t bytes_sent(PacketKind kind) const noexcept;
  [[nodiscard]] std::uint64_t channel_drops(PacketKind kind) const noexcept;
  [[nodiscard]] std::uint64_t wire_bytes_sent(PacketKind kind) const noexcept;
  [[nodiscard]] std::uint64_t wire_bytes_received(
      PacketKind kind) const noexcept;

  [[nodiscard]] std::uint64_t total_sends() const noexcept;
  [[nodiscard]] std::uint64_t total_bytes() const noexcept;
  [[nodiscard]] std::uint64_t total_channel_drops() const noexcept;
  [[nodiscard]] std::uint64_t total_wire_bytes_sent() const noexcept;
  [[nodiscard]] std::uint64_t total_wire_bytes_received() const noexcept;

  /// Messages attributable to consistency maintenance: pushes, push acks,
  /// polls, poll replies and invalidations (Fig 6's y-axis).
  [[nodiscard]] std::uint64_t consistency_sends() const noexcept;

 private:
  static constexpr std::size_t kKinds = 10;
  static std::size_t index(PacketKind kind) noexcept {
    return static_cast<std::size_t>(kind);
  }
  std::array<std::uint64_t, kKinds> sends_{};
  std::array<std::uint64_t, kKinds> deliveries_{};
  std::array<std::uint64_t, kKinds> bytes_{};
  std::array<std::uint64_t, kKinds> channel_drops_{};
  std::array<std::uint64_t, kKinds> wire_sent_{};
  std::array<std::uint64_t, kKinds> wire_received_{};
};

}  // namespace precinct::net
