// Per-kind message counters: the paper's "control message overhead" metric
// (Fig 6) is the total number of messages generated to maintain
// consistency, so the substrate counts every transmission by kind.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "net/packet.hpp"

namespace precinct::net {

class MessageStats {
 public:
  void count_send(PacketKind kind, std::size_t bytes) noexcept;
  void count_delivery(PacketKind kind) noexcept;
  /// A frame erased by the channel model in flight. Kept separate from
  /// routing losses (TTL expiry, GPSR voids) so lossy-channel sweeps can
  /// attribute missing deliveries to the channel and not the protocol.
  void count_channel_drop(PacketKind kind) noexcept;

  [[nodiscard]] std::uint64_t sends(PacketKind kind) const noexcept;
  [[nodiscard]] std::uint64_t deliveries(PacketKind kind) const noexcept;
  [[nodiscard]] std::uint64_t bytes_sent(PacketKind kind) const noexcept;
  [[nodiscard]] std::uint64_t channel_drops(PacketKind kind) const noexcept;

  [[nodiscard]] std::uint64_t total_sends() const noexcept;
  [[nodiscard]] std::uint64_t total_bytes() const noexcept;
  [[nodiscard]] std::uint64_t total_channel_drops() const noexcept;

  /// Messages attributable to consistency maintenance: pushes, push acks,
  /// polls, poll replies and invalidations (Fig 6's y-axis).
  [[nodiscard]] std::uint64_t consistency_sends() const noexcept;

 private:
  static constexpr std::size_t kKinds = 10;
  static std::size_t index(PacketKind kind) noexcept {
    return static_cast<std::size_t>(kind);
  }
  std::array<std::uint64_t, kKinds> sends_{};
  std::array<std::uint64_t, kKinds> deliveries_{};
  std::array<std::uint64_t, kKinds> bytes_{};
  std::array<std::uint64_t, kKinds> channel_drops_{};
};

}  // namespace precinct::net
