// Pooled, intrusively ref-counted radio frames.
//
// Every queued transmission used to capture a full Packet (~200 bytes) by
// value in its scheduled closure — past EventCallback's 48-byte inline
// threshold, so the radio heap-allocated once per send plus once per
// receiver.  A PacketBuf is acquired from a free-list arena instead; the
// 16-byte PacketRef handle is what closures capture, so a broadcast to k
// receivers shares one frame under k+1 references and the whole fan-out
// fits the inline event storage.  Frames recycle on last release;
// steady-state traffic allocates nothing.
#pragma once

#include <cassert>
#include <cstdint>

#include <memory>
#include <utility>
#include <vector>

#include "net/packet.hpp"

namespace precinct::net {

class PacketBufPool;

/// One pooled frame: the Packet payload plus the pool's intrusive
/// bookkeeping.  Never created directly — PacketBufPool::acquire hands
/// out PacketRefs to arena slots.
struct PacketBuf {
  Packet packet;
  std::uint32_t refs = 0;
  std::uint32_t gen = 1;  ///< bumped on recycle; stale handles assert
  PacketBufPool* pool = nullptr;
  PacketBuf* next_free = nullptr;
};

/// Shared handle to a pooled frame: copy bumps the refcount, destruction
/// drops it, and the frame returns to its pool's free list when the last
/// reference dies.  16 bytes (pointer + acquisition generation), so a
/// radio delivery closure capturing {net, ref, receiver} stays well under
/// the EventCallback inline threshold.
///
/// The generation makes use-after-release loud: dereferencing a handle
/// whose frame was recycled trips an assert instead of silently reading
/// whatever packet reused the slot.  Mutate the packet only while the
/// frame is uniquely referenced (use_count() == 1) — the radio stamps
/// src_location before any receiver closure shares the frame.
class PacketRef {
 public:
  PacketRef() noexcept = default;
  PacketRef(const PacketRef& other) noexcept
      : buf_(other.buf_), gen_(other.gen_) {
    if (buf_ != nullptr) ++buf_->refs;
  }
  PacketRef(PacketRef&& other) noexcept
      : buf_(std::exchange(other.buf_, nullptr)), gen_(other.gen_) {}
  PacketRef& operator=(const PacketRef& other) noexcept {
    PacketRef tmp(other);
    swap(tmp);
    return *this;
  }
  PacketRef& operator=(PacketRef&& other) noexcept {
    PacketRef tmp(std::move(other));
    swap(tmp);
    return *this;
  }
  ~PacketRef() { reset(); }

  /// Drop this reference (recycling the frame if it was the last one);
  /// the handle becomes empty.
  void reset() noexcept;

  void swap(PacketRef& other) noexcept {
    std::swap(buf_, other.buf_);
    std::swap(gen_, other.gen_);
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return buf_ != nullptr;
  }
  /// True while the handle refers to a live, un-recycled frame.
  [[nodiscard]] bool valid() const noexcept {
    return buf_ != nullptr && buf_->gen == gen_;
  }
  [[nodiscard]] std::uint32_t use_count() const noexcept {
    return buf_ != nullptr ? buf_->refs : 0;
  }

  [[nodiscard]] Packet& operator*() const noexcept {
    assert(valid());
    return buf_->packet;
  }
  [[nodiscard]] Packet* operator->() const noexcept {
    assert(valid());
    return &buf_->packet;
  }

 private:
  friend class PacketBufPool;
  PacketRef(PacketBuf* buf, std::uint32_t gen) noexcept
      : buf_(buf), gen_(gen) {}

  PacketBuf* buf_ = nullptr;
  std::uint32_t gen_ = 0;
};
static_assert(sizeof(PacketRef) == 16);

/// Free-list arena of PacketBufs.  Frames live in chunked blocks (stable
/// addresses), grow on demand, and recycle in LIFO order — the hottest
/// slot is the one just released, still warm in cache.
///
/// Lifetime: the radio owns the pool, but pending simulator events can
/// hold PacketRefs that outlive the radio — the simulator is declared
/// before the radio in Scenario and the test fixtures, so queued events
/// are destroyed after it.  The pool is therefore heap-allocated and
/// retire()d instead of deleted: it self-destructs once the last
/// outstanding reference drains.
class PacketBufPool {
 public:
  /// Frames per arena block.  128 frames ≈ 30 KiB — more in-flight
  /// transmissions than any scenario's MAC queues sustain, so growth is
  /// a warm-up event, not a steady-state one.
  static constexpr std::size_t kBlockFrames = 128;

  PacketBufPool() = default;
  PacketBufPool(const PacketBufPool&) = delete;
  PacketBufPool& operator=(const PacketBufPool&) = delete;

  /// Copy `packet` into a fresh frame and return the (sole) reference.
  [[nodiscard]] PacketRef acquire(const Packet& packet) {
    assert(!retired_);
    if (free_ == nullptr) grow();
    PacketBuf* buf = free_;
    free_ = buf->next_free;
    buf->next_free = nullptr;
    buf->packet = packet;
    buf->refs = 1;
    ++in_use_;
    return PacketRef(buf, buf->gen);
  }

  /// The owner is going away: self-delete once every outstanding
  /// reference has been released (immediately, if none are).
  void retire() noexcept {
    retired_ = true;
    if (in_use_ == 0) delete this;
  }

  [[nodiscard]] std::size_t in_use() const noexcept { return in_use_; }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return blocks_.size() * kBlockFrames;
  }

 private:
  friend class PacketRef;

  void recycle(PacketBuf* buf) noexcept {
    ++buf->gen;  // invalidate any stale handle to the old acquisition
    buf->next_free = free_;
    free_ = buf;
    assert(in_use_ > 0);
    --in_use_;
    if (retired_ && in_use_ == 0) delete this;
  }

  void grow() {
    auto block = std::make_unique<PacketBuf[]>(kBlockFrames);
    // Thread the block onto the free list back to front, so frames hand
    // out in address order.
    for (std::size_t i = kBlockFrames; i-- > 0;) {
      block[i].pool = this;
      block[i].next_free = free_;
      free_ = &block[i];
    }
    blocks_.push_back(std::move(block));
  }

  std::vector<std::unique_ptr<PacketBuf[]>> blocks_;
  PacketBuf* free_ = nullptr;
  std::size_t in_use_ = 0;
  bool retired_ = false;
};

inline void PacketRef::reset() noexcept {
  if (buf_ == nullptr) return;
  PacketBuf* buf = std::exchange(buf_, nullptr);
  assert(buf->refs > 0);
  if (--buf->refs == 0) buf->pool->recycle(buf);
}

}  // namespace precinct::net
