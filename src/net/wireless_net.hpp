// Wireless substrate: unit-disk radio over a mobility model, with a
// per-node transmit queue (half-duplex MAC serialization), Feeney energy
// charging and per-kind message accounting.
//
// This is the ns-2 substitute.  Fidelity notes in DESIGN.md §6: no
// RTS/CTS or capture model; message counts, hop counts and sizes — the
// quantities the paper's metrics depend on — are exact.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "channel/channel_model.hpp"
#include "core/node_state.hpp"
#include "energy/accounting.hpp"
#include "geo/geometry.hpp"
#include "mobility/mobility_model.hpp"
#include "net/message_stats.hpp"
#include "net/packet.hpp"
#include "net/packet_pool.hpp"
#include "net/spatial_grid.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "support/rng.hpp"

namespace precinct::net {

struct WirelessConfig {
  double range_m = 250.0;          ///< radio range (paper: 250 m)
  geo::Rect area{{0.0, 0.0}, {1200.0, 1200.0}};  ///< service area (for the
                                   ///< spatial index; set by Scenario)
  /// Use the grid index for neighbor queries at or above this node
  /// count; below it a linear scan is faster.
  std::size_t spatial_index_threshold = 128;
  double spatial_index_staleness_s = 0.5;  ///< grid rebuild period
  double max_node_speed_mps = 25.0;        ///< bounds drift since rebuild
  double bandwidth_bps = 11e6;     ///< 11 Mbps (paper §6.1)
  double mac_overhead_s = 0.6e-3;  ///< per-frame channel access + preamble
  double unicast_overhead_s = 0.4e-3;  ///< extra RTS/CTS-style handshake
  double propagation_s = 5e-6;     ///< flat propagation delay
  double proc_delay_s = 0.3e-3;    ///< per-hop protocol processing
  double jitter_s = 1.0e-3;        ///< random forwarding jitter (flood
                                   ///< de-synchronization), uniform [0, j)
  /// Cache per-node neighbor lists (and, in GPSR, planarizations) keyed on
  /// (topology epoch, sim time).  Results are byte-identical with or
  /// without the cache — it only skips recomputation within one event
  /// timestamp; disable to cross-check determinism.
  bool neighbor_cache = true;
  /// Lossy-channel / fault-injection model (see channel/channel_model.hpp).
  /// The default "perfect" model keeps delivery byte-identical to a radio
  /// built before the channel seam existed.
  channel::ChannelConfig channel;
};

/// Upper-layer receive hook: (receiving node, packet).  Unicast frames are
/// delivered only to the addressed node; broadcast frames to every live
/// node in range of the sender.
using ReceiveHandler = std::function<void(NodeId, const Packet&)>;

/// Cross-domain transport seam for world sharding (DESIGN.md §13).  When
/// one world is cut into region-column domains, each domain's radio posts
/// through this interface instead of scheduling local events:
///
///   * post_frame    — a transmitted frame whose padded radio disc may
///                     reach nodes owned by `dst_domain`; `due` is the
///                     frame's arrival instant (airtime + propagation),
///                     which the MAC floor guarantees is at least one
///                     lookahead ahead of `now`;
///   * post_liveness — an owned node died or revived (halo delta, applied
///                     by every other domain at the next window boundary);
///   * post_region   — an owned node's region assignment changed (halo
///                     delta, same cadence);
///   * post_catalog_update — an owned node wrote a new authoritative
///                     version into its domain's catalog replica (halo
///                     delta, same cadence; replicas merge monotonically,
///                     and any cross-domain frame carrying the new
///                     version arrives no earlier than the delta, so no
///                     replica ever caches a version newer than its
///                     authoritative one).
///
/// The implementation (core::WorldShardedScenario) routes these into the
/// ShardExecutor's SPSC mailboxes and keeps the conservation counters the
/// post-run audit checks.
class WorldCoupler {
 public:
  virtual ~WorldCoupler() = default;
  virtual void post_frame(std::uint32_t src_domain, std::uint32_t dst_domain,
                          double due, const Packet& packet, bool is_unicast,
                          NodeId next_hop) = 0;
  virtual void post_liveness(std::uint32_t src_domain, NodeId node, bool alive,
                             double now) = 0;
  virtual void post_region(std::uint32_t src_domain, NodeId node,
                           geo::RegionId region, double now) = 0;
  virtual void post_catalog_update(std::uint32_t src_domain, geo::Key key,
                                   std::uint64_t version, double now) = 0;
};

/// One domain's identity inside a world-sharded run: which nodes it owns
/// (owner[i] == domain), how many domains exist, and the coupler to post
/// cross-domain traffic through.  `owner` must outlive the radio.
struct WorldShardBinding {
  std::uint32_t domain = 0;
  std::uint32_t n_domains = 1;
  const std::uint32_t* owner = nullptr;  ///< node id -> owning domain
  WorldCoupler* coupler = nullptr;
};

/// Promiscuous-mode hook: called for every node that overhears a unicast
/// frame addressed to someone else (GPSR position piggybacking).
using SnoopHandler = std::function<void(NodeId, const Packet&)>;

class WirelessNet {
 public:
  WirelessNet(sim::Simulator& simulator, mobility::MobilityModel& mobility,
              const WirelessConfig& config, energy::FeeneyModel energy_model,
              std::uint64_t seed);

  WirelessNet(const WirelessNet&) = delete;
  WirelessNet& operator=(const WirelessNet&) = delete;

  /// Retires the frame pool: frames referenced by still-queued delivery
  /// events stay alive until those events are destroyed.
  ~WirelessNet();

  /// Register the upper layer.  Must be set before any traffic flows.
  void set_receive_handler(ReceiveHandler handler) {
    on_receive_ = std::move(handler);
  }

  /// Register a promiscuous-overhear hook (optional).
  void set_snoop_handler(SnoopHandler handler) {
    on_snoop_ = std::move(handler);
  }

  /// Attach a tracer for kChannel drop events (nullptr detaches).
  void set_tracer(sim::Tracer* tracer) noexcept { tracer_ = tracer; }

  /// When this node's last transmission finished (0 if it never sent).
  [[nodiscard]] double last_transmission_s(NodeId node) const {
    return busy_until_.at(node);
  }

  [[nodiscard]] std::size_t node_count() const noexcept { return n_nodes_; }

  /// Current position of a node.  Lazily cached in the SoA position
  /// columns keyed on the exact sim time, so repeated queries within one
  /// event timestamp cost two array reads instead of a virtual mobility
  /// call (values are identical either way: trajectories are per-node
  /// deterministic).  Static worlds skip even the stamp check: the
  /// columns were snapshotted once at construction and can never go
  /// stale.
  [[nodiscard]] geo::Point position(NodeId node) {
    if (static_world_) return nodes_.position(node);
    return nodes_.position_cached(node, sim_.now(), mobility_);
  }

  /// Node's current scalar speed, cached like position().
  [[nodiscard]] double speed(NodeId node) {
    return nodes_.speed_cached(node, sim_.now(), mobility_);
  }

  /// The SoA node-state columns this radio keeps current (positions,
  /// liveness) and the engine annotates (regions).  Engine-level sweeps
  /// read columns directly; protocol modules should keep using the
  /// per-node accessors.
  [[nodiscard]] core::NodeStateSoA& node_state() noexcept { return nodes_; }
  [[nodiscard]] const core::NodeStateSoA& node_state() const noexcept {
    return nodes_;
  }

  /// Live nodes within radio range of `node` (excluding itself), sorted.
  [[nodiscard]] std::vector<NodeId> neighbors(NodeId node);

  /// Into-scratch overload: replaces `out`'s contents with the neighbor
  /// list (reusing its capacity, so steady-state queries do not allocate).
  void neighbors(NodeId node, std::vector<NodeId>& out);

  /// Zero-copy access to the cached neighbor list.  The reference is valid
  /// until the next topology change (grid rebuild, kill/revive) or sim
  /// time advance; copy it if the neighborhood must be snapshotted.
  [[nodiscard]] const std::vector<NodeId>& neighbors_cached(NodeId node);

  /// Bumped whenever cached neighborhoods may change independently of sim
  /// time: spatial-grid rebuilds and node kill/revive.
  [[nodiscard]] std::uint64_t topology_epoch() const noexcept {
    return topology_epoch_;
  }

  [[nodiscard]] bool neighbor_cache_enabled() const noexcept {
    return config_.neighbor_cache;
  }

  /// True when a direct radio link exists between two live nodes now.
  [[nodiscard]] bool in_range(NodeId a, NodeId b);

  /// Copy `packet` into a pooled frame (see packet_pool.hpp).  Forwarding
  /// paths acquire once and hand the ref to broadcast/unicast; every
  /// queued closure then shares the frame instead of copying the packet.
  [[nodiscard]] PacketRef make_ref(const Packet& packet) {
    return pool_->acquire(packet);
  }

  /// Queue a broadcast frame from `packet->src`.  Every live in-range node
  /// receives it; all receivers pay broadcast-receive energy.
  void broadcast(PacketRef packet);
  void broadcast(const Packet& packet) { broadcast(make_ref(packet)); }

  /// Queue a unicast frame from `packet->src` to `next_hop`.  The target
  /// pays p2p-receive energy; other in-range nodes overhear and pay the
  /// discard cost.  If the link is down at transmit time the frame is
  /// lost (counted in frames_lost()).
  void unicast(PacketRef packet, NodeId next_hop);
  void unicast(const Packet& packet, NodeId next_hop) {
    unicast(make_ref(packet), next_hop);
  }

  // -- failure injection (paper §2.4) --------------------------------------

  /// Crash a node: it stops sending, receiving and overhearing.  In a
  /// world-sharded run, killing an *owned* node also posts a liveness
  /// halo delta so every other domain's replica flags it dead at the next
  /// window boundary.
  void kill(NodeId node);
  /// Revive a previously killed node (same halo-delta rule as kill()).
  void revive(NodeId node);
  [[nodiscard]] bool is_alive(NodeId node) const { return nodes_.alive(node); }
  [[nodiscard]] std::size_t alive_count() const noexcept;

  // -- world sharding (DESIGN.md §13) --------------------------------------

  /// Enter world-sharded mode: this radio is domain `b.domain` of one
  /// world cut into `b.n_domains` region-column domains.  From here on
  ///   * only owned receivers are delivered/charged locally; frames whose
  ///     padded radio disc can reach another domain's nodes are marshalled
  ///     through the coupler at their arrival time;
  ///   * packet ids stride by n_domains (starting at domain + 1) so ids
  ///     stay globally unique without coordination;
  ///   * kill/revive/set_node_region on owned nodes emit halo deltas.
  /// Must be called before any traffic flows.
  void bind_world_shard(const WorldShardBinding& binding);

  /// True when `node` is simulated authoritatively by this radio (always
  /// true outside world-sharded mode).
  [[nodiscard]] bool owns(NodeId node) const noexcept {
    return world_.owner == nullptr || world_.owner[node] == world_.domain;
  }

  /// Write the region column; in world mode an owned node's change is
  /// also posted as a halo delta.  EngineContext::set_region routes here
  /// so the column, PeerState::region and remote replicas stay coherent.
  void set_node_region(NodeId node, geo::RegionId region);

  /// Announce an owned node's authoritative-version bump so every other
  /// domain's catalog replica can merge it (halo delta; no-op outside
  /// world-sharded mode, where there is only one catalog).
  void announce_catalog_update(geo::Key key, std::uint64_t version) {
    if (world_.coupler != nullptr) {
      world_.coupler->post_catalog_update(world_.domain, key, version,
                                          sim_.now());
    }
  }

  /// Apply a halo delta from another domain (window-boundary cadence).
  /// Liveness goes through kill()/revive() — the node is not owned here,
  /// so no delta echoes back; region writes the column only (remote
  /// PeerStates are not simulated).
  void apply_remote_liveness(NodeId node, bool alive);
  void apply_remote_region(NodeId node, geo::RegionId region) {
    nodes_.set_region(node, region);
  }

  /// Deliver a frame marshalled from another domain: same receiver
  /// computation as a local delivery (this replica's positions are exact
  /// — every domain runs the same mobility oracle), but only owned
  /// receivers are charged/delivered and the sender's transmit cost is
  /// not re-paid (its own domain charged it).
  void deliver_remote_broadcast(const Packet& packet) {
    deliver_broadcast_impl(make_ref(packet), /*remote=*/true);
  }
  void deliver_remote_unicast(const Packet& packet, NodeId next_hop) {
    deliver_unicast_impl(make_ref(packet), next_hop, /*remote=*/true);
  }

  /// The derived conservative lookahead of a world-sharded run: the floor
  /// of any cross-domain frame latency.  Every transmission pays at least
  /// the MAC overhead before its last bit hits the air plus propagation,
  /// so no frame posted "now" can be due earlier than now + this.
  [[nodiscard]] static double world_lookahead(
      const WirelessConfig& config) noexcept {
    return config.mac_overhead_s + config.propagation_s;
  }

  // -- inter-tile gateway accounting (DESIGN.md §11) -----------------------

  /// Charge a gateway *egress*: `node` uplinks `bytes` to the inter-tile
  /// backhaul (p2p-send energy plus per-kind send/byte stats).  The
  /// backhaul is not the shared radio channel, so no airtime is reserved
  /// and no other node overhears.  Returns false (and charges nothing)
  /// when the node is dead.
  bool count_gateway_egress(NodeId node, PacketKind kind, std::size_t bytes);
  /// Charge a gateway *ingress* at the receiving tile: p2p-receive energy
  /// plus a per-kind delivery.  Returns false when the node is dead.
  bool count_gateway_ingress(NodeId node, PacketKind kind, std::size_t bytes);

  // -- accounting -----------------------------------------------------------

  [[nodiscard]] const energy::EnergyAccountant& energy() const noexcept {
    return energy_;
  }
  [[nodiscard]] const MessageStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint64_t frames_lost() const noexcept {
    return frames_lost_;
  }
  /// Frames erased in flight by the channel model (disjoint from
  /// frames_lost(), which counts link breaks at transmit time).
  [[nodiscard]] std::uint64_t frames_dropped_by_channel() const noexcept {
    return frames_dropped_by_channel_;
  }
  /// Per-cause channel-drop counters, indexed by channel::DropCause.
  [[nodiscard]] const std::array<std::uint64_t, channel::kDropCauseCount>&
  channel_drops_by_cause() const noexcept {
    return channel_drops_by_cause_;
  }
  [[nodiscard]] const channel::ChannelModel& channel_model() const noexcept {
    return *channel_;
  }

  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }

  /// Frame-pool diagnostics (tests assert recycling and bounded growth).
  [[nodiscard]] const PacketBufPool& frame_pool() const noexcept {
    return *pool_;
  }

  /// Fresh unique packet id.  World-sharded radios stride by the domain
  /// count (seeded domain + 1) so ids are globally unique with no
  /// cross-domain coordination; the default stride of 1 is the plain
  /// sequential counter.
  [[nodiscard]] std::uint64_t next_packet_id() noexcept {
    const std::uint64_t id = next_id_;
    next_id_ += id_stride_;
    return id;
  }

 private:
  /// Serialize through the sender's MAC: returns the time the frame hits
  /// the air, updating the sender's busy window.
  double reserve_airtime(NodeId sender, double tx_time);
  void deliver_broadcast(const PacketRef& packet) {
    deliver_broadcast_impl(packet, /*remote=*/false);
  }
  void deliver_unicast(PacketRef packet, NodeId next_hop) {
    deliver_unicast_impl(std::move(packet), next_hop, /*remote=*/false);
  }
  void deliver_broadcast_impl(const PacketRef& packet, bool remote);
  void deliver_unicast_impl(PacketRef packet, NodeId next_hop, bool remote);
  /// Send-time cross-domain marshalling: find every foreign domain whose
  /// owned nodes the frame's padded radio disc could reach by `arrival`
  /// and post one copy there (unicast always posts to the next hop's
  /// owner, which alone judges frames_lost for the target).
  void post_world_frames(const Packet& packet, double arrival, bool is_unicast,
                         NodeId next_hop);
  [[nodiscard]] double tx_duration(std::size_t bytes, bool unicast) const;

  /// Consult the channel model for one delivery.  Returns true (and does
  /// the drop accounting: discard energy, per-kind/per-cause counters,
  /// kChannel trace) when the frame is erased at `receiver`.
  bool channel_dropped(const Packet& p, NodeId receiver);

  /// Refresh the spatial index if it is stale; no-op when disabled.
  void refresh_grid();

  /// Uncached neighbor computation into `out` (cleared first).
  void compute_neighbors(NodeId node, std::vector<NodeId>& out);

  /// Receiver-snapshot recycling for batched broadcast delivery: each
  /// in-flight broadcast carries one snapshot vector; returned vectors
  /// keep their capacity.  Reserving the hard receiver cap (n-1) up front
  /// means every pooled vector allocates exactly once in its lifetime, so
  /// steady-state fan-out never touches the heap.
  [[nodiscard]] std::vector<NodeId> acquire_rx_list() {
    std::vector<NodeId> v;
    if (!rx_free_.empty()) {
      v = std::move(rx_free_.back());
      rx_free_.pop_back();
    }
    v.reserve(n_nodes_ > 0 ? n_nodes_ - 1 : 0);
    return v;
  }
  void release_rx_list(std::vector<NodeId>&& v) {
    rx_free_.push_back(std::move(v));
  }

  sim::Simulator& sim_;
  mobility::MobilityModel& mobility_;
  WirelessConfig config_;
  energy::EnergyAccountant energy_;
  MessageStats stats_;
  support::Rng rng_;
  /// Channel model + its dedicated RNG stream: drops never draw from
  /// rng_, so a lossless configuration leaves every other stream intact.
  std::unique_ptr<channel::ChannelModel> channel_;
  support::Rng channel_rng_;
  bool lossless_;
  sim::Tracer* tracer_ = nullptr;
  ReceiveHandler on_receive_;
  SnoopHandler on_snoop_;
  std::size_t n_nodes_;
  /// Time-invariant mobility (static placements): position columns are
  /// synced once in the constructor and read raw ever after.
  bool static_world_;
  /// SoA hot-path columns: positions (lazy, stamp-keyed), alive flags,
  /// region ids (written through EngineContext::set_region).
  core::NodeStateSoA nodes_;
  std::vector<double> busy_until_;
  std::uint64_t next_id_ = 1;
  std::uint64_t id_stride_ = 1;
  /// World-sharded identity; owner == nullptr means plain (own everything).
  WorldShardBinding world_;
  /// Per-domain dirty flags scratch for post_world_frames.
  std::vector<std::uint8_t> world_domain_flags_;
  std::uint64_t frames_lost_ = 0;
  std::uint64_t frames_dropped_by_channel_ = 0;
  std::array<std::uint64_t, channel::kDropCauseCount> channel_drops_by_cause_{};

  /// Frame arena.  Heap-allocated and retired (not deleted) in the dtor:
  /// queued delivery events own PacketRefs and are destroyed with the
  /// simulator, which outlives the radio.
  PacketBufPool* pool_;

  // Spatial index (used when node_count >= spatial_index_threshold),
  // rebuilt straight from the SoA position/alive columns.
  std::unique_ptr<SpatialGrid> grid_;
  double grid_time_ = -1.0;
  std::vector<std::uint32_t> grid_scratch_;

  // Per-node neighbor cache, keyed on (topology_epoch_, sim time).
  struct NeighborCache {
    std::uint64_t epoch = 0;  // 0 never matches a live epoch
    double at = -1.0;
    std::vector<NodeId> ids;
  };
  std::uint64_t topology_epoch_ = 1;
  std::vector<NeighborCache> neighbor_cache_;
  std::vector<NodeId> deliver_scratch_;  // unicast snoop snapshot
  std::vector<std::vector<NodeId>> rx_free_;  // recycled fan-out snapshots
};

}  // namespace precinct::net
