// Typed per-PacketKind dispatch: each protocol module registers a handler
// for every packet kind it owns, and the receive path routes a frame with
// one table lookup instead of a hand-maintained switch.
//
// Ownership is exclusive by design — a packet kind belongs to exactly one
// module (requests/responses to the retrieval scheme, consistency traffic
// to the consistency scheme, transfers to custody, beacons to the
// workload driver).  Double registration is a wiring bug and throws at
// setup time, so the "every kind has exactly one owner" invariant is
// enforced where it is cheapest to diagnose.
#pragma once

#include <array>
#include <functional>
#include <stdexcept>
#include <string>

#include "net/packet.hpp"

namespace precinct::net {

class PacketDispatcher {
 public:
  using Handler = std::function<void(NodeId self, const Packet& packet)>;

  /// Register `handler` as the owner of `kind`.  Throws std::logic_error
  /// if the kind already has an owner (exclusive ownership) and
  /// std::invalid_argument on an empty handler.
  void set(PacketKind kind, Handler handler) {
    if (!handler) {
      throw std::invalid_argument("PacketDispatcher: empty handler for " +
                                  std::string(to_string(kind)));
    }
    Handler& slot = handlers_[index(kind)];
    if (slot) {
      throw std::logic_error("PacketDispatcher: duplicate handler for " +
                             std::string(to_string(kind)));
    }
    slot = std::move(handler);
  }

  [[nodiscard]] bool has(PacketKind kind) const noexcept {
    return static_cast<bool>(handlers_[index(kind)]);
  }

  /// Kinds with no registered owner (setup diagnostics; empty when fully
  /// wired).
  [[nodiscard]] std::size_t unhandled_kinds() const noexcept {
    std::size_t n = 0;
    for (const Handler& h : handlers_) {
      if (!h) ++n;
    }
    return n;
  }

  /// Route one received frame to its owning module.  Returns false when
  /// no handler owns the kind (the frame is dropped silently — an
  /// unwired kind must not crash a deployed node).
  bool dispatch(NodeId self, const Packet& packet) const {
    const Handler& handler = handlers_[index(packet.kind)];
    if (!handler) return false;
    handler(self, packet);
    return true;
  }

 private:
  [[nodiscard]] static constexpr std::size_t index(PacketKind kind) noexcept {
    return static_cast<std::size_t>(kind);
  }

  std::array<Handler, kPacketKindCount> handlers_{};
};

}  // namespace precinct::net
