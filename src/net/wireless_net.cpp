#include "net/wireless_net.hpp"

#include <algorithm>
#include <cassert>

namespace precinct::net {

WirelessNet::WirelessNet(sim::Simulator& simulator,
                         mobility::MobilityModel& mobility,
                         const WirelessConfig& config,
                         energy::FeeneyModel energy_model, std::uint64_t seed)
    : sim_(simulator),
      mobility_(mobility),
      config_(config),
      energy_(energy_model, mobility.node_count()),
      rng_(seed),
      n_nodes_(mobility.node_count()),
      alive_(mobility.node_count(), 1),
      busy_until_(mobility.node_count(), 0.0),
      neighbor_cache_(mobility.node_count()) {
  if (n_nodes_ >= config_.spatial_index_threshold) {
    grid_ = std::make_unique<SpatialGrid>(config_.area, config_.range_m);
    grid_positions_.resize(n_nodes_);
  }
}

void WirelessNet::refresh_grid() {
  const double now = sim_.now();
  if (grid_time_ >= 0.0 &&
      now - grid_time_ <= config_.spatial_index_staleness_s) {
    return;
  }
  for (NodeId i = 0; i < n_nodes_; ++i) {
    grid_positions_[i] = mobility_.position_at(i, now);
  }
  grid_->rebuild(grid_positions_, alive_);
  grid_time_ = now;
  ++topology_epoch_;
}

geo::Point WirelessNet::position(NodeId node) {
  return mobility_.position_at(node, sim_.now());
}

void WirelessNet::compute_neighbors(NodeId node, std::vector<NodeId>& out) {
  out.clear();
  const geo::Point p = position(node);
  const double r2 = config_.range_m * config_.range_m;
  if (grid_ != nullptr) {
    refresh_grid();
    // Indexed positions may be stale by up to the rebuild period; pad by
    // the worst-case drift and filter exactly on current positions.
    const double pad =
        (sim_.now() - grid_time_) * config_.max_node_speed_mps;
    grid_scratch_.clear();
    grid_->query(p, config_.range_m + pad, grid_scratch_);
    for (const std::uint32_t i : grid_scratch_) {
      if (i == node || !alive_[i]) continue;
      if (geo::distance_sq(p, position(i)) <= r2) out.push_back(i);
    }
    std::sort(out.begin(), out.end());  // match scan order for determinism
    return;
  }
  for (NodeId i = 0; i < n_nodes_; ++i) {
    if (i == node || !alive_[i]) continue;
    if (geo::distance_sq(p, position(i)) <= r2) out.push_back(i);
  }
}

const std::vector<NodeId>& WirelessNet::neighbors_cached(NodeId node) {
  NeighborCache& c = neighbor_cache_.at(node);
  const double now = sim_.now();
  if (!config_.neighbor_cache || c.epoch != topology_epoch_ || c.at != now) {
    compute_neighbors(node, c.ids);
    // Stamp after computing: the computation itself may rebuild the grid
    // and bump the epoch.
    c.epoch = topology_epoch_;
    c.at = now;
  }
  return c.ids;
}

std::vector<NodeId> WirelessNet::neighbors(NodeId node) {
  return neighbors_cached(node);
}

void WirelessNet::neighbors(NodeId node, std::vector<NodeId>& out) {
  out = neighbors_cached(node);
}

bool WirelessNet::in_range(NodeId a, NodeId b) {
  if (!alive_.at(a) || !alive_.at(b) || a == b) return false;
  return geo::distance_sq(position(a), position(b)) <=
         config_.range_m * config_.range_m;
}

double WirelessNet::tx_duration(std::size_t bytes, bool unicast) const {
  const double serialization =
      static_cast<double>(bytes) * 8.0 / config_.bandwidth_bps;
  return serialization + config_.mac_overhead_s +
         (unicast ? config_.unicast_overhead_s : 0.0);
}

double WirelessNet::reserve_airtime(NodeId sender, double tx_time) {
  // Half-duplex MAC: a node's frames serialize through its own queue.  A
  // small random jitter decorrelates simultaneous flood forwarders.
  double& busy = busy_until_.at(sender);
  const double start =
      std::max(sim_.now(), busy) + rng_.uniform(0.0, config_.jitter_s);
  busy = start + tx_time;
  return busy;  // time the last bit hits the air
}

void WirelessNet::broadcast(const Packet& packet) {
  assert(packet.src != kNoNode);
  if (!alive_.at(packet.src)) return;
  stats_.count_send(packet.kind, packet.size_bytes);
  const double done =
      reserve_airtime(packet.src, tx_duration(packet.size_bytes, false));
  sim_.schedule_at(done + config_.propagation_s,
                   [this, packet] { deliver_broadcast(packet); });
}

void WirelessNet::deliver_broadcast(Packet packet) {
  if (!alive_.at(packet.src)) return;  // died while the frame was queued
  packet.src_location = position(packet.src);
  energy_.charge(packet.src, energy::RadioOp::kBroadcastSend,
                 packet.size_bytes);
  // Snapshot the neighborhood at delivery time (into a reused scratch
  // vector — snoop/receive hooks may themselves query neighborhoods).
  neighbors(packet.src, deliver_scratch_);
  const auto& receivers = deliver_scratch_;
  for (const NodeId receiver : receivers) {
    energy_.charge(receiver, energy::RadioOp::kBroadcastRecv,
                   packet.size_bytes);
    stats_.count_delivery(packet.kind);
  }
  if (!on_receive_) return;
  for (const NodeId receiver : receivers) {
    // Deliver after the receiver's protocol processing delay.
    sim_.schedule(config_.proc_delay_s, [this, receiver, packet] {
      if (alive_.at(receiver)) on_receive_(receiver, packet);
    });
  }
}

void WirelessNet::unicast(const Packet& packet, NodeId next_hop) {
  assert(packet.src != kNoNode && next_hop != kNoNode);
  if (!alive_.at(packet.src)) return;
  stats_.count_send(packet.kind, packet.size_bytes);
  const double done =
      reserve_airtime(packet.src, tx_duration(packet.size_bytes, true));
  sim_.schedule_at(done + config_.propagation_s, [this, packet, next_hop] {
    deliver_unicast(packet, next_hop);
  });
}

void WirelessNet::deliver_unicast(Packet packet, NodeId next_hop) {
  if (!alive_.at(packet.src)) return;
  packet.src_location = position(packet.src);
  energy_.charge(packet.src, energy::RadioOp::kP2pSend, packet.size_bytes);
  neighbors(packet.src, deliver_scratch_);
  const auto& nearby = deliver_scratch_;
  bool reached = false;
  for (const NodeId n : nearby) {
    if (n == next_hop) {
      energy_.charge(n, energy::RadioOp::kP2pRecv, packet.size_bytes);
      reached = true;
    } else {
      // Overhearers pay the promiscuous receive-and-discard cost — and,
      // if the upper layer snoops, learn the sender's position.
      energy_.charge(n, energy::RadioOp::kP2pDiscard, packet.size_bytes);
      if (on_snoop_) on_snoop_(n, packet);
    }
  }
  if (!reached) {
    // Link broke between queueing and transmission (mobility/failure).
    ++frames_lost_;
    return;
  }
  stats_.count_delivery(packet.kind);
  if (on_receive_) {
    sim_.schedule(config_.proc_delay_s, [this, next_hop, packet] {
      if (alive_.at(next_hop)) on_receive_(next_hop, packet);
    });
  }
}

void WirelessNet::kill(NodeId node) {
  alive_.at(node) = 0;
  ++topology_epoch_;  // invalidate every cached neighborhood
}

void WirelessNet::revive(NodeId node) {
  alive_.at(node) = 1;
  busy_until_.at(node) = sim_.now();
  ++topology_epoch_;
}

std::size_t WirelessNet::alive_count() const noexcept {
  return static_cast<std::size_t>(
      std::count(alive_.begin(), alive_.end(), char{1}));
}

}  // namespace precinct::net
