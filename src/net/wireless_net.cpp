#include "net/wireless_net.hpp"

#include <algorithm>
#include <cassert>
#include <string>

#include "channel/channel_registry.hpp"
#include "transport/wire_format.hpp"

namespace precinct::net {

WirelessNet::WirelessNet(sim::Simulator& simulator,
                         mobility::MobilityModel& mobility,
                         const WirelessConfig& config,
                         energy::FeeneyModel energy_model, std::uint64_t seed)
    : sim_(simulator),
      mobility_(mobility),
      config_(config),
      energy_(energy_model, mobility.node_count()),
      rng_(seed),
      channel_(channel::ChannelRegistry::instance().make(config.channel)),
      // Dedicated stream: channel draws never touch rng_, so enabling a
      // lossy model perturbs nothing but its own coin flips.
      channel_rng_(support::hash_combine(seed, 0xC4A2)),
      lossless_(channel_->lossless()),
      n_nodes_(mobility.node_count()),
      static_world_(mobility.time_invariant()),
      nodes_(mobility.node_count()),
      busy_until_(mobility.node_count(), 0.0),
      pool_(new PacketBufPool),
      neighbor_cache_(mobility.node_count()) {
  // One-time size validation; the hot paths below index unchecked.
  assert(nodes_.size() == n_nodes_);
  assert(busy_until_.size() == n_nodes_);
  assert(neighbor_cache_.size() == n_nodes_);
  if (n_nodes_ >= config_.spatial_index_threshold) {
    grid_ = std::make_unique<SpatialGrid>(config_.area, config_.range_m);
  }
  // Time-invariant mobility: snapshot every trajectory now and serve all
  // position reads from the columns with no stamp checks — position_at
  // answers the same for every t, so the snapshot can never go stale.
  if (static_world_) nodes_.sync_positions(0.0, mobility_);
  // At most one fan-out batch per sender can be in flight: a sender's
  // frames serialize through a MAC window (>= mac_overhead_s) longer than
  // the processing delay a batch lives for.  Pre-sizing n snapshot
  // vectors to the receiver cap makes broadcast delivery allocation-free
  // from the first frame (acquire_rx_list still degrades gracefully if
  // the bound is ever exceeded).
  rx_free_.reserve(n_nodes_);
  for (std::size_t i = 0; i < n_nodes_; ++i) {
    std::vector<NodeId> v;
    v.reserve(n_nodes_ > 0 ? n_nodes_ - 1 : 0);
    rx_free_.push_back(std::move(v));
  }
}

WirelessNet::~WirelessNet() { pool_->retire(); }

void WirelessNet::refresh_grid() {
  const double now = sim_.now();
  if (grid_time_ >= 0.0 &&
      now - grid_time_ <= config_.spatial_index_staleness_s) {
    return;
  }
  // Advancing the position columns to `now` is the mobility sweep; the
  // grid then bins straight off the columns, and — because the sweep
  // primes the per-node stamps — the exact filters below read cached
  // positions for free at this timestamp.  Static worlds were synced
  // once at construction; only the alive column can have changed.
  if (!static_world_) nodes_.sync_positions(now, mobility_);
  grid_->rebuild(nodes_.x(), nodes_.y(), nodes_.alive_data(), n_nodes_);
  grid_time_ = now;
  ++topology_epoch_;
}

void WirelessNet::compute_neighbors(NodeId node, std::vector<NodeId>& out) {
  out.clear();
  const geo::Point p = position(node);
  const double r2 = config_.range_m * config_.range_m;
  if (grid_ != nullptr) {
    refresh_grid();
    // Indexed positions may be stale by up to the rebuild period; pad by
    // the worst-case drift and filter exactly on current positions
    // (lazily cached — only nodes not yet seen at this timestamp pay a
    // mobility call).
    const double pad =
        (sim_.now() - grid_time_) * config_.max_node_speed_mps;
    const double now = sim_.now();
    grid_scratch_.clear();
    grid_->query(p, config_.range_m + pad, grid_scratch_);
    const std::uint8_t* alive = nodes_.alive_data();
    if (static_world_) {
      // Static world: the columns are the ground truth at every t — the
      // exact filter is pure array reads, no stamp checks.
      const double* xs = nodes_.x();
      const double* ys = nodes_.y();
      for (const std::uint32_t i : grid_scratch_) {
        if (i == node || !alive[i]) continue;
        if (geo::distance_sq(p, {xs[i], ys[i]}) <= r2) out.push_back(i);
      }
    } else {
      for (const std::uint32_t i : grid_scratch_) {
        if (i == node || !alive[i]) continue;
        if (geo::distance_sq(p, nodes_.position_cached(i, now, mobility_)) <=
            r2) {
          out.push_back(i);
        }
      }
    }
    std::sort(out.begin(), out.end());  // match scan order for determinism
    return;
  }
  // Linear path (small populations): advance every position once, then
  // sweep the coordinate columns branch-light.
  if (!static_world_) nodes_.sync_positions(sim_.now(), mobility_);
  const double* xs = nodes_.x();
  const double* ys = nodes_.y();
  const std::uint8_t* alive = nodes_.alive_data();
  for (NodeId i = 0; i < n_nodes_; ++i) {
    if (i == node || !alive[i]) continue;
    if (geo::distance_sq(p, {xs[i], ys[i]}) <= r2) out.push_back(i);
  }
}

const std::vector<NodeId>& WirelessNet::neighbors_cached(NodeId node) {
  assert(node < n_nodes_);
  NeighborCache& c = neighbor_cache_[node];
  const double now = sim_.now();
  if (!config_.neighbor_cache || c.epoch != topology_epoch_ || c.at != now) {
    compute_neighbors(node, c.ids);
    // Stamp after computing: the computation itself may rebuild the grid
    // and bump the epoch.
    c.epoch = topology_epoch_;
    c.at = now;
  }
  return c.ids;
}

std::vector<NodeId> WirelessNet::neighbors(NodeId node) {
  return neighbors_cached(node);
}

void WirelessNet::neighbors(NodeId node, std::vector<NodeId>& out) {
  // Snapshot overload: element copy into `out`'s existing capacity.  Hot
  // paths that do not need a snapshot iterate neighbors_cached directly.
  const std::vector<NodeId>& ids = neighbors_cached(node);
  out.assign(ids.begin(), ids.end());
}

bool WirelessNet::in_range(NodeId a, NodeId b) {
  assert(a < n_nodes_ && b < n_nodes_);
  if (!nodes_.alive(a) || !nodes_.alive(b) || a == b) return false;
  return geo::distance_sq(position(a), position(b)) <=
         config_.range_m * config_.range_m;
}

double WirelessNet::tx_duration(std::size_t bytes, bool unicast) const {
  const double serialization =
      static_cast<double>(bytes) * 8.0 / config_.bandwidth_bps;
  return serialization + config_.mac_overhead_s +
         (unicast ? config_.unicast_overhead_s : 0.0);
}

double WirelessNet::reserve_airtime(NodeId sender, double tx_time) {
  // Half-duplex MAC: a node's frames serialize through its own queue.  A
  // small random jitter decorrelates simultaneous flood forwarders.
  assert(sender < n_nodes_);
  double& busy = busy_until_[sender];
  const double start =
      std::max(sim_.now(), busy) + rng_.uniform(0.0, config_.jitter_s);
  busy = start + tx_time;
  return busy;  // time the last bit hits the air
}

void WirelessNet::bind_world_shard(const WorldShardBinding& binding) {
  assert(binding.owner != nullptr && binding.coupler != nullptr);
  assert(binding.domain < binding.n_domains);
  world_ = binding;
  world_domain_flags_.assign(binding.n_domains, 0);
  // Stride the id counter so every domain mints from a disjoint residue
  // class: ids stay globally unique without any cross-domain handshake.
  next_id_ = binding.domain + 1;
  id_stride_ = binding.n_domains;
}

void WirelessNet::set_node_region(NodeId node, geo::RegionId region) {
  nodes_.set_region(node, region);
  if (world_.coupler != nullptr && owns(node)) {
    world_.coupler->post_region(world_.domain, node, region, sim_.now());
  }
}

void WirelessNet::apply_remote_liveness(NodeId node, bool alive) {
  // Routed through kill/revive for the epoch bump; the node is foreign,
  // so the owns() guard inside them cannot echo a delta back.
  assert(!owns(node));
  if (alive) {
    revive(node);
  } else {
    kill(node);
  }
}

void WirelessNet::post_world_frames(const Packet& p, double arrival,
                                    bool is_unicast, NodeId next_hop) {
  // A node owned by domain d can hear this frame iff it sits within the
  // radio range of the sender at `arrival`.  Both endpoints move at most
  // max_speed in the meantime, so everything inside
  //   range + 2 * max_speed * (arrival - now)
  // of the sender *now* is the complete candidate set; the destination
  // replica recomputes the exact receiver list on its own (identical)
  // mobility oracle when the frame arrives.
  const double now = sim_.now();
  const geo::Point pos = position(p.src);
  const double reach =
      config_.range_m +
      2.0 * config_.max_node_speed_mps * (arrival - now);
  std::fill(world_domain_flags_.begin(), world_domain_flags_.end(),
            std::uint8_t{0});
  const std::uint32_t* owner = world_.owner;
  if (grid_ != nullptr) {
    refresh_grid();
    // Grid bins are stale by up to the rebuild period; pad the query and
    // filter exactly on current positions.  Replica-dead candidates are
    // already excluded by the rebuild's alive filter (a node revived
    // remotely inside the current window is missed for at most one
    // window — the halo staleness bound, DESIGN.md §13).
    const double grid_pad = (now - grid_time_) * config_.max_node_speed_mps;
    const double reach2 = reach * reach;
    grid_scratch_.clear();
    grid_->query(pos, reach + grid_pad, grid_scratch_);
    for (const std::uint32_t i : grid_scratch_) {
      if (owner[i] == world_.domain) continue;
      if (geo::distance_sq(pos, nodes_.position_cached(i, now, mobility_)) <=
          reach2) {
        world_domain_flags_[owner[i]] = 1;
      }
    }
  } else {
    if (!static_world_) nodes_.sync_positions(now, mobility_);
    const double* xs = nodes_.x();
    const double* ys = nodes_.y();
    const std::uint8_t* alive = nodes_.alive_data();
    const double reach2 = reach * reach;
    for (NodeId i = 0; i < n_nodes_; ++i) {
      if (owner[i] == world_.domain || !alive[i]) continue;
      if (geo::distance_sq(pos, {xs[i], ys[i]}) <= reach2) {
        world_domain_flags_[owner[i]] = 1;
      }
    }
  }
  // The next hop's owner judges frames_lost for the target exactly, so a
  // unicast is always posted there even when the replica says the target
  // is out of reach or dead.
  if (is_unicast && owner[next_hop] != world_.domain) {
    world_domain_flags_[owner[next_hop]] = 1;
  }
  for (std::uint32_t d = 0; d < world_.n_domains; ++d) {
    if (world_domain_flags_[d] == 0) continue;
    world_.coupler->post_frame(world_.domain, d, arrival, p, is_unicast,
                               next_hop);
  }
}

void WirelessNet::broadcast(PacketRef packet) {
  const Packet& p = *packet;
  assert(p.src != kNoNode);
  assert(p.src < n_nodes_);
  assert(owns(p.src));  // nodes transmit only in their owner domain
  if (!nodes_.alive(p.src)) return;
  stats_.count_send(p.kind, p.size_bytes);
  stats_.count_wire_sent(p.kind, transport::wire_size(p));
  const double done =
      reserve_airtime(p.src, tx_duration(p.size_bytes, false));
  const double arrival = done + config_.propagation_s;
  if (world_.coupler != nullptr) {
    post_world_frames(p, arrival, /*is_unicast=*/false, kNoNode);
  }
  // {this, ref}: 24 bytes, inline in the event slot.
  sim_.schedule_at(arrival, [this, packet = std::move(packet)] {
    deliver_broadcast(packet);
  });
}

bool WirelessNet::channel_dropped(const Packet& p, NodeId receiver) {
  const double now = sim_.now();
  const channel::Link link{p.src, receiver, p.src_location,
                           position(receiver), config_.range_m, now};
  const std::optional<channel::DropCause> cause =
      channel_->filter(link, channel_rng_);
  if (!cause.has_value()) return false;
  // The receiver still demodulated the frame before "losing" it, so it
  // pays the Feeney discard cost; the frame just never reaches the stack.
  energy_.charge(receiver, energy::RadioOp::kChannelDiscard, p.size_bytes);
  stats_.count_channel_drop(p.kind);
  ++frames_dropped_by_channel_;
  ++channel_drops_by_cause_[static_cast<std::size_t>(*cause)];
  PRECINCT_TRACE(tracer_, now, sim::TraceCategory::kChannel, receiver,
                 std::string(channel::to_string(*cause)) + " drop of " +
                     to_string(p.kind) + " from node " +
                     std::to_string(p.src));
  return true;
}

void WirelessNet::deliver_broadcast_impl(const PacketRef& packet,
                                         bool remote) {
  Packet& p = *packet;
  assert(p.src < n_nodes_);
  // Died while the frame was queued.  For a remote frame the sender's
  // alive flag is this replica's halo copy — at most one window stale
  // (DESIGN.md §13), and identically stale for every shard count.
  if (!nodes_.alive(p.src)) return;
  // Sole owner until the receiver closures below share the frame, so
  // stamping the transmit position here is race-free.
  p.src_location = position(p.src);
  // The transmit cost is paid exactly once, in the sender's own domain.
  if (!remote) {
    energy_.charge(p.src, energy::RadioOp::kBroadcastSend, p.size_bytes);
  }
  // Iterate the cached neighborhood by reference: the loops below only
  // charge energy/stats and schedule closures — nothing reenters the
  // neighbor cache before the last use.  Foreign-owned receivers are
  // skipped: their own domain delivers the marshalled copy of this frame,
  // so across all domains every receiver is charged exactly once.
  const std::vector<NodeId>& receivers = neighbors_cached(p.src);
  // Position stamping precedes this, so the charged size matches what the
  // transport would deliver on the wire.
  const std::size_t wire_bytes = transport::wire_size(p);
  if (!lossless_) {
    // Lossy path: consult the channel per receiver and deliver the batch
    // only to the survivors.  Receiver order (sorted, owned only — each
    // directed link's draws always happen in the receiver's owner domain)
    // fixes the draw order, so a given seed always erases the same
    // frames.
    std::vector<NodeId> rx = acquire_rx_list();
    rx.clear();  // recycled lists keep their old contents (assign() below
                 // overwrites; this append loop must not)
    for (const NodeId receiver : receivers) {
      if (!owns(receiver)) continue;
      if (channel_dropped(p, receiver)) continue;
      energy_.charge(receiver, energy::RadioOp::kBroadcastRecv, p.size_bytes);
      stats_.count_delivery(p.kind);
      stats_.count_wire_received(p.kind, wire_bytes);
      rx.push_back(receiver);
    }
    if (!on_receive_ || rx.empty()) {
      release_rx_list(std::move(rx));
      return;
    }
    sim_.schedule(config_.proc_delay_s,
                  [this, packet, rx = std::move(rx)]() mutable {
                    for (const NodeId receiver : rx) {
                      if (nodes_.alive(receiver)) on_receive_(receiver, *packet);
                    }
                    release_rx_list(std::move(rx));
                  });
    return;
  }
  std::vector<NodeId> rx = acquire_rx_list();
  rx.clear();
  for (const NodeId receiver : receivers) {
    if (!owns(receiver)) continue;
    energy_.charge(receiver, energy::RadioOp::kBroadcastRecv, p.size_bytes);
    stats_.count_delivery(p.kind);
    stats_.count_wire_received(p.kind, wire_bytes);
    rx.push_back(receiver);
  }
  if (!on_receive_ || rx.empty()) {
    release_rx_list(std::move(rx));
    return;
  }
  // Every receiver is delivered at the same instant (+proc_delay_s), and
  // the per-receiver events used to get consecutive tie-break sequence
  // numbers — nothing could interleave between them.  So one batch event
  // walking a snapshot of the receiver set executes the exact same handler
  // sequence while paying for a single queue insertion instead of |R|.
  // {this, ref, vector}: 48 bytes, exactly the event slot's inline limit.
  sim_.schedule(config_.proc_delay_s,
                [this, packet, rx = std::move(rx)]() mutable {
                  for (const NodeId receiver : rx) {
                    if (nodes_.alive(receiver)) on_receive_(receiver, *packet);
                  }
                  release_rx_list(std::move(rx));
                });
}

void WirelessNet::unicast(PacketRef packet, NodeId next_hop) {
  const Packet& p = *packet;
  assert(p.src != kNoNode && next_hop != kNoNode);
  assert(p.src < n_nodes_);
  assert(owns(p.src));  // nodes transmit only in their owner domain
  if (!nodes_.alive(p.src)) return;
  stats_.count_send(p.kind, p.size_bytes);
  stats_.count_wire_sent(p.kind, transport::wire_size(p));
  const double done =
      reserve_airtime(p.src, tx_duration(p.size_bytes, true));
  const double arrival = done + config_.propagation_s;
  if (world_.coupler != nullptr) {
    post_world_frames(p, arrival, /*is_unicast=*/true, next_hop);
  }
  sim_.schedule_at(arrival,
                   [this, packet = std::move(packet), next_hop]() mutable {
                     deliver_unicast(std::move(packet), next_hop);
                   });
}

void WirelessNet::deliver_unicast_impl(PacketRef packet, NodeId next_hop,
                                       bool remote) {
  Packet& p = *packet;
  assert(p.src < n_nodes_);
  if (!nodes_.alive(p.src)) return;  // halo-stale for remote frames (§13)
  p.src_location = position(p.src);
  if (!remote) {
    energy_.charge(p.src, energy::RadioOp::kP2pSend, p.size_bytes);
  }
  // Snapshot the neighborhood (reusing the scratch vector's capacity):
  // the snoop hook runs inline below and may itself query neighborhoods,
  // invalidating a cached reference mid-loop.
  {
    const std::vector<NodeId>& ids = neighbors_cached(p.src);
    deliver_scratch_.assign(ids.begin(), ids.end());
  }
  // The addressed target is judged (reached / lost / erased) only in its
  // owner domain — that replica knows the target's liveness exactly;
  // everyone else handles just its own overhearers.
  const bool judge_target = owns(next_hop);
  bool reached = false;
  bool erased_by_channel = false;
  for (const NodeId n : deliver_scratch_) {
    if (n == next_hop) {
      if (!judge_target) continue;
      if (!lossless_ && channel_dropped(p, n)) {
        erased_by_channel = true;
        continue;
      }
      energy_.charge(n, energy::RadioOp::kP2pRecv, p.size_bytes);
      reached = true;
    } else {
      // Overhearers pay the promiscuous receive-and-discard cost — and,
      // if the upper layer snoops, learn the sender's position.  A lossy
      // channel erases overheard copies independently of the addressed
      // one (each receiver experiences its own fade).
      if (!owns(n)) continue;
      if (!lossless_ && channel_dropped(p, n)) continue;
      energy_.charge(n, energy::RadioOp::kP2pDiscard, p.size_bytes);
      if (on_snoop_) on_snoop_(n, p);
    }
  }
  if (!judge_target) return;
  if (!reached) {
    // Channel erasures are already counted in frames_dropped_by_channel_;
    // everything else is a link that broke between queueing and
    // transmission (mobility/failure).
    if (!erased_by_channel) ++frames_lost_;
    return;
  }
  stats_.count_delivery(p.kind);
  stats_.count_wire_received(p.kind, transport::wire_size(p));
  if (on_receive_) {
    sim_.schedule(config_.proc_delay_s,
                  [this, packet = std::move(packet), next_hop] {
                    if (nodes_.alive(next_hop)) on_receive_(next_hop, *packet);
                  });
  }
}

bool WirelessNet::count_gateway_egress(NodeId node, PacketKind kind,
                                       std::size_t bytes) {
  assert(node < n_nodes_);
  if (!nodes_.alive(node)) return false;
  energy_.charge(node, energy::RadioOp::kP2pSend, bytes);
  stats_.count_send(kind, bytes);
  return true;
}

bool WirelessNet::count_gateway_ingress(NodeId node, PacketKind kind,
                                        std::size_t bytes) {
  assert(node < n_nodes_);
  if (!nodes_.alive(node)) return false;
  energy_.charge(node, energy::RadioOp::kP2pRecv, bytes);
  stats_.count_delivery(kind);
  return true;
}

void WirelessNet::kill(NodeId node) {
  assert(node < n_nodes_);
  nodes_.set_alive(node, false);
  ++topology_epoch_;  // invalidate every cached neighborhood
  if (world_.coupler != nullptr && owns(node)) {
    world_.coupler->post_liveness(world_.domain, node, false, sim_.now());
  }
}

void WirelessNet::revive(NodeId node) {
  assert(node < n_nodes_);
  nodes_.set_alive(node, true);
  busy_until_[node] = sim_.now();
  ++topology_epoch_;
  if (world_.coupler != nullptr && owns(node)) {
    world_.coupler->post_liveness(world_.domain, node, true, sim_.now());
  }
}

std::size_t WirelessNet::alive_count() const noexcept {
  const std::uint8_t* alive = nodes_.alive_data();
  return static_cast<std::size_t>(
      std::count(alive, alive + n_nodes_, std::uint8_t{1}));
}

}  // namespace precinct::net
