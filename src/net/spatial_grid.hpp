// Uniform-grid spatial index for neighbor queries.
//
// The radio substrate's neighbors() is O(N) per query; beyond a couple
// hundred nodes the grid pays off.  Because nodes move continuously, the
// grid is rebuilt only every `max_staleness_s` and queries pad their
// radius by the maximum distance a node can have drifted since the last
// rebuild — candidates are a superset of the true neighbors, and the
// caller filters exactly against current positions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geo/geometry.hpp"

namespace precinct::net {

class SpatialGrid {
 public:
  /// `cell_m` should be about the radio range; queries then touch O(9)
  /// cells.
  SpatialGrid(const geo::Rect& area, double cell_m);

  /// Replace the index contents with `positions` (indexed by node id);
  /// `alive[id] == 0` entries are skipped.
  void rebuild(const std::vector<geo::Point>& positions,
               const std::vector<char>& alive);

  /// Append to `out` every indexed node whose *indexed* position lies
  /// within `radius` + one cell of `center` (a superset of the nodes
  /// whose indexed position is within `radius`).  Does not clear `out`.
  void query(geo::Point center, double radius,
             std::vector<std::uint32_t>& out) const;

  [[nodiscard]] std::size_t indexed_count() const noexcept { return count_; }
  [[nodiscard]] double cell_size() const noexcept { return cell_m_; }

  /// Monotone rebuild counter: bumped on every rebuild(), so callers can
  /// key caches of derived neighborhood data on it.
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

 private:
  [[nodiscard]] std::size_t cell_of(geo::Point p) const noexcept;

  geo::Rect area_;
  double cell_m_;
  std::size_t nx_;
  std::size_t ny_;
  std::vector<std::vector<std::uint32_t>> cells_;
  std::size_t count_ = 0;
  std::uint64_t epoch_ = 0;
};

}  // namespace precinct::net
