// Uniform-grid spatial index for neighbor queries.
//
// The radio substrate's neighbors() is O(N) per query; beyond a couple
// hundred nodes the grid pays off.  Because nodes move continuously, the
// grid is rebuilt only every `max_staleness_s` and queries pad their
// radius by the maximum distance a node can have drifted since the last
// rebuild — candidates are a superset of the true neighbors, and the
// caller filters exactly against current positions.
//
// Storage is CSR (compressed sparse row): one flat `indices_` array of
// node ids grouped by cell, plus an `offsets_` array where cell c's
// members live at [offsets_[c], offsets_[c+1]).  rebuild() is a counting
// sort — count per cell, prefix-sum, stable placement in ascending node
// id — so per-cell ordering matches the old vector-of-vectors layout
// exactly and the steady state allocates nothing: every buffer is
// size-stable across rebuilds once capacity is reached.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geo/geometry.hpp"

namespace precinct::net {

class SpatialGrid {
 public:
  /// `cell_m` should be about the radio range; queries then touch O(9)
  /// cells.
  SpatialGrid(const geo::Rect& area, double cell_m);

  /// Replace the index contents with `positions` (indexed by node id);
  /// `alive[id] == 0` entries are skipped.
  void rebuild(const std::vector<geo::Point>& positions,
               const std::vector<char>& alive);

  /// Column-oriented overload for SoA node state: `x`/`y` are parallel
  /// coordinate arrays of length `n`, `alive[id] == 0` entries are
  /// skipped (`alive` may be null meaning all alive).
  void rebuild(const double* x, const double* y, const std::uint8_t* alive,
               std::size_t n);

  /// Append to `out` every indexed node whose *indexed* position lies
  /// within `radius` + one cell of `center` (a superset of the nodes
  /// whose indexed position is within `radius`).  Does not clear `out`.
  void query(geo::Point center, double radius,
             std::vector<std::uint32_t>& out) const;

  [[nodiscard]] std::size_t indexed_count() const noexcept { return count_; }
  [[nodiscard]] double cell_size() const noexcept { return cell_m_; }

  /// Monotone rebuild counter: bumped on every rebuild(), so callers can
  /// key caches of derived neighborhood data on it.
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

 private:
  [[nodiscard]] std::size_t cell_of(geo::Point p) const noexcept;
  template <typename PointAt, typename IsAlive>
  void rebuild_impl(std::size_t n, PointAt&& point_at, IsAlive&& is_alive);

  geo::Rect area_;
  double cell_m_;
  double inv_cell_m_;
  std::size_t nx_;
  std::size_t ny_;
  // CSR storage: cell c holds indices_[offsets_[c] .. offsets_[c+1]).
  std::vector<std::uint32_t> offsets_;
  std::vector<std::uint32_t> indices_;
  // Counting-sort scratch, retained across rebuilds: accepted node ids
  // and their cell ids (pass 1), placement cursors (pass 3).
  std::vector<std::uint32_t> scratch_ids_;
  std::vector<std::uint32_t> scratch_cells_;
  std::vector<std::uint32_t> cursor_;
  std::size_t count_ = 0;
  std::uint64_t epoch_ = 0;
};

}  // namespace precinct::net
