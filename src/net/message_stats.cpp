#include "net/message_stats.hpp"

#include <numeric>

namespace precinct::net {

const char* to_string(PacketKind kind) noexcept {
  switch (kind) {
    case PacketKind::kRequest: return "request";
    case PacketKind::kResponse: return "response";
    case PacketKind::kUpdatePush: return "update-push";
    case PacketKind::kPoll: return "poll";
    case PacketKind::kPollReply: return "poll-reply";
    case PacketKind::kInvalidation: return "invalidation";
    case PacketKind::kKeyTransfer: return "key-transfer";
    case PacketKind::kRegionUpdate: return "region-update";
    case PacketKind::kPushAck: return "push-ack";
    case PacketKind::kBeacon: return "beacon";
  }
  return "unknown";
}

void MessageStats::count_send(PacketKind kind, std::size_t bytes) noexcept {
  ++sends_[index(kind)];
  bytes_[index(kind)] += bytes;
}

void MessageStats::count_delivery(PacketKind kind) noexcept {
  ++deliveries_[index(kind)];
}

void MessageStats::count_channel_drop(PacketKind kind) noexcept {
  ++channel_drops_[index(kind)];
}

void MessageStats::count_wire_sent(PacketKind kind,
                                   std::size_t wire_bytes) noexcept {
  wire_sent_[index(kind)] += wire_bytes;
}

void MessageStats::count_wire_received(PacketKind kind,
                                       std::size_t wire_bytes) noexcept {
  wire_received_[index(kind)] += wire_bytes;
}

std::uint64_t MessageStats::sends(PacketKind kind) const noexcept {
  return sends_[index(kind)];
}

std::uint64_t MessageStats::deliveries(PacketKind kind) const noexcept {
  return deliveries_[index(kind)];
}

std::uint64_t MessageStats::bytes_sent(PacketKind kind) const noexcept {
  return bytes_[index(kind)];
}

std::uint64_t MessageStats::channel_drops(PacketKind kind) const noexcept {
  return channel_drops_[index(kind)];
}

std::uint64_t MessageStats::total_sends() const noexcept {
  return std::accumulate(sends_.begin(), sends_.end(), std::uint64_t{0});
}

std::uint64_t MessageStats::total_bytes() const noexcept {
  return std::accumulate(bytes_.begin(), bytes_.end(), std::uint64_t{0});
}

std::uint64_t MessageStats::total_channel_drops() const noexcept {
  return std::accumulate(channel_drops_.begin(), channel_drops_.end(),
                         std::uint64_t{0});
}

std::uint64_t MessageStats::wire_bytes_sent(PacketKind kind) const noexcept {
  return wire_sent_[index(kind)];
}

std::uint64_t MessageStats::wire_bytes_received(
    PacketKind kind) const noexcept {
  return wire_received_[index(kind)];
}

std::uint64_t MessageStats::total_wire_bytes_sent() const noexcept {
  return std::accumulate(wire_sent_.begin(), wire_sent_.end(),
                         std::uint64_t{0});
}

std::uint64_t MessageStats::total_wire_bytes_received() const noexcept {
  return std::accumulate(wire_received_.begin(), wire_received_.end(),
                         std::uint64_t{0});
}

std::uint64_t MessageStats::consistency_sends() const noexcept {
  return sends(PacketKind::kUpdatePush) + sends(PacketKind::kPoll) +
         sends(PacketKind::kPollReply) + sends(PacketKind::kInvalidation) +
         sends(PacketKind::kPushAck);
}

}  // namespace precinct::net
