// Packet taxonomy shared by routing, caching and consistency layers.
//
// A Packet is a value type: forwarding copies it, mutating only the
// per-hop fields (src, ttl, hops, perimeter state).  Payload data is
// modeled by (key, version, size) — the simulator never moves real bytes.
#pragma once

#include <cstddef>
#include <cstdint>

#include "geo/geo_hash.hpp"
#include "geo/geometry.hpp"
#include "geo/region_table.hpp"

namespace precinct::net {

using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/// Protocol message types (paper §2.2, §4).  Used for per-class message
/// accounting (Fig 6's control-message-overhead metric).
enum class PacketKind : std::uint8_t {
  kRequest,       ///< data lookup (regional flood or routed to home region)
  kResponse,      ///< data returned to the requester
  kUpdatePush,    ///< push-phase update toward home/replica region
  kPoll,          ///< pull-phase validity check toward home region
  kPollReply,     ///< poll answer (fresh TTR and, if stale, new version)
  kInvalidation,  ///< Plain-Push flooded invalidation
  kKeyTransfer,   ///< key custody handoff on inter-region mobility / leave
  kRegionUpdate,  ///< region-table change dissemination (§2.1)
  kPushAck,       ///< custodian's acknowledgement of an update push
  kBeacon,        ///< GPSR position beacon (neighbor discovery)
};

/// Number of PacketKind enumerators.  Sizes the per-kind dispatch table
/// (packet_dispatch.hpp) and per-kind message accounting; keep in sync
/// when adding kinds.
inline constexpr std::size_t kPacketKindCount = 10;

[[nodiscard]] const char* to_string(PacketKind kind) noexcept;

/// How a request is being propagated right now.
enum class RouteMode : std::uint8_t {
  kRegionFlood,  ///< scoped flood within dest_region
  kGeographic,   ///< GPSR toward dest_location
  kNetworkFlood, ///< network-wide flood (baselines, Plain-Push)
};

struct Packet {
  std::uint64_t id = 0;       ///< unique; floods deduplicate on it
  PacketKind kind = PacketKind::kRequest;
  RouteMode mode = RouteMode::kGeographic;

  NodeId origin = kNoNode;    ///< node that created the packet
  NodeId src = kNoNode;       ///< sender of the current hop
  geo::Point src_location;    ///< src's position at transmission (stamped
                              ///< by the radio; lets receivers and
                              ///< overhearers piggyback GPSR positions)
  NodeId dest_node = kNoNode; ///< unicast target (kNoNode when routing by
                              ///< location/region only)
  geo::Point origin_location; ///< where the origin was (for the reply path)
  geo::Point dest_location;   ///< geographic destination (region center)
  geo::RegionId dest_region = geo::kInvalidRegion;

  geo::Key key = 0;           ///< data key the message concerns
  std::uint64_t version = 0;  ///< data version carried (responses/updates)
  double ttr_s = 0.0;         ///< TTR carried by responses / poll replies

  std::size_t size_bytes = 0; ///< on-air size (headers + payload)
  int ttl = 64;               ///< hop budget
  int hops = 0;               ///< hops taken so far
  std::uint64_t request_id = 0;  ///< correlates request/response/poll pairs
  double created_at = 0.0;    ///< origin timestamp (latency accounting)

  // GPSR perimeter-mode state (Karp & Kung).
  bool perimeter = false;
  geo::Point perimeter_entry;    ///< location where greedy forwarding failed
  NodeId perimeter_entry_node = kNoNode;  ///< node where perimeter began
  NodeId perimeter_first_hop = kNoNode;   ///< first perimeter edge endpoint

  /// Void-recovery broadcast: set when a geographically routed packet hit
  /// a dead end and was re-broadcast; only receivers strictly closer to
  /// the destination than the stuck node resume forwarding.
  bool recovery = false;

  // Response annotations (set by the serving peer).
  std::uint8_t hit_class = 0;    ///< core::HitClass of the serving copy
  geo::RegionId responder_region = geo::kInvalidRegion;
};

/// Default on-air sizes (bytes).  Requests/control messages are small
/// headers; responses carry the data item, so their size is
/// kHeaderBytes + item size.
inline constexpr std::size_t kHeaderBytes = 64;

}  // namespace precinct::net
