// Cache consistency schemes evaluated by the paper (§4, Fig 6–8).
#pragma once

#include <cstdint>
#include <string>

namespace precinct::consistency {

enum class Mode : std::uint8_t {
  /// Read-only workload; no consistency traffic at all.
  kNone,
  /// Plain-Push (Cao & Liu): the updater floods the update/invalidation
  /// to the entire network.  Stateless but very expensive.
  kPlainPush,
  /// Pull-Every-time (Gwertzman & Seltzer): every request served from a
  /// cached copy first polls the data's home region to validate it.
  kPullEveryTime,
  /// Push with Adaptive Pull — the paper's scheme: updates are pushed
  /// only to the home and replica regions; cached copies carry a TTR and
  /// peers poll the home region only after it expires.
  kPushAdaptivePull,
};

[[nodiscard]] const char* to_string(Mode mode) noexcept;
[[nodiscard]] Mode mode_from_string(const std::string& name);

}  // namespace precinct::consistency
