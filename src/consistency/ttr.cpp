#include "consistency/ttr.hpp"

#include "consistency/modes.hpp"

namespace precinct::consistency {

const char* to_string(Mode mode) noexcept {
  switch (mode) {
    case Mode::kNone: return "none";
    case Mode::kPlainPush: return "plain-push";
    case Mode::kPullEveryTime: return "pull-every-time";
    case Mode::kPushAdaptivePull: return "push-adaptive-pull";
  }
  return "unknown";
}

Mode mode_from_string(const std::string& name) {
  if (name == "none") return Mode::kNone;
  if (name == "plain-push") return Mode::kPlainPush;
  if (name == "pull-every-time") return Mode::kPullEveryTime;
  if (name == "push-adaptive-pull") return Mode::kPushAdaptivePull;
  throw std::invalid_argument("mode_from_string: unknown mode '" + name + "'");
}

TtrEstimator::TtrEstimator(double alpha, double initial_ttr_s)
    : alpha_(alpha), ttr_s_(initial_ttr_s) {
  if (alpha < 0.0 || alpha > 1.0) {
    throw std::invalid_argument("TtrEstimator: alpha must be in [0, 1]");
  }
  if (initial_ttr_s < 0.0) {
    throw std::invalid_argument("TtrEstimator: initial TTR must be >= 0");
  }
}

void TtrEstimator::on_update(double now_s) {
  if (updates_ > 0) {
    const double gap = now_s - last_update_s_;
    if (gap >= 0.0) ttr_s_ = alpha_ * ttr_s_ + (1.0 - alpha_) * gap;
  }
  // The first observed update gives no gap; it only anchors the clock.
  last_update_s_ = now_s;
  ++updates_;
}

}  // namespace precinct::consistency
