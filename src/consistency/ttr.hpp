// Time-to-Refresh estimation (paper Eq. 2).
//
// The home region keeps one estimator per data item it has custody of.
// On each update it folds the observed inter-update gap into an EWMA:
//
//   TTR = alpha * TTR + (1 - alpha) * t_upd_intvl
//
// so frequently updated items get short TTRs (more polls, fresher caches)
// and static items get long ones (fewer polls).
#pragma once

#include <stdexcept>

namespace precinct::consistency {

class TtrEstimator {
 public:
  /// `alpha` in [0, 1] weighs history vs the latest gap; `initial_ttr_s`
  /// seeds the estimate before any update is observed.
  explicit TtrEstimator(double alpha = 0.5, double initial_ttr_s = 30.0);

  /// Record an update arriving at absolute time `now_s`.
  void on_update(double now_s);

  /// Current TTR estimate (seconds).
  [[nodiscard]] double ttr_s() const noexcept { return ttr_s_; }

  /// Absolute expiry for a copy handed out at `now_s`.
  [[nodiscard]] double expiry_for(double now_s) const noexcept {
    return now_s + ttr_s_;
  }

  [[nodiscard]] double alpha() const noexcept { return alpha_; }
  [[nodiscard]] unsigned updates_seen() const noexcept { return updates_; }

 private:
  double alpha_;
  double ttr_s_;
  double last_update_s_ = 0.0;
  unsigned updates_ = 0;
};

}  // namespace precinct::consistency
