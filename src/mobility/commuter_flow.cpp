#include "mobility/commuter_flow.hpp"

#include <algorithm>
#include <stdexcept>

namespace precinct::mobility {

namespace {

// Stream id for the hub-placement draws, disjoint from the per-node
// streams (which use ids [0, n_nodes)).
constexpr std::uint64_t kHubStream = 0x48554253ULL;  // "HUBS"

// Departures within a half-period are staggered over its first fifth so
// commuters do not march in lockstep.
constexpr double kStaggerFraction = 0.2;

}  // namespace

CommuterFlow::CommuterFlow(std::size_t n_nodes,
                           const CommuterFlowConfig& config,
                           std::uint64_t seed)
    : config_(config) {
  if (config.v_min <= 0.0 || config.v_max < config.v_min) {
    throw std::invalid_argument("CommuterFlow: need 0 < v_min <= v_max");
  }
  if (config.period_s <= 0.0) {
    throw std::invalid_argument("CommuterFlow: period must be > 0");
  }
  if (config.n_hubs == 0) {
    throw std::invalid_argument("CommuterFlow: need at least one hub");
  }
  half_period_s_ = config_.period_s * 0.5;
  hub_jitter_m_ =
      0.08 * std::min(config_.area.width(), config_.area.height());

  const support::Rng root(seed);
  support::Rng hub_rng = root.split(kHubStream);
  hubs_.reserve(config_.n_hubs);
  for (std::size_t h = 0; h < config_.n_hubs; ++h) {
    hubs_.push_back({hub_rng.uniform(config_.area.min.x, config_.area.max.x),
                     hub_rng.uniform(config_.area.min.y, config_.area.max.y)});
  }

  states_.reserve(n_nodes);
  for (std::size_t i = 0; i < n_nodes; ++i) {
    LegState s{root.split(i), {}, 0, {}, {}, 0.0, 0.0, 0.0, 0, 0.0};
    s.home = {s.rng.uniform(config_.area.min.x, config_.area.max.x),
              s.rng.uniform(config_.area.min.y, config_.area.max.y)};
    s.affinity = s.rng.uniform_int(config_.n_hubs);
    // Nodes begin the scenario at home; the first commute (phase 0, a
    // day half) departs within the stagger window after t = 0.
    s.from = s.to = s.home;
    s.depart = s.arrive = 0.0;
    s.next_depart = s.rng.uniform(0.0, kStaggerFraction * half_period_s_);
    states_.push_back(std::move(s));
  }
}

geo::Point CommuterFlow::target(LegState& s, std::int64_t phase) const {
  const bool day = (phase % 2) == 0;
  if (!day) return s.home;
  const std::int64_t day_index = phase / 2;
  const std::size_t hub =
      (s.affinity + static_cast<std::size_t>(day_index)) % config_.n_hubs;
  const geo::Point jitter = {
      s.rng.uniform(-hub_jitter_m_, hub_jitter_m_),
      s.rng.uniform(-hub_jitter_m_, hub_jitter_m_)};
  return config_.area.clamp(hubs_[hub] + jitter);
}

void CommuterFlow::advance(LegState& s, double t) const {
  while (t > s.next_depart) {
    const std::int64_t phase = s.phase++;
    s.from = s.to;
    s.depart = s.next_depart;
    s.to = target(s, phase);
    s.speed = s.rng.uniform(config_.v_min, config_.v_max);
    s.arrive = s.depart + geo::distance(s.from, s.to) / s.speed;
    // The next half-period's leg departs at its staggered offset, or as
    // soon as this (possibly overrunning) leg lands — whichever is later.
    const double nominal =
        static_cast<double>(phase + 1) * half_period_s_ +
        s.rng.uniform(0.0, kStaggerFraction * half_period_s_);
    s.next_depart = std::max(nominal, s.arrive);
  }
}

geo::Point CommuterFlow::position_at(std::size_t node, double t) {
  LegState& s = states_.at(node);
  advance(s, t);
  if (t >= s.arrive) return s.to;
  if (t <= s.depart) return s.from;
  const double frac = (t - s.depart) / (s.arrive - s.depart);
  return s.from + (s.to - s.from) * frac;
}

double CommuterFlow::speed_at(std::size_t node, double t) {
  LegState& s = states_.at(node);
  advance(s, t);
  return (t > s.depart && t < s.arrive) ? s.speed : 0.0;
}

}  // namespace precinct::mobility
