// Random direction mobility: each node picks a uniform heading and speed,
// travels until it hits the area boundary, pauses, then picks a new
// heading.  Unlike random waypoint it keeps the spatial distribution
// near-uniform (no center bias), which the paper's future work asks to
// evaluate against.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/geometry.hpp"
#include "mobility/mobility_model.hpp"
#include "support/rng.hpp"

namespace precinct::mobility {

struct RandomDirectionConfig {
  geo::Rect area{{0.0, 0.0}, {1200.0, 1200.0}};
  double v_min = 0.5;
  double v_max = 6.0;
  double pause_s = 5.0;
};

class RandomDirection final : public MobilityModel {
 public:
  RandomDirection(std::size_t n_nodes, const RandomDirectionConfig& config,
                  std::uint64_t seed);

  [[nodiscard]] geo::Point position_at(std::size_t node, double t) override;
  [[nodiscard]] double speed_at(std::size_t node, double t) override;
  [[nodiscard]] std::size_t node_count() const noexcept override {
    return states_.size();
  }

 private:
  struct LegState {
    support::Rng rng;
    geo::Point from;
    geo::Point to;        // boundary point the heading runs into
    double depart = 0.0;
    double arrive = 0.0;
    double resume = 0.0;
    double speed = 0.0;
  };

  /// Where a ray from `p` along `angle` exits the area.
  [[nodiscard]] geo::Point boundary_hit(geo::Point p, double angle) const;
  void advance(LegState& s, double t) const;

  RandomDirectionConfig config_;
  std::vector<LegState> states_;
};

}  // namespace precinct::mobility
