// Random waypoint mobility (Broch et al., the model the paper's ns-2
// experiments use): each node repeatedly picks a uniform destination in
// the area and a uniform speed in [vmin, vmax], travels there in a
// straight line, pauses, and repeats.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/geometry.hpp"
#include "mobility/mobility_model.hpp"
#include "support/rng.hpp"

namespace precinct::mobility {

struct RandomWaypointConfig {
  geo::Rect area{{0.0, 0.0}, {1200.0, 1200.0}};
  double v_min = 0.5;    ///< m/s; > 0 avoids the well-known RWP speed decay
  double v_max = 6.0;    ///< m/s (paper sweeps 2..20)
  double pause_s = 5.0;  ///< pause between legs (paper: 5 s)
};

class RandomWaypoint final : public MobilityModel {
 public:
  /// Nodes start at uniform positions; trajectories derive from
  /// per-node RNG streams split from `seed` so each node's path is
  /// independent of how often other nodes are queried.
  RandomWaypoint(std::size_t n_nodes, const RandomWaypointConfig& config,
                 std::uint64_t seed);

  [[nodiscard]] geo::Point position_at(std::size_t node, double t) override;
  [[nodiscard]] double speed_at(std::size_t node, double t) override;
  [[nodiscard]] std::size_t node_count() const noexcept override {
    return states_.size();
  }

 private:
  struct LegState {
    support::Rng rng;
    geo::Point from;      // leg origin
    geo::Point to;        // waypoint
    double depart = 0.0;  // time motion started
    double arrive = 0.0;  // time waypoint reached
    double resume = 0.0;  // arrive + pause: next leg departs here
    double speed = 0.0;
  };

  void advance(LegState& s, double t) const;

  RandomWaypointConfig config_;
  std::vector<LegState> states_;
};

}  // namespace precinct::mobility
