// Commuter-flow mobility: day/night density churn around rotating
// attractor hubs (structured mobility, ROADMAP item 3).
//
// Each node owns a fixed home location and a hub affinity.  Simulation
// time is cut into half-periods of `period_s / 2`: during a "day" half
// the node commutes to an attractor hub, during the "night" half it
// returns home.  The attractor a node targets rotates every day
// (`(affinity + day) % n_hubs`), so the dense spots themselves move over
// time — the attractor field is time-varying and `time_invariant()` is
// false by construction, which keeps the radio's static-snapshot fast
// path provably out of play for these scenarios.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/geometry.hpp"
#include "mobility/mobility_model.hpp"
#include "support/rng.hpp"

namespace precinct::mobility {

struct CommuterFlowConfig {
  geo::Rect area{{0.0, 0.0}, {1200.0, 1200.0}};
  double period_s = 400.0;  ///< one full day/night cycle
  std::size_t n_hubs = 3;   ///< number of attractor hubs
  double v_min = 0.5;       ///< m/s
  double v_max = 3.0;       ///< m/s
};

class CommuterFlow final : public MobilityModel {
 public:
  CommuterFlow(std::size_t n_nodes, const CommuterFlowConfig& config,
               std::uint64_t seed);

  [[nodiscard]] geo::Point position_at(std::size_t node, double t) override;
  [[nodiscard]] double speed_at(std::size_t node, double t) override;
  [[nodiscard]] std::size_t node_count() const noexcept override {
    return states_.size();
  }
  /// Never time-invariant: the attractor field churns with the clock.
  [[nodiscard]] bool time_invariant() const noexcept override { return false; }

  /// Hub locations (test introspection).
  [[nodiscard]] const std::vector<geo::Point>& hubs() const noexcept {
    return hubs_;
  }

 private:
  struct LegState {
    support::Rng rng;
    geo::Point home;
    std::size_t affinity = 0;  // base hub index, rotated per day
    geo::Point from;
    geo::Point to;
    double depart = 0.0;
    double arrive = 0.0;
    double speed = 0.0;
    std::int64_t phase = 0;     // next half-period to generate a leg for
    double next_depart = 0.0;   // staggered departure of that leg
  };

  [[nodiscard]] geo::Point target(LegState& s, std::int64_t phase) const;
  void advance(LegState& s, double t) const;

  CommuterFlowConfig config_;
  double half_period_s_ = 0.0;
  double hub_jitter_m_ = 0.0;  // commuters spread around the hub center
  std::vector<geo::Point> hubs_;
  std::vector<LegState> states_;
};

}  // namespace precinct::mobility
