// Manhattan-grid vehicular mobility (structured mobility, ROADMAP item 3):
// nodes are vehicles constrained to a lattice of axis-aligned streets
// spaced `street_spacing_m` apart.  Each leg runs intersection to
// intersection at a per-leg uniform speed; at every intersection the
// vehicle turns onto a perpendicular street with probability
// `turn_probability` (uniform over the legal perpendicular directions),
// otherwise continues straight, reversing only at dead ends.  Waypoints
// are lane-snapped by construction: a position is always on a street
// line, never mid-block.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/geometry.hpp"
#include "mobility/mobility_model.hpp"
#include "support/rng.hpp"

namespace precinct::mobility {

struct ManhattanGridConfig {
  geo::Rect area{{0.0, 0.0}, {1200.0, 1200.0}};
  double street_spacing_m = 100.0;  ///< distance between parallel streets
  double turn_probability = 0.25;   ///< P(turn) at each intersection
  double v_min = 2.0;               ///< m/s
  double v_max = 14.0;              ///< m/s
  double pause_s = 2.0;             ///< stop time at each intersection
};

class ManhattanGrid final : public MobilityModel {
 public:
  /// Vehicles start at uniform random intersections with a uniform legal
  /// heading; trajectories derive from per-node RNG streams split from
  /// `seed`, so each node's path is independent of query interleaving.
  ManhattanGrid(std::size_t n_nodes, const ManhattanGridConfig& config,
                std::uint64_t seed);

  [[nodiscard]] geo::Point position_at(std::size_t node, double t) override;
  [[nodiscard]] double speed_at(std::size_t node, double t) override;
  [[nodiscard]] std::size_t node_count() const noexcept override {
    return states_.size();
  }

  /// Intersections per row (test introspection).
  [[nodiscard]] std::size_t columns() const noexcept { return nx_; }
  [[nodiscard]] std::size_t rows() const noexcept { return ny_; }

 private:
  struct LegState {
    support::Rng rng;
    std::int32_t ix = 0;  // intersection the current leg ends at
    std::int32_t iy = 0;
    std::int32_t dx = 0;  // heading, axis-aligned: exactly one of dx/dy != 0
    std::int32_t dy = 0;
    geo::Point from;
    geo::Point to;
    double depart = 0.0;
    double arrive = 0.0;
    double resume = 0.0;  // arrive + pause: next leg departs here
    double speed = 0.0;
  };

  [[nodiscard]] geo::Point intersection(std::int32_t ix,
                                        std::int32_t iy) const noexcept;
  void advance(LegState& s, double t) const;

  ManhattanGridConfig config_;
  std::size_t nx_ = 0;  ///< intersections along x (>= 2)
  std::size_t ny_ = 0;  ///< intersections along y (>= 2)
  std::vector<LegState> states_;
};

}  // namespace precinct::mobility
