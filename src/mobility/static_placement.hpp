// Static topologies: nodes never move.  Used by the analytical-validation
// experiments (paper §6.2.3) and by tests that need fixed geometry.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/geometry.hpp"
#include "mobility/mobility_model.hpp"

namespace precinct::mobility {

class StaticPlacement final : public MobilityModel {
 public:
  /// Fixed, caller-provided positions.
  explicit StaticPlacement(std::vector<geo::Point> positions);

  /// Uniform random placement of `n_nodes` in `area`.
  static StaticPlacement uniform(std::size_t n_nodes, const geo::Rect& area,
                                 std::uint64_t seed);

  /// Evenly spaced grid placement covering `area` (deterministic, handy
  /// for connectivity-guaranteed test topologies).
  static StaticPlacement grid(std::size_t n_nodes, const geo::Rect& area);

  [[nodiscard]] geo::Point position_at(std::size_t node, double) override {
    return positions_.at(node);
  }
  [[nodiscard]] double speed_at(std::size_t, double) override { return 0.0; }
  [[nodiscard]] std::size_t node_count() const noexcept override {
    return positions_.size();
  }
  [[nodiscard]] bool time_invariant() const noexcept override { return true; }

 private:
  std::vector<geo::Point> positions_;
};

}  // namespace precinct::mobility
