#include "mobility/static_placement.hpp"

#include <cmath>

#include "support/rng.hpp"

namespace precinct::mobility {

StaticPlacement::StaticPlacement(std::vector<geo::Point> positions)
    : positions_(std::move(positions)) {}

StaticPlacement StaticPlacement::uniform(std::size_t n_nodes,
                                         const geo::Rect& area,
                                         std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<geo::Point> pts;
  pts.reserve(n_nodes);
  for (std::size_t i = 0; i < n_nodes; ++i) {
    pts.push_back({rng.uniform(area.min.x, area.max.x),
                   rng.uniform(area.min.y, area.max.y)});
  }
  return StaticPlacement(std::move(pts));
}

StaticPlacement StaticPlacement::grid(std::size_t n_nodes,
                                      const geo::Rect& area) {
  std::vector<geo::Point> pts;
  pts.reserve(n_nodes);
  const auto cols = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(n_nodes))));
  const auto rows = (n_nodes + cols - 1) / cols;
  const double dx = area.width() / static_cast<double>(cols);
  const double dy = area.height() / static_cast<double>(rows);
  for (std::size_t i = 0; i < n_nodes; ++i) {
    const std::size_t cx = i % cols;
    const std::size_t cy = i / cols;
    pts.push_back({area.min.x + (static_cast<double>(cx) + 0.5) * dx,
                   area.min.y + (static_cast<double>(cy) + 0.5) * dy});
  }
  return StaticPlacement(std::move(pts));
}

}  // namespace precinct::mobility
