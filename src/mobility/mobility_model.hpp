// Node mobility (paper §6.1: random waypoint with 5 s pauses; static
// topologies for the analytical validation experiments).
//
// Models are *trajectory oracles*: position_at(node, t) answers where a
// node is at simulation time t.  Queries must be non-decreasing in t per
// node (the simulator's clock is monotone), which lets implementations
// advance piecewise trajectories lazily in O(1) amortized time.
#pragma once

#include <cstddef>

#include "geo/geometry.hpp"

namespace precinct::mobility {

class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  /// Position of node `node` at time `t` (seconds).  Per node, `t` must be
  /// non-decreasing across calls.
  [[nodiscard]] virtual geo::Point position_at(std::size_t node, double t) = 0;

  /// Current speed of the node at time `t` (m/s); 0 while pausing or for
  /// static models.  Same monotonicity contract as position_at.
  [[nodiscard]] virtual double speed_at(std::size_t node, double t) = 0;

  [[nodiscard]] virtual std::size_t node_count() const noexcept = 0;

  /// True when position_at(node, t) is independent of t (static
  /// topologies).  Consumers that cache positions (the radio's SoA
  /// columns) may then snapshot every trajectory once and serve all
  /// later queries from the snapshot without re-consulting the oracle.
  [[nodiscard]] virtual bool time_invariant() const noexcept { return false; }
};

}  // namespace precinct::mobility
