// Composite mobility for heterogeneous fleets: each node class owns a
// contiguous id range [offset, offset + count) served by its own
// sub-model (fixed roadside units -> StaticPlacement, phones ->
// RandomWaypoint, vehicles -> ManhattanGrid, ...).  The composite simply
// routes oracle queries to the owning sub-model, so per-class trajectory
// streams stay independent of the fleet composition around them.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "mobility/mobility_model.hpp"

namespace precinct::mobility {

class ClassMix final : public MobilityModel {
 public:
  /// `parts` must be non-empty; node ids are assigned contiguously in
  /// part order.
  explicit ClassMix(std::vector<std::unique_ptr<MobilityModel>> parts);

  [[nodiscard]] geo::Point position_at(std::size_t node, double t) override;
  [[nodiscard]] double speed_at(std::size_t node, double t) override;
  [[nodiscard]] std::size_t node_count() const noexcept override {
    return total_;
  }
  /// Invariant only when every part is (an all-fixed fleet).
  [[nodiscard]] bool time_invariant() const noexcept override;

  [[nodiscard]] std::size_t part_count() const noexcept {
    return parts_.size();
  }

 private:
  struct Routed {
    MobilityModel* model;
    std::size_t local;
  };
  [[nodiscard]] Routed route(std::size_t node) const;

  std::vector<std::unique_ptr<MobilityModel>> parts_;
  std::vector<std::size_t> offsets_;  // offsets_[k] = first id of part k
  std::size_t total_ = 0;
};

}  // namespace precinct::mobility
