#include "mobility/random_waypoint.hpp"

#include <cassert>
#include <stdexcept>

namespace precinct::mobility {

RandomWaypoint::RandomWaypoint(std::size_t n_nodes,
                               const RandomWaypointConfig& config,
                               std::uint64_t seed)
    : config_(config) {
  if (config.v_min <= 0.0 || config.v_max < config.v_min) {
    throw std::invalid_argument("RandomWaypoint: need 0 < v_min <= v_max");
  }
  if (config.pause_s < 0.0) {
    throw std::invalid_argument("RandomWaypoint: pause must be >= 0");
  }
  const support::Rng root(seed);
  states_.reserve(n_nodes);
  for (std::size_t i = 0; i < n_nodes; ++i) {
    LegState s{root.split(i), {}, {}, 0.0, 0.0, 0.0, 0.0};
    s.from = {s.rng.uniform(config_.area.min.x, config_.area.max.x),
              s.rng.uniform(config_.area.min.y, config_.area.max.y)};
    s.to = s.from;
    // Start paused at the initial position; first leg departs at t = 0
    // after the configured pause so the initial topology matches the
    // random initial placement (matching ns-2 scenario generation).
    s.depart = s.arrive = 0.0;
    s.resume = config_.pause_s;
    states_.push_back(std::move(s));
  }
}

void RandomWaypoint::advance(LegState& s, double t) const {
  // Roll legs forward until `t` falls inside the current leg or its pause.
  while (t > s.resume) {
    const double depart = s.resume;
    const geo::Point from = s.to;
    const geo::Point to = {s.rng.uniform(config_.area.min.x, config_.area.max.x),
                           s.rng.uniform(config_.area.min.y, config_.area.max.y)};
    const double speed = s.rng.uniform(config_.v_min, config_.v_max);
    const double dist = geo::distance(from, to);
    s.from = from;
    s.to = to;
    s.depart = depart;
    s.speed = speed;
    s.arrive = depart + dist / speed;
    s.resume = s.arrive + config_.pause_s;
  }
}

geo::Point RandomWaypoint::position_at(std::size_t node, double t) {
  LegState& s = states_.at(node);
  advance(s, t);
  if (t >= s.arrive) return s.to;  // pausing at the waypoint
  if (t <= s.depart) return s.from;
  const double frac = (t - s.depart) / (s.arrive - s.depart);
  return s.from + (s.to - s.from) * frac;
}

double RandomWaypoint::speed_at(std::size_t node, double t) {
  LegState& s = states_.at(node);
  advance(s, t);
  return (t > s.depart && t < s.arrive) ? s.speed : 0.0;
}

}  // namespace precinct::mobility
