#include "mobility/random_direction.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

namespace precinct::mobility {

RandomDirection::RandomDirection(std::size_t n_nodes,
                                 const RandomDirectionConfig& config,
                                 std::uint64_t seed)
    : config_(config) {
  if (config.v_min <= 0.0 || config.v_max < config.v_min) {
    throw std::invalid_argument("RandomDirection: need 0 < v_min <= v_max");
  }
  if (config.pause_s < 0.0) {
    throw std::invalid_argument("RandomDirection: pause must be >= 0");
  }
  const support::Rng root(seed);
  states_.reserve(n_nodes);
  for (std::size_t i = 0; i < n_nodes; ++i) {
    LegState s{root.split(i), {}, {}, 0.0, 0.0, 0.0, 0.0};
    s.from = {s.rng.uniform(config_.area.min.x, config_.area.max.x),
              s.rng.uniform(config_.area.min.y, config_.area.max.y)};
    s.to = s.from;
    s.resume = config_.pause_s;
    states_.push_back(std::move(s));
  }
}

geo::Point RandomDirection::boundary_hit(geo::Point p, double angle) const {
  const double dx = std::cos(angle);
  const double dy = std::sin(angle);
  double t_exit = std::numeric_limits<double>::infinity();
  if (dx > 1e-12) t_exit = std::min(t_exit, (config_.area.max.x - p.x) / dx);
  if (dx < -1e-12) t_exit = std::min(t_exit, (config_.area.min.x - p.x) / dx);
  if (dy > 1e-12) t_exit = std::min(t_exit, (config_.area.max.y - p.y) / dy);
  if (dy < -1e-12) t_exit = std::min(t_exit, (config_.area.min.y - p.y) / dy);
  if (!std::isfinite(t_exit)) return p;  // degenerate heading
  t_exit = std::max(0.0, t_exit);
  return config_.area.clamp({p.x + dx * t_exit, p.y + dy * t_exit});
}

void RandomDirection::advance(LegState& s, double t) const {
  while (t > s.resume) {
    const double depart = s.resume;
    const geo::Point from = s.to;
    const double angle = s.rng.uniform(0.0, 2.0 * std::numbers::pi);
    const geo::Point to = boundary_hit(from, angle);
    const double speed = s.rng.uniform(config_.v_min, config_.v_max);
    const double dist = geo::distance(from, to);
    s.from = from;
    s.to = to;
    s.depart = depart;
    s.speed = speed;
    // A zero-length leg (corner hit) still consumes the pause so the loop
    // always makes progress.
    s.arrive = depart + (dist > 1e-9 ? dist / speed : 1e-3);
    s.resume = s.arrive + config_.pause_s;
  }
}

geo::Point RandomDirection::position_at(std::size_t node, double t) {
  LegState& s = states_.at(node);
  advance(s, t);
  if (t >= s.arrive) return s.to;
  if (t <= s.depart) return s.from;
  const double frac = (t - s.depart) / (s.arrive - s.depart);
  return s.from + (s.to - s.from) * frac;
}

double RandomDirection::speed_at(std::size_t node, double t) {
  LegState& s = states_.at(node);
  advance(s, t);
  return (t > s.depart && t < s.arrive) ? s.speed : 0.0;
}

}  // namespace precinct::mobility
