#include "mobility/gauss_markov.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace precinct::mobility {

namespace {
/// Standard normal via Box-Muller on the deterministic Rng.
double gaussian(support::Rng& rng) {
  const double u1 = std::max(1e-12, rng.uniform());
  const double u2 = rng.uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}
}  // namespace

GaussMarkov::GaussMarkov(std::size_t n_nodes, const GaussMarkovConfig& config,
                         std::uint64_t seed)
    : config_(config) {
  if (config.alpha < 0.0 || config.alpha > 1.0) {
    throw std::invalid_argument("GaussMarkov: alpha must be in [0, 1]");
  }
  if (config.mean_speed <= 0.0 || config.step_s <= 0.0) {
    throw std::invalid_argument("GaussMarkov: speeds and step must be > 0");
  }
  const support::Rng root(seed);
  states_.reserve(n_nodes);
  for (std::size_t i = 0; i < n_nodes; ++i) {
    State s{root.split(i), {}, {}, 0.0, 0.0, 0.0};
    s.pos = {s.rng.uniform(config_.area.min.x, config_.area.max.x),
             s.rng.uniform(config_.area.min.y, config_.area.max.y)};
    s.prev_pos = s.pos;
    s.speed = config_.mean_speed;
    s.heading = s.rng.uniform(0.0, 2.0 * std::numbers::pi);
    states_.push_back(std::move(s));
  }
}

void GaussMarkov::step(State& s) const {
  const double a = config_.alpha;
  const double decay = std::sqrt(std::max(0.0, 1.0 - a * a));
  s.speed = a * s.speed + (1.0 - a) * config_.mean_speed +
            decay * config_.speed_sigma * gaussian(s.rng);
  s.speed = std::clamp(s.speed, 0.0, 4.0 * config_.mean_speed);
  // Heading is a random walk (its "mean" is the previous heading): an
  // AR(1) pull toward a fixed angle would make the whole fleet drift one
  // way and pile up on a boundary.
  s.heading += decay * config_.heading_sigma * gaussian(s.rng);

  geo::Point next = {s.pos.x + s.speed * config_.step_s * std::cos(s.heading),
                     s.pos.y + s.speed * config_.step_s * std::sin(s.heading)};
  // Reflect at the boundary (standard Gauss-Markov edge handling).
  if (next.x < config_.area.min.x || next.x >= config_.area.max.x) {
    s.heading = std::numbers::pi - s.heading;
    next.x = std::clamp(next.x, config_.area.min.x,
                        std::nextafter(config_.area.max.x, 0.0));
  }
  if (next.y < config_.area.min.y || next.y >= config_.area.max.y) {
    s.heading = -s.heading;
    next.y = std::clamp(next.y, config_.area.min.y,
                        std::nextafter(config_.area.max.y, 0.0));
  }
  s.prev_pos = s.pos;
  s.pos = next;
  s.step_start += config_.step_s;
}

void GaussMarkov::advance(State& s, double t) const {
  while (t >= s.step_start + config_.step_s) step(s);
}

geo::Point GaussMarkov::position_at(std::size_t node, double t) {
  State& s = states_.at(node);
  advance(s, t);
  // Linear interpolation within the current step.
  const double frac =
      std::clamp((t - s.step_start) / config_.step_s, 0.0, 1.0);
  const geo::Point target = {
      s.pos.x + s.speed * config_.step_s * std::cos(s.heading),
      s.pos.y + s.speed * config_.step_s * std::sin(s.heading)};
  const geo::Point clamped = config_.area.clamp(target);
  return s.pos + (clamped - s.pos) * frac;
}

double GaussMarkov::speed_at(std::size_t node, double t) {
  State& s = states_.at(node);
  advance(s, t);
  return s.speed;
}

}  // namespace precinct::mobility
