#include "mobility/class_mix.hpp"

#include <algorithm>
#include <stdexcept>

namespace precinct::mobility {

ClassMix::ClassMix(std::vector<std::unique_ptr<MobilityModel>> parts)
    : parts_(std::move(parts)) {
  if (parts_.empty()) {
    throw std::invalid_argument("ClassMix: need at least one part");
  }
  offsets_.reserve(parts_.size());
  for (const auto& p : parts_) {
    if (p == nullptr) throw std::invalid_argument("ClassMix: null part");
    offsets_.push_back(total_);
    total_ += p->node_count();
  }
}

ClassMix::Routed ClassMix::route(std::size_t node) const {
  if (node >= total_) throw std::out_of_range("ClassMix: node out of range");
  // Last part whose offset is <= node.
  const auto it =
      std::upper_bound(offsets_.begin(), offsets_.end(), node) - 1;
  const std::size_t k = static_cast<std::size_t>(it - offsets_.begin());
  return {parts_[k].get(), node - offsets_[k]};
}

geo::Point ClassMix::position_at(std::size_t node, double t) {
  const Routed r = route(node);
  return r.model->position_at(r.local, t);
}

double ClassMix::speed_at(std::size_t node, double t) {
  const Routed r = route(node);
  return r.model->speed_at(r.local, t);
}

bool ClassMix::time_invariant() const noexcept {
  return std::all_of(parts_.begin(), parts_.end(), [](const auto& p) {
    return p->time_invariant();
  });
}

}  // namespace precinct::mobility
