// Gauss-Markov mobility: velocity evolves as a first-order autoregressive
// process, producing smooth, temporally correlated motion (no sharp
// waypoint turns).  The memory parameter alpha tunes between Brownian
// (alpha=0) and straight-line (alpha=1) motion.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/geometry.hpp"
#include "mobility/mobility_model.hpp"
#include "support/rng.hpp"

namespace precinct::mobility {

struct GaussMarkovConfig {
  geo::Rect area{{0.0, 0.0}, {1200.0, 1200.0}};
  double mean_speed = 4.0;     ///< long-run speed the process reverts to
  double speed_sigma = 1.5;    ///< per-step speed randomness
  double heading_sigma = 0.6;  ///< per-step heading randomness (radians)
  double alpha = 0.75;         ///< memory in [0, 1]
  double step_s = 1.0;         ///< discretization step
};

class GaussMarkov final : public MobilityModel {
 public:
  GaussMarkov(std::size_t n_nodes, const GaussMarkovConfig& config,
              std::uint64_t seed);

  [[nodiscard]] geo::Point position_at(std::size_t node, double t) override;
  [[nodiscard]] double speed_at(std::size_t node, double t) override;
  [[nodiscard]] std::size_t node_count() const noexcept override {
    return states_.size();
  }

 private:
  struct State {
    support::Rng rng;
    geo::Point pos;      // position at step_start
    geo::Point prev_pos; // position one step earlier (for interpolation)
    double speed = 0.0;
    double heading = 0.0;
    double step_start = 0.0;
  };

  void advance(State& s, double t) const;
  /// One AR(1) step of speed/heading, reflecting at area edges.
  void step(State& s) const;

  GaussMarkovConfig config_;
  std::vector<State> states_;
};

}  // namespace precinct::mobility
