#include "mobility/manhattan_grid.hpp"

#include <array>
#include <cmath>
#include <stdexcept>

namespace precinct::mobility {

namespace {

constexpr std::array<std::array<std::int32_t, 2>, 4> kHeadings = {
    {{1, 0}, {-1, 0}, {0, 1}, {0, -1}}};

}  // namespace

ManhattanGrid::ManhattanGrid(std::size_t n_nodes,
                             const ManhattanGridConfig& config,
                             std::uint64_t seed)
    : config_(config) {
  if (config.v_min <= 0.0 || config.v_max < config.v_min) {
    throw std::invalid_argument("ManhattanGrid: need 0 < v_min <= v_max");
  }
  if (config.pause_s < 0.0) {
    throw std::invalid_argument("ManhattanGrid: pause must be >= 0");
  }
  if (config.street_spacing_m <= 0.0) {
    throw std::invalid_argument("ManhattanGrid: street spacing must be > 0");
  }
  if (config.turn_probability < 0.0 || config.turn_probability > 1.0) {
    throw std::invalid_argument(
        "ManhattanGrid: turn probability must be in [0, 1]");
  }
  // Streets sit at min + k * spacing.  The area rect is half-open, so a
  // street exactly on the max edge is dropped to keep every intersection
  // inside the region partition.
  auto street_count = [&](double extent) {
    auto n = static_cast<std::size_t>(std::floor(extent /
                                                 config_.street_spacing_m)) +
             1;
    while (n > 1 && static_cast<double>(n - 1) * config_.street_spacing_m >=
                        extent) {
      --n;
    }
    return n;
  };
  nx_ = street_count(config_.area.width());
  ny_ = street_count(config_.area.height());
  if (nx_ < 2 || ny_ < 2) {
    throw std::invalid_argument(
        "ManhattanGrid: area too small for street spacing (need a 2x2 "
        "intersection grid)");
  }

  const support::Rng root(seed);
  states_.reserve(n_nodes);
  for (std::size_t i = 0; i < n_nodes; ++i) {
    LegState s{root.split(i), 0, 0, 0, 0, {}, {}, 0.0, 0.0, 0.0, 0.0};
    s.ix = static_cast<std::int32_t>(s.rng.uniform_int(nx_));
    s.iy = static_cast<std::int32_t>(s.rng.uniform_int(ny_));
    // Uniform legal initial heading (nx_, ny_ >= 2 guarantees a choice).
    std::array<std::array<std::int32_t, 2>, 4> legal{};
    std::size_t n_legal = 0;
    for (const auto& h : kHeadings) {
      const std::int32_t tx = s.ix + h[0];
      const std::int32_t ty = s.iy + h[1];
      if (tx >= 0 && ty >= 0 && tx < static_cast<std::int32_t>(nx_) &&
          ty < static_cast<std::int32_t>(ny_)) {
        legal[n_legal++] = h;
      }
    }
    const auto& pick = legal[s.rng.uniform_int(n_legal)];
    s.dx = pick[0];
    s.dy = pick[1];
    s.from = s.to = intersection(s.ix, s.iy);
    // Start paused at the initial intersection, like RandomWaypoint: the
    // initial topology is the random placement itself.
    s.depart = s.arrive = 0.0;
    s.resume = config_.pause_s;
    states_.push_back(std::move(s));
  }
}

geo::Point ManhattanGrid::intersection(std::int32_t ix,
                                       std::int32_t iy) const noexcept {
  return {config_.area.min.x +
              static_cast<double>(ix) * config_.street_spacing_m,
          config_.area.min.y +
              static_cast<double>(iy) * config_.street_spacing_m};
}

void ManhattanGrid::advance(LegState& s, double t) const {
  while (t > s.resume) {
    const auto in_grid = [&](std::int32_t ix, std::int32_t iy) {
      return ix >= 0 && iy >= 0 && ix < static_cast<std::int32_t>(nx_) &&
             iy < static_cast<std::int32_t>(ny_);
    };
    // Perpendicular exits that stay on the grid.
    std::array<std::array<std::int32_t, 2>, 2> perp{};
    std::size_t n_perp = 0;
    for (const auto& h : kHeadings) {
      const bool perpendicular = (h[0] * s.dx + h[1] * s.dy) == 0;
      if (perpendicular && in_grid(s.ix + h[0], s.iy + h[1])) {
        perp[n_perp++] = h;
      }
    }
    const bool straight_ok = in_grid(s.ix + s.dx, s.iy + s.dy);
    const bool turn = s.rng.uniform() < config_.turn_probability;
    if (n_perp > 0 && (turn || !straight_ok)) {
      const auto& pick = perp[s.rng.uniform_int(n_perp)];
      s.dx = pick[0];
      s.dy = pick[1];
    } else if (!straight_ok) {
      // Dead end on a single street: reverse.
      s.dx = -s.dx;
      s.dy = -s.dy;
    }
    const double depart = s.resume;
    s.from = intersection(s.ix, s.iy);
    s.ix += s.dx;
    s.iy += s.dy;
    s.to = intersection(s.ix, s.iy);
    s.speed = s.rng.uniform(config_.v_min, config_.v_max);
    s.depart = depart;
    s.arrive = depart + geo::distance(s.from, s.to) / s.speed;
    s.resume = s.arrive + config_.pause_s;
  }
}

geo::Point ManhattanGrid::position_at(std::size_t node, double t) {
  LegState& s = states_.at(node);
  advance(s, t);
  if (t >= s.arrive) return s.to;
  if (t <= s.depart) return s.from;
  const double frac = (t - s.depart) / (s.arrive - s.depart);
  return s.from + (s.to - s.from) * frac;
}

double ManhattanGrid::speed_at(std::size_t node, double t) {
  LegState& s = states_.at(node);
  advance(s, t);
  return (t > s.depart && t < s.arrive) ? s.speed : 0.0;
}

}  // namespace precinct::mobility
