// Flood control: duplicate suppression and scope tests shared by the
// network-wide flooding baseline, the expanding-ring baseline and
// PReCinCt's region-scoped floods.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "net/packet.hpp"

namespace precinct::routing {

/// Per-node flood state: remembers which packet ids this node has already
/// processed so each flood visits a node at most once.
class FloodController {
 public:
  explicit FloodController(std::size_t n_nodes) : seen_(n_nodes) {}

  /// Record that `node` processed packet `id`.  Returns true the first
  /// time, false on duplicates.
  bool mark_seen(net::NodeId node, std::uint64_t id);

  /// True if the node already processed this packet id.
  [[nodiscard]] bool has_seen(net::NodeId node, std::uint64_t id) const;

  /// Whether a node should rebroadcast a flood packet: not a duplicate
  /// and TTL not exhausted.  Does NOT mark; callers mark on first receipt
  /// whether or not they forward.
  [[nodiscard]] static bool ttl_allows_forward(const net::Packet& packet) {
    return packet.ttl > 1;
  }

  /// Drop all memory (e.g. between measurement phases).
  void clear();

  /// Total duplicate suppressions observed (diagnostics).
  [[nodiscard]] std::uint64_t duplicates() const noexcept { return dups_; }

 private:
  std::vector<std::unordered_set<std::uint64_t>> seen_;
  std::uint64_t dups_ = 0;
};

}  // namespace precinct::routing
