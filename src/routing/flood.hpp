// Flood control: duplicate suppression and scope tests shared by the
// network-wide flooding baseline, the expanding-ring baseline and
// PReCinCt's region-scoped floods.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.hpp"

namespace precinct::routing {

/// Per-node flood state: remembers which packet ids each node has already
/// processed so each flood visits a node at most once.
///
/// Stored as one flat open-addressing table over (node, id) pairs instead
/// of a per-node std::unordered_set — a flood round touches every node
/// once, so per-node sets meant one cache-missing hash container per hop.
/// Slots are generation-stamped: a slot whose gen differs from the current
/// generation counts as empty, which makes clear() an O(1) generation
/// bump (entries are never deleted individually, so probe chains stay
/// intact).
class FloodController {
 public:
  /// `n_nodes` sizes the initial table: one flood round marks about one
  /// entry per node, so start with room for a few rounds and grow by
  /// doubling as ids accumulate over the run.
  explicit FloodController(std::size_t n_nodes);

  /// Record that `node` processed packet `id`.  Returns true the first
  /// time, false on duplicates.
  bool mark_seen(net::NodeId node, std::uint64_t id);

  /// True if the node already processed this packet id.
  [[nodiscard]] bool has_seen(net::NodeId node, std::uint64_t id) const;

  /// Whether a node should rebroadcast a flood packet: not a duplicate
  /// and TTL not exhausted.  Does NOT mark; callers mark on first receipt
  /// whether or not they forward.
  [[nodiscard]] static bool ttl_allows_forward(const net::Packet& packet) {
    return packet.ttl > 1;
  }

  /// Drop all memory (e.g. between measurement phases).  O(1): bumps the
  /// generation, leaving the table's capacity in place.
  void clear();

  /// Total duplicate suppressions observed (diagnostics).
  [[nodiscard]] std::uint64_t duplicates() const noexcept { return dups_; }

  /// Live (current-generation) entries — diagnostics and tests.
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return slots_.size();
  }

 private:
  struct Slot {
    std::uint64_t id = 0;
    net::NodeId node = 0;
    std::uint32_t gen = 0;  ///< 0 never matches a live generation
  };
  static_assert(sizeof(Slot) == 16);

  [[nodiscard]] static std::uint64_t mix(net::NodeId node,
                                         std::uint64_t id) noexcept;
  void grow();

  std::vector<Slot> slots_;  // power-of-two size
  std::size_t mask_ = 0;
  std::size_t size_ = 0;  // live entries in the current generation
  std::uint32_t gen_ = 1;
  std::uint64_t dups_ = 0;
};

}  // namespace precinct::routing
