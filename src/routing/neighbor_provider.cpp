#include "routing/neighbor_provider.hpp"

#include <algorithm>

namespace precinct::routing {

BeaconNeighborProvider::BeaconNeighborProvider(net::WirelessNet& network,
                                               std::size_t n_nodes,
                                               double lifetime_s)
    : net_(network),
      lifetime_s_(lifetime_s),
      tables_(n_nodes),
      versions_(n_nodes, 1) {}

void BeaconNeighborProvider::on_beacon(net::NodeId receiver,
                                       net::NodeId source, geo::Point pos,
                                       double now_s) {
  tables_.at(receiver)[source] = Entry{pos, now_s};
  ++versions_.at(receiver);
}

void BeaconNeighborProvider::clear_node(net::NodeId node) {
  tables_.at(node).clear();
  ++versions_.at(node);
}

std::vector<net::NodeId> BeaconNeighborProvider::neighbors_of(
    net::NodeId self) {
  std::vector<net::NodeId> out;
  neighbors_into(self, out);
  return out;
}

void BeaconNeighborProvider::neighbors_into(net::NodeId self,
                                            std::vector<net::NodeId>& out) {
  const double now = net_.simulator().now();
  auto& table = tables_.at(self);
  out.clear();
  out.reserve(table.size());
  for (auto it = table.begin(); it != table.end();) {
    if (now - it->second.heard_at > lifetime_s_) {
      it = table.erase(it);  // lazy expiry
    } else {
      out.push_back(it->first);
      ++it;
    }
  }
  std::sort(out.begin(), out.end());  // deterministic order
}

geo::Point BeaconNeighborProvider::position_of(net::NodeId self,
                                               net::NodeId node) {
  if (node == self) return net_.position(self);  // own GPS is always fresh
  const auto& table = tables_.at(self);
  const auto it = table.find(node);
  // Unknown nodes fall back to the last broadcast origin heard... there
  // is none; a safe default is own position (the caller should only ask
  // about table entries).
  return it != table.end() ? it->second.pos : net_.position(self);
}

std::size_t BeaconNeighborProvider::table_size(net::NodeId node) const {
  const double now = net_.simulator().now();
  std::size_t count = 0;
  for (const auto& [id, entry] : tables_.at(node)) {
    if (now - entry.heard_at <= lifetime_s_) ++count;
  }
  return count;
}

}  // namespace precinct::routing
