// GPSR — Greedy Perimeter Stateless Routing (Karp & Kung, MobiCom 2000),
// the geographic routing protocol the paper runs under PReCinCt, extended
// per the paper to route to *regions*: packets are forwarded toward the
// destination region's center, and the first node inside that region
// becomes the broadcast point for the localized flood (§2.2, §6).
//
// Greedy mode forwards to the neighbor geographically closest to the
// destination when that neighbor is closer than the current node.  At a
// local minimum (a "void"), the packet switches to perimeter mode and
// follows the right-hand rule on the Gabriel-graph planarization of the
// connectivity graph until it reaches a node closer to the destination
// than where greedy failed.
#pragma once

#include <optional>
#include <vector>

#include <memory>

#include "geo/geometry.hpp"
#include "net/packet.hpp"
#include "net/wireless_net.hpp"
#include "routing/neighbor_provider.hpp"

namespace precinct::routing {

class Gpsr {
 public:
  /// Perfect neighbor knowledge (owns an oracle provider).
  explicit Gpsr(net::WirelessNet& network)
      : net_(network),
        owned_(std::make_unique<OracleNeighborProvider>(network)),
        provider_(owned_.get()) {}

  /// Forwarding decisions from the given (e.g. beacon-fed) provider;
  /// the node's own position is always its real GPS fix.
  Gpsr(net::WirelessNet& network, NeighborProvider& provider)
      : net_(network), provider_(&provider) {}

  /// Decide the next hop for `packet` held by `self`, toward
  /// packet.dest_location.  Mutates the packet's perimeter-mode state.
  /// Returns nullopt when the packet cannot progress (isolated node or
  /// perimeter loop) and should be dropped or rerouted by the caller.
  [[nodiscard]] std::optional<net::NodeId> next_hop(net::NodeId self,
                                                    net::Packet& packet);

  /// Greedy rule only: the neighbor strictly closer to `dest` than `self`
  /// that minimizes remaining distance; nullopt at a local minimum.
  [[nodiscard]] std::optional<net::NodeId> greedy_next_hop(net::NodeId self,
                                                           geo::Point dest);

  /// Neighbors of `self` that survive Gabriel-graph planarization: edge
  /// (self, v) is kept iff no common neighbor lies strictly inside the
  /// circle whose diameter is the segment self–v.
  [[nodiscard]] std::vector<net::NodeId> planar_neighbors(net::NodeId self);

  /// Cached planarization: recomputed only when the provider's knowledge
  /// version or the sim time changes, so forwarding many packets through a
  /// node within one topology epoch planarizes once.  The reference stays
  /// valid until `self`'s entry is next recomputed (entries are per node).
  [[nodiscard]] const std::vector<net::NodeId>& planar_neighbors_cached(
      net::NodeId self);

 private:
  [[nodiscard]] std::optional<net::NodeId> perimeter_next_hop(
      net::NodeId self, net::Packet& packet);

  void compute_planar(net::NodeId self, std::vector<net::NodeId>& out);

  /// Borrow `self`'s neighbor list for one forwarding decision.  When
  /// this router owns the oracle provider and the radio's neighbor cache
  /// is on, the radio's cached list *is* the provider's answer, so it is
  /// aliased directly instead of copied; any external provider goes
  /// through neighbors_into as before.  The reference is invalidated by
  /// the next neighbor_list call.
  [[nodiscard]] const std::vector<net::NodeId>& neighbor_list(
      net::NodeId self) {
    if (owned_ != nullptr && net_.neighbor_cache_enabled()) {
      return net_.neighbors_cached(self);
    }
    provider_->neighbors_into(self, scratch_neighbors_);
    return scratch_neighbors_;
  }

  /// Where `self` believes `node` is.  When the provider's knowledge is
  /// the substrate's ground truth this devirtualizes to the radio's
  /// SoA-cached position read; otherwise it asks the provider.
  [[nodiscard]] geo::Point pos_of(net::NodeId self, net::NodeId node) {
    return ground_truth_positions_ ? net_.position(node)
                                   : provider_->position_of(self, node);
  }

  struct PlanarCache {
    std::uint64_t version = 0;  // 0 never matches a live version
    double at = -1.0;
    std::vector<net::NodeId> ids;
    /// bearing(self, ids[i]) under the same (at, version) stamp: the
    /// right-hand-rule scan is angle comparisons only, so the atan2s are
    /// paid once per planarization instead of once per packet.
    std::vector<double> bearings;
  };

  net::WirelessNet& net_;
  std::unique_ptr<OracleNeighborProvider> owned_;
  NeighborProvider* provider_;
  bool ground_truth_positions_ = provider_->positions_are_ground_truth();
  std::vector<PlanarCache> planar_cache_;
  std::vector<net::NodeId> scratch_neighbors_;
  std::vector<geo::Point> scratch_points_;  // planarization position batch
};

}  // namespace precinct::routing
