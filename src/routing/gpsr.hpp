// GPSR — Greedy Perimeter Stateless Routing (Karp & Kung, MobiCom 2000),
// the geographic routing protocol the paper runs under PReCinCt, extended
// per the paper to route to *regions*: packets are forwarded toward the
// destination region's center, and the first node inside that region
// becomes the broadcast point for the localized flood (§2.2, §6).
//
// Greedy mode forwards to the neighbor geographically closest to the
// destination when that neighbor is closer than the current node.  At a
// local minimum (a "void"), the packet switches to perimeter mode and
// follows the right-hand rule on the Gabriel-graph planarization of the
// connectivity graph until it reaches a node closer to the destination
// than where greedy failed.
#pragma once

#include <optional>
#include <vector>

#include <memory>

#include "geo/geometry.hpp"
#include "net/packet.hpp"
#include "net/wireless_net.hpp"
#include "routing/neighbor_provider.hpp"

namespace precinct::routing {

class Gpsr {
 public:
  /// Perfect neighbor knowledge (owns an oracle provider).
  explicit Gpsr(net::WirelessNet& network)
      : net_(network),
        owned_(std::make_unique<OracleNeighborProvider>(network)),
        provider_(owned_.get()) {}

  /// Forwarding decisions from the given (e.g. beacon-fed) provider;
  /// the node's own position is always its real GPS fix.
  Gpsr(net::WirelessNet& network, NeighborProvider& provider)
      : net_(network), provider_(&provider) {}

  /// Decide the next hop for `packet` held by `self`, toward
  /// packet.dest_location.  Mutates the packet's perimeter-mode state.
  /// Returns nullopt when the packet cannot progress (isolated node or
  /// perimeter loop) and should be dropped or rerouted by the caller.
  [[nodiscard]] std::optional<net::NodeId> next_hop(net::NodeId self,
                                                    net::Packet& packet);

  /// Greedy rule only: the neighbor strictly closer to `dest` than `self`
  /// that minimizes remaining distance; nullopt at a local minimum.
  [[nodiscard]] std::optional<net::NodeId> greedy_next_hop(net::NodeId self,
                                                           geo::Point dest);

  /// Neighbors of `self` that survive Gabriel-graph planarization: edge
  /// (self, v) is kept iff no common neighbor lies strictly inside the
  /// circle whose diameter is the segment self–v.
  [[nodiscard]] std::vector<net::NodeId> planar_neighbors(net::NodeId self);

  /// Cached planarization: recomputed only when the provider's knowledge
  /// version or the sim time changes, so forwarding many packets through a
  /// node within one topology epoch planarizes once.  The reference stays
  /// valid until `self`'s entry is next recomputed (entries are per node).
  [[nodiscard]] const std::vector<net::NodeId>& planar_neighbors_cached(
      net::NodeId self);

 private:
  [[nodiscard]] std::optional<net::NodeId> perimeter_next_hop(
      net::NodeId self, net::Packet& packet);

  void compute_planar(net::NodeId self, std::vector<net::NodeId>& out);

  struct PlanarCache {
    std::uint64_t version = 0;  // 0 never matches a live version
    double at = -1.0;
    std::vector<net::NodeId> ids;
  };

  net::WirelessNet& net_;
  std::unique_ptr<OracleNeighborProvider> owned_;
  NeighborProvider* provider_;
  std::vector<PlanarCache> planar_cache_;
  std::vector<net::NodeId> scratch_neighbors_;
};

}  // namespace precinct::routing
