#include "routing/flood.hpp"

#include <algorithm>

namespace precinct::routing {

namespace {

[[nodiscard]] std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

FloodController::FloodController(std::size_t n_nodes)
    : slots_(round_up_pow2(std::max<std::size_t>(256, n_nodes * 8))) {
  mask_ = slots_.size() - 1;
}

std::uint64_t FloodController::mix(net::NodeId node,
                                   std::uint64_t id) noexcept {
  // splitmix64 finalizer over the combined pair: packet ids are
  // sequential, so the raw bits must be scattered before masking.
  std::uint64_t x =
      id + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(node) + 1);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

bool FloodController::mark_seen(net::NodeId node, std::uint64_t id) {
  // Keep the load factor under 3/4; growing up front keeps the probe
  // below valid for the whole insertion.
  if ((size_ + 1) * 4 > slots_.size() * 3) grow();
  std::size_t i = static_cast<std::size_t>(mix(node, id)) & mask_;
  while (true) {
    Slot& s = slots_[i];
    if (s.gen != gen_) {  // empty (or stale from a cleared generation)
      s.id = id;
      s.node = node;
      s.gen = gen_;
      ++size_;
      return true;
    }
    if (s.id == id && s.node == node) {
      ++dups_;
      return false;
    }
    i = (i + 1) & mask_;
  }
}

bool FloodController::has_seen(net::NodeId node, std::uint64_t id) const {
  std::size_t i = static_cast<std::size_t>(mix(node, id)) & mask_;
  while (true) {
    const Slot& s = slots_[i];
    if (s.gen != gen_) return false;
    if (s.id == id && s.node == node) return true;
    i = (i + 1) & mask_;
  }
}

void FloodController::grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  mask_ = slots_.size() - 1;
  for (const Slot& s : old) {
    if (s.gen != gen_) continue;  // stale generations are dropped
    std::size_t i = static_cast<std::size_t>(mix(s.node, s.id)) & mask_;
    while (slots_[i].gen == gen_) i = (i + 1) & mask_;
    slots_[i] = s;
  }
}

void FloodController::clear() {
  ++gen_;
  if (gen_ == 0) {
    // Generation counter wrapped: entries stamped with the reused values
    // would read as live, so pay one full reset every 2^32 clears.
    std::fill(slots_.begin(), slots_.end(), Slot{});
    gen_ = 1;
  }
  size_ = 0;
  dups_ = 0;
}

}  // namespace precinct::routing
