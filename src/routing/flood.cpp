#include "routing/flood.hpp"

namespace precinct::routing {

bool FloodController::mark_seen(net::NodeId node, std::uint64_t id) {
  const bool inserted = seen_.at(node).insert(id).second;
  if (!inserted) ++dups_;
  return inserted;
}

bool FloodController::has_seen(net::NodeId node, std::uint64_t id) const {
  const auto& s = seen_.at(node);
  return s.find(id) != s.end();
}

void FloodController::clear() {
  for (auto& s : seen_) s.clear();
  dups_ = 0;
}

}  // namespace precinct::routing
