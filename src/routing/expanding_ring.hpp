// Expanding-ring search (Lv et al. [12] in the paper): flood with a small
// TTL and retry with progressively larger TTLs until the data is found.
#pragma once

#include <vector>

namespace precinct::routing {

struct ExpandingRingConfig {
  int initial_ttl = 1;
  int growth_factor = 2;   ///< TTL multiplies by this on each retry
  int max_ttl = 16;        ///< final attempt's TTL cap
  double retry_wait_s = 1.0;  ///< time to wait for a response per ring
};

/// The TTL schedule an expanding-ring search walks through: initial_ttl,
/// then multiplied by growth_factor until max_ttl (max_ttl always included
/// as the last ring).
[[nodiscard]] std::vector<int> expanding_ring_ttls(
    const ExpandingRingConfig& config);

}  // namespace precinct::routing
