// Neighbor knowledge for geographic forwarding.
//
// GPSR decides next hops from what a node *believes* about its
// neighborhood.  The oracle provider reads the radio substrate directly
// (perfect, instantaneous knowledge — the default, and what most
// simulators use).  The beacon provider implements Karp & Kung's actual
// mechanism: periodic position beacons feed per-node tables whose
// entries go stale and expire, so forwarding can aim at a neighbor that
// has already moved away.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geo/geometry.hpp"
#include "net/packet.hpp"
#include "net/wireless_net.hpp"

namespace precinct::routing {

class NeighborProvider {
 public:
  virtual ~NeighborProvider() = default;

  /// Node ids `self` currently believes are its neighbors.
  [[nodiscard]] virtual std::vector<net::NodeId> neighbors_of(
      net::NodeId self) = 0;

  /// Where `self` believes `node` is.  Only meaningful for ids returned
  /// by neighbors_of(self) (and for self itself).
  [[nodiscard]] virtual geo::Point position_of(net::NodeId self,
                                               net::NodeId node) = 0;

  /// Into-scratch variant of neighbors_of: replaces `out`'s contents,
  /// reusing its capacity.  Default falls back to the allocating call.
  virtual void neighbors_into(net::NodeId self, std::vector<net::NodeId>& out) {
    out = neighbors_of(self);
  }

  /// Monotone version of `self`'s neighborhood knowledge: at a fixed sim
  /// time, neighbors_of(self) cannot change while this value is stable.
  /// Callers key derived caches (e.g. GPSR planarization) on it.  The
  /// default always invalidates, which is safe for any provider.
  [[nodiscard]] virtual std::uint64_t knowledge_version(net::NodeId self) {
    (void)self;
    return ++fallback_version_;
  }

  /// True when position_of(self, node) is exactly the radio substrate's
  /// current ground truth for every node (i.e. equals
  /// WirelessNet::position(node)).  Lets GPSR read positions straight
  /// from the substrate's SoA-cached columns instead of paying a virtual
  /// call per neighbor; believed-position providers (beacons) return
  /// false and keep the virtual path.
  [[nodiscard]] virtual bool positions_are_ground_truth() const noexcept {
    return false;
  }

 private:
  std::uint64_t fallback_version_ = 0;
};

/// Perfect knowledge straight from the radio substrate.
class OracleNeighborProvider final : public NeighborProvider {
 public:
  explicit OracleNeighborProvider(net::WirelessNet& network)
      : net_(network) {}

  [[nodiscard]] std::vector<net::NodeId> neighbors_of(
      net::NodeId self) override {
    return net_.neighbors(self);
  }
  void neighbors_into(net::NodeId self,
                      std::vector<net::NodeId>& out) override {
    net_.neighbors(self, out);
  }
  [[nodiscard]] geo::Point position_of(net::NodeId,
                                       net::NodeId node) override {
    return net_.position(node);
  }
  [[nodiscard]] std::uint64_t knowledge_version(net::NodeId) override {
    return net_.topology_epoch();
  }
  [[nodiscard]] bool positions_are_ground_truth() const noexcept override {
    return true;
  }

 private:
  net::WirelessNet& net_;
};

/// Beacon-fed neighbor tables (GPSR §3 of Karp & Kung).  The owner is
/// responsible for delivering received beacons via on_beacon(); entries
/// not refreshed within `lifetime_s` expire lazily.
class BeaconNeighborProvider final : public NeighborProvider {
 public:
  BeaconNeighborProvider(net::WirelessNet& network, std::size_t n_nodes,
                         double lifetime_s);

  /// Record that `receiver` heard a beacon from `source` at `pos`.
  void on_beacon(net::NodeId receiver, net::NodeId source, geo::Point pos,
                 double now_s);

  /// Forget everything a node has learned (e.g. on revival after crash).
  void clear_node(net::NodeId node);

  [[nodiscard]] std::vector<net::NodeId> neighbors_of(
      net::NodeId self) override;
  void neighbors_into(net::NodeId self,
                      std::vector<net::NodeId>& out) override;
  [[nodiscard]] geo::Point position_of(net::NodeId self,
                                       net::NodeId node) override;
  /// Bumped on every beacon receipt / table clear for `self`.
  [[nodiscard]] std::uint64_t knowledge_version(net::NodeId self) override {
    return versions_.at(self);
  }

  [[nodiscard]] double lifetime_s() const noexcept { return lifetime_s_; }
  /// Live (unexpired) entry count for a node's table.
  [[nodiscard]] std::size_t table_size(net::NodeId node) const;

 private:
  struct Entry {
    geo::Point pos;
    double heard_at = -1.0;
  };

  net::WirelessNet& net_;
  double lifetime_s_;
  std::vector<std::unordered_map<net::NodeId, Entry>> tables_;
  std::vector<std::uint64_t> versions_;
};

}  // namespace precinct::routing
