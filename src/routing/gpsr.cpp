#include "routing/gpsr.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

namespace precinct::routing {

namespace {

/// Counter-clockwise angular distance from angle `a` to angle `b`.
double ccw_delta(double a, double b) noexcept {
  double d = b - a;
  while (d <= 0.0) d += 2.0 * std::numbers::pi;
  while (d > 2.0 * std::numbers::pi) d -= 2.0 * std::numbers::pi;
  return d;
}

}  // namespace

std::optional<net::NodeId> Gpsr::greedy_next_hop(net::NodeId self,
                                                 geo::Point dest) {
  const geo::Point here = net_.position(self);
  // Squared distances: sqrt is monotone, so the argmin (and the "closer
  // than self" admission test) are unchanged, and the k+1 sqrts per
  // decision disappear.
  const double my_dist = geo::distance_sq(here, dest);
  net::NodeId best = net::kNoNode;
  double best_dist = my_dist;
  for (const net::NodeId n : neighbor_list(self)) {
    const double d = geo::distance_sq(pos_of(self, n), dest);
    if (d < best_dist || (d == best_dist && best != net::kNoNode && n < best)) {
      best_dist = d;
      best = n;
    }
  }
  if (best == net::kNoNode) return std::nullopt;
  return best;
}

void Gpsr::compute_planar(net::NodeId self, std::vector<net::NodeId>& out) {
  const geo::Point here = net_.position(self);
  const auto& all = neighbor_list(self);
  // Materialize believed positions once: the Gabriel test below is
  // O(k^2) position reads, and position_of is stable within this call.
  scratch_points_.clear();
  scratch_points_.reserve(all.size());
  for (const net::NodeId v : all) scratch_points_.push_back(pos_of(self, v));
  const std::size_t k = all.size();
  out.clear();
  out.reserve(k);
  for (std::size_t vi = 0; vi < k; ++vi) {
    const geo::Point pv = scratch_points_[vi];
    const geo::Point mid{(here.x + pv.x) * 0.5, (here.y + pv.y) * 0.5};
    const double radius_sq = geo::distance_sq(here, pv) * 0.25;
    bool witnessed = false;
    for (std::size_t wi = 0; wi < k; ++wi) {
      if (wi != vi &&
          geo::distance_sq(scratch_points_[wi], mid) < radius_sq) {
        witnessed = true;
        break;
      }
    }
    if (!witnessed) out.push_back(all[vi]);
  }
}

const std::vector<net::NodeId>& Gpsr::planar_neighbors_cached(
    net::NodeId self) {
  if (planar_cache_.size() < net_.node_count()) {
    planar_cache_.resize(net_.node_count());
  }
  PlanarCache& c = planar_cache_[self];
  const double now = net_.simulator().now();
  if (!net_.neighbor_cache_enabled() || c.at != now ||
      c.version != provider_->knowledge_version(self)) {
    compute_planar(self, c.ids);
    // Bearings are stable under the same stamp, so the right-hand-rule
    // scans over this planarization never touch atan2 again.
    const geo::Point here = net_.position(self);
    c.bearings.resize(c.ids.size());
    for (std::size_t i = 0; i < c.ids.size(); ++i) {
      c.bearings[i] = geo::bearing(here, pos_of(self, c.ids[i]));
    }
    // Stamp after computing: the neighbor query may rebuild the spatial
    // grid and advance the provider's version.
    c.version = provider_->knowledge_version(self);
    c.at = now;
  }
  return c.ids;
}

std::vector<net::NodeId> Gpsr::planar_neighbors(net::NodeId self) {
  return planar_neighbors_cached(self);
}

std::optional<net::NodeId> Gpsr::perimeter_next_hop(net::NodeId self,
                                                    net::Packet& packet) {
  const auto& planar = planar_neighbors_cached(self);
  if (planar.empty()) return std::nullopt;
  const auto& bearings = planar_cache_[self].bearings;
  const geo::Point here = net_.position(self);

  // Right-hand rule: take the first edge counterclockwise from the
  // reference direction (the edge the packet arrived on, or the direction
  // toward the destination when entering perimeter mode).  Per-edge
  // bearings come from the planar cache; only the reference direction is
  // packet-dependent.
  const geo::Point ref_point = packet.src != net::kNoNode && packet.perimeter
                                   ? pos_of(self, packet.src)
                                   : packet.dest_location;
  const double ref_angle = geo::bearing(here, ref_point);

  net::NodeId best = net::kNoNode;
  double best_delta = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < planar.size(); ++i) {
    const net::NodeId v = planar[i];
    if (v == packet.src && planar.size() > 1) continue;  // don't bounce back
    const double delta = ccw_delta(ref_angle, bearings[i]);
    if (delta < best_delta) {
      best_delta = delta;
      best = v;
    }
  }
  if (best == net::kNoNode) best = planar.front();

  // Loop detection (GPSR's e0 test): if the walk is about to retraverse
  // the first perimeter edge — same tail node, same head node — the
  // destination is unreachable from this face.
  if (packet.perimeter && self == packet.perimeter_entry_node &&
      best == packet.perimeter_first_hop && packet.hops > 1) {
    return std::nullopt;
  }
  if (!packet.perimeter) {
    packet.perimeter = true;
    packet.perimeter_entry = here;
    packet.perimeter_entry_node = self;
    packet.perimeter_first_hop = best;
  }
  return best;
}

std::optional<net::NodeId> Gpsr::next_hop(net::NodeId self,
                                          net::Packet& packet) {
  const geo::Point here = net_.position(self);
  if (packet.perimeter) {
    // Exit perimeter mode as soon as we are closer to the destination
    // than the point where greedy forwarding failed.
    if (geo::distance(here, packet.dest_location) <
        geo::distance(packet.perimeter_entry, packet.dest_location)) {
      packet.perimeter = false;
      packet.perimeter_entry_node = net::kNoNode;
      packet.perimeter_first_hop = net::kNoNode;
    } else {
      return perimeter_next_hop(self, packet);
    }
  }
  if (auto hop = greedy_next_hop(self, packet.dest_location)) return hop;
  return perimeter_next_hop(self, packet);
}

}  // namespace precinct::routing
