#include "routing/gpsr.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

namespace precinct::routing {

namespace {

/// Counter-clockwise angular distance from angle `a` to angle `b`.
double ccw_delta(double a, double b) noexcept {
  double d = b - a;
  while (d <= 0.0) d += 2.0 * std::numbers::pi;
  while (d > 2.0 * std::numbers::pi) d -= 2.0 * std::numbers::pi;
  return d;
}

}  // namespace

std::optional<net::NodeId> Gpsr::greedy_next_hop(net::NodeId self,
                                                 geo::Point dest) {
  const geo::Point here = net_.position(self);
  const double my_dist = geo::distance(here, dest);
  net::NodeId best = net::kNoNode;
  double best_dist = my_dist;
  provider_->neighbors_into(self, scratch_neighbors_);
  for (const net::NodeId n : scratch_neighbors_) {
    const double d = geo::distance(provider_->position_of(self, n), dest);
    if (d < best_dist || (d == best_dist && best != net::kNoNode && n < best)) {
      best_dist = d;
      best = n;
    }
  }
  if (best == net::kNoNode) return std::nullopt;
  return best;
}

void Gpsr::compute_planar(net::NodeId self, std::vector<net::NodeId>& out) {
  const geo::Point here = net_.position(self);
  provider_->neighbors_into(self, scratch_neighbors_);
  const auto& all = scratch_neighbors_;
  out.clear();
  out.reserve(all.size());
  for (const net::NodeId v : all) {
    const geo::Point pv = provider_->position_of(self, v);
    const geo::Point mid{(here.x + pv.x) * 0.5, (here.y + pv.y) * 0.5};
    const double radius_sq = geo::distance_sq(here, pv) * 0.25;
    const bool witnessed =
        std::any_of(all.begin(), all.end(), [&](net::NodeId w) {
          return w != v && geo::distance_sq(provider_->position_of(self, w),
                                            mid) < radius_sq;
        });
    if (!witnessed) out.push_back(v);
  }
}

const std::vector<net::NodeId>& Gpsr::planar_neighbors_cached(
    net::NodeId self) {
  if (planar_cache_.size() < net_.node_count()) {
    planar_cache_.resize(net_.node_count());
  }
  PlanarCache& c = planar_cache_[self];
  const double now = net_.simulator().now();
  if (!net_.neighbor_cache_enabled() || c.at != now ||
      c.version != provider_->knowledge_version(self)) {
    compute_planar(self, c.ids);
    // Stamp after computing: the neighbor query may rebuild the spatial
    // grid and advance the provider's version.
    c.version = provider_->knowledge_version(self);
    c.at = now;
  }
  return c.ids;
}

std::vector<net::NodeId> Gpsr::planar_neighbors(net::NodeId self) {
  return planar_neighbors_cached(self);
}

std::optional<net::NodeId> Gpsr::perimeter_next_hop(net::NodeId self,
                                                    net::Packet& packet) {
  const auto& planar = planar_neighbors_cached(self);
  if (planar.empty()) return std::nullopt;
  const geo::Point here = net_.position(self);

  // Right-hand rule: take the first edge counterclockwise from the
  // reference direction (the edge the packet arrived on, or the direction
  // toward the destination when entering perimeter mode).
  const geo::Point ref_point = packet.src != net::kNoNode && packet.perimeter
                                   ? provider_->position_of(self, packet.src)
                                   : packet.dest_location;
  const double ref_angle = geo::bearing(here, ref_point);

  net::NodeId best = net::kNoNode;
  double best_delta = std::numeric_limits<double>::infinity();
  for (const net::NodeId v : planar) {
    if (v == packet.src && planar.size() > 1) continue;  // don't bounce back
    const double delta =
        ccw_delta(ref_angle, geo::bearing(here, provider_->position_of(self, v)));
    if (delta < best_delta) {
      best_delta = delta;
      best = v;
    }
  }
  if (best == net::kNoNode) best = planar.front();

  // Loop detection (GPSR's e0 test): if the walk is about to retraverse
  // the first perimeter edge — same tail node, same head node — the
  // destination is unreachable from this face.
  if (packet.perimeter && self == packet.perimeter_entry_node &&
      best == packet.perimeter_first_hop && packet.hops > 1) {
    return std::nullopt;
  }
  if (!packet.perimeter) {
    packet.perimeter = true;
    packet.perimeter_entry = here;
    packet.perimeter_entry_node = self;
    packet.perimeter_first_hop = best;
  }
  return best;
}

std::optional<net::NodeId> Gpsr::next_hop(net::NodeId self,
                                          net::Packet& packet) {
  const geo::Point here = net_.position(self);
  if (packet.perimeter) {
    // Exit perimeter mode as soon as we are closer to the destination
    // than the point where greedy forwarding failed.
    if (geo::distance(here, packet.dest_location) <
        geo::distance(packet.perimeter_entry, packet.dest_location)) {
      packet.perimeter = false;
      packet.perimeter_entry_node = net::kNoNode;
      packet.perimeter_first_hop = net::kNoNode;
    } else {
      return perimeter_next_hop(self, packet);
    }
  }
  if (auto hop = greedy_next_hop(self, packet.dest_location)) return hop;
  return perimeter_next_hop(self, packet);
}

}  // namespace precinct::routing
