#include "routing/expanding_ring.hpp"

#include <algorithm>
#include <stdexcept>

namespace precinct::routing {

std::vector<int> expanding_ring_ttls(const ExpandingRingConfig& config) {
  if (config.initial_ttl < 1 || config.growth_factor < 2 ||
      config.max_ttl < config.initial_ttl) {
    throw std::invalid_argument("expanding_ring_ttls: bad config");
  }
  std::vector<int> ttls;
  for (int ttl = config.initial_ttl; ttl < config.max_ttl;
       ttl *= config.growth_factor) {
    ttls.push_back(ttl);
  }
  ttls.push_back(config.max_ttl);
  return ttls;
}

}  // namespace precinct::routing
