// Deterministic discrete-event simulation engine.
//
// Replaces the paper's use of ns-2: events are (time, sequence) ordered so
// ties break by insertion order and every run with the same seed replays
// identically.  The engine is single-threaded by design — parallelism in
// this codebase lives one level up, across independent scenario runs.
//
// Hot-path internals (DESIGN.md §"Event-queue internals"): events live in a
// chunked slot arena (stable addresses, intrusive free list, no realloc
// moves) and are ordered by an indexed 4-ary min-heap of 16-byte
// (time, seq|slot) entries.  Callbacks are small-buffer-optimized
// (EventCallback), so steady-state scheduling allocates nothing; cancel()
// is an O(1) tombstone on the pooled slot, skipped when popped.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/event_callback.hpp"

namespace precinct::sim {

/// Simulation time in seconds.
using SimTime = double;

/// Handle used to cancel a scheduled event.  Holds the event's pool slot
/// and the slot's generation at scheduling time, so a handle kept past the
/// event's execution (and the slot's reuse) can never cancel a stranger.
class EventHandle {
 public:
  EventHandle() = default;

  [[nodiscard]] bool valid() const noexcept { return gen_ != 0; }

 private:
  friend class Simulator;
  EventHandle(std::uint32_t slot, std::uint32_t gen) noexcept
      : slot_(slot), gen_(gen) {}
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;  // 0 = invalid (live slots start at generation 1)
};

/// Event-driven simulator with a monotonically advancing clock.
class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedule `fn` to run `delay` seconds from now (delay clamped to >= 0).
  EventHandle schedule(SimTime delay, EventCallback fn) {
    const SimTime d = delay > 0.0 ? delay : 0.0;
    return schedule_impl(now_ + d, std::move(fn));
  }

  /// Schedule `fn` at an absolute time (clamped to >= now()).
  EventHandle schedule_at(SimTime when, EventCallback fn) {
    return schedule_impl(when > now_ ? when : now_, std::move(fn));
  }

  /// Cancel a previously scheduled event: O(1) tombstone on the pooled
  /// slot.  No-op if already fired or already cancelled.  Returns true if
  /// the event was live.
  bool cancel(EventHandle h);

  /// Run events until the queue drains or the clock passes `end_time`.
  /// Events stamped later than end_time remain queued and unexecuted;
  /// the clock finishes at exactly end_time.
  void run_until(SimTime end_time);

  /// Run until the queue is completely empty.
  void run_all();

  /// Number of events executed so far.
  [[nodiscard]] std::uint64_t events_executed() const noexcept {
    return executed_;
  }

  /// Number of events currently pending (including cancelled-but-queued).
  [[nodiscard]] std::size_t pending() const noexcept {
    return heap_.size() + (run_.size() - run_pos_);
  }

  /// Pre-size the slot pool and heap for `n` concurrently pending events.
  void reserve(std::size_t n);

  /// Install an observer invoked synchronously after every executed
  /// event (the invariant checker's audit point).  The hook is NOT an
  /// event: it never advances the clock, never counts toward
  /// events_executed(), and an empty hook leaves the drain loop
  /// untouched, so enabling an observe-only hook cannot perturb a run.
  /// Pass an empty function to detach.  The hook must not schedule,
  /// cancel or run events.
  void set_post_event_hook(EventCallback hook) {
    post_event_ = std::move(hook);
  }

 private:
  // Bookkeeping fields lead and the callback's storage sits last, so
  // scheduling or firing an event with a small capture touches only the
  // front of the slot — usually a single cache line.
  struct Slot {
    std::uint32_t generation = 1;
    std::uint32_t next_free = 0;  // intrusive free list link
    bool live = false;            // scheduled, not yet fired or recycled
    bool cancelled = false;       // tombstone: recycle silently when popped
    EventCallback fn;
  };

  // Heap entries pack (seq, slot) into one key: seq in the high 40 bits so
  // key order *is* insertion order (seq is unique), slot in the low 24.
  // Bounds: < 2^24 concurrently pending events, < 2^40 events per run.
  struct HeapEntry {
    SimTime time;
    std::uint64_t key;
  };
  static constexpr unsigned kSlotBits = 24;
  static constexpr std::uint32_t kSlotMask = (1u << kSlotBits) - 1u;
  static constexpr std::uint32_t kNullSlot = ~0u;
  static constexpr std::size_t kArity = 4;
  // Slots live in fixed 512-entry blocks: addresses stay stable across
  // arena growth, so a running callback's captures never move under it.
  static constexpr unsigned kBlockShift = 9;
  static constexpr std::size_t kBlockSize = std::size_t{1} << kBlockShift;

  // Bitwise ops on purpose: all three compares evaluate unconditionally and
  // combine without branches, so the heap sifts (whose outcomes are
  // data-random and unpredictable) compile to cmov instead of mispredicts.
  static bool before(const HeapEntry& a, const HeapEntry& b) noexcept {
    return (a.time < b.time) |
           ((a.time == b.time) & (a.key < b.key));
  }

  [[nodiscard]] Slot& slot_ref(std::uint32_t slot) noexcept {
    return blocks_[slot >> kBlockShift][slot & (kBlockSize - 1)];
  }

  // Draining a large batch pops ready events through a sorted run instead
  // of one-by-one heap pops: refill_run() moves every entry with
  // time <= bound out of the heap, sorts them (bucket sort on the time's
  // bit pattern — order-preserving for the engine's non-negative times —
  // with a comparison-sort fallback on skew), and drain() then consumes
  // the run sequentially, merging against the heap root for events
  // scheduled mid-drain.  The merge uses the same (time, key) order as the
  // heap, so execution order is bit-identical to pure heap pops.
  static constexpr std::size_t kBatchMin = 64;

  EventHandle schedule_impl(SimTime when, EventCallback&& fn);
  [[nodiscard]] std::uint32_t alloc_slot();
  void recycle_slot(std::uint32_t slot);
  void heap_push(HeapEntry entry);
  void heap_pop_root();
  void heapify();
  void refill_run(SimTime bound);
  void sort_run();
  /// Pops ready events (time <= bound) and executes non-cancelled ones.
  void drain(SimTime bound);

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  EventCallback post_event_;  ///< observe-only; see set_post_event_hook
  std::vector<HeapEntry> heap_;
  std::vector<HeapEntry> run_;   // sorted ready batch, consumed from run_pos_
  std::size_t run_pos_ = 0;
  std::vector<HeapEntry> sort_scratch_;
  std::vector<std::uint32_t> bucket_hist_;
  std::vector<std::unique_ptr<Slot[]>> blocks_;
  std::uint32_t next_unused_ = 0;      // first never-allocated slot index
  std::uint32_t free_head_ = kNullSlot;
};

}  // namespace precinct::sim
