// Deterministic discrete-event simulation engine.
//
// Replaces the paper's use of ns-2: events are (time, sequence) ordered so
// ties break by insertion order and every run with the same seed replays
// identically.  The engine is single-threaded by design — parallelism in
// this codebase lives one level up, across independent scenario runs.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace precinct::sim {

/// Simulation time in seconds.
using SimTime = double;

/// Handle used to cancel a scheduled event.  Cancellation is lazy: the
/// event stays queued but its callback is skipped when popped.
class EventHandle {
 public:
  EventHandle() = default;

  [[nodiscard]] bool valid() const noexcept { return id_ != 0; }

 private:
  friend class Simulator;
  explicit EventHandle(std::uint64_t id) noexcept : id_(id) {}
  std::uint64_t id_ = 0;
};

/// Event-driven simulator with a monotonically advancing clock.
class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedule `fn` to run `delay` seconds from now (delay clamped to >= 0).
  EventHandle schedule(SimTime delay, std::function<void()> fn);

  /// Schedule `fn` at an absolute time (clamped to >= now()).
  EventHandle schedule_at(SimTime when, std::function<void()> fn);

  /// Cancel a previously scheduled event.  No-op if already fired or
  /// already cancelled.  Returns true if the event was live.
  bool cancel(EventHandle h);

  /// Run events until the queue drains or the clock passes `end_time`.
  /// Events stamped later than end_time remain queued and unexecuted;
  /// the clock finishes at exactly end_time.
  void run_until(SimTime end_time);

  /// Run until the queue is completely empty.
  void run_all();

  /// Number of events executed so far.
  [[nodiscard]] std::uint64_t events_executed() const noexcept {
    return executed_;
  }

  /// Number of events currently pending (including cancelled-but-queued).
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;  // insertion order breaks time ties deterministically
    std::uint64_t id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  [[nodiscard]] bool is_cancelled(std::uint64_t id) const;
  void forget_cancelled(std::uint64_t id);

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::vector<std::uint64_t> cancelled_;  // sorted id list; stays tiny
};

}  // namespace precinct::sim
