#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>

namespace precinct::sim {

EventHandle Simulator::schedule(SimTime delay, std::function<void()> fn) {
  return schedule_at(now_ + std::max(0.0, delay), std::move(fn));
}

EventHandle Simulator::schedule_at(SimTime when, std::function<void()> fn) {
  assert(fn);
  const std::uint64_t id = next_id_++;
  queue_.push(Event{std::max(when, now_), next_seq_++, id, std::move(fn)});
  return EventHandle(id);
}

bool Simulator::cancel(EventHandle h) {
  if (!h.valid() || h.id_ >= next_id_) return false;
  if (is_cancelled(h.id_)) return false;
  // We cannot probe the queue for liveness cheaply; treat ids as one-shot.
  // Recording an already-fired id is harmless (it is never popped again),
  // but we keep the cancelled list tidy by pruning when events fire.
  const auto it = std::lower_bound(cancelled_.begin(), cancelled_.end(), h.id_);
  cancelled_.insert(it, h.id_);
  return true;
}

bool Simulator::is_cancelled(std::uint64_t id) const {
  return std::binary_search(cancelled_.begin(), cancelled_.end(), id);
}

void Simulator::forget_cancelled(std::uint64_t id) {
  const auto it = std::lower_bound(cancelled_.begin(), cancelled_.end(), id);
  if (it != cancelled_.end() && *it == id) cancelled_.erase(it);
}

void Simulator::run_until(SimTime end_time) {
  while (!queue_.empty() && queue_.top().time <= end_time) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    if (is_cancelled(ev.id)) {
      forget_cancelled(ev.id);
      continue;
    }
    ++executed_;
    ev.fn();
  }
  now_ = std::max(now_, end_time);
}

void Simulator::run_all() {
  while (!queue_.empty()) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    if (is_cancelled(ev.id)) {
      forget_cancelled(ev.id);
      continue;
    }
    ++executed_;
    ev.fn();
  }
}

}  // namespace precinct::sim
