#include "sim/simulator.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>
#include <limits>

#if defined(__GNUC__) || defined(__clang__)
#define PRECINCT_PREFETCH(addr) __builtin_prefetch(addr)
#else
#define PRECINCT_PREFETCH(addr) ((void)0)
#endif

namespace precinct::sim {

EventHandle Simulator::schedule_impl(SimTime when, EventCallback&& fn) {
  assert(fn);
  const std::uint32_t slot = alloc_slot();
  Slot& s = slot_ref(slot);
  s.live = true;
  s.cancelled = false;
  s.fn = std::move(fn);
  assert(next_seq_ < (std::uint64_t{1} << (64 - kSlotBits)));
  heap_push(HeapEntry{when, (next_seq_++ << kSlotBits) | slot});
  return EventHandle(slot, s.generation);
}

bool Simulator::cancel(EventHandle h) {
  if (!h.valid() || h.slot_ >= next_unused_) return false;
  Slot& s = slot_ref(h.slot_);
  if (s.generation != h.gen_ || !s.live || s.cancelled) return false;
  s.cancelled = true;
  s.fn.reset();  // release captured state now; the heap entry stays queued
  return true;
}

std::uint32_t Simulator::alloc_slot() {
  if (free_head_ != kNullSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = slot_ref(slot).next_free;
    return slot;
  }
  if (next_unused_ == blocks_.size() << kBlockShift) {
    blocks_.push_back(std::make_unique<Slot[]>(kBlockSize));
  }
  assert(next_unused_ < kSlotMask);
  return next_unused_++;
}

void Simulator::recycle_slot(std::uint32_t slot) {
  Slot& s = slot_ref(slot);
  s.live = false;
  s.cancelled = false;
  s.fn.reset();
  if (++s.generation == 0) s.generation = 1;  // 0 is the invalid-handle mark
  s.next_free = free_head_;
  free_head_ = slot;
}

void Simulator::reserve(std::size_t n) {
  heap_.reserve(n);
  while (blocks_.size() << kBlockShift < n) {
    blocks_.push_back(std::make_unique<Slot[]>(kBlockSize));
  }
}

// Both sifts percolate a hole instead of swapping: one write per level
// plus a final store, rather than three.

void Simulator::heap_push(HeapEntry entry) {
  std::size_t i = heap_.size();
  heap_.push_back(entry);  // placeholder; overwritten below
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!before(entry, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = entry;
}

void Simulator::heap_pop_root() {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  // Bottom-up pop: percolate the hole to a leaf along the min-child path
  // without comparing against `last` (it came from the bottom, so it nearly
  // always belongs near a leaf), then sift it up the few levels it needs.
  // This trades an unpredictable break-branch per level for an ascend loop
  // that usually exits immediately; the child scans below are branchless.
  std::size_t i = 0;
  for (;;) {
    const std::size_t first_child = i * kArity + 1;
    if (first_child >= n) break;
    std::size_t best = first_child;
    const std::size_t last_child = std::min(first_child + kArity, n);
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      best = before(heap_[c], heap_[best]) ? c : best;
    }
    heap_[i] = heap_[best];
    i = best;
  }
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!before(last, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = last;
}

// Floyd heapify: sift each internal node down, leaves upward.  O(n), used
// once per refill on the not-yet-ready remainder.
void Simulator::heapify() {
  const std::size_t n = heap_.size();
  if (n < 2) return;
  for (std::size_t i = (n - 2) / kArity + 1; i-- > 0;) {
    const HeapEntry e = heap_[i];
    std::size_t hole = i;
    for (;;) {
      const std::size_t first_child = hole * kArity + 1;
      if (first_child >= n) break;
      std::size_t best = first_child;
      const std::size_t last_child = std::min(first_child + kArity, n);
      for (std::size_t c = first_child + 1; c < last_child; ++c) {
        best = before(heap_[c], heap_[best]) ? c : best;
      }
      if (!before(heap_[best], e)) break;
      heap_[hole] = heap_[best];
      hole = best;
    }
    heap_[hole] = e;
  }
}

// Bucket sort run_ by (time, key).  Times are non-negative doubles, whose
// IEEE bit patterns compare like unsigned integers, so a linear map of the
// bit range spreads entries across ~2n buckets; a stable counting scatter
// plus an insertion-sort finish (elements only move within one bucket)
// orders the batch in O(n) expected time.  Skewed distributions (some
// bucket > 64 entries) and all-equal times fall back to std::sort.  The
// sort algorithm never affects the result: before() is a strict total
// order (seq is unique), so every path produces the same permutation.
void Simulator::sort_run() {
  const std::size_t n = run_.size();
  if (n < 2) return;
  const auto time_bits = [](SimTime t) noexcept {
    std::uint64_t u;
    std::memcpy(&u, &t, sizeof(u));
    return u;
  };
  const auto cmp = [](const HeapEntry& a, const HeapEntry& b) noexcept {
    return before(a, b);
  };
  std::uint64_t lo = ~std::uint64_t{0}, hi = 0;
  for (const HeapEntry& e : run_) {
    const std::uint64_t t = time_bits(e.time);
    lo = std::min(lo, t);
    hi = std::max(hi, t);
  }
  if (lo == hi) {  // all ties: order is insertion order, via the key compare
    std::sort(run_.begin(), run_.end(), cmp);
    return;
  }
  const std::uint64_t span = hi - lo;
  const unsigned bucket_bits = std::bit_width(n);  // ~2n buckets
  const std::uint32_t n_buckets = 1u << bucket_bits;
  const int shift = 64 - std::countl_zero(span) - static_cast<int>(bucket_bits);
  const auto bucket = [&](SimTime t) noexcept {
    const std::uint64_t d = time_bits(t) - lo;
    const std::uint64_t b = shift >= 0 ? (d >> shift) : (d << -shift);
    return static_cast<std::uint32_t>(
        std::min<std::uint64_t>(b, n_buckets - 1));
  };
  bucket_hist_.assign(n_buckets + 1, 0);
  for (const HeapEntry& e : run_) ++bucket_hist_[bucket(e.time) + 1];
  std::uint32_t max_bucket = 0;
  for (std::uint32_t b = 1; b <= n_buckets; ++b) {
    max_bucket = std::max(max_bucket, bucket_hist_[b]);
    bucket_hist_[b] += bucket_hist_[b - 1];
  }
  if (max_bucket > 64) {
    std::sort(run_.begin(), run_.end(), cmp);
    return;
  }
  sort_scratch_.resize(n);
  for (const HeapEntry& e : run_) {
    sort_scratch_[bucket_hist_[bucket(e.time)]++] = e;
  }
  for (std::size_t i = 1; i < n; ++i) {
    const HeapEntry e = sort_scratch_[i];
    std::size_t j = i;
    while (j > 0 && before(e, sort_scratch_[j - 1])) {
      sort_scratch_[j] = sort_scratch_[j - 1];
      --j;
    }
    sort_scratch_[j] = e;
  }
  run_.swap(sort_scratch_);
}

// Move every ready entry (time <= bound) out of the heap into run_, sorted;
// restore the heap property on the remainder.  Cost is O(heap) per refill,
// which amortizes whenever batches are large (a run_until over a whole
// scenario readies most of the heap at once); tiny batches never trigger it
// because drain() requires heap size >= kBatchMin first.
void Simulator::refill_run(SimTime bound) {
  std::size_t keep = 0;
  for (std::size_t i = 0; i < heap_.size(); ++i) {
    const HeapEntry e = heap_[i];
    if (e.time <= bound) {
      run_.push_back(e);
    } else {
      heap_[keep++] = e;
    }
  }
  heap_.resize(keep);
  heapify();
  sort_run();
}

void Simulator::drain(SimTime bound) {
  for (;;) {
    if (run_pos_ == run_.size()) {
      run_.clear();
      run_pos_ = 0;
      if (heap_.size() >= kBatchMin && heap_[0].time <= bound) {
        refill_run(bound);
      }
    }
    // A nested run_until with an earlier bound must not consume later run_
    // entries, hence the time check on the run front as well.
    const bool have_run =
        run_pos_ < run_.size() && run_[run_pos_].time <= bound;
    const bool have_heap = !heap_.empty() && heap_[0].time <= bound;
    HeapEntry e;
    bool from_run;
    if (have_run && (!have_heap || before(run_[run_pos_], heap_[0]))) {
      e = run_[run_pos_];
      from_run = true;
    } else if (have_heap) {
      e = heap_[0];
      from_run = false;
    } else {
      break;
    }
    const std::uint32_t slot = static_cast<std::uint32_t>(e.key) & kSlotMask;
    Slot& s = slot_ref(slot);
    if (from_run) {
      ++run_pos_;
      if (run_pos_ + 8 < run_.size()) {
        // Sequential consumption makes upcoming slots predictable: issue
        // the load for the slot eight events ahead to hide its latency.
        PRECINCT_PREFETCH(
            &slot_ref(static_cast<std::uint32_t>(run_[run_pos_ + 8].key) &
                      kSlotMask));
      }
    } else {
      // Issue the (likely-cold) slot load now; the pop's sift-down is a
      // chain of dependent heap reads that hides the latency.
      PRECINCT_PREFETCH(&s);
      heap_pop_root();
    }
    now_ = e.time;  // cancelled events still advance the clock
    if (s.cancelled) {
      recycle_slot(slot);
      continue;
    }
    // Fired: flip live *before* invoking so a self-cancel from inside the
    // callback is a no-op, then run the callback in place — block addresses
    // are stable, so rescheduling (arena growth) can't move the captures.
    s.live = false;
    ++executed_;
    s.fn();
    recycle_slot(slot);
    if (post_event_) post_event_();
  }
}

void Simulator::run_until(SimTime end_time) {
  drain(end_time);
  now_ = std::max(now_, end_time);
}

void Simulator::run_all() {
  drain(std::numeric_limits<double>::infinity());
}

}  // namespace precinct::sim
