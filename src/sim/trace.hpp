// Event tracing: a bounded in-memory log of what the simulation did,
// filterable by category, drainable to any ostream.
//
// Tracing is opt-in and zero-cost when off: emit() is guarded by a
// category mask check, and call sites build their message lazily through
// the PRECINCT_TRACE macro below.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace precinct::sim {

enum class TraceCategory : std::uint8_t {
  kRadio = 0,        ///< frame transmissions and deliveries
  kProtocol = 1,     ///< request lifecycle (issue/serve/fail/forward)
  kCache = 2,        ///< admissions, evictions, invalidations
  kConsistency = 3,  ///< pushes, polls, TTR updates
  kCustody = 4,      ///< custody placement and handoff
  kRegion = 5,       ///< region-table operations
  kChannel = 6,      ///< channel-model frame drops (fault injection)
};

[[nodiscard]] const char* to_string(TraceCategory category) noexcept;

/// Parse a category name ("radio", "channel", ...); nullopt when unknown.
[[nodiscard]] std::optional<TraceCategory> category_from_string(
    const std::string& name) noexcept;

struct TraceEvent {
  double time_s = 0.0;
  TraceCategory category = TraceCategory::kProtocol;
  std::uint32_t node = 0;
  std::string message;
};

class Tracer {
 public:
  /// Keeps at most `capacity` most-recent events.
  explicit Tracer(std::size_t capacity = 4096) : capacity_(capacity) {}

  /// Enable one category (all start disabled).
  void enable(TraceCategory category) noexcept {
    mask_ |= bit(category);
  }
  void enable_all() noexcept { mask_ = ~std::uint32_t{0}; }
  void disable_all() noexcept { mask_ = 0; }
  void disable(TraceCategory category) noexcept {
    mask_ &= ~bit(category);
  }
  [[nodiscard]] bool enabled(TraceCategory category) const noexcept {
    return (mask_ & bit(category)) != 0;
  }

  /// Record an event (no-op when the category is disabled).
  void emit(double time_s, TraceCategory category, std::uint32_t node,
            std::string message);

  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] std::uint64_t total_emitted() const noexcept {
    return emitted_;
  }
  [[nodiscard]] const std::deque<TraceEvent>& events() const noexcept {
    return events_;
  }

  /// The most recent `n` events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> last(std::size_t n) const;

  /// Write every retained event as one line each:
  ///   [   12.345s] consistency node 17: pushed v3 of key 42
  void dump(std::ostream& os) const;

  void clear() { events_.clear(); }

 private:
  static constexpr std::uint32_t bit(TraceCategory c) noexcept {
    return std::uint32_t{1} << static_cast<std::uint8_t>(c);
  }

  std::size_t capacity_;
  std::uint32_t mask_ = 0;
  std::uint64_t emitted_ = 0;
  std::deque<TraceEvent> events_;
};

}  // namespace precinct::sim

/// Lazy trace emission: the message expression is evaluated only when the
/// category is enabled.
#define PRECINCT_TRACE(tracer, time, category, node, message_expr)      \
  do {                                                                  \
    if ((tracer) != nullptr && (tracer)->enabled(category)) {           \
      (tracer)->emit((time), (category), (node), (message_expr));      \
    }                                                                   \
  } while (false)
