#include "sim/trace.hpp"

#include <iomanip>
#include <ostream>

namespace precinct::sim {

const char* to_string(TraceCategory category) noexcept {
  switch (category) {
    case TraceCategory::kRadio: return "radio";
    case TraceCategory::kProtocol: return "protocol";
    case TraceCategory::kCache: return "cache";
    case TraceCategory::kConsistency: return "consistency";
    case TraceCategory::kCustody: return "custody";
    case TraceCategory::kRegion: return "region";
    case TraceCategory::kChannel: return "channel";
  }
  return "unknown";
}

std::optional<TraceCategory> category_from_string(
    const std::string& name) noexcept {
  for (const TraceCategory category :
       {TraceCategory::kRadio, TraceCategory::kProtocol, TraceCategory::kCache,
        TraceCategory::kConsistency, TraceCategory::kCustody,
        TraceCategory::kRegion, TraceCategory::kChannel}) {
    if (name == to_string(category)) return category;
  }
  return std::nullopt;
}

void Tracer::emit(double time_s, TraceCategory category, std::uint32_t node,
                  std::string message) {
  if (!enabled(category)) return;
  ++emitted_;
  events_.push_back(TraceEvent{time_s, category, node, std::move(message)});
  while (events_.size() > capacity_) events_.pop_front();
}

std::vector<TraceEvent> Tracer::last(std::size_t n) const {
  const std::size_t take = std::min(n, events_.size());
  return {events_.end() - static_cast<long>(take), events_.end()};
}

void Tracer::dump(std::ostream& os) const {
  for (const TraceEvent& e : events_) {
    os << '[' << std::setw(10) << std::fixed << std::setprecision(4)
       << e.time_s << "s] " << to_string(e.category) << " node "
       << e.node << ": " << e.message << '\n';
  }
}

}  // namespace precinct::sim
