// Small-buffer-optimized, move-only callback for simulator events.
//
// std::function heap-allocates every non-trivial capture; on the event hot
// path that is one malloc/free per scheduled event.  EventCallback stores
// captures up to kInlineBytes directly in the object (and thus directly in
// the simulator's pooled event slot), so steady-state scheduling performs
// no heap allocation at all.  Captures larger than the threshold fall back
// to a single heap allocation, exactly like std::function.
//
// Layout note: the dispatch fields come first and storage_ last, so for
// small captures every byte the hot path touches sits at the front of the
// object — the simulator aligns its slots such that those bytes share one
// cache line.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace precinct::sim {

class EventCallback {
 public:
  /// Captures at or below this size (and at most pointer/double alignment)
  /// are stored inline — no heap.  48 bytes covers the engine's timer and
  /// retry closures (a this-pointer plus a handful of ids and doubles) and
  /// the radio's delivery closures, which capture a 16-byte pooled
  /// PacketRef (see net/packet_pool.hpp) instead of a whole net::Packet —
  /// the batched fan-out closure {this, PacketRef, snapshot vector} fills
  /// the limit exactly.
  static constexpr std::size_t kInlineBytes = 48;
  static constexpr std::size_t kInlineAlign = alignof(double);
  /// Trivial captures at or below this size move with a fixed-size copy of
  /// this many bytes instead of the whole buffer (one cache line's worth
  /// of the object instead of two).
  static constexpr std::size_t kSmallBytes = 24;

  EventCallback() noexcept = default;

  template <typename F,
            std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventCallback> &&
                    std::is_invocable_r_v<void, std::decay_t<F>&>,
                int> = 0>
  EventCallback(F&& f) {  // NOLINT(google-explicit-constructor): converting
                          // ctor is the point — call sites pass lambdas.
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= kInlineBytes && alignof(D) <= kInlineAlign &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      on_heap_ = false;
      invoke_ = [](void* p) { (*static_cast<D*>(p))(); };
      if constexpr (std::is_trivially_copyable_v<D> &&
                    std::is_trivially_destructible_v<D>) {
        // Most captures (this-pointers, ids, doubles) are trivial: moves
        // become a constant-size memcpy and destruction a no-op, with no
        // indirect manage_ call on the scheduling hot path.
        manage_ = nullptr;
        small_ = sizeof(D) <= kSmallBytes;
      } else {
        manage_ = [](Op op, void* dst, void* src) {
          switch (op) {
            case Op::kMoveDestroy: {
              auto* s = static_cast<D*>(src);
              ::new (dst) D(std::move(*s));
              s->~D();
              break;
            }
            case Op::kDestroy:
              static_cast<D*>(dst)->~D();
              break;
          }
        };
      }
    } else {
      D* p = new D(std::forward<F>(f));
      std::memcpy(static_cast<void*>(storage_), &p, sizeof(p));
      on_heap_ = true;
      invoke_ = [](void* q) { (*static_cast<D*>(q))(); };
      manage_ = [](Op op, void* dst, void*) {
        if (op == Op::kDestroy) delete static_cast<D*>(dst);
      };
    }
  }

  EventCallback(EventCallback&& other) noexcept { move_from(other); }

  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;

  ~EventCallback() { reset(); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return invoke_ != nullptr;
  }

  void operator()() { invoke_(target()); }

  /// Destroy the held callable (and its captures) now; becomes empty.
  void reset() noexcept {
    if (invoke_ == nullptr) return;
    if (manage_ != nullptr) manage_(Op::kDestroy, target(), nullptr);
    invoke_ = nullptr;
  }

 private:
  enum class Op { kMoveDestroy, kDestroy };
  using InvokeFn = void (*)(void*);
  using ManageFn = void (*)(Op, void*, void*);

  [[nodiscard]] void* target() noexcept {
    if (!on_heap_) return storage_;
    void* p = nullptr;
    std::memcpy(&p, static_cast<const void*>(storage_), sizeof(p));
    return p;
  }

  void move_from(EventCallback& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    on_heap_ = other.on_heap_;
    small_ = other.small_;
    if (invoke_ == nullptr) return;
    if (on_heap_) {
      // Ownership of the heap block transfers with the stored pointer.
      std::memcpy(static_cast<void*>(storage_), other.storage_,
                  sizeof(void*));
    } else if (manage_ == nullptr) {
      // Constant-size copies compile to a handful of vector moves, cheaper
      // than a dynamic-length memcpy call.  Trailing uninitialized bytes
      // are unsigned char, so copying them is defined.
      if (small_) {
        std::memcpy(static_cast<void*>(storage_), other.storage_,
                    kSmallBytes);
      } else {
        std::memcpy(static_cast<void*>(storage_), other.storage_,
                    kInlineBytes);
      }
    } else {
      manage_(Op::kMoveDestroy, storage_, other.storage_);
    }
    other.invoke_ = nullptr;
  }

  InvokeFn invoke_ = nullptr;
  ManageFn manage_ = nullptr;  // nullptr: trivial inline callable
  bool on_heap_ = false;
  bool small_ = false;  // trivial and <= kSmallBytes: short fixed-size move
  alignas(kInlineAlign) unsigned char storage_[kInlineBytes];
};

}  // namespace precinct::sim
