// Region-sharded conservative parallel discrete-event execution
// (DESIGN.md §11).
//
// The unit of parallelism is a *domain*: an independent Simulator (plus
// whatever model runs on it) that interacts with other domains only
// through timestamped cross-domain messages.  A ShardExecutor owns the
// mapping domain -> shard (one worker thread per shard) and advances all
// domains through fixed lookahead windows:
//
//   window W = [t, t + lookahead):
//     compute phase:  every shard advances its domains' simulators to the
//                     window end; callbacks may post() cross-domain
//                     messages, which land in per-(src,dst) SPSC
//                     mailboxes;
//     barrier tick;
//     merge phase:    every shard drains the mailboxes addressed to its
//                     own domains, scheduling each message into the
//                     destination simulator in (due, src domain, seq)
//                     order;
//     barrier tick.
//
// Conservative safety: post() requires due >= the current window's end
// (i.e. the message latency must be at least the lookahead), so a merged
// message can never be scheduled into a domain's past.  The lookahead is
// therefore the minimum cross-domain delivery latency — for the sharded
// PReCinCt world, the inter-tile gateway latency.
//
// Determinism: the window cadence, the mailbox contents per window, and
// the (due, src, seq) merge order are all pure functions of the
// configuration — the shard count only decides which thread does the
// work, never in which order messages are applied.  Fixed-seed runs are
// byte-identical for any n_shards, which the fingerprint suite and the
// scenario fuzzer's metrics(K) == metrics(1) property gate.
//
// Threading: each run_until() call spins up its cohort (n_shards - 1
// std::threads; the caller is shard 0) synchronized by a reusable
// support::Barrier.  The cohort deliberately does NOT run on the global
// ThreadPool: queued pool tasks have no co-scheduling guarantee, so K
// mutually-blocking barrier participants on a busy pool would deadlock
// (see support/thread_pool.hpp).  n_shards == 1 runs the identical
// window loop inline with zero threads — today's single-threaded path.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event_callback.hpp"
#include "sim/simulator.hpp"
#include "support/thread_pool.hpp"

namespace precinct::sim {

/// One cross-domain handoff: run `fn` on the destination domain at `due`.
struct CrossShardMsg {
  double due = 0.0;
  std::uint32_t src_domain = 0;
  std::uint64_t seq = 0;  ///< per-(src,dst) mailbox sequence
  EventCallback fn;
};

/// Single-producer single-consumer mailbox for one (src, dst) domain
/// pair.  Synchronization is structural, not atomic: the producer (the
/// worker advancing src) appends only during compute phases, the consumer
/// (the worker owning dst) drains only during merge phases, and the
/// executor's barrier tick between the phases is the happens-before edge.
class SpscMailbox {
 public:
  void push(double due, std::uint32_t src, EventCallback fn) {
    msgs_.push_back(CrossShardMsg{due, src, next_seq_++, std::move(fn)});
  }
  [[nodiscard]] bool empty() const noexcept { return msgs_.empty(); }
  /// Consumer side: move the pending batch out (mailbox keeps capacity).
  void drain_into(std::vector<CrossShardMsg>& out) {
    for (CrossShardMsg& m : msgs_) out.push_back(std::move(m));
    msgs_.clear();
  }

 private:
  std::vector<CrossShardMsg> msgs_;
  std::uint64_t next_seq_ = 0;
};

class ShardExecutor {
 public:
  struct Options {
    std::uint32_t n_shards = 1;
    /// Window length == minimum cross-domain message latency.
    double lookahead_s = 0.25;
  };

  /// `domains[d]` must outlive the executor; `shard_of[d]` maps each
  /// domain to a shard in [0, n_shards) (geo::partition_grid produces
  /// balanced, adjacency-aware assignments).
  ShardExecutor(std::vector<Simulator*> domains,
                std::vector<std::uint32_t> shard_of, const Options& options);

  ShardExecutor(const ShardExecutor&) = delete;
  ShardExecutor& operator=(const ShardExecutor&) = delete;

  /// Post a cross-domain message.  Callable only from code running inside
  /// the compute phase of `src` (a callback on src's simulator) or, when
  /// the executor is idle, from the owning thread during setup.  Enforces
  /// the conservative bound: due must be at or after the current window's
  /// end (message latency >= lookahead), else throws std::logic_error.
  void post(std::uint32_t src, std::uint32_t dst, double due,
            EventCallback fn);

  /// Advance every domain to `end_time` through barrier-synced lookahead
  /// windows.  May be called repeatedly with increasing times (the
  /// sharded scenario runs warm-up and measurement as separate calls so
  /// phase boundaries stay exact window boundaries).
  void run_until(double end_time);

  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] std::uint32_t n_shards() const noexcept { return n_shards_; }
  [[nodiscard]] std::size_t domain_count() const noexcept {
    return domains_.size();
  }
  /// Lookahead windows completed so far (identical for any shard count).
  [[nodiscard]] std::uint64_t windows() const noexcept { return windows_; }
  /// Cross-domain messages merged so far.
  [[nodiscard]] std::uint64_t messages_merged() const noexcept {
    return messages_merged_;
  }
  /// End of the window currently being computed (== now() when idle).
  /// Models that exchange state exactly at window boundaries (the world
  /// shard halo) stamp their posts with this time: it is the earliest due
  /// the conservative bound admits.
  [[nodiscard]] double window_end() const noexcept { return window_end_; }

 private:
  [[nodiscard]] SpscMailbox& mailbox(std::uint32_t src, std::uint32_t dst) {
    return mailboxes_[static_cast<std::size_t>(src) * domains_.size() + dst];
  }
  /// Compute phase for one shard: advance its domains to `bound`.
  void advance_shard(std::uint32_t shard, double bound);
  /// Merge phase for one shard: drain mail addressed to its domains.
  void merge_shard(std::uint32_t shard);
  /// The windowed loop body run by every cohort member.
  void worker_loop(std::uint32_t shard);

  std::vector<Simulator*> domains_;
  std::vector<std::uint32_t> shard_of_;
  std::vector<std::vector<std::uint32_t>> shard_members_;
  std::uint32_t n_shards_;
  double lookahead_;

  std::vector<SpscMailbox> mailboxes_;  // src * n_domains + dst
  /// Per-shard merge scratch (sorting each destination's batch).
  std::vector<std::vector<CrossShardMsg>> merge_scratch_;
  /// Per-shard merged-message counters, summed at the end of run_until()
  /// so the total never races.
  std::vector<std::uint64_t> merged_per_shard_;

  double now_ = 0.0;
  std::uint64_t windows_ = 0;
  std::uint64_t messages_merged_ = 0;

  // Cohort state for the current run_until() call (workers read, the
  // controller — shard 0 — writes between barrier ticks).
  support::Barrier barrier_;
  double window_end_ = 0.0;
  double run_end_ = 0.0;
  bool done_ = true;
  std::exception_ptr error_;
  std::mutex error_mutex_;
};

}  // namespace precinct::sim
