#include "sim/shard_exec.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <thread>
#include <tuple>

namespace precinct::sim {

ShardExecutor::ShardExecutor(std::vector<Simulator*> domains,
                             std::vector<std::uint32_t> shard_of,
                             const Options& options)
    : domains_(std::move(domains)),
      shard_of_(std::move(shard_of)),
      n_shards_(options.n_shards == 0 ? 1 : options.n_shards),
      lookahead_(options.lookahead_s),
      barrier_(options.n_shards == 0 ? 1 : options.n_shards) {
  if (domains_.empty()) {
    throw std::invalid_argument("ShardExecutor: no domains");
  }
  if (shard_of_.size() != domains_.size()) {
    throw std::invalid_argument("ShardExecutor: shard_of size mismatch");
  }
  if (!(lookahead_ > 0.0)) {
    throw std::invalid_argument("ShardExecutor: lookahead must be > 0");
  }
  shard_members_.resize(n_shards_);
  for (std::size_t d = 0; d < shard_of_.size(); ++d) {
    if (shard_of_[d] >= n_shards_) {
      throw std::invalid_argument("ShardExecutor: shard index out of range");
    }
    shard_members_[shard_of_[d]].push_back(static_cast<std::uint32_t>(d));
  }
  mailboxes_.resize(domains_.size() * domains_.size());
  merge_scratch_.resize(n_shards_);
  merged_per_shard_.assign(n_shards_, 0);
}

void ShardExecutor::post(std::uint32_t src, std::uint32_t dst, double due,
                         EventCallback fn) {
  if (src >= domains_.size() || dst >= domains_.size()) {
    throw std::out_of_range("ShardExecutor::post: domain out of range");
  }
  // Conservative lookahead bound: a message produced inside window
  // [w_start, w_end) is merged at w_end, so it must not be due before
  // w_end or the destination would receive it in its past.
  if (due < window_end_) {
    throw std::logic_error(
        "ShardExecutor::post: due " + std::to_string(due) +
        " violates conservative lookahead (window end " +
        std::to_string(window_end_) + ")");
  }
  mailbox(src, dst).push(due, src, std::move(fn));
}

void ShardExecutor::advance_shard(std::uint32_t shard, double bound) {
  for (const std::uint32_t d : shard_members_[shard]) {
    domains_[d]->run_until(bound);
  }
}

void ShardExecutor::merge_shard(std::uint32_t shard) {
  std::vector<CrossShardMsg>& scratch = merge_scratch_[shard];
  for (const std::uint32_t dst : shard_members_[shard]) {
    scratch.clear();
    for (std::uint32_t src = 0; src < domains_.size(); ++src) {
      mailbox(src, dst).drain_into(scratch);
    }
    if (scratch.empty()) continue;
    // Total order on (due, src, seq): seq is unique per (src, dst)
    // mailbox, so the key is unique and the merge order is independent
    // of which thread produced or drains the messages.
    std::sort(scratch.begin(), scratch.end(),
              [](const CrossShardMsg& a, const CrossShardMsg& b) {
                return std::tie(a.due, a.src_domain, a.seq) <
                       std::tie(b.due, b.src_domain, b.seq);
              });
    merged_per_shard_[shard] += scratch.size();
    for (CrossShardMsg& m : scratch) {
      domains_[dst]->schedule_at(m.due, std::move(m.fn));
    }
    scratch.clear();
  }
}

void ShardExecutor::worker_loop(std::uint32_t shard) {
  for (;;) {
    barrier_.arrive_and_wait();  // start: window_end_/done_ published
    if (done_) return;
    try {
      advance_shard(shard, window_end_);
    } catch (...) {
      const std::scoped_lock lock(error_mutex_);
      if (!error_) error_ = std::current_exception();
    }
    barrier_.arrive_and_wait();  // compute done: mailboxes stable
    try {
      merge_shard(shard);
    } catch (...) {
      const std::scoped_lock lock(error_mutex_);
      if (!error_) error_ = std::current_exception();
    }
    barrier_.arrive_and_wait();  // merge done: controller may re-plan
  }
}

void ShardExecutor::run_until(double end_time) {
  if (end_time <= now_) return;
  run_end_ = end_time;

  // Deliver mail posted while idle (setup traffic) before the first
  // window, so a pre-run post() behaves like a merge at t = now.
  for (std::uint32_t s = 0; s < n_shards_; ++s) merge_shard(s);

  if (n_shards_ == 1) {
    // Identical window cadence, zero threads: the single-shard path the
    // determinism gate compares every K against.
    while (now_ < run_end_) {
      window_end_ = std::min(now_ + lookahead_, run_end_);
      advance_shard(0, window_end_);
      merge_shard(0);
      now_ = window_end_;
      ++windows_;
    }
  } else {
    done_ = false;
    error_ = nullptr;
    std::vector<std::thread> cohort;
    cohort.reserve(n_shards_ - 1);
    for (std::uint32_t s = 1; s < n_shards_; ++s) {
      cohort.emplace_back([this, s] { worker_loop(s); });
    }
    while (now_ < run_end_) {
      window_end_ = std::min(now_ + lookahead_, run_end_);
      barrier_.arrive_and_wait();  // start
      try {
        advance_shard(0, window_end_);
      } catch (...) {
        const std::scoped_lock lock(error_mutex_);
        if (!error_) error_ = std::current_exception();
      }
      barrier_.arrive_and_wait();  // compute done
      try {
        merge_shard(0);
      } catch (...) {
        const std::scoped_lock lock(error_mutex_);
        if (!error_) error_ = std::current_exception();
      }
      barrier_.arrive_and_wait();  // merge done
      now_ = window_end_;
      ++windows_;
      bool abort = false;
      {
        const std::scoped_lock lock(error_mutex_);
        abort = static_cast<bool>(error_);
      }
      if (abort) break;
    }
    done_ = true;
    barrier_.arrive_and_wait();  // release cohort into exit
    for (std::thread& t : cohort) t.join();
    if (error_) {
      std::exception_ptr e = error_;
      error_ = nullptr;
      std::rethrow_exception(e);
    }
  }

  messages_merged_ = 0;
  for (const std::uint64_t m : merged_per_shard_) messages_merged_ += m;
}

}  // namespace precinct::sim
