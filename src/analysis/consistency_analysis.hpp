// Closed-form consistency message-count model.
//
// The paper analyzes energy (§5) but reports consistency overhead (Fig 6)
// only by simulation.  This extends the same style of analysis to the
// three schemes of §4, predicting messages per second from first
// principles.  Two workload-dependent probabilities are inputs (measured
// or assumed): the fraction of requests served from caches, and the
// fraction of those whose TTR has lapsed.
#pragma once

#include <cstddef>

#include "geo/geometry.hpp"

namespace precinct::analysis {

struct ConsistencyAnalysisParams {
  double n_nodes = 80;
  double n_regions = 9;
  geo::Rect area{{0.0, 0.0}, {1200.0, 1200.0}};
  double range_m = 250.0;
  double replica_count = 1;       ///< replica regions per key
  double request_rate_hz = 1.0 / 30.0;  ///< per node (paper: mean 30 s)
  double update_rate_hz = 1.0 / 30.0;   ///< per node
  double cache_serve_fraction = 0.4;    ///< requests served from caches
  double ttr_expired_fraction = 0.85;   ///< cache serves that must poll
                                        ///< (adaptive only)
};

/// Messages per second each scheme generates for consistency maintenance.
struct ConsistencyLoad {
  double plain_push = 0.0;
  double pull_every_time = 0.0;
  double push_adaptive_pull = 0.0;
};

/// Cost in transmissions of pushing one update to one region: routed
/// request leg, localized flood, and the custodian acknowledgement.
[[nodiscard]] double push_cost_msgs(const ConsistencyAnalysisParams& p);

/// Cost in transmissions of one poll round trip.
[[nodiscard]] double poll_cost_msgs(const ConsistencyAnalysisParams& p);

/// Predicted consistency message rates for all three schemes.
[[nodiscard]] ConsistencyLoad consistency_messages_per_second(
    const ConsistencyAnalysisParams& p);

}  // namespace precinct::analysis
