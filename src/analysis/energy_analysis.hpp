// Closed-form per-request energy (paper §5, Eqs. 6–13), used to reproduce
// the "theoretical" curves of Fig 9 and validate the simulator against
// them.
#pragma once

#include <cstddef>

#include "energy/feeney_model.hpp"
#include "geo/geometry.hpp"

namespace precinct::analysis {

struct EnergyAnalysisParams {
  double n_nodes = 20;
  geo::Rect area{{0.0, 0.0}, {600.0, 600.0}};
  double range_m = 250.0;
  double n_regions = 9;               ///< PReCinCt only
  std::size_t request_bytes = 64;     ///< flooded / routed request size
  std::size_t response_bytes = 64;    ///< p2p response size (headers; the
                                      ///< paper's analysis uses one size)
  energy::FeeneyModel model;
};

/// Mean distance between two independent uniform points in a rectangle
/// (exact closed form; for a square of side a it evaluates to ~0.5214 a).
[[nodiscard]] double mean_uniform_distance(const geo::Rect& area) noexcept;

/// Expected intermediate-hop count I between two random nodes: mean
/// distance divided by the expected greedy-forwarding hop advance (a
/// fraction of the radio range), minus the endpoints.
[[nodiscard]] double expected_intermediate_hops(const geo::Rect& area,
                                                double range_m) noexcept;

/// E_total_bd (Eq. 8) under density N/A.
[[nodiscard]] double broadcast_total_energy(const EnergyAnalysisParams& p,
                                            std::size_t bytes) noexcept;

/// E_Flooding (Eq. 11): every node rebroadcasts the request once, then the
/// response travels back over I intermediate p2p hops.
[[nodiscard]] double flooding_energy_per_request(
    const EnergyAnalysisParams& p) noexcept;

/// E_PReCinCt (Eq. 13): I p2p hops to the home region, a localized flood
/// among the n = N/R nodes of that region, and I p2p hops back.
[[nodiscard]] double precinct_energy_per_request(
    const EnergyAnalysisParams& p) noexcept;

}  // namespace precinct::analysis
