#include "analysis/consistency_analysis.hpp"

#include <algorithm>

#include "analysis/energy_analysis.hpp"

namespace precinct::analysis {

namespace {
double hops(const ConsistencyAnalysisParams& p) {
  return expected_intermediate_hops(p.area, p.range_m) + 1.0;
}
double nodes_per_region(const ConsistencyAnalysisParams& p) {
  return p.n_regions > 0 ? p.n_nodes / p.n_regions : p.n_nodes;
}
}  // namespace

double push_cost_msgs(const ConsistencyAnalysisParams& p) {
  // Routed leg to the region + in-region flood (each member rebroadcasts
  // once) + routed ack back.  Retransmissions fire rarely enough that the
  // first attempt dominates.
  return hops(p) + nodes_per_region(p) + hops(p);
}

double poll_cost_msgs(const ConsistencyAnalysisParams& p) {
  // Poll routed to the home region; the custodian usually answers from
  // the route's end or after a partial in-region flood (half a region on
  // average), then the reply routes back.
  return hops(p) + 0.5 * nodes_per_region(p) + hops(p);
}

ConsistencyLoad consistency_messages_per_second(
    const ConsistencyAnalysisParams& p) {
  ConsistencyLoad load;
  const double updates_per_s = p.update_rate_hz * p.n_nodes;
  const double requests_per_s = p.request_rate_hz * p.n_nodes;
  const double regions_pushed = 1.0 + p.replica_count;

  // Plain-Push: one network-wide flood per update (every node forwards
  // the invalidation once).
  load.plain_push = updates_per_s * p.n_nodes;

  // Both pull schemes push each update to the home + replica regions.
  const double push_load = updates_per_s * regions_pushed * push_cost_msgs(p);

  // Pull-Every-time polls on every cache-served request.
  load.pull_every_time =
      push_load + requests_per_s * p.cache_serve_fraction * poll_cost_msgs(p);

  // Adaptive pull polls only when the copy's TTR has lapsed.
  load.push_adaptive_pull =
      push_load + requests_per_s * p.cache_serve_fraction *
                      p.ttr_expired_fraction * poll_cost_msgs(p);
  return load;
}

}  // namespace precinct::analysis
