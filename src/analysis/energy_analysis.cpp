#include "analysis/energy_analysis.hpp"

#include <algorithm>
#include <cmath>

namespace precinct::analysis {

double mean_uniform_distance(const geo::Rect& area) noexcept {
  // Exact expectation of the distance between two iid uniform points in an
  // a-by-b rectangle (Ghosh, 1951).  For a square of side a this evaluates
  // to ((2 + sqrt 2 + 5 asinh 1) / 15) a ~= 0.52141 a.
  const double a = area.width();
  const double b = area.height();
  if (a <= 0.0 || b <= 0.0) return 0.0;
  const double d = std::hypot(a, b);
  const double a2 = a * a;
  const double b2 = b * b;
  return (a2 * a / (b2) + b2 * b / (a2) +
          d * (3.0 - a2 / b2 - b2 / a2) +
          2.5 * (b2 / a * std::log((a + d) / b) +
                 a2 / b * std::log((b + d) / a))) /
         15.0;
}

double expected_intermediate_hops(const geo::Rect& area,
                                  double range_m) noexcept {
  if (range_m <= 0.0) return 0.0;
  // Greedy geographic forwarding advances ~80 % of the radio range per hop
  // at the densities the paper simulates; endpoints are not intermediates.
  constexpr double kGreedyAdvanceFraction = 0.8;
  const double hops = mean_uniform_distance(area) /
                      (kGreedyAdvanceFraction * range_m);
  return std::max(0.0, hops - 1.0);
}

double broadcast_total_energy(const EnergyAnalysisParams& p,
                              std::size_t bytes) noexcept {
  const double zeta =
      energy::expected_receivers(p.n_nodes, p.area.area(), p.range_m);
  return p.model.broadcast_total(bytes, zeta);
}

double flooding_energy_per_request(const EnergyAnalysisParams& p) noexcept {
  const double request_cost =
      p.n_nodes * broadcast_total_energy(p, p.request_bytes);  // Eq. 11
  const double hops = expected_intermediate_hops(p.area, p.range_m) + 1.0;
  const double response_cost =
      hops * (p.model.p2p_send(p.response_bytes) +
              p.model.p2p_recv(p.response_bytes));
  return request_cost + response_cost;
}

double precinct_energy_per_request(const EnergyAnalysisParams& p) noexcept {
  const double hops = expected_intermediate_hops(p.area, p.range_m) + 1.0;
  const double p2p_leg = hops * (p.model.p2p_send(p.request_bytes) +
                                 p.model.p2p_recv(p.request_bytes));
  const double p2p_back = hops * (p.model.p2p_send(p.response_bytes) +
                                  p.model.p2p_recv(p.response_bytes));
  const double nodes_per_region =
      p.n_regions > 0.0 ? p.n_nodes / p.n_regions : p.n_nodes;
  // Flooding inside the home region: each of the ~n regional nodes
  // rebroadcasts once; receivers are bounded by the region population.
  const double zeta_all =
      energy::expected_receivers(p.n_nodes, p.area.area(), p.range_m);
  const double zeta_region = std::min(zeta_all, nodes_per_region - 1.0);
  const double region_flood =
      nodes_per_region * p.model.broadcast_total(
                             p.request_bytes, std::max(0.0, zeta_region));
  return p2p_leg + region_flood + p2p_back;  // Eq. 13
}

}  // namespace precinct::analysis
