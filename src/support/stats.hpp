// Streaming statistics helpers used by metrics collection and benches.
#pragma once

#include <cstddef>
#include <vector>

namespace precinct::support {

/// Welford streaming mean/variance accumulator.  O(1) memory; numerically
/// stable for long simulation runs.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 when fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  /// Half-width of the ~95 % normal confidence interval for the mean.
  [[nodiscard]] double ci95_halfwidth() const noexcept;

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact quantile over a retained sample set.  Intended for per-request
/// latency distributions (at most a few hundred thousand samples).
class QuantileSampler {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  /// q in [0, 1]; returns 0 when empty.  Sorts lazily.
  [[nodiscard]] double quantile(double q);
  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }

  /// Fold another sampler's observations into this one.
  void merge(const QuantileSampler& other);

 private:
  std::vector<double> samples_;
  bool sorted_ = false;
};

}  // namespace precinct::support
