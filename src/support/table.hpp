// Plain-text table/series printing for bench output, so every bench binary
// reports figures in the same aligned format.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace precinct::support {

/// Column-aligned text table.  Cells are strings; numeric helpers format
/// with fixed precision.  Intended for "figure series" bench output.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Convenience: format a double with `precision` decimal places.
  [[nodiscard]] static std::string num(double v, int precision = 4);

  /// Render with 2-space gutters, right-aligning numeric-looking cells.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Render a numeric series as a one-line ASCII sparkline using a fixed
/// 8-level ramp (" .:-=+*#"), scaled to the series' min/max.  Empty
/// input yields an empty string; a constant series renders mid-ramp.
[[nodiscard]] std::string sparkline(const std::vector<double>& values);

}  // namespace precinct::support
