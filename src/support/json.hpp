// Minimal JSON writing (objects of scalars/strings, flat arrays) for
// machine-readable metric exports, plus a flat-object reader for the
// files JsonObject itself writes (daemon status snapshots).
#pragma once

#include <map>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

namespace precinct::support {

/// Flat JSON object builder preserving insertion order.
class JsonObject {
 public:
  JsonObject& set(const std::string& key, double value);
  JsonObject& set(const std::string& key, std::uint64_t value);
  JsonObject& set(const std::string& key, const std::string& value);
  JsonObject& set(const std::string& key, bool value);
  /// Splice pre-encoded JSON (a nested object or array built elsewhere)
  /// under `key`; the value is emitted verbatim.
  JsonObject& set_raw(const std::string& key, const std::string& encoded);

  /// Serialize; `pretty` adds newlines + two-space indentation.
  [[nodiscard]] std::string str(bool pretty = false) const;

 private:
  static std::string escape(const std::string& raw);
  std::vector<std::pair<std::string, std::string>> fields_;  // pre-encoded
};

/// Flat JSON object reader — the inverse of JsonObject for objects of
/// scalars/strings (no nesting; a nested value fails the parse).  Used by
/// precinct_ctl to read daemon status files, so it only has to understand
/// what JsonObject::str() emits plus insignificant whitespace.
class FlatJson {
 public:
  /// Parse `text`; throws std::invalid_argument on malformed input.
  static FlatJson parse(const std::string& text);

  [[nodiscard]] bool has(const std::string& key) const;
  /// Typed getters; throw std::invalid_argument when the key is missing
  /// or the value does not parse as the requested type.
  [[nodiscard]] std::string get_string(const std::string& key) const;
  [[nodiscard]] std::uint64_t get_u64(const std::string& key) const;
  [[nodiscard]] double get_double(const std::string& key) const;

 private:
  [[nodiscard]] const std::string& raw(const std::string& key) const;
  /// key -> raw token (strings kept quoted to distinguish "1" from 1).
  std::map<std::string, std::string> values_;
};

}  // namespace precinct::support
