// Minimal JSON writing (objects of scalars/strings, flat arrays) for
// machine-readable metric exports.  Not a parser; writing only.
#pragma once

#include <map>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

namespace precinct::support {

/// Flat JSON object builder preserving insertion order.
class JsonObject {
 public:
  JsonObject& set(const std::string& key, double value);
  JsonObject& set(const std::string& key, std::uint64_t value);
  JsonObject& set(const std::string& key, const std::string& value);
  JsonObject& set(const std::string& key, bool value);
  /// Splice pre-encoded JSON (a nested object or array built elsewhere)
  /// under `key`; the value is emitted verbatim.
  JsonObject& set_raw(const std::string& key, const std::string& encoded);

  /// Serialize; `pretty` adds newlines + two-space indentation.
  [[nodiscard]] std::string str(bool pretty = false) const;

 private:
  static std::string escape(const std::string& raw);
  std::vector<std::pair<std::string, std::string>> fields_;  // pre-encoded
};

}  // namespace precinct::support
