#include "support/rng.hpp"

#include <cmath>

namespace precinct::support {

std::uint64_t hash64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  return hash64(a ^ (hash64(b) + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

Rng Rng::split(std::uint64_t stream_id) const noexcept {
  // Mix the current state snapshot with the stream id so distinct ids give
  // decorrelated children even when split from the same parent.
  return Rng(hash_combine(last_ ^ 0xa0761d6478bd642fULL, stream_id));
}

double Rng::uniform() noexcept {
  last_ = gen_();
  // 53-bit mantissa => uniform double in [0, 1).
  return static_cast<double>(last_ >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t n) noexcept {
  // Floor of uniform() * n via the double path keeps the implementation
  // portable; bias is negligible for n << 2^53 (we never exceed ~1e6).
  return static_cast<std::uint64_t>(uniform() * static_cast<double>(n));
}

double Rng::exponential(double mean) noexcept {
  // Inverse CDF; 1 - uniform() is in (0, 1] so log() is finite.
  return -mean * std::log(1.0 - uniform());
}

std::uint64_t Rng::bits() noexcept {
  last_ = gen_();
  return last_;
}

}  // namespace precinct::support
