// Deterministic, splittable random number generation.
//
// Every stochastic component in the simulator (mobility, workload, MAC
// jitter, ...) draws from its own Rng stream derived from a scenario seed,
// so runs are reproducible bit-for-bit regardless of event interleaving
// and sweep points can execute on different threads without sharing state.
#pragma once

#include <cstdint>
#include <limits>

namespace precinct::support {

/// SplitMix64: tiny, statistically strong 64-bit generator.  Used both as
/// a stream generator and to derive child seeds (its output function is a
/// good integer hash, which `hash64` exposes directly).
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Stateless 64-bit mix (the SplitMix64 output function).  Deterministic
/// across platforms; used by the geographic hash to map keys to locations.
[[nodiscard]] std::uint64_t hash64(std::uint64_t x) noexcept;

/// Combine two 64-bit values into one hash (for (seed, stream-id) splits).
[[nodiscard]] std::uint64_t hash_combine(std::uint64_t a,
                                         std::uint64_t b) noexcept;

/// Random stream with the distributions the simulator needs.  Thin wrapper
/// over SplitMix64; cheap to copy, no global state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept : gen_(seed) {}

  /// Derive an independent child stream; `stream_id` labels the consumer.
  [[nodiscard]] Rng split(std::uint64_t stream_id) const noexcept;

  /// Uniform in [0, 1).
  [[nodiscard]] double uniform() noexcept;
  /// Uniform in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [0, n).  Requires n > 0.
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t n) noexcept;
  /// Exponential with the given mean (inter-arrival times of a Poisson
  /// process).  Requires mean > 0.
  [[nodiscard]] double exponential(double mean) noexcept;
  /// Raw 64 random bits.
  [[nodiscard]] std::uint64_t bits() noexcept;

 private:
  SplitMix64 gen_;
  std::uint64_t last_ = 0;  // for split(): advances with use
};

}  // namespace precinct::support
