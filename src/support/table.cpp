#include "support/table.hpp"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace precinct::support {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table row width mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << v;
  return oss.str();
}

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(), [](unsigned char c) {
    return std::isdigit(c) || c == '.' || c == '-' || c == '+' || c == 'e' ||
           c == 'E' || c == '%';
  });
}
}  // namespace

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << "  ";
      if (looks_numeric(row[c])) {
        os << std::setw(static_cast<int>(width[c])) << std::right << row[c];
      } else {
        os << std::setw(static_cast<int>(width[c])) << std::left << row[c];
      }
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string sparkline(const std::vector<double>& values) {
  static constexpr char kRamp[] = " .:-=+*#";
  constexpr int kLevels = 8;
  if (values.empty()) return {};
  double lo = values.front();
  double hi = values.front();
  for (const double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::string out;
  out.reserve(values.size());
  for (const double v : values) {
    int level = kLevels / 2;
    if (hi > lo) {
      level = static_cast<int>((v - lo) / (hi - lo) * (kLevels - 1) + 0.5);
    }
    out += kRamp[static_cast<std::size_t>(std::clamp(level, 0, kLevels - 1))];
  }
  return out;
}

}  // namespace precinct::support
