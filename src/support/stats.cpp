#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

namespace precinct::support {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::ci95_halfwidth() const noexcept {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_ + other.n_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / n;
  mean_ += delta * static_cast<double>(other.n_) / n;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

void QuantileSampler::merge(const QuantileSampler& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_ = false;
}

double QuantileSampler::quantile(double q) {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(samples_.size() - 1) + 0.5);
  return samples_[idx];
}

}  // namespace precinct::support
