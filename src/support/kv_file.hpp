// Minimal key=value configuration file parsing (for precinct_sim's
// --config and for experiment scripts).
//
// Format: one `key = value` per line; `#` starts a comment; blank lines
// and surrounding whitespace ignored.  Keys are free-form strings; value
// interpretation is the caller's job (helpers for the common types
// below).  Duplicate keys keep the *last* occurrence, so files can layer
// overrides naturally.
#pragma once

#include <map>
#include <optional>
#include <string>

namespace precinct::support {

class KvFile {
 public:
  /// Parse text; throws std::invalid_argument (with a line number) on a
  /// malformed line.
  static KvFile parse(const std::string& text);

  /// Read and parse a file; throws std::runtime_error if unreadable.
  static KvFile load(const std::string& path);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;

  /// Typed getters: return `fallback` when absent; throw
  /// std::invalid_argument when present but unparsable.
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] double get_number(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }
  [[nodiscard]] const std::map<std::string, std::string>& values()
      const noexcept {
    return values_;
  }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace precinct::support
