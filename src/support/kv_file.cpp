#include "support/kv_file.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace precinct::support {

namespace {
std::string trim(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}
}  // namespace

KvFile KvFile::parse(const std::string& text) {
  KvFile kv;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::string trimmed = trim(line);
    if (trimmed.empty()) continue;
    const std::size_t eq = trimmed.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("KvFile: line " + std::to_string(line_no) +
                                  ": expected 'key = value'");
    }
    const std::string key = trim(trimmed.substr(0, eq));
    const std::string value = trim(trimmed.substr(eq + 1));
    if (key.empty()) {
      throw std::invalid_argument("KvFile: line " + std::to_string(line_no) +
                                  ": empty key");
    }
    kv.values_[key] = value;  // last occurrence wins
  }
  return kv;
}

KvFile KvFile::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("KvFile: cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

bool KvFile::has(const std::string& key) const {
  return values_.find(key) != values_.end();
}

std::optional<std::string> KvFile::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string KvFile::get_string(const std::string& key,
                               const std::string& fallback) const {
  return get(key).value_or(fallback);
}

double KvFile::get_number(const std::string& key, double fallback) const {
  const auto v = get(key);
  if (!v.has_value()) return fallback;
  try {
    std::size_t used = 0;
    const double parsed = std::stod(*v, &used);
    if (used != v->size()) throw std::invalid_argument("trailing junk");
    return parsed;
  } catch (const std::exception&) {
    throw std::invalid_argument("KvFile: key '" + key +
                                "' is not a number: " + *v);
  }
}

bool KvFile::get_bool(const std::string& key, bool fallback) const {
  const auto v = get(key);
  if (!v.has_value()) return fallback;
  if (*v == "true" || *v == "1" || *v == "yes" || *v == "on") return true;
  if (*v == "false" || *v == "0" || *v == "no" || *v == "off") return false;
  throw std::invalid_argument("KvFile: key '" + key +
                              "' is not a boolean: " + *v);
}

}  // namespace precinct::support
