// Persistent thread pool + parallel_for used to fan independent
// simulation runs (sweep points, seeds) across cores.
//
// Simulations themselves are single-threaded and deterministic; only the
// *sweep* is parallel, so there is no shared mutable state between tasks
// (CP.2/CP.3: each task owns its scenario and returns its metrics).
//
// parallel_for shares one process-wide pool (no per-call thread spawning)
// and the calling thread helps execute its own batch, so nested calls —
// run_sweep points fanning run_seeds replications — neither deadlock nor
// oversubscribe: an inner call runs inline on its worker while idle
// workers steal shares of it.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace precinct::support {

class ThreadPool {
 public:
  /// n_threads == 0 selects hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; the future resolves when it has run.
  std::future<void> submit(std::function<void()> task);

  /// Process-wide persistent pool (hardware_concurrency workers), created
  /// on first use and joined at program exit.
  static ThreadPool& global();

  /// True when called from a worker thread of any ThreadPool.
  [[nodiscard]] static bool in_worker() noexcept;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Run fn(i) for i in [0, n) across the global pool and wait for all.
/// The caller participates (claims indices itself), so calls from inside a
/// pool worker complete without new threads and without deadlock.  The
/// first exception thrown by fn is rethrown after remaining indices are
/// abandoned.  `max_parallelism` (0 = unlimited) caps worker fan-out.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t max_parallelism = 0);

/// Reusable cyclic barrier for a fixed-size cohort of threads: every
/// participant blocks in arrive_and_wait() until all `parties` have
/// arrived, then all release together and the barrier resets for the next
/// cycle (generation-counted, so a fast thread re-arriving cannot slip
/// through a stale wakeup).  The sharded simulation executor uses one to
/// separate each lookahead window's compute phase from its mailbox-merge
/// phase (sim/shard_exec.hpp).
///
/// Deliberately NOT combined with the task queue above: queued pool tasks
/// have no co-scheduling guarantee, so K mutually-blocking tasks on a
/// pool with fewer than K free workers would deadlock.  A barrier cohort
/// must own its threads.
class Barrier {
 public:
  explicit Barrier(std::size_t parties);

  /// Block until all parties have arrived in this cycle.  Release order
  /// is unspecified; the release itself is a full happens-before edge
  /// (everything written before any arrive_and_wait() is visible to every
  /// party after it returns).
  void arrive_and_wait();

  [[nodiscard]] std::size_t parties() const noexcept { return parties_; }
  /// Completed cycles (for tests asserting reuse).
  [[nodiscard]] std::uint64_t cycles() const noexcept;

 private:
  const std::size_t parties_;
  std::size_t waiting_ = 0;
  std::uint64_t generation_ = 0;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
};

}  // namespace precinct::support
