// Minimal work-stealing-free thread pool + parallel_for used to fan
// independent simulation runs (sweep points, seeds) across cores.
//
// Simulations themselves are single-threaded and deterministic; only the
// *sweep* is parallel, so there is no shared mutable state between tasks
// (CP.2/CP.3: each task owns its scenario and returns its metrics).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace precinct::support {

class ThreadPool {
 public:
  /// n_threads == 0 selects hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; the future resolves when it has run.
  std::future<void> submit(std::function<void()> task);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Run fn(i) for i in [0, n) across a transient pool and wait for all.
/// Exceptions from tasks propagate to the caller (first one rethrown).
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t n_threads = 0);

}  // namespace precinct::support
