#include "support/json.hpp"

#include <cmath>
#include <iomanip>

namespace precinct::support {

std::string JsonObject::escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

JsonObject& JsonObject::set(const std::string& key, double value) {
  std::ostringstream oss;
  if (std::isfinite(value)) {
    oss << std::setprecision(12) << value;
  } else {
    oss << "null";  // JSON has no NaN/inf
  }
  fields_.emplace_back(key, oss.str());
  return *this;
}

JsonObject& JsonObject::set(const std::string& key, std::uint64_t value) {
  fields_.emplace_back(key, std::to_string(value));
  return *this;
}

JsonObject& JsonObject::set(const std::string& key, const std::string& value) {
  fields_.emplace_back(key, '"' + escape(value) + '"');
  return *this;
}

JsonObject& JsonObject::set(const std::string& key, bool value) {
  fields_.emplace_back(key, value ? "true" : "false");
  return *this;
}

JsonObject& JsonObject::set_raw(const std::string& key,
                                const std::string& encoded) {
  fields_.emplace_back(key, encoded);
  return *this;
}

std::string JsonObject::str(bool pretty) const {
  const char* sep = pretty ? ",\n  " : ", ";
  std::string out = pretty ? "{\n  " : "{";
  bool first = true;
  for (const auto& [key, encoded] : fields_) {
    if (!first) out += sep;
    first = false;
    out += '"' + escape(key) + "\": " + encoded;
  }
  out += pretty ? "\n}" : "}";
  return out;
}

}  // namespace precinct::support
