#include "support/json.hpp"

#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <stdexcept>

namespace precinct::support {

std::string JsonObject::escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

JsonObject& JsonObject::set(const std::string& key, double value) {
  std::ostringstream oss;
  if (std::isfinite(value)) {
    oss << std::setprecision(12) << value;
  } else {
    oss << "null";  // JSON has no NaN/inf
  }
  fields_.emplace_back(key, oss.str());
  return *this;
}

JsonObject& JsonObject::set(const std::string& key, std::uint64_t value) {
  fields_.emplace_back(key, std::to_string(value));
  return *this;
}

JsonObject& JsonObject::set(const std::string& key, const std::string& value) {
  fields_.emplace_back(key, '"' + escape(value) + '"');
  return *this;
}

JsonObject& JsonObject::set(const std::string& key, bool value) {
  fields_.emplace_back(key, value ? "true" : "false");
  return *this;
}

JsonObject& JsonObject::set_raw(const std::string& key,
                                const std::string& encoded) {
  fields_.emplace_back(key, encoded);
  return *this;
}

std::string JsonObject::str(bool pretty) const {
  const char* sep = pretty ? ",\n  " : ", ";
  std::string out = pretty ? "{\n  " : "{";
  bool first = true;
  for (const auto& [key, encoded] : fields_) {
    if (!first) out += sep;
    first = false;
    out += '"' + escape(key) + "\": " + encoded;
  }
  out += pretty ? "\n}" : "}";
  return out;
}

// ---------------------------------------------------------------------------
// FlatJson
// ---------------------------------------------------------------------------

namespace {

[[noreturn]] void bad(const std::string& what) {
  throw std::invalid_argument("FlatJson: " + what);
}

void skip_ws(const std::string& s, std::size_t& i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                          s[i] == '\r')) {
    ++i;
  }
}

/// Consume a quoted string starting at s[i] == '"'; returns the unescaped
/// content and leaves i one past the closing quote.
std::string take_string(const std::string& s, std::size_t& i) {
  if (i >= s.size() || s[i] != '"') bad("expected '\"'");
  ++i;
  std::string out;
  while (i < s.size() && s[i] != '"') {
    if (s[i] == '\\') {
      ++i;
      if (i >= s.size()) bad("dangling escape");
      switch (s[i]) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case '/': out += '/'; break;
        default: bad(std::string("unsupported escape \\") + s[i]);
      }
      ++i;
    } else {
      out += s[i++];
    }
  }
  if (i >= s.size()) bad("unterminated string");
  ++i;  // closing quote
  return out;
}

}  // namespace

FlatJson FlatJson::parse(const std::string& text) {
  FlatJson out;
  std::size_t i = 0;
  skip_ws(text, i);
  if (i >= text.size() || text[i] != '{') bad("expected '{'");
  ++i;
  skip_ws(text, i);
  if (i < text.size() && text[i] == '}') return out;  // empty object
  while (true) {
    skip_ws(text, i);
    const std::string key = take_string(text, i);
    skip_ws(text, i);
    if (i >= text.size() || text[i] != ':') bad("expected ':'");
    ++i;
    skip_ws(text, i);
    if (i >= text.size()) bad("truncated value");
    std::string value;
    if (text[i] == '"') {
      // Keep strings quoted (re-escaped minimally) so the getters can
      // tell a string token from a number token.
      value = '"' + take_string(text, i) + '"';
    } else if (text[i] == '{' || text[i] == '[') {
      bad("nested values are not supported");
    } else {
      while (i < text.size() && text[i] != ',' && text[i] != '}' &&
             text[i] != ' ' && text[i] != '\t' && text[i] != '\n' &&
             text[i] != '\r') {
        value += text[i++];
      }
      if (value.empty()) bad("empty value");
    }
    out.values_[key] = value;
    skip_ws(text, i);
    if (i >= text.size()) bad("unterminated object");
    if (text[i] == ',') {
      ++i;
      continue;
    }
    if (text[i] == '}') break;
    bad("expected ',' or '}'");
  }
  return out;
}

bool FlatJson::has(const std::string& key) const {
  return values_.count(key) != 0;
}

const std::string& FlatJson::raw(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) bad("missing key '" + key + "'");
  return it->second;
}

std::string FlatJson::get_string(const std::string& key) const {
  const std::string& v = raw(key);
  if (v.size() < 2 || v.front() != '"' || v.back() != '"') {
    bad("key '" + key + "' is not a string");
  }
  return v.substr(1, v.size() - 2);
}

std::uint64_t FlatJson::get_u64(const std::string& key) const {
  const std::string& v = raw(key);
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0') {
    bad("key '" + key + "' is not an unsigned integer");
  }
  return static_cast<std::uint64_t>(parsed);
}

double FlatJson::get_double(const std::string& key) const {
  const std::string& v = raw(key);
  char* end = nullptr;
  const double parsed = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0') {
    bad("key '" + key + "' is not a number");
  }
  return parsed;
}

}  // namespace precinct::support
