#include "support/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace precinct::support {

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0) {
    n_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto fut = packaged.get_future();
  {
    const std::scoped_lock lock(mutex_);
    queue_.push(std::move(packaged));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // exceptions are captured in the packaged_task's future
  }
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t n_threads) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  ThreadPool pool(n_threads == 0 ? std::min<std::size_t>(
                                       n, std::max<std::size_t>(
                                              1, std::thread::hardware_concurrency()))
                                 : n_threads);
  std::atomic<std::size_t> next{0};
  std::vector<std::future<void>> futures;
  futures.reserve(pool.size());
  for (std::size_t t = 0; t < pool.size(); ++t) {
    futures.push_back(pool.submit([&] {
      for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        fn(i);
      }
    }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace precinct::support
