#include "support/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

namespace precinct::support {

namespace {
thread_local bool t_in_pool_worker = false;
}  // namespace

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0) {
    n_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(0);
  return pool;
}

bool ThreadPool::in_worker() noexcept { return t_in_pool_worker; }

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto fut = packaged.get_future();
  {
    const std::scoped_lock lock(mutex_);
    queue_.push(std::move(packaged));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::worker_loop() {
  t_in_pool_worker = true;
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // exceptions are captured in the packaged_task's future
  }
}

namespace {

/// Shared state of one parallel_for call.  Helpers (pool workers) and the
/// caller claim indices from `next`; the caller waits until every claimed
/// index has finished.  Kept alive by shared_ptr: helper tasks that start
/// after the caller returned see next >= n and exit untouched.
struct ForState {
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t n = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> in_flight{0};
  std::mutex mutex;
  std::condition_variable done_cv;
  std::exception_ptr error;

  void drain() {
    for (;;) {
      in_flight.fetch_add(1, std::memory_order_acq_rel);
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) {
        finish_one();
        return;
      }
      try {
        (*fn)(i);
      } catch (...) {
        {
          const std::scoped_lock lock(mutex);
          if (!error) error = std::current_exception();
        }
        next.store(n, std::memory_order_relaxed);  // abandon the rest
      }
      finish_one();
    }
  }

  void finish_one() {
    if (in_flight.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
        next.load(std::memory_order_relaxed) >= n) {
      const std::scoped_lock lock(mutex);
      done_cv.notify_all();
    }
  }
};

}  // namespace

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t max_parallelism) {
  if (n == 0) return;
  if (n == 1 || max_parallelism == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool& pool = ThreadPool::global();
  auto state = std::make_shared<ForState>();
  state->fn = &fn;
  state->n = n;
  // The caller covers one share; helpers cover the rest.  Helpers only run
  // on idle workers, so a nested call from inside the pool degrades to the
  // caller draining its whole batch inline — never a deadlock, never a
  // thread spawn.
  std::size_t helpers = std::min(pool.size(), n - 1);
  if (max_parallelism != 0) {
    helpers = std::min(helpers, max_parallelism - 1);
  }
  for (std::size_t t = 0; t < helpers; ++t) {
    pool.submit([state] { state->drain(); });
  }
  state->drain();
  std::unique_lock lock(state->mutex);
  state->done_cv.wait(lock, [&] {
    return state->next.load(std::memory_order_relaxed) >= n &&
           state->in_flight.load(std::memory_order_acquire) == 0;
  });
  if (state->error) std::rethrow_exception(state->error);
}

Barrier::Barrier(std::size_t parties) : parties_(parties == 0 ? 1 : parties) {}

void Barrier::arrive_and_wait() {
  std::unique_lock lock(mutex_);
  const std::uint64_t my_generation = generation_;
  if (++waiting_ == parties_) {
    waiting_ = 0;
    ++generation_;
    lock.unlock();
    cv_.notify_all();
    return;
  }
  cv_.wait(lock, [&] { return generation_ != my_generation; });
}

std::uint64_t Barrier::cycles() const noexcept {
  const std::scoped_lock lock(mutex_);
  return generation_;
}

}  // namespace precinct::support
