#include "geo/geometry.hpp"

#include <algorithm>

namespace precinct::geo {

Rect Rect::united(const Rect& o) const noexcept {
  return Rect{{std::min(min.x, o.min.x), std::min(min.y, o.min.y)},
              {std::max(max.x, o.max.x), std::max(max.y, o.max.y)}};
}

Point Rect::clamp(Point p) const noexcept {
  return {std::clamp(p.x, min.x, std::nextafter(max.x, min.x)),
          std::clamp(p.y, min.y, std::nextafter(max.y, min.y))};
}

}  // namespace precinct::geo
