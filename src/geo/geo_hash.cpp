#include "geo/geo_hash.hpp"

#include "support/rng.hpp"

namespace precinct::geo {

Point GeoHash::location(Key key) const noexcept {
  // Two decorrelated 64-bit hashes -> uniform (x, y) in the area.
  const std::uint64_t hx = support::hash64(key);
  const std::uint64_t hy = support::hash64(key ^ 0x6c62272e07bb0142ULL);
  const double ux = static_cast<double>(hx >> 11) * 0x1.0p-53;
  const double uy = static_cast<double>(hy >> 11) * 0x1.0p-53;
  return {area_.min.x + ux * area_.width(), area_.min.y + uy * area_.height()};
}

RegionId GeoHash::home_region(Key key,
                              const RegionTable& table) const noexcept {
  return table.nearest(location(key));
}

RegionId GeoHash::replica_region(Key key,
                                 const RegionTable& table) const noexcept {
  return table.second_nearest(location(key));
}

std::vector<RegionId> GeoHash::key_regions(Key key, const RegionTable& table,
                                           std::size_t replicas) const {
  return table.nearest_k(location(key), replicas + 1);
}

}  // namespace precinct::geo
