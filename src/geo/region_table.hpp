// Region management (paper §2.1).
//
// The service area is divided into geographic regions, each identified by
// its center and rectangular extent.  Every peer keeps a RegionTable; the
// four paper operations — Add, Delete, Merge, Separate — mutate the table
// and bump its version so peers can detect stale tables and keys can be
// relocated after a topology change.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "geo/geometry.hpp"

namespace precinct::geo {

using RegionId = std::uint32_t;
inline constexpr RegionId kInvalidRegion = static_cast<RegionId>(-1);

/// One geographic region: stable id, center point, rectangular extent.
/// The paper represents regions by center + perimeter vertices; rectangles
/// (4 vertices) are what its own evaluation uses ("equal sized regions").
struct Region {
  RegionId id = kInvalidRegion;
  Point center;
  Rect extent;
};

/// The region table every peer carries.  Lookup operations implement the
/// paper's rules: a location's *home* region is the region whose center is
/// nearest, and its *replica* region is the second nearest (§2.4).
class RegionTable {
 public:
  RegionTable() = default;

  /// Build a kx-by-ky grid of equal rectangular regions over `area`
  /// (the configuration used throughout the paper's evaluation).
  static RegionTable grid(const Rect& area, std::uint32_t kx, std::uint32_t ky);

  // -- the four management operations (§2.1) -------------------------------

  /// Add a new region; returns its id.  Bumps version.
  RegionId add(Point center, const Rect& extent);

  /// Delete a region.  Returns false if the id is unknown.  Bumps version.
  bool remove(RegionId id);

  /// Merge two regions into a new one whose extent is the union bounding
  /// box and whose center is that box's center.  Returns the new region's
  /// id, or nullopt if either id is unknown.  Bumps version.
  std::optional<RegionId> merge(RegionId a, RegionId b);

  /// Separate a region into two halves along its longer axis.  Returns the
  /// pair of new ids, or nullopt if the id is unknown.  Bumps version.
  std::optional<std::pair<RegionId, RegionId>> separate(RegionId id);

  // -- lookups --------------------------------------------------------------

  /// Region whose center is closest to `p` — the home region of a hashed
  /// key location, and the region a peer at `p` belongs to.  Ties break by
  /// lower region id.  Returns kInvalidRegion when the table is empty.
  [[nodiscard]] RegionId nearest(Point p) const noexcept;

  /// Region with the second-closest center — the replica region (§2.4).
  /// Returns kInvalidRegion when fewer than two regions exist.
  [[nodiscard]] RegionId second_nearest(Point p) const noexcept;

  /// The k regions with the closest centers, nearest first (ties by lower
  /// id).  Generalizes home/replica selection to multiple replicas
  /// (§2.4: "easily extended to multiple replicas").  Returns fewer than
  /// k entries when the table is smaller.
  [[nodiscard]] std::vector<RegionId> nearest_k(Point p, std::size_t k) const;

  /// Region whose *extent* contains `p` (membership test for scoped
  /// floods).  Falls back to nearest() when no extent contains it (can
  /// happen after merge/separate leave gaps).
  [[nodiscard]] RegionId containing(Point p) const noexcept;

  [[nodiscard]] const Region* find(RegionId id) const noexcept;
  [[nodiscard]] const std::vector<Region>& regions() const noexcept {
    return regions_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return regions_.size(); }
  [[nodiscard]] bool empty() const noexcept { return regions_.empty(); }

  /// Monotone version; incremented by every mutating operation so peers
  /// can detect that a disseminated table supersedes theirs.
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

  /// Ids of regions whose centers are adjacent (within `radius`) to the
  /// given region's center — used to pick merge candidates.
  [[nodiscard]] std::vector<RegionId> neighbors_of(RegionId id,
                                                   double radius) const;

 private:
  std::vector<Region> regions_;
  RegionId next_id_ = 0;
  std::uint64_t version_ = 0;
};

}  // namespace precinct::geo
