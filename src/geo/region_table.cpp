#include "geo/region_table.hpp"

#include <algorithm>
#include <limits>

namespace precinct::geo {

RegionTable RegionTable::grid(const Rect& area, std::uint32_t kx,
                              std::uint32_t ky) {
  RegionTable table;
  const double w = area.width() / kx;
  const double h = area.height() / ky;
  for (std::uint32_t iy = 0; iy < ky; ++iy) {
    for (std::uint32_t ix = 0; ix < kx; ++ix) {
      const Rect extent{{area.min.x + ix * w, area.min.y + iy * h},
                        {area.min.x + (ix + 1) * w, area.min.y + (iy + 1) * h}};
      table.add(extent.center(), extent);
    }
  }
  return table;
}

RegionId RegionTable::add(Point center, const Rect& extent) {
  const RegionId id = next_id_++;
  regions_.push_back(Region{id, center, extent});
  ++version_;
  return id;
}

bool RegionTable::remove(RegionId id) {
  const auto it = std::find_if(regions_.begin(), regions_.end(),
                               [id](const Region& r) { return r.id == id; });
  if (it == regions_.end()) return false;
  regions_.erase(it);
  ++version_;
  return true;
}

std::optional<RegionId> RegionTable::merge(RegionId a, RegionId b) {
  const Region* ra = find(a);
  const Region* rb = find(b);
  if (ra == nullptr || rb == nullptr || a == b) return std::nullopt;
  const Rect united = ra->extent.united(rb->extent);
  remove(a);
  remove(b);
  return add(united.center(), united);
}

std::optional<std::pair<RegionId, RegionId>> RegionTable::separate(
    RegionId id) {
  const Region* r = find(id);
  if (r == nullptr) return std::nullopt;
  const Rect extent = r->extent;
  Rect left = extent;
  Rect right = extent;
  if (extent.width() >= extent.height()) {
    const double mid = (extent.min.x + extent.max.x) * 0.5;
    left.max.x = mid;
    right.min.x = mid;
  } else {
    const double mid = (extent.min.y + extent.max.y) * 0.5;
    left.max.y = mid;
    right.min.y = mid;
  }
  remove(id);
  const RegionId i1 = add(left.center(), left);
  const RegionId i2 = add(right.center(), right);
  return std::make_pair(i1, i2);
}

RegionId RegionTable::nearest(Point p) const noexcept {
  RegionId best = kInvalidRegion;
  double best_d = std::numeric_limits<double>::infinity();
  for (const Region& r : regions_) {
    const double d = distance_sq(r.center, p);
    if (d < best_d || (d == best_d && r.id < best)) {
      best_d = d;
      best = r.id;
    }
  }
  return best;
}

RegionId RegionTable::second_nearest(Point p) const noexcept {
  RegionId best = kInvalidRegion;
  RegionId second = kInvalidRegion;
  double best_d = std::numeric_limits<double>::infinity();
  double second_d = std::numeric_limits<double>::infinity();
  for (const Region& r : regions_) {
    const double d = distance_sq(r.center, p);
    if (d < best_d || (d == best_d && r.id < best)) {
      second_d = best_d;
      second = best;
      best_d = d;
      best = r.id;
    } else if (d < second_d || (d == second_d && r.id < second)) {
      second_d = d;
      second = r.id;
    }
  }
  return second;
}

std::vector<RegionId> RegionTable::nearest_k(Point p, std::size_t k) const {
  std::vector<const Region*> order;
  order.reserve(regions_.size());
  for (const Region& r : regions_) order.push_back(&r);
  const std::size_t take = std::min(k, order.size());
  std::partial_sort(order.begin(), order.begin() + static_cast<long>(take),
                    order.end(), [p](const Region* a, const Region* b) {
                      const double da = distance_sq(a->center, p);
                      const double db = distance_sq(b->center, p);
                      return da != db ? da < db : a->id < b->id;
                    });
  std::vector<RegionId> out;
  out.reserve(take);
  for (std::size_t i = 0; i < take; ++i) out.push_back(order[i]->id);
  return out;
}

RegionId RegionTable::containing(Point p) const noexcept {
  for (const Region& r : regions_) {
    if (r.extent.contains(p)) return r.id;
  }
  return nearest(p);
}

const Region* RegionTable::find(RegionId id) const noexcept {
  const auto it = std::find_if(regions_.begin(), regions_.end(),
                               [id](const Region& r) { return r.id == id; });
  return it == regions_.end() ? nullptr : &*it;
}

std::vector<RegionId> RegionTable::neighbors_of(RegionId id,
                                                double radius) const {
  std::vector<RegionId> out;
  const Region* r = find(id);
  if (r == nullptr) return out;
  for (const Region& o : regions_) {
    if (o.id != id && distance(o.center, r->center) <= radius) {
      out.push_back(o.id);
    }
  }
  return out;
}

}  // namespace precinct::geo
