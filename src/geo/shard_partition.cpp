#include "geo/shard_partition.hpp"

#include <algorithm>
#include <stdexcept>

namespace precinct::geo {

ShardPartition partition_grid(std::uint32_t nx, std::uint32_t ny,
                              std::uint32_t n_shards) {
  const std::uint64_t total = static_cast<std::uint64_t>(nx) * ny;
  if (total == 0) {
    throw std::invalid_argument("partition_grid: empty domain grid");
  }
  ShardPartition p;
  p.n_shards = static_cast<std::uint32_t>(
      std::clamp<std::uint64_t>(n_shards, 1, total));
  p.shard_of.resize(total);
  p.members.resize(p.n_shards);
  // Contiguous runs of size ceil(total/K) for the first (total % K) shards
  // and floor(total/K) for the rest: balanced within one, adjacent in
  // row-major order.
  const std::uint64_t base = total / p.n_shards;
  const std::uint64_t extra = total % p.n_shards;
  std::uint64_t next = 0;
  for (std::uint32_t s = 0; s < p.n_shards; ++s) {
    const std::uint64_t count = base + (s < extra ? 1 : 0);
    p.members[s].reserve(count);
    for (std::uint64_t i = 0; i < count; ++i, ++next) {
      p.shard_of[next] = s;
      p.members[s].push_back(static_cast<std::uint32_t>(next));
    }
  }
  return p;
}

std::uint32_t world_column_of(double x, double min_x, double width,
                              std::uint32_t nx) {
  if (nx == 0 || width <= 0.0) {
    throw std::invalid_argument("world_column_of: empty world");
  }
  const double cell = width / static_cast<double>(nx);
  const auto col = static_cast<std::int64_t>((x - min_x) / cell);
  return static_cast<std::uint32_t>(
      std::clamp<std::int64_t>(col, 0, static_cast<std::int64_t>(nx) - 1));
}

bool world_boundary_column(std::uint32_t col,
                           const std::vector<std::uint32_t>& shard_of) {
  const std::size_t n = shard_of.size();
  if (col >= n) throw std::invalid_argument("world_boundary_column: bad col");
  if (col > 0 && shard_of[col - 1] != shard_of[col]) return true;
  return col + 1 < n && shard_of[col + 1] != shard_of[col];
}

std::uint64_t cut_edges(std::uint32_t nx, std::uint32_t ny,
                        const std::vector<std::uint32_t>& shard_of) {
  std::uint64_t cuts = 0;
  for (std::uint32_t y = 0; y < ny; ++y) {
    for (std::uint32_t x = 0; x < nx; ++x) {
      const std::size_t i = static_cast<std::size_t>(y) * nx + x;
      if (x + 1 < nx && shard_of[i] != shard_of[i + 1]) ++cuts;
      if (y + 1 < ny && shard_of[i] != shard_of[i + nx]) ++cuts;
    }
  }
  return cuts;
}

}  // namespace precinct::geo
