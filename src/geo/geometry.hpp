// Planar geometry primitives for the mobile network plane.
#pragma once

#include <cmath>

namespace precinct::geo {

/// A point (or displacement) in the 2-D service area, meters.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend constexpr Point operator+(Point a, Point b) noexcept {
    return {a.x + b.x, a.y + b.y};
  }
  friend constexpr Point operator-(Point a, Point b) noexcept {
    return {a.x - b.x, a.y - b.y};
  }
  friend constexpr Point operator*(Point p, double s) noexcept {
    return {p.x * s, p.y * s};
  }
  friend constexpr bool operator==(Point a, Point b) noexcept {
    return a.x == b.x && a.y == b.y;
  }
};

[[nodiscard]] inline double norm(Point p) noexcept {
  return std::hypot(p.x, p.y);
}

[[nodiscard]] inline double distance(Point a, Point b) noexcept {
  return norm(a - b);
}

[[nodiscard]] inline double distance_sq(Point a, Point b) noexcept {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Angle of the vector from `from` to `to`, radians in (-pi, pi].
[[nodiscard]] inline double bearing(Point from, Point to) noexcept {
  return std::atan2(to.y - from.y, to.x - from.x);
}

/// Axis-aligned rectangle [min, max) used for region extents and the
/// service area.
struct Rect {
  Point min;
  Point max;

  [[nodiscard]] constexpr bool contains(Point p) const noexcept {
    return p.x >= min.x && p.x < max.x && p.y >= min.y && p.y < max.y;
  }
  [[nodiscard]] constexpr Point center() const noexcept {
    return {(min.x + max.x) * 0.5, (min.y + max.y) * 0.5};
  }
  [[nodiscard]] constexpr double width() const noexcept { return max.x - min.x; }
  [[nodiscard]] constexpr double height() const noexcept {
    return max.y - min.y;
  }
  [[nodiscard]] constexpr double area() const noexcept {
    return width() * height();
  }
  /// Smallest rectangle covering both.
  [[nodiscard]] Rect united(const Rect& o) const noexcept;
  /// Clamp a point into the rectangle (used to keep waypoints in-bounds).
  [[nodiscard]] Point clamp(Point p) const noexcept;
};

}  // namespace precinct::geo
