// Region/tile -> shard partitioning for the sharded parallel executor
// (DESIGN.md §11).
//
// The unit of parallelism is a *domain* (a tile of regions running a full
// protocol stack); the partitioner assigns each domain of an nx-by-ny
// grid to one of K shards.  Two properties matter:
//
//   * balance — shard populations differ by at most one domain, so no
//     worker is structurally starved or overloaded;
//   * adjacency — each shard's domains form one contiguous run in
//     row-major (boustrophedon-free) order, which keeps spatially
//     adjacent tiles on the same shard and minimizes the number of
//     grid edges cut by the partition.  Cross-shard gateway traffic is
//     what pays for cut edges, so fewer cuts means fewer mailbox
//     messages contending at barrier ticks.
//
// The partition is a pure function of (nx, ny, n_shards): every run with
// the same configuration produces the same assignment, which the
// determinism gate depends on.
#pragma once

#include <cstdint>
#include <vector>

namespace precinct::geo {

struct ShardPartition {
  std::uint32_t n_shards = 1;
  /// Domain index (row-major over the grid) -> owning shard.
  std::vector<std::uint32_t> shard_of;
  /// Shard -> its domain indices, ascending.
  std::vector<std::vector<std::uint32_t>> members;

  [[nodiscard]] std::size_t domains() const noexcept {
    return shard_of.size();
  }
};

/// Partition the nx*ny domain grid into `n_shards` contiguous, balanced
/// row-major runs.  n_shards is clamped to [1, nx*ny] (a shard with zero
/// domains would be a dead worker).  Throws std::invalid_argument when the
/// grid is empty.
[[nodiscard]] ShardPartition partition_grid(std::uint32_t nx, std::uint32_t ny,
                                            std::uint32_t n_shards);

/// Number of 4-neighbor grid edges whose endpoints live on different
/// shards — the partition-quality metric the tests pin (contiguous strips
/// must never cut more edges than a round-robin assignment).
[[nodiscard]] std::uint64_t cut_edges(std::uint32_t nx, std::uint32_t ny,
                                      const std::vector<std::uint32_t>& shard_of);

}  // namespace precinct::geo
