// Region/tile -> shard partitioning for the sharded parallel executor
// (DESIGN.md §11).
//
// The unit of parallelism is a *domain* (a tile of regions running a full
// protocol stack); the partitioner assigns each domain of an nx-by-ny
// grid to one of K shards.  Two properties matter:
//
//   * balance — shard populations differ by at most one domain, so no
//     worker is structurally starved or overloaded;
//   * adjacency — each shard's domains form one contiguous run in
//     row-major (boustrophedon-free) order, which keeps spatially
//     adjacent tiles on the same shard and minimizes the number of
//     grid edges cut by the partition.  Cross-shard gateway traffic is
//     what pays for cut edges, so fewer cuts means fewer mailbox
//     messages contending at barrier ticks.
//
// The partition is a pure function of (nx, ny, n_shards): every run with
// the same configuration produces the same assignment, which the
// determinism gate depends on.
#pragma once

#include <cstdint>
#include <vector>

namespace precinct::geo {

struct ShardPartition {
  std::uint32_t n_shards = 1;
  /// Domain index (row-major over the grid) -> owning shard.
  std::vector<std::uint32_t> shard_of;
  /// Shard -> its domain indices, ascending.
  std::vector<std::vector<std::uint32_t>> members;

  [[nodiscard]] std::size_t domains() const noexcept {
    return shard_of.size();
  }
};

/// Partition the nx*ny domain grid into `n_shards` contiguous, balanced
/// row-major runs.  n_shards is clamped to [1, nx*ny] (a shard with zero
/// domains would be a dead worker).  Throws std::invalid_argument when the
/// grid is empty.
[[nodiscard]] ShardPartition partition_grid(std::uint32_t nx, std::uint32_t ny,
                                            std::uint32_t n_shards);

/// Number of 4-neighbor grid edges whose endpoints live on different
/// shards — the partition-quality metric the tests pin (contiguous strips
/// must never cut more edges than a round-robin assignment).
[[nodiscard]] std::uint64_t cut_edges(std::uint32_t nx, std::uint32_t ny,
                                      const std::vector<std::uint32_t>& shard_of);

// -- world sharding (DESIGN.md §13) -----------------------------------------
//
// When one world is cut (rather than independent tiles coupled), the
// domain is a vertical strip of region columns: column strips keep the
// region grid's natural adjacency, so cross-domain radio traffic only
// pays for the strip boundaries.  `world_column_of` is the ownership
// function — a node belongs to the domain of the region column its t=0
// position falls in — and `world_boundary_column` marks the columns whose
// radio range can reach another domain (the halo membership).

/// The region column (0..nx-1) that x-coordinate `x` falls in on a plane
/// spanning [min_x, min_x + width).  Clamped at both edges so nodes
/// exactly on (or numerically past) the plane boundary stay inside.
[[nodiscard]] std::uint32_t world_column_of(double x, double min_x,
                                            double width, std::uint32_t nx);

/// True when region column `col` of an nx-column world is adjacent to a
/// cut — i.e. the column's strip borders a different domain, so frames
/// from its nodes can cross domains.
[[nodiscard]] bool world_boundary_column(
    std::uint32_t col, const std::vector<std::uint32_t>& shard_of);

}  // namespace precinct::geo
