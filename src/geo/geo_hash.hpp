// Geographic hash (paper §1, §2): h(k) maps a data key to a location in
// the service area; the key's home region is the region whose center is
// nearest that location, and its replica region is the second nearest.
#pragma once

#include <cstdint>

#include "geo/geometry.hpp"
#include "geo/region_table.hpp"

namespace precinct::geo {

/// Data keys are opaque 64-bit identifiers.
using Key = std::uint64_t;

/// Deterministic geographic hash.  Stateless apart from the area mapped
/// into, so all peers agree on every key's location without coordination.
class GeoHash {
 public:
  explicit GeoHash(const Rect& area) noexcept : area_(area) {}

  /// The hashed location of `key`, uniform over the area.
  [[nodiscard]] Point location(Key key) const noexcept;

  /// Home region: nearest center to the hashed location.
  [[nodiscard]] RegionId home_region(Key key,
                                     const RegionTable& table) const noexcept;

  /// Replica region: second-nearest center (§2.4).
  [[nodiscard]] RegionId replica_region(
      Key key, const RegionTable& table) const noexcept;

  /// The home region followed by up to `replicas` replica regions, in
  /// proximity order (home first).
  [[nodiscard]] std::vector<RegionId> key_regions(
      Key key, const RegionTable& table, std::size_t replicas) const;

  [[nodiscard]] const Rect& area() const noexcept { return area_; }

 private:
  Rect area_;
};

}  // namespace precinct::geo
