// ShardedScenario: a city-scale world of tiles_x * tiles_y independent
// PReCinCt areas (each a full Scenario stack: mobility, radio, engine,
// catalog), coupled by inter-tile gateway traffic and advanced in
// parallel by the region-sharded conservative executor (DESIGN.md §11).
//
// Tiles are the unit of parallelism: all intra-tile physics stays on the
// tile's own Simulator, and the only cross-tile interaction is gateway
// request/ack traffic whose latency (config.gateway_latency_s) is the
// executor's conservative lookahead.  Each ordered pair of 4-adjacent
// tiles carries a Poisson request stream (mean config.gateway_interval_s)
// driven by a per-pair RNG that only the source tile's events touch, so
// there is no shared mutable state anywhere in the world — which is what
// makes `shards = K` byte-identical to `shards = 1` for every K.
//
// A gateway request: a node in the source tile uplinks a header to the
// backhaul (egress energy + stats), the destination tile receives it
// after the gateway latency (ingress accounting) and a node there
// performs a real regional retrieval on the requester's behalf; the ack
// travels back the same way and closes the RTT.  All of it runs at
// modeled cost through the tiles' own radios and engines.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/metrics.hpp"
#include "core/scenario.hpp"
#include "geo/shard_partition.hpp"
#include "sim/shard_exec.hpp"
#include "support/rng.hpp"

namespace precinct::core {

/// Aggregate + per-tile results of a sharded run.  Everything except
/// `shards` and `partition_cut_edges` is invariant to the shard count;
/// sharded_fingerprint() covers exactly the invariant part.
struct ShardedMetrics {
  Metrics aggregate;               ///< merge_metrics over all tiles
  std::vector<Metrics> per_tile;   ///< tile-order window metrics
  std::uint32_t tiles = 1;
  std::uint32_t shards = 1;        ///< excluded from the fingerprint
  std::uint64_t gateway_requests = 0;  ///< forwarded cross-tile
  std::uint64_t gateway_served = 0;    ///< executed at the destination
  std::uint64_t gateway_acks = 0;      ///< acks received back
  double gateway_rtt_sum_s = 0.0;      ///< sum over acked round trips
  std::uint64_t windows = 0;           ///< executor lookahead windows
  std::uint64_t messages_merged = 0;   ///< cross-tile mailbox messages
  std::uint64_t partition_cut_edges = 0;  ///< excluded from the fingerprint
};

/// Canonical text form of everything that must be byte-identical across
/// shard counts: the aggregate fingerprint, the gateway/window counters,
/// then every tile's own fingerprint.  The determinism gate diffs this
/// string for shards in {1, 2, 4, 8}.
[[nodiscard]] std::string sharded_fingerprint(const ShardedMetrics& m);

class ShardedScenario {
 public:
  explicit ShardedScenario(const PrecinctConfig& config);

  /// Warm-up + measurement across all tiles; one-shot.
  ShardedMetrics run();

  [[nodiscard]] std::size_t tile_count() const noexcept {
    return tiles_.size();
  }
  [[nodiscard]] Scenario& tile(std::size_t i) { return *tiles_.at(i); }
  [[nodiscard]] const geo::ShardPartition& partition() const noexcept {
    return partition_;
  }
  [[nodiscard]] sim::ShardExecutor& executor() noexcept { return *exec_; }
  [[nodiscard]] const PrecinctConfig& config() const noexcept {
    return config_;
  }

 private:
  /// One directed Poisson stream between 4-adjacent tiles.  The RNG is
  /// touched only by events on the source tile's simulator.
  struct GatewayStream {
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    support::Rng rng;
  };
  /// Per-tile gateway counters, each written only by events running on
  /// that tile's simulator (cache-line padded: adjacent tiles may live on
  /// different workers).
  struct alignas(64) TileGatewayCounters {
    std::uint64_t sent = 0;
    std::uint64_t served = 0;
    std::uint64_t acks = 0;
    double rtt_sum_s = 0.0;
  };

  void schedule_next_arrival(std::size_t stream_index);
  void fire_gateway(std::size_t stream_index);

  PrecinctConfig config_;
  geo::ShardPartition partition_;
  std::vector<std::unique_ptr<Scenario>> tiles_;
  std::unique_ptr<sim::ShardExecutor> exec_;
  std::vector<GatewayStream> streams_;
  std::vector<TileGatewayCounters> counters_;
  bool ran_ = false;
};

/// Convenience: build, run, return.
[[nodiscard]] ShardedMetrics run_sharded_scenario(const PrecinctConfig& config);

}  // namespace precinct::core
