// Run metrics: everything the paper's figures plot, collected over the
// measurement window (requests issued during warm-up are excluded).
#pragma once

#include <cstdint>

#include <array>
#include <string>
#include <vector>

#include "support/stats.hpp"

namespace precinct::core {

/// Where a request was ultimately served from.
enum class HitClass : std::uint8_t {
  kOwnCache,      ///< requester's own static or dynamic space
  kRegionalCache, ///< another peer in the requester's region (local hit)
  kEnRoute,       ///< a peer on the path to the home region (§3.1)
  kHomeRegion,    ///< the key's home region
  kReplicaRegion, ///< fault-tolerance fallback (§2.4)
  kFailed,        ///< no response (timeouts / unreachable)
};

/// Geographic-routing diagnostics: packets abandoned by the forwarding
/// layer.  Kept as a first-class struct so the counters travel together
/// (lifetime totals live on the EngineContext; Metrics carries the
/// measurement-window delta).
struct RoutingStats {
  std::uint64_t drops_void = 0;  ///< dead ends even in perimeter mode
                                 ///< (void recovery broadcast fired)
  std::uint64_t drops_ttl = 0;   ///< hop budget exhausted in flight
};

struct Metrics {
  // -- request accounting ----------------------------------------------------
  std::uint64_t requests_issued = 0;
  std::uint64_t requests_completed = 0;
  std::uint64_t requests_failed = 0;
  std::uint64_t own_cache_hits = 0;
  std::uint64_t regional_hits = 0;
  std::uint64_t en_route_hits = 0;
  std::uint64_t home_region_hits = 0;
  std::uint64_t replica_hits = 0;

  support::RunningStats latency_s;       ///< completed requests only
  support::QuantileSampler latency_q;
  /// Latency split by where the request was served from (indexed by
  /// HitClass; kFailed unused).
  std::array<support::RunningStats, 6> latency_by_class;

  // -- byte hit ratio (Fig 5): bytes served from the cumulative regional
  //    cache over total bytes requested --------------------------------------
  std::uint64_t bytes_requested = 0;
  std::uint64_t bytes_hit = 0;

  // -- consistency (Fig 6/7) ---------------------------------------------------
  std::uint64_t updates_initiated = 0;
  std::uint64_t cache_served_valid = 0;  ///< hits served as valid
  std::uint64_t false_hits = 0;          ///< of those, actually stale
  std::uint64_t polls_sent = 0;
  std::uint64_t consistency_messages = 0;  ///< push/poll/reply/invalidation sends

  // -- energy (Fig 9) -----------------------------------------------------------
  double energy_total_mj = 0.0;
  double energy_broadcast_mj = 0.0;  ///< send+receive of broadcast frames
  double energy_p2p_mj = 0.0;        ///< send/receive/overhear of unicast
  double energy_channel_discard_mj = 0.0;  ///< frames the channel erased

  // -- timeline (optional; see PrecinctConfig::sample_interval_s) ------------
  /// Periodic snapshot of cumulative behaviour during the measurement
  /// window, for convergence inspection.
  struct Sample {
    double t_s = 0.0;
    std::uint64_t requests_completed = 0;
    double hit_ratio = 0.0;       ///< own+regional hits / issued, so far
    double avg_latency_s = 0.0;   ///< cumulative mean
    double energy_mj = 0.0;       ///< cumulative network energy
  };
  std::vector<Sample> timeline;

  // -- substrate counters ---------------------------------------------------------
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  /// Transport-layer traffic: the encoded size of every frame under the
  /// wire codec (transport/wire_format), summed over transmissions /
  /// deliveries in the window.  Deliberately NOT in fingerprint(): the
  /// nine pinned fingerprint configs predate the codec and must stay
  /// byte-identical (the fleet fingerprint covers these separately).
  std::uint64_t wire_bytes_sent = 0;
  std::uint64_t wire_bytes_received = 0;
  std::uint64_t frames_lost = 0;
  /// Frames erased by the channel model (fault injection), disjoint from
  /// frames_lost; the per-cause split is indexed by channel::DropCause.
  std::uint64_t frames_dropped_by_channel = 0;
  std::array<std::uint64_t, 4> channel_drops_by_cause{};
  /// Remote-lookup frames re-sent after an unanswered timeout, plus
  /// re-pushed consistency updates (retry/backoff hardening).
  std::uint64_t retransmissions = 0;
  /// Responses that arrived after the request already completed (a retry
  /// raced the original answer) and were dropped instead of double-counted.
  std::uint64_t duplicate_responses_suppressed = 0;
  std::uint64_t custody_handoffs = 0;
  std::uint64_t events_executed = 0;
  RoutingStats routing;  ///< geographic drops during the window

  // -- derived -----------------------------------------------------------------
  [[nodiscard]] double avg_latency_s() const noexcept {
    return latency_s.mean();
  }
  [[nodiscard]] double byte_hit_ratio() const noexcept {
    return bytes_requested
               ? static_cast<double>(bytes_hit) /
                     static_cast<double>(bytes_requested)
               : 0.0;
  }
  [[nodiscard]] double hit_ratio() const noexcept {
    const auto hits = own_cache_hits + regional_hits;
    return requests_issued ? static_cast<double>(hits) /
                                 static_cast<double>(requests_issued)
                           : 0.0;
  }
  [[nodiscard]] double false_hit_ratio() const noexcept {
    return cache_served_valid ? static_cast<double>(false_hits) /
                                    static_cast<double>(cache_served_valid)
                              : 0.0;
  }
  [[nodiscard]] double success_ratio() const noexcept {
    return requests_issued ? static_cast<double>(requests_completed) /
                                 static_cast<double>(requests_issued)
                           : 0.0;
  }
  [[nodiscard]] double energy_per_request_mj() const noexcept {
    return requests_completed
               ? energy_total_mj / static_cast<double>(requests_completed)
               : 0.0;
  }

  void record_hit(HitClass hit_class) noexcept;
};

/// Canonical `key=value` rendering of every deterministic Metrics field,
/// one per line, doubles as `%a` hex-floats so equality is exact.  Two
/// runs are behaviour-identical iff their fingerprints match
/// byte-for-byte; the fingerprint tool and the scenario fuzzer's
/// metamorphic properties both compare through this.
[[nodiscard]] std::string fingerprint(const Metrics& m);

}  // namespace precinct::core
