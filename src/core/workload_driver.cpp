#include "core/workload_driver.hpp"

#include <algorithm>
#include <vector>

#include "core/consistency_scheme.hpp"
#include "core/custody_manager.hpp"
#include "core/retrieval_scheme.hpp"

namespace precinct::core {

void WorkloadDriver::register_handlers(net::PacketDispatcher& dispatch) {
  dispatch.set(net::PacketKind::kBeacon,
               [this](net::NodeId self, const net::Packet& packet) {
                 handle_beacon(self, packet);
               });
}

geo::Key WorkloadDriver::sample_key(net::NodeId peer) {
  std::size_t rank = ctx_.zipf.sample(ctx_.peers[peer].rng);
  if (ctx_.config.hotspot_rotation_interval_s > 0.0) {
    const auto rotations = static_cast<std::size_t>(
        ctx_.sim.now() / ctx_.config.hotspot_rotation_interval_s);
    rank = (rank + rotations * ctx_.config.hotspot_shift) %
           ctx_.catalog.size();
  }
  return ctx_.catalog.key_of(rank);
}

void WorkloadDriver::schedule_next_request(net::NodeId peer) {
  // Flash crowds divide the mean interval; the default multiplier of 1
  // leaves the paper's schedule bit-identical (x / 1.0 == x).
  const double wait = ctx_.peers[peer].rng.exponential(
      ctx_.config.mean_request_interval_s /
      ctx_.config.request_rate_multiplier);
  const std::uint32_t generation = ctx_.peers[peer].generation;
  ctx_.sim.schedule(wait, [this, peer, generation] {
    if (ctx_.net.is_alive(peer) &&
        ctx_.peers[peer].generation == generation) {
      ctx_.retrieval->issue(peer, sample_key(peer), /*prefetch=*/false);
      schedule_next_request(peer);
    }
  });
}

void WorkloadDriver::schedule_next_update(net::NodeId peer) {
  const double wait =
      ctx_.peers[peer].rng.exponential(ctx_.config.mean_update_interval_s);
  const std::uint32_t generation = ctx_.peers[peer].generation;
  ctx_.sim.schedule(wait, [this, peer, generation] {
    if (ctx_.net.is_alive(peer) &&
        ctx_.peers[peer].generation == generation) {
      ctx_.consistency->initiate_update(peer, sample_key(peer));
      schedule_next_update(peer);
    }
  });
}

void WorkloadDriver::schedule_script(
    const std::vector<workload::ScriptEvent>& events) {
  const std::size_t n_nodes = ctx_.net.node_count();
  const std::size_t catalog_size = ctx_.catalog.size();
  for (const workload::ScriptEvent& ev : events) {
    if (ev.node >= n_nodes) {
      throw std::invalid_argument(
          "workload script: node " + std::to_string(ev.node) +
          " out of range (n_nodes = " + std::to_string(n_nodes) + ")");
    }
    if (!ctx_.shard.owns(ev.node)) continue;
    const geo::Key key = ctx_.catalog.key_of(ev.rank % catalog_size);
    ctx_.sim.schedule_at(ev.t_s, [this, ev, key] {
      if (!ctx_.net.is_alive(ev.node)) return;
      if (ev.op == workload::ScriptEvent::Op::kUpdate) {
        ctx_.consistency->initiate_update(ev.node, key);
      } else {
        ctx_.retrieval->issue(ev.node, key, /*prefetch=*/false);
      }
    });
  }
}

void WorkloadDriver::schedule_zipf_drift() {
  ctx_.sim.schedule(ctx_.config.zipf_drift_step_s, [this] {
    const double theta = std::clamp(
        ctx_.config.zipf_theta +
            ctx_.config.zipf_drift_per_s * ctx_.sim.now(),
        0.0, 4.0);
    ctx_.zipf.reset_theta(theta);
    schedule_zipf_drift();
  });
}

void WorkloadDriver::schedule_region_checks() {
  const bool has_fixed = ctx_.config.has_fixed_nodes();
  for (net::NodeId i = 0; i < ctx_.net.node_count(); ++i) {
    // Only the owner domain watches a node's region: it alone runs the
    // handoff protocol, and its set_region posts the halo delta.
    if (!ctx_.shard.owns(i)) continue;
    // Fixed roadside units never cross a boundary; don't poll them.
    if (has_fixed && ctx_.net.node_state().fixed(i)) continue;
    // Stagger checks so the whole fleet doesn't probe at the same instant.
    const double offset =
        ctx_.peers[i].rng.uniform(0.0, ctx_.config.region_check_interval_s);
    ctx_.sim.schedule(offset, [this, i] { ctx_.custody->check_region(i); });
  }
}

void WorkloadDriver::schedule_beacon(net::NodeId peer) {
  // Jittered periodic position broadcast (GPSR neighbor discovery).
  const double wait = ctx_.config.beacon_interval_s *
                      (0.75 + 0.5 * ctx_.peers[peer].rng.uniform());
  const std::uint32_t generation = ctx_.peers[peer].generation;
  ctx_.sim.schedule(wait, [this, peer, generation] {
    if (!ctx_.net.is_alive(peer) ||
        ctx_.peers[peer].generation != generation) {
      return;
    }
    // Piggybacking (GPSR): recent data traffic already announced our
    // position to everyone in range; skip the redundant beacon.
    const bool traffic_recent =
        ctx_.config.beacon_piggyback &&
        ctx_.sim.now() - ctx_.net.last_transmission_s(peer) <
            ctx_.config.beacon_interval_s;
    if (!traffic_recent) {
      net::Packet beacon =
          ctx_.make_packet(net::PacketKind::kBeacon, peer, 0);
      beacon.size_bytes = 32;  // id + position + checksum
      beacon.ttl = 1;          // never forwarded
      ctx_.net.broadcast(beacon);
    }
    schedule_beacon(peer);
  });
}

void WorkloadDriver::handle_beacon(net::NodeId self,
                                   const net::Packet& packet) {
  if (ctx_.beacons != nullptr) {
    ctx_.beacons->on_beacon(self, packet.origin, packet.origin_location,
                            ctx_.sim.now());
  }
}

support::Rng& WorkloadDriver::inject_rng() {
  if (!ctx_.shard.active()) return ctx_.rng;
  if (!shard_inject_rng_) {
    shard_inject_rng_ = std::make_unique<support::Rng>(support::hash_combine(
        support::hash_combine(ctx_.config.seed, 0xFA11), ctx_.shard.domain));
  }
  return *shard_inject_rng_;
}

double WorkloadDriver::owned_fraction() const {
  if (!ctx_.shard.active()) return 1.0;
  std::size_t owned = 0;
  const std::size_t n = ctx_.net.node_count();
  for (net::NodeId i = 0; i < n; ++i) {
    if (ctx_.shard.owns(i)) ++owned;
  }
  return n > 0 ? static_cast<double>(owned) / static_cast<double>(n) : 0.0;
}

void WorkloadDriver::schedule_crashes() {
  // World-sharded: each domain injects crashes for its own nodes at its
  // population share of the network-wide rate, from a per-domain stream —
  // the aggregate churn matches a plain run in expectation while staying
  // deterministic for any worker count.
  const double rate = ctx_.config.crash_rate_per_s * owned_fraction();
  if (rate <= 0.0) return;  // a domain that owns nothing injects nothing
  const double wait = inject_rng().exponential(1.0 / rate);
  ctx_.sim.schedule(wait, [this] {
    // Crash a uniformly random live owned peer.
    std::vector<net::NodeId> alive;
    for (net::NodeId i = 0; i < ctx_.net.node_count(); ++i) {
      if (ctx_.shard.owns(i) && ctx_.net.is_alive(i)) alive.push_back(i);
    }
    if (alive.size() > 2) {  // keep at least a residual network
      support::Rng& rng = inject_rng();
      const net::NodeId victim = alive[rng.uniform_int(alive.size())];
      ctx_.custody->fail_peer(victim,
                              rng.uniform() < ctx_.config.graceful_fraction);
    }
    schedule_crashes();
  });
}

void WorkloadDriver::schedule_joins() {
  const double rate = ctx_.config.join_rate_per_s * owned_fraction();
  if (rate <= 0.0) return;
  const double wait = inject_rng().exponential(1.0 / rate);
  ctx_.sim.schedule(wait, [this] {
    std::vector<net::NodeId> dead;
    for (net::NodeId i = 0; i < ctx_.net.node_count(); ++i) {
      if (ctx_.shard.owns(i) && !ctx_.net.is_alive(i)) dead.push_back(i);
    }
    if (!dead.empty()) {
      ctx_.custody->revive_peer(dead[inject_rng().uniform_int(dead.size())]);
    }
    schedule_joins();
  });
}

}  // namespace precinct::core
