#include "core/workload_driver.hpp"

#include <vector>

#include "core/consistency_scheme.hpp"
#include "core/custody_manager.hpp"
#include "core/retrieval_scheme.hpp"

namespace precinct::core {

void WorkloadDriver::register_handlers(net::PacketDispatcher& dispatch) {
  dispatch.set(net::PacketKind::kBeacon,
               [this](net::NodeId self, const net::Packet& packet) {
                 handle_beacon(self, packet);
               });
}

geo::Key WorkloadDriver::sample_key(net::NodeId peer) {
  std::size_t rank = ctx_.zipf.sample(ctx_.peers[peer].rng);
  if (ctx_.config.hotspot_rotation_interval_s > 0.0) {
    const auto rotations = static_cast<std::size_t>(
        ctx_.sim.now() / ctx_.config.hotspot_rotation_interval_s);
    rank = (rank + rotations * ctx_.config.hotspot_shift) %
           ctx_.catalog.size();
  }
  return ctx_.catalog.key_of(rank);
}

void WorkloadDriver::schedule_next_request(net::NodeId peer) {
  const double wait =
      ctx_.peers[peer].rng.exponential(ctx_.config.mean_request_interval_s);
  const std::uint32_t generation = ctx_.peers[peer].generation;
  ctx_.sim.schedule(wait, [this, peer, generation] {
    if (ctx_.net.is_alive(peer) &&
        ctx_.peers[peer].generation == generation) {
      ctx_.retrieval->issue(peer, sample_key(peer), /*prefetch=*/false);
      schedule_next_request(peer);
    }
  });
}

void WorkloadDriver::schedule_next_update(net::NodeId peer) {
  const double wait =
      ctx_.peers[peer].rng.exponential(ctx_.config.mean_update_interval_s);
  const std::uint32_t generation = ctx_.peers[peer].generation;
  ctx_.sim.schedule(wait, [this, peer, generation] {
    if (ctx_.net.is_alive(peer) &&
        ctx_.peers[peer].generation == generation) {
      ctx_.consistency->initiate_update(peer, sample_key(peer));
      schedule_next_update(peer);
    }
  });
}

void WorkloadDriver::schedule_region_checks() {
  for (net::NodeId i = 0; i < ctx_.net.node_count(); ++i) {
    // Stagger checks so the whole fleet doesn't probe at the same instant.
    const double offset =
        ctx_.peers[i].rng.uniform(0.0, ctx_.config.region_check_interval_s);
    ctx_.sim.schedule(offset, [this, i] { ctx_.custody->check_region(i); });
  }
}

void WorkloadDriver::schedule_beacon(net::NodeId peer) {
  // Jittered periodic position broadcast (GPSR neighbor discovery).
  const double wait = ctx_.config.beacon_interval_s *
                      (0.75 + 0.5 * ctx_.peers[peer].rng.uniform());
  const std::uint32_t generation = ctx_.peers[peer].generation;
  ctx_.sim.schedule(wait, [this, peer, generation] {
    if (!ctx_.net.is_alive(peer) ||
        ctx_.peers[peer].generation != generation) {
      return;
    }
    // Piggybacking (GPSR): recent data traffic already announced our
    // position to everyone in range; skip the redundant beacon.
    const bool traffic_recent =
        ctx_.config.beacon_piggyback &&
        ctx_.sim.now() - ctx_.net.last_transmission_s(peer) <
            ctx_.config.beacon_interval_s;
    if (!traffic_recent) {
      net::Packet beacon =
          ctx_.make_packet(net::PacketKind::kBeacon, peer, 0);
      beacon.size_bytes = 32;  // id + position + checksum
      beacon.ttl = 1;          // never forwarded
      ctx_.net.broadcast(beacon);
    }
    schedule_beacon(peer);
  });
}

void WorkloadDriver::handle_beacon(net::NodeId self,
                                   const net::Packet& packet) {
  if (ctx_.beacons != nullptr) {
    ctx_.beacons->on_beacon(self, packet.origin, packet.origin_location,
                            ctx_.sim.now());
  }
}

void WorkloadDriver::schedule_crashes() {
  const double wait = ctx_.rng.exponential(1.0 / ctx_.config.crash_rate_per_s);
  ctx_.sim.schedule(wait, [this] {
    // Crash a uniformly random live peer.
    std::vector<net::NodeId> alive;
    for (net::NodeId i = 0; i < ctx_.net.node_count(); ++i) {
      if (ctx_.net.is_alive(i)) alive.push_back(i);
    }
    if (alive.size() > 2) {  // keep at least a residual network
      const net::NodeId victim = alive[ctx_.rng.uniform_int(alive.size())];
      ctx_.custody->fail_peer(victim,
                              ctx_.rng.uniform() <
                                  ctx_.config.graceful_fraction);
    }
    schedule_crashes();
  });
}

void WorkloadDriver::schedule_joins() {
  const double wait = ctx_.rng.exponential(1.0 / ctx_.config.join_rate_per_s);
  ctx_.sim.schedule(wait, [this] {
    std::vector<net::NodeId> dead;
    for (net::NodeId i = 0; i < ctx_.net.node_count(); ++i) {
      if (!ctx_.net.is_alive(i)) dead.push_back(i);
    }
    if (!dead.empty()) {
      ctx_.custody->revive_peer(dead[ctx_.rng.uniform_int(dead.size())]);
    }
    schedule_joins();
  });
}

}  // namespace precinct::core
